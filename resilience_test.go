package finser

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// resilienceFlowConfig is a deliberately small flow whose FIT stage still
// runs long enough to be interrupted mid-bin.
func resilienceFlowConfig() FlowConfig {
	return FlowConfig{
		Vdd:              0.7,
		ProcessVariation: true,
		Samples:          12,
		ItersPerBin:      1500,
		AlphaBins:        3,
		ProtonBins:       3,
		Seed:             7,
		Workers:          2,
	}
}

// TestRunFlowCtxCancelLatency is the ISSUE's latency acceptance test: a
// context cancelled mid-FIT must surface (wrapping ctx.Err()) within
// 100 ms of the cancellation.
func TestRunFlowCtxCancelLatency(t *testing.T) {
	cfg := resilienceFlowConfig()
	cfg.ProcessVariation = false // fast characterization; FIT dominates
	cfg.Samples = 0
	cfg.ItersPerBin = 5_000_000 // would run for minutes if not cancelled
	cfg.Workers = 0             // all cores, the production shape

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var cancelledAt atomic.Int64
	hooks := NewFaultHooks()
	// Fire well inside the first alpha bin, long before it completes.
	hooks.CallAt(FaultSiteParticle, 2000, func() {
		cancelledAt.Store(time.Now().UnixNano())
		cancel()
	})
	cfg.Faults = hooks

	_, err := RunFlowCtx(ctx, cfg)
	returned := time.Now()
	if err == nil {
		t.Fatal("RunFlowCtx returned nil error after mid-FIT cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not wrap context.Canceled: %v", err)
	}
	if !strings.Contains(err.Error(), "FIT") {
		t.Errorf("error lost the stage identity: %v", err)
	}
	at := cancelledAt.Load()
	if at == 0 {
		t.Fatal("cancellation hook never fired")
	}
	if lat := returned.Sub(time.Unix(0, at)); lat > 100*time.Millisecond {
		t.Errorf("cancellation latency %v exceeds 100ms", lat)
	}
}

// TestWorkerPanicIsolatedCore injects a panic into an array-MC worker and
// checks it fails the stage with a stack-carrying error instead of
// crashing the process.
func TestWorkerPanicIsolatedCore(t *testing.T) {
	cfg := resilienceFlowConfig()
	cfg.ItersPerBin = 800
	hooks := NewFaultHooks()
	hooks.PanicAt(FaultSiteParticle, 300, "injected array-MC panic")
	cfg.Faults = hooks

	_, err := RunFlow(cfg)
	if err == nil {
		t.Fatal("RunFlow returned nil error despite injected worker panic")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error does not carry *PanicError: %v", err)
	}
	if pe.Site != "core.worker" {
		t.Errorf("panic recovered at %q, want core.worker", pe.Site)
	}
	if len(pe.Stack) == 0 {
		t.Error("recovered panic carries no stack")
	}
	if !strings.Contains(err.Error(), "injected array-MC panic") {
		t.Errorf("panic value lost from error: %v", err)
	}
}

// TestWorkerPanicIsolatedCharacterize does the same for the
// characterization workers.
func TestWorkerPanicIsolatedCharacterize(t *testing.T) {
	cfg := resilienceFlowConfig()
	hooks := NewFaultHooks()
	hooks.PanicAt(FaultSiteSample, 3, "injected solver panic")
	cfg.Faults = hooks

	_, err := RunFlow(cfg)
	if err == nil {
		t.Fatal("RunFlow returned nil error despite injected sample panic")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error does not carry *PanicError: %v", err)
	}
	if pe.Site != "sram.worker" {
		t.Errorf("panic recovered at %q, want sram.worker", pe.Site)
	}
	if len(pe.Stack) == 0 {
		t.Error("recovered panic carries no stack")
	}
}

// TestResumeDeterminism is the ISSUE's checkpoint acceptance test: a run
// interrupted mid-FIT and resumed from its checkpoint must reproduce the
// uninterrupted result bit-identically.
func TestResumeDeterminism(t *testing.T) {
	cfg := resilienceFlowConfig()
	vdds := []float64{cfg.Vdd}
	path := t.TempDir() + "/run.ck.json"

	// Uninterrupted baseline (no checkpoint wiring at all).
	base, err := RunVddSweep(cfg, vdds)
	if err != nil {
		t.Fatalf("baseline sweep: %v", err)
	}

	// Interrupted run: cancel mid-alpha-FIT, after the first bin (1500
	// particles) has completed and been checkpointed.
	store, err := CreateCheckpoint(path, cfg, vdds)
	if err != nil {
		t.Fatalf("CreateCheckpoint: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	hooks := NewFaultHooks()
	hooks.CallAt(FaultSiteParticle, 2300, cancel)
	c2 := cfg
	c2.Checkpoint = store
	c2.Faults = hooks
	partial, err := RunVddSweepCtx(ctx, c2, vdds)
	if err == nil {
		t.Fatal("interrupted sweep returned nil error")
	}
	var se *SweepError
	if !errors.As(err, &se) {
		t.Fatalf("interrupted sweep error is not *SweepError: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted sweep error does not wrap context.Canceled: %v", err)
	}
	if len(partial) != 0 {
		t.Fatalf("interrupted sweep completed %d voltages, want 0", len(partial))
	}

	// Resume under the same configuration and finish the run.
	store2, err := ResumeCheckpoint(path, cfg, vdds)
	if err != nil {
		t.Fatalf("ResumeCheckpoint: %v", err)
	}
	if len(store2.Stages()) == 0 {
		t.Fatal("checkpoint holds no completed stages; interruption landed before any bin finished")
	}
	c3 := cfg
	c3.Checkpoint = store2
	resumed, err := RunVddSweep(c3, vdds)
	if err != nil {
		t.Fatalf("resumed sweep: %v", err)
	}

	if len(resumed) != len(base) {
		t.Fatalf("resumed sweep has %d results, want %d", len(resumed), len(base))
	}
	for i := range base {
		assertFITEqual(t, "alpha", base[i].Alpha, resumed[i].Alpha)
		assertFITEqual(t, "proton", base[i].Proton, resumed[i].Proton)
	}
}

// TestAdaptiveResumeDeterminism is the adaptive-mode version of
// TestResumeDeterminism: a confidence-driven run interrupted mid-FIT and
// resumed from its checkpoint must reproduce the uninterrupted adaptive
// result bit-identically, convergence records included.
func TestAdaptiveResumeDeterminism(t *testing.T) {
	cfg := resilienceFlowConfig()
	cfg.FITRelErr = 0.1
	vdds := []float64{cfg.Vdd}
	path := t.TempDir() + "/run.ck.json"

	base, err := RunVddSweep(cfg, vdds)
	if err != nil {
		t.Fatalf("baseline sweep: %v", err)
	}

	// Interrupt inside the FIT stage. Every adaptive bin consumes at least
	// one batch (ItersPerBin/10 = 150 particles), so across the 6 bins the
	// run is guaranteed to reach particle 850 — and the saturated first
	// alpha bin converges (and is checkpointed) well before it.
	store, err := CreateCheckpoint(path, cfg, vdds)
	if err != nil {
		t.Fatalf("CreateCheckpoint: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	hooks := NewFaultHooks()
	hooks.CallAt(FaultSiteParticle, 850, cancel)
	c2 := cfg
	c2.Checkpoint = store
	c2.Faults = hooks
	if _, err := RunVddSweepCtx(ctx, c2, vdds); err == nil {
		t.Fatal("interrupted adaptive sweep returned nil error")
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted sweep error does not wrap context.Canceled: %v", err)
	}

	store2, err := ResumeCheckpoint(path, cfg, vdds)
	if err != nil {
		t.Fatalf("ResumeCheckpoint: %v", err)
	}
	if len(store2.Stages()) == 0 {
		t.Fatal("checkpoint holds no completed stages; interruption landed before any bin finished")
	}
	c3 := cfg
	c3.Checkpoint = store2
	resumed, err := RunVddSweep(c3, vdds)
	if err != nil {
		t.Fatalf("resumed sweep: %v", err)
	}
	for i := range base {
		assertFITEqual(t, "alpha", base[i].Alpha, resumed[i].Alpha)
		assertFITEqual(t, "proton", base[i].Proton, resumed[i].Proton)
		assertConvEqual(t, "alpha", base[i].Alpha.Conv, resumed[i].Alpha.Conv)
		assertConvEqual(t, "proton", base[i].Proton.Conv, resumed[i].Proton.Conv)
	}

	// Tolerance is part of the fingerprint: the checkpoint must not be
	// resumable under a different (or flat) tolerance.
	flat := cfg
	flat.FITRelErr = 0
	if _, err := ResumeCheckpoint(path, flat, vdds); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("flat resume over adaptive checkpoint: err = %v, want ErrCheckpointMismatch", err)
	}
	tighter := cfg
	tighter.FITRelErr = 0.05
	if _, err := ResumeCheckpoint(path, tighter, vdds); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("different-tolerance resume: err = %v, want ErrCheckpointMismatch", err)
	}
}

// assertConvEqual requires bit-identical per-bin convergence records.
func assertConvEqual(t *testing.T, label string, a, b []BinConv) {
	t.Helper()
	if len(a) != len(b) {
		t.Errorf("%s conv count diverged: %d vs %d", label, len(a), len(b))
		return
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("%s bin %d conv diverged:\n baseline %+v\n resumed  %+v", label, i, a[i], b[i])
		}
	}
}

// TestAdaptiveMatchesFlatReference is the accuracy half of the adaptive
// speedup claim: at a 2%% tolerance the adaptive estimate must land within
// the flat-budget reference's confidence interval (same seed, same bins).
func TestAdaptiveMatchesFlatReference(t *testing.T) {
	cfg := resilienceFlowConfig()
	cfg.Vdd = 0.8
	flat, err := RunFlow(cfg)
	if err != nil {
		t.Fatalf("flat reference: %v", err)
	}
	cfg.FITRelErr = 0.02
	ad, err := RunFlow(cfg)
	if err != nil {
		t.Fatalf("adaptive run: %v", err)
	}
	check := func(label string, f, a FITResult) {
		if len(a.Conv) != len(a.Points) {
			t.Fatalf("%s: %d conv records for %d bins", label, len(a.Conv), len(a.Points))
		}
		diff := a.TotalFIT - f.TotalFIT
		if diff < 0 {
			diff = -diff
		}
		// 4σ combined band: failures here mean bias, not bad luck.
		band := 4 * (a.TotalFITErr + f.TotalFITErr)
		if diff > band {
			t.Errorf("%s: adaptive %g vs flat %g differ beyond noise (band %g)", label, a.TotalFIT, f.TotalFIT, band)
		}
	}
	check("alpha", flat.Alpha, ad.Alpha)
	check("proton", flat.Proton, ad.Proton)
}

// assertFITEqual requires bit-identical FIT results (exact float equality —
// the resume path must replay the identical arithmetic, not approximate it).
func assertFITEqual(t *testing.T, label string, a, b FITResult) {
	t.Helper()
	if a.TotalFIT != b.TotalFIT || a.SEUFIT != b.SEUFIT || a.MBUFIT != b.MBUFIT ||
		a.TotalFITErr != b.TotalFITErr || a.MBUToSEU != b.MBUToSEU {
		t.Errorf("%s FIT diverged after resume:\n baseline %+v\n resumed  %+v", label, a, b)
	}
	if len(a.Points) != len(b.Points) {
		t.Errorf("%s point count diverged: %d vs %d", label, len(a.Points), len(b.Points))
		return
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Errorf("%s bin %d diverged after resume:\n baseline %+v\n resumed  %+v",
				label, i, a.Points[i], b.Points[i])
		}
	}
}

// TestVddSweepPartialResults checks that a fault in a later voltage
// preserves the completed voltages and names the failing one.
func TestVddSweepPartialResults(t *testing.T) {
	cfg := resilienceFlowConfig()
	cfg.Samples = 10
	cfg.ItersPerBin = 300
	cfg.AlphaBins = 2
	cfg.ProtonBins = 2
	vdds := []float64{0.7, 0.65}

	errBoom := errors.New("synthetic solver failure")
	hooks := NewFaultHooks()
	// Samples=10 per voltage: hit 14 lands in the second voltage's
	// characterization.
	hooks.ErrorAt(FaultSiteSample, 14, errBoom)
	cfg.Faults = hooks

	out, err := RunVddSweep(cfg, vdds)
	if err == nil {
		t.Fatal("sweep returned nil error despite injected failure")
	}
	var se *SweepError
	if !errors.As(err, &se) {
		t.Fatalf("sweep error is not *SweepError: %v", err)
	}
	if se.Vdd != 0.65 {
		t.Errorf("SweepError.Vdd = %g, want 0.65", se.Vdd)
	}
	if se.Completed != 1 {
		t.Errorf("SweepError.Completed = %d, want 1", se.Completed)
	}
	if !errors.Is(err, errBoom) {
		t.Errorf("sweep error does not wrap the injected error: %v", err)
	}
	if len(out) != 1 {
		t.Fatalf("sweep preserved %d results, want 1", len(out))
	}
	if out[0].Vdd != 0.7 {
		t.Errorf("preserved result is vdd %g, want 0.7", out[0].Vdd)
	}
}

// TestFlowConfigNamedFieldValidation checks the named-field rejection of
// negative budgets and unknown patterns.
func TestFlowConfigNamedFieldValidation(t *testing.T) {
	base := FlowConfig{Vdd: 0.8}
	cases := []struct {
		name   string
		mutate func(*FlowConfig)
	}{
		{"Samples", func(c *FlowConfig) { c.Samples = -1 }},
		{"ItersPerBin", func(c *FlowConfig) { c.ItersPerBin = -5 }},
		{"Rows", func(c *FlowConfig) { c.Rows = -2 }},
		{"Cols", func(c *FlowConfig) { c.Cols = -2 }},
		{"AlphaBins", func(c *FlowConfig) { c.AlphaBins = -1 }},
		{"ProtonBins", func(c *FlowConfig) { c.ProtonBins = -1 }},
	}
	for _, tc := range cases {
		c := base
		tc.mutate(&c)
		_, err := RunFlow(c)
		if err == nil {
			t.Errorf("%s: negative value accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.name) {
			t.Errorf("%s: error does not name the field: %v", tc.name, err)
		}
	}

	c := base
	c.Pattern = DataPattern(99)
	if _, err := RunFlow(c); err == nil || !strings.Contains(err.Error(), "Pattern") {
		t.Errorf("unknown pattern accepted or unnamed: %v", err)
	}

	c = base
	c.Vdd = 0
	if _, err := RunFlow(c); err == nil || !strings.Contains(err.Error(), "Vdd") {
		t.Errorf("zero Vdd accepted or unnamed: %v", err)
	}
}

// TestConfigErrorsTyped checks that every validation failure surfaces as a
// *ConfigError naming the field — the contract the serving layer relies on
// to map caller mistakes to HTTP 400 instead of retrying them.
func TestConfigErrorsTyped(t *testing.T) {
	cases := []struct {
		field string
		cfg   FlowConfig
	}{
		{"Vdd", FlowConfig{}},
		{"Samples", FlowConfig{Vdd: 0.8, Samples: -1}},
		{"ItersPerBin", FlowConfig{Vdd: 0.8, ItersPerBin: -1}},
		{"Rows", FlowConfig{Vdd: 0.8, Rows: -1}},
		{"Cols", FlowConfig{Vdd: 0.8, Cols: -1}},
		{"AlphaBins", FlowConfig{Vdd: 0.8, AlphaBins: -1}},
		{"ProtonBins", FlowConfig{Vdd: 0.8, ProtonBins: -1}},
		{"Pattern", FlowConfig{Vdd: 0.8, Pattern: DataPattern(42)}},
		{"FITRelErr", FlowConfig{Vdd: 0.8, FITRelErr: 0.6}},
		{"FITRelErr", FlowConfig{Vdd: 0.8, FITRelErr: -0.1}},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if err == nil {
			t.Errorf("%s: invalid config accepted", tc.field)
			continue
		}
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("%s: error is not *ConfigError: %v", tc.field, err)
			continue
		}
		if ce.Field != tc.field {
			t.Errorf("ConfigError.Field = %q, want %q (err: %v)", ce.Field, tc.field, err)
		}
	}
	if err := (FlowConfig{Vdd: 0.8}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// TestStagedFlowMatchesRunFlow checks the serving layer's staged pipeline
// (CharacterizeFlowCtx + per-species SpeciesFITCtx) reproduces the
// monolithic RunFlow bit-identically — the invariant that makes daemon
// results interchangeable with CLI results.
func TestStagedFlowMatchesRunFlow(t *testing.T) {
	cfg := resilienceFlowConfig()
	cfg.Samples = 8
	cfg.ItersPerBin = 400
	cfg.AlphaBins = 2
	cfg.ProtonBins = 2

	base, err := RunFlow(cfg)
	if err != nil {
		t.Fatalf("RunFlow: %v", err)
	}

	ctx := context.Background()
	char, err := CharacterizeFlowCtx(ctx, cfg)
	if err != nil {
		t.Fatalf("CharacterizeFlowCtx: %v", err)
	}
	alpha, err := SpeciesFITCtx(ctx, cfg, char, Alpha)
	if err != nil {
		t.Fatalf("SpeciesFITCtx(alpha): %v", err)
	}
	proton, err := SpeciesFITCtx(ctx, cfg, char, Proton)
	if err != nil {
		t.Fatalf("SpeciesFITCtx(proton): %v", err)
	}
	assertFITEqual(t, "alpha", base.Alpha, alpha)
	assertFITEqual(t, "proton", base.Proton, proton)

	if _, err := SpeciesFITCtx(ctx, cfg, char, Species(99)); err == nil {
		t.Error("unsupported species accepted")
	}
}

// TestResumeCheckpointRejectsConfigChange checks that a checkpoint taken
// under one configuration cannot be resumed under another.
func TestResumeCheckpointRejectsConfigChange(t *testing.T) {
	cfg := resilienceFlowConfig()
	vdds := []float64{cfg.Vdd}
	path := t.TempDir() + "/run.ck.json"
	if _, err := CreateCheckpoint(path, cfg, vdds); err != nil {
		t.Fatalf("CreateCheckpoint: %v", err)
	}

	// Same configuration resumes fine.
	if _, err := ResumeCheckpoint(path, cfg, vdds); err != nil {
		t.Fatalf("same-config resume rejected: %v", err)
	}

	mutations := []struct {
		name string
		cfg  FlowConfig
		vdds []float64
	}{
		{"seed", func() FlowConfig { c := cfg; c.Seed++; return c }(), vdds},
		{"iters", func() FlowConfig { c := cfg; c.ItersPerBin *= 2; return c }(), vdds},
		{"workers", func() FlowConfig { c := cfg; c.Workers = cfg.Workers + 1; return c }(), vdds},
		{"fit tolerance", func() FlowConfig { c := cfg; c.FITRelErr = 0.1; return c }(), vdds},
		{"vdd list", cfg, []float64{0.7, 0.8}},
	}
	for _, m := range mutations {
		if _, err := ResumeCheckpoint(path, m.cfg, m.vdds); !errors.Is(err, ErrCheckpointMismatch) {
			t.Errorf("%s change: resume error = %v, want ErrCheckpointMismatch", m.name, err)
		}
	}

	// A missing file is a plain error, not a silent fresh start.
	if _, err := ResumeCheckpoint(path+".nope", cfg, vdds); err == nil {
		t.Error("resume of a missing checkpoint file succeeded")
	}
}
