// Benchmark harness: one benchmark per paper figure (the DAC'14 paper has
// no numbered tables — its evaluation is Figs. 2, 4, 8, 9, 10, 11) plus
// ablation benches for the design choices called out in DESIGN.md. Each
// benchmark reports the figure's headline quantities as custom metrics, so
// `go test -bench=. -benchmem` both times the flow and regenerates the
// numbers EXPERIMENTS.md records.
//
// Budgets are deliberately small (benchmarks must iterate); use
// cmd/figures for publication-scale sweeps.
package finser

import (
	"sync"
	"testing"
	"time"

	"finser/internal/logic"
	"finser/internal/phys"
	"finser/internal/sram"
)

// Shared bench fixtures (characterizations dominate setup cost).
var (
	benchOnce sync.Once
	benchChar map[string]*Characterization
	benchErr  error
)

func benchFixtures(b *testing.B) map[string]*Characterization {
	b.Helper()
	benchOnce.Do(func() {
		benchChar = map[string]*Characterization{}
		for _, v := range []float64{0.7, 0.8, 1.1} {
			ch, err := Characterize(CharConfig{
				Tech: Default14nmSOI(), Vdd: v,
				ProcessVariation: true, Samples: 60, Seed: 1,
			})
			if err != nil {
				benchErr = err
				return
			}
			benchChar[key(v, true)] = ch
		}
		nom, err := Characterize(CharConfig{
			Tech: Default14nmSOI(), Vdd: 0.7, ProcessVariation: false, Seed: 1,
		})
		if err != nil {
			benchErr = err
			return
		}
		benchChar[key(0.7, false)] = nom
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchChar
}

func key(vdd float64, pv bool) string {
	if pv {
		return "pv" + fmtVdd(vdd)
	}
	return "nom" + fmtVdd(vdd)
}

func fmtVdd(v float64) string {
	switch v {
	case 0.7:
		return "0.7"
	case 0.8:
		return "0.8"
	case 1.1:
		return "1.1"
	}
	return "x"
}

func benchEngine(b *testing.B, ch *Characterization) *Engine {
	b.Helper()
	e, err := NewEngine(EngineConfig{
		Tech: Default14nmSOI(), Rows: 9, Cols: 9,
		Char: ch, Transport: DefaultTransport(),
	})
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkFig2ProtonSpectrum regenerates the sea-level proton flux curve.
func BenchmarkFig2ProtonSpectrum(b *testing.B) {
	s, err := NewProtonSpectrum(1)
	if err != nil {
		b.Fatal(err)
	}
	var last []SpectrumPoint
	for i := 0; i < b.N; i++ {
		last, err = SpectrumCurve(s, 29)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(last[0].Flux/last[len(last)-1].Flux, "flux-dynamic-range")
}

// BenchmarkFig2AlphaSpectrum regenerates the alpha emission curve and
// reports the total emission rate (paper: 0.001 α/(cm²·h)).
func BenchmarkFig2AlphaSpectrum(b *testing.B) {
	s, err := NewAlphaSpectrum(DefaultAlphaRate)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := SpectrumCurve(s, 25); err != nil {
			b.Fatal(err)
		}
	}
	bins, err := Bins(s, 0.5, 10, 12)
	if err != nil {
		b.Fatal(err)
	}
	total := 0.0
	for _, bin := range bins {
		total += bin.IntFlux
	}
	b.ReportMetric(total*3600, "alpha-per-cm2-hour")
}

// BenchmarkFig4ElectronLUT regenerates the single-fin electron yield curve
// for both species and reports the alpha/proton yield ratio at 1 MeV —
// the paper's Fig. 4 ordering.
func BenchmarkFig4ElectronLUT(b *testing.B) {
	tech := Default14nmSOI()
	energies := []float64{0.1, 0.5, 1, 5, 10, 50, 100}
	var ratio float64
	for i := 0; i < b.N; i++ {
		a, err := FinYieldCurve(tech, Alpha, energies, 2000, 1)
		if err != nil {
			b.Fatal(err)
		}
		p, err := FinYieldCurve(tech, Proton, energies, 2000, 2)
		if err != nil {
			b.Fatal(err)
		}
		ratio = a[2].MeanPairs / p[2].MeanPairs
	}
	b.ReportMetric(ratio, "alpha/proton-pairs@1MeV")
}

// BenchmarkFig8POFvsEnergy regenerates one POF-vs-energy series point pair
// and reports POF(0.7V)/POF(0.8V) for alphas at 1 MeV.
func BenchmarkFig8POFvsEnergy(b *testing.B) {
	chars := benchFixtures(b)
	e07 := benchEngine(b, chars[key(0.7, true)])
	e08 := benchEngine(b, chars[key(0.8, true)])
	var p07, p08 POFPoint
	for i := 0; i < b.N; i++ {
		p07 = e07.POFAtEnergy(phys.Alpha, 1, 8000, 3)
		p08 = e08.POFAtEnergy(phys.Alpha, 1, 8000, 3)
	}
	b.ReportMetric(p07.Tot, "pof-0.7V")
	if p08.Tot > 0 {
		b.ReportMetric(p07.Tot/p08.Tot, "pof-ratio-0.7/0.8")
	}
}

// BenchmarkFig9FITvsVdd regenerates the FIT-vs-Vdd endpoints and reports
// the proton/alpha crossover ratio at 0.7 V and the species' Vdd slopes.
func BenchmarkFig9FITvsVdd(b *testing.B) {
	chars := benchFixtures(b)
	alphaSpec, _ := NewAlphaSpectrum(DefaultAlphaRate)
	protonSpec, _ := NewProtonSpectrum(1)
	ab, _ := Bins(alphaSpec, 0.5, 10, 8)
	pb, _ := Bins(protonSpec, 0.1, 100, 10)
	var a07, a11, p07, p11 FITResult
	for i := 0; i < b.N; i++ {
		e07 := benchEngine(b, chars[key(0.7, true)])
		e11 := benchEngine(b, chars[key(1.1, true)])
		var err error
		if a07, err = e07.FIT(alphaSpec, ab, 6000, 5); err != nil {
			b.Fatal(err)
		}
		if a11, err = e11.FIT(alphaSpec, ab, 6000, 5); err != nil {
			b.Fatal(err)
		}
		if p07, err = e07.FIT(protonSpec, pb, 6000, 6); err != nil {
			b.Fatal(err)
		}
		if p11, err = e11.FIT(protonSpec, pb, 6000, 6); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(p07.TotalFIT/a07.TotalFIT, "proton/alpha@0.7V")
	b.ReportMetric(p11.TotalFIT/a11.TotalFIT, "proton/alpha@1.1V")
	b.ReportMetric(a07.TotalFIT/a11.TotalFIT, "alpha-vdd-slope")
	b.ReportMetric(p07.TotalFIT/p11.TotalFIT, "proton-vdd-slope")
}

// BenchmarkAdaptiveFIT times the confidence-driven sampler on the Fig. 9
// workload at paper-scale per-bin budgets: the flat reference spends
// ItersPerBin particles in every bin, the adaptive run stops each bin at a
// 2% weight-scaled tolerance. Reports the wall-clock speedup, the fraction
// of the particle budget spent, and the relative FIT deviation (which must
// sit inside the reference's confidence interval — speed bought with
// accuracy is no speedup).
func BenchmarkAdaptiveFIT(b *testing.B) {
	chars := benchFixtures(b)
	alphaSpec, _ := NewAlphaSpectrum(DefaultAlphaRate)
	ab, _ := Bins(alphaSpec, 0.5, 10, 8)
	const itersPerBin = 240000
	mk := func(relErr float64) *Engine {
		e, err := NewEngine(EngineConfig{
			Tech: Default14nmSOI(), Rows: 9, Cols: 9,
			Char: ch0(b, chars), Transport: DefaultTransport(), FITRelErr: relErr,
		})
		if err != nil {
			b.Fatal(err)
		}
		return e
	}
	var flat, ad FITResult
	var flatNs, adNs int64
	for i := 0; i < b.N; i++ {
		t0 := nowNano()
		var err error
		if flat, err = mk(0).FIT(alphaSpec, ab, itersPerBin, 5); err != nil {
			b.Fatal(err)
		}
		t1 := nowNano()
		if ad, err = mk(0.02).FIT(alphaSpec, ab, itersPerBin, 5); err != nil {
			b.Fatal(err)
		}
		flatNs += t1 - t0
		adNs += nowNano() - t1
	}
	spent := 0
	for _, pt := range ad.Points {
		spent += pt.Strikes
	}
	dev := ad.TotalFIT - flat.TotalFIT
	if dev < 0 {
		dev = -dev
	}
	b.ReportMetric(float64(flatNs)/float64(adNs), "speedup-x")
	b.ReportMetric(float64(spent)/float64(itersPerBin*len(ab)), "budget-frac")
	b.ReportMetric(dev/flat.TotalFITErr, "fit-dev-sigma")
}

func nowNano() int64 { return time.Now().UnixNano() }

// ch0 picks the 0.7 V PV characterization from the bench fixtures.
func ch0(b *testing.B, chars map[string]*Characterization) *Characterization {
	b.Helper()
	ch := chars[key(0.7, true)]
	if ch == nil {
		b.Fatal("missing 0.7 V characterization")
	}
	return ch
}

// BenchmarkFig10MBUSEU regenerates the MBU/SEU ratios at 0.7 V.
func BenchmarkFig10MBUSEU(b *testing.B) {
	chars := benchFixtures(b)
	alphaSpec, _ := NewAlphaSpectrum(DefaultAlphaRate)
	protonSpec, _ := NewProtonSpectrum(1)
	ab, _ := Bins(alphaSpec, 0.5, 10, 8)
	pb, _ := Bins(protonSpec, 0.1, 100, 10)
	var fa, fp FITResult
	for i := 0; i < b.N; i++ {
		e := benchEngine(b, chars[key(0.7, true)])
		var err error
		if fa, err = e.FIT(alphaSpec, ab, 8000, 5); err != nil {
			b.Fatal(err)
		}
		if fp, err = e.FIT(protonSpec, pb, 8000, 6); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fa.MBUToSEU, "alpha-mbu/seu-%")
	b.ReportMetric(fp.MBUToSEU, "proton-mbu/seu-%")
}

// BenchmarkFig11ProcessVariation regenerates the PV-vs-nominal comparison
// at 0.7 V and reports the underestimation percentage.
func BenchmarkFig11ProcessVariation(b *testing.B) {
	chars := benchFixtures(b)
	alphaSpec, _ := NewAlphaSpectrum(DefaultAlphaRate)
	ab, _ := Bins(alphaSpec, 0.5, 10, 8)
	var pv, nom FITResult
	for i := 0; i < b.N; i++ {
		ePV := benchEngine(b, chars[key(0.7, true)])
		eNom := benchEngine(b, chars[key(0.7, false)])
		var err error
		if pv, err = ePV.FIT(alphaSpec, ab, 10000, 5); err != nil {
			b.Fatal(err)
		}
		if nom, err = eNom.FIT(alphaSpec, ab, 10000, 5); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*(pv.TotalFIT-nom.TotalFIT)/pv.TotalFIT, "pv-underestimate-%")
}

// BenchmarkPulseShapeEquivalence is the §4 ablation: the critical charge
// must agree across rectangular, triangular, and double-exponential pulses
// of equal charge. Reports the worst-case ratio to the rectangular Qcrit.
func BenchmarkPulseShapeEquivalence(b *testing.B) {
	worst := 1.0
	for i := 0; i < b.N; i++ {
		worst = 1.0
		var qRect float64
		for _, shape := range []PulseShape{ShapeRect, ShapeTriangle, ShapeDoubleExp} {
			ch, err := Characterize(CharConfig{
				Tech: Default14nmSOI(), Vdd: 0.8,
				ProcessVariation: false, Seed: 1, Shape: shape,
			})
			if err != nil {
				b.Fatal(err)
			}
			q := ch.Axis[0][0]
			if shape == ShapeRect {
				qRect = q
				continue
			}
			r := q / qRect
			if r < 1 {
				r = 1 / r
			}
			if r > worst {
				worst = r
			}
		}
	}
	b.ReportMetric(worst, "worst-qcrit-shape-ratio")
}

// BenchmarkArrayMCThroughput measures raw strike throughput (the paper
// quotes 10M iterations in ~2 h for the whole flow on its setup).
func BenchmarkArrayMCThroughput(b *testing.B) {
	chars := benchFixtures(b)
	e := benchEngine(b, chars[key(0.8, true)])
	const batch = 2000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.POFAtEnergy(phys.Alpha, 1, batch, uint64(i))
	}
	b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "strikes/s")
}

// BenchmarkObsOverhead guards the observability layer's cost: it runs the
// same array-MC batch with metrics fully enabled (registry + counters +
// multiplicity histogram + worker timing) and reports throughput plus the
// instrumented/uninstrumented ratio. The design target is < 2% overhead
// enabled and ~0% disabled (the nil-receiver no-op path).
func BenchmarkObsOverhead(b *testing.B) {
	chars := benchFixtures(b)
	const batch = 2000
	run := func(b *testing.B, m *EngineMetrics) float64 {
		e, err := NewEngine(EngineConfig{
			Tech: Default14nmSOI(), Rows: 9, Cols: 9,
			Char: chars[key(0.8, true)], Transport: DefaultTransport(),
			Metrics: m,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.POFAtEnergy(phys.Alpha, 1, batch, uint64(i))
		}
		rate := float64(batch) * float64(b.N) / b.Elapsed().Seconds()
		b.ReportMetric(rate, "strikes/s")
		return rate
	}
	var off, on float64
	b.Run("disabled", func(b *testing.B) { off = run(b, nil) })
	b.Run("enabled", func(b *testing.B) { on = run(b, NewEngineMetrics(NewMetrics())) })
	if off > 0 && on > 0 {
		b.Logf("obs overhead: %.2f%% (disabled %.0f strikes/s, enabled %.0f strikes/s)",
			100*(off-on)/off, off, on)
	}
}

// BenchmarkIncidenceModes is the incidence ablation: cosine-law versus
// isotropic incidence changes the grazing-track population and with it the
// MBU share. Reports the isotropic/cosine MBU ratio for 1 MeV alphas.
func BenchmarkIncidenceModes(b *testing.B) {
	chars := benchFixtures(b)
	var ratio float64
	for i := 0; i < b.N; i++ {
		iso := incidenceEngine(b, chars[key(0.8, true)], IncidenceIsotropic)
		cos := incidenceEngine(b, chars[key(0.8, true)], IncidenceCosine)
		pi := iso.POFAtEnergy(phys.Alpha, 1, 12000, 3)
		pc := cos.POFAtEnergy(phys.Alpha, 1, 12000, 3)
		if pc.MBU > 0 {
			ratio = pi.MBU / pc.MBU
		}
	}
	b.ReportMetric(ratio, "iso/cos-mbu-ratio")
}

func incidenceEngine(b *testing.B, ch *Characterization, inc Incidence) *Engine {
	b.Helper()
	e, err := NewEngine(EngineConfig{
		Tech: Default14nmSOI(), Rows: 9, Cols: 9,
		Char: ch, Transport: DefaultTransport(),
		Incidence: &inc,
	})
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkNeutronSER times the indirect-ionization extension and reports
// the neutron FIT and its ratio to alpha at 0.8 V.
func BenchmarkNeutronSER(b *testing.B) {
	chars := benchFixtures(b)
	e := benchEngine(b, chars[key(0.8, true)])
	rx := NewNeutronReactions()
	nSpec, err := NewNeutronSpectrum(1)
	if err != nil {
		b.Fatal(err)
	}
	nBins, _ := Bins(nSpec, 2, 1000, 8)
	aSpec, _ := NewAlphaSpectrum(DefaultAlphaRate)
	aBins, _ := Bins(aSpec, 0.5, 10, 8)
	var nRes, aRes FITResult
	for i := 0; i < b.N; i++ {
		var err error
		if nRes, err = e.NeutronFIT(nSpec, rx, nBins, 20000, 5); err != nil {
			b.Fatal(err)
		}
		if aRes, err = e.FIT(aSpec, aBins, 8000, 6); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(nRes.TotalFIT, "neutron-fit")
	if aRes.TotalFIT > 0 {
		b.ReportMetric(nRes.TotalFIT/aRes.TotalFIT, "neutron/alpha")
	}
}

// BenchmarkDepositModes is the LUT-vs-transport ablation: the paper builds
// single-fin yield LUTs for tractability; full transport resolves chords.
// Reports the POF ratio between the modes and their relative speed.
func BenchmarkDepositModes(b *testing.B) {
	chars := benchFixtures(b)
	full := benchEngine(b, chars[key(0.8, true)])
	lutEng, err := NewEngine(EngineConfig{
		Tech: Default14nmSOI(), Rows: 9, Cols: 9,
		Char: chars[key(0.8, true)], Transport: DefaultTransport(),
		Deposits: DepositLUT, LUTIters: 4000,
	})
	if err != nil {
		b.Fatal(err)
	}
	var ratio float64
	for i := 0; i < b.N; i++ {
		a := full.POFAtEnergy(phys.Alpha, 1, 10000, 3)
		l := lutEng.POFAtEnergy(phys.Alpha, 1, 10000, 3)
		if a.Tot > 0 {
			ratio = l.Tot / a.Tot
		}
	}
	b.ReportMetric(ratio, "lut/transport-pof")
}

// BenchmarkECCInterleave sweeps column-interleave factors over measured MBU
// geometry and reports the uncorrectable share at 4-way interleaving.
func BenchmarkECCInterleave(b *testing.B) {
	chars := benchFixtures(b)
	e := benchEngine(b, chars[key(0.7, true)])
	var share float64
	for i := 0; i < b.N; i++ {
		rep := e.MBUStatsAtEnergy(phys.Alpha, 1, 30000, 6, 11)
		as, err := ECCInterleaveSweep(rep, []int{1, 4}, true)
		if err != nil {
			b.Fatal(err)
		}
		share = as[1].UncorrectableShare
	}
	b.ReportMetric(100*share, "uncorrectable-%@4way")
}

// BenchmarkLargeArray measures engine scaling to a 64×64 array (4096 cells,
// 24576 fins) — well past the paper's 9×9, validating that the broad-phase
// culling keeps the per-strike cost manageable at realistic block sizes.
func BenchmarkLargeArray(b *testing.B) {
	chars := benchFixtures(b)
	e, err := NewEngine(EngineConfig{
		Tech: Default14nmSOI(), Rows: 64, Cols: 64,
		Char: chars[key(0.8, true)], Transport: DefaultTransport(),
	})
	if err != nil {
		b.Fatal(err)
	}
	const batch = 2000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.POFAtEnergy(phys.Alpha, 1, batch, uint64(i))
	}
	b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "strikes/s")
}

// BenchmarkLogicSETThreshold times the combinational-logic extension and
// reports the SET propagation threshold vs the SRAM critical charge.
func BenchmarkLogicSETThreshold(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		ch, err := logic.NewChain(Default14nmSOI(), 0.8, 6)
		if err != nil {
			b.Fatal(err)
		}
		thr, err := ch.PropagationThreshold(1e-18, 5e-14)
		if err != nil {
			b.Fatal(err)
		}
		cell, err := sram.NewCell(Default14nmSOI(), 0.8, sram.VthShifts{})
		if err != nil {
			b.Fatal(err)
		}
		qc, err := cell.CriticalCharge(sram.AxisI1, 1e-18, 5e-14, sram.ShapeRect)
		if err != nil {
			b.Fatal(err)
		}
		ratio = thr / qc
	}
	b.ReportMetric(ratio, "logic/sram-threshold")
}

// BenchmarkGridLUTEval measures the serialized-LUT POF evaluation path —
// the per-strike cost of the paper's LUT-only array architecture.
func BenchmarkGridLUTEval(b *testing.B) {
	chars := benchFixtures(b)
	grid, err := BuildGridLUT(chars[key(0.8, true)], 0, 0, 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	q := [3]float64{8e-17, 0, 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q[0] = 5e-17 + float64(i%64)*1e-18
		_ = grid.POF(q)
	}
}

// BenchmarkScrubLifetimeValidation cross-checks the analytic scrub model
// against the event simulator and reports their ratio.
func BenchmarkScrubLifetimeValidation(b *testing.B) {
	sc := ScrubConfig{Words: 1 << 12, SEUFIT: 5e10}
	analytic := sc.UncorrectableFIT(2)
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := SimulateLifetime(LifetimeConfig{
			Words:              1 << 12,
			SEURatePerHour:     5e10 / 1e9,
			ScrubIntervalHours: 2,
			MaxHours:           1e5,
		}, 300, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.FIT / analytic
	}
	b.ReportMetric(ratio, "sim/analytic-fit")
}
