// Variation: the paper's Fig. 11 ablation — estimate the alpha-induced SER
// with and without threshold-voltage process variation, showing that the
// nominal-corner (binary POF) analysis underestimates the rate: variation
// lets sub-critical deposits flip weakened cells, and that tail outweighs
// the strikes a strengthened cell survives.
//
//	go run ./examples/variation
package main

import (
	"fmt"
	"log"

	"finser"
)

func main() {
	const vdd = 0.8
	base := finser.FlowConfig{
		Vdd:         vdd,
		Samples:     400,
		ItersPerBin: 20000,
		Seed:        1,
	}

	withPV := base
	withPV.ProcessVariation = true
	pv, err := finser.RunFlow(withPV)
	if err != nil {
		log.Fatal(err)
	}

	noPV := base
	noPV.ProcessVariation = false
	nom, err := finser.RunFlow(noPV)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("process-variation ablation — 9×9 array at Vdd = %.1f V\n\n", vdd)
	fmt.Printf("%-28s %14s %14s\n", "model", "alpha FIT", "proton FIT")
	fmt.Printf("%-28s %14.5g %14.5g\n", "with Vth variation (MC)", pv.Alpha.TotalFIT, pv.Proton.TotalFIT)
	fmt.Printf("%-28s %14.5g %14.5g\n", "nominal corner (binary POF)", nom.Alpha.TotalFIT, nom.Proton.TotalFIT)

	aUnder := 100 * (pv.Alpha.TotalFIT - nom.Alpha.TotalFIT) / pv.Alpha.TotalFIT
	pUnder := 100 * (pv.Proton.TotalFIT - nom.Proton.TotalFIT) / pv.Proton.TotalFIT
	fmt.Println()
	fmt.Printf("neglecting process variation underestimates alpha SER by %.1f%% and proton SER by %.1f%%\n",
		aUnder, pUnder)
	fmt.Println("(the paper reports the same direction, up to 45% in its SPICE setup)")
}
