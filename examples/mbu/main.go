// MBU: multiple-bit-upset analysis. A single track crossing sensitive fins
// in more than one cell can flip several bits at once; the rate depends on
// the particle species (alphas ionize heavily along long grazing tracks),
// the incidence distribution, and the stored data pattern. This example
// dissects the MBU/SEU split the paper reports in its Fig. 10.
//
//	go run ./examples/mbu
package main

import (
	"fmt"
	"log"

	"finser"
)

func main() {
	tech := finser.Default14nmSOI()
	char, err := finser.Characterize(finser.CharConfig{
		Tech: tech, Vdd: 0.8, ProcessVariation: true, Samples: 150, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("MBU/SEU analysis — 14nm SOI FinFET, Vdd = 0.8 V")

	// 1) Species comparison at fixed energies (POF conditional on a strike
	//    over the array footprint).
	fmt.Println("\nper-energy MBU share (9×9 array, default incidence):")
	fmt.Printf("%10s %10s %12s %12s %12s\n", "species", "E (MeV)", "POFtot", "POFMBU", "MBU share")
	eng := mustEngine(tech, char, finser.PatternZeros)
	for _, sp := range []finser.Species{finser.Alpha, finser.Proton} {
		for _, e := range []float64{0.5, 1, 5} {
			pts, err := finser.POFCurve(eng, sp, []float64{e}, 40000, 7)
			if err != nil {
				log.Fatal(err)
			}
			p := pts[0]
			share := 0.0
			if p.Tot > 0 {
				share = p.MBU / p.Tot
			}
			fmt.Printf("%10v %10.2f %12.5g %12.5g %11.2f%%\n", sp, e, p.Tot, p.MBU, 100*share)
		}
	}

	// 2) Data-pattern dependence: the sensitive transistor set moves with
	//    the stored bit, so clustered patterns shift the MBU geometry.
	fmt.Println("\ndata-pattern dependence (alpha, 1 MeV):")
	fmt.Printf("%16s %12s %12s\n", "pattern", "POFtot", "POFMBU")
	for _, pc := range []struct {
		name string
		pat  finser.DataPattern
	}{
		{"all zeros", finser.PatternZeros},
		{"all ones", finser.PatternOnes},
		{"checkerboard", finser.PatternCheckerboard},
	} {
		e := mustEngine(tech, char, pc.pat)
		pts, err := finser.POFCurve(e, finser.Alpha, []float64{1}, 40000, 9)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%16s %12.5g %12.5g\n", pc.name, pts[0].Tot, pts[0].MBU)
	}

	fmt.Println("\nalphas produce a far larger MBU share than protons: their tracks")
	fmt.Println("deposit enough charge to upset every sensitive fin they graze, so a")
	fmt.Println("single shallow track can take out bits in several adjacent cells.")
}

func mustEngine(tech finser.Technology, char *finser.Characterization, pat finser.DataPattern) *finser.Engine {
	e, err := finser.NewEngine(finser.EngineConfig{
		Tech: tech, Rows: 9, Cols: 9, Char: char,
		Transport: finser.DefaultTransport(), Pattern: pat,
	})
	if err != nil {
		log.Fatal(err)
	}
	return e
}
