// Logicchain: single-event transients in combinational logic. A strike on
// a logic gate matters only if the transient survives the walk to a latch;
// each stage's electrical inertia attenuates sub-critical pulses
// (electrical masking). This example measures the per-stage attenuation
// and the propagation-threshold charge, and compares the logic path's
// hardness with the SRAM cell's — the comparison behind the literature's
// "logic is catching up with SRAM" concern at low supply.
//
//	go run ./examples/logicchain
package main

import (
	"fmt"
	"log"

	"finser/internal/finfet"
	"finser/internal/logic"
	"finser/internal/sram"
)

func main() {
	tech := finfet.Default14nmSOI()

	fmt.Println("single-event transients in a FinFET inverter chain")
	fmt.Println()
	fmt.Printf("%6s %22s %22s %12s\n", "Vdd", "SET threshold (fC)", "SRAM Qcrit I1 (fC)", "logic/SRAM")
	for _, vdd := range []float64{0.7, 0.8, 0.9, 1.0, 1.1} {
		ch, err := logic.NewChain(tech, vdd, 6)
		if err != nil {
			log.Fatal(err)
		}
		thr, err := ch.PropagationThreshold(1e-18, 5e-14)
		if err != nil {
			log.Fatal(err)
		}
		cell, err := sram.NewCell(tech, vdd, sram.VthShifts{})
		if err != nil {
			log.Fatal(err)
		}
		qc, err := cell.CriticalCharge(sram.AxisI1, 1e-18, 5e-14, sram.ShapeRect)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6.2f %22.4f %22.4f %12.2f\n", vdd, thr*1e15, qc*1e15, thr/qc)
	}

	// Per-stage attenuation of a sub-threshold transient.
	ch, err := logic.NewChain(tech, 0.8, 8)
	if err != nil {
		log.Fatal(err)
	}
	thr, err := ch.PropagationThreshold(1e-18, 5e-14)
	if err != nil {
		log.Fatal(err)
	}
	res, err := ch.Inject(thr * 0.6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nelectrical masking of a 0.6×-threshold SET (peak swing per stage, V):")
	for i, s := range res.Swing {
		bar := ""
		for j := 0; j < int(s*60); j++ {
			bar += "#"
		}
		fmt.Printf("  stage %d: %6.3f %s\n", i, s, bar)
	}

	fmt.Println("\nnote the regenerative cliff: once a SET clears roughly half the")
	fmt.Println("supply at a gate output, the next stage amplifies instead of")
	fmt.Println("attenuating — below it, a few stages of electrical masking absorb")
	fmt.Println("the pulse entirely.")
}
