// Quickstart: estimate the soft-error rate of a 9×9 SRAM array in 14 nm
// SOI FinFET at nominal supply, for both the package-alpha and sea-level
// proton environments, with one call into the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"finser"
)

func main() {
	res, err := finser.RunFlow(finser.FlowConfig{
		Vdd:              0.8,  // nominal supply
		ProcessVariation: true, // paper-style Vth Monte Carlo
		Samples:          150,  // variation samples (paper: 1000)
		ItersPerBin:      15000,
		Seed:             1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("finser quickstart — 9×9 6T SRAM array, 14nm SOI FinFET, Vdd = 0.8 V")
	fmt.Println()
	fmt.Printf("%-22s %14s %14s %14s %10s\n", "environment", "total FIT", "SEU FIT", "MBU FIT", "MBU/SEU %")
	fmt.Printf("%-22s %14.5g %14.5g %14.5g %10.3f\n",
		"package alpha", res.Alpha.TotalFIT, res.Alpha.SEUFIT, res.Alpha.MBUFIT, res.Alpha.MBUToSEU)
	fmt.Printf("%-22s %14.5g %14.5g %14.5g %10.3f\n",
		"sea-level proton", res.Proton.TotalFIT, res.Proton.SEUFIT, res.Proton.MBUFIT, res.Proton.MBUToSEU)

	fmt.Println()
	fmt.Println("per-bit rates:")
	cells := 81.0
	fmt.Printf("  alpha : %.4g FIT/Mbit\n", res.Alpha.TotalFIT/cells*1e6)
	fmt.Printf("  proton: %.4g FIT/Mbit\n", res.Proton.TotalFIT/cells*1e6)
}
