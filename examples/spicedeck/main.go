// Spicedeck: bring-your-own-cell characterization. The library's circuit
// level accepts standard SPICE-style netlists, so a designer can swap in a
// custom bitcell (different fin counts, asymmetric sizing, intentional
// weakening) and run the same critical-charge analysis against it. Here we
// generate the canonical 6T deck, print it, then derive a 2-fin pull-down
// variant and compare the two cells' critical charges per sensitive axis.
//
//	go run ./examples/spicedeck
package main

import (
	"fmt"
	"log"
	"os"

	"finser/internal/deck"
	"finser/internal/finfet"
	"finser/internal/sram"
)

func main() {
	tech := finfet.Default14nmSOI()
	const vdd = 0.8

	base := deck.SixTCellDeck(tech, vdd)
	fmt.Println("canonical 6T cell deck:")
	fmt.Println("-----------------------")
	if err := base.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Variant A: double-fin pull-downs (a common read-stability upsize).
	fins2 := deck.SixTCellDeck(tech, vdd)
	for i, card := range fins2.Cards {
		if card.Name == "MPDL" || card.Name == "MPDR" {
			fins2.Cards[i].Params["nfins"] = 2
		}
	}
	// Variant B: half the storage-node capacitance (tighter layout).
	halfCap := deck.SixTCellDeck(tech, vdd)
	for i, card := range halfCap.Cards {
		if card.Name == "CQ" || card.Name == "CQB" {
			halfCap.Cards[i].Value /= 2
		}
	}

	cells := []struct {
		name string
		d    *deck.Deck
	}{
		{"canonical", base},
		{"2-fin pull-downs", fins2},
		{"half node cap", halfCap},
	}
	fmt.Println("\ncritical charge per variant (fC, axis I1):")
	fmt.Printf("%20s %14s\n", "variant", "Qcrit (fC)")
	for _, v := range cells {
		cell, err := sram.NewCellFromDeck(v.d, tech, vdd)
		if err != nil {
			log.Fatal(err)
		}
		qc, err := cell.CriticalCharge(sram.AxisI1, 1e-18, 5e-14, sram.ShapeRect)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%20s %14.4f\n", v.name, qc*1e15)
	}

	fmt.Println("\nthe comparison quantifies a key SOI insight: with femtosecond strike")
	fmt.Println("pulses the flip is charge-on-capacitance dominated, so transistor")
	fmt.Println("upsizing barely moves Qcrit while node capacitance moves it almost")
	fmt.Println("linearly — all explored by editing a deck, not the flow.")
}
