// Neutron: the paper's declared future work (§7) — neutron-induced soft
// errors through indirect ionization. Neutrons are uncharged; they upset
// cells via nuclear reactions with silicon (elastic Si recoils,
// ²⁸Si(n,α)²⁵Mg, ²⁸Si(n,p)²⁸Al) whose charged secondaries ionize like any
// other ion. This example estimates the sea-level neutron FIT of the array,
// compares it against the directly ionizing environments, and shows the
// SOI suppression: most upsets come from reactions in the handle wafer
// whose secondaries cross the buried oxide, not from the tiny fin volumes.
//
//	go run ./examples/neutron
package main

import (
	"fmt"
	"log"

	"finser"
)

func main() {
	const vdd = 0.8
	tech := finser.Default14nmSOI()
	char, err := finser.Characterize(finser.CharConfig{
		Tech: tech, Vdd: vdd, ProcessVariation: true, Samples: 150, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := finser.NewEngine(finser.EngineConfig{
		Tech: tech, Rows: 9, Cols: 9, Char: char,
		Transport: finser.DefaultTransport(),
	})
	if err != nil {
		log.Fatal(err)
	}

	rx := finser.NewNeutronReactions()
	nSpec, err := finser.NewNeutronSpectrum(1)
	if err != nil {
		log.Fatal(err)
	}
	nBins, err := finser.Bins(nSpec, 2, 1000, 10)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("neutron-induced SER (indirect ionization) — 9×9 array at Vdd = %.1f V\n\n", vdd)

	// Per-energy picture: weighted POF and per-interaction severity.
	fmt.Printf("%10s %16s %18s\n", "E (MeV)", "weighted POF", "POF per interaction")
	for _, e := range []float64{2, 5, 14, 50, 200} {
		pt := eng.NeutronPOFAtEnergy(rx, e, 60000, 3)
		cond := 0.0
		if pt.InteractionWeight > 0 {
			cond = pt.Tot / pt.InteractionWeight
		}
		fmt.Printf("%10.0f %16.4g %18.4g\n", e, pt.Tot, cond)
	}

	// Spectrum-integrated FIT vs the directly ionizing environments.
	nRes, err := eng.NeutronFIT(nSpec, rx, nBins, 60000, 5)
	if err != nil {
		log.Fatal(err)
	}
	flow, err := finser.RunFlowWithChar(finser.FlowConfig{
		Vdd: vdd, ItersPerBin: 15000, Seed: 1,
	}, char)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-20s %14s %10s\n", "environment", "total FIT", "MBU/SEU %")
	fmt.Printf("%-20s %14.5g %10.3f\n", "package alpha", flow.Alpha.TotalFIT, flow.Alpha.MBUToSEU)
	fmt.Printf("%-20s %14.5g %10.3f\n", "sea-level proton", flow.Proton.TotalFIT, flow.Proton.MBUToSEU)
	fmt.Printf("%-20s %14.5g %10.3f\n", "sea-level neutron", nRes.TotalFIT, nRes.MBUToSEU)

	fmt.Println("\nthe SOI structure strongly suppresses neutron SER: the buried oxide")
	fmt.Println("isolates the fins from substrate charge, so only energetic reaction")
	fmt.Println("secondaries that physically cross the BOX — plus the rare reactions")
	fmt.Println("inside fin silicon itself — can upset a cell.")
}
