// Avionics: altitude scaling of the atmospheric SER components. Alpha
// emission comes from the package and does not care about altitude, but the
// atmospheric proton and neutron fluxes grow exponentially with altitude —
// at cruise altitude the atmospheric components dominate everything.
//
//	go run ./examples/avionics
package main

import (
	"fmt"
	"log"

	"finser"
)

func main() {
	const vdd = 0.8
	tech := finser.Default14nmSOI()
	char, err := finser.Characterize(finser.CharConfig{
		Tech: tech, Vdd: vdd, ProcessVariation: true, Samples: 120, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := finser.NewEngine(finser.EngineConfig{
		Tech: tech, Rows: 9, Cols: 9, Char: char,
		Transport: finser.DefaultTransport(),
	})
	if err != nil {
		log.Fatal(err)
	}
	rx := finser.NewNeutronReactions()

	fmt.Printf("altitude study — 9×9 array at Vdd = %.1f V\n\n", vdd)
	fmt.Printf("%-22s %10s %14s %14s %14s %14s\n",
		"location", "scale", "alpha FIT", "proton FIT", "neutron FIT", "total FIT")

	sites := []struct {
		name     string
		altitude float64
	}{
		{"sea level (NYC)", 0},
		{"Denver (1.6 km)", 1600},
		{"La Paz (3.6 km)", 3600},
		{"cruise (11 km)", 11000},
	}
	for _, site := range sites {
		scale := finser.AltitudeScale(site.altitude)

		flow, err := finser.RunFlowWithChar(finser.FlowConfig{
			Vdd: vdd, ItersPerBin: 8000, Seed: 1, ProtonScale: scale,
		}, char)
		if err != nil {
			log.Fatal(err)
		}
		nSpec, err := finser.NewNeutronSpectrum(scale)
		if err != nil {
			log.Fatal(err)
		}
		nBins, err := finser.Bins(nSpec, 2, 1000, 8)
		if err != nil {
			log.Fatal(err)
		}
		nRes, err := eng.NeutronFIT(nSpec, rx, nBins, 20000, 7)
		if err != nil {
			log.Fatal(err)
		}

		total := flow.Alpha.TotalFIT + flow.Proton.TotalFIT + nRes.TotalFIT
		fmt.Printf("%-22s %10.1f %14.5g %14.5g %14.5g %14.5g\n",
			site.name, scale, flow.Alpha.TotalFIT, flow.Proton.TotalFIT,
			nRes.TotalFIT, total)
	}

	fmt.Println()
	fmt.Println("the package-alpha term is altitude-independent; by cruise altitude")
	fmt.Println("the atmospheric (proton + neutron) terms dominate the budget by")
	fmt.Println("orders of magnitude — the classic avionics soft-error picture.")
}
