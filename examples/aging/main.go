// Aging: BTI wear-out meets soft errors. A cell that holds the same value
// for years stresses one specific transistor pair (NBTI on the ON pull-up,
// PBTI on the ON pull-down); their threshold drift skews the cell so the
// long-held state becomes progressively easier to upset. This example
// sweeps device age and reports the critical-charge and noise-margin
// asymmetry — the mechanism that makes old, data-static memories (boot
// code, configuration bits) the soft spots of a system.
//
//	go run ./examples/aging
package main

import (
	"fmt"
	"log"

	"finser/internal/finfet"
	"finser/internal/sram"
)

func main() {
	tech := finfet.Default14nmSOI()
	const vdd = 0.8
	bti := sram.DefaultBTI()

	fmt.Println("BTI aging and soft-error vulnerability — 6T cell at Vdd = 0.8 V")
	fmt.Println("(cell holds Q=0 for its whole life; attacks target that state)")
	fmt.Println()
	fmt.Printf("%8s %16s %16s %14s %14s\n",
		"years", "Qcrit I1 (fC)", "ΔVth PUR (mV)", "SNM flip0 (mV)", "SNM flip1 (mV)")

	for _, years := range []float64{0, 1, 3, 10} {
		shifts, err := sram.AgedShifts(bti, years, 1)
		if err != nil {
			log.Fatal(err)
		}
		cell, err := sram.NewCell(tech, vdd, shifts)
		if err != nil {
			log.Fatal(err)
		}
		qc, err := cell.CriticalCharge(sram.AxisI1, 1e-18, 5e-14, sram.ShapeRect)
		if err != nil {
			log.Fatal(err)
		}
		snm, err := sram.StaticNoiseMargin(tech, vdd, shifts, sram.HoldMode, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8.0f %16.4f %16.1f %14.1f %14.1f\n",
			years, qc*1e15, shifts[sram.PUR]*1e3, snm.Flip0*1e3, snm.Flip1*1e3)
	}

	fmt.Println()
	fmt.Println("a decade of static stress costs tens of millivolts of margin against")
	fmt.Println("flipping the held state while slightly hardening the opposite flip —")
	fmt.Println("periodic bit-flipping (data rotation) equalizes the stress and keeps")
	fmt.Println("the cell symmetric, at the cost of scrub-style traffic.")
}
