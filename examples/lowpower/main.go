// Lowpower: the paper's motivating scenario — voltage scaling for low-power
// operation trades off soft-error resilience, and the trade is species-
// dependent: proton-induced SER grows much faster than alpha-induced SER
// as Vdd drops, becoming comparable at 0.7 V. This example sweeps the
// supply and reports the crossover.
//
//	go run ./examples/lowpower
package main

import (
	"fmt"
	"log"

	"finser"
)

func main() {
	vdds := []float64{0.7, 0.8, 0.9, 1.0, 1.1}
	results, err := finser.RunVddSweep(finser.FlowConfig{
		ProcessVariation: true,
		Samples:          120,
		ItersPerBin:      10000,
		Seed:             1,
		Vdd:              vdds[0], // overwritten per sweep point
	}, vdds)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("voltage-scaling SER study — 9×9 array, 14nm SOI FinFET")
	fmt.Println()
	fmt.Printf("%6s %14s %14s %16s\n", "Vdd", "alpha FIT", "proton FIT", "proton/alpha")
	for _, r := range results {
		fmt.Printf("%6.2f %14.5g %14.5g %16.3f\n",
			r.Vdd, r.Alpha.TotalFIT, r.Proton.TotalFIT,
			r.Proton.TotalFIT/r.Alpha.TotalFIT)
	}

	first, last := results[0], results[len(results)-1]
	fmt.Println()
	fmt.Printf("lowering Vdd from %.1f V to %.1f V raises alpha SER ×%.1f and proton SER ×%.1f\n",
		last.Vdd, first.Vdd,
		first.Alpha.TotalFIT/last.Alpha.TotalFIT,
		first.Proton.TotalFIT/last.Proton.TotalFIT)
	fmt.Println("low-power (low-Vdd) designs must budget for the proton component,")
	fmt.Println("which is negligible at nominal supply but comparable to alpha at 0.7 V.")
}
