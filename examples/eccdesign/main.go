// ECC design: turn the engine's MBU spatial statistics into a memory-
// protection decision. SEC-DED corrects one flipped bit per word, so the
// residual failure rate after ECC is set by MBUs that put two bits into the
// same logical word. Column interleaving pushes same-word bits apart;
// this example sweeps the interleave factor and reports the residual FIT,
// per particle species.
//
//	go run ./examples/eccdesign
package main

import (
	"fmt"
	"log"

	"finser"
)

func main() {
	const vdd = 0.7 // worst case: low-power operation
	tech := finser.Default14nmSOI()
	char, err := finser.Characterize(finser.CharConfig{
		Tech: tech, Vdd: vdd, ProcessVariation: true, Samples: 150, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := finser.NewEngine(finser.EngineConfig{
		Tech: tech, Rows: 9, Cols: 9, Char: char,
		Transport: finser.DefaultTransport(),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ECC interleaving design — 9×9 array at Vdd = %.1f V\n", vdd)

	// MBU geometry at the alpha energies that dominate the emission
	// spectrum.
	rep := eng.MBUStatsAtEnergy(finser.Alpha, 1, 120000, 6, 11)
	fmt.Printf("\nalpha (1 MeV) upset multiplicity per strike:\n")
	for k, p := range rep.MultiplicityPMF {
		if k == 0 || p == 0 {
			continue
		}
		fmt.Printf("  P(%d bits) = %.3g\n", k, p)
	}

	fmt.Println("\nheaviest MBU pair separations (Δrow, Δcol → share of pair weight):")
	total := rep.TotalPairWeight()
	for i, key := range rep.SortedPairKeys() {
		if i >= 5 {
			break
		}
		fmt.Printf("  (%d,%+d) → %.1f%%\n", key.DRow, key.DCol,
			100*rep.PairWeights[key]/total)
	}

	// Interleave sweep: how much MBU FIT survives SEC-DED.
	flow, err := finser.RunFlowWithChar(finser.FlowConfig{
		Vdd: vdd, ItersPerBin: 15000, Seed: 1,
	}, char)
	if err != nil {
		log.Fatal(err)
	}
	factors := []int{1, 2, 4, 8, 16}
	analyses, err := finser.ECCInterleaveSweep(rep, factors, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%12s %22s %18s\n", "interleave", "uncorrectable share", "residual MBU FIT")
	for i, a := range analyses {
		fmt.Printf("%12d %21.2f%% %18.4g\n",
			factors[i], 100*a.UncorrectableShare,
			finser.ResidualMBUFIT(flow.Alpha.MBUFIT, a))
	}

	fmt.Println("\nwith no interleaving every same-row MBU defeats SEC-DED; a modest")
	fmt.Println("4-way column interleave already pushes same-word bits beyond the")
	fmt.Println("reach of most alpha tracks.")
}
