// Scaling: technology-sensitivity study. The paper's conclusions are tied
// to one 14 nm SOI FinFET card; this example perturbs the knobs a
// technologist controls — fin dimensions, storage-node capacitance, and
// threshold-variation sigma — and shows how each moves the alpha SER and
// the MBU share, using the same public API end to end.
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"log"

	"finser"
)

func main() {
	base := finser.Default14nmSOI()

	variants := []struct {
		name string
		mod  func(t finser.Technology) finser.Technology
	}{
		{"baseline 14nm card", func(t finser.Technology) finser.Technology { return t }},
		{"taller fins (+50% height)", func(t finser.Technology) finser.Technology {
			t.FinHeightNm *= 1.5
			return t
		}},
		{"narrower fins (7nm-class width)", func(t finser.Technology) finser.Technology {
			t.FinWidthNm = 6
			return t
		}},
		{"2x storage-node capacitance", func(t finser.Technology) finser.Technology {
			t.NodeCapF *= 2
			return t
		}},
		{"tighter variation (sigma 25 mV)", func(t finser.Technology) finser.Technology {
			t.SigmaVth = 0.025
			return t
		}},
	}

	fmt.Println("technology scaling study — alpha environment, 9×9 array, Vdd = 0.8 V")
	fmt.Println()
	fmt.Printf("%-34s %14s %12s %14s\n", "variant", "alpha FIT", "MBU/SEU %", "Qcrit med (fC)")

	for _, v := range variants {
		tech := v.mod(base)
		char, err := finser.Characterize(finser.CharConfig{
			Tech: tech, Vdd: 0.8, ProcessVariation: true, Samples: 100, Seed: 1,
		})
		if err != nil {
			log.Fatalf("%s: %v", v.name, err)
		}
		res, err := finser.RunFlowWithChar(finser.FlowConfig{
			Tech: tech, Vdd: 0.8, ItersPerBin: 8000, Seed: 1,
		}, char)
		if err != nil {
			log.Fatalf("%s: %v", v.name, err)
		}
		fmt.Printf("%-34s %14.5g %12.3f %14.4f\n",
			v.name, res.Alpha.TotalFIT, res.Alpha.MBUToSEU,
			char.QcritQuantile(0, 0.5)*1e15)
	}

	fmt.Println()
	fmt.Println("taller fins intercept more tracks (larger target) but collect more")
	fmt.Println("charge per strike; extra node capacitance raises Qcrit and is the")
	fmt.Println("single strongest SER lever, exactly as the critical-charge picture")
	fmt.Println("predicts.")
}
