package qos

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic time source for limiter tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// TestTokenBucketRefill pins the rate-limit contract: a tenant burns its
// burst, is refused with a *RateError whose RetryAfter names the refill
// time, and is admitted again exactly after tokens accrue — while a second
// tenant's bucket is untouched.
func TestTokenBucketRefill(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	l := NewLimiter(LimiterConfig{Rate: 2, Burst: 3, Now: clk.Now})

	for i := 0; i < 3; i++ {
		if err := l.Admit("acme"); err != nil {
			t.Fatalf("burst admit %d: %v", i, err)
		}
	}
	err := l.Admit("acme")
	var re *RateError
	if !errors.As(err, &re) {
		t.Fatalf("over-burst admit = %v, want *RateError", err)
	}
	if re.Tenant != "acme" {
		t.Errorf("RateError.Tenant = %q, want acme", re.Tenant)
	}
	// Bucket empty, rate 2/s: one token needs 500 ms.
	if got, want := re.RetryAfter, 500*time.Millisecond; got != want {
		t.Errorf("RetryAfter = %v, want %v", got, want)
	}
	// Another tenant is isolated: its own fresh bucket admits.
	if err := l.Admit("other"); err != nil {
		t.Fatalf("isolated tenant refused: %v", err)
	}
	// After 500 ms one token accrued.
	clk.Advance(500 * time.Millisecond)
	if err := l.Admit("acme"); err != nil {
		t.Fatalf("post-refill admit: %v", err)
	}
	if err := l.Admit("acme"); err == nil {
		t.Fatal("second post-refill admit succeeded, want rate error")
	}
	// Refill caps at burst: a long idle period grants 3, not 3000.
	clk.Advance(time.Hour)
	for i := 0; i < 3; i++ {
		if err := l.Admit("acme"); err != nil {
			t.Fatalf("burst-capped admit %d: %v", i, err)
		}
	}
	if err := l.Admit("acme"); err == nil {
		t.Fatal("burst cap not enforced after idle refill")
	}
}

// TestQuotaAcquireRelease pins the in-flight quota: Acquire refuses at the
// limit with a *QuotaError, Release frees a slot, and Restore (the
// recovery path) bypasses the check.
func TestQuotaAcquireRelease(t *testing.T) {
	l := NewLimiter(LimiterConfig{Quota: 2})
	if err := l.Acquire("acme"); err != nil {
		t.Fatal(err)
	}
	if err := l.Acquire("acme"); err != nil {
		t.Fatal(err)
	}
	err := l.Acquire("acme")
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("over-quota acquire = %v, want *QuotaError", err)
	}
	if qe.InFlight != 2 || qe.Limit != 2 {
		t.Errorf("QuotaError = %+v, want inflight 2 of 2", qe)
	}
	// Other tenants have their own quota.
	if err := l.Acquire("other"); err != nil {
		t.Fatalf("isolated tenant refused: %v", err)
	}
	l.Release("acme")
	if err := l.Acquire("acme"); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	// Recovery restore ignores the quota (jobs admitted pre-crash must
	// never be refused their own slots) and still releases cleanly.
	l.Restore("acme")
	if got := l.InFlight("acme"); got != 3 {
		t.Fatalf("InFlight after restore = %d, want 3", got)
	}
	l.Release("acme")
	l.Release("acme")
	l.Release("acme")
	l.Release("acme") // extra release must not underflow
	if got := l.InFlight("acme"); got != 0 {
		t.Fatalf("InFlight after releases = %d, want 0", got)
	}
}

// TestNilLimiterAdmitsEverything: nil-receiver no-op, matching the repo's
// observability idiom.
func TestNilLimiterAdmitsEverything(t *testing.T) {
	var l *Limiter
	if err := l.Admit("x"); err != nil {
		t.Fatal(err)
	}
	if err := l.Acquire("x"); err != nil {
		t.Fatal(err)
	}
	l.Release("x")
	l.Restore("x")
	if l.InFlight("x") != 0 {
		t.Fatal("nil limiter tracked state")
	}
}

// TestSchedulerSingleFlowIsFIFO: with one tenant and one class the WFQ
// degenerates to exactly admission order — the pre-QoS contract.
func TestSchedulerSingleFlowIsFIFO(t *testing.T) {
	s := NewScheduler(SchedulerConfig{})
	for i := 0; i < 10; i++ {
		if err := s.Push(DefaultTenant, ClassBatch, 100, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		got, ok := s.Pop()
		if !ok || got.(int) != i {
			t.Fatalf("pop %d = %v (ok=%v), want FIFO order", i, got, ok)
		}
	}
}

// TestSchedulerInteractiveOvertakesBatchBacklog: a deep batch backlog is
// already queued when one interactive item arrives; the interactive item
// must be dispatched next (its finish tag is far smaller), and batch order
// is preserved around it.
func TestSchedulerInteractiveOvertakesBatchBacklog(t *testing.T) {
	s := NewScheduler(SchedulerConfig{})
	for i := 0; i < 20; i++ {
		if err := s.Push("bulk", ClassBatch, 1000, fmt.Sprintf("batch-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// One batch item dispatches first (it was alone when it arrived).
	first, _ := s.Pop()
	if first != "batch-0" {
		t.Fatalf("first pop = %v, want batch-0", first)
	}
	if err := s.Push("ui", ClassInteractive, 1, "interactive-0"); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Pop()
	if got != "interactive-0" {
		t.Fatalf("pop after interactive push = %v, want interactive-0 (overtakes %d queued batch items)", got, 19)
	}
	next, _ := s.Pop()
	if next != "batch-1" {
		t.Fatalf("batch order disturbed: pop = %v, want batch-1", next)
	}
}

// TestSchedulerWeightedShare: two backlogged tenants with 3:1 weights must
// dispatch in a ~3:1 interleave, not strict alternation and not
// starvation.
func TestSchedulerWeightedShare(t *testing.T) {
	s := NewScheduler(SchedulerConfig{
		TenantWeights: map[string]float64{"heavy": 3, "light": 1},
	})
	const n = 40
	for i := 0; i < n; i++ {
		s.Push("heavy", ClassBatch, 10, "heavy")
		s.Push("light", ClassBatch, 10, "light")
	}
	heavyFirst := 0
	for i := 0; i < 24; i++ {
		it, _ := s.Pop()
		if it == "heavy" {
			heavyFirst++
		}
	}
	// Ideal share over 24 dispatches is 18 heavy / 6 light; allow slack
	// for tag rounding at the boundary.
	if heavyFirst < 15 || heavyFirst > 21 {
		t.Fatalf("heavy got %d of 24 dispatches, want ~18 (3:1 share)", heavyFirst)
	}
}

// TestSchedulerCapacityAndClose: capacity refuses with ErrFull, Close
// refuses new pushes with ErrClosed but drains the backlog, then Pop
// reports done.
func TestSchedulerCapacityAndClose(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Capacity: 2})
	if err := s.Push("a", ClassBatch, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Push("a", ClassBatch, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Push("a", ClassBatch, 1, 3); !errors.Is(err, ErrFull) {
		t.Fatalf("push at capacity = %v, want ErrFull", err)
	}
	// ForcePush ignores capacity (recovery path).
	if err := s.ForcePush("a", ClassBatch, 1, 3); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := s.Push("a", ClassBatch, 1, 4); !errors.Is(err, ErrClosed) {
		t.Fatalf("push after close = %v, want ErrClosed", err)
	}
	for want := 1; want <= 3; want++ {
		got, ok := s.Pop()
		if !ok || got.(int) != want {
			t.Fatalf("drain pop = %v (ok=%v), want %d", got, ok, want)
		}
	}
	if _, ok := s.Pop(); ok {
		t.Fatal("Pop after drain returned ok")
	}
}

// TestSchedulerBlockingPop: Pop blocks until a push arrives, and Close
// wakes blocked pops. Run with -race to catch signaling bugs.
func TestSchedulerBlockingPop(t *testing.T) {
	s := NewScheduler(SchedulerConfig{})
	got := make(chan any, 1)
	go func() {
		it, ok := s.Pop()
		if !ok {
			got <- nil
			return
		}
		got <- it
	}()
	time.Sleep(10 * time.Millisecond)
	s.Push("a", ClassInteractive, 1, "wake")
	select {
	case it := <-got:
		if it != "wake" {
			t.Fatalf("blocked pop woke with %v", it)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Pop never woke on Push")
	}

	done := make(chan struct{})
	go func() {
		_, ok := s.Pop()
		if ok {
			t.Error("Pop on closed empty scheduler returned ok")
		}
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	s.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Pop never woke on Close")
	}
}

// TestSchedulerConcurrent hammers Push/Pop from many goroutines under the
// race detector and checks conservation: every pushed item is popped
// exactly once.
func TestSchedulerConcurrent(t *testing.T) {
	s := NewScheduler(SchedulerConfig{})
	const producers, perProducer = 8, 200
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", p%3)
			class := ClassBatch
			if p%2 == 0 {
				class = ClassInteractive
			}
			for i := 0; i < perProducer; i++ {
				if err := s.Push(tenant, class, float64(1+i%7), p*perProducer+i); err != nil {
					t.Errorf("push: %v", err)
					return
				}
			}
		}(p)
	}
	seen := make([]bool, producers*perProducer)
	var cmu sync.Mutex
	var cwg sync.WaitGroup
	for c := 0; c < 4; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				it, ok := s.Pop()
				if !ok {
					return
				}
				cmu.Lock()
				idx := it.(int)
				if seen[idx] {
					t.Errorf("item %d popped twice", idx)
				}
				seen[idx] = true
				cmu.Unlock()
			}
		}()
	}
	wg.Wait()
	// Wait for the backlog to drain, then close to release the consumers.
	for s.Len() > 0 {
		time.Sleep(time.Millisecond)
	}
	s.Close()
	cwg.Wait()
	for i, ok := range seen {
		if !ok {
			t.Fatalf("item %d never popped", i)
		}
	}
}
