package qos

import (
	"errors"
	"sync"
)

// Scheduler sentinels.
var (
	// ErrFull reports a scheduler at its global capacity — the server's
	// load-shedding boundary (HTTP 503), shared by every tenant.
	ErrFull = errors.New("qos: scheduler full")
	// ErrClosed reports a scheduler that has stopped admitting (drain).
	ErrClosed = errors.New("qos: scheduler closed")
)

// SchedulerConfig tunes the weighted-fair queue.
type SchedulerConfig struct {
	// Capacity bounds the total queued (not yet popped) items across all
	// flows. <= 0 means unbounded.
	Capacity int
	// ClassWeights maps priority-class names to weights. Missing classes
	// weigh 1. Nil selects DefaultClassWeights.
	ClassWeights map[string]float64
	// TenantWeights maps tenant names to weights. Missing tenants weigh
	// DefaultTenantWeight (or 1 when that too is zero).
	TenantWeights map[string]float64
	// DefaultTenantWeight applies to tenants absent from TenantWeights;
	// <= 0 selects 1.
	DefaultTenantWeight float64
}

// flowKey identifies one tenant × class queue.
type flowKey struct {
	tenant, class string
}

// entry is one queued item with its virtual start/finish tags.
type entry struct {
	item   any
	start  float64
	finish float64
}

// flow is one tenant × class FIFO with its virtual-time bookkeeping.
type flow struct {
	key   flowKey
	items []entry
	// lastFinish is the finish tag of the most recently enqueued item —
	// the next item in this flow starts no earlier.
	lastFinish float64
}

// Scheduler is a start-time fair queueing (SFQ) dispatcher over per-tenant
// × per-class flows. Push assigns each item a virtual finish tag
// (start + cost/weight); Pop blocks until an item is available and always
// returns the globally smallest finish tag, breaking ties by flow key so
// dispatch order is deterministic. Within one flow, order is strict FIFO —
// with a single flow the scheduler is exactly a FIFO queue.
//
// Close stops admission but lets Pop drain the remaining backlog (the
// server cancels those jobs' contexts; each is finalized as it is popped),
// then return false.
type Scheduler struct {
	mu     sync.Mutex
	cond   *sync.Cond
	cfg    SchedulerConfig
	flows  map[flowKey]*flow
	vtime  float64 // virtual time: start tag of the last dispatched item
	size   int
	closed bool
}

// NewScheduler builds a scheduler.
func NewScheduler(cfg SchedulerConfig) *Scheduler {
	if cfg.ClassWeights == nil {
		cfg.ClassWeights = DefaultClassWeights()
	}
	if cfg.DefaultTenantWeight <= 0 {
		cfg.DefaultTenantWeight = 1
	}
	s := &Scheduler{cfg: cfg, flows: map[flowKey]*flow{}}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// weight resolves one flow's weight: tenant weight × class weight, floored
// at a tiny positive value so a zero-configured weight cannot divide by
// zero or park a flow forever.
func (s *Scheduler) weight(k flowKey) float64 {
	tw := s.cfg.DefaultTenantWeight
	if w, ok := s.cfg.TenantWeights[k.tenant]; ok && w > 0 {
		tw = w
	}
	cw := 1.0
	if w, ok := s.cfg.ClassWeights[k.class]; ok && w > 0 {
		cw = w
	}
	w := tw * cw
	if w <= 0 {
		w = 1e-9
	}
	return w
}

// Push enqueues an item for tenant × class with the given cost estimate
// (<= 0 counts as 1). It returns ErrFull at capacity and ErrClosed after
// Close; the caller maps those to 503s.
func (s *Scheduler) Push(tenant, class string, cost float64, item any) error {
	return s.push(tenant, class, cost, item, false)
}

// ForcePush enqueues ignoring the capacity bound — journal recovery uses
// it so every job admitted before a crash fits regardless of the
// configured queue depth. It still refuses after Close.
func (s *Scheduler) ForcePush(tenant, class string, cost float64, item any) error {
	return s.push(tenant, class, cost, item, true)
}

func (s *Scheduler) push(tenant, class string, cost float64, item any, force bool) error {
	if cost <= 0 {
		cost = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if !force && s.cfg.Capacity > 0 && s.size >= s.cfg.Capacity {
		return ErrFull
	}
	k := flowKey{tenant, class}
	f, ok := s.flows[k]
	if !ok {
		f = &flow{key: k}
		s.flows[k] = f
	}
	// SFQ tags: a flow that was idle starts at the current virtual time
	// (no credit for the past); a backlogged flow continues where its last
	// item finished.
	start := s.vtime
	if f.lastFinish > start {
		start = f.lastFinish
	}
	finish := start + cost/s.weight(k)
	f.lastFinish = finish
	f.items = append(f.items, entry{item: item, start: start, finish: finish})
	s.size++
	s.cond.Signal()
	return nil
}

// Pop blocks until an item is available and returns the one with the
// globally smallest virtual finish tag. After Close it keeps draining the
// backlog, then returns (nil, false) once empty — worker loops exit on
// the false.
func (s *Scheduler) Pop() (any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.size == 0 {
		if s.closed {
			return nil, false
		}
		s.cond.Wait()
	}
	var best *flow
	for _, f := range s.flows {
		if len(f.items) == 0 {
			continue
		}
		if best == nil || less(f, best) {
			best = f
		}
	}
	e := best.items[0]
	// Shift rather than re-slice forever: the backing array is reused once
	// the flow drains, and flows are few.
	copy(best.items, best.items[1:])
	best.items = best.items[:len(best.items)-1]
	s.size--
	if e.start > s.vtime {
		s.vtime = e.start
	}
	return e.item, true
}

// less orders flows by head finish tag, tie-breaking on the flow key so
// concurrent tenants dispatch in a stable, deterministic order.
func less(a, b *flow) bool {
	af, bf := a.items[0].finish, b.items[0].finish
	if af != bf {
		return af < bf
	}
	if a.key.tenant != b.key.tenant {
		return a.key.tenant < b.key.tenant
	}
	return a.key.class < b.key.class
}

// Close stops admission and wakes every blocked Pop. Remaining items keep
// draining through Pop; once the backlog is empty Pop returns false.
// Idempotent.
func (s *Scheduler) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.cond.Broadcast()
}

// Len returns the total queued item count.
func (s *Scheduler) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// FlowDepth is one flow's queued backlog, for metrics.
type FlowDepth struct {
	Tenant string
	Class  string
	Depth  int
}

// Depths snapshots every non-empty flow's backlog.
func (s *Scheduler) Depths() []FlowDepth {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]FlowDepth, 0, len(s.flows))
	for k, f := range s.flows {
		if len(f.items) > 0 {
			out = append(out, FlowDepth{Tenant: k.tenant, Class: k.class, Depth: len(f.items)})
		}
	}
	return out
}
