// Package qos is the serving layer's fairness-and-isolation policy: it
// decides which tenant's work runs next and how much work one tenant may
// have in the system at all, so a single client flooding million-particle
// batch FIT jobs cannot starve everyone else's interactive lookups.
//
// Two mechanisms compose:
//
//   - Limiter: per-tenant admission control — a token-bucket rate limit on
//     submissions plus an in-flight quota (queued + running jobs). A tenant
//     over either limit is refused with a typed, per-tenant error
//     (*RateError / *QuotaError, HTTP 429 at the API) while every other
//     tenant keeps being served; this is deliberately distinct from the
//     global capacity 503, which means "the server is full", not "you are
//     over budget".
//
//   - Scheduler: a weighted-fair queue (start-time fair queueing) over
//     per-tenant × priority-class flows. Each admitted item carries a cost
//     estimate; its flow accumulates virtual time at cost/weight, and
//     workers always pull the globally smallest virtual finish tag. An
//     interactive flow with a large class weight therefore bounds its wait
//     by its own (tiny) backlog regardless of how deep a batch tenant's
//     queue is — fairness by construction, not by polling heuristics.
//
// Within one flow, order is strict FIFO, and with a single flow (one
// tenant, one class — every pre-QoS deployment) the scheduler degenerates
// to exactly the admission-order FIFO the server shipped with, so enabling
// the package is behavior-preserving until tenants actually diverge.
package qos

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// Priority classes. Class names are free-form at the API (the scheduler
// treats any string as a flow dimension), but the serving layer maps jobs
// onto these two.
const (
	// ClassInteractive is the latency-sensitive class: short
	// characterization lookups a human (or a dashboard) is waiting on.
	ClassInteractive = "interactive"
	// ClassBatch is the throughput class: long Monte-Carlo FIT
	// integrations that tolerate queueing and preemption.
	ClassBatch = "batch"
)

// DefaultTenant is the flow a request without an X-Tenant header lands in.
const DefaultTenant = "anon"

// DefaultClassWeights favor interactive work 10:1 — an interactive job's
// virtual finish tag grows ten times slower per unit cost, so it overtakes
// any batch backlog while batch still gets a guaranteed 1/11 share under
// saturation (WFQ is work-conserving: an idle interactive flow cedes its
// entire share to batch).
func DefaultClassWeights() map[string]float64 {
	return map[string]float64{ClassInteractive: 10, ClassBatch: 1}
}

// RateError reports a tenant over its submission rate limit. The API maps
// it to HTTP 429 with a Retry-After of RetryAfter rounded up.
type RateError struct {
	Tenant string
	// RetryAfter is how long until the bucket refills one token.
	RetryAfter time.Duration
}

func (e *RateError) Error() string {
	return fmt.Sprintf("qos: tenant %q over submission rate limit (retry in %s)",
		e.Tenant, e.RetryAfter.Round(time.Millisecond))
}

// QuotaError reports a tenant at its in-flight quota. The API maps it to
// HTTP 429; the tenant must wait for one of its own jobs to finish.
type QuotaError struct {
	Tenant   string
	InFlight int
	Limit    int
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("qos: tenant %q at in-flight quota (%d of %d jobs queued or running)",
		e.Tenant, e.InFlight, e.Limit)
}

// LimiterConfig tunes per-tenant admission control. The zero value
// disables both mechanisms (every Admit and Acquire succeeds).
type LimiterConfig struct {
	// Rate is the sustained submission rate every tenant gets, tokens
	// (submissions) per second. <= 0 disables rate limiting.
	Rate float64
	// Burst is the bucket depth — how many submissions a tenant can land
	// back-to-back after an idle period. <= 0 selects max(1, Rate).
	Burst float64
	// Quota bounds one tenant's in-flight jobs (queued + running).
	// <= 0 disables the quota.
	Quota int
	// Now supplies the clock (tests inject a fake; nil selects time.Now).
	Now func() time.Time
}

// Limiter enforces per-tenant token-bucket rate limits and in-flight
// quotas. All methods are safe for concurrent use; a nil *Limiter is a
// no-op that admits everything, following the repo's nil-receiver idiom.
type Limiter struct {
	mu       sync.Mutex
	cfg      LimiterConfig
	buckets  map[string]*bucket
	inflight map[string]int
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewLimiter builds a limiter.
func NewLimiter(cfg LimiterConfig) *Limiter {
	if cfg.Rate > 0 && cfg.Burst <= 0 {
		cfg.Burst = math.Max(1, cfg.Rate)
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Limiter{
		cfg:      cfg,
		buckets:  map[string]*bucket{},
		inflight: map[string]int{},
	}
}

// Admit burns one rate token for the tenant, or returns a *RateError with
// the time until the next token when the bucket is empty. With rate
// limiting disabled (or a nil limiter) it always succeeds. A rejected
// submission burns nothing.
func (l *Limiter) Admit(tenant string) error {
	if l == nil || l.cfg.Rate <= 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.cfg.Now()
	b, ok := l.buckets[tenant]
	if !ok {
		b = &bucket{tokens: l.cfg.Burst, last: now}
		l.buckets[tenant] = b
	}
	// Refill lazily: elapsed wall time converts to tokens at the
	// configured rate, capped at the burst depth.
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(l.cfg.Burst, b.tokens+dt*l.cfg.Rate)
	}
	b.last = now
	if b.tokens < 1 {
		wait := time.Duration((1 - b.tokens) / l.cfg.Rate * float64(time.Second))
		return &RateError{Tenant: tenant, RetryAfter: wait}
	}
	b.tokens--
	return nil
}

// Acquire counts one in-flight job against the tenant's quota, or returns
// a *QuotaError when the tenant is already at its limit. Pair every
// successful Acquire with exactly one Release when the job reaches a
// terminal state.
func (l *Limiter) Acquire(tenant string) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cfg.Quota > 0 && l.inflight[tenant] >= l.cfg.Quota {
		return &QuotaError{Tenant: tenant, InFlight: l.inflight[tenant], Limit: l.cfg.Quota}
	}
	l.inflight[tenant]++
	return nil
}

// Restore counts one in-flight job without checking the quota — journal
// recovery uses it so jobs admitted before a crash are never refused their
// own slots on replay (the quota may even be temporarily exceeded; it
// drains as the recovered jobs finish).
func (l *Limiter) Restore(tenant string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inflight[tenant]++
}

// Release returns one in-flight slot to the tenant.
func (l *Limiter) Release(tenant string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inflight[tenant] > 0 {
		l.inflight[tenant]--
		if l.inflight[tenant] == 0 {
			delete(l.inflight, tenant)
		}
	}
}

// InFlight returns the tenant's current queued + running job count.
func (l *Limiter) InFlight(tenant string) int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inflight[tenant]
}
