package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzCheckpointLoad drives Resume with arbitrary file bytes: every input
// must either produce a usable store (round-tripping its stages) or fail
// with a typed error — *CorruptError or ErrConfigMismatch — never a panic
// and never an untyped decode failure.
func FuzzCheckpointLoad(f *testing.F) {
	f.Add([]byte(`{"version":1,"config_hash":"h","stages":{}}`))
	f.Add([]byte(`{"version":1,"config_hash":"h","stages":{"pof":{"points":[0.1,0.2]}}}`))
	f.Add([]byte(`{"version":1,"config_hash":"other","stages":{}}`))
	f.Add([]byte(`{"version":2,"config_hash":"h","stages":{}}`))
	f.Add([]byte(`{"version":1,"config_hash":"h","stages":{"a":`)) // truncated
	f.Add([]byte(`[]`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "ck.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Resume(path, "h")
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) && !errors.Is(err, ErrConfigMismatch) {
				t.Fatalf("untyped rejection %T: %v", err, err)
			}
			return
		}
		// An accepted checkpoint must round-trip every stage it claims.
		for _, stage := range s.Stages() {
			var v any
			if _, err := s.Load(stage, &v); err != nil {
				t.Fatalf("accepted checkpoint fails stage %q load: %v", stage, err)
			}
		}
		// And stay writable: Save must not fail on a resumed store.
		if err := s.Save("fuzz-probe", 42); err != nil {
			t.Fatalf("save on resumed store: %v", err)
		}
	})
}
