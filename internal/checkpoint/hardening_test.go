package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCorruptCheckpointTyped drives the disk trust boundary: a damaged
// checkpoint file must surface a *CorruptError carrying the file path and
// the decode cause, so CLIs can tell users which file to delete.
func TestCorruptCheckpointTyped(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name string
		body string
	}{
		{"truncated", `{"version":1,"config_hash":"h","stages":{"a":`},
		{"not json", "\x00\x01garbage"},
		{"wrong type", `[1,2,3]`},
		{"future version", `{"version":99,"config_hash":"h","stages":{}}`},
		{"empty file", ``},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			path := filepath.Join(dir, c.name+".json")
			if err := os.WriteFile(path, []byte(c.body), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := Resume(path, "h")
			if err == nil {
				t.Fatal("corrupt checkpoint accepted")
			}
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("error %T is not *CorruptError: %v", err, err)
			}
			if ce.Path != path {
				t.Errorf("CorruptError.Path = %q, want %q", ce.Path, path)
			}
			if ce.Cause == nil {
				t.Error("CorruptError.Cause is nil")
			}
			if !strings.Contains(err.Error(), path) {
				t.Errorf("error %q does not name the file", err)
			}
		})
	}
	// A missing file is NOT corruption — it must stay an untyped I/O error
	// so "never ran" and "damaged" remediation advice differ.
	_, err := Resume(filepath.Join(dir, "absent.json"), "h")
	var ce *CorruptError
	if errors.As(err, &ce) {
		t.Errorf("missing file misreported as corruption: %v", err)
	}
}

// TestCorruptStageTyped verifies that stage-level decode failures (valid
// file, wrong shape inside a slot) also surface as *CorruptError naming the
// stage.
func TestCorruptStageTyped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	s, err := Create(path, "h")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save("pof", map[string]string{"k": "not-a-number"}); err != nil {
		t.Fatal(err)
	}
	var into map[string]float64
	_, err = s.Load("pof", &into)
	if err == nil {
		t.Fatal("mismatched stage shape accepted")
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("error %T is not *CorruptError: %v", err, err)
	}
	if ce.Stage != "pof" {
		t.Errorf("CorruptError.Stage = %q, want %q", ce.Stage, "pof")
	}
	if ce.Path != path {
		t.Errorf("CorruptError.Path = %q, want %q", ce.Path, path)
	}
}
