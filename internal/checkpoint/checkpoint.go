// Package checkpoint persists the completed units of a long-running sweep
// to a JSON file so an interrupted run can resume without re-acquiring
// Monte-Carlo data. The store is deliberately generic: stages are named
// slots holding arbitrary JSON states (the array engine stores its
// completed per-bin POF points plus the per-bin RNG seeds), and the whole
// file is stamped with a fingerprint of the run configuration so a
// checkpoint can never silently resume under different physics.
//
// Writes are atomic (temp file + rename in the same directory), so a crash
// mid-save leaves the previous consistent checkpoint on disk.
package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// ErrConfigMismatch reports a resume attempt against a checkpoint written
// under a different run configuration.
var ErrConfigMismatch = errors.New("checkpoint: config fingerprint mismatch")

// CorruptError reports a checkpoint file that exists but cannot be decoded —
// truncated by a dying disk, hand-edited, or not a checkpoint at all. It is
// typed so callers can distinguish "file is damaged, delete it and restart"
// from transient I/O failures.
type CorruptError struct {
	// Path is the checkpoint file that failed to decode.
	Path string
	// Stage is the stage slot that failed, or "" for file-level corruption.
	Stage string
	// Cause is the underlying decode error.
	Cause error
}

func (e *CorruptError) Error() string {
	if e.Stage != "" {
		return fmt.Sprintf("checkpoint: corrupt stage %q in %s: %v", e.Stage, e.Path, e.Cause)
	}
	return fmt.Sprintf("checkpoint: corrupt file %s: %v", e.Path, e.Cause)
}

func (e *CorruptError) Unwrap() error { return e.Cause }

// Fingerprint returns a stable hex digest of v's JSON encoding — the
// config identity stamped into checkpoint files.
func Fingerprint(v any) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("checkpoint: fingerprint: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// file is the on-disk layout.
type file struct {
	Version    int                        `json:"version"`
	ConfigHash string                     `json:"config_hash"`
	Stages     map[string]json.RawMessage `json:"stages"`
}

const version = 1

// Store is a concurrency-safe on-disk checkpoint. All methods are nil-safe:
// a nil *Store loads nothing and saves nowhere, so instrumented code needs
// no "is checkpointing on?" branches.
type Store struct {
	mu   sync.Mutex
	path string
	data file
}

// Create starts a fresh checkpoint at path for the given config hash,
// overwriting any existing file there.
func Create(path, configHash string) (*Store, error) {
	s := &Store{path: path, data: file{
		Version:    version,
		ConfigHash: configHash,
		Stages:     map[string]json.RawMessage{},
	}}
	if err := s.flushLocked(); err != nil {
		return nil, err
	}
	return s, nil
}

// Resume opens an existing checkpoint at path, rejecting a missing file, a
// malformed file, or one whose config hash differs from configHash.
func Resume(path, configHash string) (*Store, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: resume: %w", err)
	}
	var f file
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, &CorruptError{Path: path, Cause: err}
	}
	if f.Version != version {
		return nil, &CorruptError{Path: path,
			Cause: fmt.Errorf("unsupported version %d (want %d)", f.Version, version)}
	}
	if f.ConfigHash != configHash {
		return nil, fmt.Errorf("%w: file %s was written for config %.12s…, this run is %.12s…",
			ErrConfigMismatch, path, f.ConfigHash, configHash)
	}
	if f.Stages == nil {
		f.Stages = map[string]json.RawMessage{}
	}
	return &Store{path: path, data: f}, nil
}

// Path returns the backing file path ("" on a nil store).
func (s *Store) Path() string {
	if s == nil {
		return ""
	}
	return s.path
}

// Load unmarshals the named stage's state into v, reporting whether the
// stage was present. Nil store: (false, nil).
func (s *Store) Load(stage string, v any) (bool, error) {
	if s == nil {
		return false, nil
	}
	s.mu.Lock()
	raw, ok := s.data.Stages[stage]
	s.mu.Unlock()
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(raw, v); err != nil {
		return false, &CorruptError{Path: s.path, Stage: stage, Cause: err}
	}
	return true, nil
}

// Save marshals v as the named stage's state and atomically rewrites the
// file. Nil store: no-op.
func (s *Store) Save(stage string, v any) error {
	if s == nil {
		return nil
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("checkpoint: stage %q: %w", stage, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data.Stages[stage] = raw
	return s.flushLocked()
}

// Stages returns the names of the stages currently held (nil store: none).
func (s *Store) Stages() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.data.Stages))
	for k := range s.data.Stages {
		out = append(out, k)
	}
	return out
}

// flushLocked writes the whole file atomically; callers hold s.mu (or have
// exclusive access during construction).
func (s *Store) flushLocked() error {
	b, err := json.MarshalIndent(s.data, "", "  ")
	if err != nil {
		return fmt.Errorf("checkpoint: encode: %w", err)
	}
	dir := filepath.Dir(s.path)
	tmp, err := os.CreateTemp(dir, ".checkpoint-*")
	if err != nil {
		return fmt.Errorf("checkpoint: write: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: write: %w", err)
	}
	if err := os.Rename(tmpName, s.path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: write: %w", err)
	}
	return nil
}
