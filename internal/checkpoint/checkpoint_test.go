package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

type binState struct {
	Seeds  []uint64  `json:"seeds"`
	Values []float64 `json:"values"`
}

func TestCreateSaveResumeRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	hash, err := Fingerprint(map[string]int{"rows": 9})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Create(path, hash)
	if err != nil {
		t.Fatal(err)
	}
	want := binState{Seeds: []uint64{1, 2, 3}, Values: []float64{0.5, 0.25}}
	if err := s.Save("fit/alpha", want); err != nil {
		t.Fatal(err)
	}
	if err := s.Save("fit/proton", binState{Seeds: []uint64{9}}); err != nil {
		t.Fatal(err)
	}

	r, err := Resume(path, hash)
	if err != nil {
		t.Fatal(err)
	}
	var got binState
	ok, err := r.Load("fit/alpha", &got)
	if err != nil || !ok {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	if len(got.Seeds) != 3 || got.Seeds[2] != 3 || got.Values[1] != 0.25 {
		t.Fatalf("round trip mangled state: %+v", got)
	}
	if ok, _ := r.Load("fit/missing", &got); ok {
		t.Fatal("missing stage reported present")
	}
	if len(r.Stages()) != 2 {
		t.Fatalf("stages = %v", r.Stages())
	}
}

func TestResumeRejectsMismatchedConfig(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	if _, err := Create(path, "aaaa"); err != nil {
		t.Fatal(err)
	}
	_, err := Resume(path, "bbbb")
	if !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("got %v, want ErrConfigMismatch", err)
	}
}

func TestResumeRejectsMissingAndMalformed(t *testing.T) {
	dir := t.TempDir()
	if _, err := Resume(filepath.Join(dir, "absent.json"), "h"); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(bad, "h"); err == nil {
		t.Fatal("malformed file accepted")
	}
}

func TestCreateOverwritesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	s, err := Create(path, "h1")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save("stage", binState{Seeds: []uint64{1}}); err != nil {
		t.Fatal(err)
	}
	fresh, err := Create(path, "h1")
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh.Stages()) != 0 {
		t.Fatal("Create did not start fresh")
	}
	r, err := Resume(path, "h1")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Stages()) != 0 {
		t.Fatal("overwrite not flushed to disk")
	}
}

func TestNilStoreIsNoOp(t *testing.T) {
	var s *Store
	if err := s.Save("x", 1); err != nil {
		t.Fatal(err)
	}
	var v int
	ok, err := s.Load("x", &v)
	if ok || err != nil {
		t.Fatalf("nil store load: ok=%v err=%v", ok, err)
	}
	if s.Path() != "" || s.Stages() != nil {
		t.Fatal("nil store leaked state")
	}
}

func TestFingerprintStable(t *testing.T) {
	type cfg struct {
		A int
		B string
	}
	h1, err := Fingerprint(cfg{1, "x"})
	if err != nil {
		t.Fatal(err)
	}
	h2, _ := Fingerprint(cfg{1, "x"})
	h3, _ := Fingerprint(cfg{2, "x"})
	if h1 != h2 {
		t.Fatal("fingerprint not deterministic")
	}
	if h1 == h3 {
		t.Fatal("fingerprint ignores config changes")
	}
}
