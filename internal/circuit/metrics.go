package circuit

import "finser/internal/obs"

// Metrics is the solver's observability hook. Attach one to Circuit.Metrics
// to count Newton work across every solve the circuit performs; leave it
// nil (the default) for a zero-cost uninstrumented solver — the obs
// counters are nil-receiver no-ops, so a nil *Metrics simply skips the
// field loads.
type Metrics struct {
	// NewtonIters counts Newton–Raphson iterations across all solves.
	NewtonIters *obs.Counter
	// LUSolves counts dense-LU factor+solve calls (one per Newton
	// iteration).
	LUSolves *obs.Counter
	// TransientSteps counts accepted transient time steps.
	TransientSteps *obs.Counter
	// StepHalvings counts timestep halvings after Newton failures.
	StepHalvings *obs.Counter
	// FailedSolves counts Newton solves that did not converge.
	FailedSolves *obs.Counter
}

// NewMetrics registers the solver counters on r under the "circuit." prefix.
// Returns nil when r is nil, preserving the no-op path.
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		NewtonIters:    r.Counter("circuit.newton_iters"),
		LUSolves:       r.Counter("circuit.lu_solves"),
		TransientSteps: r.Counter("circuit.transient_steps"),
		StepHalvings:   r.Counter("circuit.step_halvings"),
		FailedSolves:   r.Counter("circuit.failed_solves"),
	}
}
