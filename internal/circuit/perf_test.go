package circuit

import (
	"testing"
)

// TestNewtonSolveZeroAlloc asserts that a converged Newton step on a warm
// workspace allocates nothing: the MNA matrix, RHS, and stamper live on the
// circuit's reusable workspace, so the per-timestep cost is pure arithmetic.
func TestNewtonSolveZeroAlloc(t *testing.T) {
	c := New()
	vdd := c.Node("vdd")
	mid := c.Node("mid")
	c.AddVSource("V1", vdd, Ground, DC(1))
	c.AddResistor("R1", vdd, mid, 1e3)
	c.AddResistor("R2", mid, Ground, 2e3)

	c.assignBranches()
	n := c.unknowns()
	x := make(Solution, n)
	xPrev := make(Solution, n)
	if _, err := c.newtonSolve(x, xPrev, 0, 0, BackwardEuler); err != nil {
		t.Fatal(err) // warm the workspace
	}
	allocs := testing.AllocsPerRun(200, func() {
		for i := range x {
			x[i] = 0
		}
		if _, err := c.newtonSolve(x, xPrev, 0, 0, BackwardEuler); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("newtonSolve allocates %v objects/op on a warm workspace, want 0", allocs)
	}
	if v := x[mid]; v < 0.66 || v > 0.67 {
		t.Fatalf("divider voltage %v, want 2/3", v)
	}
}

// TestTransientReuseNoGrowth: repeated transients on the same circuit must
// reuse the workspace — the second run's trajectory storage is the only
// per-run growth, and results from the first run must stay intact (arena
// snapshots are never overwritten by later analyses).
func TestTransientReuseNoGrowth(t *testing.T) {
	c := New()
	in := c.Node("in")
	out := c.Node("out")
	c.AddVSource("V1", in, Ground, PWL{
		Times:  []float64{0, 1e-11, 2e-11},
		Values: []float64{0, 0, 1},
	})
	c.AddResistor("R1", in, out, 1e3)
	c.AddCapacitor("C1", out, Ground, 1e-13)
	spec := TransientSpec{TStop: 1e-9, InitStep: 1e-12, MaxStep: 2e-11}

	op, err := c.OperatingPoint(nil)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := c.Transient(op, spec)
	if err != nil {
		t.Fatal(err)
	}
	first := append(Solution(nil), r1.Values[len(r1.Values)-1]...)

	r2, err := c.Transient(op, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Same circuit, same spec, stateless start: trajectories must agree and
	// the first result must not have been clobbered by the second run.
	if len(r1.Times) != len(r2.Times) {
		t.Fatalf("step counts differ across reruns: %d vs %d", len(r1.Times), len(r2.Times))
	}
	for i := range r1.Times {
		if r1.Times[i] != r2.Times[i] {
			t.Fatalf("time %d differs: %v vs %v", i, r1.Times[i], r2.Times[i])
		}
		for j := range r1.Values[i] {
			if r1.Values[i][j] != r2.Values[i][j] {
				t.Fatalf("value [%d][%d] differs: %v vs %v", i, j, r1.Values[i][j], r2.Values[i][j])
			}
		}
	}
	last := r1.Values[len(r1.Values)-1]
	for j := range first {
		if first[j] != last[j] {
			t.Fatalf("first run's stored trajectory mutated at %d: %v vs %v", j, first[j], last[j])
		}
	}
	// The trajectory pre-sizing must have avoided append-regrowth.
	if est := estimateSteps(spec, len(c.collectBreakpoints(spec))); len(r1.Times) > est {
		t.Errorf("estimateSteps underestimated: %d points > estimate %d", len(r1.Times), est)
	}
}
