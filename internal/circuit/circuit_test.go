package circuit

import (
	"math"
	"testing"
)

func TestVoltageDivider(t *testing.T) {
	c := New()
	in := c.Node("in")
	mid := c.Node("mid")
	c.AddVSource("v1", in, Ground, DC(1.0))
	c.AddResistor("r1", in, mid, 1e3)
	c.AddResistor("r2", mid, Ground, 3e3)
	sol, err := c.OperatingPoint(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := sol[mid]; math.Abs(got-0.75) > 1e-9 {
		t.Errorf("divider mid = %v, want 0.75", got)
	}
	if got := sol[in]; math.Abs(got-1.0) > 1e-9 {
		t.Errorf("divider in = %v, want 1.0", got)
	}
}

func TestVSourceBranchCurrent(t *testing.T) {
	c := New()
	in := c.Node("in")
	v := c.AddVSource("v1", in, Ground, DC(2.0))
	c.AddResistor("r1", in, Ground, 1e3)
	sol, err := c.OperatingPoint(nil)
	if err != nil {
		t.Fatal(err)
	}
	// 2 V across 1 kΩ → 2 mA out of the source's + terminal, so the branch
	// current (flowing + to - inside the source) is -2 mA.
	if got := sol[v.Branch()]; math.Abs(got+2e-3) > 1e-9 {
		t.Errorf("source current = %v, want -2e-3", got)
	}
}

func TestCurrentSourceIntoResistor(t *testing.T) {
	c := New()
	n := c.Node("n")
	c.AddISource("i1", Ground, n, DC(1e-3))
	c.AddResistor("r1", n, Ground, 2e3)
	sol, err := c.OperatingPoint(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := sol[n]; math.Abs(got-2.0) > 1e-6 {
		t.Errorf("node voltage = %v, want 2.0", got)
	}
}

func TestCapacitorOpenAtDC(t *testing.T) {
	c := New()
	in := c.Node("in")
	mid := c.Node("mid")
	c.AddVSource("v1", in, Ground, DC(1.0))
	c.AddResistor("r1", in, mid, 1e3)
	c.AddCapacitor("c1", mid, Ground, 1e-12)
	sol, err := c.OperatingPoint(nil)
	if err != nil {
		t.Fatal(err)
	}
	// No DC path to ground through the cap: mid floats to the source value
	// (pinned by gmin).
	if got := sol[mid]; math.Abs(got-1.0) > 1e-3 {
		t.Errorf("mid = %v, want ≈ 1.0", got)
	}
}

func TestRCStepResponse(t *testing.T) {
	// Series R into C driven by a step via PWL; V_C(t) = 1 - exp(-t/RC).
	c := New()
	in := c.Node("in")
	out := c.Node("out")
	step := PWL{Times: []float64{0, 1e-12}, Values: []float64{0, 1}}
	c.AddVSource("v1", in, Ground, step)
	c.AddResistor("r1", in, out, 1e3)        // 1 kΩ
	c.AddCapacitor("c1", out, Ground, 1e-12) // 1 pF → τ = 1 ns
	init, err := c.OperatingPoint(nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Transient(init, TransientSpec{
		TStop:    5e-9,
		InitStep: 5e-12,
		MaxStep:  2e-11,
	})
	if err != nil {
		t.Fatal(err)
	}
	tau := 1e-9
	for _, tp := range []float64{0.5e-9, 1e-9, 2e-9, 4e-9} {
		want := 1 - math.Exp(-tp/tau)
		got := res.At(out, tp)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("V_C(%v) = %v, want %v", tp, got, want)
		}
	}
	if f := res.Final(out); math.Abs(f-1) > 0.01 {
		t.Errorf("final = %v, want ≈ 1", f)
	}
}

func TestRectPulseChargesCapacitor(t *testing.T) {
	// A rectangular current pulse of charge Q into capacitor C raises it by
	// exactly Q/C — the identity behind the paper's charge-equivalence
	// observation.
	c := New()
	n := c.Node("n")
	pulse := RectPulse{T0: 1e-12, Width: 10e-15, Amp: 1e-3} // Q = 1e-17 C
	c.AddISource("i1", Ground, n, pulse)
	c.AddCapacitor("c1", n, Ground, 1e-16) // 0.1 fF
	init := make(Solution, c.unknowns())
	res, err := c.Transient(init, TransientSpec{
		TStop:    5e-12,
		InitStep: 1e-15,
		MaxStep:  1e-13,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantDeltaV := pulse.Charge() / 1e-16 // 0.1 V
	if got := res.Final(n); math.Abs(got-wantDeltaV)/wantDeltaV > 0.02 {
		t.Errorf("ΔV = %v, want %v", got, wantDeltaV)
	}
}

func TestChargeEquivalenceAcrossShapes(t *testing.T) {
	// Same charge via rect, triangular, and double-exponential pulses must
	// leave the same voltage on a capacitor.
	const q = 2e-16
	shapes := []Waveform{
		RectPulse{T0: 1e-12, Width: 1e-14, Amp: q / 1e-14},
		TriPulse{T0: 1e-12, Width: 2e-14, Amp: q / 1e-14}, // Amp·W/2 = q
		DoubleExpWithCharge(1e-12, 2e-15, 2e-14, q),
	}
	var finals []float64
	for i, w := range shapes {
		c := New()
		n := c.Node("n")
		c.AddISource("i1", Ground, n, w)
		c.AddCapacitor("c1", n, Ground, 1e-15)
		init := make(Solution, c.unknowns())
		res, err := c.Transient(init, TransientSpec{TStop: 1e-11, InitStep: 5e-16, MaxStep: 2e-14})
		if err != nil {
			t.Fatalf("shape %d: %v", i, err)
		}
		finals = append(finals, res.Final(n))
	}
	want := q / 1e-15
	for i, f := range finals {
		if math.Abs(f-want)/want > 0.05 {
			t.Errorf("shape %d final = %v, want %v", i, f, want)
		}
	}
}

func TestWaveformCharges(t *testing.T) {
	r := RectPulse{T0: 0, Width: 2, Amp: 3}
	if r.Charge() != 6 {
		t.Errorf("rect charge = %v", r.Charge())
	}
	tr := TriPulse{T0: 0, Width: 2, Amp: 3}
	if tr.Charge() != 3 {
		t.Errorf("tri charge = %v", tr.Charge())
	}
	de := DoubleExpWithCharge(0, 1, 5, 8)
	if math.Abs(de.Charge()-8) > 1e-12 {
		t.Errorf("double-exp charge = %v", de.Charge())
	}
	// Numeric integral of the double-exp matches its Charge().
	sum := 0.0
	dt := 0.001
	for x := 0.0; x < 100; x += dt {
		sum += de.Value(x) * dt
	}
	if math.Abs(sum-8)/8 > 0.01 {
		t.Errorf("double-exp integral = %v, want 8", sum)
	}
}

func TestWaveformValues(t *testing.T) {
	r := RectPulse{T0: 1, Width: 2, Amp: 5}
	for _, tc := range []struct{ t, want float64 }{
		{0.5, 0}, {1, 5}, {2.9, 5}, {3, 0}, {4, 0},
	} {
		if got := r.Value(tc.t); got != tc.want {
			t.Errorf("rect(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
	tr := TriPulse{T0: 0, Width: 4, Amp: 8}
	for _, tc := range []struct{ t, want float64 }{
		{-1, 0}, {0, 0}, {1, 4}, {2, 8}, {3, 4}, {4, 0}, {5, 0},
	} {
		if got := tr.Value(tc.t); got != tc.want {
			t.Errorf("tri(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
	p := PWL{Times: []float64{1, 2, 4}, Values: []float64{0, 10, 0}}
	for _, tc := range []struct{ t, want float64 }{
		{0, 0}, {1.5, 5}, {2, 10}, {3, 5}, {5, 0},
	} {
		if got := p.Value(tc.t); got != tc.want {
			t.Errorf("pwl(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
	if (PWL{}).Value(3) != 0 {
		t.Error("empty PWL should be 0")
	}
	if (DC(2.5)).Value(99) != 2.5 || (DC(0)).Breakpoints() != nil {
		t.Error("DC waveform wrong")
	}
}

func TestTransientValidation(t *testing.T) {
	c := New()
	n := c.Node("n")
	c.AddResistor("r", n, Ground, 1)
	if _, err := c.Transient(make(Solution, 5), TransientSpec{TStop: 1, InitStep: 1e-3}); err == nil {
		t.Error("wrong-size initial condition accepted")
	}
	if _, err := c.Transient(make(Solution, 1), TransientSpec{TStop: 0, InitStep: 1e-3}); err == nil {
		t.Error("zero TStop accepted")
	}
	if _, err := c.Transient(make(Solution, 1), TransientSpec{TStop: 1, InitStep: 0}); err == nil {
		t.Error("zero InitStep accepted")
	}
}

func TestAddDevicePanics(t *testing.T) {
	c := New()
	n := c.Node("n")
	for _, fn := range []func(){
		func() { c.AddResistor("r", n, Ground, 0) },
		func() { c.AddCapacitor("c", n, Ground, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestNodeIdentity(t *testing.T) {
	c := New()
	a := c.Node("x")
	b := c.Node("x")
	if a != b {
		t.Error("same name should return same node")
	}
	if c.Node("0") != Ground || c.Node("gnd") != Ground {
		t.Error("ground aliases wrong")
	}
	if c.NodeName(a) != "x" || c.NodeName(Ground) != "0" {
		t.Error("node names wrong")
	}
	if c.NumNodes() != 1 {
		t.Errorf("NumNodes = %d", c.NumNodes())
	}
}

func TestSingularCircuit(t *testing.T) {
	// Two voltage sources in parallel with different values: singular/
	// inconsistent system must error, not hang or produce garbage.
	c := New()
	n := c.Node("n")
	c.AddVSource("v1", n, Ground, DC(1))
	c.AddVSource("v2", n, Ground, DC(2))
	if _, err := c.OperatingPoint(nil); err == nil {
		t.Error("inconsistent parallel sources accepted")
	}
}

func TestTransientResultAccessors(t *testing.T) {
	r := &TransientResult{
		Times:  []float64{0, 1, 2},
		Values: []Solution{{0}, {10}, {20}},
	}
	if r.At(0, -1) != 0 || r.At(0, 3) != 20 {
		t.Error("clamping wrong")
	}
	if r.At(0, 0.5) != 5 {
		t.Errorf("interp = %v", r.At(0, 0.5))
	}
	if r.At(0, 1) != 10 {
		t.Errorf("exact sample = %v", r.At(0, 1))
	}
	if r.MaxAbs(0) != 20 {
		t.Errorf("MaxAbs = %v", r.MaxAbs(0))
	}
	if r.At(Ground, 1) != 0 || r.Final(Ground) != 0 || r.MaxAbs(Ground) != 0 {
		t.Error("ground accessors should be 0")
	}
}
