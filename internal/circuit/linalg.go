package circuit

import (
	"errors"
	"math"
)

// denseLU solves A·x = b in place by Gaussian elimination with partial
// pivoting. A is row-major n×n, overwritten; b is overwritten with x.
// MNA systems for SRAM cells are ~10 unknowns, so a dense solver is both
// simpler and faster than any sparse machinery.
func denseLU(a [][]float64, b []float64) error {
	n := len(a)
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv := col
		best := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > best {
				best, piv = v, r
			}
		}
		if best == 0 || math.IsNaN(best) {
			return errors.New("circuit: singular MNA matrix")
		}
		if piv != col {
			a[piv], a[col] = a[col], a[piv]
			b[piv], b[col] = b[col], b[piv]
		}
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			a[r][col] = 0
			for c := col + 1; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	// Back substitution.
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * b[c]
		}
		b[r] = s / a[r][r]
	}
	return nil
}
