package circuit

import (
	"math"
	"testing"
)

// rcError integrates the RC step response with the given method and fixed
// step and returns the max deviation from the analytic solution.
func rcError(t *testing.T, method Integrator, step float64) float64 {
	t.Helper()
	c := New()
	in := c.Node("in")
	out := c.Node("out")
	c.AddVSource("v1", in, Ground, PWL{Times: []float64{0, 1e-13}, Values: []float64{0, 1}})
	c.AddResistor("r1", in, out, 1e3)
	c.AddCapacitor("c1", out, Ground, 1e-12) // τ = 1 ns
	init, err := c.OperatingPoint(nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Transient(init, TransientSpec{
		TStop:    3e-9,
		InitStep: step,
		MaxStep:  step, // fixed step: isolates the method's order
		Growth:   1.0001,
		Method:   method,
	})
	if err != nil {
		t.Fatal(err)
	}
	maxErr := 0.0
	for i, tp := range res.Times {
		if tp < 2e-13 {
			continue
		}
		want := 1 - math.Exp(-(tp-1e-13)/1e-9)
		if e := math.Abs(res.Values[i][out] - want); e > maxErr {
			maxErr = e
		}
	}
	return maxErr
}

func TestTrapezoidalBeatsBackwardEuler(t *testing.T) {
	const step = 5e-11 // 1/20 of τ
	be := rcError(t, BackwardEuler, step)
	tr := rcError(t, Trapezoidal, step)
	if tr >= be {
		t.Errorf("trapezoidal error %v not below backward Euler %v", tr, be)
	}
	if be/tr < 5 {
		t.Errorf("expected ≳ order-of-accuracy gap, got BE/trap = %v", be/tr)
	}
}

func TestIntegratorOrders(t *testing.T) {
	// Halving the step should cut BE's error ~2× and trapezoidal's ~4×.
	for _, tc := range []struct {
		method Integrator
		name   string
		lo, hi float64 // acceptable error-ratio band for step halving
	}{
		{BackwardEuler, "BE", 1.6, 2.6},
		{Trapezoidal, "trap", 3.0, 5.5},
	} {
		e1 := rcError(t, tc.method, 8e-11)
		e2 := rcError(t, tc.method, 4e-11)
		ratio := e1 / e2
		if ratio < tc.lo || ratio > tc.hi {
			t.Errorf("%s: error ratio for step halving = %v, want [%v, %v]",
				tc.name, ratio, tc.lo, tc.hi)
		}
	}
}

func TestTrapezoidalSRAMStrikeAgreement(t *testing.T) {
	// Both integrators must agree on the flip outcome near (but not at) the
	// critical charge — the flow's result cannot hinge on the integrator.
	c := New()
	n := c.Node("n")
	c.AddISource("i", Ground, n, RectPulse{T0: 1e-12, Width: 1e-14, Amp: 1e-2})
	c.AddCapacitor("c", n, Ground, 1e-16)
	for _, m := range []Integrator{BackwardEuler, Trapezoidal} {
		res, err := c.Transient(make(Solution, 1), TransientSpec{
			TStop: 5e-12, InitStep: 1e-15, MaxStep: 1e-13, Method: m,
		})
		if err != nil {
			t.Fatal(err)
		}
		want := 1e-2 * 1e-14 / 1e-16
		if got := res.Final(n); math.Abs(got-want)/want > 0.01 {
			t.Errorf("method %v: ΔV = %v, want %v", m, got, want)
		}
	}
}
