package circuit

import "testing"

// BenchmarkTransientRC times the solver on the canonical RC step response.
func BenchmarkTransientRC(b *testing.B) {
	c := New()
	in := c.Node("in")
	out := c.Node("out")
	step := PWL{Times: []float64{0, 1e-12}, Values: []float64{0, 1}}
	c.AddVSource("v1", in, Ground, step)
	c.AddResistor("r1", in, out, 1e3)
	c.AddCapacitor("c1", out, Ground, 1e-12)
	init, err := c.OperatingPoint(nil)
	if err != nil {
		b.Fatal(err)
	}
	spec := TransientSpec{TStop: 5e-9, InitStep: 5e-12, MaxStep: 2e-11}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Transient(init, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransientSolve times a full transient analysis on an
// SRAM-sized system (a 10-stage RC ladder driven by a pulse, ~11 unknowns
// — the same MNA dimension as a 6T cell): matrix assembly, dense LU, and
// the accepted-step bookkeeping dominate, which is exactly the per-strike
// cost the cell characterization pays. Run with -benchmem; the solver
// workspace reuse keeps steady-state allocs to the stored trajectory.
func BenchmarkTransientSolve(b *testing.B) {
	c := New()
	pulse := PWL{Times: []float64{0, 1e-11, 2e-11, 1e-10, 1.1e-10},
		Values: []float64{0, 0, 1, 1, 0}}
	in := c.Node("in")
	c.AddVSource("v1", in, Ground, pulse)
	prev := in
	for i := 0; i < 10; i++ {
		n := c.Node("n" + string(rune('a'+i)))
		c.AddResistor("r"+string(rune('a'+i)), prev, n, 1e3)
		c.AddCapacitor("c"+string(rune('a'+i)), n, Ground, 1e-13)
		prev = n
	}
	init, err := c.OperatingPoint(nil)
	if err != nil {
		b.Fatal(err)
	}
	spec := TransientSpec{TStop: 1e-9, InitStep: 1e-12, MaxStep: 2e-11}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Transient(init, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDenseLU times the linear kernel at SRAM-cell size.
func BenchmarkDenseLU(b *testing.B) {
	const n = 12
	a0 := make([][]float64, n)
	for i := range a0 {
		a0[i] = make([]float64, n)
		for j := range a0[i] {
			a0[i][j] = 1 / float64(i+j+1)
		}
		a0[i][i] += float64(n)
	}
	a := make([][]float64, n)
	rows := make([]float64, n*n)
	rhs := make([]float64, n)
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		for i := range a {
			a[i] = rows[i*n : (i+1)*n]
			copy(a[i], a0[i])
			rhs[i] = float64(i)
		}
		if err := denseLU(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}
