package circuit

// Resistor is a linear two-terminal resistor.
type Resistor struct {
	name string
	A, B Node
	G    float64 // conductance, S
}

// AddResistor adds a resistor of the given resistance (ohms).
func (c *Circuit) AddResistor(name string, a, b Node, ohms float64) *Resistor {
	if ohms <= 0 {
		panic("circuit: resistor needs positive resistance")
	}
	r := &Resistor{name: name, A: a, B: b, G: 1 / ohms}
	c.AddDevice(r)
	return r
}

// Name implements Device.
func (r *Resistor) Name() string { return r.name }

// Stamp implements Device.
func (r *Resistor) Stamp(s *Stamper) { s.AddConductance(r.A, r.B, r.G) }

// Capacitor is a linear two-terminal capacitor, open in DC and integrated
// with backward Euler or trapezoidal companions in transient.
type Capacitor struct {
	name string
	A, B Node
	C    float64 // farads

	iPrev float64 // branch current (A→B) at the last accepted step
}

// AddCapacitor adds a capacitor of the given capacitance (farads).
func (c *Circuit) AddCapacitor(name string, a, b Node, farads float64) *Capacitor {
	if farads <= 0 {
		panic("circuit: capacitor needs positive capacitance")
	}
	cap := &Capacitor{name: name, A: a, B: b, C: farads}
	c.AddDevice(cap)
	return cap
}

// Name implements Device.
func (cp *Capacitor) Name() string { return cp.name }

// Stamp implements Device.
//
// Backward Euler: i = (C/h)(v − v₀)  → Geq = C/h, Ieq = (C/h)·v₀.
// Trapezoidal:    i = (2C/h)(v − v₀) − i₀ → Geq = 2C/h,
// Ieq = (2C/h)·v₀ + i₀.
func (cp *Capacitor) Stamp(s *Stamper) {
	if s.DC() {
		return // open circuit at DC
	}
	vPrev := s.VPrev(cp.A) - s.VPrev(cp.B)
	var geq, ieq float64
	if s.Method() == Trapezoidal {
		geq = 2 * cp.C / s.Dt()
		ieq = geq*vPrev + cp.iPrev
	} else {
		geq = cp.C / s.Dt()
		ieq = geq * vPrev
	}
	s.AddConductance(cp.A, cp.B, geq)
	s.AddCurrent(cp.B, cp.A, ieq)
}

// accept implements stateful: record the capacitor branch current at the
// newly accepted time point.
func (cp *Capacitor) accept(vNew, vOld Solution, dt float64, method Integrator) {
	va := nodeVal(vNew, cp.A) - nodeVal(vNew, cp.B)
	vb := nodeVal(vOld, cp.A) - nodeVal(vOld, cp.B)
	if method == Trapezoidal {
		cp.iPrev = (2*cp.C/dt)*(va-vb) - cp.iPrev
	} else {
		cp.iPrev = (cp.C / dt) * (va - vb)
	}
}

// reset implements stateful: transient analyses start from a steady state
// with no capacitor current.
func (cp *Capacitor) reset() { cp.iPrev = 0 }

func nodeVal(x Solution, n Node) float64 {
	if n == Ground {
		return 0
	}
	return x[n]
}

// VSource is an independent voltage source; it takes a branch-current
// unknown (row `branch`). Current through the source flows from + (A)
// through the source to - (B).
type VSource struct {
	name   string
	A, B   Node // + and - terminals
	W      Waveform
	branch int
}

// AddVSource adds an independent voltage source with the given waveform
// between nodes a (+) and b (-).
func (c *Circuit) AddVSource(name string, a, b Node, w Waveform) *VSource {
	v := &VSource{name: name, A: a, B: b, W: w}
	c.AddDevice(v)
	return v
}

// Name implements Device.
func (v *VSource) Name() string { return v.name }

func (v *VSource) setBranch(row int) { v.branch = row }

// Stamp implements Device.
func (v *VSource) Stamp(s *Stamper) {
	k := v.branch
	if v.A != Ground {
		s.a[v.A][k] += 1
		s.a[k][v.A] += 1
	}
	if v.B != Ground {
		s.a[v.B][k] -= 1
		s.a[k][v.B] -= 1
	}
	s.b[k] += v.W.Value(s.Time())
}

// Branch returns the branch row index (valid after analysis starts);
// the solution vector holds the source current there.
func (v *VSource) Branch() int { return v.branch }

// ISource is an independent current source pushing current from node A to
// node B (conventional current out of A, into B... in SPICE convention a
// positive source value drives current from + terminal through the source
// to - terminal; here positive Value pushes current INTO node B).
type ISource struct {
	name string
	A, B Node
	W    Waveform
}

// AddISource adds an independent current source. A positive waveform value
// drives conventional current from node a, through the source, into node b
// (raising b's potential against a load).
func (c *Circuit) AddISource(name string, a, b Node, w Waveform) *ISource {
	i := &ISource{name: name, A: a, B: b, W: w}
	c.AddDevice(i)
	return i
}

// Name implements Device.
func (i *ISource) Name() string { return i.name }

// Stamp implements Device. The waveform is sampled at the step midpoint so
// pulse charge integrates exactly; see Stamper.SourceTime.
func (i *ISource) Stamp(s *Stamper) {
	s.AddCurrent(i.A, i.B, i.W.Value(s.SourceTime()))
}

// stateful is implemented by devices that carry per-timestep state the
// transient loop must maintain (reset at analysis start, update after each
// accepted step).
type stateful interface {
	accept(vNew, vOld Solution, dt float64, method Integrator)
	reset()
}
