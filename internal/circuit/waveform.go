package circuit

import "math"

// Waveform is a time-dependent source value (volts or amperes).
type Waveform interface {
	// Value returns the source value at time t (seconds).
	Value(t float64) float64
	// Breakpoints returns times at which the waveform has corners the
	// integrator should not step across. May be empty.
	Breakpoints() []float64
}

// DC is a constant waveform.
type DC float64

// Value implements Waveform.
func (d DC) Value(float64) float64 { return float64(d) }

// Breakpoints implements Waveform.
func (DC) Breakpoints() []float64 { return nil }

// RectPulse is the paper's radiation current model (§3.3): a rectangular
// pulse of amplitude Amp starting at T0 with width Width, carrying charge
// Amp·Width.
type RectPulse struct {
	T0    float64 // pulse start, s
	Width float64 // pulse width τ, s
	Amp   float64 // amplitude I = Q/τ, A
}

// Value implements Waveform.
func (p RectPulse) Value(t float64) float64 {
	if t >= p.T0 && t < p.T0+p.Width {
		return p.Amp
	}
	return 0
}

// Breakpoints implements Waveform.
func (p RectPulse) Breakpoints() []float64 { return []float64{p.T0, p.T0 + p.Width} }

// Charge returns the total injected charge in coulombs.
func (p RectPulse) Charge() float64 { return p.Amp * p.Width }

// TriPulse is a symmetric triangular pulse used by the paper's pulse-shape
// sensitivity study: rises linearly from T0 to the apex at T0+Width/2, then
// falls back to zero at T0+Width. Total charge is Amp·Width/2.
type TriPulse struct {
	T0    float64
	Width float64
	Amp   float64 // apex amplitude
}

// Value implements Waveform.
func (p TriPulse) Value(t float64) float64 {
	x := t - p.T0
	if x < 0 || x >= p.Width {
		return 0
	}
	half := p.Width / 2
	if x < half {
		return p.Amp * x / half
	}
	return p.Amp * (p.Width - x) / half
}

// Breakpoints implements Waveform.
func (p TriPulse) Breakpoints() []float64 {
	return []float64{p.T0, p.T0 + p.Width/2, p.T0 + p.Width}
}

// Charge returns the total injected charge in coulombs.
func (p TriPulse) Charge() float64 { return p.Amp * p.Width / 2 }

// DoubleExp is the classic double-exponential single-event current model
// (Baumann [17] in the paper): I(t) = I0·(exp(-(t-T0)/TauFall) -
// exp(-(t-T0)/TauRise)) for t ≥ T0. It is the baseline the literature uses
// where this paper argues a rectangular pulse of equal charge suffices.
type DoubleExp struct {
	T0      float64
	TauRise float64 // fast time constant, s
	TauFall float64 // slow time constant, s
	I0      float64 // scale, A
}

// Value implements Waveform.
func (p DoubleExp) Value(t float64) float64 {
	x := t - p.T0
	if x < 0 {
		return 0
	}
	return p.I0 * (math.Exp(-x/p.TauFall) - math.Exp(-x/p.TauRise))
}

// Breakpoints implements Waveform.
func (p DoubleExp) Breakpoints() []float64 {
	return []float64{p.T0, p.T0 + p.TauRise, p.T0 + 5*p.TauFall}
}

// Charge returns the total injected charge ∫I dt = I0·(TauFall-TauRise).
func (p DoubleExp) Charge() float64 { return p.I0 * (p.TauFall - p.TauRise) }

// DoubleExpWithCharge builds a DoubleExp carrying the given charge with the
// given time constants.
func DoubleExpWithCharge(t0, tauRise, tauFall, charge float64) DoubleExp {
	return DoubleExp{T0: t0, TauRise: tauRise, TauFall: tauFall, I0: charge / (tauFall - tauRise)}
}

// PWL is a piecewise-linear waveform defined by (time, value) corners.
// Before the first corner it holds the first value; after the last, the
// last value.
type PWL struct {
	Times  []float64
	Values []float64
}

// Value implements Waveform.
func (p PWL) Value(t float64) float64 {
	n := len(p.Times)
	if n == 0 {
		return 0
	}
	if t <= p.Times[0] {
		return p.Values[0]
	}
	if t >= p.Times[n-1] {
		return p.Values[n-1]
	}
	for i := 1; i < n; i++ {
		if t < p.Times[i] {
			f := (t - p.Times[i-1]) / (p.Times[i] - p.Times[i-1])
			return p.Values[i-1] + f*(p.Values[i]-p.Values[i-1])
		}
	}
	return p.Values[n-1]
}

// Breakpoints implements Waveform.
func (p PWL) Breakpoints() []float64 { return p.Times }
