// Package circuit is the library's SPICE substitute: a Modified Nodal
// Analysis (MNA) engine with damped Newton–Raphson for nonlinear devices,
// backward-Euler transient integration with breakpoint-aware time stepping,
// and the source waveforms used in single-event analysis. It supports
// resistors, capacitors, independent voltage/current sources, and arbitrary
// nonlinear devices (the FinFET compact model plugs in through the Device
// interface). It is small — SRAM cells are ~10 unknowns — but it is a real
// nonlinear transient solver, not a behavioural shortcut: cell flips emerge
// from the regenerative feedback dynamics exactly as they do in SPICE.
package circuit

import (
	"fmt"

	"finser/internal/guard"
)

// Node identifies a circuit node. Ground is the reference node.
type Node int

// Ground is the reference node (0 V).
const Ground Node = -1

// Stamper is the assembly context handed to devices each Newton iteration.
// Devices add their linearized companion models through its methods; the
// index bookkeeping (ground elision, branch rows) stays in one place.
type Stamper struct {
	a      [][]float64
	b      []float64
	x      []float64 // current Newton iterate (node voltages + branch currents)
	xPrev  []float64 // solution at the previous accepted timestep
	time   float64   // time being solved for
	dt     float64   // timestep; 0 during DC analysis
	method Integrator
	nNodes int
}

// DC reports whether the current solve is a DC operating point.
func (s *Stamper) DC() bool { return s.dt == 0 }

// Method returns the integration method in effect.
func (s *Stamper) Method() Integrator { return s.method }

// Time returns the time being solved for.
func (s *Stamper) Time() float64 { return s.time }

// SourceTime returns the time at which current-source waveforms are
// sampled: the midpoint of the current step. Backward Euler applies one
// source value across the whole step, so midpoint sampling makes the
// injected charge of a pulse exact when steps land on its corners (the
// stepper guarantees that via breakpoints).
func (s *Stamper) SourceTime() float64 {
	if s.dt == 0 {
		return s.time
	}
	return s.time - s.dt/2
}

// Dt returns the current timestep (0 in DC).
func (s *Stamper) Dt() float64 { return s.dt }

// V returns the node voltage in the current Newton iterate.
func (s *Stamper) V(n Node) float64 {
	if n == Ground {
		return 0
	}
	return s.x[n]
}

// VPrev returns the node voltage at the previous accepted timestep.
func (s *Stamper) VPrev(n Node) float64 {
	if n == Ground {
		return 0
	}
	return s.xPrev[n]
}

// AddConductance stamps a conductance g between nodes i and j.
func (s *Stamper) AddConductance(i, j Node, g float64) {
	if i != Ground {
		s.a[i][i] += g
		if j != Ground {
			s.a[i][j] -= g
		}
	}
	if j != Ground {
		s.a[j][j] += g
		if i != Ground {
			s.a[j][i] -= g
		}
	}
}

// AddCurrent stamps a current source of value cur flowing from node i into
// node j (conventional current leaves i, enters j).
func (s *Stamper) AddCurrent(i, j Node, cur float64) {
	if i != Ground {
		s.b[i] -= cur
	}
	if j != Ground {
		s.b[j] += cur
	}
}

// AddNonlinearCurrent stamps the Newton companion of a nonlinear current of
// value id flowing from node `from` to node `to`, whose partial derivatives
// with respect to the node voltages in deps are g. This is the single entry
// point nonlinear devices (the FinFET model) need.
func (s *Stamper) AddNonlinearCurrent(from, to Node, id float64, deps []Node, g []float64) {
	lin := id
	for k, n := range deps {
		lin -= g[k] * s.V(n)
		if n == Ground {
			continue
		}
		if from != Ground {
			s.a[from][n] += g[k]
		}
		if to != Ground {
			s.a[to][n] -= g[k]
		}
	}
	s.AddCurrent(from, to, lin)
}

// AddTransconductance stamps a transconductance: a current gm·V(ci,cj)
// flowing from node i to node j, controlled by the voltage between nodes
// ci and cj.
func (s *Stamper) AddTransconductance(i, j, ci, cj Node, gm float64) {
	add := func(r Node, sign float64) {
		if r == Ground {
			return
		}
		if ci != Ground {
			s.a[r][ci] += sign * gm
		}
		if cj != Ground {
			s.a[r][cj] -= sign * gm
		}
	}
	add(i, +1)
	add(j, -1)
}

// Device is a circuit element that can stamp its (linearized) companion
// model into the MNA system.
type Device interface {
	// Stamp adds the device's contribution for the given assembly context.
	Stamp(s *Stamper)
	// Name returns the instance name for diagnostics.
	Name() string
}

// BranchDevice is a device that needs a branch-current unknown
// (voltage sources). The circuit assigns the branch row.
type BranchDevice interface {
	Device
	setBranch(row int)
}

// Circuit is a netlist under construction and the analyses over it.
type Circuit struct {
	names   []string
	nodeIdx map[string]Node
	devices []Device
	nBranch int

	// Gmin is a conductance from every node to ground added for numerical
	// conditioning (SPICE's gmin). Defaults to 1e-12 S.
	Gmin float64
	// MaxNewtonIter bounds Newton iterations per solve point. Default 200.
	MaxNewtonIter int
	// VStep caps the per-iteration voltage update (Newton damping), in
	// volts. Default 0.3.
	VStep float64
	// AbsTol and RelTol define Newton convergence on the update norm.
	AbsTol, RelTol float64
	// Metrics, when non-nil, receives solver counters (Newton iterations,
	// LU solves, transient steps, step halvings). Nil costs nothing.
	Metrics *Metrics
	// Guard, when non-nil, checks that accepted transient solutions stay
	// finite — a NaN node voltage is counted (warn) or fails the simulation
	// with a typed error (strict). Nil costs one pointer check per step.
	Guard *guard.Guard

	// ws is the reusable solver workspace: the MNA matrix, RHS, stamper,
	// transient ping-pong buffers, breakpoint list, and trajectory arena
	// are allocated once and reused across Newton iterations, timesteps,
	// and whole analyses. It is one more reason a Circuit must not run
	// concurrent analyses (devices already carry per-step state).
	ws workspace
}

// New returns an empty circuit with default solver settings.
func New() *Circuit {
	return &Circuit{
		nodeIdx:       make(map[string]Node),
		Gmin:          1e-12,
		MaxNewtonIter: 200,
		VStep:         0.3,
		AbsTol:        1e-9,
		RelTol:        1e-6,
	}
}

// Node returns the node with the given name, creating it on first use.
// The name "0" and "gnd" map to Ground.
func (c *Circuit) Node(name string) Node {
	if name == "0" || name == "gnd" {
		return Ground
	}
	if n, ok := c.nodeIdx[name]; ok {
		return n
	}
	n := Node(len(c.names))
	c.nodeIdx[name] = n
	c.names = append(c.names, name)
	return n
}

// NodeName returns the name of node n.
func (c *Circuit) NodeName(n Node) string {
	if n == Ground {
		return "0"
	}
	return c.names[n]
}

// NumNodes returns the number of non-ground nodes.
func (c *Circuit) NumNodes() int { return len(c.names) }

// AddDevice appends a device to the netlist. Branch devices get their
// branch row assigned here.
func (c *Circuit) AddDevice(d Device) {
	if bd, ok := d.(BranchDevice); ok {
		bd.setBranch(len(c.names) + c.nBranch) // provisional; fixed in assemble
		c.nBranch++
	}
	c.devices = append(c.devices, d)
}

// unknowns returns the size of the MNA system.
func (c *Circuit) unknowns() int { return len(c.names) + c.nBranch }

// assignBranches renumbers branch rows after all nodes are known.
func (c *Circuit) assignBranches() {
	row := len(c.names)
	for _, d := range c.devices {
		if bd, ok := d.(BranchDevice); ok {
			bd.setBranch(row)
			row++
		}
	}
}

func (c *Circuit) String() string {
	return fmt.Sprintf("circuit{%d nodes, %d devices, %d branches}",
		len(c.names), len(c.devices), c.nBranch)
}
