package circuit

import (
	"math"
	"testing"
	"testing/quick"
)

// TestResistorLadderDC checks the MNA solution of randomized resistor
// ladders against the analytic series-sum answer.
func TestResistorLadderDC(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 10 {
			raw = raw[:10]
		}
		c := New()
		top := c.Node("top")
		c.AddVSource("v", top, Ground, DC(1))
		prev := top
		total := 0.0
		for i, r := range raw {
			ohms := 10 + math.Abs(math.Mod(r, 1e4))
			total += ohms
			var next Node
			if i == len(raw)-1 {
				next = Ground
			} else {
				next = c.Node(nodeName(i))
			}
			c.AddResistor(resName(i), prev, next, ohms)
			prev = next
		}
		sol, err := c.OperatingPoint(nil)
		if err != nil {
			return false
		}
		// Voltage at the first interior node follows the divider rule.
		if len(raw) >= 2 {
			n1 := c.Node(nodeName(0))
			r0 := 10 + math.Abs(math.Mod(raw[0], 1e4))
			want := 1 - r0/total
			if math.Abs(sol[n1]-want) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func nodeName(i int) string { return string(rune('a' + i)) }
func resName(i int) string  { return "r" + string(rune('a'+i)) }

// TestKCLResidual verifies that a solved nonlinear operating point actually
// satisfies Kirchhoff's current law at every node (the solver solves its
// own linearization; this checks the converged point against the device
// equations directly).
func TestKCLResidual(t *testing.T) {
	c := New()
	a := c.Node("a")
	b := c.Node("b")
	c.AddVSource("v", a, Ground, DC(2))
	c.AddResistor("r1", a, b, 1e3)
	c.AddResistor("r2", b, Ground, 2e3)
	c.AddISource("i1", Ground, b, DC(1e-4))
	sol, err := c.OperatingPoint(nil)
	if err != nil {
		t.Fatal(err)
	}
	// KCL at b: (Va-Vb)/1k + 1e-4 = Vb/2k.
	residual := (sol[a]-sol[b])/1e3 + 1e-4 - sol[b]/2e3
	if math.Abs(residual) > 1e-9 {
		t.Errorf("KCL residual at b = %v", residual)
	}
}

// TestTransientBreakpointLanding ensures the stepper lands exactly on pulse
// corners — required for exact charge injection.
func TestTransientBreakpointLanding(t *testing.T) {
	c := New()
	n := c.Node("n")
	pulse := RectPulse{T0: 3.3e-12, Width: 1.7e-14, Amp: 1e-3}
	c.AddISource("i", Ground, n, pulse)
	c.AddCapacitor("c", n, Ground, 1e-16)
	res, err := c.Transient(make(Solution, 1), TransientSpec{
		TStop: 1e-11, InitStep: 5e-13, MaxStep: 2e-12,
	})
	if err != nil {
		t.Fatal(err)
	}
	found := map[float64]bool{}
	for _, tp := range res.Times {
		for _, bp := range pulse.Breakpoints() {
			if math.Abs(tp-bp) < 1e-24 {
				found[bp] = true
			}
		}
	}
	for _, bp := range pulse.Breakpoints() {
		if !found[bp] {
			t.Errorf("stepper missed breakpoint %v", bp)
		}
	}
	// And charge is exact despite the coarse ambient step.
	want := pulse.Charge() / 1e-16
	if got := res.Final(n); math.Abs(got-want)/want > 1e-6 {
		t.Errorf("final = %v, want %v", got, want)
	}
}

// badDevice drives the solver into non-finite territory.
type badDevice struct{}

func (badDevice) Name() string { return "bad" }
func (badDevice) Stamp(s *Stamper) {
	s.AddCurrent(Ground, Node(0), math.NaN())
}

func TestNewtonRejectsNonFinite(t *testing.T) {
	c := New()
	n := c.Node("n")
	c.AddResistor("r", n, Ground, 1e3)
	c.AddDevice(badDevice{})
	if _, err := c.OperatingPoint(nil); err == nil {
		t.Error("NaN-stamping device did not fail the solve")
	}
}

// oscillatingDevice never converges: its current flips sign each iteration
// far beyond any tolerance.
type oscillatingDevice struct {
	n    Node
	iter int
}

func (o *oscillatingDevice) Name() string { return "osc" }
func (o *oscillatingDevice) Stamp(s *Stamper) {
	o.iter++
	val := 1.0
	if o.iter%2 == 0 {
		val = -1.0
	}
	s.AddCurrent(Ground, o.n, val)
}

func TestNewtonIterationLimit(t *testing.T) {
	c := New()
	n := c.Node("n")
	c.AddResistor("r", n, Ground, 1e3)
	c.AddDevice(&oscillatingDevice{n: n})
	c.MaxNewtonIter = 25
	if _, err := c.OperatingPoint(nil); err == nil {
		t.Error("non-convergent circuit did not error")
	}
}

func TestTransientStallReporting(t *testing.T) {
	// A device that oscillates stalls the transient; the error must carry
	// the stall time rather than hanging.
	c := New()
	n := c.Node("n")
	c.AddResistor("r", n, Ground, 1e3)
	c.AddCapacitor("c", n, Ground, 1e-12)
	c.AddDevice(&oscillatingDevice{n: n})
	c.MaxNewtonIter = 10
	_, err := c.Transient(make(Solution, 1), TransientSpec{TStop: 1e-9, InitStep: 1e-12})
	if err == nil {
		t.Error("stalled transient did not error")
	}
}

func TestSourceTimeMidpoint(t *testing.T) {
	s := &Stamper{time: 10, dt: 2}
	if got := s.SourceTime(); got != 9 {
		t.Errorf("transient source time = %v, want midpoint 9", got)
	}
	s = &Stamper{time: 10, dt: 0}
	if got := s.SourceTime(); got != 10 {
		t.Errorf("DC source time = %v, want 10", got)
	}
}

func TestCollectBreakpointsDedup(t *testing.T) {
	c := New()
	n := c.Node("n")
	c.AddISource("i1", Ground, n, RectPulse{T0: 1, Width: 1, Amp: 1})
	c.AddISource("i2", Ground, n, RectPulse{T0: 1, Width: 2, Amp: 1})
	bps := c.collectBreakpoints(TransientSpec{TStop: 10, ExtraBreakpoints: []float64{2, -5, 99}})
	// Sorted, deduplicated, in-range: {1, 2, 3}.
	want := []float64{1, 2, 3}
	if len(bps) != len(want) {
		t.Fatalf("breakpoints = %v", bps)
	}
	for i := range want {
		if bps[i] != want[i] {
			t.Fatalf("breakpoints = %v, want %v", bps, want)
		}
	}
}

func TestGrowthCapsAtMaxStep(t *testing.T) {
	c := New()
	n := c.Node("n")
	c.AddResistor("r", n, Ground, 1e3)
	c.AddCapacitor("c", n, Ground, 1e-12)
	res, err := c.Transient(make(Solution, 1), TransientSpec{
		TStop: 1e-9, InitStep: 1e-12, MaxStep: 5e-12, Growth: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Times); i++ {
		if res.Times[i]-res.Times[i-1] > 5e-12+1e-21 {
			t.Fatalf("step %d exceeded MaxStep: %v", i, res.Times[i]-res.Times[i-1])
		}
	}
}
