package circuit

import (
	"fmt"
	"math"
	"sort"
)

// Solution is a solved operating point: node voltages and branch currents.
type Solution []float64

// SolveStats reports the convergence diagnostics of one Newton solve: the
// iterations it took (== dense-LU solves) and the final voltage-update
// norm, which is what the convergence test is evaluated on. On failure the
// norm is the last iteration's — the divergence-debugging signal the error
// message also carries.
type SolveStats struct {
	Iterations int
	UpdateNorm float64
}

// OperatingPoint computes the DC solution with Newton–Raphson. nodeset
// provides initial-guess voltages for selected nodes — essential for
// bistable circuits such as SRAM cells, where it selects which stable state
// Newton converges to. It may be nil.
func (c *Circuit) OperatingPoint(nodeset map[Node]float64) (Solution, error) {
	sol, _, err := c.OperatingPointStats(nodeset)
	return sol, err
}

// OperatingPointStats is OperatingPoint with the solve diagnostics.
func (c *Circuit) OperatingPointStats(nodeset map[Node]float64) (Solution, SolveStats, error) {
	c.assignBranches()
	n := c.unknowns()
	x := make([]float64, n)
	for node, v := range nodeset {
		if node != Ground {
			x[node] = v
		}
	}
	st, err := c.newtonSolve(x, x, 0, 0, BackwardEuler)
	if err != nil {
		return nil, st, fmt.Errorf("circuit: DC operating point: %w", err)
	}
	return x, st, nil
}

// Integrator selects the implicit integration method for reactive
// elements.
type Integrator int

const (
	// BackwardEuler is first-order, L-stable, and strongly damped — the
	// robust default for switching waveforms.
	BackwardEuler Integrator = iota
	// Trapezoidal is second-order accurate; preferable when waveform
	// fidelity matters more than damping (it can ring on discontinuities,
	// which the breakpoint-aware stepper mitigates).
	Trapezoidal
)

// TransientSpec configures a transient analysis.
type TransientSpec struct {
	TStop    float64 // end time, s
	InitStep float64 // first step and post-breakpoint step, s
	MaxStep  float64 // ceiling for the growing step, s
	// Growth is the per-step expansion factor (default 1.3).
	Growth float64
	// Method selects the integrator (default BackwardEuler).
	Method Integrator
	// ExtraBreakpoints are times the stepper must land on exactly, in
	// addition to breakpoints collected from source waveforms.
	ExtraBreakpoints []float64
}

// TransientStats aggregates solver diagnostics over one transient run —
// the quantities a caller needs to judge how hard the solve was and where
// the time went, instead of the opaque pass/fail the stepper used to give.
type TransientStats struct {
	// Steps is the number of accepted time steps.
	Steps int
	// NewtonIters is the total Newton iterations over all attempts
	// (== dense-LU solves).
	NewtonIters int
	// StepHalvings counts retries where Newton failed and the step was
	// halved.
	StepHalvings int
	// MinStep is the smallest accepted step, s (0 when no step accepted).
	MinStep float64
}

// TransientResult holds the sampled trajectory of a transient analysis.
type TransientResult struct {
	Times  []float64
	Values []Solution // one solution vector per time point
	// Stats carries the per-run convergence diagnostics.
	Stats TransientStats
}

// Final returns the node voltage at the last time point.
func (r *TransientResult) Final(n Node) float64 {
	if n == Ground {
		return 0
	}
	return r.Values[len(r.Values)-1][n]
}

// At returns the node voltage at time t by linear interpolation.
func (r *TransientResult) At(n Node, t float64) float64 {
	if n == Ground {
		return 0
	}
	ts := r.Times
	if t <= ts[0] {
		return r.Values[0][n]
	}
	if t >= ts[len(ts)-1] {
		return r.Final(n)
	}
	i := sort.SearchFloat64s(ts, t)
	if ts[i] == t {
		return r.Values[i][n]
	}
	f := (t - ts[i-1]) / (ts[i] - ts[i-1])
	return r.Values[i-1][n] + f*(r.Values[i][n]-r.Values[i-1][n])
}

// MaxAbs returns the maximum |V(n)| over the trajectory.
func (r *TransientResult) MaxAbs(n Node) float64 {
	if n == Ground {
		return 0
	}
	m := 0.0
	for _, v := range r.Values {
		if a := math.Abs(v[n]); a > m {
			m = a
		}
	}
	return m
}

// Transient runs a backward-Euler transient analysis from the given initial
// condition (typically a DC operating point). The stepper grows the step
// geometrically, lands exactly on waveform breakpoints, and retries with a
// halved step when Newton fails to converge.
func (c *Circuit) Transient(initial Solution, spec TransientSpec) (*TransientResult, error) {
	c.assignBranches()
	n := c.unknowns()
	if len(initial) != n {
		return nil, fmt.Errorf("circuit: initial condition has %d entries, want %d", len(initial), n)
	}
	if spec.TStop <= 0 || spec.InitStep <= 0 {
		return nil, fmt.Errorf("circuit: transient needs positive TStop and InitStep")
	}
	if spec.MaxStep <= 0 {
		spec.MaxStep = spec.TStop / 50
	}
	if spec.Growth <= 1 {
		spec.Growth = 1.3
	}

	bps := c.collectBreakpoints(spec)

	// Reactive devices carry per-step state (trapezoidal branch currents);
	// start the analysis from rest.
	for _, d := range c.devices {
		if sd, ok := d.(stateful); ok {
			sd.reset()
		}
	}

	ws := &c.ws
	ws.ensure(n)
	est := estimateSteps(spec, len(bps))
	res := &TransientResult{
		Times:  make([]float64, 0, est),
		Values: make([]Solution, 0, est),
	}
	// The trajectory ping-pongs between the two workspace buffers: the trial
	// solve runs on xNew, and an accepted step swaps the roles instead of
	// copying. Stored points are arena snapshots, so neither buffer escapes.
	x, xNew := ws.xCur, ws.xNext
	copy(x, initial)
	res.Times = append(res.Times, 0)
	res.Values = append(res.Values, ws.snapshot(x))

	t := 0.0
	dt := spec.InitStep
	bpIdx := 0
	for bpIdx < len(bps) && bps[bpIdx] <= 0 {
		bpIdx++
	}
	const minStepFrac = 1e-7
	for t < spec.TStop {
		// Land exactly on the next breakpoint; reset the step after it so
		// sharp pulse edges are resolved.
		target := t + dt
		hitBreak := false
		if bpIdx < len(bps) && target >= bps[bpIdx]-1e-21 {
			target = bps[bpIdx]
			hitBreak = true
		}
		if target > spec.TStop {
			target = spec.TStop
		}
		step := target - t
		if step <= 0 {
			// Degenerate breakpoint at/behind current time.
			bpIdx++
			continue
		}

		copy(xNew, x)
		st, err := c.newtonSolve(xNew, x, target, step, spec.Method)
		res.Stats.NewtonIters += st.Iterations
		if err != nil {
			// Retry with a halved step.
			res.Stats.StepHalvings++
			if m := c.Metrics; m != nil {
				m.StepHalvings.Inc()
			}
			dt = step / 2
			if dt < spec.InitStep*minStepFrac {
				return nil, fmt.Errorf("circuit: transient stalled at t=%g after %d step halvings: %w",
					t, res.Stats.StepHalvings, err)
			}
			continue
		}
		if g := c.Guard; g.Enabled() {
			for i, v := range xNew {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					if err := g.Finite("circuit.transient", fmt.Sprintf("unknown %d at t=%g", i, target), v); err != nil {
						return nil, err
					}
				}
			}
		}
		res.Stats.Steps++
		if res.Stats.MinStep == 0 || step < res.Stats.MinStep {
			res.Stats.MinStep = step
		}
		if m := c.Metrics; m != nil {
			m.TransientSteps.Inc()
		}
		for _, d := range c.devices {
			if sd, ok := d.(stateful); ok {
				sd.accept(xNew, x, step, spec.Method)
			}
		}
		t = target
		x, xNew = xNew, x
		res.Times = append(res.Times, t)
		res.Values = append(res.Values, ws.snapshot(x))
		if hitBreak {
			bpIdx++
			dt = spec.InitStep
		} else {
			dt = math.Min(dt*spec.Growth, spec.MaxStep)
		}
	}
	return res, nil
}

// collectBreakpoints gathers, sorts, and dedupes the waveform breakpoints
// once per analysis, reusing the workspace buffer so repeated transients on
// the same circuit do not re-allocate the list.
func (c *Circuit) collectBreakpoints(spec TransientSpec) []float64 {
	bps := c.ws.bps[:0]
	for _, d := range c.devices {
		switch dev := d.(type) {
		case *VSource:
			bps = append(bps, dev.W.Breakpoints()...)
		case *ISource:
			bps = append(bps, dev.W.Breakpoints()...)
		}
	}
	bps = append(bps, spec.ExtraBreakpoints...)
	c.ws.bps = bps[:0]
	sort.Float64s(bps)
	// Deduplicate and drop points outside (0, TStop).
	out := bps[:0]
	for _, b := range bps {
		if b <= 0 || b >= spec.TStop {
			continue
		}
		if len(out) > 0 && b-out[len(out)-1] < 1e-21 {
			continue
		}
		out = append(out, b)
	}
	return out
}

// estimateSteps predicts the number of trajectory points a transient will
// produce — the cruise steps at MaxStep, the geometric ramp-up after t=0
// and each breakpoint, the breakpoints themselves, and the endpoints — so
// TransientResult storage is sized once instead of growing by append-copy.
func estimateSteps(spec TransientSpec, nBreaks int) int {
	cruise := int(spec.TStop/spec.MaxStep) + 1
	ramp := 1
	for s := spec.InitStep; s < spec.MaxStep && ramp < 64; s *= spec.Growth {
		ramp++
	}
	est := cruise + (nBreaks+1)*ramp + nBreaks + 2
	if est > 1<<16 {
		est = 1 << 16
	}
	return est
}

// workspace holds the solver's reusable buffers: the MNA matrix (flat
// backing plus row views, so denseLU's pivot swaps stay cheap and zeroing
// is one memclr), the RHS, the stamper, the transient ping-pong solution
// buffers, the breakpoint list, and an arena slab that trajectory snapshots
// are carved from. Everything is sized once per system dimension and reused
// across Newton iterations, timesteps, and whole analyses.
type workspace struct {
	n     int
	rows  []float64   // n×n flat backing for a
	a     [][]float64 // row views into rows (denseLU permutes the views)
	b     []float64
	st    Stamper
	xCur  Solution // transient working solution
	xNext Solution // transient trial solution (ping-pongs with xCur)
	bps   []float64
	arena []float64 // slab trajectory snapshots are carved from
}

// ensure sizes the workspace for an n-unknown system. A no-op when the
// dimension is unchanged, which is every call after the first for a given
// netlist.
func (ws *workspace) ensure(n int) {
	if ws.n == n {
		return
	}
	ws.n = n
	ws.rows = make([]float64, n*n)
	ws.a = make([][]float64, n)
	for i := range ws.a {
		ws.a[i] = ws.rows[i*n : (i+1)*n : (i+1)*n]
	}
	ws.b = make([]float64, n)
	ws.xCur = make(Solution, n)
	ws.xNext = make(Solution, n)
}

// snapshot copies x into a slice carved from the arena slab. Storing a
// trajectory point costs one amortized allocation per arenaChunk points
// instead of one per accepted step; earlier slabs stay alive through the
// snapshots that reference them, so returned results remain valid across
// later analyses.
func (ws *workspace) snapshot(x Solution) Solution {
	const arenaChunk = 64
	n := len(x)
	if len(ws.arena) < n {
		ws.arena = make([]float64, arenaChunk*n)
	}
	s := Solution(ws.arena[:n:n])
	ws.arena = ws.arena[n:]
	copy(s, x)
	return s
}

// newtonSolve iterates the damped Newton loop in place on x. xPrev is the
// previous accepted timestep solution (used by reactive companion models);
// dt == 0 selects DC. Convergence is on the voltage-update norm. The
// returned stats are valid on failure too (iterations spent, last update
// norm) so callers can diagnose divergence instead of seeing only an
// opaque error.
func (c *Circuit) newtonSolve(x, xPrev Solution, t, dt float64, method Integrator) (SolveStats, error) {
	n := c.unknowns()
	ws := &c.ws
	ws.ensure(n)
	a, b := ws.a, ws.b
	ws.st = Stamper{a: a, b: b, xPrev: xPrev, time: t, dt: dt, method: method, nNodes: len(c.names)}
	st := &ws.st

	var stats SolveStats
	m := c.Metrics
	for iter := 0; iter < c.MaxNewtonIter; iter++ {
		stats.Iterations = iter + 1
		if m != nil {
			m.NewtonIters.Inc()
		}
		for i := range ws.rows {
			ws.rows[i] = 0
		}
		for i := range b {
			b[i] = 0
		}
		st.x = x
		// Gmin conditioning on every node.
		for i := 0; i < len(c.names); i++ {
			a[i][i] += c.Gmin
		}
		for _, d := range c.devices {
			d.Stamp(st)
		}
		if m != nil {
			m.LUSolves.Inc()
		}
		if err := denseLU(a, b); err != nil {
			if m != nil {
				m.FailedSolves.Inc()
			}
			return stats, err
		}
		// b now holds the proposed next iterate. Damp node-voltage updates.
		maxUpdate := 0.0
		converged := true
		for i := 0; i < n; i++ {
			du := b[i] - x[i]
			if i < len(c.names) {
				if du > c.VStep {
					du = c.VStep
				} else if du < -c.VStep {
					du = -c.VStep
				}
			}
			x[i] += du
			mag := math.Abs(du)
			if mag > maxUpdate {
				maxUpdate = mag
			}
			if mag > c.AbsTol+c.RelTol*math.Abs(x[i]) {
				converged = false
			}
			if math.IsNaN(x[i]) || math.IsInf(x[i], 0) {
				if m != nil {
					m.FailedSolves.Inc()
				}
				stats.UpdateNorm = maxUpdate
				return stats, fmt.Errorf("circuit: Newton diverged at iteration %d (non-finite unknown %d)",
					iter+1, i)
			}
		}
		stats.UpdateNorm = maxUpdate
		if converged && iter > 0 {
			return stats, nil
		}
	}
	if m != nil {
		m.FailedSolves.Inc()
	}
	return stats, fmt.Errorf("circuit: Newton failed to converge in %d iterations (last update norm %.3g V)",
		c.MaxNewtonIter, stats.UpdateNorm)
}
