package scrub

import (
	"math"
	"testing"
	"testing/quick"
)

func cfg() Config {
	return Config{
		Words:              1 << 20, // 1M words
		SEUFIT:             1000,
		MBUFIT:             50,
		UncorrectableShare: 0.05,
	}
}

func TestValidate(t *testing.T) {
	if err := cfg().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Words: 0, SEUFIT: 1},
		{Words: 10, SEUFIT: -1},
		{Words: 10, MBUFIT: -1},
		{Words: 10, UncorrectableShare: 1.5},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestFloorAndLimits(t *testing.T) {
	c := cfg()
	if got := c.MBUFloorFIT(); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("floor = %v, want 2.5", got)
	}
	// Instant scrubbing leaves only the floor.
	if got := c.UncorrectableFIT(0); got != c.MBUFloorFIT() {
		t.Errorf("zero-interval rate = %v", got)
	}
	// Monotone increasing in interval.
	prev := -1.0
	for _, T := range []float64{0, 1, 24, 720, 8760} {
		v := c.UncorrectableFIT(T)
		if v < prev {
			t.Fatalf("rate not monotone at %v h", T)
		}
		prev = v
	}
}

func TestAccumulationQuadraticInSEU(t *testing.T) {
	a := cfg()
	b := cfg()
	b.SEUFIT *= 3
	ra := a.AccumulationFIT(100)
	rb := b.AccumulationFIT(100)
	if math.Abs(rb/ra-9) > 1e-9 {
		t.Errorf("accumulation not quadratic in SEU rate: ×%v", rb/ra)
	}
	// Linear in interval.
	if r := a.AccumulationFIT(200) / ra; math.Abs(r-2) > 1e-9 {
		t.Errorf("accumulation not linear in interval: ×%v", r)
	}
	// More words at fixed total SEU rate → fewer collisions.
	w := cfg()
	w.Words *= 4
	if w.AccumulationFIT(100) >= a.AccumulationFIT(100) {
		t.Error("more words should dilute accumulation")
	}
}

func TestBreakEvenConsistent(t *testing.T) {
	c := cfg()
	T := c.BreakEvenIntervalHours()
	if math.IsInf(T, 1) || T <= 0 {
		t.Fatalf("break-even = %v", T)
	}
	// At the break-even interval the two terms are equal.
	if acc, floor := c.AccumulationFIT(T), c.MBUFloorFIT(); math.Abs(acc-floor)/floor > 1e-9 {
		t.Errorf("at break-even: accumulation %v != floor %v", acc, floor)
	}
	// Degenerate cases.
	noMBU := cfg()
	noMBU.MBUFIT = 0
	if !math.IsInf(noMBU.BreakEvenIntervalHours(), 1) {
		t.Error("no MBU floor should give infinite break-even")
	}
	noSEU := cfg()
	noSEU.SEUFIT = 0
	if !math.IsInf(noSEU.BreakEvenIntervalHours(), 1) {
		t.Error("no SEU should give infinite break-even")
	}
}

func TestSweep(t *testing.T) {
	c := cfg()
	pts, err := c.Sweep([]float64{1, 10, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.UncorrectableFIT < c.MBUFloorFIT() {
			t.Errorf("rate below floor at %v h", p.IntervalHours)
		}
		if math.Abs(p.UncorrectableFIT-(c.MBUFloorFIT()+p.AccumulationFIT)) > 1e-12 {
			t.Error("sweep split inconsistent")
		}
	}
	bad := Config{Words: 0}
	if _, err := bad.Sweep([]float64{1}); err == nil {
		t.Error("invalid config swept")
	}
}

func TestMTTF(t *testing.T) {
	if got := MTTFHours(1e9); got != 1 {
		t.Errorf("MTTF(1e9 FIT) = %v h", got)
	}
	if !math.IsInf(MTTFHours(0), 1) {
		t.Error("zero FIT should be infinite MTTF")
	}
}

// Property: rates are non-negative and split consistently for arbitrary
// valid inputs.
func TestScrubProperties(t *testing.T) {
	f := func(seu, mbu, share, interval float64, words uint16) bool {
		c := Config{
			Words:              int(words%10000) + 1,
			SEUFIT:             math.Abs(math.Mod(seu, 1e6)),
			MBUFIT:             math.Abs(math.Mod(mbu, 1e6)),
			UncorrectableShare: math.Abs(math.Mod(share, 1)),
		}
		T := math.Abs(math.Mod(interval, 1e5))
		if c.Validate() != nil {
			return false
		}
		tot := c.UncorrectableFIT(T)
		return tot >= 0 && tot >= c.MBUFloorFIT()-1e-12 &&
			math.Abs(tot-(c.MBUFloorFIT()+c.AccumulationFIT(T))) <= 1e-9*(1+tot)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
