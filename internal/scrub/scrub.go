// Package scrub closes the system loop: given the engine's SEU/MBU rates
// and the ECC analysis, it models periodic scrubbing — the standard defence
// that reads, corrects, and rewrites every word on a fixed interval. With
// SEC-DED, a word fails only if it collects two bad bits before the
// scrubber visits it. Two mechanisms produce that:
//
//  1. a single multi-bit event that defeats the interleaving (rate set by
//     the MBU FIT times the ECC uncorrectable share) — scrubbing cannot
//     help, the two bits arrive together;
//  2. two independent single-bit upsets accumulating in one word between
//     scrubs — quadratic in the per-word rate and linear in the interval,
//     so the scrub period controls it directly.
//
// The package exposes the combined uncorrectable rate, the interval sweep,
// and the break-even interval where accumulation starts to dominate.
package scrub

import (
	"errors"
	"math"
)

// Config describes the protected memory and its scrubbing policy.
type Config struct {
	// Words is the number of logical ECC words covered by the rates below.
	Words int
	// SEUFIT is the single-bit upset rate of the whole memory, in FIT
	// (events per 1e9 h).
	SEUFIT float64
	// MBUFIT is the multi-bit event rate of the whole memory, in FIT.
	MBUFIT float64
	// UncorrectableShare is the fraction of MBU events that place ≥2 bits
	// in one word despite interleaving (from ecc.Analyze).
	UncorrectableShare float64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Words <= 0 {
		return errors.New("scrub: need a positive word count")
	}
	if c.SEUFIT < 0 || c.MBUFIT < 0 {
		return errors.New("scrub: negative rates")
	}
	if c.UncorrectableShare < 0 || c.UncorrectableShare > 1 {
		return errors.New("scrub: uncorrectable share outside [0,1]")
	}
	return nil
}

// MBUFloorFIT is the scrub-independent failure floor: multi-bit events that
// land in one word arrive already uncorrectable.
func (c Config) MBUFloorFIT() float64 {
	return c.MBUFIT * c.UncorrectableShare
}

// AccumulationFIT is the rate of two independent SEUs meeting in one word
// for the given scrub interval (hours): Words · (λw·T)²/2 failures per
// interval → Words·λw²·T/2 per hour, expressed in FIT. λw is the per-word
// SEU rate per hour.
func (c Config) AccumulationFIT(scrubIntervalHours float64) float64 {
	if scrubIntervalHours <= 0 {
		return 0
	}
	lambdaWord := c.SEUFIT / 1e9 / float64(c.Words) // per word per hour
	perHour := float64(c.Words) * lambdaWord * lambdaWord * scrubIntervalHours / 2
	return perHour * 1e9
}

// UncorrectableFIT is the combined post-ECC, post-scrubbing failure rate.
func (c Config) UncorrectableFIT(scrubIntervalHours float64) float64 {
	return c.MBUFloorFIT() + c.AccumulationFIT(scrubIntervalHours)
}

// BreakEvenIntervalHours returns the scrub interval at which SEU
// accumulation equals the MBU floor — scrubbing faster than this buys
// little; slower, and accumulation dominates. +Inf when there is no floor
// or no SEU rate.
func (c Config) BreakEvenIntervalHours() float64 {
	floor := c.MBUFloorFIT()
	if floor <= 0 || c.SEUFIT <= 0 {
		return math.Inf(1)
	}
	lambdaWord := c.SEUFIT / 1e9 / float64(c.Words)
	perHourPerT := float64(c.Words) * lambdaWord * lambdaWord / 2 * 1e9
	return floor / perHourPerT
}

// Point is one entry of an interval sweep.
type Point struct {
	IntervalHours    float64
	UncorrectableFIT float64
	AccumulationFIT  float64
}

// Sweep evaluates the uncorrectable rate across scrub intervals.
func (c Config) Sweep(intervalsHours []float64) ([]Point, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	out := make([]Point, 0, len(intervalsHours))
	for _, T := range intervalsHours {
		out = append(out, Point{
			IntervalHours:    T,
			UncorrectableFIT: c.UncorrectableFIT(T),
			AccumulationFIT:  c.AccumulationFIT(T),
		})
	}
	return out, nil
}

// MTTFHours converts a FIT rate to mean time to failure in hours.
func MTTFHours(fit float64) float64 {
	if fit <= 0 {
		return math.Inf(1)
	}
	return 1e9 / fit
}
