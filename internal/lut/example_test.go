package lut_test

import (
	"fmt"

	"finser/internal/lut"
)

func ExampleTable1D() {
	// A log-log table reproduces power laws exactly: y = x².
	t, err := lut.NewTable1D(
		[]float64{1, 10, 100},
		[]float64{1, 100, 10000},
		lut.Log, lut.Log,
	)
	if err != nil {
		panic(err)
	}
	fmt.Printf("f(3)   = %.0f\n", t.Eval(3))
	fmt.Printf("f(50)  = %.0f\n", t.Eval(50))
	fmt.Printf("f(500) = %.0f (clamped)\n", t.Eval(500))
	// Output:
	// f(3)   = 9
	// f(50)  = 2500
	// f(500) = 10000 (clamped)
}

func ExampleLogSpace() {
	for _, v := range lut.LogSpace(1, 1000, 4) {
		fmt.Printf("%.0f ", v)
	}
	fmt.Println()
	// Output:
	// 1 10 100 1000
}
