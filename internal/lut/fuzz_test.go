package lut

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// FuzzReadTable1D drives the JSON trust boundary: arbitrary bytes must
// either be rejected with an error or produce a table whose own fields
// re-validate and evaluate to finite values across the domain — never a
// panic, never a silently-accepted corrupt table.
func FuzzReadTable1D(f *testing.F) {
	f.Add([]byte(`{"x":[1,2,3],"y":[10,20,30],"xscale":0,"yscale":0}`))
	f.Add([]byte(`{"x":[0.1,1,10],"y":[1e3,1e4,1e5],"xscale":1,"yscale":1}`))
	f.Add([]byte(`{"x":[1,2],"y":[0,1]}`))
	f.Add([]byte(`{"x":[2,1],"y":[1,2]}`))            // non-monotone X
	f.Add([]byte(`{"x":[1,"NaN"],"y":[1,2]}`))        // type confusion
	f.Add([]byte(`{"x":[1,null],"y":[1,2]}`))         // null element
	f.Add([]byte(`{"x":[1,2,3],"y":[1,2]}`))          // length mismatch
	f.Add([]byte(`{"x":[1,2],"y":[1,2],"xscale":9}`)) // bad scale
	f.Add([]byte(`{"x":[1,2],"y":[1`))                // truncated
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		tab, err := ReadTable1D(bytes.NewReader(data))
		if err != nil {
			return
		}
		// An accepted table must re-validate from its own fields...
		if _, err := NewTable1D(tab.X, tab.Y, tab.XScale, tab.YScale); err != nil {
			t.Fatalf("accepted table fails re-validation: %v", err)
		}
		// ...and interpolate to finite values everywhere we probe.
		lo, hi := tab.Domain()
		for _, x := range []float64{lo, hi, (lo + hi) / 2, lo - 1, hi + 1} {
			if y := tab.Eval(x); math.IsNaN(y) || math.IsInf(y, 0) {
				t.Fatalf("accepted table evaluates to %g at %g", y, x)
			}
		}
		// Round trip: what we serialize must read back cleanly.
		var buf strings.Builder
		if err := tab.WriteJSON(&buf); err != nil {
			t.Fatalf("write back: %v", err)
		}
		if _, err := ReadTable1D(strings.NewReader(buf.String())); err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
	})
}
