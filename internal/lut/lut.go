// Package lut implements the look-up tables the paper's flow stores between
// stages: 1-D interpolated tables (electron yield vs energy, POF vs charge)
// with linear or log-log interpolation, plus JSON round-tripping so the
// expensive device-level Monte-Carlo results can be built once and reused —
// exactly the LUT role Geant4/SPICE results play in the paper.
package lut

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
)

// Scale selects the interpolation space for an axis or value.
type Scale int

const (
	// Linear interpolates in linear space.
	Linear Scale = iota
	// Log interpolates in log space; all values must be positive.
	Log
)

// Table1D is a 1-D interpolated look-up table y = f(x) over sorted,
// strictly increasing X. Outside the domain it clamps to the end values,
// which is the conservative choice for POF and yield tables.
type Table1D struct {
	X      []float64 `json:"x"`
	Y      []float64 `json:"y"`
	XScale Scale     `json:"xscale"`
	YScale Scale     `json:"yscale"`
}

// NewTable1D validates and constructs a table. X must be strictly
// increasing with at least two points, every value finite, and positive
// where Log scales are requested.
func NewTable1D(x, y []float64, xs, ys Scale) (*Table1D, error) {
	if xs != Linear && xs != Log {
		return nil, fmt.Errorf("lut: unknown X scale %d", xs)
	}
	if ys != Linear && ys != Log {
		return nil, fmt.Errorf("lut: unknown Y scale %d", ys)
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("lut: length mismatch %d vs %d", len(x), len(y))
	}
	if len(x) < 2 {
		return nil, errors.New("lut: need at least two points")
	}
	for i := range x {
		if math.IsNaN(x[i]) || math.IsNaN(y[i]) {
			return nil, fmt.Errorf("lut: NaN at index %d", i)
		}
		if math.IsInf(x[i], 0) || math.IsInf(y[i], 0) {
			return nil, fmt.Errorf("lut: non-finite value at index %d", i)
		}
		if i > 0 && x[i] <= x[i-1] {
			return nil, fmt.Errorf("lut: X not strictly increasing at index %d", i)
		}
		if xs == Log && x[i] <= 0 {
			return nil, fmt.Errorf("lut: non-positive X %g with log X scale", x[i])
		}
		if ys == Log && y[i] <= 0 {
			return nil, fmt.Errorf("lut: non-positive Y %g with log Y scale", y[i])
		}
	}
	xc := make([]float64, len(x))
	yc := make([]float64, len(y))
	copy(xc, x)
	copy(yc, y)
	return &Table1D{X: xc, Y: yc, XScale: xs, YScale: ys}, nil
}

// Eval interpolates the table at x, clamping outside the domain.
func (t *Table1D) Eval(x float64) float64 {
	n := len(t.X)
	if x <= t.X[0] {
		return t.Y[0]
	}
	if x >= t.X[n-1] {
		return t.Y[n-1]
	}
	// Index of the first grid point > x; segment is [i-1, i].
	i := sort.SearchFloat64s(t.X, x)
	if t.X[i] == x {
		return t.Y[i]
	}
	x0, x1 := t.X[i-1], t.X[i]
	y0, y1 := t.Y[i-1], t.Y[i]
	if t.XScale == Log {
		x, x0, x1 = math.Log(x), math.Log(x0), math.Log(x1)
	}
	if t.YScale == Log {
		y0, y1 = math.Log(y0), math.Log(y1)
	}
	f := (x - x0) / (x1 - x0)
	y := y0 + f*(y1-y0)
	if t.YScale == Log {
		y = math.Exp(y)
	}
	return y
}

// Domain returns the covered X range.
func (t *Table1D) Domain() (lo, hi float64) { return t.X[0], t.X[len(t.X)-1] }

// Len returns the number of grid points.
func (t *Table1D) Len() int { return len(t.X) }

// WriteJSON serializes the table.
func (t *Table1D) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// ReadTable1D deserializes and re-validates a table.
func ReadTable1D(r io.Reader) (*Table1D, error) {
	var t Table1D
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("lut: decode: %w", err)
	}
	return NewTable1D(t.X, t.Y, t.XScale, t.YScale)
}

// LogSpace returns n points geometrically spaced over [lo, hi].
// It panics on invalid arguments, which indicate programmer error.
func LogSpace(lo, hi float64, n int) []float64 {
	if n < 2 || lo <= 0 || hi <= lo {
		panic("lut: LogSpace needs n >= 2 and 0 < lo < hi")
	}
	out := make([]float64, n)
	l0, l1 := math.Log(lo), math.Log(hi)
	for i := range out {
		out[i] = math.Exp(l0 + (l1-l0)*float64(i)/float64(n-1))
	}
	out[0], out[n-1] = lo, hi // exact endpoints
	return out
}

// LinSpace returns n points linearly spaced over [lo, hi].
func LinSpace(lo, hi float64, n int) []float64 {
	if n < 2 || hi <= lo {
		panic("lut: LinSpace needs n >= 2 and lo < hi")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	out[n-1] = hi
	return out
}
