package lut

import (
	"bytes"
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewTable1DValidation(t *testing.T) {
	if _, err := NewTable1D([]float64{1, 2}, []float64{1}, Linear, Linear); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewTable1D([]float64{1}, []float64{1}, Linear, Linear); err == nil {
		t.Error("single point accepted")
	}
	if _, err := NewTable1D([]float64{1, 1}, []float64{1, 2}, Linear, Linear); err == nil {
		t.Error("non-increasing X accepted")
	}
	if _, err := NewTable1D([]float64{-1, 2}, []float64{1, 2}, Log, Linear); err == nil {
		t.Error("negative X with log scale accepted")
	}
	if _, err := NewTable1D([]float64{1, 2}, []float64{0, 2}, Linear, Log); err == nil {
		t.Error("zero Y with log scale accepted")
	}
	if _, err := NewTable1D([]float64{1, math.NaN()}, []float64{1, 2}, Linear, Linear); err == nil {
		t.Error("NaN accepted")
	}
}

func TestLinearInterpolation(t *testing.T) {
	tb, err := NewTable1D([]float64{0, 1, 2}, []float64{0, 10, 40}, Linear, Linear)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, want float64 }{
		{-5, 0}, {0, 0}, {0.5, 5}, {1, 10}, {1.5, 25}, {2, 40}, {99, 40},
	}
	for _, c := range cases {
		if got := tb.Eval(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Eval(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestLogLogInterpolation(t *testing.T) {
	// y = x^2 should be exactly reproduced by log-log interpolation.
	x := []float64{1, 10, 100}
	y := []float64{1, 100, 10000}
	tb, err := NewTable1D(x, y, Log, Log)
	if err != nil {
		t.Fatal(err)
	}
	for _, xv := range []float64{2, 3.7, 5, 31.6, 80} {
		want := xv * xv
		if got := tb.Eval(xv); math.Abs(got-want)/want > 1e-10 {
			t.Errorf("Eval(%v) = %v, want %v", xv, got, want)
		}
	}
}

func TestEvalAtGridPoints(t *testing.T) {
	x := []float64{1, 2, 4, 8}
	y := []float64{3, 1, 4, 1.5}
	tb, _ := NewTable1D(x, y, Log, Linear)
	for i := range x {
		if got := tb.Eval(x[i]); got != y[i] {
			t.Errorf("Eval(%v) = %v, want exact %v", x[i], got, y[i])
		}
	}
}

// Property: interpolated values are bounded by the min/max of neighbouring
// grid values, and clamped outside the domain.
func TestEvalBounded(t *testing.T) {
	f := func(raw []float64, probe float64) bool {
		if len(raw) < 4 || math.IsNaN(probe) || math.IsInf(probe, 0) {
			return true
		}
		xs := make([]float64, 0, len(raw))
		ys := make([]float64, 0, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			xs = append(xs, float64(i))
			ys = append(ys, math.Mod(v, 1e9))
		}
		tb, err := NewTable1D(xs, ys, Linear, Linear)
		if err != nil {
			return false
		}
		p := math.Mod(probe, float64(len(xs)+2))
		got := tb.Eval(p)
		mn, mx := ys[0], ys[0]
		for _, v := range ys {
			mn = math.Min(mn, v)
			mx = math.Max(mx, v)
		}
		return got >= mn-1e-9 && got <= mx+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: a table built from monotone data evaluates monotonically.
func TestMonotonePreservation(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 3 {
			return true
		}
		ys := make([]float64, len(raw))
		acc := 1.0
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			acc += math.Abs(math.Mod(v, 100))
			ys[i] = acc
		}
		xs := make([]float64, len(ys))
		for i := range xs {
			xs[i] = float64(i + 1)
		}
		tb, err := NewTable1D(xs, ys, Log, Log)
		if err != nil {
			return false
		}
		prev := -math.MaxFloat64
		for p := 0.5; p < float64(len(xs))+1; p += 0.1 {
			v := tb.Eval(p)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tb, _ := NewTable1D([]float64{0.1, 1, 10}, []float64{5, 2, 9}, Log, Linear)
	var buf bytes.Buffer
	if err := tb.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTable1D(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.1, 0.5, 3, 10} {
		if got.Eval(x) != tb.Eval(x) {
			t.Errorf("round-trip mismatch at %v", x)
		}
	}
}

func TestReadRejectsBadJSON(t *testing.T) {
	if _, err := ReadTable1D(bytes.NewBufferString(`{"x":[1],"y":[2]}`)); err == nil {
		t.Error("invalid table accepted after decode")
	}
	if _, err := ReadTable1D(bytes.NewBufferString(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

// TestReadRejectsMalformedTables drives the trust boundary with the
// hand-edited-LUT corruption classes: each must be rejected at load, never
// interpolated into garbage.
func TestReadRejectsMalformedTables(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"NaN Y mid-table", `{"x":[1,2,3],"y":[1,NaN,3]}`},
		{"non-monotone X", `{"x":[1,3,2],"y":[1,2,3]}`},
		{"duplicate X", `{"x":[1,2,2],"y":[1,2,3]}`},
		{"wrong lengths", `{"x":[1,2,3],"y":[1,2]}`},
		{"single point", `{"x":[1],"y":[1]}`},
		{"empty arrays", `{"x":[],"y":[]}`},
		{"truncated JSON", `{"x":[1,2,3],"y":[1,2`},
		{"Inf via big exponent", `{"x":[1,2],"y":[1,1e999]}`},
		{"unknown scale", `{"x":[1,2],"y":[1,2],"xscale":7}`},
		{"log scale with zero", `{"x":[0,1],"y":[1,2],"xscale":1}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if tab, err := ReadTable1D(bytes.NewBufferString(c.json)); err == nil {
				t.Errorf("malformed table accepted: %+v", tab)
			}
		})
	}
}

func TestNewTable1DRejectsInf(t *testing.T) {
	if _, err := NewTable1D([]float64{1, 2, math.Inf(1)}, []float64{1, 2, 3}, Linear, Linear); err == nil {
		t.Error("Inf X accepted")
	}
	if _, err := NewTable1D([]float64{1, 2}, []float64{1, math.Inf(1)}, Linear, Linear); err == nil {
		t.Error("Inf Y accepted")
	}
}

func TestLogSpace(t *testing.T) {
	pts := LogSpace(0.1, 100, 7)
	if len(pts) != 7 || pts[0] != 0.1 || pts[6] != 100 {
		t.Fatalf("LogSpace endpoints wrong: %v", pts)
	}
	if !sort.Float64sAreSorted(pts) {
		t.Fatalf("LogSpace not sorted: %v", pts)
	}
	// Ratio between consecutive points should be constant.
	r := pts[1] / pts[0]
	for i := 2; i < len(pts); i++ {
		if math.Abs(pts[i]/pts[i-1]-r) > 1e-9 {
			t.Fatalf("LogSpace not geometric at %d: %v", i, pts)
		}
	}
}

func TestLinSpace(t *testing.T) {
	pts := LinSpace(-1, 1, 5)
	want := []float64{-1, -0.5, 0, 0.5, 1}
	for i := range want {
		if math.Abs(pts[i]-want[i]) > 1e-12 {
			t.Fatalf("LinSpace = %v", pts)
		}
	}
}

func TestSpacePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { LogSpace(0, 1, 5) },
		func() { LogSpace(1, 1, 5) },
		func() { LogSpace(1, 2, 1) },
		func() { LinSpace(2, 1, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
