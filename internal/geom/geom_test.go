package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVecBasics(t *testing.T) {
	a := V(1, 2, 3)
	b := V(-4, 5, 0.5)
	if got := a.Add(b); got != V(-3, 7, 3.5) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != V(5, -3, 2.5) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != V(2, 4, 6) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != -4+10+1.5 {
		t.Errorf("Dot = %v", got)
	}
	if got := V(1, 0, 0).Cross(V(0, 1, 0)); got != V(0, 0, 1) {
		t.Errorf("Cross = %v", got)
	}
	if got := V(3, 4, 0).Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
}

func TestUnitPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Unit of zero vector did not panic")
		}
	}()
	Vec3{}.Unit()
}

func TestCrossOrthogonality(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a, b := V(ax, ay, az), V(bx, by, bz)
		if !a.IsFinite() || !b.IsFinite() {
			return true
		}
		c := a.Cross(b)
		scale := a.Norm() * b.Norm()
		if scale == 0 || math.IsInf(scale, 0) {
			return true
		}
		return almostEq(c.Dot(a)/scale/math.Max(1, c.Norm()), 0, 1e-9) &&
			almostEq(c.Dot(b)/scale/math.Max(1, c.Norm()), 0, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRayAt(t *testing.T) {
	r := Ray{Origin: V(1, 1, 1), Dir: V(0, 0, 2)}
	if got := r.At(0.5); got != V(1, 1, 2) {
		t.Errorf("At = %v", got)
	}
}

func TestBoxConstruction(t *testing.T) {
	b := Box(V(2, -1, 5), V(-2, 3, 0))
	if b.Min != V(-2, -1, 0) || b.Max != V(2, 3, 5) {
		t.Fatalf("Box normalization wrong: %+v", b)
	}
	if got := b.Size(); got != V(4, 4, 5) {
		t.Errorf("Size = %v", got)
	}
	if got := b.Volume(); got != 80 {
		t.Errorf("Volume = %v", got)
	}
	if got := b.Center(); got != V(0, 1, 2.5) {
		t.Errorf("Center = %v", got)
	}
}

func TestBoxAt(t *testing.T) {
	b := BoxAt(V(1, 2, 3), V(10, 20, 30))
	if b.Min != V(1, 2, 3) || b.Max != V(11, 22, 33) {
		t.Fatalf("BoxAt wrong: %+v", b)
	}
}

func TestContains(t *testing.T) {
	b := Box(V(0, 0, 0), V(1, 1, 1))
	for _, tc := range []struct {
		p    Vec3
		want bool
	}{
		{V(0.5, 0.5, 0.5), true},
		{V(0, 0, 0), true},
		{V(1, 1, 1), true},
		{V(1.0001, 0.5, 0.5), false},
		{V(0.5, -0.1, 0.5), false},
	} {
		if got := b.Contains(tc.p); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestUnionTranslate(t *testing.T) {
	a := Box(V(0, 0, 0), V(1, 1, 1))
	b := Box(V(2, -1, 0.5), V(3, 0, 2))
	u := a.Union(b)
	if u.Min != V(0, -1, 0) || u.Max != V(3, 1, 2) {
		t.Fatalf("Union wrong: %+v", u)
	}
	tr := a.Translate(V(10, 0, -1))
	if tr.Min != V(10, 0, -1) || tr.Max != V(11, 1, 0) {
		t.Fatalf("Translate wrong: %+v", tr)
	}
}

func TestIntersectAxisRay(t *testing.T) {
	b := Box(V(0, 0, 0), V(2, 2, 2))
	r := Ray{Origin: V(-1, 1, 1), Dir: V(1, 0, 0)}
	tIn, tOut, ok := b.Intersect(r)
	if !ok || !almostEq(tIn, 1, 1e-12) || !almostEq(tOut, 3, 1e-12) {
		t.Fatalf("Intersect = %v %v %v", tIn, tOut, ok)
	}
	if got := b.ChordLength(r); !almostEq(got, 2, 1e-12) {
		t.Errorf("ChordLength = %v", got)
	}
}

func TestIntersectMiss(t *testing.T) {
	b := Box(V(0, 0, 0), V(1, 1, 1))
	cases := []Ray{
		{Origin: V(-1, 2, 0.5), Dir: V(1, 0, 0)},  // passes above
		{Origin: V(2, 0.5, 0.5), Dir: V(1, 0, 0)}, // box behind origin
		{Origin: V(0.5, 0.5, 5), Dir: V(0, 0, 1)}, // points away
		{Origin: V(-1, -1, -1), Dir: V(0, 0, 1)},  // parallel slab miss
		{Origin: V(5, 5, 5), Dir: V(-1, -1, -3)},  // steep diagonal miss
	}
	for i, r := range cases {
		if _, _, ok := b.Intersect(r); ok {
			t.Errorf("case %d: expected miss for %+v", i, r)
		}
	}
}

func TestIntersectFromInside(t *testing.T) {
	b := Box(V(0, 0, 0), V(1, 1, 1))
	r := Ray{Origin: V(0.5, 0.5, 0.5), Dir: V(0, 1, 0)}
	tIn, tOut, ok := b.Intersect(r)
	if !ok || tIn != 0 || !almostEq(tOut, 0.5, 1e-12) {
		t.Fatalf("inside intersect = %v %v %v", tIn, tOut, ok)
	}
}

func TestIntersectParallelInsideSlab(t *testing.T) {
	b := Box(V(0, 0, 0), V(1, 1, 1))
	r := Ray{Origin: V(0.5, -2, 0.5), Dir: V(0, 1, 0)}
	tIn, tOut, ok := b.Intersect(r)
	if !ok || !almostEq(tIn, 2, 1e-12) || !almostEq(tOut, 3, 1e-12) {
		t.Fatalf("parallel slab intersect = %v %v %v", tIn, tOut, ok)
	}
}

// Property: for any ray hitting the box, the entry and exit points lie on
// (or numerically near) the box boundary, and all interior samples along the
// chord are contained in a slightly inflated box.
func TestIntersectPointsOnBoundary(t *testing.T) {
	b := Box(V(-3, -1, 0), V(4, 2, 7))
	inflate := AABB{Min: b.Min.Sub(V(1e-6, 1e-6, 1e-6)), Max: b.Max.Add(V(1e-6, 1e-6, 1e-6))}
	f := func(ox, oy, oz, dx, dy, dz float64) bool {
		d := V(dx, dy, dz)
		if !d.IsFinite() || d.Norm() < 1e-9 || d.Norm() > 1e150 {
			return true
		}
		o := V(math.Mod(ox, 20), math.Mod(oy, 20), math.Mod(oz, 20))
		if !o.IsFinite() {
			return true
		}
		r := Ray{Origin: o, Dir: d.Unit()}
		tIn, tOut, ok := b.Intersect(r)
		if !ok {
			return true
		}
		if tOut < tIn {
			return false
		}
		for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1} {
			p := r.At(tIn + frac*(tOut-tIn))
			if !inflate.Contains(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: chord length never exceeds the box diagonal.
func TestChordBoundedByDiagonal(t *testing.T) {
	b := Box(V(0, 0, 0), V(2, 3, 6))
	diag := b.Size().Norm() // 7
	f := func(ox, oy, oz, dx, dy, dz float64) bool {
		d := V(dx, dy, dz)
		if !d.IsFinite() || d.Norm() < 1e-9 || d.Norm() > 1e150 {
			return true
		}
		o := V(math.Mod(ox, 10), math.Mod(oy, 10), math.Mod(oz, 10))
		if !o.IsFinite() {
			return true
		}
		c := b.ChordLength(Ray{Origin: o, Dir: d.Unit()})
		return c >= 0 && c <= diag+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
