package geom

import "math"

// AABB is an axis-aligned box with inclusive bounds Min <= Max, in nm.
// Fins, wells, and array bounding volumes are all axis-aligned boxes in the
// layouts this library models, so the AABB is the only solid primitive the
// transport layer needs.
type AABB struct {
	Min, Max Vec3
}

// Box constructs an AABB from two opposite corners in any order.
func Box(a, b Vec3) AABB {
	return AABB{
		Min: Vec3{math.Min(a.X, b.X), math.Min(a.Y, b.Y), math.Min(a.Z, b.Z)},
		Max: Vec3{math.Max(a.X, b.X), math.Max(a.Y, b.Y), math.Max(a.Z, b.Z)},
	}
}

// BoxAt constructs an AABB from its minimum corner and its size along each
// axis. Sizes must be non-negative.
func BoxAt(min Vec3, size Vec3) AABB {
	return AABB{Min: min, Max: min.Add(size)}
}

// Size returns the box extents along each axis.
func (b AABB) Size() Vec3 { return b.Max.Sub(b.Min) }

// Center returns the box centroid.
func (b AABB) Center() Vec3 { return b.Min.Add(b.Max).Scale(0.5) }

// Volume returns the box volume in nm³.
func (b AABB) Volume() float64 {
	s := b.Size()
	return s.X * s.Y * s.Z
}

// Contains reports whether p lies inside or on the boundary of b.
func (b AABB) Contains(p Vec3) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// Union returns the smallest AABB containing both b and c.
func (b AABB) Union(c AABB) AABB {
	return AABB{
		Min: Vec3{math.Min(b.Min.X, c.Min.X), math.Min(b.Min.Y, c.Min.Y), math.Min(b.Min.Z, c.Min.Z)},
		Max: Vec3{math.Max(b.Max.X, c.Max.X), math.Max(b.Max.Y, c.Max.Y), math.Max(b.Max.Z, c.Max.Z)},
	}
}

// Translate returns b shifted by d.
func (b AABB) Translate(d Vec3) AABB {
	return AABB{Min: b.Min.Add(d), Max: b.Max.Add(d)}
}

// Intersect clips the ray r against the box using the branchless slab
// method. It returns the entry and exit parameters tIn <= tOut restricted to
// t >= 0, and ok=false when the ray misses the box (or only touches it
// behind the origin). A ray starting inside the box yields tIn == 0.
func (b AABB) Intersect(r Ray) (tIn, tOut float64, ok bool) {
	tIn, tOut = 0, math.Inf(1)
	mins := [3]float64{b.Min.X, b.Min.Y, b.Min.Z}
	maxs := [3]float64{b.Max.X, b.Max.Y, b.Max.Z}
	orig := [3]float64{r.Origin.X, r.Origin.Y, r.Origin.Z}
	dir := [3]float64{r.Dir.X, r.Dir.Y, r.Dir.Z}
	for i := 0; i < 3; i++ {
		if dir[i] == 0 {
			// Parallel to this slab: miss unless the origin lies within it.
			if orig[i] < mins[i] || orig[i] > maxs[i] {
				return 0, 0, false
			}
			continue
		}
		inv := 1 / dir[i]
		t0 := (mins[i] - orig[i]) * inv
		t1 := (maxs[i] - orig[i]) * inv
		if t0 > t1 {
			t0, t1 = t1, t0
		}
		if t0 > tIn {
			tIn = t0
		}
		if t1 < tOut {
			tOut = t1
		}
		if tIn > tOut {
			return 0, 0, false
		}
	}
	if tOut < 0 {
		return 0, 0, false
	}
	if tIn < 0 {
		tIn = 0
	}
	return tIn, tOut, true
}

// ChordLength returns the length of the ray's chord through the box,
// assuming r.Dir is unit length. Zero when the ray misses.
func (b AABB) ChordLength(r Ray) float64 {
	tIn, tOut, ok := b.Intersect(r)
	if !ok {
		return 0
	}
	return tOut - tIn
}
