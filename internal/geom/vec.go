// Package geom provides the small 3-D vector and solid geometry kernel used
// by the particle-transport and layout analysis layers: vectors, rays,
// axis-aligned boxes, and ray clipping. All lengths are in nanometres.
package geom

import (
	"fmt"
	"math"
)

// Vec3 is a 3-D vector or point in nanometres.
type Vec3 struct {
	X, Y, Z float64
}

// V is shorthand for constructing a Vec3.
func V(x, y, z float64) Vec3 { return Vec3{x, y, z} }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s*v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the inner product of v and w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the vector product v × w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm2 returns the squared Euclidean length of v.
func (v Vec3) Norm2() float64 { return v.Dot(v) }

// Unit returns v scaled to unit length. It panics on the zero vector,
// which would indicate a logic error in direction sampling.
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n == 0 {
		panic("geom: Unit of zero vector")
	}
	return v.Scale(1 / n)
}

// IsFinite reports whether all components are finite numbers.
func (v Vec3) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}

// String implements fmt.Stringer.
func (v Vec3) String() string { return fmt.Sprintf("(%g, %g, %g)", v.X, v.Y, v.Z) }

// Ray is a parametric half-line p(t) = Origin + t*Dir for t >= 0.
// Dir need not be unit length, but the transport layer keeps it normalized
// so that t is a path length in nanometres.
type Ray struct {
	Origin Vec3
	Dir    Vec3
}

// At returns the point at parameter t along the ray.
func (r Ray) At(t float64) Vec3 { return r.Origin.Add(r.Dir.Scale(t)) }
