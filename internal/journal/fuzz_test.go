package journal

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalReplay feeds arbitrary bytes — including every truncation of
// a valid log, which the seed corpus spans — through Replay and Open. The
// invariants, whatever the input:
//
//   - never a panic;
//   - every reported problem is a typed *CorruptError;
//   - every replayed record is valid (known kind, non-empty job ID) — no
//     ghost jobs can reach a server's job table;
//   - Open over the same bytes replays the same records and leaves an
//     appendable journal.
func FuzzJournalReplay(f *testing.F) {
	valid := validLogBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-3])
	f.Add([]byte{})
	f.Add([]byte("not a journal at all"))
	f.Add(frameMagic[:])
	torn := append([]byte{}, valid...)
	torn[len(torn)/3] ^= 0xFF
	f.Add(torn)
	huge := append([]byte{}, frameMagic[:]...)
	huge = append(huge, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, cerrs := Replay(data)
		for _, ce := range cerrs {
			var typed *CorruptError
			if !errors.As(error(ce), &typed) {
				t.Fatalf("replay error %T is not *CorruptError", ce)
			}
		}
		for i, r := range recs {
			if err := r.validate(); err != nil {
				t.Fatalf("replayed ghost record %d: %+v (%v)", i, r, err)
			}
		}

		// Open agrees with Replay and leaves a usable journal behind.
		path := filepath.Join(t.TempDir(), "journal.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, opened, _, err := Open(path)
		if err != nil {
			t.Fatalf("Open over fuzzed bytes: %v", err)
		}
		defer j.Close()
		if len(opened) != len(recs) {
			t.Fatalf("Open replayed %d records, Replay %d", len(opened), len(recs))
		}
		if err := j.Append(Record{Kind: KindState, Job: "job-fuzz", State: "done"}); err != nil {
			t.Fatalf("append after fuzzed open: %v", err)
		}
	})
}

// validLogBytes builds a well-formed multi-record journal in memory.
func validLogBytes(f *testing.F) []byte {
	f.Helper()
	var buf bytes.Buffer
	for _, rec := range []Record{
		{Kind: KindSubmitted, Job: "job-1", Request: json.RawMessage(`{"vdd":0.7}`), Fingerprint: "fp1"},
		{Kind: KindState, Job: "job-1", State: "running"},
		{Kind: KindState, Job: "job-1", State: "done", Result: json.RawMessage(`{"vdd":0.7}`)},
		{Kind: KindSubmitted, Job: "job-2", Request: json.RawMessage(`{"vdd":0.8}`), Fingerprint: "fp2"},
		{Kind: KindEvicted, Job: "job-1"},
	} {
		frame, err := encodeFrame(rec)
		if err != nil {
			f.Fatal(err)
		}
		buf.Write(frame)
	}
	return buf.Bytes()
}
