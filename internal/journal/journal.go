// Package journal is the serving layer's crash-safety boundary: a
// CRC-framed, fsync'd, atomically-rotated write-ahead log of job lifecycle
// records. serd appends one record per lifecycle transition (submission
// with the request spec and fingerprint, state changes, the terminal
// result, eviction); after a SIGKILL, OOM, or power loss a restarted
// daemon replays the log and rebuilds exactly the job registry the dead
// process held, re-enqueuing what was queued and resuming what was running
// from its fingerprint-keyed checkpoint.
//
// Robustness is the package contract, not an afterthought:
//
//   - Every frame is magic-delimited and CRC-checked. A corrupt or
//     truncated record is skipped with a typed *CorruptError — never a
//     panic, and never a lost tail: the scanner resynchronizes on the next
//     frame magic, so one damaged record in the middle of the log costs
//     exactly that record.
//   - A torn tail write (the classic crash-mid-append) is detected and
//     truncated on open, so the journal always reopens at a clean frame
//     boundary.
//   - Appends fsync before returning: an acknowledged record survives the
//     next instant's power cut. A failed append returns a typed
//     *WriteError so the caller can degrade (keep serving, flag lost
//     durability) instead of crashing.
//   - Rotation is atomic (temp file + rename in the same directory): a
//     crash mid-rotation leaves the previous journal intact.
package journal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Record kinds. A job's history is one KindSubmitted record followed by
// KindState records (the last one wins on replay) and, when the server
// expires it, one KindEvicted record that drops it from future replays.
const (
	// KindSubmitted carries the admitted request: its JSON spec, the
	// configuration fingerprint, and the idempotency key.
	KindSubmitted = "submitted"
	// KindState carries a lifecycle transition (running, done, failed,
	// canceled) plus the terminal error or result.
	KindState = "state"
	// KindEvicted marks a terminal job expired by the retention policy;
	// replay discards the job entirely.
	KindEvicted = "evicted"
)

// Record is one journal entry. It is a flat union over the record kinds —
// unused fields stay zero and are omitted from the JSON payload.
type Record struct {
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// Job is the owning job ID; every record carries it.
	Job string `json:"job"`
	// TimeMs is the append wall time in Unix milliseconds.
	TimeMs int64 `json:"t_ms,omitempty"`

	// Submitted records.
	Request        json.RawMessage `json:"request,omitempty"`
	Fingerprint    string          `json:"fingerprint,omitempty"`
	IdempotencyKey string          `json:"idempotency_key,omitempty"`
	// Tenant and Class carry the QoS identity the job was admitted under,
	// so replay restores per-tenant quota accounting and fair-queue
	// placement, not just the job itself.
	Tenant string `json:"tenant,omitempty"`
	Class  string `json:"class,omitempty"`

	// State records.
	State  string          `json:"state,omitempty"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// validate rejects records that must never reach a replayer's job table —
// the "ghost job" guard the fuzz target pins.
func (r *Record) validate() error {
	switch r.Kind {
	case KindSubmitted, KindState, KindEvicted:
	default:
		return fmt.Errorf("unknown record kind %q", r.Kind)
	}
	if r.Job == "" {
		return errors.New("record has no job ID")
	}
	return nil
}

// CorruptError reports one damaged region of a journal — a frame whose
// magic, length, CRC, or payload failed validation. Replay skips the
// region and continues; the caller counts these (obs) and moves on.
type CorruptError struct {
	// Path is the journal file ("" when replaying raw bytes).
	Path string
	// Offset is where the damaged region starts.
	Offset int64
	// Cause names what failed.
	Cause error
}

func (e *CorruptError) Error() string {
	if e.Path == "" {
		return fmt.Sprintf("journal: corrupt record at offset %d: %v", e.Offset, e.Cause)
	}
	return fmt.Sprintf("journal: corrupt record in %s at offset %d: %v", e.Path, e.Offset, e.Cause)
}

func (e *CorruptError) Unwrap() error { return e.Cause }

// ErrClosed is the cause inside the *WriteError returned by appends to a
// closed journal.
var ErrClosed = errors.New("journal closed")

// WriteError reports a failed durability operation — disk full, a dead
// device, a closed journal. It is typed so the serving layer can degrade
// to lossy mode (keep serving, flag the lost durability on /readyz)
// instead of crashing.
type WriteError struct {
	// Op is the operation that failed ("append", "rotate", "open").
	Op string
	// Path is the journal file.
	Path string
	// Cause is the underlying failure.
	Cause error
}

func (e *WriteError) Error() string {
	return fmt.Sprintf("journal: %s %s: %v", e.Op, e.Path, e.Cause)
}

func (e *WriteError) Unwrap() error { return e.Cause }

// Frame layout: magic (4) | payload length (4, LE) | payload CRC32-C (4,
// LE) | payload. The magic opens with a non-ASCII byte so JSON payload
// bytes can never alias a frame boundary during resynchronization.
var frameMagic = [4]byte{0xF1, 'J', 'L', '1'}

const headerSize = 12

// MaxRecordBytes caps one record's payload — far above any real job
// record, low enough that a corrupted length field cannot make the scanner
// swallow the rest of the file as one frame.
const MaxRecordBytes = 16 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// encodeFrame renders one record in frame format.
func encodeFrame(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("encode record: %w", err)
	}
	if len(payload) > MaxRecordBytes {
		return nil, fmt.Errorf("record payload %d bytes exceeds cap %d", len(payload), MaxRecordBytes)
	}
	frame := make([]byte, headerSize+len(payload))
	copy(frame, frameMagic[:])
	binary.LittleEndian.PutUint32(frame[4:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[8:], crc32.Checksum(payload, castagnoli))
	copy(frame[headerSize:], payload)
	return frame, nil
}

// Replay decodes every valid record in buf, in order. Damaged regions —
// bad magic, an absurd length, a CRC mismatch, a truncated tail, invalid
// JSON, an invalid record — are reported as typed *CorruptError values and
// skipped: the scanner resynchronizes on the next frame magic, so records
// after a corrupt one are still recovered. Replay never panics, whatever
// the input.
func Replay(buf []byte) ([]Record, []*CorruptError) {
	recs, cerrs, _ := scan("", buf)
	return recs, cerrs
}

// scan is Replay plus the offset after the last valid frame, which Open
// uses to truncate a torn tail.
func scan(path string, buf []byte) ([]Record, []*CorruptError, int64) {
	var recs []Record
	var cerrs []*CorruptError
	bad := func(at int, cause error) {
		cerrs = append(cerrs, &CorruptError{Path: path, Offset: int64(at), Cause: cause})
	}
	// resync returns the next frame-magic offset strictly after from, or
	// -1 when none remains.
	resync := func(from int) int {
		i := bytes.Index(buf[from+1:], frameMagic[:])
		if i < 0 {
			return -1
		}
		return from + 1 + i
	}
	off, lastGood := 0, 0
	for off < len(buf) {
		if !bytes.HasPrefix(buf[off:], frameMagic[:]) {
			bad(off, errors.New("bad frame magic"))
			if off = resync(off); off < 0 {
				return recs, cerrs, int64(lastGood)
			}
			continue
		}
		if len(buf)-off < headerSize {
			bad(off, errors.New("truncated frame header"))
			return recs, cerrs, int64(lastGood)
		}
		n := binary.LittleEndian.Uint32(buf[off+4:])
		if n > MaxRecordBytes {
			bad(off, fmt.Errorf("frame length %d exceeds cap %d", n, MaxRecordBytes))
			if off = resync(off); off < 0 {
				return recs, cerrs, int64(lastGood)
			}
			continue
		}
		end := off + headerSize + int(n)
		if end > len(buf) {
			bad(off, fmt.Errorf("truncated frame: need %d bytes, have %d", headerSize+int(n), len(buf)-off))
			if off = resync(off); off < 0 {
				return recs, cerrs, int64(lastGood)
			}
			continue
		}
		payload := buf[off+headerSize : end]
		if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(buf[off+8:]); got != want {
			bad(off, fmt.Errorf("CRC mismatch: computed %08x, stored %08x", got, want))
			off = end
			continue
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			bad(off, fmt.Errorf("invalid payload: %w", err))
			off = end
			continue
		}
		if err := rec.validate(); err != nil {
			bad(off, err)
			off = end
			continue
		}
		recs = append(recs, rec)
		off = end
		lastGood = off
	}
	return recs, cerrs, int64(lastGood)
}

// ReplayStats summarizes what Open found in an existing journal.
type ReplayStats struct {
	// Records is how many valid records replayed.
	Records int
	// Errors holds one *CorruptError per damaged region skipped.
	Errors []*CorruptError
	// TruncatedTail is how many torn-tail bytes Open cut so the journal
	// reopens at a clean frame boundary (0 for a clean file).
	TruncatedTail int64
}

// Journal is an open, appendable log. All methods are safe for concurrent
// use. Construct with Open.
type Journal struct {
	mu     sync.Mutex
	path   string
	f      *os.File
	size   int64
	closed bool
}

// Open opens (or creates) the journal at path, replays every valid record,
// and positions the file for appends. Damaged regions are skipped and
// reported in the stats — corruption never fails Open. A torn tail (bytes
// after the last valid frame with no valid frame among them) is truncated
// so appends extend a clean boundary; damage in the middle of the file is
// left in place (later valid records are past it) and compacted away by
// the next Rotate.
func Open(path string) (*Journal, []Record, ReplayStats, error) {
	var stats ReplayStats
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, stats, &WriteError{Op: "open", Path: path, Cause: err}
	}
	buf, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, stats, &WriteError{Op: "open", Path: path, Cause: err}
	}
	recs, cerrs, lastGood := scan(path, buf)
	stats.Records = len(recs)
	stats.Errors = cerrs
	if lastGood < int64(len(buf)) {
		if err := f.Truncate(lastGood); err != nil {
			f.Close()
			return nil, nil, stats, &WriteError{Op: "open", Path: path, Cause: err}
		}
		stats.TruncatedTail = int64(len(buf)) - lastGood
	}
	if _, err := f.Seek(lastGood, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, stats, &WriteError{Op: "open", Path: path, Cause: err}
	}
	return &Journal{path: path, f: f, size: lastGood}, recs, stats, nil
}

// Append frames rec, writes it, and fsyncs before returning: an
// acknowledged append is on stable storage. Any failure — including an
// append to a closed journal — returns a *WriteError; the file may then
// hold a torn frame, which the next Open detects and truncates.
func (j *Journal) Append(rec Record) error {
	frame, err := encodeFrame(rec)
	if err != nil {
		return &WriteError{Op: "append", Path: j.path, Cause: err}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return &WriteError{Op: "append", Path: j.path, Cause: ErrClosed}
	}
	if _, err := j.f.Write(frame); err != nil {
		return &WriteError{Op: "append", Path: j.path, Cause: err}
	}
	if err := j.f.Sync(); err != nil {
		return &WriteError{Op: "append", Path: j.path, Cause: err}
	}
	j.size += int64(len(frame))
	return nil
}

// Size returns the journal's current byte size — the caller's rotation
// trigger.
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// Path returns the backing file path.
func (j *Journal) Path() string { return j.path }

// Rotate atomically replaces the journal with a compacted one holding
// exactly the live records: they are framed into a temp file in the same
// directory, fsync'd, and renamed over the old log, so a crash at any
// instant leaves either the old or the new journal intact — never a mix.
// Rotation drops accumulated dead records and any corrupt regions.
func (j *Journal) Rotate(live []Record) error {
	var buf bytes.Buffer
	for _, rec := range live {
		frame, err := encodeFrame(rec)
		if err != nil {
			return &WriteError{Op: "rotate", Path: j.path, Cause: err}
		}
		buf.Write(frame)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return &WriteError{Op: "rotate", Path: j.path, Cause: ErrClosed}
	}
	dir := filepath.Dir(j.path)
	tmp, err := os.CreateTemp(dir, ".journal-*")
	if err != nil {
		return &WriteError{Op: "rotate", Path: j.path, Cause: err}
	}
	tmpName := tmp.Name()
	fail := func(cause error) error {
		tmp.Close()
		os.Remove(tmpName)
		return &WriteError{Op: "rotate", Path: j.path, Cause: cause}
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return &WriteError{Op: "rotate", Path: j.path, Cause: err}
	}
	if err := os.Rename(tmpName, j.path); err != nil {
		os.Remove(tmpName)
		return &WriteError{Op: "rotate", Path: j.path, Cause: err}
	}
	// Make the rename itself durable (best-effort: not every filesystem
	// supports directory fsync).
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	nf, err := os.OpenFile(j.path, os.O_RDWR, 0o644)
	if err != nil {
		// The rename landed but we lost our handle; the journal on disk is
		// valid, so surface the error and leave the old (now-orphaned)
		// handle in place for further appends to fail loudly.
		return &WriteError{Op: "rotate", Path: j.path, Cause: err}
	}
	if _, err := nf.Seek(0, io.SeekEnd); err != nil {
		nf.Close()
		return &WriteError{Op: "rotate", Path: j.path, Cause: err}
	}
	j.f.Close()
	j.f = nf
	j.size = int64(buf.Len())
	return nil
}

// Close closes the journal; later appends fail with a *WriteError wrapping
// ErrClosed. Idempotent.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if err := j.f.Close(); err != nil {
		return &WriteError{Op: "close", Path: j.path, Cause: err}
	}
	return nil
}
