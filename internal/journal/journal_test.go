package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// testRecords builds a small deterministic job history.
func testRecords(n int) []Record {
	var out []Record
	for i := 0; i < n; i++ {
		id := "job-" + string(rune('1'+i))
		out = append(out,
			Record{Kind: KindSubmitted, Job: id, TimeMs: int64(1000 + i),
				Request: json.RawMessage(`{"vdd":0.7}`), Fingerprint: "fp-" + id, IdempotencyKey: "fp-" + id},
			Record{Kind: KindState, Job: id, State: "running"},
			Record{Kind: KindState, Job: id, State: "done",
				Result: json.RawMessage(`{"vdd":0.7,"alpha":{},"proton":{}}`)},
		)
	}
	return out
}

// writeJournal appends recs to a fresh journal at path and closes it.
func writeJournal(t *testing.T, path string, recs []Record) {
	t.Helper()
	j, replayed, stats, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if len(replayed) != 0 || len(stats.Errors) != 0 {
		t.Fatalf("fresh journal replayed %d records, %d errors", len(replayed), len(stats.Errors))
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestAppendReplayRoundTrip checks that every appended record replays
// byte-identically, in order, with no corruption reported.
func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	want := testRecords(3)
	writeJournal(t, path, want)

	j, got, stats, err := Open(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j.Close()
	if len(stats.Errors) != 0 || stats.TruncatedTail != 0 {
		t.Fatalf("clean journal reported damage: %+v", stats)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		gb, _ := json.Marshal(got[i])
		wb, _ := json.Marshal(want[i])
		if string(gb) != string(wb) {
			t.Errorf("record %d: got %s, want %s", i, gb, wb)
		}
	}
	if j.Size() == 0 {
		t.Error("Size() = 0 after appends")
	}
}

// TestCorruptMiddleRecordSkippedTailSurvives is the resynchronization
// contract: flipping payload bytes of a middle record loses exactly that
// record — everything before AND after it still replays, and the damage is
// a typed *CorruptError.
func TestCorruptMiddleRecordSkippedTailSurvives(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	want := testRecords(3) // 9 records
	writeJournal(t, path, want)

	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the payload of the 5th frame (a middle record): walk frames
	// by their length headers, then flip a payload byte.
	off := 0
	for i := 0; i < 4; i++ {
		off += headerSize + int(binary.LittleEndian.Uint32(buf[off+4:]))
	}
	buf[off+headerSize] ^= 0xFF
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	recs, cerrs := Replay(buf)
	if len(recs) != len(want)-1 {
		t.Fatalf("replayed %d records, want %d (one corrupted)", len(recs), len(want)-1)
	}
	if len(cerrs) != 1 {
		t.Fatalf("corrupt errors = %d, want 1: %v", len(cerrs), cerrs)
	}
	var ce *CorruptError
	if !errors.As(error(cerrs[0]), &ce) {
		t.Fatalf("error %T is not *CorruptError", cerrs[0])
	}
	// The 4 records before and 4 after the damaged one survive, in order.
	for i, r := range recs {
		wi := i
		if i >= 4 {
			wi = i + 1
		}
		if r.Job != want[wi].Job || r.Kind != want[wi].Kind {
			t.Errorf("record %d = %s/%s, want %s/%s", i, r.Kind, r.Job, want[wi].Kind, want[wi].Job)
		}
	}

	// Open agrees, counts the damage, and stays appendable.
	j, got, stats, err := Open(path)
	if err != nil {
		t.Fatalf("Open over corruption: %v", err)
	}
	defer j.Close()
	if len(got) != len(want)-1 || len(stats.Errors) != 1 {
		t.Fatalf("Open replayed %d records with %d errors, want %d and 1", len(got), len(stats.Errors), len(want)-1)
	}
	if err := j.Append(Record{Kind: KindState, Job: "job-3", State: "canceled"}); err != nil {
		t.Fatalf("append after corruption: %v", err)
	}
}

// TestTornTailTruncatedOnOpen checks the crash-mid-append story: a partial
// final frame is detected, reported, and truncated so the journal reopens
// at a clean boundary and appends cleanly.
func TestTornTailTruncatedOnOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	want := testRecords(2) // 6 records
	writeJournal(t, path, want)

	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last frame: drop its final 3 bytes.
	torn := buf[:len(buf)-3]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	j, got, stats, err := Open(path)
	if err != nil {
		t.Fatalf("Open over torn tail: %v", err)
	}
	if len(got) != len(want)-1 {
		t.Fatalf("replayed %d records, want %d (last torn)", len(got), len(want)-1)
	}
	if stats.TruncatedTail == 0 {
		t.Error("TruncatedTail = 0, want the torn bytes cut")
	}
	if len(stats.Errors) != 1 {
		t.Errorf("errors = %d, want 1 (the torn frame)", len(stats.Errors))
	}
	if err := j.Append(want[len(want)-1]); err != nil {
		t.Fatalf("append after truncation: %v", err)
	}
	j.Close()

	// The re-appended record replays cleanly.
	j2, got2, stats2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(got2) != len(want) || len(stats2.Errors) != 0 {
		t.Fatalf("after repair: %d records, %d errors, want %d and 0", len(got2), len(stats2.Errors), len(want))
	}
}

// TestEveryTruncationYieldsUsablePrefix replays every possible truncation
// of a valid log: each must yield some prefix of the original records and
// never a panic or an invented record.
func TestEveryTruncationYieldsUsablePrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	want := testRecords(2)
	writeJournal(t, path, want)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut <= len(buf); cut++ {
		recs, _ := Replay(buf[:cut])
		if len(recs) > len(want) {
			t.Fatalf("cut %d: %d records from a %d-record log", cut, len(recs), len(want))
		}
		for i, r := range recs {
			if r.Job != want[i].Job || r.Kind != want[i].Kind {
				t.Fatalf("cut %d: record %d = %s/%s, want prefix record %s/%s",
					cut, i, r.Kind, r.Job, want[i].Kind, want[i].Job)
			}
		}
	}
}

// TestRotateCompacts checks atomic rotation: the journal is replaced by
// exactly the live records, old bulk is gone, and appends continue.
func TestRotateCompacts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range testRecords(3) {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	before := j.Size()

	live := []Record{
		{Kind: KindSubmitted, Job: "job-3", Request: json.RawMessage(`{"vdd":0.7}`), Fingerprint: "fp-job-3"},
		{Kind: KindState, Job: "job-3", State: "done", Result: json.RawMessage(`{}`)},
	}
	if err := j.Rotate(live); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	if j.Size() >= before {
		t.Errorf("Size after rotation %d, want < %d", j.Size(), before)
	}
	if err := j.Append(Record{Kind: KindEvicted, Job: "job-3"}); err != nil {
		t.Fatalf("append after rotation: %v", err)
	}
	j.Close()

	_, got, stats, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Errors) != 0 {
		t.Fatalf("rotated journal has damage: %v", stats.Errors)
	}
	if len(got) != 3 || got[0].Job != "job-3" || got[2].Kind != KindEvicted {
		t.Fatalf("rotated replay = %+v, want the 2 live records plus the appended eviction", got)
	}
}

// TestAppendAfterCloseIsTypedWriteError checks the degraded-mode seam: a
// closed journal refuses appends with a *WriteError wrapping ErrClosed,
// never a panic.
func TestAppendAfterCloseIsTypedWriteError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second Close: %v, want idempotent nil", err)
	}
	err = j.Append(Record{Kind: KindState, Job: "job-1", State: "done"})
	var we *WriteError
	if !errors.As(err, &we) || !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close = %v, want *WriteError wrapping ErrClosed", err)
	}
	if err := j.Rotate(nil); !errors.As(err, &we) {
		t.Fatalf("rotate after close = %v, want *WriteError", err)
	}
}

// TestInvalidRecordsNeverReplay checks the ghost-job guard: frames whose
// payload is valid JSON but not a valid record (unknown kind, missing job
// ID) are skipped as corrupt.
func TestInvalidRecordsNeverReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(Record{Kind: KindSubmitted, Job: "job-1", Request: json.RawMessage(`{}`)})
	j.Append(Record{Kind: "mystery", Job: "job-9"})
	j.Append(Record{Kind: KindState, Job: "", State: "done"})
	j.Close()

	_, got, stats, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Job != "job-1" {
		t.Fatalf("replay = %+v, want only job-1", got)
	}
	if len(stats.Errors) != 2 {
		t.Fatalf("errors = %d, want 2 (invalid kind, empty job)", len(stats.Errors))
	}
}
