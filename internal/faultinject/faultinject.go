// Package faultinject lets robustness tests deterministically inject
// failures — worker panics, solver non-convergence errors, cancellation —
// at chosen points inside long-running stages, so the engine's degradation
// paths are exercised under -race instead of trusted.
//
// Instrumented code calls Hit(site) at each pass through a named site (one
// site per worker loop, counted across all goroutines); tests arm rules
// that fire when the site's cumulative hit count reaches a chosen value.
// A nil *Hooks is the production configuration: Hit on a nil receiver is a
// single pointer comparison, the same zero-cost idiom as internal/obs.
//
// The package also owns PanicError, the stack-carrying error a recovery
// site stores when a worker goroutine panics — injected or organic — so a
// crash fails its stage instead of the process.
package faultinject

import (
	"fmt"
	"runtime/debug"
	"sync"
)

// PanicError is a recovered worker panic: the site that caught it, the
// original panic value, and the goroutine stack at the panic point.
type PanicError struct {
	Site  string
	Value any
	Stack []byte
}

// Error names the site and panic value; the stack is kept structured for
// callers that want to log it (errors.As + .Stack).
func (e *PanicError) Error() string {
	return fmt.Sprintf("%s: panic: %v", e.Site, e.Value)
}

// Recover converts an in-flight panic into a *PanicError stored at errp.
// Use it as the first deferred call of a worker goroutine:
//
//	defer faultinject.Recover("core.worker", &err)
//
// It overwrites any earlier error at errp only when a panic is actually in
// flight, and does nothing otherwise.
func Recover(site string, errp *error) {
	if r := recover(); r != nil {
		*errp = &PanicError{Site: site, Value: r, Stack: debug.Stack()}
	}
}

// rule is one armed injection at a site.
type rule struct {
	at     int64 // fire when the site's hit count reaches this (1-based)
	panics bool
	msg    string
	err    error
	call   func()
}

// siteState tracks one named site's cumulative hits and armed rules.
type siteState struct {
	hits  int64
	rules []rule
}

// Hooks is a set of armed fault-injection rules keyed by site name. The
// zero value is not usable; construct with New. A nil *Hooks accepts Hit
// calls and never fires.
type Hooks struct {
	mu    sync.Mutex
	sites map[string]*siteState
}

// New returns an empty hook set ready for arming.
func New() *Hooks { return &Hooks{sites: map[string]*siteState{}} }

// PanicAt arms a panic with the given message on the n-th hit of site.
func (h *Hooks) PanicAt(site string, n int64, msg string) {
	h.arm(site, rule{at: n, panics: true, msg: msg})
}

// ErrorAt arms an injected error (e.g. a synthetic solver non-convergence)
// returned from the n-th hit of site.
func (h *Hooks) ErrorAt(site string, n int64, err error) {
	h.arm(site, rule{at: n, err: err})
}

// CallAt arms an arbitrary callback — typically a context.CancelFunc — run
// on the n-th hit of site. Hit returns nil for pure-call rules.
func (h *Hooks) CallAt(site string, n int64, f func()) {
	h.arm(site, rule{at: n, call: f})
}

func (h *Hooks) arm(site string, r rule) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.sites[site]
	if s == nil {
		s = &siteState{}
		h.sites[site] = s
	}
	s.rules = append(s.rules, r)
}

// Hit records one pass through the named site and fires any rule armed for
// the resulting hit count: calls its callback, panics, or returns its
// error. Nil receiver: returns nil immediately.
func (h *Hooks) Hit(site string) error {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	s := h.sites[site]
	if s == nil {
		s = &siteState{}
		h.sites[site] = s
	}
	s.hits++
	var fire *rule
	for i := range s.rules {
		if s.rules[i].at == s.hits {
			fire = &s.rules[i]
			break
		}
	}
	h.mu.Unlock()
	if fire == nil {
		return nil
	}
	if fire.call != nil {
		fire.call()
	}
	if fire.panics {
		panic("faultinject: " + fire.msg)
	}
	return fire.err
}

// Hits returns the cumulative hit count of a site (0 on a nil receiver or
// unknown site) — test introspection.
func (h *Hooks) Hits(site string) int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if s := h.sites[site]; s != nil {
		return s.hits
	}
	return 0
}
