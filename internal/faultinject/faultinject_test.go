package faultinject

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestNilHooksAreNoOps(t *testing.T) {
	var h *Hooks
	if err := h.Hit("anything"); err != nil {
		t.Fatalf("nil hooks returned %v", err)
	}
	if h.Hits("anything") != 0 {
		t.Fatal("nil hooks counted hits")
	}
}

func TestErrorAtFiresExactlyOnce(t *testing.T) {
	h := New()
	want := errors.New("injected non-convergence")
	h.ErrorAt("site", 3, want)
	for i := 1; i <= 5; i++ {
		err := h.Hit("site")
		if i == 3 && !errors.Is(err, want) {
			t.Fatalf("hit %d: got %v, want injected error", i, err)
		}
		if i != 3 && err != nil {
			t.Fatalf("hit %d: unexpected error %v", i, err)
		}
	}
	if h.Hits("site") != 5 {
		t.Fatalf("hits = %d, want 5", h.Hits("site"))
	}
}

func TestPanicAtAndRecover(t *testing.T) {
	h := New()
	h.PanicAt("w", 2, "boom")
	run := func() (err error) {
		defer Recover("w", &err)
		for i := 0; i < 4; i++ {
			if e := h.Hit("w"); e != nil {
				return e
			}
		}
		return nil
	}
	err := run()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *PanicError", err)
	}
	if pe.Site != "w" || !strings.Contains(pe.Error(), "boom") {
		t.Fatalf("panic error = %v", pe)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("panic error carries no stack")
	}
}

func TestCallAtRunsCallback(t *testing.T) {
	h := New()
	called := false
	h.CallAt("s", 2, func() { called = true })
	if err := h.Hit("s"); err != nil || called {
		t.Fatal("rule fired early")
	}
	if err := h.Hit("s"); err != nil {
		t.Fatalf("call rule returned error %v", err)
	}
	if !called {
		t.Fatal("callback not run")
	}
}

// TestConcurrentHits exercises the counter under -race the way worker
// pools do: many goroutines hitting one site, exactly one observing the
// armed error.
func TestConcurrentHits(t *testing.T) {
	h := New()
	want := errors.New("one of you fails")
	h.ErrorAt("pool", 50, want)
	var wg sync.WaitGroup
	fired := make(chan error, 100)
	for g := 0; g < 10; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if err := h.Hit("pool"); err != nil {
					fired <- err
				}
			}
		}()
	}
	wg.Wait()
	close(fired)
	n := 0
	for err := range fired {
		n++
		if !errors.Is(err, want) {
			t.Fatalf("unexpected error %v", err)
		}
	}
	if n != 1 {
		t.Fatalf("rule fired %d times, want 1", n)
	}
	if h.Hits("pool") != 100 {
		t.Fatalf("hits = %d, want 100", h.Hits("pool"))
	}
}
