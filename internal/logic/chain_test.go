package logic

import (
	"math"
	"testing"

	"finser/internal/finfet"
)

func tech() finfet.Technology { return finfet.Default14nmSOI() }

func TestNewChainValidation(t *testing.T) {
	if _, err := NewChain(tech(), 0, 5); err == nil {
		t.Error("zero vdd accepted")
	}
	if _, err := NewChain(tech(), 0.8, 1); err == nil {
		t.Error("1-stage chain accepted")
	}
}

func TestChainRestingState(t *testing.T) {
	ch, err := NewChain(tech(), 0.8, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Alternating rail levels down the chain.
	for i, n := range ch.nodes {
		v := ch.init[n]
		if i%2 == 0 && v < 0.75 {
			t.Errorf("stage %d rests at %v, want high", i, v)
		}
		if i%2 == 1 && v > 0.05 {
			t.Errorf("stage %d rests at %v, want low", i, v)
		}
	}
}

func TestZeroChargeNoTransient(t *testing.T) {
	ch, err := NewChain(tech(), 0.8, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ch.Inject(0)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Swing {
		if s > 0.01 {
			t.Errorf("stage %d swings %v without a strike", i, s)
		}
	}
	if res.Propagated {
		t.Error("no-strike transient propagated")
	}
}

func TestElectricalMaskingAttenuates(t *testing.T) {
	// A sub-threshold SET must shrink stage by stage — the electrical
	// masking mechanism of the paper's ref [15].
	ch, err := NewChain(tech(), 0.8, 6)
	if err != nil {
		t.Fatal(err)
	}
	thr, err := ch.PropagationThreshold(1e-18, 2e-14)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ch.Inject(thr * 0.55)
	if err != nil {
		t.Fatal(err)
	}
	// First stage sees a real disturbance; the far end sees almost nothing.
	if res.Swing[0] < 0.1 {
		t.Fatalf("first-stage swing %v too small for the test", res.Swing[0])
	}
	if res.Swing[5] > res.Swing[0]/3 {
		t.Errorf("deep-stage swing %v not attenuated from %v", res.Swing[5], res.Swing[0])
	}
	if res.Propagated {
		t.Error("sub-threshold SET propagated")
	}
}

func TestLargeSETPropagatesRailToRail(t *testing.T) {
	ch, err := NewChain(tech(), 0.8, 6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ch.Inject(2e-15) // 2 fC, far above threshold
	if err != nil {
		t.Fatal(err)
	}
	if !res.Propagated {
		t.Fatal("large SET did not propagate")
	}
	// Every stage swings substantially.
	for i, s := range res.Swing {
		if s < 0.3 {
			t.Errorf("stage %d swing %v too small for a propagating SET", i, s)
		}
	}
}

func TestPropagationThresholdBisection(t *testing.T) {
	ch, err := NewChain(tech(), 0.8, 5)
	if err != nil {
		t.Fatal(err)
	}
	thr, err := ch.PropagationThreshold(1e-18, 2e-14)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(thr, 1) || thr <= 0 {
		t.Fatalf("threshold = %v", thr)
	}
	below, err := ch.Inject(thr * 0.9)
	if err != nil {
		t.Fatal(err)
	}
	above, err := ch.Inject(thr * 1.1)
	if err != nil {
		t.Fatal(err)
	}
	if below.Propagated {
		t.Error("below-threshold SET propagated")
	}
	if !above.Propagated {
		t.Error("above-threshold SET blocked")
	}
	// Degenerate bracket handling.
	if _, err := ch.PropagationThreshold(0, 1); err == nil {
		t.Error("zero lo accepted")
	}
	if v, err := ch.PropagationThreshold(1e-19, 1e-18); err != nil || !math.IsInf(v, 1) {
		t.Errorf("unpropagatable bracket: %v, %v", v, err)
	}
}

func TestThresholdGrowsWithVddAndDepth(t *testing.T) {
	// Higher supply hardens the path; SET thresholds are nearly
	// depth-independent once past a couple of stages (regeneration), but a
	// longer chain never makes propagation easier.
	thrAt := func(vdd float64, stages int) float64 {
		ch, err := NewChain(tech(), vdd, stages)
		if err != nil {
			t.Fatal(err)
		}
		thr, err := ch.PropagationThreshold(1e-18, 2e-14)
		if err != nil {
			t.Fatal(err)
		}
		return thr
	}
	if thrAt(1.1, 5) <= thrAt(0.7, 5) {
		t.Error("SET threshold not increasing with Vdd")
	}
	if thrAt(0.8, 8) < thrAt(0.8, 3)*0.8 {
		t.Error("longer chain propagates more easily than a short one")
	}
}
