// Package logic extends the single-event analysis from storage cells to
// combinational logic — the other circuit class the paper's related work
// ([14], [15]) characterizes. A particle strike on a logic gate produces a
// single-event transient (SET) that only matters if it propagates to a
// latch; on the way it is attenuated by each gate's electrical inertia
// ("electrical masking"). The package builds FinFET inverter chains on the
// circuit solver, injects drift-current pulses at the first stage, and
// measures the surviving transient at depth — yielding the propagation
// threshold charge and the per-stage attenuation the masking models need.
package logic

import (
	"errors"
	"fmt"
	"math"

	"finser/internal/circuit"
	"finser/internal/finfet"
)

// Chain is an N-stage FinFET inverter chain ready for SET injection.
type Chain struct {
	Tech   finfet.Technology
	Vdd    float64
	Stages int

	ckt    *circuit.Circuit
	nodes  []circuit.Node // stage outputs, nodes[0] is the struck gate's output
	strike *strikeSource
	init   circuit.Solution
}

type strikeSource struct{ w circuit.Waveform }

func (s *strikeSource) Value(t float64) float64 {
	if s.w == nil {
		return 0
	}
	return s.w.Value(t)
}

func (s *strikeSource) Breakpoints() []float64 {
	if s.w == nil {
		return nil
	}
	return s.w.Breakpoints()
}

// NewChain builds an inverter chain with the given depth (≥ 2). The input
// is tied low, so every odd stage output rests high and every even output
// low; the strike pulls the first stage's output (resting high) down — the
// worst-case SET at a logic node, mirroring the paper's OFF-transistor
// collection argument.
func NewChain(tech finfet.Technology, vdd float64, stages int) (*Chain, error) {
	if vdd <= 0 {
		return nil, fmt.Errorf("logic: non-positive vdd %g", vdd)
	}
	if stages < 2 {
		return nil, errors.New("logic: chain needs at least 2 stages")
	}
	c := circuit.New()
	ch := &Chain{Tech: tech, Vdd: vdd, Stages: stages, ckt: c}

	vddN := c.Node("vdd")
	in := c.Node("in")
	c.AddVSource("vdd", vddN, circuit.Ground, circuit.DC(vdd))
	c.AddVSource("vin", in, circuit.Ground, circuit.DC(0))

	prev := in
	for i := 0; i < stages; i++ {
		out := c.Node(fmt.Sprintf("n%d", i))
		ch.nodes = append(ch.nodes, out)
		pu := finfet.ParamsFor(tech, finfet.PChannel, 1)
		pd := finfet.ParamsFor(tech, finfet.NChannel, 1)
		c.AddDevice(finfet.NewTransistor(fmt.Sprintf("pu%d", i), pu, out, prev, vddN))
		c.AddDevice(finfet.NewTransistor(fmt.Sprintf("pd%d", i), pd, out, prev, circuit.Ground))
		c.AddCapacitor(fmt.Sprintf("c%d", i), out, circuit.Ground, tech.NodeCapF)
		prev = out
	}

	// Strike: the first stage's output rests HIGH (input low); the hit OFF
	// transistor is its pull-down, so the radiation current discharges the
	// node toward ground.
	ch.strike = &strikeSource{}
	c.AddISource("iset", ch.nodes[0], circuit.Ground, ch.strike)

	nodeset := map[circuit.Node]float64{vddN: vdd}
	for i, n := range ch.nodes {
		if i%2 == 0 {
			nodeset[n] = vdd
		} else {
			nodeset[n] = 0
		}
	}
	sol, err := c.OperatingPoint(nodeset)
	if err != nil {
		return nil, fmt.Errorf("logic: chain DC failed: %w", err)
	}
	if sol[ch.nodes[0]] < 0.9*vdd {
		return nil, fmt.Errorf("logic: first stage not resting high: %g", sol[ch.nodes[0]])
	}
	ch.init = sol
	return ch, nil
}

// SETResult reports one injected transient.
type SETResult struct {
	// Swing[i] is the peak departure of stage i's output from its resting
	// level, in volts.
	Swing []float64
	// Propagated reports whether the final stage swung past Vdd/2 — the
	// transient survived to the chain output.
	Propagated bool
}

// Inject drives a rectangular drift-current pulse carrying the given charge
// into the first stage and measures the transient at every stage.
func (ch *Chain) Inject(charge float64) (SETResult, error) {
	if charge < 0 {
		return SETResult{}, errors.New("logic: negative charge")
	}
	tau := ch.Tech.TransitTime(ch.Vdd)
	if charge > 0 {
		ch.strike.w = circuit.RectPulse{T0: 1e-12, Width: tau, Amp: charge / tau}
	}
	defer func() { ch.strike.w = nil }()

	res, err := ch.ckt.Transient(ch.init, circuit.TransientSpec{
		TStop:    100e-12,
		InitStep: tau / 8,
		MaxStep:  2e-12,
	})
	if err != nil {
		return SETResult{}, fmt.Errorf("logic: SET transient: %w", err)
	}
	out := SETResult{Swing: make([]float64, ch.Stages)}
	for i, n := range ch.nodes {
		rest := ch.init[n]
		peak := 0.0
		for _, sol := range res.Values {
			if d := math.Abs(sol[n] - rest); d > peak {
				peak = d
			}
		}
		out.Swing[i] = peak
	}
	out.Propagated = out.Swing[ch.Stages-1] > ch.Vdd/2
	return out, nil
}

// PropagationThreshold bisects the charge above which the transient
// reaches the chain output (the logic-path critical charge). Returns +Inf
// when even hi fails to propagate.
func (ch *Chain) PropagationThreshold(lo, hi float64) (float64, error) {
	if lo <= 0 || hi <= lo {
		return 0, fmt.Errorf("logic: need 0 < lo < hi")
	}
	at := func(q float64) (bool, error) {
		r, err := ch.Inject(q)
		return r.Propagated, err
	}
	okHi, err := at(hi)
	if err != nil {
		return 0, err
	}
	if !okHi {
		return math.Inf(1), nil
	}
	okLo, err := at(lo)
	if err != nil {
		return 0, err
	}
	if okLo {
		return lo, nil
	}
	for math.Log(hi/lo) > 0.02 {
		mid := math.Sqrt(lo * hi)
		ok, err := at(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	return math.Sqrt(lo * hi), nil
}
