package server

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"finser"
	"finser/internal/events"
	"finser/internal/obs"
)

// sseEvent is one decoded SSE frame.
type sseEvent struct {
	id    int64
	event string
	data  events.Event
}

// readSSE decodes SSE frames from r until the stream ends or max frames
// arrive. Heartbeat comments are skipped.
func readSSE(t *testing.T, r *http.Response, max int) []sseEvent {
	t.Helper()
	sc := bufio.NewScanner(r.Body)
	var out []sseEvent
	var cur sseEvent
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.event != "" {
				out = append(out, cur)
				if len(out) >= max {
					return out
				}
			}
			cur = sseEvent{}
		case strings.HasPrefix(line, "id: "):
			cur.id, _ = strconv.ParseInt(line[len("id: "):], 10, 64)
		case strings.HasPrefix(line, "event: "):
			cur.event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(line[len("data: "):]), &cur.data); err != nil {
				t.Fatalf("bad event payload %q: %v", line, err)
			}
		}
	}
	return out
}

// getEvents opens the SSE feed with an optional Last-Event-ID.
func getEvents(t *testing.T, ts *httptest.Server, id, lastEventID string) *http.Response {
	t.Helper()
	req, err := http.NewRequest("GET", ts.URL+"/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	return resp
}

// binRunner returns a Runner publishing n bin events through the
// instrumented FlowConfig — the same callback path the real pipeline uses.
func binRunner(n int) func(context.Context, finser.FlowConfig) (*JobResult, error) {
	return func(ctx context.Context, cfg finser.FlowConfig) (*JobResult, error) {
		for i := 1; i <= n; i++ {
			cfg.BinDone(finser.BinEvent{
				Stage: "fit/alpha", Bin: i, Bins: n,
				Point:    finser.POFPoint{EnergyMeV: float64(i), Tot: 0.1 * float64(i)},
				FITSoFar: float64(i),
			})
		}
		return &JobResult{Vdd: cfg.Vdd}, nil
	}
}

// syncBuffer is a goroutine-safe log sink.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestSSELifecycle: the full event sequence of a successful job — queued,
// running, every bin in order, done — arrives over SSE with dense sequence
// IDs and the job ID stamped on every event, and the stream then ends. The
// job's log lines carry the job ID and fingerprint correlation keys.
func TestSSELifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	var logBuf syncBuffer
	s := New(Config{
		Metrics: reg,
		Logger:  obs.NewJSONLogger(&logBuf, 0),
		Runner:  binRunner(3),
	})
	s.Start()
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postJob(t, ts, `{"vdd": 0.7}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d: %s", resp.StatusCode, body)
	}
	var st JobStatus
	json.Unmarshal(body, &st)
	if st.Fingerprint == "" {
		t.Fatal("submitted job has no fingerprint")
	}
	waitState(t, ts, st.ID, StateDone)

	// A late subscriber still replays the whole retained history.
	er := getEvents(t, ts, st.ID, "")
	defer er.Body.Close()
	if ct := er.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	got := readSSE(t, er, 100) // stream EOF bounds it
	want := []struct {
		typ   string
		state string
		bin   int
	}{
		{"state", "queued", 0}, {"state", "running", 0},
		{"bin", "", 1}, {"bin", "", 2}, {"bin", "", 3},
		{"state", "done", 0},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d: %+v", len(got), len(want), got)
	}
	for i, w := range want {
		e := got[i]
		if e.event != w.typ || e.data.State != w.state || e.data.Bin != w.bin {
			t.Fatalf("event %d = %s %+v, want %+v", i, e.event, e.data, w)
		}
		if e.id != int64(i+1) || e.data.Seq != int64(i+1) {
			t.Fatalf("event %d has id %d / seq %d, want %d", i, e.id, e.data.Seq, i+1)
		}
		if e.data.Job != st.ID {
			t.Fatalf("event %d job = %q, want %q", i, e.data.Job, st.ID)
		}
	}
	if got[3].data.FITSoFar != 2 {
		t.Fatalf("bin 2 FITSoFar = %g, want 2", got[3].data.FITSoFar)
	}

	logs := logBuf.String()
	if !strings.Contains(logs, `"job":"`+st.ID+`"`) {
		t.Fatalf("log lines missing job ID %s:\n%s", st.ID, logs)
	}
	if !strings.Contains(logs, `"fingerprint":"`+st.Fingerprint+`"`) {
		t.Fatalf("log lines missing fingerprint %s:\n%s", st.Fingerprint, logs)
	}
}

// TestSSELastEventIDResume: a reconnect presenting Last-Event-ID receives
// exactly the events after it — never a duplicate of what it already saw.
func TestSSELastEventIDResume(t *testing.T) {
	s := New(Config{Metrics: obs.NewRegistry(), Runner: binRunner(5)})
	s.Start()
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, body := postJob(t, ts, `{"vdd": 0.7}`)
	var st JobStatus
	json.Unmarshal(body, &st)
	waitState(t, ts, st.ID, StateDone)

	// Full sequence: 1 queued, 2 running, 3..7 bins, 8 done. Resume from 4.
	er := getEvents(t, ts, st.ID, "4")
	defer er.Body.Close()
	got := readSSE(t, er, 100)
	if len(got) != 4 {
		t.Fatalf("resumed stream has %d events, want 4: %+v", len(got), got)
	}
	for i, e := range got {
		if e.id != int64(5+i) {
			t.Fatalf("resumed event %d has seq %d, want %d", i, e.id, 5+i)
		}
	}
	if last := got[3]; last.event != "state" || last.data.State != "done" {
		t.Fatalf("last resumed event = %s %+v, want state done", last.event, last.data)
	}
}

// TestSSEReplayGap: resuming from before the ring's retention window yields
// a gap event reporting the lost count, then the retained tail.
func TestSSEReplayGap(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{Metrics: reg, EventBuffer: 4, Runner: binRunner(20)})
	s.Start()
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, body := postJob(t, ts, `{"vdd": 0.7}`)
	var st JobStatus
	json.Unmarshal(body, &st)
	waitState(t, ts, st.ID, StateDone)

	// 23 events total, ring of 4 retains 20..23; from=0 lost 19.
	er := getEvents(t, ts, st.ID, "")
	defer er.Body.Close()
	got := readSSE(t, er, 100)
	if len(got) != 5 {
		t.Fatalf("got %d events, want gap + 4 retained: %+v", len(got), got)
	}
	if got[0].event != "gap" || got[0].data.Missed != 19 {
		t.Fatalf("first event = %s %+v, want gap with 19 missed", got[0].event, got[0].data)
	}
	if got[1].id != 20 {
		t.Fatalf("first retained seq = %d, want 20", got[1].id)
	}
	if v := reg.Counter("serd/events/replay_missed").Value(); v != 19 {
		t.Fatalf("replay_missed counter = %d, want 19", v)
	}
}

// TestSSECloseOnCancel: a live stream terminates promptly when the job is
// canceled, ending on the canceled state transition.
func TestSSECloseOnCancel(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	s := New(Config{Metrics: obs.NewRegistry(), Runner: blockingRunner(started, release)})
	s.Start()
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, body := postJob(t, ts, `{"vdd": 0.7}`)
	var st JobStatus
	json.Unmarshal(body, &st)
	<-started

	er := getEvents(t, ts, st.ID, "")
	defer er.Body.Close()

	frames := make(chan []sseEvent, 1)
	go func() { frames <- readSSE(t, er, 100) }()

	resp, err := http.Post(ts.URL+"/jobs/"+st.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	select {
	case got := <-frames:
		if len(got) == 0 {
			t.Fatal("stream ended with no events")
		}
		last := got[len(got)-1]
		if last.event != "state" || last.data.State != "canceled" {
			t.Fatalf("last event = %s %+v, want state canceled", last.event, last.data)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stream did not terminate after cancel")
	}
}

// TestStalledSSESubscriberDoesNotBlockJob: a subscriber that never consumes
// is killed by the bus — the job still completes, and the drop is counted
// on the registry.
func TestStalledSSESubscriberDoesNotBlockJob(t *testing.T) {
	reg := obs.NewRegistry()
	started := make(chan string, 1)
	release := make(chan struct{})
	s := New(Config{
		Metrics:     reg,
		EventBuffer: 4, // subscriber buffer = 4 + 64
		Runner: func(ctx context.Context, cfg finser.FlowConfig) (*JobResult, error) {
			started <- "run"
			<-release
			for i := 1; i <= 100; i++ { // overflow the stalled subscriber
				cfg.BinDone(finser.BinEvent{Stage: "fit/alpha", Bin: i, Bins: 100})
			}
			return &JobResult{Vdd: cfg.Vdd}, nil
		},
	})
	s.Start()
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, body := postJob(t, ts, `{"vdd": 0.7}`)
	var st JobStatus
	json.Unmarshal(body, &st)
	<-started

	// Subscribe directly and never read — the pathological client.
	s.mu.Lock()
	j := s.jobs[st.ID]
	s.mu.Unlock()
	sub := j.events.Subscribe(0)
	close(release)

	// The job must finish despite the dead subscriber.
	waitState(t, ts, st.ID, StateDone)
	if v := reg.Counter("serd/events/dropped_subscribers").Value(); v != 1 {
		t.Fatalf("dropped_subscribers = %d, want 1", v)
	}
	// And the subscriber's channel must have been closed mid-stream.
	closed := false
	for !closed {
		select {
		case _, open := <-sub.C():
			if !open {
				closed = true
			}
		case <-time.After(5 * time.Second):
			t.Fatal("stalled subscriber channel never closed")
		}
	}
}

// TestHealthzBuildInfo: /healthz reports liveness plus uptime and the
// binary's build identity.
func TestHealthzBuildInfo(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h healthBody
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("status = %q", h.Status)
	}
	if h.UptimeSeconds < 0 {
		t.Fatalf("uptime = %g", h.UptimeSeconds)
	}
	if h.Build.GoVersion == "" {
		t.Fatal("healthz build info missing go version")
	}
}

// TestMetricsPrometheusFormat: /metrics?format=prometheus renders the live
// registry in valid exposition format (LintExposition-clean) including the
// serving-layer latency histograms, while plain /metrics stays JSON.
func TestMetricsPrometheusFormat(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{Metrics: reg, Runner: binRunner(2)})
	s.Start()
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, body := postJob(t, ts, `{"vdd": 0.7}`)
	var st JobStatus
	json.Unmarshal(body, &st)
	waitState(t, ts, st.ID, StateDone)

	resp, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)
	if err := obs.LintExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("exposition fails lint: %v\n%s", err, out)
	}
	for _, want := range []string{
		"# TYPE finser_serd_jobs_completed counter",
		"# TYPE finser_serd_latency_admission_to_done_seconds histogram",
		"# TYPE finser_serd_latency_queue_wait_seconds histogram",
		"# TYPE finser_serd_latency_run_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	jr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(jr.Body).Decode(&snap); err != nil {
		t.Fatalf("plain /metrics is not JSON: %v", err)
	}
	h, ok := snap.Histograms["serd/latency/admission_to_done_seconds"]
	if !ok {
		t.Fatal("JSON snapshot missing admission_to_done histogram")
	}
	if h.Count < 1 || h.P50 <= 0 || h.P99 < h.P50 {
		t.Fatalf("latency percentiles malformed: %+v", h)
	}
}
