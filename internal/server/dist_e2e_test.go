package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"finser"
	"finser/internal/breaker"
	"finser/internal/dist"
	"finser/internal/retry"
)

// distFlow mirrors distJobBody below — the single-node reference config.
func distFlow() finser.FlowConfig {
	return finser.FlowConfig{
		Vdd:         0.7,
		Samples:     6,
		ItersPerBin: 200,
		AlphaBins:   3,
		ProtonBins:  4,
		Workers:     1,
		Seed:        42,
	}
}

const distJobBody = `{"vdd":0.7,"samples":6,"iters_per_bin":200,"alpha_bins":3,"proton_bins":4,"workers":1,"seed":42}`

// newDistWorker boots one real worker serd; its /shards endpoint is the
// only route the coordinator touches.
func newDistWorker(t *testing.T) *httptest.Server {
	t.Helper()
	srv := New(Config{Workers: 2})
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Drain(ctx)
	})
	return ts
}

// newCoordinatorServer boots a coordinator-mode serd over the given worker
// pool, mirroring cmd/serd's -coordinator wiring.
func newCoordinatorServer(t *testing.T, workers []string, bcfg breaker.Config) *httptest.Server {
	t.Helper()
	if bcfg.FailureThreshold == 0 {
		bcfg = breaker.Config{FailureThreshold: 3, Cooldown: 200 * time.Millisecond}
	}
	co, err := dist.New(dist.Config{
		Workers:       workers,
		ShardBins:     2,
		ShardTimeout:  30 * time.Second,
		ShardAttempts: 4,
		StealAfter:    30 * time.Second,
		Retry:         retry.Policy{BaseDelay: 5 * time.Millisecond, MaxDelay: 20 * time.Millisecond},
		Breaker:       bcfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Workers: 1, Distributor: co})
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Drain(ctx)
	})
	return ts
}

// TestDistributedJobEndToEnd drives the full coordinator path through the
// public HTTP API: a job submitted to a coordinator serd fans out to two
// worker serds, streams shard lifecycle events over SSE, and lands on a
// result bit-identical to the single-node pipeline.
func TestDistributedJobEndToEnd(t *testing.T) {
	want, err := finser.RunFlowCtx(context.Background(), distFlow())
	if err != nil {
		t.Fatal(err)
	}

	w1, w2 := newDistWorker(t), newDistWorker(t)
	ts := newCoordinatorServer(t, []string{w1.URL, w2.URL}, breaker.Config{})

	resp, body := postJob(t, ts, distJobBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, body %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("decode submit response: %v", err)
	}
	done := waitState(t, ts, st.ID, StateDone)

	if done.Result == nil {
		t.Fatal("done job has no result")
	}
	if !reflect.DeepEqual(done.Result.Alpha, want.Alpha) {
		t.Errorf("distributed alpha FIT diverges from single-node:\n got  %+v\n want %+v", done.Result.Alpha, want.Alpha)
	}
	if !reflect.DeepEqual(done.Result.Proton, want.Proton) {
		t.Errorf("distributed proton FIT diverges from single-node:\n got  %+v\n want %+v", done.Result.Proton, want.Proton)
	}

	// The finished stream replays from the ring: shard lifecycle events
	// (4 shards dispatched + completed) surface on the job's SSE feed.
	er := getEvents(t, ts, st.ID, "")
	defer er.Body.Close()
	frames := readSSE(t, er, 64)
	var dispatched, completed int
	for _, f := range frames {
		if f.data.Type != "shard" {
			continue
		}
		if f.data.Shard == "" || f.data.Worker == "" {
			t.Errorf("shard event without shard/worker identity: %+v", f.data)
		}
		switch f.data.State {
		case dist.EventDispatched:
			dispatched++
		case dist.EventCompleted:
			completed++
		}
	}
	if dispatched != 4 || completed != 4 {
		t.Errorf("shard events dispatched=%d completed=%d, want 4/4", dispatched, completed)
	}
}

// TestDistributedSubmitRequiresPinnedWorkers: the Monte-Carlo substream
// split depends on the effective worker count, so a coordinator rejects
// jobs that leave it unpinned instead of silently diverging.
func TestDistributedSubmitRequiresPinnedWorkers(t *testing.T) {
	w := newDistWorker(t)
	ts := newCoordinatorServer(t, []string{w.URL}, breaker.Config{})

	resp, body := postJob(t, ts, `{"vdd":0.7,"samples":6,"iters_per_bin":200,"seed":42}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unpinned submit status = %d, body %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "workers") {
		t.Errorf("rejection does not name the workers field: %s", body)
	}
}

// TestCoordinatorReadyzReflectsPool: /readyz on a coordinator answers 503
// once every worker breaker is open, and 200 while the pool is healthy.
func TestCoordinatorReadyzReflectsPool(t *testing.T) {
	deadWorker := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadWorker.Close() // refuses all connections from here on
	ts := newCoordinatorServer(t, []string{deadWorker.URL},
		breaker.Config{FailureThreshold: 1, Cooldown: time.Hour})

	get := func() int {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get(); code != http.StatusOK {
		t.Fatalf("healthy pool /readyz = %d, want 200", code)
	}

	// Run a job into the dead pool: every shard attempt fails, the lone
	// breaker opens, and the job degrades. /readyz must flip to 503.
	resp, body := postJob(t, ts, distJobBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, body %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("decode submit response: %v", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if getStatus(t, ts, st.ID).State.Terminal() {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if final := getStatus(t, ts, st.ID); final.State != StateFailed {
		t.Fatalf("job against dead pool ended %s, want %s", final.State, StateFailed)
	}
	if code := get(); code != http.StatusServiceUnavailable {
		t.Fatalf("all-breakers-open /readyz = %d, want 503", code)
	}
}
