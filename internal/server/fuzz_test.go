package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"finser"
)

// FuzzJobRequest drives the submit trust boundary the way handleSubmit does:
// decode the body, map it to a FlowConfig, validate. Whatever bytes arrive,
// the pipeline must never panic, and every rejection must be a decode error
// or one of the typed request/config errors the handler maps to HTTP 400.
func FuzzJobRequest(f *testing.F) {
	f.Add([]byte(`{"vdd":0.7}`))
	f.Add([]byte(`{"vdd":0.8,"rows":4,"cols":4,"pattern":"checkerboard","seed":42}`))
	f.Add([]byte(`{"vdd":0.8,"pattern":"plaid"}`))
	f.Add([]byte(`{"vdd":-1,"samples":-5,"timeout_seconds":-0.5}`))
	f.Add([]byte(`{"vdd":1e308,"alpha_rate":1e308,"workers":2147483647}`))
	f.Add([]byte(`{"vdd":0.7,"rows"`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, body []byte) {
		var req JobRequest
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return // decode errors are reported verbatim as 400s
		}
		cfg, err := req.flowConfig()
		if err != nil {
			var re *RequestError
			if !errors.As(err, &re) {
				t.Fatalf("flowConfig returned untyped error %T: %v", err, err)
			}
			return
		}
		if err := cfg.Validate(); err != nil {
			var ce *finser.ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("Validate returned untyped error %T: %v", err, err)
			}
		}
	})
}
