package server

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
	"sync/atomic"
	"time"

	"finser"
	"finser/internal/events"
	"finser/internal/qos"
)

// JobState is the lifecycle state of a submitted SER job.
type JobState string

const (
	// StateQueued means the job is admitted and waiting for a worker.
	StateQueued JobState = "queued"
	// StateRunning means a worker is driving the flow.
	StateRunning JobState = "running"
	// StateDone means the flow completed; Result is populated.
	StateDone JobState = "done"
	// StateFailed means the flow failed after exhausting its retry
	// budget (or on a non-retryable error).
	StateFailed JobState = "failed"
	// StateCanceled means the job was canceled by the API or a drain.
	StateCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// JobRequest is the FlowConfig-shaped submission body. Zero fields select
// the same defaults as finser.FlowConfig; only Vdd is required.
type JobRequest struct {
	Vdd              float64 `json:"vdd"`
	Rows             int     `json:"rows,omitempty"`
	Cols             int     `json:"cols,omitempty"`
	ProcessVariation bool    `json:"process_variation,omitempty"`
	Samples          int     `json:"samples,omitempty"`
	ItersPerBin      int     `json:"iters_per_bin,omitempty"`
	AlphaRate        float64 `json:"alpha_rate,omitempty"`
	ProtonScale      float64 `json:"proton_scale,omitempty"`
	AlphaBins        int     `json:"alpha_bins,omitempty"`
	ProtonBins       int     `json:"proton_bins,omitempty"`
	// Pattern is the stored data pattern: zeros (default), ones, or
	// checkerboard.
	Pattern string `json:"pattern,omitempty"`
	Seed    uint64 `json:"seed,omitempty"`
	// Workers bounds the flow's internal parallelism (0 = GOMAXPROCS).
	// Checkpointed jobs resume bit-identically only under the same
	// effective value, so heavy users pin it explicitly.
	Workers int `json:"workers,omitempty"`
	// FitRelErr enables adaptive FIT sampling: each energy bin stops once
	// its POF confidence interval is inside this relative tolerance (0
	// keeps the flat per-bin budget). Must be in (0, 0.5] when set;
	// result-determining, so it is part of the job fingerprint.
	FitRelErr float64 `json:"fit_rel_err,omitempty"`
	// TimeoutSeconds overrides the server's per-job deadline (0 keeps
	// the server default).
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
	// Class is the QoS priority class: "interactive" (latency-sensitive,
	// weighted ahead in the fair queue, may preempt batch work) or "batch"
	// (the default — throughput work that tolerates queueing and
	// checkpoint-boundary preemption).
	Class string `json:"class,omitempty"`
}

// class normalizes the request's QoS class, defaulting to batch.
func (r JobRequest) class() string {
	if r.Class == "" {
		return qos.ClassBatch
	}
	return strings.ToLower(r.Class)
}

// RequestError reports an invalid job-request field — mapped to HTTP 400
// alongside finser.ConfigError.
type RequestError struct {
	Field  string
	Reason string
}

func (e *RequestError) Error() string {
	return fmt.Sprintf("server: request field %s %s", e.Field, e.Reason)
}

// flowConfig maps the wire request onto a finser.FlowConfig. Field-level
// validation beyond the mapping itself is finser's job (Validate).
func (r JobRequest) flowConfig() (finser.FlowConfig, error) {
	var pat finser.DataPattern
	switch strings.ToLower(r.Pattern) {
	case "", "zeros":
		pat = finser.PatternZeros
	case "ones":
		pat = finser.PatternOnes
	case "checkerboard":
		pat = finser.PatternCheckerboard
	default:
		return finser.FlowConfig{}, &RequestError{Field: "pattern", Reason: fmt.Sprintf("unknown %q", r.Pattern)}
	}
	if r.TimeoutSeconds < 0 {
		return finser.FlowConfig{}, &RequestError{Field: "timeout_seconds", Reason: fmt.Sprintf("must not be negative, got %g", r.TimeoutSeconds)}
	}
	switch r.class() {
	case qos.ClassInteractive, qos.ClassBatch:
	default:
		return finser.FlowConfig{}, &RequestError{Field: "class", Reason: fmt.Sprintf("unknown %q (interactive or batch)", r.Class)}
	}
	return finser.FlowConfig{
		Vdd:              r.Vdd,
		Rows:             r.Rows,
		Cols:             r.Cols,
		ProcessVariation: r.ProcessVariation,
		Samples:          r.Samples,
		ItersPerBin:      r.ItersPerBin,
		AlphaRate:        r.AlphaRate,
		ProtonScale:      r.ProtonScale,
		AlphaBins:        r.AlphaBins,
		ProtonBins:       r.ProtonBins,
		Pattern:          pat,
		Seed:             r.Seed,
		Workers:          r.Workers,
		FITRelErr:        r.FitRelErr,
	}, nil
}

// JobResult is the completed flow's FIT rates — the FlowResult minus the
// cell characterization (megabytes of POF samples no API consumer wants in
// a status poll).
type JobResult struct {
	Vdd    float64          `json:"vdd"`
	Alpha  finser.FITResult `json:"alpha"`
	Proton finser.FITResult `json:"proton"`
}

// JobStatus is the queryable view of a job.
type JobStatus struct {
	ID          string     `json:"id"`
	State       JobState   `json:"state"`
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	// Retries counts stage attempts beyond the first across the whole
	// pipeline.
	Retries int64 `json:"retries,omitempty"`
	// ResumedStages is how many checkpointed FIT stages the job restored
	// at start (a resubmitted drained job reports > 0).
	ResumedStages int `json:"resumed_stages,omitempty"`
	// Fingerprint is the result-determining configuration digest
	// (finser.FlowFingerprint) — the key correlating this job with its
	// checkpoint file, its log lines, and its event stream.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Recovered marks a job rebuilt from the durable journal after a
	// restart rather than admitted over the API in this process.
	Recovered bool `json:"recovered,omitempty"`
	// Tenant and Class are the QoS identity the job was admitted under.
	Tenant string `json:"tenant,omitempty"`
	Class  string `json:"class,omitempty"`
	// Preemptions counts how many times the job yielded its worker to
	// interactive arrivals and requeued (resuming from its checkpoint).
	Preemptions int        `json:"preemptions,omitempty"`
	Error       string     `json:"error,omitempty"`
	Result      *JobResult `json:"result,omitempty"`
	Request     JobRequest `json:"request"`
}

// job is the server-internal record. The owning Server's mutex guards all
// fields except the atomics.
type job struct {
	id        string
	req       JobRequest
	cfg       finser.FlowConfig
	state     JobState
	submitted time.Time
	started   time.Time
	finished  time.Time
	err       string
	result    *JobResult
	cancel    func()
	ctx       context.Context // the job's base context; cancel() and drains cut it
	retries   atomic.Int64
	resumed   int

	// tenant and class are the QoS identity (tenant from X-Tenant, class
	// from the request), fixed at admission; cost is the WFQ cost estimate.
	tenant string
	class  string
	cost   float64
	// preemptCancel cancels the current run's context only (not j.ctx), so
	// a preemption stops the flow without killing the job; non-nil exactly
	// while a worker is running the job. preemptPending marks a preemption
	// initiated but not yet requeued; preempts counts completed ones.
	preemptCancel  context.CancelCauseFunc
	preemptPending bool
	preempts       int
	// fingerprint is the FlowFingerprint digest, computed at admission.
	fingerprint string
	// idemKey is the idempotency key this job was admitted under ("" when
	// dedupe is off); it indexes the server's idem table.
	idemKey string
	// recovered marks a job rebuilt from the journal after a restart.
	recovered bool
	// events is the job's live telemetry stream, created at admission and
	// closed at finalization so SSE clients see a clean end-of-stream.
	events *events.Stream
	// log is the job-scoped structured logger (nil when logging is off).
	log *slog.Logger
}

// logInfo emits one structured line on the job's logger; no-op without one.
func (j *job) logInfo(msg string, args ...any) {
	if j.log != nil {
		j.log.Info(msg, args...)
	}
}

// status renders the job under the server lock.
func (j *job) status() JobStatus {
	st := JobStatus{
		ID:            j.id,
		State:         j.state,
		SubmittedAt:   j.submitted,
		Retries:       j.retries.Load(),
		ResumedStages: j.resumed,
		Fingerprint:   j.fingerprint,
		Recovered:     j.recovered,
		Tenant:        j.tenant,
		Class:         j.class,
		Preemptions:   j.preempts,
		Error:         j.err,
		Result:        j.result,
		Request:       j.req,
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	return st
}
