package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"finser"
)

// TestOversizedSubmitBodySheds413 drives the submit trust boundary: a body
// past the 1 MiB cap must be refused with 413 and a JSON error body, not
// streamed into the decoder.
func TestOversizedSubmitBodySheds413(t *testing.T) {
	s := New(Config{Workers: 1})
	s.Start()
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A syntactically plausible but oversized body: a giant pattern field.
	body := `{"vdd":0.8,"pattern":"` + strings.Repeat("x", maxSubmitBytes+1024) + `"}`
	resp, raw := postJob(t, ts, body)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413; body %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("Content-Type = %q, want JSON error body", ct)
	}
	if !strings.Contains(string(raw), "exceeds") {
		t.Errorf("error body %q does not explain the limit", raw)
	}

	// The server must still be healthy for a normal-size follow-up.
	resp, raw = postJob(t, ts, `{"vdd":0.0}`) // invalid, but parsed: proves decode works
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("follow-up status = %d, want 400; body %s", resp.StatusCode, raw)
	}
}

// TestGuardModeThreadedIntoJobs checks the serving layer forwards its guard
// configuration into each job's flow config.
func TestGuardModeThreadedIntoJobs(t *testing.T) {
	got := make(chan finser.GuardMode, 1)
	s := New(Config{
		Workers: 1,
		Guard:   finser.GuardStrict,
		Runner: func(ctx context.Context, cfg finser.FlowConfig) (*JobResult, error) {
			got <- cfg.Guard
			return &JobResult{Vdd: cfg.Vdd}, nil
		},
	})
	s.Start()
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if resp, raw := postJob(t, ts, `{"vdd":0.8}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d: %s", resp.StatusCode, raw)
	}
	if mode := <-got; mode != finser.GuardStrict {
		t.Fatalf("job ran with guard mode %v, want strict", mode)
	}
}
