// Package server is the SER-as-a-service layer: a bounded admission queue
// with load shedding, a fixed worker pool driving the staged finser flow,
// and the resilience policy around it — per-stage retries with jittered
// backoff, per-species circuit breakers, per-job deadlines, cancelable
// queryable job states, and a graceful drain that preserves checkpoints so
// a resubmitted job resumes bit-identically.
//
// The queue is the backpressure boundary: when it is full (or the server
// is draining) a submission is rejected immediately with ErrQueueFull /
// ErrDraining — HTTP 503 plus Retry-After — instead of piling goroutines
// onto a saturated machine. Workers pull jobs in admission order; each job
// runs characterize → alpha FIT → proton FIT, every stage under the retry
// policy, and each species stage behind its own circuit breaker so a
// workload class that keeps failing is shed without burning workers on it.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"finser"
	"finser/internal/breaker"
	"finser/internal/dist"
	"finser/internal/events"
	"finser/internal/faultinject"
	"finser/internal/obs"
	"finser/internal/retry"
)

// Admission-rejection sentinels; the HTTP layer maps both to 503.
var (
	// ErrQueueFull reports a saturated admission queue.
	ErrQueueFull = errors.New("server: admission queue full")
	// ErrDraining reports a server that has stopped admitting for
	// shutdown.
	ErrDraining = errors.New("server: draining")
	// ErrUnknownJob reports a job ID with no record.
	ErrUnknownJob = errors.New("server: unknown job")
)

// Defaults applied by New when the corresponding Config field is zero.
const (
	DefaultQueueDepth = 16
	DefaultWorkers    = 2
	DefaultJobTimeout = time.Hour
	DefaultRetryAfter = 5 * time.Second
	// DefaultHeartbeat is the SSE keep-alive comment interval — frequent
	// enough to defeat common idle-connection timeouts, rare enough to cost
	// nothing.
	DefaultHeartbeat = 15 * time.Second
)

// speciesStages are the per-species workload classes, each behind its own
// circuit breaker.
var speciesStages = []struct {
	name string
	sp   finser.Species
}{
	{"alpha", finser.Alpha},
	{"proton", finser.Proton},
}

// Config assembles a Server. The zero value is usable: a 16-deep queue,
// 2 workers, 1 h job deadline, default retry and breaker policy, no
// metrics, no checkpointing.
type Config struct {
	// QueueDepth bounds the number of admitted-but-not-running jobs.
	QueueDepth int
	// Workers is the fixed worker-pool size (concurrent jobs).
	Workers int
	// JobTimeout is the default per-job deadline; requests may override
	// it per job. Zero selects 1 h; negative disables the deadline.
	JobTimeout time.Duration
	// RetryAfter is the back-off hint returned with 503 rejections.
	RetryAfter time.Duration
	// Retry is the per-stage retry policy template (zero value: retry
	// defaults). The server installs its own classifier unless one is
	// set: finser.ConfigError fails fast, everything else is transient.
	Retry retry.Policy
	// Breaker is the per-species circuit-breaker template (zero value:
	// breaker defaults). Name is overwritten per species.
	Breaker breaker.Config
	// CheckpointDir, when non-empty, stores one checkpoint file per job
	// configuration fingerprint, so a drained or crashed job's completed
	// FIT bins survive and an identical resubmission resumes from them.
	CheckpointDir string
	// Metrics, when non-nil, receives serving-layer counters and gauges
	// (serd/*) and is threaded through each job's flow as FlowConfig.Obs.
	Metrics *obs.Registry
	// Faults, when non-nil, is injected into every job's flow — for
	// robustness tests only.
	Faults *faultinject.Hooks
	// Guard selects the physics-invariant enforcement mode threaded into
	// every job's flow (finser.GuardOff/GuardWarn/GuardStrict). Violations
	// are counted on Metrics under guard/* and show up in /metrics.
	Guard finser.GuardMode
	// GuardLog, when non-nil, receives warn-mode guard violation logs.
	GuardLog finser.GuardLogf
	// Heartbeat is the SSE keep-alive comment interval on /jobs/{id}/events.
	// Zero selects DefaultHeartbeat.
	Heartbeat time.Duration
	// EventBuffer is each job's event-ring capacity — the replay window an
	// SSE reconnect (Last-Event-ID) can recover losslessly. Zero selects
	// events.DefaultCapacity.
	EventBuffer int
	// Logger, when non-nil, receives one structured line per job lifecycle
	// step, each stamped with the job ID and configuration fingerprint
	// (obs.NewJSONLogger / NewTextLogger fit). Nil disables logging.
	Logger *slog.Logger
	// Runner overrides the production staged pipeline — tests inject
	// blocking or instant runners. Nil selects the real flow. Injected
	// runners receive the same telemetry-instrumented FlowConfig (BinDone,
	// GuardEvent, Progress wired to the job's event stream) the real
	// pipeline gets.
	Runner func(ctx context.Context, cfg finser.FlowConfig) (*JobResult, error)
	// Distributor, when non-nil, switches the server into coordinator
	// mode: jobs run by sharding across a worker-serd pool (dist.New fits)
	// instead of the local pipeline. Runner still wins when both are set.
	// Coordinator mode requires submissions to pin workers > 0, and
	// /readyz reflects Ready() so a pool with every breaker open reports
	// 503.
	Distributor Distributor
	// ShardConcurrency bounds concurrent shard computations on the worker
	// /shards endpoint; excess shard requests shed with 503 so the
	// coordinator routes them elsewhere. Zero selects Workers.
	ShardConcurrency int
	// CharCache bounds the worker-side characterization cache (distinct
	// job fingerprints kept warm for shard requests). Zero selects
	// DefaultCharCache.
	CharCache int
}

// Distributor runs one job's FIT across a remote worker pool. It is the
// seam between the serving layer and internal/dist: the server owns job
// lifecycle, checkpoint store, and the event stream; the distributor owns
// sharding, stealing, retry, and the bit-identical merge.
type Distributor interface {
	// Run executes the job, reporting shard lifecycle transitions to emit.
	Run(ctx context.Context, cfg finser.FlowConfig, emit func(dist.ShardEvent)) (*dist.Result, error)
	// Ready reports whether the pool can make progress (nil = ready).
	Ready() error
}

// Server is the resilient SER job daemon core. Construct with New, launch
// the pool with Start, serve Handler, stop with Drain.
type Server struct {
	cfg      Config
	reg      *obs.Registry
	queue    chan *job
	breakers map[string]*breaker.Breaker
	mux      *http.ServeMux
	wg       sync.WaitGroup
	running  atomic.Int64
	started  time.Time
	build    buildInfo
	shardSem chan struct{}
	chars    *charCache

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string
	nextID   int
	draining bool
	baseCtx  context.Context
	stop     context.CancelFunc
}

// New builds a server (workers not yet started).
func New(cfg Config) *Server {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWorkers
	}
	if cfg.JobTimeout == 0 {
		cfg.JobTimeout = DefaultJobTimeout
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = DefaultHeartbeat
	}
	baseCtx, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		reg:      cfg.Metrics,
		queue:    make(chan *job, cfg.QueueDepth),
		breakers: map[string]*breaker.Breaker{},
		jobs:     map[string]*job{},
		baseCtx:  baseCtx,
		stop:     stop,
		started:  time.Now(),
		build:    readBuildInfo(),
	}
	for _, st := range speciesStages {
		s.breakers[st.name] = s.newBreaker(st.name)
	}
	if cfg.ShardConcurrency <= 0 {
		cfg.ShardConcurrency = cfg.Workers
	}
	s.shardSem = make(chan struct{}, cfg.ShardConcurrency)
	s.chars = newCharCache(cfg.CharCache)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("POST /shards", s.handleShard)
	s.mux.HandleFunc("GET /jobs", s.handleList)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	s.mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// newBreaker clones the breaker template for one species, layering the
// trip/state metrics under any user callback.
func (s *Server) newBreaker(name string) *breaker.Breaker {
	bc := s.cfg.Breaker
	bc.Name = name
	user := bc.OnStateChange
	bc.OnStateChange = func(n string, from, to breaker.State) {
		s.reg.Gauge("serd/breaker/" + n + "/state").Set(float64(to))
		if to == breaker.Open {
			s.reg.Counter("serd/breaker/" + n + "/trips").Inc()
		}
		if user != nil {
			user(n, from, to)
		}
	}
	return breaker.New(bc)
}

// Start launches the worker pool. Call once.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for j := range s.queue {
				s.runJob(j)
			}
		}()
	}
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// Submit validates and admits a job. It returns the queued job's status,
// or ErrDraining / ErrQueueFull when admission is shut, or a 400-class
// validation error (*RequestError / *finser.ConfigError).
func (s *Server) Submit(req JobRequest) (JobStatus, error) {
	cfg, err := req.flowConfig()
	if err != nil {
		return JobStatus{}, err
	}
	if err := cfg.Validate(); err != nil {
		return JobStatus{}, err
	}
	// A distributed run is bit-identical to single-node only under a pinned
	// worker count (the per-bin RNG substream split depends on it), so
	// coordinator mode refuses the "whatever GOMAXPROCS is" default.
	if s.cfg.Distributor != nil && req.Workers <= 0 {
		return JobStatus{}, &RequestError{Field: "workers",
			Reason: "must be pinned (> 0) for distributed execution: the Monte-Carlo substream split depends on it"}
	}
	// The guard configuration is the server's policy, not the client's:
	// attach it at admission so every execution path (including injected
	// runners) sees it.
	cfg.Guard = s.cfg.Guard
	cfg.GuardLog = s.cfg.GuardLog

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.reg.Counter("serd/jobs/rejected_draining").Inc()
		return JobStatus{}, ErrDraining
	}
	s.nextID++
	jctx, jcancel := context.WithCancel(s.baseCtx)
	j := &job{
		id:        fmt.Sprintf("job-%d", s.nextID),
		req:       req,
		cfg:       cfg,
		state:     StateQueued,
		submitted: time.Now(),
		cancel:    jcancel,
		ctx:       jctx,
	}
	select {
	case s.queue <- j:
	default:
		// Load shedding: a full queue refuses immediately rather than
		// accumulating unbounded goroutines or latency.
		s.nextID--
		jcancel()
		s.reg.Counter("serd/jobs/rejected_full").Inc()
		return JobStatus{}, ErrQueueFull
	}
	// The fingerprint keys the job's checkpoint file and correlates its log
	// lines, metrics, and event stream; cfg already validated, so this
	// cannot fail — but a failure only costs the correlation key.
	if fp, ferr := finser.FlowFingerprint(cfg, []float64{cfg.Vdd}); ferr == nil {
		j.fingerprint = fp
	}
	j.events = events.NewStream(s.cfg.EventBuffer, func() {
		s.reg.Counter("serd/events/dropped_subscribers").Inc()
	})
	j.log = obs.JobLogger(s.cfg.Logger, j.id, j.fingerprint)
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.reg.Counter("serd/jobs/submitted").Inc()
	s.reg.Gauge("serd/queue/depth").Set(float64(len(s.queue)))
	s.publish(j, events.Event{Type: events.TypeState, State: string(StateQueued)})
	j.logInfo("job queued", "vdd", cfg.Vdd, "queue_depth", len(s.queue))
	return j.status(), nil
}

// publish stamps the job ID onto e and publishes it to the job's stream,
// counting accepted events on the registry.
func (s *Server) publish(j *job, e events.Event) {
	e.Job = j.id
	if j.events.Publish(e) != 0 {
		s.reg.Counter("serd/events/published").Inc()
	}
}

// latency returns one of the serving-layer latency histograms, with
// exponential buckets from 1 ms to ~9 min.
func (s *Server) latency(name string) *obs.Histogram {
	return s.reg.Histogram("serd/latency/"+name+"_seconds", obs.ExpBuckets(0.001, 2, 20))
}

// Status returns one job's state.
func (s *Server) Status(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return j.status(), nil
}

// List returns every job in admission order.
func (s *Server) List() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].status())
	}
	return out
}

// Cancel cancels a job: a queued job is finalized immediately (workers
// skip it), a running one has its context cancelled and finalizes when the
// flow unwinds. Cancelling a terminal job is a no-op.
func (s *Server) Cancel(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	switch j.state {
	case StateQueued:
		j.cancel()
		s.finalizeLocked(j, StateCanceled, "canceled while queued")
	case StateRunning:
		j.cancel()
	}
	return j.status(), nil
}

// Draining reports whether admission is shut.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain gracefully shuts the server down: stop admitting (new submissions
// see ErrDraining, /readyz flips to 503), cancel every queued and running
// job, and wait for the workers to unwind. Running flows stop
// cooperatively within milliseconds; their completed FIT bins are already
// checkpointed, so a resubmission after restart resumes bit-identically.
// The context bounds the wait.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		// Safe: admission checks draining under this same lock, so no
		// send can race the close.
		close(s.queue)
	}
	s.mu.Unlock()
	s.stop() // cancels every job context derived from baseCtx

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain: %w", ctx.Err())
	}
}

// RetryAfter returns the 503 back-off hint.
func (s *Server) RetryAfter() time.Duration { return s.cfg.RetryAfter }

// runJob drives one admitted job through the pipeline and finalizes it.
func (s *Server) runJob(j *job) {
	s.mu.Lock()
	if j.state != StateQueued { // canceled while queued
		s.mu.Unlock()
		return
	}
	if err := j.ctx.Err(); err != nil { // drain landed before pickup
		s.finalizeLocked(j, StateCanceled, "canceled before start: server draining")
		s.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	s.reg.Gauge("serd/queue/depth").Set(float64(len(s.queue)))
	s.reg.Gauge("serd/jobs/running").Set(float64(s.running.Add(1)))
	queueWait := j.started.Sub(j.submitted)
	s.mu.Unlock()
	defer func() { s.reg.Gauge("serd/jobs/running").Set(float64(s.running.Add(-1))) }()
	s.latency("queue_wait").Observe(queueWait.Seconds())
	s.publish(j, events.Event{Type: events.TypeState, State: string(StateRunning)})
	j.logInfo("job running", "queue_wait_seconds", queueWait.Seconds())
	s.instrumentFlow(j)

	ctx := j.ctx
	timeout := s.cfg.JobTimeout
	if j.req.TimeoutSeconds > 0 {
		timeout = time.Duration(j.req.TimeoutSeconds * float64(time.Second))
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	var res *JobResult
	var err error
	switch {
	case s.cfg.Runner != nil:
		res, err = s.cfg.Runner(ctx, j.cfg)
	case s.cfg.Distributor != nil:
		res, err = s.runDistributed(ctx, j)
	default:
		res, err = s.runPipeline(ctx, j)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case err == nil:
		j.result = res
		s.finalizeLocked(j, StateDone, "")
	case errors.Is(err, context.Canceled):
		msg := "canceled"
		if s.draining {
			msg = "canceled: server draining (resubmit to resume from checkpoint)"
		}
		s.finalizeLocked(j, StateCanceled, msg)
	case errors.Is(err, context.DeadlineExceeded):
		s.finalizeLocked(j, StateFailed, fmt.Sprintf("deadline %v exceeded: %v", timeout, err))
	default:
		s.finalizeLocked(j, StateFailed, err.Error())
	}
}

// instrumentFlow wires the job's flow callbacks to its event stream, so
// per-bin FIT results, guard violations, and throttled progress reach
// streaming clients as they happen. Both the production pipeline and
// injected test runners run under the instrumented config.
func (s *Server) instrumentFlow(j *job) {
	j.cfg.BinDone = func(be finser.BinEvent) {
		s.publish(j, events.Event{
			Type: events.TypeBin, Stage: be.Stage, Bin: be.Bin, Bins: be.Bins,
			EnergyMeV: be.Point.EnergyMeV, POF: be.Point.Tot, POFStdErr: be.Point.TotStdErr,
			FITSoFar: be.FITSoFar, Resumed: be.Resumed,
		})
	}
	j.cfg.GuardEvent = func(v finser.GuardViolation) {
		s.publish(j, events.Event{
			Type: events.TypeViolation, Stage: v.Stage,
			Invariant: v.Invariant, Detail: v.Detail, Value: v.Value,
		})
	}
	prev := j.cfg.Progress
	j.cfg.Progress = func(p finser.Progress) {
		s.publish(j, events.Event{
			Type: events.TypeProgress, Stage: p.Stage,
			Done: p.Done, Total: p.Total, Rate: p.Rate,
		})
		if prev != nil {
			prev(p)
		}
	}
}

// finalizeLocked moves a job to a terminal state; callers hold s.mu.
func (s *Server) finalizeLocked(j *job, state JobState, msg string) {
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.err = msg
	j.finished = time.Now()
	switch state {
	case StateDone:
		s.reg.Counter("serd/jobs/completed").Inc()
		if !j.started.IsZero() {
			s.latency("run").Observe(j.finished.Sub(j.started).Seconds())
		}
		s.latency("admission_to_done").Observe(j.finished.Sub(j.submitted).Seconds())
	case StateFailed:
		s.reg.Counter("serd/jobs/failed").Inc()
	case StateCanceled:
		s.reg.Counter("serd/jobs/canceled").Inc()
	}
	// Terminal event, then close: subscribers drain the final transition
	// and see a clean end-of-stream.
	s.publish(j, events.Event{Type: events.TypeState, State: string(state), Error: msg})
	j.events.Close()
	j.logInfo("job "+string(state),
		"total_seconds", j.finished.Sub(j.submitted).Seconds(),
		"retries", j.retries.Load(), "error", msg)
}

// runPipeline is the production staged flow: characterize, then each
// species' FIT stage behind its circuit breaker, every stage under the
// retry policy, all against the job's (possibly resumed) checkpoint.
func (s *Server) runPipeline(ctx context.Context, j *job) (*JobResult, error) {
	cfg := j.cfg
	cfg.Obs = s.reg
	cfg.Faults = s.cfg.Faults
	if s.cfg.CheckpointDir != "" {
		store, resumed, err := s.openCheckpoint(cfg)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: %w", err)
		}
		cfg.Checkpoint = store
		s.mu.Lock()
		j.resumed = resumed
		s.mu.Unlock()
	}

	var char *finser.Characterization
	if err := s.retryStage(ctx, j, "characterize", func(ctx context.Context) error {
		c, err := finser.CharacterizeFlowCtx(ctx, cfg)
		if err != nil {
			return err
		}
		char = c
		return nil
	}); err != nil {
		return nil, fmt.Errorf("characterize stage: %w", err)
	}

	res := &JobResult{Vdd: cfg.Vdd}
	dst := map[string]*finser.FITResult{"alpha": &res.Alpha, "proton": &res.Proton}
	for _, st := range speciesStages {
		br := s.breakers[st.name]
		sp := st.sp
		out := dst[st.name]
		if err := s.retryStage(ctx, j, st.name, func(ctx context.Context) error {
			return br.Do(ctx, func(ctx context.Context) error {
				fit, err := finser.SpeciesFITCtx(ctx, cfg, char, sp)
				if err != nil {
					return err
				}
				*out = fit
				return nil
			})
		}); err != nil {
			return nil, fmt.Errorf("%s stage: %w", st.name, err)
		}
	}
	return res, nil
}

// runDistributed drives one job through the coordinator: same checkpoint
// store and telemetry stream as the local pipeline, but execution is
// sharded across the worker pool. Shard lifecycle transitions become
// TypeShard events on the job's SSE stream; a *dist.PartialError surfaces
// as a failed job whose error names the missing bins.
func (s *Server) runDistributed(ctx context.Context, j *job) (*JobResult, error) {
	cfg := j.cfg
	cfg.Obs = s.reg
	cfg.Faults = s.cfg.Faults
	if s.cfg.CheckpointDir != "" {
		store, resumed, err := s.openCheckpoint(cfg)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: %w", err)
		}
		cfg.Checkpoint = store
		s.mu.Lock()
		j.resumed = resumed
		s.mu.Unlock()
	}
	emit := func(ev dist.ShardEvent) {
		e := events.Event{
			Type: events.TypeShard, State: ev.Kind,
			Shard: ev.Shard.String(), Worker: ev.Worker, Attempt: ev.Attempt,
			Resumed: ev.Kind == dist.EventResumed,
		}
		if ev.Err != nil {
			e.Error = ev.Err.Error()
		}
		s.publish(j, e)
		if ev.Kind == dist.EventRetried || ev.Kind == dist.EventFailed {
			j.logInfo("shard "+ev.Kind, "shard", ev.Shard.String(),
				"worker", ev.Worker, "attempt", ev.Attempt, "error", e.Error)
		}
	}
	res, err := s.cfg.Distributor.Run(ctx, cfg, emit)
	if err != nil {
		return nil, err
	}
	return &JobResult{Vdd: res.Vdd, Alpha: res.Alpha, Proton: res.Proton}, nil
}

// openCheckpoint opens (or creates) the job's fingerprint-keyed checkpoint
// file, returning the store and how many stages it restored. An unreadable
// or mismatched existing file is replaced rather than failing the job — a
// stale checkpoint must never block fresh work.
func (s *Server) openCheckpoint(cfg finser.FlowConfig) (*finser.CheckpointStore, int, error) {
	vdds := []float64{cfg.Vdd}
	fp, err := finser.FlowFingerprint(cfg, vdds)
	if err != nil {
		return nil, 0, err
	}
	path := filepath.Join(s.cfg.CheckpointDir, "ser-"+fp[:16]+".ck.json")
	if _, serr := os.Stat(path); serr == nil {
		if store, rerr := finser.ResumeCheckpoint(path, cfg, vdds); rerr == nil {
			return store, len(store.Stages()), nil
		}
	}
	store, err := finser.CreateCheckpoint(path, cfg, vdds)
	if err != nil {
		return nil, 0, err
	}
	return store, 0, nil
}

// retryStage runs one pipeline stage under the server's retry policy,
// counting retries on the job and the registry.
func (s *Server) retryStage(ctx context.Context, j *job, stage string, op func(context.Context) error) error {
	pol := s.cfg.Retry
	if pol.Retryable == nil {
		pol.Retryable = stageRetryable
	}
	user := pol.OnRetry
	pol.OnRetry = func(attempt int, err error, delay time.Duration) {
		j.retries.Add(1)
		s.reg.Counter("serd/retries").Inc()
		s.reg.Counter("serd/retries/" + stage).Inc()
		if user != nil {
			user(attempt, err, delay)
		}
	}
	return retry.Do(ctx, pol, op)
}

// stageRetryable is the server's transient/permanent classifier:
// configuration mistakes fail fast (they map to 400 at admission, and to a
// non-retryable failure if one slips through to run time); context errors
// follow the caller; everything else — checkpoint I/O, injected faults,
// open breakers — is transient.
func stageRetryable(err error) bool {
	var ce *finser.ConfigError
	if errors.As(err, &ce) {
		return false
	}
	return retry.Retryable(err)
}

// ---- HTTP layer ----

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
	// RetryAfterSeconds mirrors the Retry-After header on 503s.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
}

// writeUnavailable writes a 503 with the Retry-After hint — the load-shed
// contract: callers back off and resubmit instead of piling on.
func (s *Server) writeUnavailable(w http.ResponseWriter, msg string) {
	secs := int(s.cfg.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: msg, RetryAfterSeconds: secs})
}

// maxSubmitBytes bounds the submit request body. A job request is a small
// flat JSON object; anything near a megabyte is a mistake or an attack, and
// without the cap a client could stream an unbounded body into the decoder.
const maxSubmitBytes = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxSubmitBytes)
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorBody{Error: fmt.Sprintf("request body exceeds %d bytes", mbe.Limit)})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	st, err := s.Submit(req)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, st)
	case errors.Is(err, ErrQueueFull):
		s.writeUnavailable(w, err.Error())
	case errors.Is(err, ErrDraining):
		s.writeUnavailable(w, err.Error())
	default:
		// Validation errors are the caller's fault: 400, not 500, and
		// never retried server-side.
		var ce *finser.ConfigError
		var re *RequestError
		if errors.As(err, &ce) || errors.As(err, &re) {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.List())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// buildInfo is the build identity /healthz reports — what exactly is
// running, resolved once at startup from the binary's embedded metadata.
type buildInfo struct {
	GoVersion string `json:"go_version,omitempty"`
	Module    string `json:"module,omitempty"`
	Version   string `json:"version,omitempty"`
	// Revision/BuildTime/Modified come from the VCS stamp (present when the
	// binary was built inside a git checkout).
	Revision  string `json:"vcs_revision,omitempty"`
	BuildTime string `json:"vcs_time,omitempty"`
	Modified  bool   `json:"vcs_modified,omitempty"`
}

func readBuildInfo() buildInfo {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return buildInfo{}
	}
	out := buildInfo{
		GoVersion: bi.GoVersion,
		Module:    bi.Main.Path,
		Version:   bi.Main.Version,
	}
	for _, kv := range bi.Settings {
		switch kv.Key {
		case "vcs.revision":
			out.Revision = kv.Value
		case "vcs.time":
			out.BuildTime = kv.Value
		case "vcs.modified":
			out.Modified = kv.Value == "true"
		}
	}
	return out
}

// healthBody is the /healthz response: liveness plus build identity and
// uptime, so one probe answers "is it up" and "what exactly is running".
type healthBody struct {
	Status        string    `json:"status"`
	UptimeSeconds float64   `json:"uptime_seconds"`
	Build         buildInfo `json:"build"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Liveness: the process serves; draining or saturated still counts.
	writeJSON(w, http.StatusOK, healthBody{
		Status:        "ok",
		UptimeSeconds: time.Since(s.started).Seconds(),
		Build:         s.build,
	})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		s.writeUnavailable(w, "draining")
		return
	}
	// Coordinator mode: readiness means the worker pool can make progress.
	// A pool with every breaker open would only queue jobs to fail, so
	// report 503 until a worker's half-open probe succeeds.
	if s.cfg.Distributor != nil {
		if err := s.cfg.Distributor.Ready(); err != nil {
			s.writeUnavailable(w, err.Error())
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.reg.WritePrometheus(w, "finser") // nil-safe: empty body without a registry
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if s.reg == nil {
		w.Write([]byte("{}\n"))
		return
	}
	s.reg.WriteJSON(w)
}
