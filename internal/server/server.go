// Package server is the SER-as-a-service layer: a bounded admission queue
// with load shedding, a fixed worker pool driving the staged finser flow,
// and the resilience policy around it — per-stage retries with jittered
// backoff, per-species circuit breakers, per-job deadlines, cancelable
// queryable job states, and a graceful drain that preserves checkpoints so
// a resubmitted job resumes bit-identically.
//
// The queue is the backpressure boundary: when it is full (or the server
// is draining) a submission is rejected immediately with ErrQueueFull /
// ErrDraining — HTTP 503 plus Retry-After — instead of piling goroutines
// onto a saturated machine. Admission is multi-tenant: the X-Tenant header
// names the tenant (default "anon"), each tenant is policed by a
// token-bucket rate limit and an in-flight quota (typed qos errors, HTTP
// 429 — distinct from the global capacity 503), and workers pull jobs from
// a weighted-fair queue over tenant × class flows (internal/qos) instead
// of a single FIFO, so an interactive job's wait is bounded by its own
// flow's backlog no matter how deep a batch tenant's queue is. With
// preemption enabled, an interactive arrival that finds every worker busy
// on batch work asks the longest-running batch job to yield at its next
// checkpoint boundary; the preempted job requeues and later resumes from
// its fingerprint-keyed checkpoint bit-identically. Each job runs
// characterize → alpha FIT → proton FIT, every stage under the retry
// policy, and each tenant × species stage behind its own circuit breaker
// so one tenant's failing workload class is shed without tripping others.
//
// With Config.DataDir set the job layer is durable: every lifecycle
// transition is appended to a CRC-framed fsync'd journal
// (internal/journal), and Recover — called between New and Start — replays
// it after a crash, restoring terminal jobs with their results,
// re-enqueuing jobs that were queued, and re-running jobs that were mid-
// flight from their fingerprint-keyed checkpoints so the recovered FIT is
// bit-identical to an uninterrupted run. Durable servers also dedupe
// retried submissions by idempotency key (defaulting to the flow
// fingerprint), and a failing journal disk degrades serving — /readyz
// reports lost durability — instead of crashing it.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"finser"
	"finser/internal/breaker"
	"finser/internal/dist"
	"finser/internal/events"
	"finser/internal/faultinject"
	"finser/internal/journal"
	"finser/internal/obs"
	"finser/internal/qos"
	"finser/internal/retry"
)

// Admission-rejection sentinels; the HTTP layer maps both to 503.
var (
	// ErrQueueFull reports a saturated admission queue.
	ErrQueueFull = errors.New("server: admission queue full")
	// ErrDraining reports a server that has stopped admitting for
	// shutdown.
	ErrDraining = errors.New("server: draining")
	// ErrUnknownJob reports a job ID with no record.
	ErrUnknownJob = errors.New("server: unknown job")
)

// Defaults applied by New when the corresponding Config field is zero.
const (
	DefaultQueueDepth = 16
	DefaultWorkers    = 2
	DefaultJobTimeout = time.Hour
	DefaultRetryAfter = 5 * time.Second
	// DefaultHeartbeat is the SSE keep-alive comment interval — frequent
	// enough to defeat common idle-connection timeouts, rare enough to cost
	// nothing.
	DefaultHeartbeat = 15 * time.Second
	// DefaultJournalMaxBytes is the journal size past which the retention
	// sweeper compacts it by atomic rotation.
	DefaultJournalMaxBytes = 4 << 20
	// DefaultRetryAfterMax caps the load-aware 503 Retry-After hint.
	DefaultRetryAfterMax = 60 * time.Second
)

// errPreempted is the cancel cause a preemption attaches to the running
// job's per-run context, distinguishing a yield from a user cancel.
var errPreempted = errors.New("server: preempted for interactive work")

// speciesStages are the per-species workload classes, each behind its own
// circuit breaker.
var speciesStages = []struct {
	name string
	sp   finser.Species
}{
	{"alpha", finser.Alpha},
	{"proton", finser.Proton},
}

// Config assembles a Server. The zero value is usable: a 16-deep queue,
// 2 workers, 1 h job deadline, default retry and breaker policy, no
// metrics, no checkpointing.
type Config struct {
	// QueueDepth bounds the number of admitted-but-not-running jobs.
	QueueDepth int
	// Workers is the fixed worker-pool size (concurrent jobs).
	Workers int
	// JobTimeout is the default per-job deadline; requests may override
	// it per job. Zero selects 1 h; negative disables the deadline.
	JobTimeout time.Duration
	// RetryAfter is the back-off hint returned with 503 rejections.
	RetryAfter time.Duration
	// Retry is the per-stage retry policy template (zero value: retry
	// defaults). The server installs its own classifier unless one is
	// set: finser.ConfigError fails fast, everything else is transient.
	Retry retry.Policy
	// Breaker is the per-species circuit-breaker template (zero value:
	// breaker defaults). Name is overwritten per species.
	Breaker breaker.Config
	// CheckpointDir, when non-empty, stores one checkpoint file per job
	// configuration fingerprint, so a drained or crashed job's completed
	// FIT bins survive and an identical resubmission resumes from them.
	CheckpointDir string
	// Metrics, when non-nil, receives serving-layer counters and gauges
	// (serd/*) and is threaded through each job's flow as FlowConfig.Obs.
	Metrics *obs.Registry
	// Faults, when non-nil, is injected into every job's flow — for
	// robustness tests only.
	Faults *faultinject.Hooks
	// Guard selects the physics-invariant enforcement mode threaded into
	// every job's flow (finser.GuardOff/GuardWarn/GuardStrict). Violations
	// are counted on Metrics under guard/* and show up in /metrics.
	Guard finser.GuardMode
	// GuardLog, when non-nil, receives warn-mode guard violation logs.
	GuardLog finser.GuardLogf
	// Heartbeat is the SSE keep-alive comment interval on /jobs/{id}/events.
	// Zero selects DefaultHeartbeat.
	Heartbeat time.Duration
	// EventBuffer is each job's event-ring capacity — the replay window an
	// SSE reconnect (Last-Event-ID) can recover losslessly. Zero selects
	// events.DefaultCapacity.
	EventBuffer int
	// Logger, when non-nil, receives one structured line per job lifecycle
	// step, each stamped with the job ID and configuration fingerprint
	// (obs.NewJSONLogger / NewTextLogger fit). Nil disables logging.
	Logger *slog.Logger
	// Runner overrides the production staged pipeline — tests inject
	// blocking or instant runners. Nil selects the real flow. Injected
	// runners receive the same telemetry-instrumented FlowConfig (BinDone,
	// GuardEvent, Progress wired to the job's event stream) the real
	// pipeline gets.
	Runner func(ctx context.Context, cfg finser.FlowConfig) (*JobResult, error)
	// Distributor, when non-nil, switches the server into coordinator
	// mode: jobs run by sharding across a worker-serd pool (dist.New fits)
	// instead of the local pipeline. Runner still wins when both are set.
	// Coordinator mode requires submissions to pin workers > 0, and
	// /readyz reflects Ready() so a pool with every breaker open reports
	// 503.
	Distributor Distributor
	// ShardConcurrency bounds concurrent shard computations on the worker
	// /shards endpoint; excess shard requests shed with 503 so the
	// coordinator routes them elsewhere. Zero selects Workers.
	ShardConcurrency int
	// CharCache bounds the worker-side characterization cache (distinct
	// job fingerprints kept warm for shard requests). Zero selects
	// DefaultCharCache.
	CharCache int
	// DataDir, when non-empty, makes the job layer durable: a write-ahead
	// journal of job lifecycle records lives under it (journal.wal), and —
	// unless CheckpointDir is set — per-job checkpoints default to its
	// checkpoints/ subdirectory. Call Recover between New and Start to
	// replay the journal; without that call the journal stays disabled.
	DataDir string
	// JobTTL evicts terminal jobs from the in-memory registry (and their
	// orphaned checkpoint files from disk) this long after they finish, so
	// sustained traffic cannot grow the job map without bound. Zero keeps
	// terminal jobs forever.
	JobTTL time.Duration
	// JournalMaxBytes triggers compacting journal rotation once the log
	// exceeds it. Zero selects DefaultJournalMaxBytes.
	JournalMaxBytes int64
	// TenantWeights gives named tenants a fair-queue weight (unlisted
	// tenants weigh 1). A tenant's share under contention is proportional
	// to its weight.
	TenantWeights map[string]float64
	// ClassWeights overrides the interactive/batch fair-queue weights.
	// Nil selects qos.DefaultClassWeights (interactive 10 : batch 1).
	ClassWeights map[string]float64
	// TenantRate is each tenant's sustained submission rate (jobs/second);
	// TenantBurst the token-bucket depth (<= 0: max(1, rate)). Rate <= 0
	// disables rate limiting. Over-rate submissions get a typed 429.
	TenantRate  float64
	TenantBurst float64
	// TenantQuota bounds one tenant's in-flight jobs (queued + running);
	// <= 0 disables. Over-quota submissions get a typed 429.
	TenantQuota int
	// Preempt enables checkpoint-boundary preemption: an interactive
	// arrival that finds all workers busy on batch jobs asks the
	// longest-running batch job to yield; it requeues and resumes from its
	// checkpoint. Requires CheckpointDir (or DataDir) so yielded work is
	// never lost.
	Preempt bool
	// RetryAfterMax caps the load-aware 503 Retry-After hint. Zero selects
	// DefaultRetryAfterMax.
	RetryAfterMax time.Duration
}

// Distributor runs one job's FIT across a remote worker pool. It is the
// seam between the serving layer and internal/dist: the server owns job
// lifecycle, checkpoint store, and the event stream; the distributor owns
// sharding, stealing, retry, and the bit-identical merge.
type Distributor interface {
	// Run executes the job, reporting shard lifecycle transitions to emit.
	Run(ctx context.Context, cfg finser.FlowConfig, emit func(dist.ShardEvent)) (*dist.Result, error)
	// Ready reports whether the pool can make progress (nil = ready).
	Ready() error
}

// Server is the resilient SER job daemon core. Construct with New, launch
// the pool with Start, serve Handler, stop with Drain.
type Server struct {
	cfg      Config
	reg      *obs.Registry
	sched    *qos.Scheduler
	limiter  *qos.Limiter
	breakers map[string]*breaker.Breaker
	mux      *http.ServeMux
	wg       sync.WaitGroup
	running  atomic.Int64
	started  time.Time
	build    buildInfo
	shardSem chan struct{}
	chars    *charCache

	// journal is the durable job log (nil until Recover enables it).
	// degradedErr holds the latest journal write failure while durability
	// is degraded, nil while healthy.
	journal     *journal.Journal
	degradedErr atomic.Pointer[string]

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string
	idem     map[string]string // idempotency key → job ID
	nextID   int
	draining bool
	baseCtx  context.Context
	stop     context.CancelFunc
}

// New builds a server (workers not yet started).
func New(cfg Config) *Server {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWorkers
	}
	if cfg.JobTimeout == 0 {
		cfg.JobTimeout = DefaultJobTimeout
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = DefaultHeartbeat
	}
	if cfg.JournalMaxBytes <= 0 {
		cfg.JournalMaxBytes = DefaultJournalMaxBytes
	}
	if cfg.RetryAfterMax <= 0 {
		cfg.RetryAfterMax = DefaultRetryAfterMax
	}
	if cfg.DataDir != "" && cfg.CheckpointDir == "" {
		cfg.CheckpointDir = filepath.Join(cfg.DataDir, "checkpoints")
	}
	baseCtx, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg: cfg,
		reg: cfg.Metrics,
		sched: qos.NewScheduler(qos.SchedulerConfig{
			Capacity:      cfg.QueueDepth,
			ClassWeights:  cfg.ClassWeights,
			TenantWeights: cfg.TenantWeights,
		}),
		limiter: qos.NewLimiter(qos.LimiterConfig{
			Rate:  cfg.TenantRate,
			Burst: cfg.TenantBurst,
			Quota: cfg.TenantQuota,
		}),
		breakers: map[string]*breaker.Breaker{},
		jobs:     map[string]*job{},
		idem:     map[string]string{},
		baseCtx:  baseCtx,
		stop:     stop,
		started:  time.Now(),
		build:    readBuildInfo(),
	}
	for _, st := range speciesStages {
		s.breakers[st.name] = s.newBreaker(st.name)
	}
	if cfg.ShardConcurrency <= 0 {
		cfg.ShardConcurrency = cfg.Workers
	}
	s.shardSem = make(chan struct{}, cfg.ShardConcurrency)
	s.chars = newCharCache(cfg.CharCache)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("POST /shards", s.handleShard)
	s.mux.HandleFunc("GET /jobs", s.handleList)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	s.mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// newBreaker clones the breaker template for one species, layering the
// trip/state metrics under any user callback.
func (s *Server) newBreaker(name string) *breaker.Breaker {
	bc := s.cfg.Breaker
	bc.Name = name
	user := bc.OnStateChange
	bc.OnStateChange = func(n string, from, to breaker.State) {
		s.reg.Gauge("serd/breaker/" + n + "/state").Set(float64(to))
		if to == breaker.Open {
			s.reg.Counter("serd/breaker/" + n + "/trips").Inc()
		}
		if user != nil {
			user(n, from, to)
		}
	}
	return breaker.New(bc)
}

// breakerFor returns the circuit breaker guarding one tenant × species
// workload class, creating it on first use. The anonymous tenant keeps the
// bare species keys (and metric names) the server has always used; named
// tenants get isolated "tenant/species" breakers, so one tenant's failing
// configs trip shedding only for that tenant.
func (s *Server) breakerFor(tenant, species string) *breaker.Breaker {
	key := species
	if tenant != "" && tenant != qos.DefaultTenant {
		key = tenant + "/" + species
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	br, ok := s.breakers[key]
	if !ok {
		br = s.newBreaker(key)
		s.breakers[key] = br
	}
	return br
}

// RecoveryStats summarizes one journal replay.
type RecoveryStats struct {
	// Requeued is how many non-terminal jobs went back on the queue (jobs
	// that were mid-flight resume from their checkpoints when they run).
	Requeued int
	// RestoredTerminal is how many finished jobs were restored with their
	// recorded state and result.
	RestoredTerminal int
	// Invalid is how many journaled specs failed re-validation (or could
	// not be decoded); the decodable ones are restored as failed jobs so
	// clients polling them get an answer.
	Invalid int
	// Evicted is how many journaled jobs were dropped because an eviction
	// record retired them.
	Evicted int
	// CorruptRecords is how many damaged journal regions were skipped
	// (each one also counted on the serd/journal/corrupt_records metric).
	CorruptRecords int
}

// Recover opens the DataDir journal and rebuilds the job registry a dead
// process left behind: terminal jobs come back queryable with their
// results, queued and mid-flight jobs go back on the queue (the latter
// resume from their fingerprint-keyed checkpoints, reproducing the
// uninterrupted FIT bit-identically), and the idempotency table is rebuilt
// so client retries of pre-crash submissions dedupe instead of
// double-running. Every replayed spec goes through the same validation
// path as a fresh submission — the guard policy is re-attached, and a spec
// the current server no longer accepts is restored as a failed job rather
// than run. Corrupt journal records are skipped and counted, never fatal;
// only an unopenable journal fails Recover. Call between New and Start;
// without DataDir it is a no-op.
func (s *Server) Recover() (RecoveryStats, error) {
	var stats RecoveryStats
	if s.cfg.DataDir == "" {
		return stats, nil
	}
	if err := os.MkdirAll(s.cfg.DataDir, 0o755); err != nil {
		return stats, err
	}
	if s.cfg.CheckpointDir != "" {
		if err := os.MkdirAll(s.cfg.CheckpointDir, 0o755); err != nil {
			return stats, err
		}
	}
	jnl, recs, rst, err := journal.Open(filepath.Join(s.cfg.DataDir, "journal.wal"))
	if err != nil {
		return stats, err
	}
	s.journal = jnl
	stats.CorruptRecords = len(rst.Errors)
	s.reg.Counter("serd/journal/replayed_records").Add(int64(rst.Records))
	s.reg.Counter("serd/journal/corrupt_records").Add(int64(len(rst.Errors)))
	for _, ce := range rst.Errors {
		if s.cfg.Logger != nil {
			s.cfg.Logger.Warn("journal record skipped", "error", ce.Error())
		}
	}

	// Fold the record sequence into one latest-state entry per job.
	type folded struct {
		sub     *journal.Record
		state   string
		errMsg  string
		result  json.RawMessage
		lastMs  int64
		evicted bool
	}
	byJob := map[string]*folded{}
	var ord []string
	for i := range recs {
		r := &recs[i]
		switch r.Kind {
		case journal.KindSubmitted:
			if _, dup := byJob[r.Job]; dup {
				continue // first submission wins; a duplicate is journal damage
			}
			byJob[r.Job] = &folded{sub: r}
			ord = append(ord, r.Job)
		case journal.KindState:
			f := byJob[r.Job]
			if f == nil {
				// A state record whose submission was lost to corruption
				// must never materialize a ghost job.
				s.reg.Counter("serd/recovery/orphan_records").Inc()
				continue
			}
			f.state, f.errMsg, f.lastMs = r.State, r.Error, r.TimeMs
			if len(r.Result) > 0 {
				f.result = r.Result
			}
		case journal.KindEvicted:
			if f := byJob[r.Job]; f != nil {
				f.evicted = true
			}
		}
	}

	var requeue []*job
	maxID := 0
	s.mu.Lock()
	for _, id := range ord {
		f := byJob[id]
		if f.evicted {
			stats.Evicted++
			continue
		}
		var n int
		if _, serr := fmt.Sscanf(id, "job-%d", &n); serr == nil && n > maxID {
			maxID = n
		}
		var req JobRequest
		if uerr := json.Unmarshal(f.sub.Request, &req); uerr != nil {
			stats.Invalid++
			s.reg.Counter("serd/recovery/invalid_specs").Inc()
			continue
		}
		tenant := f.sub.Tenant
		if tenant == "" {
			tenant = qos.DefaultTenant
		}
		class := f.sub.Class
		if class == "" {
			class = req.class()
		}
		j := &job{
			id:          id,
			req:         req,
			submitted:   time.UnixMilli(f.sub.TimeMs),
			fingerprint: f.sub.Fingerprint,
			idemKey:     f.sub.IdempotencyKey,
			recovered:   true,
			tenant:      tenant,
			class:       class,
			cost:        estimateCost(req),
		}
		j.events = events.NewStream(s.cfg.EventBuffer, func() {
			s.reg.Counter("serd/events/dropped_subscribers").Inc()
		})
		j.log = obs.JobLogger(s.cfg.Logger, j.id, j.fingerprint)

		// Replay goes through the same admission validation as a live
		// submission: re-derive the flow config and re-attach the server's
		// guard policy. A spec this server no longer accepts is restored as
		// a failed job — queryable, never run.
		cfg, cerr := req.flowConfig()
		if cerr == nil {
			cerr = cfg.Validate()
		}
		if cerr == nil && s.cfg.Distributor != nil && req.Workers <= 0 {
			cerr = &RequestError{Field: "workers",
				Reason: "must be pinned (> 0) for distributed execution: the Monte-Carlo substream split depends on it"}
		}
		switch {
		case cerr != nil:
			stats.Invalid++
			s.reg.Counter("serd/recovery/invalid_specs").Inc()
			j.state = StateFailed
			j.err = "recovery re-validation: " + cerr.Error()
			j.finished = time.Now()
			s.publish(j, events.Event{Type: events.TypeRecovery, State: "failed-validation", Error: j.err})
			s.publish(j, events.Event{Type: events.TypeState, State: string(StateFailed), Error: j.err})
			j.events.Close()
		case f.state == string(StateDone) && len(f.result) > 0 && json.Unmarshal(f.result, &j.result) == nil:
			j.state = StateDone
			j.finished = time.UnixMilli(f.lastMs)
			stats.RestoredTerminal++
			s.publish(j, events.Event{Type: events.TypeRecovery, State: "restored"})
			s.publish(j, events.Event{Type: events.TypeState, State: string(StateDone)})
			j.events.Close()
		case f.state == string(StateFailed) || f.state == string(StateCanceled):
			j.state = JobState(f.state)
			j.err = f.errMsg
			j.finished = time.UnixMilli(f.lastMs)
			stats.RestoredTerminal++
			s.publish(j, events.Event{Type: events.TypeRecovery, State: "restored"})
			s.publish(j, events.Event{Type: events.TypeState, State: string(j.state), Error: j.err})
			j.events.Close()
		default:
			// Queued, running, or done-with-unreadable-result: run it
			// (again). Determinism makes the re-run idempotent, and the
			// checkpoint store skips whatever already completed.
			cfg.Guard = s.cfg.Guard
			cfg.GuardLog = s.cfg.GuardLog
			j.cfg = cfg
			j.result = nil
			requeue = append(requeue, j)
		}
		s.jobs[id] = j
		s.order = append(s.order, id)
		if j.idemKey != "" {
			s.idem[j.idemKey] = id
		}
	}
	if s.nextID < maxID {
		s.nextID = maxID
	}
	for _, j := range requeue {
		jctx, jcancel := context.WithCancel(s.baseCtx)
		j.ctx, j.cancel = jctx, jcancel
		j.state = StateQueued
		// ForcePush: every job admitted before the crash goes back on the
		// fair queue regardless of the configured capacity, and Restore
		// re-counts it against its tenant's quota without re-checking the
		// limit — a pre-crash admission is never refused its own slot.
		s.sched.ForcePush(j.tenant, j.class, j.cost, j)
		s.limiter.Restore(j.tenant)
		stats.Requeued++
		s.publish(j, events.Event{Type: events.TypeRecovery, State: "requeued"})
		s.publish(j, events.Event{Type: events.TypeState, State: string(StateQueued)})
		j.logInfo("job recovered from journal", "requeued", true)
	}
	s.mu.Unlock()

	s.reg.Counter("serd/recovery/requeued").Add(int64(stats.Requeued))
	s.reg.Counter("serd/recovery/terminal_restored").Add(int64(stats.RestoredTerminal))
	// Compact immediately: the rewritten journal drops corrupt regions,
	// evicted jobs, and stale intermediate state records.
	if rst.Records > 0 || len(rst.Errors) > 0 {
		s.rotateJournal()
	}
	return stats, nil
}

// Kill crash-stops the server: the journal is closed first so no terminal
// record can land, then every job context is cut and the workers are
// awaited. On disk this is indistinguishable from a SIGKILL mid-run —
// which is exactly what the chaos tests use it for. Production shutdown
// is Drain; Kill is the unclean path.
func (s *Server) Kill() {
	if s.journal != nil {
		s.journal.Close()
	}
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.sched.Close()
	s.stop()
	s.wg.Wait()
}

// sweepLoop periodically evicts expired terminal jobs and compacts the
// journal; it exits when the server's base context is cut (Drain/Kill).
func (s *Server) sweepLoop() {
	interval := s.cfg.JobTTL / 4
	if interval < 25*time.Millisecond {
		interval = 25 * time.Millisecond
	}
	if interval > 30*time.Second {
		interval = 30 * time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-tick.C:
			s.evictExpired(time.Now())
			if s.journal != nil && s.journal.Size() > s.cfg.JournalMaxBytes {
				s.rotateJournal()
			}
		}
	}
}

// evictExpired removes terminal jobs older than JobTTL from the registry,
// journals the eviction (so replay does not resurrect them), and garbage-
// collects their checkpoint files when no surviving job shares the
// fingerprint. Returns how many jobs were evicted.
func (s *Server) evictExpired(now time.Time) int {
	ttl := s.cfg.JobTTL
	if ttl <= 0 {
		return 0
	}
	s.mu.Lock()
	var evicted []*job
	keep := make([]string, 0, len(s.order))
	for _, id := range s.order {
		j := s.jobs[id]
		if j.state.Terminal() && !j.finished.IsZero() && now.Sub(j.finished) >= ttl {
			evicted = append(evicted, j)
			delete(s.jobs, id)
			if j.idemKey != "" && s.idem[j.idemKey] == id {
				delete(s.idem, j.idemKey)
			}
			continue
		}
		keep = append(keep, id)
	}
	s.order = keep
	liveFP := map[string]bool{}
	for _, id := range s.order {
		if fp := s.jobs[id].fingerprint; fp != "" {
			liveFP[fp] = true
		}
	}
	s.mu.Unlock()

	for _, j := range evicted {
		s.journalAppend(journal.Record{Kind: journal.KindEvicted, Job: j.id})
		s.reg.Counter("serd/jobs/evicted").Inc()
		if path := s.checkpointPath(j.fingerprint); path != "" && !liveFP[j.fingerprint] {
			if err := os.Remove(path); err == nil {
				s.reg.Counter("serd/checkpoints/gc").Inc()
			}
		}
		j.logInfo("job evicted", "age_seconds", now.Sub(j.finished).Seconds())
	}
	return len(evicted)
}

// checkpointPath returns the fingerprint-keyed checkpoint file for fp, or
// "" when checkpointing is off or the fingerprint is unusable.
func (s *Server) checkpointPath(fp string) string {
	if s.cfg.CheckpointDir == "" || len(fp) < 16 {
		return ""
	}
	return filepath.Join(s.cfg.CheckpointDir, "ser-"+fp[:16]+".ck.json")
}

// rotateJournal atomically compacts the journal down to the live job
// registry — one submitted record per job plus its latest state.
func (s *Server) rotateJournal() {
	if s.journal == nil {
		return
	}
	s.mu.Lock()
	live := make([]journal.Record, 0, 2*len(s.order))
	for _, id := range s.order {
		j := s.jobs[id]
		reqJSON, err := json.Marshal(j.req)
		if err != nil {
			continue
		}
		live = append(live, journal.Record{
			Kind: journal.KindSubmitted, Job: j.id, TimeMs: j.submitted.UnixMilli(),
			Request: reqJSON, Fingerprint: j.fingerprint, IdempotencyKey: j.idemKey,
			Tenant: j.tenant, Class: j.class,
		})
		if j.state == StateQueued {
			continue
		}
		rec := journal.Record{
			Kind: journal.KindState, Job: j.id, State: string(j.state), Error: j.err,
			TimeMs: j.finished.UnixMilli(),
		}
		if j.state == StateDone && j.result != nil {
			if res, rerr := json.Marshal(j.result); rerr == nil {
				rec.Result = res
			}
		}
		live = append(live, rec)
	}
	s.mu.Unlock()
	if err := s.journal.Rotate(live); err != nil {
		s.reg.Counter("serd/journal/write_failures").Inc()
		if s.cfg.Logger != nil {
			s.cfg.Logger.Warn("journal rotation failed", "error", err.Error())
		}
		return
	}
	s.reg.Counter("serd/journal/rotations").Inc()
}

// Start launches the worker pool (and, with JobTTL set, the retention
// sweeper). Call once, after any Recover.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				it, ok := s.sched.Pop()
				if !ok {
					return
				}
				s.runJob(it.(*job))
			}
		}()
	}
	if s.cfg.JobTTL > 0 {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.sweepLoop()
		}()
	}
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// Submit validates and admits a job. It returns the queued job's status,
// or ErrDraining / ErrQueueFull when admission is shut, or a 400-class
// validation error (*RequestError / *finser.ConfigError).
func (s *Server) Submit(req JobRequest) (JobStatus, error) {
	st, _, err := s.SubmitIdem(req, "")
	return st, err
}

// SubmitIdem is Submit with an idempotency key: when the key (or, on a
// durable server, its default — the flow fingerprint) matches a job that
// is queued, running, or done, the original job's status is returned with
// deduped=true instead of admitting a double-run. A client whose first
// submission's response was lost to a crash retries safely: it lands on
// the same job and, once that finishes, on its result. Failed and canceled
// originals do not dedupe — resubmitting one is an explicit "try again"
// (it still resumes from the original's checkpoint).
func (s *Server) SubmitIdem(req JobRequest, idemKey string) (JobStatus, bool, error) {
	return s.SubmitTenant(req, idemKey, "")
}

// SubmitTenant is SubmitIdem on behalf of a named tenant ("" selects
// qos.DefaultTenant). The tenant is policed by the per-tenant rate limit
// and in-flight quota (typed *qos.RateError / *qos.QuotaError — HTTP 429,
// the tenant is over budget) before the global capacity check (ErrQueueFull
// — HTTP 503, the server is full), and the job lands in the tenant ×
// class fair-queue flow.
func (s *Server) SubmitTenant(req JobRequest, idemKey, tenant string) (JobStatus, bool, error) {
	if tenant == "" {
		tenant = qos.DefaultTenant
	}
	cfg, err := req.flowConfig()
	if err != nil {
		return JobStatus{}, false, err
	}
	if err := cfg.Validate(); err != nil {
		return JobStatus{}, false, err
	}
	// A distributed run is bit-identical to single-node only under a pinned
	// worker count (the per-bin RNG substream split depends on it), so
	// coordinator mode refuses the "whatever GOMAXPROCS is" default.
	if s.cfg.Distributor != nil && req.Workers <= 0 {
		return JobStatus{}, false, &RequestError{Field: "workers",
			Reason: "must be pinned (> 0) for distributed execution: the Monte-Carlo substream split depends on it"}
	}
	// The guard configuration is the server's policy, not the client's:
	// attach it at admission so every execution path (including injected
	// runners) sees it.
	cfg.Guard = s.cfg.Guard
	cfg.GuardLog = s.cfg.GuardLog

	// The fingerprint keys the job's checkpoint file, serves as the default
	// idempotency key, and correlates its log lines, metrics, and event
	// stream; cfg already validated, so this cannot fail — but a failure
	// only costs the correlation key.
	fingerprint := ""
	if fp, ferr := finser.FlowFingerprint(cfg, []float64{cfg.Vdd}); ferr == nil {
		fingerprint = fp
	}
	if idemKey == "" && s.journal != nil {
		idemKey = fingerprint
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if idemKey != "" {
		if id, ok := s.idem[idemKey]; ok {
			if j, ok := s.jobs[id]; ok && j.state != StateFailed && j.state != StateCanceled {
				s.reg.Counter("serd/jobs/deduped").Inc()
				j.logInfo("submission deduped to existing job", "idempotency_key", idemKey)
				return j.status(), true, nil
			}
		}
	}
	if s.draining {
		s.reg.Counter("serd/jobs/rejected_draining").Inc()
		return JobStatus{}, false, ErrDraining
	}
	// Per-tenant policing before global capacity: an over-budget tenant
	// gets its typed 429 even when the server has room, and never burns a
	// queue slot. Rate first (cheap, burns a token only on success), then
	// the in-flight quota.
	class := req.class()
	if err := s.limiter.Admit(tenant); err != nil {
		s.reg.Counter(obs.Labeled("serd/tenant/rejected_rate", "tenant", tenant)).Inc()
		return JobStatus{}, false, err
	}
	if err := s.limiter.Acquire(tenant); err != nil {
		s.reg.Counter(obs.Labeled("serd/tenant/rejected_quota", "tenant", tenant)).Inc()
		return JobStatus{}, false, err
	}
	s.nextID++
	jctx, jcancel := context.WithCancel(s.baseCtx)
	j := &job{
		id:          fmt.Sprintf("job-%d", s.nextID),
		req:         req,
		cfg:         cfg,
		state:       StateQueued,
		submitted:   time.Now(),
		cancel:      jcancel,
		ctx:         jctx,
		fingerprint: fingerprint,
		idemKey:     idemKey,
		tenant:      tenant,
		class:       class,
		cost:        estimateCost(req),
	}
	if perr := s.sched.Push(tenant, class, j.cost, j); perr != nil {
		// Load shedding: a full queue refuses immediately rather than
		// accumulating unbounded goroutines or latency.
		s.nextID--
		jcancel()
		s.limiter.Release(tenant)
		s.reg.Counter("serd/jobs/rejected_full").Inc()
		if errors.Is(perr, qos.ErrClosed) {
			return JobStatus{}, false, ErrDraining
		}
		return JobStatus{}, false, ErrQueueFull
	}
	j.events = events.NewStream(s.cfg.EventBuffer, func() {
		s.reg.Counter("serd/events/dropped_subscribers").Inc()
	})
	j.log = obs.JobLogger(s.cfg.Logger, j.id, j.fingerprint)
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	if idemKey != "" {
		s.idem[idemKey] = j.id
	}
	if reqJSON, jerr := json.Marshal(req); jerr == nil {
		s.journalAppend(journal.Record{
			Kind: journal.KindSubmitted, Job: j.id, Request: reqJSON,
			Fingerprint: j.fingerprint, IdempotencyKey: idemKey,
			Tenant: tenant, Class: class,
		})
	}
	s.reg.Counter("serd/jobs/submitted").Inc()
	s.reg.Counter(obs.Labeled("serd/tenant/jobs_submitted", "tenant", tenant, "class", class)).Inc()
	s.reg.Gauge("serd/queue/depth").Set(float64(s.sched.Len()))
	s.publish(j, events.Event{Type: events.TypeState, State: string(StateQueued)})
	j.logInfo("job queued", "vdd", cfg.Vdd, "tenant", tenant, "class", class, "queue_depth", s.sched.Len())
	if class == qos.ClassInteractive && s.cfg.Preempt && s.cfg.CheckpointDir != "" {
		s.maybePreemptLocked(j)
	}
	return j.status(), false, nil
}

// maybePreemptLocked asks the longest-running batch job to yield its
// worker when an interactive job has just been queued and every worker is
// busy. The victim's per-run context is cancelled with errPreempted — its
// flow unwinds cooperatively at the next checkpoint boundary (each
// completed FIT bin is already saved), requeues, and later resumes
// bit-identically. Interactive and already-preempting jobs are never
// victims. Callers hold s.mu.
func (s *Server) maybePreemptLocked(trigger *job) {
	if s.running.Load() < int64(s.cfg.Workers) {
		return // a worker is (or is about to be) free; WFQ order suffices
	}
	var victim *job
	for _, id := range s.order {
		c := s.jobs[id]
		if c.state != StateRunning || c.class != qos.ClassBatch ||
			c.preemptPending || c.preemptCancel == nil {
			continue
		}
		if victim == nil || c.started.Before(victim.started) {
			victim = c
		}
	}
	if victim == nil {
		return
	}
	victim.preemptPending = true
	victim.preemptCancel(errPreempted)
	s.reg.Counter("serd/jobs/preempt_requested").Inc()
	victim.logInfo("preemption requested", "for_job", trigger.id, "for_tenant", trigger.tenant)
}

// estimateCost is the WFQ cost estimate for one job — relative Monte-Carlo
// work units (bins × iterations, plus characterization samples). Precision
// is unimportant: the fair queue only needs costs to scale with runtime so
// a cheap interactive lookup's virtual finish tag stays far below a
// million-particle batch job's.
func estimateCost(req JobRequest) float64 {
	samples := req.Samples
	if samples <= 0 {
		samples = 1000
	}
	iters := req.ItersPerBin
	if iters <= 0 {
		iters = 50000
	}
	alphaBins := req.AlphaBins
	if alphaBins <= 0 {
		alphaBins = 12
	}
	protonBins := req.ProtonBins
	if protonBins <= 0 {
		protonBins = 16
	}
	return float64(samples) + float64(iters)*float64(alphaBins+protonBins)
}

// publish stamps the job ID onto e and publishes it to the job's stream,
// counting accepted events on the registry.
func (s *Server) publish(j *job, e events.Event) {
	e.Job = j.id
	if j.events.Publish(e) != 0 {
		s.reg.Counter("serd/events/published").Inc()
	}
}

// journalAppend records one lifecycle transition in the durable journal,
// stamping the wall time. Failures never propagate to the job: they flip
// the server into degraded-durability mode (counted, flagged on /readyz,
// warned once per episode) while serving continues; the first later
// success — disk freed, device back — restores healthy mode. No-op
// without a journal. Safe to call with or without s.mu held: the journal
// has its own lock and never takes the server's.
func (s *Server) journalAppend(rec journal.Record) {
	if s.journal == nil {
		return
	}
	rec.TimeMs = time.Now().UnixMilli()
	if err := s.journal.Append(rec); err != nil {
		s.reg.Counter("serd/journal/write_failures").Inc()
		s.reg.Gauge("serd/journal/degraded").Set(1)
		msg := err.Error()
		if s.degradedErr.Swap(&msg) == nil && s.cfg.Logger != nil {
			s.cfg.Logger.Warn("journal write failed: durability degraded, serving continues",
				"error", msg)
		}
		return
	}
	s.reg.Counter("serd/journal/appends").Inc()
	if s.degradedErr.Swap(nil) != nil {
		s.reg.Gauge("serd/journal/degraded").Set(0)
		if s.cfg.Logger != nil {
			s.cfg.Logger.Info("journal write succeeded: durability restored")
		}
	}
}

// DegradedDurability returns the latest journal write failure while the
// server is serving without durability, or "" when the journal is healthy
// (or absent).
func (s *Server) DegradedDurability() string {
	if msg := s.degradedErr.Load(); msg != nil {
		return *msg
	}
	return ""
}

// latency returns one of the serving-layer latency histograms, with
// exponential buckets from 1 ms to ~9 min.
func (s *Server) latency(name string) *obs.Histogram {
	return s.reg.Histogram("serd/latency/"+name+"_seconds", obs.ExpBuckets(0.001, 2, 20))
}

// Status returns one job's state.
func (s *Server) Status(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return j.status(), nil
}

// List returns every job in admission order.
func (s *Server) List() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].status())
	}
	return out
}

// Cancel cancels a job: a queued job is finalized immediately (workers
// skip it), a running one has its context cancelled and finalizes when the
// flow unwinds. Cancelling a terminal job is a no-op.
func (s *Server) Cancel(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	switch j.state {
	case StateQueued:
		j.cancel()
		s.finalizeLocked(j, StateCanceled, "canceled while queued")
	case StateRunning:
		j.cancel()
	}
	return j.status(), nil
}

// Draining reports whether admission is shut.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain gracefully shuts the server down: stop admitting (new submissions
// see ErrDraining, /readyz flips to 503), cancel every queued and running
// job, and wait for the workers to unwind. Running flows stop
// cooperatively within milliseconds; their completed FIT bins are already
// checkpointed, so a resubmission after restart resumes bit-identically.
// The context bounds the wait.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	// Close after draining is visible: admission checks draining under
	// s.mu, and preemption requeues do too, so nothing pushes after Close.
	// Workers keep popping the backlog (each popped job finalizes as
	// canceled once its context is cut below), then exit on the closed
	// scheduler.
	s.sched.Close()
	s.stop() // cancels every job context derived from baseCtx

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		// Clean shutdown: every in-flight cancellation has journaled its
		// terminal record, so the journal can close at a frame boundary.
		if s.journal != nil {
			s.journal.Close()
		}
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain: %w", ctx.Err())
	}
}

// RetryAfter returns the 503 back-off hint.
func (s *Server) RetryAfter() time.Duration { return s.cfg.RetryAfter }

// runJob drives one admitted job through the pipeline and finalizes it.
func (s *Server) runJob(j *job) {
	s.mu.Lock()
	if j.state != StateQueued { // canceled while queued
		s.mu.Unlock()
		return
	}
	if err := j.ctx.Err(); err != nil { // drain landed before pickup
		s.finalizeLocked(j, StateCanceled, "canceled before start: server draining")
		s.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	// The per-run context layers under the job context: a preemption cuts
	// only this run (the job requeues), while j.cancel and drains cut
	// j.ctx and stay terminal.
	runCtx, preemptCancel := context.WithCancelCause(j.ctx)
	j.preemptCancel = preemptCancel
	j.preemptPending = false
	resumedRun := j.preempts > 0
	s.reg.Gauge("serd/queue/depth").Set(float64(s.sched.Len()))
	s.reg.Gauge("serd/jobs/running").Set(float64(s.running.Add(1)))
	queueWait := j.started.Sub(j.submitted)
	s.mu.Unlock()
	defer func() { s.reg.Gauge("serd/jobs/running").Set(float64(s.running.Add(-1))) }()
	defer preemptCancel(nil)
	s.latency("queue_wait").Observe(queueWait.Seconds())
	s.journalAppend(journal.Record{Kind: journal.KindState, Job: j.id, State: string(StateRunning)})
	s.publish(j, events.Event{Type: events.TypeState, State: string(StateRunning)})
	if resumedRun {
		s.reg.Counter("serd/jobs/preempt_resumed").Inc()
		s.publish(j, events.Event{Type: events.TypeResumed, State: string(StateRunning)})
		j.logInfo("job resuming after preemption", "preemptions", j.preempts)
	}
	j.logInfo("job running", "queue_wait_seconds", queueWait.Seconds())
	s.instrumentFlow(j)

	ctx := runCtx
	timeout := s.cfg.JobTimeout
	if j.req.TimeoutSeconds > 0 {
		timeout = time.Duration(j.req.TimeoutSeconds * float64(time.Second))
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	var res *JobResult
	var err error
	switch {
	case s.cfg.Runner != nil:
		res, err = s.cfg.Runner(ctx, j.cfg)
	case s.cfg.Distributor != nil:
		res, err = s.runDistributed(ctx, j)
	default:
		res, err = s.runPipeline(ctx, j)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	j.preemptCancel = nil
	preempted := j.preemptPending
	j.preemptPending = false
	switch {
	case err == nil:
		// The flow can finish before noticing a pending preemption — a
		// completed job always wins over a requeue.
		j.result = res
		s.finalizeLocked(j, StateDone, "")
	case preempted && errors.Is(err, context.Canceled) && j.ctx.Err() == nil && !s.draining:
		// Preemption requeue: only when the yield's cancellation (and not a
		// user cancel, drain, or timeout) unwound the flow. Completed bins
		// are checkpointed, so the resume is bit-identical.
		j.state = StateQueued
		j.preempts++
		s.reg.Counter("serd/jobs/preempted").Inc()
		s.reg.Counter(obs.Labeled("serd/tenant/jobs_preempted", "tenant", j.tenant)).Inc()
		s.journalAppend(journal.Record{Kind: journal.KindState, Job: j.id, State: string(StateQueued)})
		s.publish(j, events.Event{Type: events.TypePreempted, State: string(StateQueued)})
		s.publish(j, events.Event{Type: events.TypeState, State: string(StateQueued)})
		j.logInfo("job preempted at checkpoint boundary", "preemptions", j.preempts)
		s.sched.ForcePush(j.tenant, j.class, j.cost, j)
	case errors.Is(err, context.Canceled):
		msg := "canceled"
		if s.draining {
			msg = "canceled: server draining (resubmit to resume from checkpoint)"
		}
		s.finalizeLocked(j, StateCanceled, msg)
	case errors.Is(err, context.DeadlineExceeded):
		s.finalizeLocked(j, StateFailed, fmt.Sprintf("deadline %v exceeded: %v", timeout, err))
	default:
		s.finalizeLocked(j, StateFailed, err.Error())
	}
}

// instrumentFlow wires the job's flow callbacks to its event stream, so
// per-bin FIT results, guard violations, and throttled progress reach
// streaming clients as they happen. Both the production pipeline and
// injected test runners run under the instrumented config.
func (s *Server) instrumentFlow(j *job) {
	j.cfg.BinDone = func(be finser.BinEvent) {
		ev := events.Event{
			Type: events.TypeBin, Stage: be.Stage, Bin: be.Bin, Bins: be.Bins,
			EnergyMeV: be.Point.EnergyMeV, POF: be.Point.Tot, POFStdErr: be.Point.TotStdErr,
			FITSoFar: be.FITSoFar, Resumed: be.Resumed,
		}
		if be.Adaptive {
			ev.RelErr = be.Conv.RelErr
			ev.Tol = be.Conv.Tol
			ev.Converged = be.Conv.Converged
			ev.Batches = be.Conv.Batches
			ev.StrikesSaved = be.Conv.StrikesSaved
		}
		s.publish(j, ev)
	}
	j.cfg.GuardEvent = func(v finser.GuardViolation) {
		s.publish(j, events.Event{
			Type: events.TypeViolation, Stage: v.Stage,
			Invariant: v.Invariant, Detail: v.Detail, Value: v.Value,
		})
	}
	prev := j.cfg.Progress
	j.cfg.Progress = func(p finser.Progress) {
		s.publish(j, events.Event{
			Type: events.TypeProgress, Stage: p.Stage,
			Done: p.Done, Total: p.Total, Rate: p.Rate,
		})
		if prev != nil {
			prev(p)
		}
	}
}

// finalizeLocked moves a job to a terminal state; callers hold s.mu.
func (s *Server) finalizeLocked(j *job, state JobState, msg string) {
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.err = msg
	j.finished = time.Now()
	s.limiter.Release(j.tenant)
	tenant, class := j.tenant, j.class
	if tenant == "" {
		tenant = qos.DefaultTenant
	}
	if class == "" {
		class = qos.ClassBatch
	}
	s.reg.Counter(obs.Labeled("serd/tenant/jobs_"+string(state), "tenant", tenant, "class", class)).Inc()
	switch state {
	case StateDone:
		s.reg.Counter("serd/jobs/completed").Inc()
		if !j.started.IsZero() {
			s.latency("run").Observe(j.finished.Sub(j.started).Seconds())
		}
		s.latency("admission_to_done").Observe(j.finished.Sub(j.submitted).Seconds())
		s.reg.Histogram(
			obs.Labeled("serd/tenant/admission_to_done_seconds", "tenant", tenant, "class", class),
			obs.ExpBuckets(0.001, 2, 20),
		).Observe(j.finished.Sub(j.submitted).Seconds())
	case StateFailed:
		s.reg.Counter("serd/jobs/failed").Inc()
	case StateCanceled:
		s.reg.Counter("serd/jobs/canceled").Inc()
	}
	// The terminal record carries the result, so a post-crash replay can
	// restore a finished job without re-running it.
	rec := journal.Record{Kind: journal.KindState, Job: j.id, State: string(state), Error: msg}
	if state == StateDone && j.result != nil {
		if res, rerr := json.Marshal(j.result); rerr == nil {
			rec.Result = res
		}
	}
	s.journalAppend(rec)
	// Terminal event, then close: subscribers drain the final transition
	// and see a clean end-of-stream.
	s.publish(j, events.Event{Type: events.TypeState, State: string(state), Error: msg})
	j.events.Close()
	j.logInfo("job "+string(state),
		"total_seconds", j.finished.Sub(j.submitted).Seconds(),
		"retries", j.retries.Load(), "error", msg)
}

// runPipeline is the production staged flow: characterize, then each
// species' FIT stage behind its circuit breaker, every stage under the
// retry policy, all against the job's (possibly resumed) checkpoint.
func (s *Server) runPipeline(ctx context.Context, j *job) (*JobResult, error) {
	cfg := j.cfg
	cfg.Obs = s.reg
	cfg.Faults = s.cfg.Faults
	if s.cfg.CheckpointDir != "" {
		store, resumed, err := s.openCheckpoint(cfg)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: %w", err)
		}
		cfg.Checkpoint = store
		s.mu.Lock()
		j.resumed = resumed
		s.mu.Unlock()
	}

	var char *finser.Characterization
	if err := s.retryStage(ctx, j, "characterize", func(ctx context.Context) error {
		c, err := finser.CharacterizeFlowCtx(ctx, cfg)
		if err != nil {
			return err
		}
		char = c
		return nil
	}); err != nil {
		return nil, fmt.Errorf("characterize stage: %w", err)
	}

	res := &JobResult{Vdd: cfg.Vdd}
	dst := map[string]*finser.FITResult{"alpha": &res.Alpha, "proton": &res.Proton}
	for _, st := range speciesStages {
		br := s.breakerFor(j.tenant, st.name)
		sp := st.sp
		out := dst[st.name]
		if err := s.retryStage(ctx, j, st.name, func(ctx context.Context) error {
			return br.Do(ctx, func(ctx context.Context) error {
				fit, err := finser.SpeciesFITCtx(ctx, cfg, char, sp)
				if err != nil {
					return err
				}
				*out = fit
				return nil
			})
		}); err != nil {
			return nil, fmt.Errorf("%s stage: %w", st.name, err)
		}
	}
	return res, nil
}

// runDistributed drives one job through the coordinator: same checkpoint
// store and telemetry stream as the local pipeline, but execution is
// sharded across the worker pool. Shard lifecycle transitions become
// TypeShard events on the job's SSE stream; a *dist.PartialError surfaces
// as a failed job whose error names the missing bins.
func (s *Server) runDistributed(ctx context.Context, j *job) (*JobResult, error) {
	cfg := j.cfg
	cfg.Obs = s.reg
	cfg.Faults = s.cfg.Faults
	if s.cfg.CheckpointDir != "" {
		store, resumed, err := s.openCheckpoint(cfg)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: %w", err)
		}
		cfg.Checkpoint = store
		s.mu.Lock()
		j.resumed = resumed
		s.mu.Unlock()
	}
	emit := func(ev dist.ShardEvent) {
		e := events.Event{
			Type: events.TypeShard, State: ev.Kind,
			Shard: ev.Shard.String(), Worker: ev.Worker, Attempt: ev.Attempt,
			Resumed: ev.Kind == dist.EventResumed,
		}
		if ev.Err != nil {
			e.Error = ev.Err.Error()
		}
		s.publish(j, e)
		if ev.Kind == dist.EventRetried || ev.Kind == dist.EventFailed {
			j.logInfo("shard "+ev.Kind, "shard", ev.Shard.String(),
				"worker", ev.Worker, "attempt", ev.Attempt, "error", e.Error)
		}
	}
	res, err := s.cfg.Distributor.Run(ctx, cfg, emit)
	if err != nil {
		return nil, err
	}
	return &JobResult{Vdd: res.Vdd, Alpha: res.Alpha, Proton: res.Proton}, nil
}

// openCheckpoint opens (or creates) the job's fingerprint-keyed checkpoint
// file, returning the store and how many stages it restored. An unreadable
// or mismatched existing file is replaced rather than failing the job — a
// stale checkpoint must never block fresh work.
func (s *Server) openCheckpoint(cfg finser.FlowConfig) (*finser.CheckpointStore, int, error) {
	vdds := []float64{cfg.Vdd}
	fp, err := finser.FlowFingerprint(cfg, vdds)
	if err != nil {
		return nil, 0, err
	}
	path := filepath.Join(s.cfg.CheckpointDir, "ser-"+fp[:16]+".ck.json")
	if _, serr := os.Stat(path); serr == nil {
		if store, rerr := finser.ResumeCheckpoint(path, cfg, vdds); rerr == nil {
			return store, len(store.Stages()), nil
		}
	}
	store, err := finser.CreateCheckpoint(path, cfg, vdds)
	if err != nil {
		return nil, 0, err
	}
	return store, 0, nil
}

// retryStage runs one pipeline stage under the server's retry policy,
// counting retries on the job and the registry.
func (s *Server) retryStage(ctx context.Context, j *job, stage string, op func(context.Context) error) error {
	pol := s.cfg.Retry
	if pol.Retryable == nil {
		pol.Retryable = stageRetryable
	}
	user := pol.OnRetry
	pol.OnRetry = func(attempt int, err error, delay time.Duration) {
		j.retries.Add(1)
		s.reg.Counter("serd/retries").Inc()
		s.reg.Counter("serd/retries/" + stage).Inc()
		if user != nil {
			user(attempt, err, delay)
		}
	}
	return retry.Do(ctx, pol, op)
}

// stageRetryable is the server's transient/permanent classifier:
// configuration mistakes fail fast (they map to 400 at admission, and to a
// non-retryable failure if one slips through to run time); context errors
// follow the caller; everything else — checkpoint I/O, injected faults,
// open breakers — is transient.
func stageRetryable(err error) bool {
	var ce *finser.ConfigError
	if errors.As(err, &ce) {
		return false
	}
	return retry.Retryable(err)
}

// ---- HTTP layer ----

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
	// RetryAfterSeconds mirrors the Retry-After header on 503s.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
}

// writeUnavailable writes a 503 with the Retry-After hint — the load-shed
// contract: callers back off and resubmit instead of piling on.
func (s *Server) writeUnavailable(w http.ResponseWriter, msg string) {
	secs := s.retryAfterHint()
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: msg, RetryAfterSeconds: secs})
}

// retryAfterHint is the load-aware 503 back-off, in whole seconds: the
// estimated time for the worker pool to drain the current backlog (queue
// depth + running jobs, at the observed mean job runtime), clamped to
// [1s, RetryAfterMax]. Before any job has completed — no runtime signal —
// it falls back to the configured RetryAfter constant, preserving the
// original header contract.
func (s *Server) retryAfterHint() int {
	secs := int(s.cfg.RetryAfter / time.Second)
	if h := s.latency("run"); h.Count() > 0 {
		backlog := float64(s.sched.Len()) + float64(s.running.Load())
		workers := float64(s.cfg.Workers)
		if est := h.Mean() * (backlog + 1) / workers; est > 0 && !math.IsNaN(est) {
			secs = int(math.Ceil(est))
		}
	}
	if max := int(s.cfg.RetryAfterMax / time.Second); secs > max && max > 0 {
		secs = max
	}
	if secs < 1 {
		secs = 1
	}
	return secs
}

// writeTooManyRequests writes a per-tenant 429 — "you are over budget",
// deliberately distinct from the global 503 "the server is full". Rate
// rejections carry a Retry-After naming the token refill time.
func writeTooManyRequests(w http.ResponseWriter, err error, retryAfter time.Duration) {
	secs := 0
	if retryAfter > 0 {
		secs = int(math.Ceil(retryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error(), RetryAfterSeconds: secs})
}

// maxSubmitBytes bounds the submit request body. A job request is a small
// flat JSON object; anything near a megabyte is a mistake or an attack, and
// without the cap a client could stream an unbounded body into the decoder.
const maxSubmitBytes = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxSubmitBytes)
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorBody{Error: fmt.Sprintf("request body exceeds %d bytes", mbe.Limit)})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	st, deduped, err := s.SubmitTenant(req, r.Header.Get("Idempotency-Key"), r.Header.Get("X-Tenant"))
	var rateErr *qos.RateError
	var quotaErr *qos.QuotaError
	switch {
	case err == nil && deduped:
		// The job already exists: 200 (not 202) tells the retrying client
		// nothing new was admitted.
		writeJSON(w, http.StatusOK, st)
	case err == nil:
		writeJSON(w, http.StatusAccepted, st)
	case errors.As(err, &rateErr):
		writeTooManyRequests(w, err, rateErr.RetryAfter)
	case errors.As(err, &quotaErr):
		writeTooManyRequests(w, err, 0)
	case errors.Is(err, ErrQueueFull):
		s.writeUnavailable(w, err.Error())
	case errors.Is(err, ErrDraining):
		s.writeUnavailable(w, err.Error())
	default:
		// Validation errors are the caller's fault: 400, not 500, and
		// never retried server-side.
		var ce *finser.ConfigError
		var re *RequestError
		if errors.As(err, &ce) || errors.As(err, &re) {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.List())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// buildInfo is the build identity /healthz reports — what exactly is
// running, resolved once at startup from the binary's embedded metadata.
type buildInfo struct {
	GoVersion string `json:"go_version,omitempty"`
	Module    string `json:"module,omitempty"`
	Version   string `json:"version,omitempty"`
	// Revision/BuildTime/Modified come from the VCS stamp (present when the
	// binary was built inside a git checkout).
	Revision  string `json:"vcs_revision,omitempty"`
	BuildTime string `json:"vcs_time,omitempty"`
	Modified  bool   `json:"vcs_modified,omitempty"`
}

func readBuildInfo() buildInfo {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return buildInfo{}
	}
	out := buildInfo{
		GoVersion: bi.GoVersion,
		Module:    bi.Main.Path,
		Version:   bi.Main.Version,
	}
	for _, kv := range bi.Settings {
		switch kv.Key {
		case "vcs.revision":
			out.Revision = kv.Value
		case "vcs.time":
			out.BuildTime = kv.Value
		case "vcs.modified":
			out.Modified = kv.Value == "true"
		}
	}
	return out
}

// healthBody is the /healthz response: liveness plus build identity and
// uptime, so one probe answers "is it up" and "what exactly is running".
type healthBody struct {
	Status        string    `json:"status"`
	UptimeSeconds float64   `json:"uptime_seconds"`
	Build         buildInfo `json:"build"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Liveness: the process serves; draining or saturated still counts.
	writeJSON(w, http.StatusOK, healthBody{
		Status:        "ok",
		UptimeSeconds: time.Since(s.started).Seconds(),
		Build:         s.build,
	})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		s.writeUnavailable(w, "draining")
		return
	}
	// Coordinator mode: readiness means the worker pool can make progress.
	// A pool with every breaker open would only queue jobs to fail, so
	// report 503 until a worker's half-open probe succeeds.
	if s.cfg.Distributor != nil {
		if err := s.cfg.Distributor.Ready(); err != nil {
			s.writeUnavailable(w, err.Error())
			return
		}
	}
	// Degraded durability is a warning, not an outage: the server still
	// accepts and runs jobs, but a crash in this window would lose
	// unjournaled lifecycle records, so orchestrators get the signal.
	if msg := s.DegradedDurability(); msg != "" {
		writeJSON(w, http.StatusOK, map[string]string{
			"status":     "degraded",
			"durability": msg,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.reg.WritePrometheus(w, "finser") // nil-safe: empty body without a registry
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if s.reg == nil {
		w.Write([]byte("{}\n"))
		return
	}
	s.reg.WriteJSON(w)
}
