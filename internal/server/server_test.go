package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"finser"
	"finser/internal/breaker"
	"finser/internal/faultinject"
	"finser/internal/obs"
	"finser/internal/retry"
)

// postJob submits a request body and returns the decoded status (or error
// body) plus the raw response.
func postJob(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// getStatus polls one job.
func getStatus(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatalf("GET /jobs/%s: %v", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s status = %d", id, resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	return st
}

// waitState polls until the job reaches a target state or times out.
func waitState(t *testing.T, ts *httptest.Server, id string, want JobState) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached %s (err=%q), want %s", id, st.State, st.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return JobStatus{}
}

// blockingRunner returns a Runner that reports entry on started and holds
// each job until release is closed (or its context is cut).
func blockingRunner(started chan<- string, release <-chan struct{}) func(context.Context, finser.FlowConfig) (*JobResult, error) {
	return func(ctx context.Context, cfg finser.FlowConfig) (*JobResult, error) {
		started <- "run"
		select {
		case <-release:
			return &JobResult{Vdd: cfg.Vdd}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// TestQueueSaturationSheds503 checks the load-shedding contract: with one
// worker busy and the one queue slot taken, the next submission is refused
// with 503 and a positive Retry-After, and the rejection is counted.
func TestQueueSaturationSheds503(t *testing.T) {
	reg := obs.NewRegistry()
	started := make(chan string, 4)
	release := make(chan struct{})
	s := New(Config{
		QueueDepth: 1,
		Workers:    1,
		RetryAfter: 7 * time.Second,
		Metrics:    reg,
		Runner:     blockingRunner(started, release),
	})
	s.Start()
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Job 1 occupies the worker (wait until it is actually running so the
	// queue slot is provably free for job 2).
	resp, _ := postJob(t, ts, `{"vdd": 0.7}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 1 status = %d, want 202", resp.StatusCode)
	}
	<-started

	// Job 2 takes the single queue slot.
	resp, _ = postJob(t, ts, `{"vdd": 0.7}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 2 status = %d, want 202", resp.StatusCode)
	}

	// Job 3 must be shed.
	resp, body := postJob(t, ts, `{"vdd": 0.7}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("job 3 status = %d, want 503 (body %s)", resp.StatusCode, body)
	}
	ra := resp.Header.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil || secs <= 0 {
		t.Errorf("Retry-After = %q, want positive integer seconds", ra)
	}
	if secs != 7 {
		t.Errorf("Retry-After = %d, want the configured 7", secs)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || !strings.Contains(eb.Error, "queue full") {
		t.Errorf("503 body = %s, want queue-full error JSON", body)
	}
	if got := reg.Counter("serd/jobs/rejected_full").Value(); got != 1 {
		t.Errorf("rejected_full = %d, want 1", got)
	}

	close(release)
	waitState(t, ts, "job-1", StateDone)
	waitState(t, ts, "job-2", StateDone)
	if got := reg.Counter("serd/jobs/completed").Value(); got != 2 {
		t.Errorf("completed = %d, want 2", got)
	}
}

// TestJobLifecycleAndCancel exercises the state machine: cancel a queued
// job (the worker must skip it), cancel a running job (its context is cut),
// and run a third job to completion.
func TestJobLifecycleAndCancel(t *testing.T) {
	started := make(chan string, 4)
	release := make(chan struct{})
	s := New(Config{
		QueueDepth: 4,
		Workers:    1,
		Runner:     blockingRunner(started, release),
	})
	s.Start()
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postJob(t, ts, `{"vdd": 0.7}`) // job-1: will run and block
	<-started
	postJob(t, ts, `{"vdd": 0.8}`) // job-2: queued behind it

	// Cancel the queued job: terminal immediately, and the worker must
	// never start it.
	resp, err := http.Post(ts.URL+"/jobs/job-2/cancel", "application/json", nil)
	if err != nil {
		t.Fatalf("cancel: %v", err)
	}
	resp.Body.Close()
	if st := getStatus(t, ts, "job-2"); st.State != StateCanceled {
		t.Fatalf("queued job after cancel = %s, want canceled", st.State)
	}

	// Cancel the running job: its context unwinds the runner.
	http.Post(ts.URL+"/jobs/job-1/cancel", "application/json", nil)
	st := waitState(t, ts, "job-1", StateCanceled)
	if st.FinishedAt == nil || st.StartedAt == nil {
		t.Errorf("canceled running job missing timestamps: %+v", st)
	}

	// A fresh job still completes; the skipped job-2 must not have
	// consumed a runner invocation.
	postJob(t, ts, `{"vdd": 0.9}`)
	<-started
	close(release)
	st = waitState(t, ts, "job-3", StateDone)
	if st.Result == nil || st.Result.Vdd != 0.9 {
		t.Errorf("job-3 result = %+v, want vdd 0.9", st.Result)
	}
	select {
	case <-started:
		t.Error("worker ran a canceled queued job")
	default:
	}

	// Unknown job IDs are 404.
	resp, err = http.Get(ts.URL + "/jobs/job-99")
	if err != nil {
		t.Fatalf("GET unknown: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", resp.StatusCode)
	}
}

// TestValidationErrorsMapTo400 checks the client-fault boundary: malformed
// bodies, unknown patterns, and finser config violations are 400s (never
// 500s, never admitted).
func TestValidationErrorsMapTo400(t *testing.T) {
	s := New(Config{Runner: func(ctx context.Context, cfg finser.FlowConfig) (*JobResult, error) {
		t.Error("invalid job reached the runner")
		return nil, nil
	}})
	s.Start()
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body string
		want string
	}{
		{"missing vdd", `{}`, "Vdd"},
		{"negative samples", `{"vdd": 0.7, "samples": -1}`, "Samples"},
		{"unknown pattern", `{"vdd": 0.7, "pattern": "stripes"}`, "pattern"},
		{"negative timeout", `{"vdd": 0.7, "timeout_seconds": -3}`, "timeout_seconds"},
		{"fit_rel_err too large", `{"vdd": 0.7, "fit_rel_err": 0.6}`, "FITRelErr"},
		{"fit_rel_err negative", `{"vdd": 0.7, "fit_rel_err": -0.05}`, "FITRelErr"},
		{"unknown field", `{"vdd": 0.7, "voltage": 1}`, "voltage"},
		{"syntax", `{"vdd": `, "body"},
	}
	for _, tc := range cases {
		resp, body := postJob(t, ts, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (body %s)", tc.name, resp.StatusCode, body)
		}
		if !strings.Contains(string(body), tc.want) {
			t.Errorf("%s: body %s does not name %q", tc.name, body, tc.want)
		}
	}
	if len(s.List()) != 0 {
		t.Errorf("invalid submissions were admitted: %+v", s.List())
	}
}

// TestRetryBreakerEndToEnd is the fault-injection acceptance test: two
// injected transient failures in the alpha FIT stage trip the alpha
// breaker, the retry policy's backoff outlasts the cooldown, the half-open
// probe completes the stage, and the finished job's FIT numbers are
// byte-identical to an undisturbed run.
func TestRetryBreakerEndToEnd(t *testing.T) {
	req := JobRequest{
		Vdd: 0.7, Samples: 8, ItersPerBin: 200,
		AlphaBins: 2, ProtonBins: 2, Seed: 7, Workers: 1,
	}
	cfg, err := req.flowConfig()
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := finser.RunFlowCtx(context.Background(), cfg)
	if err != nil {
		t.Fatalf("baseline flow: %v", err)
	}

	// With Workers=1 the particle site is hit deterministically: alpha is
	// hits 1..400 (2 bins × 200 iters). Fail attempt 1 at hit 50 and
	// attempt 2 at hit 100 — two consecutive countable failures trip the
	// threshold-2 breaker. The deterministic backoff after attempt 2 is
	// 0.99·(4 ms·2) ≈ 7.9 ms, past the 1 ms cooldown, so attempt 3 is the
	// half-open probe and runs clean.
	faults := faultinject.New()
	faults.ErrorAt(finser.FaultSiteParticle, 50, errors.New("transient device fault A"))
	faults.ErrorAt(finser.FaultSiteParticle, 100, errors.New("transient device fault B"))

	reg := obs.NewRegistry()
	s := New(Config{
		Workers: 1,
		Metrics: reg,
		Faults:  faults,
		Retry: retry.Policy{
			MaxAttempts: 6,
			BaseDelay:   4 * time.Millisecond,
			Rand:        func() float64 { return 0.99 },
		},
		Breaker: breaker.Config{FailureThreshold: 2, Cooldown: time.Millisecond},
	})
	s.Start()
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(req)
	resp, out := postJob(t, ts, string(body))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d: %s", resp.StatusCode, out)
	}
	st := waitState(t, ts, "job-1", StateDone)

	if st.Retries < 2 {
		t.Errorf("Retries = %d, want >= 2 (two injected failures)", st.Retries)
	}
	if got := reg.Counter("serd/breaker/alpha/trips").Value(); got < 1 {
		t.Errorf("alpha breaker trips = %d, want >= 1", got)
	}
	if got := s.breakers["alpha"].State(); got != breaker.Closed {
		t.Errorf("alpha breaker finished %v, want closed (recovered)", got)
	}
	if got := reg.Counter("serd/retries").Value(); got != st.Retries {
		t.Errorf("registry retries = %d, job retries = %d", got, st.Retries)
	}

	// Bit-identical despite the mid-stage failures: the successful
	// attempt reran the whole stage from its deterministic seeds.
	assertResultEqual(t, st.Result, baseline)
}

// TestDrainCheckpointResume is the graceful-shutdown acceptance test: a
// drain mid-FIT cancels the job but leaves a checkpoint, and resubmitting
// the identical request to a fresh server resumes from that checkpoint and
// finishes byte-identical to an uninterrupted run.
func TestDrainCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	req := JobRequest{
		Vdd: 0.7, Samples: 8, ItersPerBin: 1500,
		AlphaBins: 3, ProtonBins: 3, Seed: 7, Workers: 2,
	}
	cfg, err := req.flowConfig()
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := finser.RunFlowCtx(context.Background(), cfg)
	if err != nil {
		t.Fatalf("baseline flow: %v", err)
	}
	body, _ := json.Marshal(req)

	// Server A: trigger fires mid-alpha (hit 2300 of 4500), after the
	// first 1500-particle bin has been checkpointed.
	trigger := make(chan struct{})
	faults := faultinject.New()
	faults.CallAt(finser.FaultSiteParticle, 2300, func() { close(trigger) })
	srvA := New(Config{Workers: 1, CheckpointDir: dir, Faults: faults})
	srvA.Start()
	tsA := httptest.NewServer(srvA.Handler())

	resp, out := postJob(t, tsA, string(body))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d: %s", resp.StatusCode, out)
	}
	select {
	case <-trigger:
	case <-time.After(60 * time.Second):
		t.Fatal("fault trigger never fired")
	}

	// Readiness flips and admission shuts as the drain lands.
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srvA.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	rz, err := http.Get(tsA.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rz.Body.Close()
	if rz.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz during drain = %d, want 503", rz.StatusCode)
	}
	resp, _ = postJob(t, tsA, string(body))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit during drain = %d, want 503", resp.StatusCode)
	}
	st := getStatus(t, tsA, "job-1")
	if st.State != StateCanceled {
		t.Fatalf("drained job state = %s (err=%q), want canceled", st.State, st.Error)
	}
	tsA.Close()

	// The checkpoint file survived the drain and holds FIT progress.
	matches, err := filepath.Glob(filepath.Join(dir, "ser-*.ck.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("checkpoint files = %v (err %v), want exactly one", matches, err)
	}
	raw, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte("fit/")) {
		t.Fatalf("checkpoint %s holds no FIT stage:\n%s", matches[0], raw)
	}

	// Server B: same checkpoint dir, no faults. The identical request is
	// keyed to the same fingerprint, resumes the saved bins, and must land
	// on exactly the uninterrupted numbers.
	srvB := New(Config{Workers: 1, CheckpointDir: dir})
	srvB.Start()
	defer srvB.Drain(context.Background())
	tsB := httptest.NewServer(srvB.Handler())
	defer tsB.Close()

	resp, out = postJob(t, tsB, string(body))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit status = %d: %s", resp.StatusCode, out)
	}
	st = waitState(t, tsB, "job-1", StateDone)
	if st.ResumedStages < 1 {
		t.Errorf("ResumedStages = %d, want >= 1 (checkpoint restored)", st.ResumedStages)
	}
	assertResultEqual(t, st.Result, baseline)
}

// assertResultEqual compares a job result against a baseline FlowResult
// byte-for-byte through JSON — any drift in any FIT bin fails.
func assertResultEqual(t *testing.T, got *JobResult, want *finser.FlowResult) {
	t.Helper()
	if got == nil {
		t.Fatal("job finished without a result")
	}
	for _, c := range []struct {
		name     string
		got, ref finser.FITResult
	}{
		{"alpha", got.Alpha, want.Alpha},
		{"proton", got.Proton, want.Proton},
	} {
		gb, err := json.Marshal(c.got)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := json.Marshal(c.ref)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gb, rb) {
			t.Errorf("%s FIT diverged from baseline:\n got %s\nwant %s", c.name, gb, rb)
		}
	}
	if got.Vdd != want.Vdd {
		t.Errorf("Vdd = %g, want %g", got.Vdd, want.Vdd)
	}
}

// TestDrainRejectsNewSubmits checks the Submit/Drain race discipline
// directly at the API layer (no HTTP): after Drain begins, Submit returns
// ErrDraining, and Drain with an expired context reports it.
func TestDrainRejectsNewSubmits(t *testing.T) {
	s := New(Config{Runner: func(ctx context.Context, cfg finser.FlowConfig) (*JobResult, error) {
		return &JobResult{Vdd: cfg.Vdd}, nil
	}})
	s.Start()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	_, err := s.Submit(JobRequest{Vdd: 0.7})
	if !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit after drain = %v, want ErrDraining", err)
	}
	// Draining twice is idempotent.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

// TestJobTimeoutFails checks the per-request deadline override: a job
// slower than its timeout fails with a deadline message instead of hanging.
func TestJobTimeoutFails(t *testing.T) {
	s := New(Config{
		Runner: func(ctx context.Context, cfg finser.FlowConfig) (*JobResult, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	s.Start()
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, out := postJob(t, ts, `{"vdd": 0.7, "timeout_seconds": 0.05}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, out)
	}
	st := waitState(t, ts, "job-1", StateFailed)
	if !strings.Contains(st.Error, "deadline") {
		t.Errorf("timeout error = %q, want a deadline message", st.Error)
	}
}
