package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"finser/internal/events"
)

// handleEvents streams one job's live telemetry as Server-Sent Events
// (GET /jobs/{id}/events): every event carries its sequence ID as the SSE
// id, so a dropped client reconnects with Last-Event-ID (or ?from=N) and
// replays exactly the events it missed. When the resume point has aged out
// of the job's ring, a synthetic "gap" event reports how many were lost
// before the retained tail replays. The stream ends cleanly when the job
// reaches a terminal state (its stream closes), when the client
// disconnects, or when the subscriber stalls past a full ring of
// unconsumed events (the bus kills it rather than backpressure the job).
// Heartbeat comments keep idle connections alive through proxies.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("%v: %q", ErrUnknownJob, r.PathValue("id"))})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: "server: response writer cannot stream"})
		return
	}

	after := int64(0)
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("server: bad Last-Event-ID %q", v)})
			return
		}
		after = n
	} else if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("server: bad from %q", v)})
			return
		}
		after = n
	}

	sub := j.events.Subscribe(after)
	defer sub.Cancel()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // tell buffering proxies to pass events through
	w.WriteHeader(http.StatusOK)

	if n := sub.Missed(); n > 0 {
		s.reg.Counter("serd/events/replay_missed").Add(n)
		writeSSE(w, events.Event{Type: events.TypeGap, Job: j.id, Missed: n, TimeMs: time.Now().UnixMilli()})
	}
	fl.Flush()

	heartbeat := time.NewTicker(s.cfg.Heartbeat)
	defer heartbeat.Stop()
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case <-heartbeat.C:
			io.WriteString(w, ": heartbeat\n\n")
			fl.Flush()
		case e, open := <-sub.C():
			if !open {
				return // job finished, or the bus dropped this stalled client
			}
			writeSSE(w, e)
			// Drain whatever else is already buffered before flushing, so a
			// burst of bin events costs one flush, not one per event.
			for drained := false; !drained; {
				select {
				case e, open := <-sub.C():
					if !open {
						fl.Flush()
						return
					}
					writeSSE(w, e)
				default:
					drained = true
				}
			}
			fl.Flush()
		}
	}
}

// writeSSE renders one event in SSE framing (id / event / data). Gap events
// carry no sequence ID — clients must not resume from them.
func writeSSE(w io.Writer, e events.Event) {
	data, err := json.Marshal(e)
	if err != nil {
		return // a flat struct of scalars cannot fail to marshal
	}
	if e.Seq > 0 {
		fmt.Fprintf(w, "id: %d\n", e.Seq)
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Type, data)
}
