package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"finser"
	"finser/internal/faultinject"
	"finser/internal/journal"
	"finser/internal/obs"
)

// durableServer builds a journal-enabled server rooted at dir and runs
// Recover, failing the test on any recovery error.
func durableServer(t *testing.T, cfg Config, dir string) (*Server, RecoveryStats) {
	t.Helper()
	cfg.DataDir = dir
	s := New(cfg)
	stats, err := s.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return s, stats
}

// TestCrashRecoveryBitIdentical is the SIGKILL acceptance test: serd dies
// mid-Monte-Carlo with no chance to journal a terminal record, a fresh
// process over the same data dir replays the journal, re-runs the job from
// its checkpoint under the same ID, and lands on FIT numbers bit-identical
// to an uninterrupted run.
func TestCrashRecoveryBitIdentical(t *testing.T) {
	dir := t.TempDir()
	req := JobRequest{
		Vdd: 0.7, Samples: 8, ItersPerBin: 1500,
		AlphaBins: 3, ProtonBins: 3, Seed: 7, Workers: 2,
	}
	cfg, err := req.flowConfig()
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := finser.RunFlowCtx(context.Background(), cfg)
	if err != nil {
		t.Fatalf("baseline flow: %v", err)
	}
	body, _ := json.Marshal(req)

	// Server A: the crash trigger fires mid-alpha (particle 2300 of 4500),
	// after the first 1500-particle bin has been checkpointed.
	trigger := make(chan struct{})
	faults := faultinject.New()
	faults.CallAt(finser.FaultSiteParticle, 2300, func() { close(trigger) })
	srvA, _ := durableServer(t, Config{Workers: 1, Faults: faults}, dir)
	srvA.Start()
	tsA := httptest.NewServer(srvA.Handler())

	resp, out := postJob(t, tsA, string(body))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d: %s", resp.StatusCode, out)
	}
	select {
	case <-trigger:
	case <-time.After(60 * time.Second):
		t.Fatal("fault trigger never fired")
	}
	// Crash-stop: the journal closes before any terminal record can land,
	// so the on-disk state is exactly what kill -9 leaves behind.
	srvA.Kill()
	tsA.Close()

	// Server B: replay finds job-1 in a non-terminal state and requeues it.
	regB := obs.NewRegistry()
	srvB, stats := durableServer(t, Config{Workers: 1, Metrics: regB}, dir)
	if stats.Requeued != 1 || stats.RestoredTerminal != 0 {
		t.Fatalf("recovery stats = %+v, want exactly one requeued job", stats)
	}
	srvB.Start()
	defer srvB.Drain(context.Background())
	tsB := httptest.NewServer(srvB.Handler())
	defer tsB.Close()

	st := waitState(t, tsB, "job-1", StateDone)
	if !st.Recovered {
		t.Error("recovered job not marked Recovered")
	}
	if st.ResumedStages < 1 {
		t.Errorf("ResumedStages = %d, want >= 1 (checkpoint restored)", st.ResumedStages)
	}
	assertResultEqual(t, st.Result, baseline)
	if got := regB.Counter("serd/recovery/requeued").Value(); got != 1 {
		t.Errorf("recovery/requeued = %d, want 1", got)
	}
}

// corruptFrame flips one payload byte of the n-th (0-based) journal frame
// in path, walking frames by their length headers.
func corruptFrame(t *testing.T, path string, n int) {
	t.Helper()
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := 0
	for i := 0; i < n; i++ {
		off += 12 + int(binary.LittleEndian.Uint32(buf[off+4:]))
	}
	buf[off+12] ^= 0xFF
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryCorruptMiddleRecord is the damaged-journal acceptance test:
// one corrupted record in the middle of the log loses exactly that record
// — jobs journaled before and after it recover, the damage is counted on
// the registry, and the server keeps serving.
func TestRecoveryCorruptMiddleRecord(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.wal")
	result, _ := json.Marshal(&JobResult{Vdd: 0.7})
	j, _, _, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range []journal.Record{
		{Kind: journal.KindSubmitted, Job: "job-1", TimeMs: 1000, Request: json.RawMessage(`{"vdd":0.7}`)},
		{Kind: journal.KindState, Job: "job-1", TimeMs: 1001, State: string(StateDone), Result: result},
		{Kind: journal.KindSubmitted, Job: "job-2", TimeMs: 1002, Request: json.RawMessage(`{"vdd":0.8}`)},
		{Kind: journal.KindSubmitted, Job: "job-3", TimeMs: 1003, Request: json.RawMessage(`{"vdd":0.9}`)},
	} {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Damage job-2's submission (frame 2, 0-based): job-1 before it and
	// job-3 after it must both survive.
	corruptFrame(t, path, 2)

	reg := obs.NewRegistry()
	instant := func(ctx context.Context, cfg finser.FlowConfig) (*JobResult, error) {
		return &JobResult{Vdd: cfg.Vdd}, nil
	}
	s, stats := durableServer(t, Config{Workers: 1, Metrics: reg, Runner: instant}, dir)
	if stats.CorruptRecords != 1 {
		t.Fatalf("CorruptRecords = %d, want 1", stats.CorruptRecords)
	}
	if stats.RestoredTerminal != 1 || stats.Requeued != 1 {
		t.Fatalf("stats = %+v, want job-1 restored and job-3 requeued", stats)
	}
	if got := reg.Counter("serd/journal/corrupt_records").Value(); got != 1 {
		t.Errorf("journal/corrupt_records = %d, want 1", got)
	}
	s.Start()
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st := getStatus(t, ts, "job-1")
	if st.State != StateDone || st.Result == nil || st.Result.Vdd != 0.7 {
		t.Errorf("job-1 = %s (result %+v), want done with its journaled result", st.State, st.Result)
	}
	waitState(t, ts, "job-3", StateDone)
	if _, err := s.Status("job-2"); err == nil {
		t.Error("job-2 resurrected from a corrupted submission record")
	}
	// Still serving: a fresh submission admits and finishes.
	resp, out := postJob(t, ts, `{"vdd": 0.65}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-corruption submit = %d: %s", resp.StatusCode, out)
	}
	var fresh JobStatus
	if err := json.Unmarshal(out, &fresh); err != nil {
		t.Fatal(err)
	}
	waitState(t, ts, fresh.ID, StateDone)
}

// TestIdempotentSubmission checks retry dedupe on a durable server: an
// identical resubmission while the original is queued, running, or done
// returns the original job with 200, while failed/canceled originals — and
// any submission on a non-durable server — admit fresh jobs.
func TestIdempotentSubmission(t *testing.T) {
	reg := obs.NewRegistry()
	started := make(chan string, 4)
	release := make(chan struct{})
	s, _ := durableServer(t, Config{
		Workers: 1, QueueDepth: 4, Metrics: reg,
		Runner: blockingRunner(started, release),
	}, t.TempDir())
	s.Start()
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"vdd": 0.7, "seed": 11}`
	resp, out := postJob(t, ts, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d: %s", resp.StatusCode, out)
	}
	<-started

	// Retry while running: 200 (not 202), same job, counted as deduped.
	resp, out = postJob(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry submit = %d: %s, want 200", resp.StatusCode, out)
	}
	var dup JobStatus
	if err := json.Unmarshal(out, &dup); err != nil {
		t.Fatal(err)
	}
	if dup.ID != "job-1" {
		t.Errorf("retry landed on %s, want job-1", dup.ID)
	}
	if got := reg.Counter("serd/jobs/deduped").Value(); got != 1 {
		t.Errorf("jobs/deduped = %d, want 1", got)
	}

	// A canceled original does not dedupe: resubmitting is an explicit
	// "try again".
	resp, out = postJob(t, ts, `{"vdd": 0.8, "seed": 12}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit = %d: %s", resp.StatusCode, out)
	}
	var queued JobStatus
	if err := json.Unmarshal(out, &queued); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	resp, out = postJob(t, ts, `{"vdd": 0.8, "seed": 12}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit after cancel = %d: %s, want a fresh 202", resp.StatusCode, out)
	}
	var again JobStatus
	if err := json.Unmarshal(out, &again); err != nil {
		t.Fatal(err)
	}
	if again.ID == queued.ID {
		t.Errorf("resubmit after cancel deduped to the canceled %s", queued.ID)
	}

	// Retry after completion returns the finished job with its result.
	close(release)
	waitState(t, ts, "job-1", StateDone)
	resp, out = postJob(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry after done = %d: %s, want 200", resp.StatusCode, out)
	}
	var fin JobStatus
	if err := json.Unmarshal(out, &fin); err != nil {
		t.Fatal(err)
	}
	if fin.ID != "job-1" || fin.State != StateDone || fin.Result == nil {
		t.Errorf("retry after done = %s/%s (result %v), want done job-1 with result", fin.ID, fin.State, fin.Result)
	}

	// Back-compat: without a journal, identical submissions stay distinct
	// jobs (the PR 3 drain → resubmit → resume story depends on it).
	plain := New(Config{Workers: 1, Runner: func(ctx context.Context, cfg finser.FlowConfig) (*JobResult, error) {
		return &JobResult{Vdd: cfg.Vdd}, nil
	}})
	plain.Start()
	defer plain.Drain(context.Background())
	a, _ := plain.Submit(JobRequest{Vdd: 0.7})
	b, _ := plain.Submit(JobRequest{Vdd: 0.7})
	if a.ID == b.ID {
		t.Errorf("non-durable server deduped identical submissions to %s", a.ID)
	}

	// An explicit Idempotency-Key dedupes even without a journal.
	c, deduped, err := plain.SubmitIdem(JobRequest{Vdd: 0.7}, "client-key-1")
	if err != nil || deduped {
		t.Fatalf("keyed submit = (%+v, %v, %v)", c, deduped, err)
	}
	d, deduped, err := plain.SubmitIdem(JobRequest{Vdd: 0.7}, "client-key-1")
	if err != nil || !deduped || d.ID != c.ID {
		t.Errorf("keyed retry = (%s, deduped=%v, %v), want dedupe to %s", d.ID, deduped, err, c.ID)
	}
}

// TestJobTTLEvictionAndCheckpointGC checks retention: terminal jobs older
// than JobTTL leave the registry, their orphaned checkpoint files are
// garbage-collected, the evictions are counted and journaled, and a
// restart does not resurrect them.
func TestJobTTLEvictionAndCheckpointGC(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	instant := func(ctx context.Context, cfg finser.FlowConfig) (*JobResult, error) {
		return &JobResult{Vdd: cfg.Vdd}, nil
	}
	s, _ := durableServer(t, Config{
		Workers: 1, Metrics: reg, Runner: instant, JobTTL: time.Hour,
	}, dir)
	s.Start()
	ts := httptest.NewServer(s.Handler())

	resp, out := postJob(t, ts, `{"vdd": 0.7, "seed": 21}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, out)
	}
	st := waitState(t, ts, "job-1", StateDone)

	// Plant the job's checkpoint file (the injected runner skips the
	// checkpointing pipeline) so GC has something real to collect.
	ckPath := s.checkpointPath(st.Fingerprint)
	if ckPath == "" {
		t.Fatal("no checkpoint path for the job fingerprint")
	}
	if err := os.WriteFile(ckPath, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Not yet expired: a sweep now evicts nothing.
	if n := s.evictExpired(time.Now()); n != 0 {
		t.Fatalf("evicted %d jobs before TTL", n)
	}
	// A sweep after the TTL evicts the job, its checkpoint, and its
	// idempotency-table entry.
	if n := s.evictExpired(time.Now().Add(2 * time.Hour)); n != 1 {
		t.Fatalf("evicted %d jobs after TTL, want 1", n)
	}
	if _, err := s.Status("job-1"); err == nil {
		t.Error("evicted job still queryable")
	}
	if _, err := os.Stat(ckPath); !os.IsNotExist(err) {
		t.Errorf("orphaned checkpoint survived GC: %v", err)
	}
	if got := reg.Counter("serd/jobs/evicted").Value(); got != 1 {
		t.Errorf("jobs/evicted = %d, want 1", got)
	}
	if got := reg.Counter("serd/checkpoints/gc").Value(); got != 1 {
		t.Errorf("checkpoints/gc = %d, want 1", got)
	}
	ts.Close()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Restart: the journaled eviction keeps the job dead.
	s2, stats := durableServer(t, Config{Workers: 1, Runner: instant}, dir)
	if stats.Evicted != 1 {
		t.Errorf("restart stats.Evicted = %d, want 1", stats.Evicted)
	}
	if _, err := s2.Status("job-1"); err == nil {
		t.Error("evicted job resurrected by replay")
	}
	s2.Start()
	s2.Drain(context.Background())
}

// TestDegradedDurability checks the disk-failure seam: when journal writes
// start failing, serving continues, the failure is counted and exposed on
// /readyz as degraded (200, not 503), and jobs still run to completion.
func TestDegradedDurability(t *testing.T) {
	reg := obs.NewRegistry()
	instant := func(ctx context.Context, cfg finser.FlowConfig) (*JobResult, error) {
		return &JobResult{Vdd: cfg.Vdd}, nil
	}
	s, _ := durableServer(t, Config{Workers: 1, Metrics: reg, Runner: instant}, t.TempDir())
	s.Start()
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Fail the disk out from under the server: every later append returns
	// a typed *journal.WriteError.
	s.journal.Close()

	resp, out := postJob(t, ts, `{"vdd": 0.7, "seed": 31}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit with dead journal = %d: %s, want 202 (degraded, not down)", resp.StatusCode, out)
	}
	waitState(t, ts, "job-1", StateDone)

	if got := reg.Counter("serd/journal/write_failures").Value(); got < 1 {
		t.Errorf("journal/write_failures = %d, want >= 1", got)
	}
	if msg := s.DegradedDurability(); msg == "" {
		t.Error("DegradedDurability() empty while the journal is dead")
	}
	rz, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer rz.Body.Close()
	if rz.StatusCode != http.StatusOK {
		t.Fatalf("/readyz while degraded = %d, want 200", rz.StatusCode)
	}
	var buf bytes.Buffer
	buf.ReadFrom(rz.Body)
	if !bytes.Contains(buf.Bytes(), []byte(`"degraded"`)) {
		t.Errorf("/readyz body %s does not report degraded durability", buf.Bytes())
	}
}
