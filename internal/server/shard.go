package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sync"

	"finser"
	"finser/internal/dist"
)

// DefaultCharCache is the worker-side characterization cache bound: how
// many distinct job configurations' characterizations a worker keeps warm
// for shard requests. Shards of one job all share one entry, so a small
// bound covers realistic coordinator fan-in.
const DefaultCharCache = 4

// charEntry is one in-flight or completed characterization, keyed by the
// job's flow fingerprint. ready closes when char/err are set.
type charEntry struct {
	ready chan struct{}
	char  *finser.Characterization
	err   error
}

// charCache deduplicates characterization work across the shards of one
// job (singleflight): the first shard request builds, the rest wait on the
// same entry. Failed builds are evicted so the next shard retries.
type charCache struct {
	mu      sync.Mutex
	entries map[string]*charEntry
	order   []string
	bound   int
}

func newCharCache(bound int) *charCache {
	if bound <= 0 {
		bound = DefaultCharCache
	}
	return &charCache{entries: map[string]*charEntry{}, bound: bound}
}

// get returns the entry for key, creating it (and reporting created=true,
// meaning the caller must build and complete it) on first sight.
func (c *charCache) get(key string) (e *charEntry, created bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		return e, false
	}
	e = &charEntry{ready: make(chan struct{})}
	c.entries[key] = e
	c.order = append(c.order, key)
	for len(c.order) > c.bound {
		old := c.order[0]
		c.order = c.order[1:]
		if old != key {
			delete(c.entries, old)
		}
	}
	return e, true
}

// complete publishes the build outcome; failures are evicted immediately so
// a transient characterization fault is not cached forever.
func (c *charCache) complete(key string, e *charEntry, char *finser.Characterization, err error) {
	e.char, e.err = char, err
	close(e.ready)
	if err != nil {
		c.mu.Lock()
		if c.entries[key] == e {
			delete(c.entries, key)
			for i, k := range c.order {
				if k == key {
					c.order = append(c.order[:i], c.order[i+1:]...)
					break
				}
			}
		}
		c.mu.Unlock()
	}
}

// handleShard is the worker half of the distributed protocol: compute the
// POF points of one energy-bin shard. The endpoint is stateless beyond the
// characterization cache — shard identity, seeds, and merge order all live
// with the coordinator — so any worker can serve any shard of any job.
//
// Status mapping: invalid shard messages are 400 (permanent — the request
// is wrong everywhere); a saturated worker sheds with 503 + Retry-After
// (transient — try another worker); compute faults are 500 (transient).
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxSubmitBytes)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{Error: "shard request too large"})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "read body: " + err.Error()})
		return
	}
	req, err := dist.DecodeShardRequest(body)
	if err != nil {
		s.reg.Counter("serd/shards/rejected_invalid").Inc()
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	// Shed before computing: a worker saturated with shards refuses fast so
	// the coordinator's work stealing routes the shard elsewhere.
	select {
	case s.shardSem <- struct{}{}:
		defer func() { <-s.shardSem }()
	default:
		s.reg.Counter("serd/shards/rejected_busy").Inc()
		s.writeUnavailable(w, "server: shard slots busy")
		return
	}
	s.reg.Counter("serd/shards/accepted").Inc()
	s.reg.Gauge("serd/shards/running").Set(float64(len(s.shardSem)))
	defer func() { s.reg.Gauge("serd/shards/running").Set(float64(len(s.shardSem) - 1)) }()

	cfg, err := req.Job.FlowConfig()
	if err != nil { // unreachable after Decode, but keep the 400 contract
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	cfg.Obs = s.reg
	cfg.Faults = s.cfg.Faults
	cfg.Guard = s.cfg.Guard
	cfg.GuardLog = s.cfg.GuardLog

	// The request context dies with the coordinator's connection (a stolen
	// shard's loser stops burning CPU); a server drain cuts it too.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(s.baseCtx, cancel)
	defer stop()

	char, err := s.shardChar(ctx, cfg)
	if err != nil {
		s.shardError(w, req, err)
		return
	}
	sp, _ := dist.Species(req.Shard.Species)
	pts, conv, err := finser.SpeciesShardPOFConvCtx(ctx, cfg, char, sp, req.Shard.Start, req.Shard.End)
	if err != nil {
		s.shardError(w, req, err)
		return
	}
	s.reg.Counter("serd/shards/served").Inc()
	res := dist.ShardResult{
		Fingerprint: req.Fingerprint,
		Shard:       req.Shard,
		Points:      pts,
		Conv:        conv,
		Worker:      r.Host,
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(res)
}

// shardChar returns the job's characterization, building it at most once
// per fingerprint (singleflight under the worker's base context, so one
// disconnected coordinator cannot poison the build for waiting shards).
func (s *Server) shardChar(ctx context.Context, cfg finser.FlowConfig) (*finser.Characterization, error) {
	fp, err := finser.FlowFingerprint(cfg, []float64{cfg.Vdd})
	if err != nil {
		return nil, err
	}
	e, created := s.chars.get(fp)
	if created {
		go func() {
			char, cerr := finser.CharacterizeFlowCtx(s.baseCtx, cfg)
			s.chars.complete(fp, e, char, cerr)
		}()
	}
	select {
	case <-e.ready:
		return e.char, e.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// shardError maps a shard compute failure onto the wire: cancellation is a
// 503 (the worker is draining, or the caller already left — either way the
// shard belongs elsewhere), everything else a 500; both are transient to
// the coordinator.
func (s *Server) shardError(w http.ResponseWriter, req *dist.ShardRequest, err error) {
	s.reg.Counter("serd/shards/errors").Inc()
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		s.writeUnavailable(w, "server: shard "+req.Shard.String()+" interrupted: "+err.Error())
		return
	}
	writeJSON(w, http.StatusInternalServerError, errorBody{Error: "shard " + req.Shard.String() + ": " + err.Error()})
}
