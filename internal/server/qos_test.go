package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"finser"
	"finser/internal/events"
	"finser/internal/faultinject"
	"finser/internal/obs"
	"finser/internal/qos"
)

// postJobTenant submits a request body on behalf of a tenant (X-Tenant
// header) and returns the response plus raw body.
func postJobTenant(t *testing.T, ts *httptest.Server, tenant, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, rerr := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	return resp, []byte(sb.String())
}

// TestPreemptResumeBitIdentical is the preemption acceptance test: a batch
// FIT job is preempted at a checkpoint boundary by an interactive arrival,
// requeues, resumes, and finishes bit-identical to an uninterrupted run —
// with the preempted/resumed events on its stream and the preemption
// counted on its status.
func TestPreemptResumeBitIdentical(t *testing.T) {
	dir := t.TempDir()
	batchReq := JobRequest{
		Vdd: 0.7, Samples: 8, ItersPerBin: 1500,
		AlphaBins: 3, ProtonBins: 3, Seed: 7, Workers: 2,
	}
	cfg, err := batchReq.flowConfig()
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := finser.RunFlowCtx(context.Background(), cfg)
	if err != nil {
		t.Fatalf("baseline flow: %v", err)
	}

	// The trigger fires mid-alpha (hit 2300 of 4500), after the first
	// 1500-particle bin has been checkpointed, and then BLOCKS the flow
	// worker until the interactive job has been submitted — these flows run
	// in milliseconds, so without the hold the batch job finishes before the
	// HTTP round-trip lands and there is nothing left to preempt.
	trigger := make(chan struct{})
	proceed := make(chan struct{})
	faults := faultinject.New()
	faults.CallAt(finser.FaultSiteParticle, 2300, func() {
		close(trigger)
		<-proceed
	})
	s := New(Config{
		Workers:       1,
		CheckpointDir: dir,
		Preempt:       true,
		Faults:        faults,
	})
	s.Start()
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(batchReq)
	resp, out := postJobTenant(t, ts, "bulk", string(body))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch submit = %d: %s", resp.StatusCode, out)
	}
	select {
	case <-trigger:
	case <-time.After(60 * time.Second):
		t.Fatal("fault trigger never fired")
	}

	// An interactive arrival with the lone worker busy on batch work must
	// preempt it.
	interactive := `{"vdd": 0.7, "samples": 8, "iters_per_bin": 200,
		"alpha_bins": 2, "proton_bins": 2, "seed": 9, "workers": 1, "class": "interactive"}`
	resp, out = postJobTenant(t, ts, "ui", interactive)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("interactive submit = %d: %s", resp.StatusCode, out)
	}
	close(proceed) // release the held flow; it unwinds at the cancelled ctx

	// Both jobs finish: the interactive one ran on the yielded worker, the
	// batch one resumed from its checkpoint.
	iSt := waitState(t, ts, "job-2", StateDone)
	bSt := waitState(t, ts, "job-1", StateDone)
	if bSt.Preemptions < 1 {
		t.Errorf("batch job Preemptions = %d, want >= 1", bSt.Preemptions)
	}
	if bSt.Tenant != "bulk" || bSt.Class != qos.ClassBatch {
		t.Errorf("batch job identity = %s/%s, want bulk/batch", bSt.Tenant, bSt.Class)
	}
	if iSt.Tenant != "ui" || iSt.Class != qos.ClassInteractive {
		t.Errorf("interactive job identity = %s/%s, want ui/interactive", iSt.Tenant, iSt.Class)
	}

	// Bit-identical resume: the preempted run must land on exactly the
	// uninterrupted numbers.
	assertResultEqual(t, bSt.Result, baseline)

	// The stream carries the preempted → resumed transition.
	s.mu.Lock()
	stream := s.jobs["job-1"].events
	s.mu.Unlock()
	var sawPreempted, sawResumed bool
	for e := range stream.Subscribe(0).C() {
		switch e.Type {
		case events.TypePreempted:
			sawPreempted = true
		case events.TypeResumed:
			sawResumed = true
		}
	}
	if !sawPreempted || !sawResumed {
		t.Errorf("event stream: preempted=%v resumed=%v, want both", sawPreempted, sawResumed)
	}
}

// orderRunner records execution order by seed; the first job blocks until
// release so a backlog can build behind it.
func orderRunner(first chan<- struct{}, release <-chan struct{}) (func(context.Context, finser.FlowConfig) (*JobResult, error), func() []uint64) {
	var mu sync.Mutex
	var order []uint64
	var once sync.Once
	run := func(ctx context.Context, cfg finser.FlowConfig) (*JobResult, error) {
		gate := false
		once.Do(func() { gate = true })
		if gate {
			close(first)
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		mu.Lock()
		order = append(order, cfg.Seed)
		mu.Unlock()
		return &JobResult{Vdd: cfg.Vdd}, nil
	}
	get := func() []uint64 {
		mu.Lock()
		defer mu.Unlock()
		return append([]uint64(nil), order...)
	}
	return run, get
}

// TestInteractiveOvertakesBatchBacklog pins the WFQ contract at the server
// layer: an interactive job submitted behind a deep batch backlog is
// dispatched ahead of it.
func TestInteractiveOvertakesBatchBacklog(t *testing.T) {
	first := make(chan struct{})
	release := make(chan struct{})
	run, getOrder := orderRunner(first, release)
	s := New(Config{Workers: 1, QueueDepth: 16, Runner: run})
	s.Start()
	defer s.Drain(context.Background())

	// Seed 100 occupies the worker; seeds 101-104 are the batch backlog;
	// seed 200 is the late interactive arrival.
	if _, err := s.Submit(JobRequest{Vdd: 0.7, Seed: 100}); err != nil {
		t.Fatal(err)
	}
	<-first
	for seed := uint64(101); seed <= 104; seed++ {
		if _, _, err := s.SubmitTenant(JobRequest{Vdd: 0.7, Seed: seed}, "", "bulk"); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := s.SubmitTenant(JobRequest{Vdd: 0.7, Seed: 200, Class: "interactive"}, "", "ui"); err != nil {
		t.Fatal(err)
	}
	close(release)

	deadline := time.Now().Add(30 * time.Second)
	for len(getOrder()) < 6 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	order := getOrder()
	if len(order) != 6 {
		t.Fatalf("ran %d jobs, want 6 (order %v)", len(order), order)
	}
	if order[0] != 100 {
		t.Fatalf("first job = %d, want the occupying 100", order[0])
	}
	if order[1] != 200 {
		t.Fatalf("dispatch order = %v: interactive (200) must overtake the batch backlog", order)
	}
	for i, want := range []uint64{101, 102, 103, 104} {
		if order[2+i] != want {
			t.Fatalf("batch order disturbed: %v", order)
		}
	}
}

// TestTenantQuotaAndRate429 pins the per-tenant 429 contract: an over-quota
// or over-rate tenant is refused with 429 (typed, counted, Retry-After on
// rate), while other tenants keep being served — and the rejection is
// distinct from the global capacity 503.
func TestTenantQuotaAndRate429(t *testing.T) {
	reg := obs.NewRegistry()
	started := make(chan string, 8)
	release := make(chan struct{})
	defer close(release)
	s := New(Config{
		Workers:     1,
		QueueDepth:  8,
		TenantQuota: 1,
		Metrics:     reg,
		Runner:      blockingRunner(started, release),
	})
	s.Start()
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// acme's first job occupies its whole quota (queued or running).
	resp, _ := postJobTenant(t, ts, "acme", `{"vdd": 0.7}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("acme job 1 = %d, want 202", resp.StatusCode)
	}
	<-started
	resp, body := postJobTenant(t, ts, "acme", `{"vdd": 0.75}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("acme over quota = %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "quota") {
		t.Errorf("429 body names no quota: %s", body)
	}
	if got := reg.Counter(obs.Labeled("serd/tenant/rejected_quota", "tenant", "acme")).Value(); got != 1 {
		t.Errorf("rejected_quota{acme} = %d, want 1", got)
	}
	// Isolation: another tenant is admitted while acme is refused.
	resp, _ = postJobTenant(t, ts, "other", `{"vdd": 0.7}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("other tenant = %d, want 202 (quota is per-tenant)", resp.StatusCode)
	}

	// Rate limiting: a fresh server with a near-zero refill and burst 1.
	s2 := New(Config{
		Workers:    1,
		TenantRate: 0.001, TenantBurst: 1,
		Metrics: reg,
		Runner:  blockingRunner(started, release),
	})
	s2.Start()
	defer s2.Drain(context.Background())
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	resp, _ = postJobTenant(t, ts2, "flood", `{"vdd": 0.7}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("flood job 1 = %d, want 202", resp.StatusCode)
	}
	resp, body = postJobTenant(t, ts2, "flood", `{"vdd": 0.75}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("flood over rate = %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("rate 429 carries no Retry-After")
	}
	if !strings.Contains(string(body), "rate") {
		t.Errorf("429 body names no rate limit: %s", body)
	}
	if got := reg.Counter(obs.Labeled("serd/tenant/rejected_rate", "tenant", "flood")).Value(); got != 1 {
		t.Errorf("rejected_rate{flood} = %d, want 1", got)
	}
}

// TestPreemptDuringDrain races a preemption against a drain: the preempted
// job must finalize as canceled (never lost in limbo, never resumed), and
// the drain completes.
func TestPreemptDuringDrain(t *testing.T) {
	started := make(chan string, 4)
	release := make(chan struct{})
	s := New(Config{
		Workers:       1,
		QueueDepth:    8,
		Preempt:       true,
		CheckpointDir: t.TempDir(),
		Runner:        blockingRunner(started, release),
	})
	s.Start()

	if _, _, err := s.SubmitTenant(JobRequest{Vdd: 0.7}, "", "bulk"); err != nil {
		t.Fatal(err)
	}
	<-started // batch job holds the lone worker

	// Interactive arrival requests the preemption; drain lands right after.
	if _, _, err := s.SubmitTenant(JobRequest{Vdd: 0.7, Class: "interactive"}, "", "ui"); err != nil {
		t.Fatal(err)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range []string{"job-1", "job-2"} {
		st, err := s.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateCanceled {
			t.Errorf("%s after drain = %s (err=%q), want canceled", id, st.State, st.Error)
		}
	}
}

// TestPreemptThenCancel races a user cancel against a preemption: the
// cancel must win — the job ends canceled and never resumes.
func TestPreemptThenCancel(t *testing.T) {
	started := make(chan string, 4)
	release := make(chan struct{})
	s := New(Config{
		Workers:       1,
		QueueDepth:    8,
		Preempt:       true,
		CheckpointDir: t.TempDir(),
		Runner:        blockingRunner(started, release),
	})
	s.Start()
	defer s.Drain(context.Background()) // also unblocks the runner via ctx on early failure

	if _, _, err := s.SubmitTenant(JobRequest{Vdd: 0.7}, "", "bulk"); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, _, err := s.SubmitTenant(JobRequest{Vdd: 0.7, Class: "interactive"}, "", "ui"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Cancel("job-1"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := s.Status("job-1")
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			if st.State != StateCanceled {
				t.Fatalf("job-1 = %s, want canceled", st.State)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job-1 never finalized (state %s)", st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The interactive job still completes on the freed worker.
	close(release)
	deadline = time.Now().Add(30 * time.Second)
	for {
		st, _ := s.Status("job-2")
		if st.State == StateDone {
			break
		}
		if st.State.Terminal() {
			t.Fatalf("job-2 = %s (err=%q), want done", st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("job-2 never finished")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRetryAfterHintLoadAware pins the load-aware 503 satellite: with no
// completed jobs the hint is the configured constant; once the run-latency
// histogram has signal it scales with backlog and clamps at RetryAfterMax.
func TestRetryAfterHintLoadAware(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{
		Workers:       2,
		QueueDepth:    64,
		RetryAfter:    7 * time.Second,
		RetryAfterMax: 30 * time.Second,
		Metrics:       reg,
	})
	if got := s.retryAfterHint(); got != 7 {
		t.Fatalf("hint with no signal = %d, want the configured 7", got)
	}
	// Mean runtime 10 s, empty queue, no running jobs → (0+1)*10/2 = 5 s.
	s.latency("run").Observe(10.0)
	if got := s.retryAfterHint(); got != 5 {
		t.Fatalf("hint with signal = %d, want 5", got)
	}
	// A deep backlog pushes the estimate past the cap: clamp to 30.
	for i := 0; i < 20; i++ {
		if err := s.sched.Push("bulk", qos.ClassBatch, 1, &job{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.retryAfterHint(); got != 30 {
		t.Fatalf("hint with deep backlog = %d, want the 30 s cap", got)
	}
}

// TestBreakerTenantIsolation: named tenants get their own breaker
// instances (tenant/species keys), the anonymous tenant keeps the legacy
// bare-species breakers.
func TestBreakerTenantIsolation(t *testing.T) {
	s := New(Config{})
	anon := s.breakerFor(qos.DefaultTenant, "alpha")
	if anon != s.breakers["alpha"] {
		t.Error("anon tenant must reuse the legacy bare-species breaker")
	}
	acme := s.breakerFor("acme", "alpha")
	if acme == anon {
		t.Error("named tenant shares the anon breaker; want isolation")
	}
	if again := s.breakerFor("acme", "alpha"); again != acme {
		t.Error("breakerFor not memoized per tenant/species")
	}
	if other := s.breakerFor("other", "alpha"); other == acme {
		t.Error("two named tenants share a breaker; want isolation")
	}
}

// TestRecoveryRestoresTenantAccounting: a journaled tenant job survives a
// crash with its tenant identity and quota slot restored.
func TestRecoveryRestoresTenantAccounting(t *testing.T) {
	dir := t.TempDir()
	started := make(chan string, 4)
	release := make(chan struct{})
	s1 := New(Config{
		Workers: 1, DataDir: dir, TenantQuota: 1,
		Runner: blockingRunner(started, release),
	})
	if _, err := s1.Recover(); err != nil {
		t.Fatal(err)
	}
	s1.Start()
	if _, _, err := s1.SubmitTenant(JobRequest{Vdd: 0.7, Seed: 3}, "", "acme"); err != nil {
		t.Fatal(err)
	}
	<-started
	s1.Kill()

	s2 := New(Config{
		Workers: 1, DataDir: dir, TenantQuota: 1,
		Runner: func(ctx context.Context, cfg finser.FlowConfig) (*JobResult, error) {
			return &JobResult{Vdd: cfg.Vdd}, nil
		},
	})
	stats, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requeued != 1 {
		t.Fatalf("requeued = %d, want 1", stats.Requeued)
	}
	// The requeued job occupies acme's quota before Start even runs it.
	if _, _, err := s2.SubmitTenant(JobRequest{Vdd: 0.8, Seed: 4}, "", "acme"); err == nil {
		t.Fatal("over-quota submit after recovery succeeded; quota accounting not restored")
	}
	s2.Start()
	defer s2.Drain(context.Background())
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, serr := s2.Status("job-1")
		if serr != nil {
			t.Fatal(serr)
		}
		if st.State == StateDone {
			if st.Tenant != "acme" {
				t.Errorf("recovered tenant = %q, want acme", st.Tenant)
			}
			break
		}
		if st.State.Terminal() {
			t.Fatalf("recovered job = %s (err=%q), want done", st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("recovered job never finished")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// With the job done, acme's slot frees and a new submit is admitted.
	if _, _, err := s2.SubmitTenant(JobRequest{Vdd: 0.8, Seed: 4}, "", "acme"); err != nil {
		t.Fatalf("post-completion submit refused: %v", err)
	}
}
