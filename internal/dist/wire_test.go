package dist_test

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"finser"
	"finser/internal/dist"
)

// tinyFlow is the shared fast-but-real job configuration: full physics,
// minimal Monte-Carlo budget, workers pinned (required for distribution).
func tinyFlow() finser.FlowConfig {
	return finser.FlowConfig{
		Vdd:         0.7,
		Samples:     6,
		ItersPerBin: 200,
		AlphaBins:   3,
		ProtonBins:  4,
		Workers:     1,
		Seed:        42,
	}
}

// tinyShardRequest builds a valid wire request for the first alpha shard
// of tinyFlow.
func tinyShardRequest(t *testing.T) *dist.ShardRequest {
	t.Helper()
	flow := tinyFlow()
	spec, err := dist.SpecFromFlow(flow)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := finser.SpeciesSeedSchedule(flow, finser.Alpha)
	if err != nil {
		t.Fatal(err)
	}
	id := dist.ShardID{Species: dist.SpeciesAlpha, Start: 0, End: 2}
	fp, err := dist.ShardFingerprint(spec, id, sched[0:2])
	if err != nil {
		t.Fatal(err)
	}
	return &dist.ShardRequest{Job: spec, Shard: id, Seeds: sched[0:2], Fingerprint: fp}
}

func TestSpecFlowRoundTrip(t *testing.T) {
	flow := tinyFlow()
	flow.Pattern = finser.PatternCheckerboard
	spec, err := dist.SpecFromFlow(flow)
	if err != nil {
		t.Fatal(err)
	}
	back, err := spec.FlowConfig()
	if err != nil {
		t.Fatal(err)
	}
	if back.Vdd != flow.Vdd || back.Seed != flow.Seed || back.Workers != flow.Workers ||
		back.Pattern != flow.Pattern || back.AlphaBins != flow.AlphaBins {
		t.Fatalf("round trip mutated the config: %+v vs %+v", back, flow)
	}
}

func TestSpecFromFlowRejectsUnpinnedWorkers(t *testing.T) {
	flow := tinyFlow()
	flow.Workers = 0
	if _, err := dist.SpecFromFlow(flow); !dist.IsWire(err) {
		t.Fatalf("want *WireError for unpinned workers, got %v", err)
	}
}

func TestDecodeShardRequestValid(t *testing.T) {
	req := tinyShardRequest(t)
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dist.DecodeShardRequest(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Shard != req.Shard || got.Fingerprint != req.Fingerprint {
		t.Fatalf("decode mutated the request: %+v", got)
	}
}

func TestDecodeShardRequestRejects(t *testing.T) {
	valid := tinyShardRequest(t)
	mutate := func(f func(*dist.ShardRequest)) []byte {
		r := *valid
		r.Seeds = append([]uint64(nil), valid.Seeds...)
		f(&r)
		b, _ := json.Marshal(&r)
		return b
	}
	cases := map[string][]byte{
		"garbage":        []byte("{nope"),
		"unknown field":  []byte(`{"job":{},"shard":{},"bogus":1}`),
		"bad species":    mutate(func(r *dist.ShardRequest) { r.Shard.Species = "muon" }),
		"empty range":    mutate(func(r *dist.ShardRequest) { r.Shard.End = r.Shard.Start }),
		"range past end": mutate(func(r *dist.ShardRequest) { r.Shard.End = 99; r.Seeds = make([]uint64, 99) }),
		"seed count":     mutate(func(r *dist.ShardRequest) { r.Seeds = r.Seeds[:1] }),
		"seed skew":      mutate(func(r *dist.ShardRequest) { r.Seeds[0]++ }),
		"no fingerprint": mutate(func(r *dist.ShardRequest) { r.Fingerprint = "" }),
		"bad job":        mutate(func(r *dist.ShardRequest) { r.Job.Vdd = -1 }),
		"unpinned":       mutate(func(r *dist.ShardRequest) { r.Job.Workers = 0 }),
	}
	for name, data := range cases {
		if _, err := dist.DecodeShardRequest(data); err == nil {
			t.Errorf("%s: decode accepted invalid request", name)
		} else if !dist.IsWire(err) && name != "bad job" {
			t.Errorf("%s: want *WireError, got %T %v", name, err, err)
		}
	}
}

// validShardResult fabricates a structurally valid result for the tiny
// alpha shard (points need not come from real Monte Carlo to test the wire).
func validShardResult(t *testing.T) ([]byte, *dist.ShardRequest) {
	t.Helper()
	req := tinyShardRequest(t)
	res := dist.ShardResult{
		Fingerprint: req.Fingerprint,
		Shard:       req.Shard,
		Points: []finser.POFPoint{
			{EnergyMeV: 1.0, Tot: 0.5, SEU: 0.4, MBU: 0.1, TotStdErr: 0.01, Strikes: 200, HitFrac: 0.9},
			{EnergyMeV: 2.0, Tot: 0.25, SEU: 0.2, MBU: 0.05, TotStdErr: 0.02, Strikes: 200, HitFrac: 0.8},
		},
		Worker: "w1",
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return b, req
}

func TestDecodeShardResultValid(t *testing.T) {
	data, req := validShardResult(t)
	res, err := dist.DecodeShardResult(data, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 || res.Worker != "w1" {
		t.Fatalf("decode mutated the result: %+v", res)
	}
}

func TestDecodeShardResultRejects(t *testing.T) {
	data, req := validShardResult(t)
	mutate := func(f func(*dist.ShardResult)) []byte {
		var r dist.ShardResult
		if err := json.Unmarshal(data, &r); err != nil {
			t.Fatal(err)
		}
		f(&r)
		b, _ := json.Marshal(&r)
		return b
	}
	cases := map[string][]byte{
		"garbage":           []byte(`{"fingerprint":`),
		"truncated":         data[:len(data)/2],
		"wrong fingerprint": mutate(func(r *dist.ShardResult) { r.Fingerprint = "deadbeef" }),
		"wrong shard":       mutate(func(r *dist.ShardResult) { r.Shard.Start++; r.Shard.End++ }),
		"short points":      mutate(func(r *dist.ShardResult) { r.Points = r.Points[:1] }),
		// json.Marshal refuses NaN/Inf, so splice raw tokens in: a bare NaN
		// is a JSON syntax error (rejected at decode), and a huge literal
		// overflows float64 to +Inf inside the decoder.
		"nan tot":         []byte(strings.Replace(string(data), `"Tot":0.5`, `"Tot":NaN`, 1)),
		"overflow stderr": []byte(strings.Replace(string(data), `"TotStdErr":0.01`, `"TotStdErr":-1`, 1)),
		"pof above one":   mutate(func(r *dist.ShardResult) { r.Points[0].SEU = 1.5 }),
		"negative energy": mutate(func(r *dist.ShardResult) { r.Points[0].EnergyMeV = -3 }),
		"zero strikes":    mutate(func(r *dist.ShardResult) { r.Points[0].Strikes = 0 }),
	}
	for name, body := range cases {
		_, err := dist.DecodeShardResult(body, req)
		if err == nil {
			t.Errorf("%s: decode accepted invalid result", name)
			continue
		}
		var we *dist.WireError
		if !errors.As(err, &we) {
			t.Errorf("%s: want *WireError, got %T %v", name, err, err)
		}
	}
}

// adaptiveShardRequest is tinyShardRequest with the adaptive sampler on.
func adaptiveShardRequest(t *testing.T) *dist.ShardRequest {
	t.Helper()
	flow := tinyFlow()
	flow.FITRelErr = 0.05
	spec, err := dist.SpecFromFlow(flow)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := finser.SpeciesSeedSchedule(flow, finser.Alpha)
	if err != nil {
		t.Fatal(err)
	}
	id := dist.ShardID{Species: dist.SpeciesAlpha, Start: 0, End: 2}
	fp, err := dist.ShardFingerprint(spec, id, sched[0:2])
	if err != nil {
		t.Fatal(err)
	}
	return &dist.ShardRequest{Job: spec, Shard: id, Seeds: sched[0:2], Fingerprint: fp}
}

// TestDecodeShardResultConvSkew pins the version-skew contract for the
// adaptive convergence fields: an adaptive job must never silently accept a
// flat-budget result (an old worker that dropped the unknown fit_rel_err
// would produce exactly that), and a flat job must reject stray convergence
// records — both as typed *WireError, never a quiet merge.
func TestDecodeShardResultConvSkew(t *testing.T) {
	req := adaptiveShardRequest(t)
	goodConv := []finser.BinConv{
		{RelErr: 0.04, Tol: 0.05, Converged: true, Batches: 4, StrikesSaved: 120},
		{RelErr: 0.03, Tol: 0.05, Converged: true, Batches: 5, StrikesSaved: 0},
	}
	mk := func(f func(*dist.ShardResult)) []byte {
		res := dist.ShardResult{
			Fingerprint: req.Fingerprint,
			Shard:       req.Shard,
			Points: []finser.POFPoint{
				{EnergyMeV: 1.0, Tot: 0.5, SEU: 0.4, MBU: 0.1, TotStdErr: 0.01, Strikes: 80, HitFrac: 0.9},
				{EnergyMeV: 2.0, Tot: 0.25, SEU: 0.2, MBU: 0.05, TotStdErr: 0.02, Strikes: 200, HitFrac: 0.8},
			},
			Conv:   append([]finser.BinConv(nil), goodConv...),
			Worker: "w1",
		}
		if f != nil {
			f(&res)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	if res, err := dist.DecodeShardResult(mk(nil), req); err != nil {
		t.Fatalf("valid adaptive result rejected: %v", err)
	} else if len(res.Conv) != 2 {
		t.Fatalf("decode dropped conv records: %+v", res)
	}

	rejects := map[string][]byte{
		"missing conv (flat-budget worker)": mk(func(r *dist.ShardResult) { r.Conv = nil }),
		"short conv":                        mk(func(r *dist.ShardResult) { r.Conv = r.Conv[:1] }),
		"invalid conv tol":                  mk(func(r *dist.ShardResult) { r.Conv[0].Tol = 0 }),
		"conv batches over cap":             mk(func(r *dist.ShardResult) { r.Conv[1].Batches = 1000 }),
		"conv inconsistent with strikes":    mk(func(r *dist.ShardResult) { r.Conv[0].Batches = 3 }), // 80 % 3 != 0
	}
	for name, body := range rejects {
		_, err := dist.DecodeShardResult(body, req)
		if err == nil {
			t.Errorf("%s: decode accepted skewed result", name)
			continue
		}
		var we *dist.WireError
		if !errors.As(err, &we) {
			t.Errorf("%s: want *WireError, got %T %v", name, err, err)
		}
	}

	// The reverse skew: a flat job must not accept convergence records.
	flatData, flatReq := validShardResult(t)
	var res dist.ShardResult
	if err := json.Unmarshal(flatData, &res); err != nil {
		t.Fatal(err)
	}
	res.Conv = goodConv
	body, _ := json.Marshal(res)
	if _, err := dist.DecodeShardResult(body, flatReq); err == nil {
		t.Error("flat job accepted convergence records")
	} else if !dist.IsWire(err) {
		t.Errorf("flat-job conv rejection: want *WireError, got %T %v", err, err)
	}

	// An old peer (no conv support compiled in) rejects the new field
	// outright: the strict decoder turns unknown fields into *WireError, so
	// skew fails loudly on their side too.
	withUnknown := []byte(strings.Replace(string(flatData), `"fingerprint"`, `"conv_v2":[],"fingerprint"`, 1))
	if _, err := dist.DecodeShardResult(withUnknown, flatReq); err == nil || !dist.IsWire(err) {
		t.Errorf("unknown-field result: want *WireError, got %v", err)
	}
}
