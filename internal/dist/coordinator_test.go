package dist_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"finser"
	"finser/internal/breaker"
	"finser/internal/core"
	"finser/internal/dist"
	"finser/internal/faultinject"
	"finser/internal/retry"
	"finser/internal/server"
)

// newWorker boots one real worker serd behind httptest and returns its URL.
// faults, when non-nil, is threaded into every shard's flow.
func newWorker(t *testing.T, faults *faultinject.Hooks) *httptest.Server {
	t.Helper()
	srv := server.New(server.Config{Workers: 2, Faults: faults})
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Drain(ctx)
	})
	return ts
}

// testCoordinator builds a coordinator with test-speed timings.
func testCoordinator(t *testing.T, cfg dist.Config) *dist.Coordinator {
	t.Helper()
	if cfg.ShardBins == 0 {
		cfg.ShardBins = 2
	}
	if cfg.ShardTimeout == 0 {
		cfg.ShardTimeout = 30 * time.Second
	}
	if cfg.ShardAttempts == 0 {
		cfg.ShardAttempts = 6
	}
	if cfg.StealAfter == 0 {
		cfg.StealAfter = 30 * time.Second // no stealing unless a test wants it
	}
	if cfg.Retry.BaseDelay == 0 {
		cfg.Retry = retry.Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond}
	}
	if cfg.Breaker.FailureThreshold == 0 {
		cfg.Breaker = breaker.Config{FailureThreshold: 3, Cooldown: 200 * time.Millisecond}
	}
	co, err := dist.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return co
}

// singleNode runs the reference single-node flow once per config.
func singleNode(t *testing.T, flow finser.FlowConfig) *finser.FlowResult {
	t.Helper()
	res, err := finser.RunFlowCtx(context.Background(), flow)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// requireBitIdentical asserts the distributed result matches the
// single-node run to the last bit, per species.
func requireBitIdentical(t *testing.T, got *dist.Result, want *finser.FlowResult) {
	t.Helper()
	if !reflect.DeepEqual(got.Alpha, want.Alpha) {
		t.Errorf("alpha FIT diverges:\n dist   %+v\n single %+v", got.Alpha, want.Alpha)
	}
	if !reflect.DeepEqual(got.Proton, want.Proton) {
		t.Errorf("proton FIT diverges:\n dist   %+v\n single %+v", got.Proton, want.Proton)
	}
}

// eventCollector records shard events thread-safely.
type eventCollector struct {
	mu     sync.Mutex
	events []dist.ShardEvent
}

func (c *eventCollector) emit(e dist.ShardEvent) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

func (c *eventCollector) count(kind string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, e := range c.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

func TestRunTwoWorkersBitIdentical(t *testing.T) {
	flow := tinyFlow()
	want := singleNode(t, flow)
	w1, w2 := newWorker(t, nil), newWorker(t, nil)
	co := testCoordinator(t, dist.Config{Workers: []string{w1.URL, w2.URL}})

	var ev eventCollector
	got, err := co.Run(context.Background(), flow, ev.emit)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, got, want)
	// 3 alpha bins / 2 + 4 proton bins / 2 = 2 + 2 shards, each completed
	// exactly once.
	if n := ev.count(dist.EventCompleted); n != 4 {
		t.Errorf("want 4 completed shards, got %d: %+v", n, ev.events)
	}
	if n := ev.count(dist.EventFailed); n != 0 {
		t.Errorf("want 0 failed shards, got %d", n)
	}
}

// TestChaosWorkerKilledMidShard is the headline robustness property: one
// worker dies mid-shard (its in-flight connections sliced, every later
// request aborted — the coordinator-visible signature of SIGKILL) and the
// job still completes with a FIT bit-identical to the single-node run,
// with no *dist.PartialError.
func TestChaosWorkerKilledMidShard(t *testing.T) {
	flow := tinyFlow()
	want := singleNode(t, flow)

	faults := faultinject.New()
	srv := server.New(server.Config{Workers: 2, Faults: faults})
	srv.Start()
	var dead atomic.Bool
	var ts1 *httptest.Server
	ts1 = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if dead.Load() {
			panic(http.ErrAbortHandler) // dead worker: abort the connection
		}
		srv.Handler().ServeHTTP(w, r)
	}))
	defer ts1.Close()
	// Kill worker 1 in the middle of its first shard's Monte Carlo: after
	// the 50th particle, mark it dead and slice its live connections.
	faults.CallAt(core.FaultSiteParticle, 50, func() {
		if dead.CompareAndSwap(false, true) {
			go ts1.CloseClientConnections()
		}
	})

	w2 := newWorker(t, nil)
	co := testCoordinator(t, dist.Config{
		Workers:       []string{ts1.URL, w2.URL},
		ShardAttempts: 8,
		StealAfter:    200 * time.Millisecond,
	})

	var ev eventCollector
	got, err := co.Run(context.Background(), flow, ev.emit)
	var pe *dist.PartialError
	if errors.As(err, &pe) {
		t.Fatalf("worker death degraded to PartialError (missing %v) instead of retrying elsewhere: %v", pe.Missing, err)
	}
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, got, want)
	if !dead.Load() {
		t.Fatal("fault never fired: the kill was not mid-shard")
	}
	if ev.count(dist.EventRetried)+ev.count(dist.EventStolen) == 0 {
		t.Error("expected at least one retry or steal after the worker died")
	}
	if n := ev.count(dist.EventCompleted); n != 4 {
		t.Errorf("want 4 completed shards, got %d", n)
	}
}

// protonKiller wraps a healthy worker but 500s every proton shard —
// exhausting those shards' budgets while alpha completes normally.
func protonKiller(t *testing.T, inner http.Handler) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		if bytes.Contains(body, []byte(`"species":"proton"`)) {
			http.Error(w, "injected proton fault", http.StatusInternalServerError)
			return
		}
		r.Body = io.NopCloser(bytes.NewReader(body))
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestRunPartialErrorNamesMissingShards(t *testing.T) {
	flow := tinyFlow()
	want := singleNode(t, flow)

	srv := server.New(server.Config{Workers: 2})
	srv.Start()
	w := protonKiller(t, srv.Handler())
	co := testCoordinator(t, dist.Config{
		Workers:       []string{w.URL},
		ShardAttempts: 2,
		Retry:         retry.Policy{BaseDelay: 5 * time.Millisecond, MaxDelay: 10 * time.Millisecond},
		Breaker:       breaker.Config{FailureThreshold: 100, Cooldown: 50 * time.Millisecond},
	})

	_, err := co.Run(context.Background(), flow, nil)
	var pe *dist.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PartialError, got %T: %v", err, err)
	}
	wantMissing := []dist.ShardID{
		{Species: dist.SpeciesProton, Start: 0, End: 2},
		{Species: dist.SpeciesProton, Start: 2, End: 4},
	}
	if !reflect.DeepEqual(pe.Missing, wantMissing) {
		t.Errorf("missing shards = %v, want %v", pe.Missing, wantMissing)
	}
	if pe.Partial == nil {
		t.Fatal("PartialError carries no partial result")
	}
	// The alpha side completed in full: its partial FIT is the exact
	// single-node alpha FIT.
	if !reflect.DeepEqual(pe.Partial.Alpha, want.Alpha) {
		t.Errorf("partial alpha FIT diverges from single-node:\n got  %+v\n want %+v", pe.Partial.Alpha, want.Alpha)
	}
	if pe.Partial.Proton.TotalFIT != 0 {
		t.Errorf("proton never completed a shard but partial FIT = %g", pe.Partial.Proton.TotalFIT)
	}
}

// TestRunResumesOnlyMissingShards drives the drain/resubmit contract: a
// first run that only managed alpha (proton faults injected) checkpoints
// its completed shards; a second run against a healthy pool restores them
// (EventResumed) and dispatches only the proton shards, landing on the
// bit-identical full result.
func TestRunResumesOnlyMissingShards(t *testing.T) {
	flow := tinyFlow()
	want := singleNode(t, flow)
	ckPath := filepath.Join(t.TempDir(), "dist.ck.json")

	store, err := finser.CreateCheckpoint(ckPath, flow, []float64{flow.Vdd})
	if err != nil {
		t.Fatal(err)
	}
	flow.Checkpoint = store

	srv := server.New(server.Config{Workers: 2})
	srv.Start()
	broken := protonKiller(t, srv.Handler())
	co1 := testCoordinator(t, dist.Config{
		Workers:       []string{broken.URL},
		ShardAttempts: 1,
		Breaker:       breaker.Config{FailureThreshold: 100, Cooldown: 50 * time.Millisecond},
	})
	if _, err := co1.Run(context.Background(), flow, nil); err == nil {
		t.Fatal("first run should have failed on proton shards")
	}

	// Second run: same checkpoint file, healthy worker.
	store2, err := finser.ResumeCheckpoint(ckPath, tinyFlow(), []float64{flow.Vdd})
	if err != nil {
		t.Fatal(err)
	}
	flow2 := tinyFlow()
	flow2.Checkpoint = store2
	healthy := newWorker(t, nil)
	co2 := testCoordinator(t, dist.Config{Workers: []string{healthy.URL}})

	var ev eventCollector
	got, err := co2.Run(context.Background(), flow2, ev.emit)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, got, want)
	if n := ev.count(dist.EventResumed); n != 2 {
		t.Errorf("want 2 resumed alpha shards, got %d: %+v", n, ev.events)
	}
	for _, e := range ev.events {
		if e.Kind == dist.EventDispatched && e.Shard.Species == dist.SpeciesAlpha {
			t.Errorf("alpha shard %v re-dispatched despite checkpoint", e.Shard)
		}
	}
	if n := ev.count(dist.EventCompleted); n != 2 {
		t.Errorf("want 2 freshly completed proton shards, got %d", n)
	}
}

// TestAdaptiveRunBitIdentical: an adaptive job distributed across two real
// workers merges bit-identically to the single-node adaptive run —
// convergence records included — no matter how the bin range is sharded.
func TestAdaptiveRunBitIdentical(t *testing.T) {
	flow := tinyFlow()
	flow.FITRelErr = 0.1
	want := singleNode(t, flow)
	if len(want.Alpha.Conv) != len(want.Alpha.Points) || len(want.Proton.Conv) != len(want.Proton.Points) {
		t.Fatalf("single-node adaptive run missing conv records: alpha %d/%d, proton %d/%d",
			len(want.Alpha.Conv), len(want.Alpha.Points), len(want.Proton.Conv), len(want.Proton.Points))
	}
	w1, w2 := newWorker(t, nil), newWorker(t, nil)
	for _, bins := range []int{1, 2, 7} {
		co := testCoordinator(t, dist.Config{Workers: []string{w1.URL, w2.URL}, ShardBins: bins})
		got, err := co.Run(context.Background(), flow, nil)
		if err != nil {
			t.Fatalf("ShardBins=%d: %v", bins, err)
		}
		requireBitIdentical(t, got, want)
	}
}

// TestAdaptiveResumeOnlyMissingShards: a checkpointed adaptive job whose
// proton shards failed resumes only the missing shards — the restored alpha
// shards pass conv validation and the final merge is still bit-identical.
func TestAdaptiveResumeOnlyMissingShards(t *testing.T) {
	base := tinyFlow()
	base.FITRelErr = 0.1
	want := singleNode(t, base)
	ckPath := filepath.Join(t.TempDir(), "dist.ck.json")

	store, err := finser.CreateCheckpoint(ckPath, base, []float64{base.Vdd})
	if err != nil {
		t.Fatal(err)
	}
	flow := base
	flow.Checkpoint = store

	srv := server.New(server.Config{Workers: 2})
	srv.Start()
	broken := protonKiller(t, srv.Handler())
	co1 := testCoordinator(t, dist.Config{
		Workers:       []string{broken.URL},
		ShardAttempts: 1,
		Breaker:       breaker.Config{FailureThreshold: 100, Cooldown: 50 * time.Millisecond},
	})
	if _, err := co1.Run(context.Background(), flow, nil); err == nil {
		t.Fatal("first run should have failed on proton shards")
	}

	store2, err := finser.ResumeCheckpoint(ckPath, base, []float64{base.Vdd})
	if err != nil {
		t.Fatal(err)
	}
	flow2 := base
	flow2.Checkpoint = store2
	healthy := newWorker(t, nil)
	co2 := testCoordinator(t, dist.Config{Workers: []string{healthy.URL}})

	var ev eventCollector
	got, err := co2.Run(context.Background(), flow2, ev.emit)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, got, want)
	if n := ev.count(dist.EventResumed); n != 2 {
		t.Errorf("want 2 resumed alpha shards, got %d: %+v", n, ev.events)
	}
}

// TestStealFirstResultWins: worker 1 sits on its first shard far past
// StealAfter; an idle worker 2 duplicate-dispatches it, wins, and the late
// twin is discarded by fingerprint dedup — with the merged FIT still
// bit-identical.
func TestStealFirstResultWins(t *testing.T) {
	flow := tinyFlow()
	want := singleNode(t, flow)

	srv := server.New(server.Config{Workers: 2})
	srv.Start()
	var stalled atomic.Bool
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if stalled.CompareAndSwap(false, true) {
			time.Sleep(1500 * time.Millisecond) // hold the first shard hostage
		}
		srv.Handler().ServeHTTP(w, r)
	}))
	defer slow.Close()
	fast := newWorker(t, nil)

	co := testCoordinator(t, dist.Config{
		Workers:    []string{slow.URL, fast.URL},
		StealAfter: 100 * time.Millisecond,
	})
	var ev eventCollector
	got, err := co.Run(context.Background(), flow, ev.emit)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, got, want)
	if ev.count(dist.EventStolen) == 0 {
		t.Error("expected the stalled shard to be stolen")
	}
	if ev.count(dist.EventCompleted) != 4 {
		t.Errorf("want exactly 4 completed (dedup), got %d", ev.count(dist.EventCompleted))
	}
}

// TestBreakerRecoveryViaProbe drives the full circuit round trip against a
// worker that fails long enough to trip its breaker and then recovers: the
// cooldown's half-open probe (whose state transition fires the observer
// under the breaker lock) must re-admit the worker and the run must still
// land bit-identically. Regression test for a self-deadlock where the
// state-change observer called back into the breaker.
func TestBreakerRecoveryViaProbe(t *testing.T) {
	flow := tinyFlow()
	want := singleNode(t, flow)

	srv := server.New(server.Config{Workers: 2})
	srv.Start()
	var calls atomic.Int32
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 3 {
			http.Error(w, "injected transient fault", http.StatusInternalServerError)
			return
		}
		srv.Handler().ServeHTTP(w, r)
	}))
	defer flaky.Close()

	co := testCoordinator(t, dist.Config{
		Workers: []string{flaky.URL},
		// The healthy-worker gauge must be live: refreshing it from inside
		// the state-change observer is the deadlock under test.
		Metrics:       finser.NewMetrics(),
		ShardAttempts: 20,
		Breaker:       breaker.Config{FailureThreshold: 2, Cooldown: 50 * time.Millisecond},
		Retry:         retry.Policy{BaseDelay: 5 * time.Millisecond, MaxDelay: 20 * time.Millisecond},
	})
	done := make(chan struct{})
	var got *dist.Result
	var err error
	go func() {
		got, err = co.Run(context.Background(), flow, nil)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("run deadlocked after breaker trip + recovery")
	}
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, got, want)
}

// TestReadyReflectsBreakers: a pool whose every worker is breaker-open
// reports not-ready, and recovers after the cooldown probe succeeds.
func TestReadyReflectsBreakers(t *testing.T) {
	// One worker at a dead address: every attempt fails, tripping the
	// breaker after FailureThreshold.
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // now refuses connections
	co := testCoordinator(t, dist.Config{
		Workers:       []string{dead.URL},
		ShardAttempts: 4,
		Breaker:       breaker.Config{FailureThreshold: 2, Cooldown: time.Hour},
		Retry:         retry.Policy{BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
	})
	if err := co.Ready(); err != nil {
		t.Fatalf("pool should start ready, got %v", err)
	}
	_, err := co.Run(context.Background(), tinyFlow(), nil)
	if err == nil {
		t.Fatal("run against a dead pool should fail")
	}
	if err := co.Ready(); err == nil {
		t.Fatal("pool with every breaker open should report not ready")
	}
}
