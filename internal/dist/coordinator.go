package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"finser"
	"finser/internal/breaker"
	"finser/internal/obs"
	"finser/internal/retry"
)

// Shard lifecycle event kinds, in the order a shard typically sees them.
const (
	// EventResumed: the shard's result was restored from a coordinator
	// checkpoint; it will not be dispatched.
	EventResumed = "resumed"
	// EventDispatched: the shard was handed to a worker for the first
	// concurrent attempt.
	EventDispatched = "dispatched"
	// EventStolen: an idle worker duplicate-dispatched a shard another
	// worker has held longer than StealAfter (first result wins).
	EventStolen = "stolen"
	// EventRetried: an attempt failed transiently; the shard re-enters the
	// queue after a backoff.
	EventRetried = "retried"
	// EventCompleted: the shard's first valid result landed and was merged.
	EventCompleted = "completed"
	// EventDuplicate: a result for an already-completed shard arrived (the
	// losing side of a steal) and was discarded by fingerprint dedup.
	EventDuplicate = "duplicate"
	// EventFailed: the shard exhausted its attempt budget (or hit a
	// permanent error) and will be reported in a *PartialError.
	EventFailed = "failed"
)

// ShardEvent reports one transition in a shard's life to the Run caller —
// the feed a serving layer forwards onto its SSE stream.
type ShardEvent struct {
	Kind  string
	Shard ShardID
	// Worker is the worker URL involved (empty for resumed shards).
	Worker string
	// Attempt is the 1-based dispatch count for dispatch/steal/retry kinds.
	Attempt int
	// Err carries the attempt failure for retried/failed kinds.
	Err error
}

// Result is the merged outcome of a distributed FIT job — the distributed
// twin of finser.FlowResult, minus the characterization (workers own those).
type Result struct {
	Vdd    float64
	Alpha  finser.FITResult
	Proton finser.FITResult
}

// PartialError reports a distributed run in which some shards exhausted
// their retry budget. It names every missing shard and carries the partial
// FIT sum over the bins that did complete, mirroring finser.SweepError's
// contract that hours of finished Monte-Carlo work survive a late fault.
// Match with errors.As.
type PartialError struct {
	// Missing lists the shards with no valid result, in plan order.
	Missing []ShardID
	// Partial is the FIT assembled from the completed bins only.
	Partial *Result
	// Err is the underlying failure of the last missing shard attempts.
	Err error
}

func (e *PartialError) Error() string {
	ids := make([]string, len(e.Missing))
	for i, id := range e.Missing {
		ids[i] = id.String()
	}
	return fmt.Sprintf("dist: %d shard(s) missing after retry budget: %s: %v",
		len(e.Missing), strings.Join(ids, " "), e.Err)
}

func (e *PartialError) Unwrap() error { return e.Err }

// Config assembles a Coordinator.
type Config struct {
	// Workers are the base URLs of the worker serds (e.g.
	// "http://10.0.0.2:8080"). At least one is required.
	Workers []string
	// Client issues the shard requests; nil selects a default client.
	// Per-attempt deadlines come from ShardTimeout, not the client.
	Client *http.Client
	// ShardBins is the number of energy bins per shard; 0 selects 2.
	ShardBins int
	// ShardTimeout bounds one shard attempt end to end; 0 selects 10m.
	ShardTimeout time.Duration
	// ShardAttempts is the per-shard attempt budget across all workers
	// before the shard is declared missing; 0 selects 4.
	ShardAttempts int
	// StealAfter is how long a shard may stay in flight before an idle
	// worker duplicate-dispatches it; 0 selects 30s.
	StealAfter time.Duration
	// Retry shapes the backoff between one shard's failed attempts
	// (MaxAttempts is ignored — ShardAttempts owns the budget).
	Retry retry.Policy
	// Breaker is the per-worker circuit breaker template. Countable nil
	// selects a dist-specific default in which attempt timeouts DO count
	// (a hung worker indicts the worker) and only parent-context
	// cancellation does not.
	Breaker breaker.Config
	// Metrics, when non-nil, receives shard counters, per-worker latency
	// histograms, and the healthy-worker gauge.
	Metrics *obs.Registry
	// Rand supplies backoff jitter in [0,1); nil selects math/rand.
	Rand func() float64
	// now is the test clock hook.
	now func() time.Time
}

// worker is one remote serd plus its health state.
type worker struct {
	url  string
	name string
	br   *breaker.Breaker
	lat  *obs.Histogram
	// state caches the breaker's last observed state (written from its
	// OnStateChange observer, which runs under the breaker lock and so
	// cannot query the breaker itself).
	state atomic.Int32
}

// Coordinator fans a FIT job's energy-bin shards out to worker serds with
// work stealing, per-worker circuit breakers, retry-elsewhere on failure,
// and a deterministic merge that is bit-identical to the single-node run.
type Coordinator struct {
	cfg     Config
	client  *http.Client
	workers []*worker

	healthy    *obs.Gauge
	dispatched *obs.Counter
	stolen     *obs.Counter
	retried    *obs.Counter
	completed  *obs.Counter
	duplicate  *obs.Counter
	failed     *obs.Counter
	resumed    *obs.Counter
}

// New validates cfg and builds a Coordinator. Worker URLs are normalized
// (scheme required, trailing slash stripped) and each gets its own breaker
// so one flapping worker cannot shed the whole pool.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("dist: coordinator needs at least one worker URL")
	}
	if cfg.ShardBins == 0 {
		cfg.ShardBins = 2
	}
	if cfg.ShardBins < 0 {
		return nil, fmt.Errorf("dist: shard bins must be positive, got %d", cfg.ShardBins)
	}
	if cfg.ShardTimeout == 0 {
		cfg.ShardTimeout = 10 * time.Minute
	}
	if cfg.ShardAttempts == 0 {
		cfg.ShardAttempts = 4
	}
	if cfg.ShardAttempts < 0 || cfg.ShardTimeout < 0 {
		return nil, errors.New("dist: shard attempts and timeout must be positive")
	}
	if cfg.StealAfter == 0 {
		cfg.StealAfter = 30 * time.Second
	}
	if cfg.Retry.BaseDelay == 0 {
		cfg.Retry.BaseDelay = 250 * time.Millisecond
	}
	if cfg.Retry.MaxDelay == 0 {
		cfg.Retry.MaxDelay = 5 * time.Second
	}
	if cfg.Breaker.FailureThreshold == 0 {
		cfg.Breaker.FailureThreshold = 3
	}
	if cfg.Breaker.Cooldown == 0 {
		cfg.Breaker.Cooldown = 5 * time.Second
	}
	if cfg.Breaker.Countable == nil {
		// An attempt timeout is the worker's fault here, unlike the
		// library default; only parent-context cancellation is ours.
		cfg.Breaker.Countable = func(err error) bool {
			return !errors.Is(err, context.Canceled)
		}
	}
	if cfg.Rand == nil {
		cfg.Rand = rand.Float64
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	c := &Coordinator{cfg: cfg, client: client}
	if cfg.Metrics != nil {
		c.healthy = cfg.Metrics.Gauge("dist/workers/healthy")
		c.dispatched = cfg.Metrics.Counter("dist/shards/dispatched")
		c.stolen = cfg.Metrics.Counter("dist/shards/stolen")
		c.retried = cfg.Metrics.Counter("dist/shards/retried")
		c.completed = cfg.Metrics.Counter("dist/shards/completed")
		c.duplicate = cfg.Metrics.Counter("dist/shards/duplicate")
		c.failed = cfg.Metrics.Counter("dist/shards/failed")
		c.resumed = cfg.Metrics.Counter("dist/shards/resumed")
	}
	seen := make(map[string]bool, len(cfg.Workers))
	for _, raw := range cfg.Workers {
		u, err := url.Parse(strings.TrimSpace(raw))
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("dist: worker URL %q must be absolute (http://host:port)", raw)
		}
		base := strings.TrimRight(u.String(), "/")
		if seen[base] {
			return nil, fmt.Errorf("dist: duplicate worker URL %q", base)
		}
		seen[base] = true
		w := &worker{url: base, name: u.Host}
		bcfg := cfg.Breaker
		bcfg.Name = "dist/" + u.Host
		userStateChange := bcfg.OnStateChange
		bcfg.OnStateChange = func(name string, from, to breaker.State) {
			// Fired under the breaker's own lock: cache the new state and
			// derive the gauge from the caches. Calling back into the
			// breaker (State, Do) here would self-deadlock.
			w.state.Store(int32(to))
			c.updateHealthy()
			if userStateChange != nil {
				userStateChange(name, from, to)
			}
		}
		w.br = breaker.New(bcfg)
		if cfg.Metrics != nil {
			w.lat = cfg.Metrics.Histogram("dist/worker/"+u.Host+"/shard_seconds", obs.ExpBuckets(0.01, 2, 16))
		}
		c.workers = append(c.workers, w)
	}
	c.updateHealthy()
	return c, nil
}

// updateHealthy refreshes the healthy-worker gauge (workers whose breaker
// is not open) from the cached per-worker states. It must stay safe to
// call from inside an OnStateChange observer, so it never queries the
// breakers directly.
func (c *Coordinator) updateHealthy() {
	if c.healthy == nil {
		return
	}
	n := 0
	for _, w := range c.workers {
		if w != nil && breaker.State(w.state.Load()) != breaker.Open {
			n++
		}
	}
	c.healthy.Set(float64(n))
}

// Ready reports whether the worker pool can make progress: nil while at
// least one worker's breaker admits traffic, an error once every breaker
// is open — the signal a coordinator's /readyz surfaces as 503.
func (c *Coordinator) Ready() error {
	for _, w := range c.workers {
		if w.br.State() != breaker.Open {
			return nil
		}
	}
	return fmt.Errorf("dist: all %d workers unavailable (circuit breakers open)", len(c.workers))
}

// Workers returns the normalized worker base URLs (diagnostics).
func (c *Coordinator) Workers() []string {
	urls := make([]string, len(c.workers))
	for i, w := range c.workers {
		urls[i] = w.url
	}
	return urls
}

// maxConcurrentAttempts bounds how many workers may hold the same shard at
// once: the original holder plus one thief.
const maxConcurrentAttempts = 2

// shardState is one shard's dispatcher bookkeeping. All mutable fields are
// guarded by the dispatcher mutex.
type shardState struct {
	id    ShardID
	seeds []uint64
	req   *ShardRequest
	body  []byte

	attempts      int          // dispatches started (1-based Attempt in events)
	failures      int          // failed attempts
	inflight      map[int]bool // worker index → attempt outstanding
	inflightSince time.Time    // when the oldest outstanding attempt started
	notBefore     time.Time    // backoff gate for the next dispatch
	done          bool         // terminal (succeeded or failed)
	succeeded     bool
	worker        string // worker that produced the accepted result
	points        []finser.POFPoint
	conv          []finser.BinConv // per-bin convergence state (adaptive jobs)
	err           error            // last attempt error
}

// dispatcher owns the shard queue shared by the per-worker goroutines.
type dispatcher struct {
	mu     sync.Mutex
	cond   *sync.Cond
	shards []*shardState
	open   int // shards not yet terminal
	now    func() time.Time
	steal  time.Duration
}

func newDispatcher(shards []*shardState, now func() time.Time, steal time.Duration) *dispatcher {
	d := &dispatcher{shards: shards, now: now, steal: steal}
	d.cond = sync.NewCond(&d.mu)
	for _, s := range shards {
		if !s.done {
			d.open++
		}
	}
	return d
}

// next blocks until a shard is dispatchable by worker wi, every shard is
// terminal, or ctx is cancelled. It returns the claimed shard (already
// marked in flight) and whether the claim is a steal; nil means stop.
func (d *dispatcher) next(ctx context.Context, wi int) (s *shardState, stolen bool, attempt int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if ctx.Err() != nil || d.open == 0 {
			return nil, false, 0
		}
		now := d.now()
		var fresh, victim *shardState
		var wake time.Time
		later := func(t time.Time) {
			if t.After(now) && (wake.IsZero() || t.Before(wake)) {
				wake = t
			}
		}
		for _, cand := range d.shards {
			if cand.done {
				continue
			}
			if len(cand.inflight) == 0 {
				if !cand.notBefore.After(now) {
					if fresh == nil {
						fresh = cand
					}
				} else {
					later(cand.notBefore)
				}
				continue
			}
			if cand.inflight[wi] || len(cand.inflight) >= maxConcurrentAttempts {
				continue
			}
			eligible := cand.inflightSince.Add(d.steal)
			if !eligible.After(now) {
				if victim == nil || cand.inflightSince.Before(victim.inflightSince) {
					victim = cand
				}
			} else {
				later(eligible)
			}
		}
		pick := fresh
		stolen = false
		if pick == nil && victim != nil {
			pick, stolen = victim, true
		}
		if pick != nil {
			if pick.inflight == nil {
				pick.inflight = make(map[int]bool, maxConcurrentAttempts)
			}
			if len(pick.inflight) == 0 {
				pick.inflightSince = now
			}
			pick.inflight[wi] = true
			pick.attempts++
			return pick, stolen, pick.attempts
		}
		// Nothing dispatchable yet: arm a wake-up for the nearest backoff
		// or steal-eligibility horizon, then sleep on the condition.
		if !wake.IsZero() {
			t := time.AfterFunc(wake.Sub(now), d.cond.Broadcast)
			d.cond.Wait()
			t.Stop()
		} else {
			d.cond.Wait()
		}
	}
}

// release drops worker wi's outstanding attempt on s without judging it
// (breaker shed, context cancellation).
func (d *dispatcher) release(s *shardState, wi int) {
	d.mu.Lock()
	delete(s.inflight, wi)
	if len(s.inflight) == 0 {
		s.inflightSince = time.Time{}
	}
	d.mu.Unlock()
	d.cond.Broadcast()
}

// fail records a failed attempt. It returns the shard's terminal fate:
// terminal=true when the budget is exhausted or the error is permanent.
// backoffFor maps the post-increment failure count to a retry delay; it is
// called under the dispatcher lock so the count cannot race a twin attempt.
func (d *dispatcher) fail(s *shardState, wi int, err error, budget int, backoffFor func(failures int) time.Duration) (terminal bool) {
	d.mu.Lock()
	defer func() {
		d.mu.Unlock()
		d.cond.Broadcast()
	}()
	delete(s.inflight, wi)
	if len(s.inflight) == 0 {
		s.inflightSince = time.Time{}
	}
	if s.done {
		return false
	}
	s.failures++
	s.err = err
	if retry.IsPermanent(err) || s.failures >= budget {
		s.done = true
		s.succeeded = false
		d.open--
		return true
	}
	s.notBefore = d.now().Add(backoffFor(s.failures))
	return false
}

// accept records a successful attempt. first is true when this result won
// the shard (merge it); false when a twin already did (discard as dup).
func (d *dispatcher) accept(s *shardState, wi int, pts []finser.POFPoint, conv []finser.BinConv, workerName string) (first bool) {
	d.mu.Lock()
	defer func() {
		d.mu.Unlock()
		d.cond.Broadcast()
	}()
	delete(s.inflight, wi)
	if len(s.inflight) == 0 {
		s.inflightSince = time.Time{}
	}
	if s.succeeded {
		return false
	}
	// A late success may rescue a shard already declared failed (its twin
	// exhausted the budget first); reopen the slot it closed.
	if !s.done {
		d.open--
	}
	s.done, s.succeeded = true, true
	s.points = pts
	s.conv = conv
	s.worker = workerName
	s.err = nil
	return true
}

// shardCheckpoint is the per-shard payload in the coordinator's checkpoint
// store, keyed by stage "dist/<species>/<start>-<end>".
type shardCheckpoint struct {
	Fingerprint string            `json:"fingerprint"`
	Worker      string            `json:"worker,omitempty"`
	Points      []finser.POFPoint `json:"points"`
	Conv        []finser.BinConv  `json:"conv,omitempty"`
}

func shardStage(id ShardID) string {
	return fmt.Sprintf("dist/%s/%d-%d", id.Species, id.Start, id.End)
}

// plan splits the job into its shard list: per species, consecutive
// ShardBins-sized bin ranges in deterministic order (alpha first).
func (c *Coordinator) plan(spec JobSpec, flow finser.FlowConfig) ([]*shardState, error) {
	var shards []*shardState
	for _, name := range []string{SpeciesAlpha, SpeciesProton} {
		sp, _ := Species(name)
		bins, err := finser.SpeciesBins(flow, sp)
		if err != nil {
			return nil, err
		}
		sched, err := finser.SpeciesSeedSchedule(flow, sp)
		if err != nil {
			return nil, err
		}
		for start := 0; start < len(bins); start += c.cfg.ShardBins {
			end := start + c.cfg.ShardBins
			if end > len(bins) {
				end = len(bins)
			}
			id := ShardID{Species: name, Start: start, End: end}
			seeds := sched[start:end:end]
			fp, err := ShardFingerprint(spec, id, seeds)
			if err != nil {
				return nil, fmt.Errorf("dist: fingerprint %v: %w", id, err)
			}
			req := &ShardRequest{Job: spec, Shard: id, Seeds: seeds, Fingerprint: fp}
			body, err := encodeJSON(req)
			if err != nil {
				return nil, fmt.Errorf("dist: encode %v: %w", id, err)
			}
			shards = append(shards, &shardState{id: id, seeds: seeds, req: req, body: body})
		}
	}
	return shards, nil
}

// Run executes one distributed FIT job: plan shards, restore any from the
// checkpoint, fan the rest out across the worker pool with stealing and
// retry, and merge in deterministic shard order. The merged Result is
// bit-identical to the single-node run of the same flow config. emit, when
// non-nil, observes every shard lifecycle transition.
//
// Failure modes: an invalid flow config fails fast; cancellation of ctx
// returns its error with completed shards checkpointed (a resubmission
// resumes only the missing ones); shards that exhaust their attempt budget
// yield a *PartialError carrying the partial FIT and the missing bins.
func (c *Coordinator) Run(ctx context.Context, flow finser.FlowConfig, emit func(ShardEvent)) (*Result, error) {
	if emit == nil {
		emit = func(ShardEvent) {}
	}
	if err := flow.Validate(); err != nil {
		return nil, err
	}
	spec, err := SpecFromFlow(flow)
	if err != nil {
		return nil, err
	}
	shards, err := c.plan(spec, flow)
	if err != nil {
		return nil, err
	}

	if flow.Checkpoint != nil {
		for _, s := range shards {
			var prev shardCheckpoint
			ok, err := flow.Checkpoint.Load(shardStage(s.id), &prev)
			if err != nil {
				return nil, fmt.Errorf("dist: checkpoint %v: %w", s.id, err)
			}
			if !ok {
				continue
			}
			// A restored shard crossed a disk boundary: hold it to the same
			// validation as one that crossed the network, and ignore stale
			// entries from a different job shape.
			if prev.Fingerprint != s.req.Fingerprint ||
				len(prev.Points) != s.id.End-s.id.Start ||
				ValidatePoints(prev.Points) != nil ||
				ValidateConv(prev.Points, prev.Conv, flow.FITRelErr > 0) != nil {
				continue
			}
			s.done, s.succeeded = true, true
			s.points = prev.Points
			s.conv = prev.Conv
			s.worker = prev.Worker
			if c.resumed != nil {
				c.resumed.Inc()
			}
			emit(ShardEvent{Kind: EventResumed, Shard: s.id, Worker: s.worker})
		}
	}

	d := newDispatcher(shards, c.cfg.now, c.cfg.StealAfter)
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	stopWake := context.AfterFunc(runCtx, d.cond.Broadcast)
	defer stopWake()

	var wg sync.WaitGroup
	for wi := range c.workers {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			c.runWorker(runCtx, d, wi, flow, emit)
		}(wi)
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("dist: run interrupted: %w", err)
	}
	return c.merge(flow, shards, emit)
}

// runWorker is one worker goroutine: claim, attempt, judge, repeat.
func (c *Coordinator) runWorker(ctx context.Context, d *dispatcher, wi int, flow finser.FlowConfig, emit func(ShardEvent)) {
	w := c.workers[wi]
	for {
		s, stolen, attempt := d.next(ctx, wi)
		if s == nil {
			return
		}
		if stolen {
			if c.stolen != nil {
				c.stolen.Inc()
			}
			emit(ShardEvent{Kind: EventStolen, Shard: s.id, Worker: w.url, Attempt: attempt})
		} else {
			if c.dispatched != nil {
				c.dispatched.Inc()
			}
			emit(ShardEvent{Kind: EventDispatched, Shard: s.id, Worker: w.url, Attempt: attempt})
		}

		start := c.cfg.now()
		pts, conv, err := c.attempt(ctx, w, s)
		if w.lat != nil {
			w.lat.Observe(c.cfg.now().Sub(start).Seconds())
		}
		c.updateHealthy()

		switch {
		case err == nil:
			if d.accept(s, wi, pts, conv, w.url) {
				if c.completed != nil {
					c.completed.Inc()
				}
				emit(ShardEvent{Kind: EventCompleted, Shard: s.id, Worker: w.url, Attempt: attempt})
				c.persist(flow, s, d)
				c.emitBins(flow, s.id, d)
			} else {
				if c.duplicate != nil {
					c.duplicate.Inc()
				}
				emit(ShardEvent{Kind: EventDuplicate, Shard: s.id, Worker: w.url, Attempt: attempt})
			}
		case errors.Is(err, breaker.ErrOpen):
			if c.Ready() != nil {
				// Every breaker in the pool is open: there is nowhere to
				// route this shard, so the skip must burn budget or an
				// unreachable pool would stall the run for the full
				// cooldown. The backoff gate still leaves room for a
				// half-open probe to rescue later attempts.
				c.judge(d, s, wi, w, attempt, errPoolOpen, emit)
				continue
			}
			// Only this worker is drained from rotation; give the shard
			// back untainted and sit out a fraction of the cooldown before
			// rejoining (the breaker itself admits the half-open probe).
			d.release(s, wi)
			c.pause(ctx, d, c.cfg.Breaker.Cooldown/4)
		case ctx.Err() != nil:
			// Shutdown, not a worker fault: leave the shard for a resumed
			// run rather than burning its budget.
			d.release(s, wi)
			return
		default:
			c.judge(d, s, wi, w, attempt, err, emit)
		}
	}
}

// errPoolOpen marks an attempt skipped because every worker breaker was open.
var errPoolOpen = errors.New("dist: every worker breaker is open")

// judge records a failed attempt and emits the retried-or-failed verdict.
func (c *Coordinator) judge(d *dispatcher, s *shardState, wi int, w *worker, attempt int, err error, emit func(ShardEvent)) {
	backoffFor := func(failures int) time.Duration {
		return c.cfg.Retry.Backoff(failures, c.cfg.Rand())
	}
	if d.fail(s, wi, err, c.cfg.ShardAttempts, backoffFor) {
		if c.failed != nil {
			c.failed.Inc()
		}
		emit(ShardEvent{Kind: EventFailed, Shard: s.id, Worker: w.url, Attempt: attempt, Err: err})
	} else {
		if c.retried != nil {
			c.retried.Inc()
		}
		emit(ShardEvent{Kind: EventRetried, Shard: s.id, Worker: w.url, Attempt: attempt, Err: err})
	}
}

// pause parks a breaker-drained worker for up to dur, waking early when the
// run is cancelled or every shard reaches a terminal state (so a sidelined
// worker never delays run completion).
func (c *Coordinator) pause(ctx context.Context, d *dispatcher, dur time.Duration) {
	if dur <= 0 {
		dur = 50 * time.Millisecond
	}
	deadline := c.cfg.now().Add(dur)
	t := time.AfterFunc(dur, d.cond.Broadcast)
	defer t.Stop()
	d.mu.Lock()
	defer d.mu.Unlock()
	for ctx.Err() == nil && d.open > 0 && c.cfg.now().Before(deadline) {
		d.cond.Wait()
	}
}

// maxShardResponse caps a worker response body; a shard of maxShardBins
// points is far below this.
const maxShardResponse = 16 << 20

// attempt runs one shard attempt against one worker through its breaker.
// Returned errors are classified for the retry layer: 4xx responses are
// permanent (the request itself is bad everywhere), everything else —
// connection failures, timeouts, 5xx, invalid payloads — is transient and
// worth a different worker.
func (c *Coordinator) attempt(ctx context.Context, w *worker, s *shardState) ([]finser.POFPoint, []finser.BinConv, error) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.ShardTimeout)
	defer cancel()
	var pts []finser.POFPoint
	var conv []finser.BinConv
	err := w.br.Do(actx, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+"/shards", bytes.NewReader(s.body))
		if err != nil {
			return retry.Permanent(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.client.Do(req)
		if err != nil {
			return fmt.Errorf("dist: %v on %s: %w", s.id, w.name, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(io.LimitReader(resp.Body, maxShardResponse))
		if err != nil {
			return fmt.Errorf("dist: %v on %s: read response: %w", s.id, w.name, err)
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			res, err := DecodeShardResult(body, s.req)
			if err != nil {
				// A corrupt success payload is the worker's fault: countable
				// for its breaker, transient for the shard.
				return fmt.Errorf("dist: %v on %s: %w", s.id, w.name, err)
			}
			pts, conv = res.Points, res.Conv
			return nil
		case resp.StatusCode >= 400 && resp.StatusCode < 500:
			return retry.Permanent(fmt.Errorf("dist: %v on %s: HTTP %d: %s",
				s.id, w.name, resp.StatusCode, truncate(body, 200)))
		default:
			return fmt.Errorf("dist: %v on %s: HTTP %d: %s",
				s.id, w.name, resp.StatusCode, truncate(body, 200))
		}
	})
	if err != nil {
		return nil, nil, err
	}
	return pts, conv, nil
}

// persist saves a completed shard to the job checkpoint so a coordinator
// restart resumes only the missing shards.
func (c *Coordinator) persist(flow finser.FlowConfig, s *shardState, d *dispatcher) {
	if flow.Checkpoint == nil {
		return
	}
	d.mu.Lock()
	rec := shardCheckpoint{Fingerprint: s.req.Fingerprint, Worker: s.worker, Points: s.points, Conv: s.conv}
	d.mu.Unlock()
	// Best effort: a checkpoint write failure must not fail the shard the
	// workers just computed; the merge only needs the in-memory points.
	_ = flow.Checkpoint.Save(shardStage(s.id), rec)
}

// emitBins replays a completed shard's bins through flow.BinDone so the
// live telemetry stream sees per-bin progress in distributed mode too.
// FITSoFar is the partial FIT over all bins completed so far — note bins
// complete out of bin order in a distributed run.
func (c *Coordinator) emitBins(flow finser.FlowConfig, id ShardID, d *dispatcher) {
	if flow.BinDone == nil {
		return
	}
	sp, _ := Species(id.Species)
	binsTotal := 0
	if b, err := finser.SpeciesBins(flow, sp); err == nil {
		binsTotal = len(b)
	}
	// Snapshot the species' completed bins under the dispatcher lock.
	adaptive := flow.FITRelErr > 0
	type binPt struct {
		idx  int
		pt   finser.POFPoint
		conv finser.BinConv
	}
	var completedBins []binPt
	d.mu.Lock()
	for _, s := range d.shards {
		if s.id.Species != id.Species || !s.succeeded {
			continue
		}
		for k, pt := range s.points {
			b := binPt{idx: s.id.Start + k, pt: pt}
			if adaptive && k < len(s.conv) {
				b.conv = s.conv[k]
			}
			completedBins = append(completedBins, b)
		}
	}
	d.mu.Unlock()
	sort.Slice(completedBins, func(i, j int) bool { return completedBins[i].idx < completedBins[j].idx })
	for _, b := range completedBins {
		if b.idx < id.Start || b.idx >= id.End {
			continue
		}
		// Partial FIT over every completed bin up to and including this one
		// (the distributed analogue of FITCtx's running sum).
		var binIdx []int
		var pts []finser.POFPoint
		for _, cb := range completedBins {
			if cb.idx > b.idx {
				break
			}
			binIdx = append(binIdx, cb.idx)
			pts = append(pts, cb.pt)
		}
		soFar := 0.0
		if fit, err := finser.AssembleSpeciesFIT(flow, sp, binIdx, pts); err == nil {
			soFar = fit.TotalFIT
		}
		flow.BinDone(finser.BinEvent{
			Stage:    "fit/" + id.Species,
			Bin:      b.idx + 1,
			Bins:     binsTotal,
			Point:    b.pt,
			FITSoFar: soFar,
			Adaptive: adaptive,
			Conv:     b.conv,
		})
	}
}

// merge folds the shard results into the job Result in deterministic plan
// order. With every shard complete the assembly runs the same float
// operations in the same order as single-node FITCtx — bit-identical by
// construction. With missing shards it returns a *PartialError carrying
// the partial FIT over the completed bins.
func (c *Coordinator) merge(flow finser.FlowConfig, shards []*shardState, emit func(ShardEvent)) (*Result, error) {
	res := &Result{Vdd: flow.Vdd}
	var missing []ShardID
	var lastErr error
	for _, out := range []struct {
		name string
		dst  *finser.FITResult
	}{
		{SpeciesAlpha, &res.Alpha},
		{SpeciesProton, &res.Proton},
	} {
		sp, _ := Species(out.name)
		adaptive := flow.FITRelErr > 0
		var binIdx []int
		var pts []finser.POFPoint
		var conv []finser.BinConv
		complete := true
		for _, s := range shards {
			if s.id.Species != out.name {
				continue
			}
			if !s.succeeded {
				complete = false
				missing = append(missing, s.id)
				if s.err != nil {
					lastErr = s.err
				}
				continue
			}
			for k, pt := range s.points {
				binIdx = append(binIdx, s.id.Start+k)
				pts = append(pts, pt)
				if adaptive && k < len(s.conv) {
					conv = append(conv, s.conv[k])
				}
			}
		}
		if complete {
			binIdx = nil // full set: assemble exactly as single-node
		}
		if len(pts) == 0 && !complete {
			continue // species entirely missing; leave zero FITResult
		}
		fit, err := finser.AssembleSpeciesFIT(flow, sp, binIdx, pts)
		if err != nil {
			return nil, fmt.Errorf("dist: merge %s: %w", out.name, err)
		}
		if adaptive {
			fit.Conv = conv
		}
		*out.dst = fit
	}
	if len(missing) > 0 {
		if lastErr == nil {
			lastErr = errors.New("shard attempts exhausted")
		}
		return nil, &PartialError{Missing: missing, Partial: res, Err: lastErr}
	}
	return res, nil
}

// encodeJSON marshals v (a shard wire message) to its request body.
func encodeJSON(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return bytes.TrimRight(buf.Bytes(), "\n"), nil
}

func truncate(b []byte, n int) string {
	s := strings.TrimSpace(string(b))
	if len(s) > n {
		return s[:n] + "…"
	}
	return s
}
