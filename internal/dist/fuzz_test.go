package dist_test

import (
	"encoding/json"
	"math"
	"testing"

	"finser"
	"finser/internal/dist"
)

// FuzzShardResultDecode hammers the coordinator's trust boundary: whatever
// bytes a worker (or an impostor on the network) returns, DecodeShardResult
// must either produce a fully validated result or a typed *dist.WireError —
// never panic, and never let a non-finite or out-of-range point through to
// the FIT merge.
func FuzzShardResultDecode(f *testing.F) {
	valid, req := fuzzSeedResult(f)
	f.Add(valid)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"fingerprint":"x","shard":{"species":"alpha","start":0,"end":1},"points":[{}]}`))
	f.Add([]byte(`{"fingerprint":"x","shard":{"species":"proton","start":0,"end":1},"points":[{"EnergyMeV":1e309}]}`))
	f.Add(valid[:len(valid)/3])
	f.Add([]byte(`[]`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, want := range []*dist.ShardRequest{nil, req} {
			res, err := dist.DecodeShardResult(data, want)
			if err != nil {
				if !dist.IsWire(err) {
					t.Fatalf("non-wire error %T from decode: %v", err, err)
				}
				continue
			}
			// Accepted results must be merge-safe: finite, in-range physics
			// aligned with the shard's bin count.
			if len(res.Points) != res.Shard.End-res.Shard.Start {
				t.Fatalf("accepted result with %d points for %v", len(res.Points), res.Shard)
			}
			for i, pt := range res.Points {
				for _, v := range []float64{pt.EnergyMeV, pt.Tot, pt.SEU, pt.MBU, pt.TotStdErr, pt.HitFrac} {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						t.Fatalf("accepted non-finite value %v in point %d", v, i)
					}
				}
				if pt.Tot < 0 || pt.Tot > 1 || pt.Strikes <= 0 {
					t.Fatalf("accepted out-of-range point %+v", pt)
				}
			}
		}
	})
}

// FuzzShardRequestDecode is the worker-side twin: arbitrary coordinator
// bytes must never panic the /shards decoder.
func FuzzShardRequestDecode(f *testing.F) {
	_, req := fuzzSeedResult(f)
	if b, err := json.Marshal(req); err == nil {
		f.Add(b)
	}
	f.Add([]byte(`{"job":{"vdd":0.7,"workers":1},"shard":{"species":"alpha","start":0,"end":1},"seeds":[1],"fingerprint":"x"}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := dist.DecodeShardRequest(data)
		if err == nil && got == nil {
			t.Fatal("nil request with nil error")
		}
	})
}

// fuzzSeedResult builds one valid (request, result) pair for the corpus.
func fuzzSeedResult(f *testing.F) ([]byte, *dist.ShardRequest) {
	f.Helper()
	flow := tinyFlow()
	spec, err := dist.SpecFromFlow(flow)
	if err != nil {
		f.Fatal(err)
	}
	sched, err := finser.SpeciesSeedSchedule(flow, finser.Alpha)
	if err != nil {
		f.Fatal(err)
	}
	id := dist.ShardID{Species: dist.SpeciesAlpha, Start: 0, End: 2}
	fp, err := dist.ShardFingerprint(spec, id, sched[0:2])
	if err != nil {
		f.Fatal(err)
	}
	req := &dist.ShardRequest{Job: spec, Shard: id, Seeds: sched[0:2], Fingerprint: fp}
	res := dist.ShardResult{
		Fingerprint: fp,
		Shard:       id,
		Points: []finser.POFPoint{
			{EnergyMeV: 1.0, Tot: 0.5, SEU: 0.4, MBU: 0.1, TotStdErr: 0.01, Strikes: 200, HitFrac: 0.9},
			{EnergyMeV: 2.0, Tot: 0.25, SEU: 0.2, MBU: 0.05, TotStdErr: 0.02, Strikes: 200, HitFrac: 0.8},
		},
	}
	b, err := json.Marshal(res)
	if err != nil {
		f.Fatal(err)
	}
	return b, req
}
