// Package dist distributes one FIT job across a fleet of worker serds and
// merges the pieces back into a result bit-identical to the single-node
// run. The shard axis is the job's natural one: energy bins × pre-drawn
// seed-schedule slices (core.FITSeedSchedule makes bin k's Monte-Carlo
// substream a pure function of the job seed, so a shard computes the same
// numbers on any machine). Robustness is the point — a worker crash,
// timeout, or 5xx re-enqueues the shard for another worker, a breaker-open
// worker is drained from rotation until its cooldown probe, stragglers are
// duplicated with first-result-wins dedup, and shards that exhaust their
// retry budget degrade the job to a typed *PartialError naming the missing
// bins with the partial FIT sum, never to a lost job.
package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"

	"finser"
	"finser/internal/checkpoint"
	"finser/internal/core"
)

// Species wire spellings.
const (
	SpeciesAlpha  = "alpha"
	SpeciesProton = "proton"
)

// WireError reports a shard wire message that failed validation — a
// corrupt, truncated, or inconsistent payload rejected at the trust
// boundary before anything reaches the merge. Match with errors.As.
type WireError struct {
	// Field names the offending message field.
	Field string
	// Reason describes the violation.
	Reason string
}

func (e *WireError) Error() string {
	return fmt.Sprintf("dist: wire field %s %s", e.Field, e.Reason)
}

// JobSpec is the result-determining job configuration on the shard wire:
// the scalar subset of finser.FlowConfig a coordinator serializes to its
// workers. Field meanings and JSON spellings match the serd job request;
// zero values select the same finser defaults. Workers is required — the
// per-worker RNG substream split depends on it, so a distributed run is
// only bit-identical to the single-node run when both pin it explicitly.
type JobSpec struct {
	Vdd              float64 `json:"vdd"`
	Rows             int     `json:"rows,omitempty"`
	Cols             int     `json:"cols,omitempty"`
	ProcessVariation bool    `json:"process_variation,omitempty"`
	Samples          int     `json:"samples,omitempty"`
	ItersPerBin      int     `json:"iters_per_bin,omitempty"`
	// FITRelErr selects the adaptive FIT mode; omitempty keeps flat-budget
	// requests decodable by workers predating the field, while an adaptive
	// request sent to such a worker fails its strict decode with a typed
	// *WireError instead of silently running the flat budget.
	FITRelErr   float64 `json:"fit_rel_err,omitempty"`
	AlphaRate   float64 `json:"alpha_rate,omitempty"`
	ProtonScale float64 `json:"proton_scale,omitempty"`
	AlphaBins   int     `json:"alpha_bins,omitempty"`
	ProtonBins  int     `json:"proton_bins,omitempty"`
	Pattern     string  `json:"pattern,omitempty"`
	Seed        uint64  `json:"seed,omitempty"`
	Workers     int     `json:"workers"`
}

// SpecFromFlow projects a validated finser.FlowConfig onto the wire spec.
// Only configurations expressible in the job API distribute: a custom
// technology card has no wire spelling and is rejected.
func SpecFromFlow(cfg finser.FlowConfig) (JobSpec, error) {
	if cfg.Tech.Name != "" && cfg.Tech.Name != finser.Default14nmSOI().Name {
		return JobSpec{}, &WireError{Field: "tech", Reason: fmt.Sprintf("custom technology %q cannot be distributed", cfg.Tech.Name)}
	}
	var pat string
	switch cfg.Pattern {
	case finser.PatternZeros:
		pat = "" // wire default
	case finser.PatternOnes:
		pat = "ones"
	case finser.PatternCheckerboard:
		pat = "checkerboard"
	default:
		return JobSpec{}, &WireError{Field: "pattern", Reason: fmt.Sprintf("unknown (%d)", cfg.Pattern)}
	}
	if cfg.Workers <= 0 {
		return JobSpec{}, &WireError{Field: "workers", Reason: "must be pinned (> 0) for a bit-identical distributed run"}
	}
	return JobSpec{
		Vdd:              cfg.Vdd,
		Rows:             cfg.Rows,
		Cols:             cfg.Cols,
		ProcessVariation: cfg.ProcessVariation,
		Samples:          cfg.Samples,
		ItersPerBin:      cfg.ItersPerBin,
		FITRelErr:        cfg.FITRelErr,
		AlphaRate:        cfg.AlphaRate,
		ProtonScale:      cfg.ProtonScale,
		AlphaBins:        cfg.AlphaBins,
		ProtonBins:       cfg.ProtonBins,
		Pattern:          pat,
		Seed:             cfg.Seed,
		Workers:          cfg.Workers,
	}, nil
}

// FlowConfig maps the wire spec back onto a finser.FlowConfig.
func (s JobSpec) FlowConfig() (finser.FlowConfig, error) {
	var pat finser.DataPattern
	switch strings.ToLower(s.Pattern) {
	case "", "zeros":
		pat = finser.PatternZeros
	case "ones":
		pat = finser.PatternOnes
	case "checkerboard":
		pat = finser.PatternCheckerboard
	default:
		return finser.FlowConfig{}, &WireError{Field: "pattern", Reason: fmt.Sprintf("unknown %q", s.Pattern)}
	}
	if s.Workers <= 0 {
		return finser.FlowConfig{}, &WireError{Field: "workers", Reason: "must be pinned (> 0) for a bit-identical distributed run"}
	}
	return finser.FlowConfig{
		Vdd:              s.Vdd,
		Rows:             s.Rows,
		Cols:             s.Cols,
		ProcessVariation: s.ProcessVariation,
		Samples:          s.Samples,
		ItersPerBin:      s.ItersPerBin,
		FITRelErr:        s.FITRelErr,
		AlphaRate:        s.AlphaRate,
		ProtonScale:      s.ProtonScale,
		AlphaBins:        s.AlphaBins,
		ProtonBins:       s.ProtonBins,
		Pattern:          pat,
		Seed:             s.Seed,
		Workers:          s.Workers,
	}, nil
}

// Species resolves the wire spelling; ok is false for anything else.
func Species(name string) (finser.Species, bool) {
	switch name {
	case SpeciesAlpha:
		return finser.Alpha, true
	case SpeciesProton:
		return finser.Proton, true
	}
	return 0, false
}

// ShardID names one shard: a half-open energy-bin range of one species'
// FIT integration.
type ShardID struct {
	// Species is "alpha" or "proton".
	Species string `json:"species"`
	// Start is the first bin index (0-based, inclusive).
	Start int `json:"start"`
	// End is the past-the-end bin index.
	End int `json:"end"`
}

func (id ShardID) String() string {
	return fmt.Sprintf("%s[%d:%d)", id.Species, id.Start, id.End)
}

// valid reports structural sanity (species known, non-empty range).
func (id ShardID) valid() error {
	if _, ok := Species(id.Species); !ok {
		return &WireError{Field: "shard.species", Reason: fmt.Sprintf("unknown %q", id.Species)}
	}
	if id.Start < 0 || id.End <= id.Start {
		return &WireError{Field: "shard", Reason: fmt.Sprintf("bad bin range [%d,%d)", id.Start, id.End)}
	}
	return nil
}

// ShardRequest is the coordinator → worker message: compute the POF points
// of one shard of the job's FIT integration.
type ShardRequest struct {
	Job   JobSpec `json:"job"`
	Shard ShardID `json:"shard"`
	// Seeds is the pre-drawn seed-schedule slice for the shard's bins —
	// derivable from (Job.Seed, Shard) on either side, carried explicitly so
	// the worker verifies both ends agree on the schedule before burning
	// Monte-Carlo budget on bins that would not merge.
	Seeds []uint64 `json:"seeds"`
	// Fingerprint is the shard identity digest (ShardFingerprint); results
	// are deduplicated, first-result-wins merged, and checkpointed under it.
	Fingerprint string `json:"fingerprint"`
}

// ShardResult is the worker → coordinator message: the shard's POF points,
// aligned with its bin range.
type ShardResult struct {
	Fingerprint string            `json:"fingerprint"`
	Shard       ShardID           `json:"shard"`
	Points      []finser.POFPoint `json:"points"`
	// Conv carries the shard's per-bin convergence records, aligned with
	// Points, when the job runs adaptively (fit_rel_err > 0); absent under
	// the flat budget. An adaptive result from a worker predating the field
	// arrives without it and is rejected at decode — version skew degrades
	// to a typed *WireError, never to a silent flat-budget merge.
	Conv []finser.BinConv `json:"conv,omitempty"`
	// Worker identifies the serd that computed the shard (diagnostics only;
	// not part of the merge).
	Worker string `json:"worker,omitempty"`
}

// ShardFingerprint digests the shard's result-determining identity: the
// job spec, the shard coordinates, and the seed slice. Two shards with the
// same fingerprint are interchangeable, which is what makes duplicate
// dispatch (work stealing) safe to dedup.
func ShardFingerprint(spec JobSpec, id ShardID, seeds []uint64) (string, error) {
	return checkpoint.Fingerprint(struct {
		Job   JobSpec  `json:"job"`
		Shard ShardID  `json:"shard"`
		Seeds []uint64 `json:"seeds"`
	}{spec, id, seeds})
}

// maxShardBins bounds how many bins one shard request may name — far above
// any real discretization, low enough that a hostile length cannot balloon
// allocations.
const maxShardBins = 4096

// DecodeShardRequest parses and validates a coordinator's shard request at
// the worker's trust boundary. Every failure is a typed *WireError; the
// seed schedule is re-derived from the job seed and must match the carried
// slice, so a coordinator/worker version skew fails loudly instead of
// merging bins from a different random stream.
func DecodeShardRequest(data []byte) (*ShardRequest, error) {
	var req ShardRequest
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, &WireError{Field: "body", Reason: "undecodable: " + err.Error()}
	}
	if err := req.Shard.valid(); err != nil {
		return nil, err
	}
	if req.Shard.End-req.Shard.Start > maxShardBins {
		return nil, &WireError{Field: "shard", Reason: fmt.Sprintf("range spans %d bins (max %d)", req.Shard.End-req.Shard.Start, maxShardBins)}
	}
	if len(req.Seeds) != req.Shard.End-req.Shard.Start {
		return nil, &WireError{Field: "seeds", Reason: fmt.Sprintf("%d seeds for a %d-bin shard", len(req.Seeds), req.Shard.End-req.Shard.Start)}
	}
	if req.Fingerprint == "" {
		return nil, &WireError{Field: "fingerprint", Reason: "missing"}
	}
	cfg, err := req.Job.FlowConfig()
	if err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, &WireError{Field: "job", Reason: err.Error()}
	}
	sp, _ := Species(req.Shard.Species)
	bins, err := finser.SpeciesBins(cfg, sp)
	if err != nil {
		return nil, &WireError{Field: "job", Reason: err.Error()}
	}
	if req.Shard.End > len(bins) {
		return nil, &WireError{Field: "shard", Reason: fmt.Sprintf("range [%d,%d) outside the %d-bin %s plan", req.Shard.Start, req.Shard.End, len(bins), req.Shard.Species)}
	}
	sched, err := finser.SpeciesSeedSchedule(cfg, sp)
	if err != nil {
		return nil, &WireError{Field: "job", Reason: err.Error()}
	}
	for k, s := range req.Seeds {
		if sched[req.Shard.Start+k] != s {
			return nil, &WireError{Field: "seeds", Reason: fmt.Sprintf("seed schedule diverges at bin %d (coordinator and worker disagree)", req.Shard.Start+k)}
		}
	}
	return &req, nil
}

// DecodeShardResult parses and validates a worker's shard result against
// the request it answers. Corrupt or truncated payloads, mismatched
// identities, and non-finite or out-of-range physics all return a typed
// *WireError — nothing unvalidated ever reaches the merge, and a NaN can
// never poison the FIT sum.
func DecodeShardResult(data []byte, want *ShardRequest) (*ShardResult, error) {
	var res ShardResult
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&res); err != nil {
		return nil, &WireError{Field: "body", Reason: "undecodable: " + err.Error()}
	}
	if want != nil {
		if res.Fingerprint != want.Fingerprint {
			return nil, &WireError{Field: "fingerprint", Reason: fmt.Sprintf("%q answers a different shard than %q", res.Fingerprint, want.Fingerprint)}
		}
		if res.Shard != want.Shard {
			return nil, &WireError{Field: "shard", Reason: fmt.Sprintf("result names %v, request named %v", res.Shard, want.Shard)}
		}
	}
	if err := res.Shard.valid(); err != nil {
		return nil, err
	}
	if len(res.Points) != res.Shard.End-res.Shard.Start {
		return nil, &WireError{Field: "points", Reason: fmt.Sprintf("%d points for a %d-bin shard", len(res.Points), res.Shard.End-res.Shard.Start)}
	}
	if err := ValidatePoints(res.Points); err != nil {
		return nil, err
	}
	if want != nil {
		if err := ValidateConv(res.Points, res.Conv, want.Job.FITRelErr > 0); err != nil {
			return nil, err
		}
	}
	return &res, nil
}

// ValidateConv checks a shard's convergence records against its points at a
// trust boundary (wire or checkpoint restore). An adaptive job requires one
// valid record per point — a result without them came from a worker that
// does not understand the adaptive mode and silently ran the flat budget,
// which must never merge. A flat job must not carry any records.
func ValidateConv(pts []finser.POFPoint, conv []finser.BinConv, adaptive bool) error {
	if !adaptive {
		if len(conv) != 0 {
			return &WireError{Field: "conv", Reason: fmt.Sprintf("%d convergence records on a flat-budget job", len(conv))}
		}
		return nil
	}
	if len(conv) != len(pts) {
		return &WireError{Field: "conv", Reason: fmt.Sprintf("%d convergence records for %d points on an adaptive job (worker ran the flat budget?)", len(conv), len(pts))}
	}
	for i := range conv {
		if err := core.CheckBinConv(conv[i], pts[i]); err != nil {
			return &WireError{Field: fmt.Sprintf("conv[%d]", i), Reason: err.Error()}
		}
	}
	return nil
}

// ValidatePoints checks shard POF points at a trust boundary (wire or
// checkpoint restore): probabilities in [0,1], errors and energies finite,
// strike counts positive. It is the same class of invariant the engine's
// guard enforces on freshly computed points.
func ValidatePoints(pts []finser.POFPoint) error {
	for i, pt := range pts {
		if !(pt.EnergyMeV > 0) || math.IsInf(pt.EnergyMeV, 0) {
			return &WireError{Field: fmt.Sprintf("points[%d].energy_mev", i), Reason: fmt.Sprintf("must be positive and finite, got %v", pt.EnergyMeV)}
		}
		for _, p := range []struct {
			name string
			v    float64
		}{
			{"tot", pt.Tot}, {"seu", pt.SEU}, {"mbu", pt.MBU}, {"hit_frac", pt.HitFrac},
		} {
			if !(p.v >= 0 && p.v <= 1) { // NaN fails both comparisons
				return &WireError{Field: fmt.Sprintf("points[%d].%s", i, p.name), Reason: fmt.Sprintf("must be a probability in [0,1], got %v", p.v)}
			}
		}
		if !(pt.TotStdErr >= 0) || math.IsInf(pt.TotStdErr, 0) {
			return &WireError{Field: fmt.Sprintf("points[%d].tot_stderr", i), Reason: fmt.Sprintf("must be non-negative and finite, got %v", pt.TotStdErr)}
		}
		if pt.Strikes <= 0 {
			return &WireError{Field: fmt.Sprintf("points[%d].strikes", i), Reason: fmt.Sprintf("must be positive, got %d", pt.Strikes)}
		}
	}
	return nil
}

// IsWire reports whether err is (or wraps) a *WireError.
func IsWire(err error) bool {
	var we *WireError
	return errors.As(err, &we)
}
