package rng

import "finser/internal/geom"

func boxForTest() geom.AABB {
	return geom.Box(geom.V(-2, 0, 1), geom.V(3, 4, 5))
}
