package rng

import (
	"math"

	"finser/internal/geom"
)

// IsotropicDirection samples a direction uniformly on the unit sphere.
// Used for alpha emission from package material, which radiates into 4π.
func (s *Source) IsotropicDirection() geom.Vec3 {
	z := 2*s.Float64() - 1
	phi := 2 * math.Pi * s.Float64()
	r := math.Sqrt(math.Max(0, 1-z*z))
	return geom.V(r*math.Cos(phi), r*math.Sin(phi), z)
}

// DownwardIsotropic samples a direction uniformly over the lower hemisphere
// (Z component <= 0), i.e. an isotropic source above the die.
func (s *Source) DownwardIsotropic() geom.Vec3 {
	d := s.IsotropicDirection()
	if d.Z > 0 {
		d.Z = -d.Z
	}
	return d
}

// CosineLawDirection samples the polar angle with the cosine law
// (pdf ∝ cosθ) around -Z, which is the correct incidence distribution for
// an isotropic external flux crossing a horizontal plane — the standard
// choice for atmospheric particles striking a die surface.
func (s *Source) CosineLawDirection() geom.Vec3 {
	// cos²θ uniform ⇒ θ cosine-distributed for flux through a plane.
	cosTheta := math.Sqrt(s.Float64())
	sinTheta := math.Sqrt(math.Max(0, 1-cosTheta*cosTheta))
	phi := 2 * math.Pi * s.Float64()
	return geom.V(sinTheta*math.Cos(phi), sinTheta*math.Sin(phi), -cosTheta)
}

// PointInBox samples a point uniformly inside the box b.
func (s *Source) PointInBox(b geom.AABB) geom.Vec3 {
	return geom.V(
		s.Uniform(b.Min.X, b.Max.X),
		s.Uniform(b.Min.Y, b.Max.Y),
		s.Uniform(b.Min.Z, b.Max.Z),
	)
}

// PointOnTopFace samples a point uniformly on the +Z face of the box.
func (s *Source) PointOnTopFace(b geom.AABB) geom.Vec3 {
	return geom.V(
		s.Uniform(b.Min.X, b.Max.X),
		s.Uniform(b.Min.Y, b.Max.Y),
		b.Max.Z,
	)
}
