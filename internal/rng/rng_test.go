package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestForkReproducible(t *testing.T) {
	p1, p2 := New(7), New(7)
	c1, c2 := p1.Fork(), p2.Fork()
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("forked substreams are not reproducible")
		}
	}
}

func TestForkIndependence(t *testing.T) {
	p := New(7)
	kids := p.ForkN(4)
	// Crude independence check: no two children share their first 8 draws.
	first := map[uint64]int{}
	for i, k := range kids {
		v := k.Uint64()
		if j, dup := first[v]; dup {
			t.Fatalf("children %d and %d share first draw", i, j)
		}
		first[v] = i
	}
}

func TestFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(seed)
		for i := 0; i < 50; i++ {
			v := s.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUniformMoments(t *testing.T) {
	s := New(3)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := s.Float64()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	varr := sum2/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %v", mean)
	}
	if math.Abs(varr-1.0/12) > 0.005 {
		t.Errorf("uniform variance = %v", varr)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(11)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := s.Normal()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	varr := sum2/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(varr-1) > 0.02 {
		t.Errorf("normal variance = %v", varr)
	}
}

func TestNormalAt(t *testing.T) {
	s := New(5)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.NormalAt(0.3, 0.03)
	}
	if mean := sum / n; math.Abs(mean-0.3) > 0.002 {
		t.Errorf("NormalAt mean = %v", mean)
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(9)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exponential(2)
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("exponential mean = %v", mean)
	}
}

func TestExponentialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on non-positive rate")
		}
	}()
	New(1).Exponential(0)
}

func TestPoissonMean(t *testing.T) {
	s := New(13)
	for _, mean := range []float64{0.5, 3, 12, 80} {
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(s.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Errorf("Poisson(%v) mean = %v", mean, got)
		}
	}
	if got := s.Poisson(-1); got != 0 {
		t.Errorf("Poisson(-1) = %d", got)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(17)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		counts[s.Intn(7)]++
	}
	for d, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("Intn digit %d count %d outside [9000,11000]", d, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestIsotropicDirectionUnit(t *testing.T) {
	s := New(23)
	var zsum float64
	for i := 0; i < 50000; i++ {
		d := s.IsotropicDirection()
		if math.Abs(d.Norm()-1) > 1e-9 {
			t.Fatalf("direction not unit: %v", d)
		}
		zsum += d.Z
	}
	if math.Abs(zsum/50000) > 0.01 {
		t.Errorf("isotropic z mean = %v, want ~0", zsum/50000)
	}
}

func TestDownwardIsotropic(t *testing.T) {
	s := New(29)
	for i := 0; i < 10000; i++ {
		if d := s.DownwardIsotropic(); d.Z > 0 {
			t.Fatalf("downward direction has positive Z: %v", d)
		}
	}
}

func TestCosineLawDirection(t *testing.T) {
	s := New(31)
	var cossum float64
	const n = 100000
	for i := 0; i < n; i++ {
		d := s.CosineLawDirection()
		if math.Abs(d.Norm()-1) > 1e-9 {
			t.Fatalf("not unit: %v", d)
		}
		if d.Z > 0 {
			t.Fatalf("cosine-law direction points up: %v", d)
		}
		cossum += -d.Z
	}
	// E[cosθ] under pdf 2cosθsinθ is 2/3.
	if mean := cossum / n; math.Abs(mean-2.0/3) > 0.005 {
		t.Errorf("cosine-law E[cosθ] = %v, want 2/3", mean)
	}
}

func TestPointSamplers(t *testing.T) {
	s := New(37)
	b := boxForTest()
	for i := 0; i < 10000; i++ {
		if p := s.PointInBox(b); !b.Contains(p) {
			t.Fatalf("PointInBox escaped: %v", p)
		}
		p := s.PointOnTopFace(b)
		if p.Z != b.Max.Z || p.X < b.Min.X || p.X >= b.Max.X {
			t.Fatalf("PointOnTopFace wrong: %v", p)
		}
	}
}
