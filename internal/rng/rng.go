// Package rng provides the deterministic pseudo-random machinery used by
// every Monte-Carlo stage of the SER flow: a small, fast 64-bit generator
// with reproducible substreams (so parallel workers draw independent,
// seed-stable sequences), plus the variate and direction samplers the
// transport and characterization layers need.
//
// The generator is SplitMix64 followed by an xorshift* scramble — adequate
// statistical quality for radiation-transport MC, tiny state, and trivially
// forkable. math/rand is deliberately not used so that substream forking is
// explicit and stable across Go releases.
package rng

import "math"

// Source is a deterministic stream of pseudo-random numbers.
// The zero value is NOT usable; construct with New or Fork.
type Source struct {
	state uint64
	gamma uint64 // odd increment; distinct gammas give distinct streams

	spare     float64 // cached second Box–Muller variate
	haveSpare bool
}

const goldenGamma = 0x9E3779B97F4A7C15

// New returns a Source seeded with seed, using the canonical stream.
func New(seed uint64) *Source {
	return &Source{state: mix(seed), gamma: goldenGamma}
}

// Fork derives an independent substream from s. Forked streams are
// reproducible: forking the same parent in the same order always yields the
// same children. The child's increment is derived from the parent draw and
// forced odd so the underlying Weyl sequence is full-period.
func (s *Source) Fork() *Source {
	st := s.Uint64()
	g := mixGamma(s.Uint64())
	return &Source{state: st, gamma: g}
}

// ForkN returns n independent substreams.
func (s *Source) ForkN(n int) []*Source {
	out := make([]*Source, n)
	for i := range out {
		out[i] = s.Fork()
	}
	return out
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func mixGamma(z uint64) uint64 {
	z = mix(z) | 1 // must be odd
	// Avoid weak gammas with too-regular bit patterns (per SplitMix64 paper).
	if popcount(z^(z>>1)) < 24 {
		z ^= 0xAAAAAAAAAAAAAAAA
	}
	return z
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	s.state += s.gamma
	return mix(s.state)
}

// Float64 returns a uniform variate in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform variate in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Multiply-shift rejection-free mapping; bias is negligible for n << 2^64.
	return int(s.Uint64() % uint64(n))
}

// Normal returns a standard normal variate (polar Box–Muller, cached pair).
func (s *Source) Normal() float64 {
	if s.haveSpare {
		s.haveSpare = false
		return s.spare
	}
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		r2 := u*u + v*v
		if r2 >= 1 || r2 == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(r2) / r2)
		s.spare = v * f
		s.haveSpare = true
		return u * f
	}
}

// NormalAt returns a normal variate with the given mean and standard
// deviation.
func (s *Source) NormalAt(mean, sigma float64) float64 {
	return mean + sigma*s.Normal()
}

// Exponential returns an exponential variate with the given rate lambda.
func (s *Source) Exponential(lambda float64) float64 {
	if lambda <= 0 {
		panic("rng: Exponential with non-positive rate")
	}
	u := s.Float64()
	// 1-u is in (0,1], keeping Log finite.
	return -math.Log(1-u) / lambda
}

// Poisson returns a Poisson variate with the given mean. For large means it
// uses a normal approximation, which is ample for e-h pair-count statistics.
func (s *Source) Poisson(mean float64) int64 {
	switch {
	case mean <= 0:
		return 0
	case mean < 30:
		l := math.Exp(-mean)
		var k int64
		p := 1.0
		for {
			p *= s.Float64()
			if p <= l {
				return k
			}
			k++
		}
	default:
		v := math.Round(s.NormalAt(mean, math.Sqrt(mean)))
		if v < 0 {
			return 0
		}
		return int64(v)
	}
}
