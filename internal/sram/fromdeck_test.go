package sram

import (
	"math"
	"strings"
	"testing"

	"finser/internal/deck"
)

func TestNewCellFromDeckMatchesBuiltin(t *testing.T) {
	tech := tech()
	d := deck.SixTCellDeck(tech, 0.8)
	fromDeck, err := NewCellFromDeck(d, tech, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	builtin := mustCell(t, 0.8, VthShifts{})
	qd, err := fromDeck.CriticalCharge(AxisI1, 1e-18, 5e-14, ShapeRect)
	if err != nil {
		t.Fatal(err)
	}
	qb, err := builtin.CriticalCharge(AxisI1, 1e-18, 5e-14, ShapeRect)
	if err != nil {
		t.Fatal(err)
	}
	// The canonical deck encodes the same cell: critical charges agree to
	// bisection resolution.
	if math.Abs(qd-qb)/qb > 0.03 {
		t.Errorf("deck cell Qcrit %v vs builtin %v", qd, qb)
	}
}

func TestNewCellFromDeckWeakenedVariant(t *testing.T) {
	// Edit the deck: weaken the left pull-down by +60 mV. Qcrit on I1 must
	// drop versus the canonical cell — the whole point of deck interop.
	tech := tech()
	d := deck.SixTCellDeck(tech, 0.8)
	for i, card := range d.Cards {
		if card.Name == "MPDL" {
			d.Cards[i].Params["dvth"] = 0.06
		}
	}
	weak, err := NewCellFromDeck(d, tech, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	nominal := mustCell(t, 0.8, VthShifts{})
	qw, err := weak.CriticalCharge(AxisI1, 1e-18, 5e-14, ShapeRect)
	if err != nil {
		t.Fatal(err)
	}
	qn, err := nominal.CriticalCharge(AxisI1, 1e-18, 5e-14, ShapeRect)
	if err != nil {
		t.Fatal(err)
	}
	if qw >= qn {
		t.Errorf("weakened deck cell Qcrit %v not below nominal %v", qw, qn)
	}
}

func TestNewCellFromDeckValidation(t *testing.T) {
	tech := tech()
	if _, err := NewCellFromDeck(deck.SixTCellDeck(tech, 0.8), tech, 0); err == nil {
		t.Error("zero vdd accepted")
	}
	// Missing required node.
	d, err := deck.Parse(strings.NewReader("R1 q 0 1k"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCellFromDeck(d, tech, 0.8); err == nil {
		t.Error("deck without qb/vdd/bl accepted")
	}
	// A deck whose cell cannot hold the state must be rejected: tie Q high
	// through a resistor strong enough to defeat the pull-down.
	broken := deck.SixTCellDeck(tech, 0.8)
	broken.Cards = append(broken.Cards, deck.Card{
		Kind: deck.CardResistor, Name: "RSHORT", Nodes: []string{"q", "vdd"}, Value: 1,
	})
	if _, err := NewCellFromDeck(broken, tech, 0.8); err == nil {
		t.Error("non-holding deck cell accepted")
	}
}
