package sram

import (
	"testing"
)

func TestWriteMarginBasics(t *testing.T) {
	wm, err := WriteMargin(tech(), 0.8, VthShifts{})
	if err != nil {
		t.Fatal(err)
	}
	// A functional cell writes with comfortable WL headroom: the margin is
	// a substantial fraction of Vdd but below it (some WL drive is needed).
	if wm < 0.1 || wm > 0.75 {
		t.Errorf("write margin = %v V at Vdd=0.8, implausible", wm)
	}
	if _, err := WriteMargin(tech(), 0, VthShifts{}); err == nil {
		t.Error("zero vdd accepted")
	}
}

func TestWriteMarginGrowsWithVdd(t *testing.T) {
	prev := 0.0
	for _, vdd := range []float64{0.7, 0.9, 1.1} {
		wm, err := WriteMargin(tech(), vdd, VthShifts{})
		if err != nil {
			t.Fatal(err)
		}
		if wm <= prev {
			t.Errorf("write margin not increasing at %v V: %v", vdd, wm)
		}
		prev = wm
	}
}

func TestWriteMarginStrongPassGateHelps(t *testing.T) {
	// A stronger pass gate (lower Vth) writes more easily.
	var strong VthShifts
	strong[PGL] = -0.06
	strong[PGR] = -0.06
	wmStrong, err := WriteMargin(tech(), 0.8, strong)
	if err != nil {
		t.Fatal(err)
	}
	wmNom, err := WriteMargin(tech(), 0.8, VthShifts{})
	if err != nil {
		t.Fatal(err)
	}
	if wmStrong <= wmNom {
		t.Errorf("strong pass gate margin %v not above nominal %v", wmStrong, wmNom)
	}
	// A stronger holding pull-up (on the Q=1 side, PUL) fights the write.
	var stubborn VthShifts
	stubborn[PUL] = -0.08
	wmStubborn, err := WriteMargin(tech(), 0.8, stubborn)
	if err != nil {
		t.Fatal(err)
	}
	if wmStubborn >= wmNom {
		t.Errorf("stronger pull-up margin %v not below nominal %v", wmStubborn, wmNom)
	}
}

func TestWriteMarginReadStabilityTradeoff(t *testing.T) {
	// Upsizing the pull-downs improves read SNM but must not improve the
	// write margin (the classic design trade-off).
	t2 := tech()
	t2.FinsPD = 2
	wm2, err := WriteMargin(t2, 0.8, VthShifts{})
	if err != nil {
		t.Fatal(err)
	}
	wm1, err := WriteMargin(tech(), 0.8, VthShifts{})
	if err != nil {
		t.Fatal(err)
	}
	if wm2 > wm1+1e-3 {
		t.Errorf("2-fin PD write margin %v above 1-fin %v", wm2, wm1)
	}
	r2, err := StaticNoiseMargin(t2, 0.8, VthShifts{}, ReadMode, 0)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := StaticNoiseMargin(tech(), 0.8, VthShifts{}, ReadMode, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r2.SNM <= r1.SNM {
		t.Errorf("2-fin PD read SNM %v not above 1-fin %v", r2.SNM, r1.SNM)
	}
}
