// Package sram implements the paper's circuit level (§4): a 6T SOI FinFET
// SRAM cell built on the MNA solver, single-event strike simulation,
// critical-charge extraction by bisection, and probability-of-failure (POF)
// characterization under threshold-voltage process variation — the data the
// paper stores in POF LUTs.
//
// Sensitive transistors. In hold mode with Q = 0 / QB = 1, three devices
// are OFF with |Vds| = Vdd and therefore collect radiation charge (the
// paper's Fig. 5a):
//
//	I1 — the pull-up PMOS on the "0" node (strike pulls Q up),
//	I2 — the pull-down NMOS on the "1" node (strike pulls QB down),
//	I3 — the pass-gate NMOS on the "0" node (strike pulls Q up from BL).
//
// POF model. For a single struck transistor, the flip threshold under
// process variation is the empirical distribution of its critical charge.
// For multi-transistor strikes, the package uses a linear flip surface
// Σ qᵢ/aᵢ ≥ 1 per variation sample (aᵢ = that sample's per-axis critical
// charges), validated against direct simulation by ValidateFlipSurface.
package sram

import (
	"fmt"
	"math"

	"finser/internal/circuit"
	"finser/internal/finfet"
)

// Role names the six transistors of the cell. "L" is the Q side, "R" the
// QB side.
type Role int

const (
	// PUL is the left (Q-side) pull-up PMOS.
	PUL Role = iota
	// PUR is the right (QB-side) pull-up PMOS.
	PUR
	// PDL is the left pull-down NMOS.
	PDL
	// PDR is the right pull-down NMOS.
	PDR
	// PGL is the left pass-gate NMOS.
	PGL
	// PGR is the right pass-gate NMOS.
	PGR
	// NumRoles is the number of transistor roles in a 6T cell.
	NumRoles
)

var roleNames = [NumRoles]string{"pu_l", "pu_r", "pd_l", "pd_r", "pg_l", "pg_r"}

// String implements fmt.Stringer.
func (r Role) String() string {
	if r >= 0 && r < NumRoles {
		return roleNames[r]
	}
	return fmt.Sprintf("Role(%d)", int(r))
}

// Axis indexes the paper's three sensitive strike currents for the
// canonical hold state Q = 0.
type Axis int

const (
	// AxisI1 is a strike on the Q-side pull-up (PUL).
	AxisI1 Axis = iota
	// AxisI2 is a strike on the QB-side pull-down (PDR).
	AxisI2
	// AxisI3 is a strike on the Q-side pass-gate (PGL).
	AxisI3
	// NumAxes is the number of sensitive strike currents.
	NumAxes
)

// String implements fmt.Stringer.
func (a Axis) String() string {
	switch a {
	case AxisI1:
		return "I1(pu)"
	case AxisI2:
		return "I2(pd)"
	case AxisI3:
		return "I3(pg)"
	default:
		return fmt.Sprintf("Axis(%d)", int(a))
	}
}

// SensitiveRole maps a strike axis to the struck transistor for a cell
// holding Q = 0. (The Q = 1 state is the mirror image; the layout level
// performs that mirroring.)
func (a Axis) SensitiveRole() Role {
	switch a {
	case AxisI1:
		return PUL
	case AxisI2:
		return PDR
	case AxisI3:
		return PGL
	default:
		panic("sram: bad axis")
	}
}

// SensitiveAxisForRole returns the strike axis a struck transistor maps to
// for a given stored bit, and ok=false when the transistor is not
// radiation-sensitive in that state. bit=false means Q = 0 (the canonical
// characterized state).
func SensitiveAxisForRole(r Role, bit bool) (Axis, bool) {
	if bit {
		// Q = 1: mirror the cell left-right.
		switch r {
		case PUR:
			return AxisI1, true
		case PDL:
			return AxisI2, true
		case PGR:
			return AxisI3, true
		default:
			return 0, false
		}
	}
	switch r {
	case PUL:
		return AxisI1, true
	case PDR:
		return AxisI2, true
	case PGL:
		return AxisI3, true
	default:
		return 0, false
	}
}

// PulseShape selects the injected current waveform for strike simulation.
type PulseShape int

const (
	// ShapeRect is the paper's rectangular drift-current pulse.
	ShapeRect PulseShape = iota
	// ShapeTriangle is the triangular pulse of the shape-sensitivity study.
	ShapeTriangle
	// ShapeDoubleExp is the classic double-exponential SEU model.
	ShapeDoubleExp
)

// Cell is a 6T SRAM cell instance ready for strike simulation. Build one
// per (technology, Vdd, per-transistor Vth) combination; strike simulations
// reuse it.
type Cell struct {
	Tech finfet.Technology
	Vdd  float64

	ckt     *circuit.Circuit
	q, qb   circuit.Node
	vddNode circuit.Node
	blNode  circuit.Node
	init    circuit.Solution
	strikes [NumAxes]*settableWaveform
	metrics *Metrics // nil = uninstrumented (see SetMetrics)
}

// settableWaveform lets strike sources be re-armed between simulations
// without rebuilding the netlist.
type settableWaveform struct{ w circuit.Waveform }

// Value implements circuit.Waveform.
func (s *settableWaveform) Value(t float64) float64 {
	if s.w == nil {
		return 0
	}
	return s.w.Value(t)
}

// Breakpoints implements circuit.Waveform.
func (s *settableWaveform) Breakpoints() []float64 {
	if s.w == nil {
		return nil
	}
	return s.w.Breakpoints()
}

// VthShifts holds per-role threshold shifts (added to the nominal Vth) for
// one process-variation sample. The zero value is the nominal cell.
type VthShifts [NumRoles]float64

// NewCell builds the hold-mode 6T cell netlist (WL = 0, BL = BLB = Vdd) and
// solves its DC state with Q = 0, QB = Vdd.
func NewCell(tech finfet.Technology, vdd float64, shifts VthShifts) (*Cell, error) {
	if vdd <= 0 {
		return nil, fmt.Errorf("sram: non-positive vdd %g", vdd)
	}
	cell, err := buildCell(tech, vdd, shifts, 0)
	if err != nil {
		return nil, err
	}
	// Sanity: the intended hold state must actually be the converged one.
	if q, qb := cell.HoldVoltages(); q > 0.1*vdd || qb < 0.9*vdd {
		return nil, fmt.Errorf("sram: hold state not bistable: q=%.3g qb=%.3g", q, qb)
	}
	return cell, nil
}

// buildCell constructs the netlist with the given word-line voltage and
// solves the DC state with Q low, QB high.
func buildCell(tech finfet.Technology, vdd float64, shifts VthShifts, wlVoltage float64) (*Cell, error) {
	c := circuit.New()
	cell := &Cell{Tech: tech, Vdd: vdd, ckt: c}

	cell.q = c.Node("q")
	cell.qb = c.Node("qb")
	cell.vddNode = c.Node("vdd")
	cell.blNode = c.Node("bl")
	blb := c.Node("blb")
	wl := c.Node("wl")

	c.AddVSource("vdd", cell.vddNode, circuit.Ground, circuit.DC(vdd))
	c.AddVSource("vbl", cell.blNode, circuit.Ground, circuit.DC(vdd))
	c.AddVSource("vblb", blb, circuit.Ground, circuit.DC(vdd))
	c.AddVSource("vwl", wl, circuit.Ground, circuit.DC(wlVoltage))

	params := func(role Role) finfet.Params {
		var p finfet.Params
		switch role {
		case PUL, PUR:
			p = finfet.ParamsFor(tech, finfet.PChannel, tech.PUFins())
		case PDL, PDR:
			p = finfet.ParamsFor(tech, finfet.NChannel, tech.PDFins())
		default:
			p = finfet.ParamsFor(tech, finfet.NChannel, tech.PGFins())
		}
		p.Vth += shifts[role]
		return p
	}

	// Cross-coupled inverters.
	c.AddDevice(finfet.NewTransistor("pu_l", params(PUL), cell.q, cell.qb, cell.vddNode))
	c.AddDevice(finfet.NewTransistor("pd_l", params(PDL), cell.q, cell.qb, circuit.Ground))
	c.AddDevice(finfet.NewTransistor("pu_r", params(PUR), cell.qb, cell.q, cell.vddNode))
	c.AddDevice(finfet.NewTransistor("pd_r", params(PDR), cell.qb, cell.q, circuit.Ground))
	// Pass gates (off in hold).
	c.AddDevice(finfet.NewTransistor("pg_l", params(PGL), cell.blNode, wl, cell.q))
	c.AddDevice(finfet.NewTransistor("pg_r", params(PGR), blb, wl, cell.qb))
	// Storage-node capacitance.
	c.AddCapacitor("cq", cell.q, circuit.Ground, tech.NodeCapF)
	c.AddCapacitor("cqb", cell.qb, circuit.Ground, tech.NodeCapF)

	// Strike sources for the three sensitive axes (armed per simulation).
	for a := AxisI1; a < NumAxes; a++ {
		cell.strikes[a] = &settableWaveform{}
	}
	// I1: from Vdd into Q (through the struck PUL).
	c.AddISource("i1", cell.vddNode, cell.q, cell.strikes[AxisI1])
	// I2: from QB into ground (through the struck PDR).
	c.AddISource("i2", cell.qb, circuit.Ground, cell.strikes[AxisI2])
	// I3: from BL into Q (through the struck PGL).
	c.AddISource("i3", cell.blNode, cell.q, cell.strikes[AxisI3])

	sol, err := c.OperatingPoint(map[circuit.Node]float64{
		cell.q:       0,
		cell.qb:      vdd,
		cell.vddNode: vdd,
		cell.blNode:  vdd,
		blb:          vdd,
	})
	if err != nil {
		return nil, fmt.Errorf("sram: cell DC failed: %w", err)
	}
	cell.init = sol
	return cell, nil
}

// HoldVoltages returns the DC hold voltages (q, qb).
func (c *Cell) HoldVoltages() (q, qb float64) {
	return c.init[c.q], c.init[c.qb]
}

// StrikeResult reports one simulated strike.
type StrikeResult struct {
	Flipped bool
	QFinal  float64
	QBFinal float64
}

// simWindow is the post-strike settling window in seconds; the cell's
// feedback resolves within a few ps, so 200 ps is decisively settled.
const simWindow = 200e-12

// strikeStart is when the pulse begins, leaving a clean pre-strike
// baseline.
const strikeStart = 1e-12

// SimulateStrike injects the given charges (coulombs, indexed by axis) as
// pulses of the given shape and reports whether the cell flipped. A zero
// charge disables that axis. The pulse width is the paper's transit time
// τ = L²/(µe·Vdd).
func (c *Cell) SimulateStrike(charges [NumAxes]float64, shape PulseShape) (StrikeResult, error) {
	tau := c.Tech.TransitTime(c.Vdd)
	for a := AxisI1; a < NumAxes; a++ {
		c.strikes[a].w = buildPulse(shape, charges[a], tau)
	}
	defer func() {
		for a := AxisI1; a < NumAxes; a++ {
			c.strikes[a].w = nil
		}
	}()

	res, err := c.ckt.Transient(c.init, circuit.TransientSpec{
		TStop:    simWindow,
		InitStep: tau / 8,
		MaxStep:  simWindow / 40,
	})
	if err != nil {
		return StrikeResult{}, fmt.Errorf("sram: strike transient: %w", err)
	}
	q, qb := res.Final(c.q), res.Final(c.qb)
	out := StrikeResult{Flipped: q > qb, QFinal: q, QBFinal: qb}
	if m := c.metrics; m != nil {
		m.FlipSims.Inc()
		if out.Flipped {
			m.Flips.Inc()
		}
	}
	return out, nil
}

// buildPulse constructs a charge-carrying pulse of the requested shape.
func buildPulse(shape PulseShape, charge, tau float64) circuit.Waveform {
	if charge <= 0 {
		return nil
	}
	switch shape {
	case ShapeRect:
		return circuit.RectPulse{T0: strikeStart, Width: tau, Amp: charge / tau}
	case ShapeTriangle:
		return circuit.TriPulse{T0: strikeStart, Width: 2 * tau, Amp: charge / tau}
	case ShapeDoubleExp:
		return circuit.DoubleExpWithCharge(strikeStart, tau/5, 2*tau, charge)
	default:
		panic("sram: unknown pulse shape")
	}
}

// CriticalCharge finds, by bisection in log-charge, the smallest charge on
// the given axis that flips the cell. It returns +Inf when even hi cannot
// flip the cell, and lo when lo already flips it.
func (c *Cell) CriticalCharge(axis Axis, lo, hi float64, shape PulseShape) (float64, error) {
	if lo <= 0 || hi <= lo {
		return 0, fmt.Errorf("sram: need 0 < lo < hi, got %g, %g", lo, hi)
	}
	flipAt := func(q float64) (bool, error) {
		if m := c.metrics; m != nil {
			m.BisectionSteps.Inc()
		}
		var ch [NumAxes]float64
		ch[axis] = q
		r, err := c.SimulateStrike(ch, shape)
		return r.Flipped, err
	}
	hiFlips, err := flipAt(hi)
	if err != nil {
		return 0, err
	}
	if !hiFlips {
		return math.Inf(1), nil
	}
	loFlips, err := flipAt(lo)
	if err != nil {
		return 0, err
	}
	if loFlips {
		return lo, nil
	}
	// Log bisection to ~1% resolution.
	for math.Log(hi/lo) > 0.01 {
		mid := math.Sqrt(lo * hi)
		f, err := flipAt(mid)
		if err != nil {
			return 0, err
		}
		if f {
			hi = mid
		} else {
			lo = mid
		}
	}
	return math.Sqrt(lo * hi), nil
}
