package sram

import (
	"fmt"

	"finser/internal/circuit"
	"finser/internal/deck"
	"finser/internal/finfet"
)

// NewCellFromDeck builds a strike-ready cell from a user-supplied SPICE
// deck instead of the library's canonical 6T netlist — "bring your own
// cell". The deck must expose the canonical node names (q, qb, bl, blb,
// vdd; ground is 0) and already encode the operating condition (rail
// values, word-line level). The three sensitive-axis strike sources are
// attached exactly as in NewCell, so CriticalCharge and SimulateStrike
// work unchanged — read-port variants, different fin counts, or weakened
// transistors (dvth=...) all flow through the same characterization.
func NewCellFromDeck(d *deck.Deck, tech finfet.Technology, vdd float64) (*Cell, error) {
	if vdd <= 0 {
		return nil, fmt.Errorf("sram: non-positive vdd %g", vdd)
	}
	c, nodes, err := d.Build(tech)
	if err != nil {
		return nil, fmt.Errorf("sram: deck build: %w", err)
	}
	need := func(name string) (circuit.Node, error) {
		n, ok := nodes[name]
		if !ok {
			return 0, fmt.Errorf("sram: deck is missing required node %q", name)
		}
		return n, nil
	}
	cell := &Cell{Tech: tech, Vdd: vdd, ckt: c}
	if cell.q, err = need("q"); err != nil {
		return nil, err
	}
	if cell.qb, err = need("qb"); err != nil {
		return nil, err
	}
	if cell.vddNode, err = need("vdd"); err != nil {
		return nil, err
	}
	if cell.blNode, err = need("bl"); err != nil {
		return nil, err
	}

	for a := AxisI1; a < NumAxes; a++ {
		cell.strikes[a] = &settableWaveform{}
	}
	c.AddISource("i1_strike", cell.vddNode, cell.q, cell.strikes[AxisI1])
	c.AddISource("i2_strike", cell.qb, circuit.Ground, cell.strikes[AxisI2])
	c.AddISource("i3_strike", cell.blNode, cell.q, cell.strikes[AxisI3])

	nodeset := map[circuit.Node]float64{
		cell.q:       0,
		cell.qb:      vdd,
		cell.vddNode: vdd,
		cell.blNode:  vdd,
	}
	if blb, ok := nodes["blb"]; ok {
		nodeset[blb] = vdd
	}
	sol, err := c.OperatingPoint(nodeset)
	if err != nil {
		return nil, fmt.Errorf("sram: deck cell DC failed: %w", err)
	}
	if sol[cell.q] > 0.45*vdd || sol[cell.qb] < 0.8*vdd {
		return nil, fmt.Errorf("sram: deck cell does not hold q=0: q=%.3g qb=%.3g",
			sol[cell.q], sol[cell.qb])
	}
	cell.init = sol
	return cell, nil
}
