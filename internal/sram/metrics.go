package sram

import (
	"finser/internal/circuit"
	"finser/internal/guard"
	"finser/internal/obs"
)

// Metrics is the circuit-level characterization's observability hook:
// variation samples completed, bisection probes, strike simulations, plus
// the underlying MNA solver's counters. Nil (the default) costs nothing —
// every consumer guards the field load, and the obs counters are
// nil-receiver no-ops.
type Metrics struct {
	// VariationSamples counts completed process-variation samples.
	VariationSamples *obs.Counter
	// BisectionSteps counts critical-charge bisection probes (each one a
	// full strike transient).
	BisectionSteps *obs.Counter
	// FlipSims counts strike transient simulations.
	FlipSims *obs.Counter
	// Flips counts strike simulations that flipped the cell.
	Flips *obs.Counter
	// Solver carries the MNA solver counters shared by every cell built
	// under this characterization.
	Solver *circuit.Metrics
}

// NewMetrics registers the characterization counters on r under the "sram."
// prefix (and the solver's under "circuit."). Returns nil when r is nil.
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		VariationSamples: r.Counter("sram.variation_samples"),
		BisectionSteps:   r.Counter("sram.bisection_steps"),
		FlipSims:         r.Counter("sram.flip_sims"),
		Flips:            r.Counter("sram.flips"),
		Solver:           circuit.NewMetrics(r),
	}
}

// SetMetrics attaches observability to the cell: strike-simulation counters
// on the cell itself and solver counters on its underlying circuit. A nil
// argument detaches both.
func (c *Cell) SetMetrics(m *Metrics) {
	c.metrics = m
	if m == nil {
		c.ckt.Metrics = nil
		return
	}
	c.ckt.Metrics = m.Solver
}

// SetGuard attaches invariant checking to the cell's underlying circuit:
// the transient solver trips the guard's finite-solution invariant if an
// accepted step contains NaN or Inf node voltages. Nil detaches.
func (c *Cell) SetGuard(g *guard.Guard) {
	c.ckt.Guard = g
}
