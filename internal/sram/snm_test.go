package sram

import (
	"testing"
)

func TestHoldSNMReasonable(t *testing.T) {
	res, err := StaticNoiseMargin(tech(), 0.8, VthShifts{}, HoldMode, 48)
	if err != nil {
		t.Fatal(err)
	}
	// Hold SNM of a balanced 6T cell is a substantial fraction of Vdd/2.
	if res.SNM < 0.1 || res.SNM > 0.45 {
		t.Errorf("hold SNM = %v V at 0.8 V, implausible", res.SNM)
	}
	// A symmetric cell has near-equal margins per attacked state.
	if diff := res.Flip0 - res.Flip1; diff > 0.03 || diff < -0.03 {
		t.Errorf("margins asymmetric on a symmetric cell: %v vs %v", res.Flip0, res.Flip1)
	}
}

func TestSNMDecreasesWithVdd(t *testing.T) {
	prev := 0.0
	for _, vdd := range []float64{0.7, 0.9, 1.1} {
		res, err := StaticNoiseMargin(tech(), vdd, VthShifts{}, HoldMode, 40)
		if err != nil {
			t.Fatal(err)
		}
		if res.SNM <= prev {
			t.Errorf("SNM(%v V) = %v not increasing with Vdd", vdd, res.SNM)
		}
		prev = res.SNM
	}
}

func TestReadSNMBelowHoldSNM(t *testing.T) {
	// The conducting pass gate degrades the low lobe: read SNM < hold SNM —
	// the textbook result, and the DC cousin of the read-mode Qcrit drop.
	hold, err := StaticNoiseMargin(tech(), 0.8, VthShifts{}, HoldMode, 48)
	if err != nil {
		t.Fatal(err)
	}
	read, err := StaticNoiseMargin(tech(), 0.8, VthShifts{}, ReadMode, 48)
	if err != nil {
		t.Fatal(err)
	}
	if read.SNM >= hold.SNM {
		t.Errorf("read SNM %v not below hold SNM %v", read.SNM, hold.SNM)
	}
	if read.SNM <= 0 {
		t.Error("read SNM should remain positive (cell is read-stable)")
	}
}

func TestSNMVariationSkewsLobes(t *testing.T) {
	// Skewing one inverter shrinks one lobe: the worst-case SNM drops.
	var sk VthShifts
	sk[PDL] = 0.09
	skewed, err := StaticNoiseMargin(tech(), 0.8, sk, HoldMode, 48)
	if err != nil {
		t.Fatal(err)
	}
	nominal, err := StaticNoiseMargin(tech(), 0.8, VthShifts{}, HoldMode, 48)
	if err != nil {
		t.Fatal(err)
	}
	if skewed.SNM >= nominal.SNM {
		t.Errorf("skewed SNM %v not below nominal %v", skewed.SNM, nominal.SNM)
	}
}

func TestSNMTracksQcrit(t *testing.T) {
	// The DC and transient stability metrics must move together across Vdd:
	// their ratio should vary far less than either quantity.
	type point struct{ snm, qc float64 }
	var pts []point
	for _, vdd := range []float64{0.7, 1.1} {
		s, err := StaticNoiseMargin(tech(), vdd, VthShifts{}, HoldMode, 40)
		if err != nil {
			t.Fatal(err)
		}
		cell := mustCell(t, vdd, VthShifts{})
		qc, err := cell.CriticalCharge(AxisI1, 1e-18, 5e-14, ShapeRect)
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, point{snm: s.SNM, qc: qc})
	}
	snmRatio := pts[1].snm / pts[0].snm
	qcRatio := pts[1].qc / pts[0].qc
	if snmRatio <= 1 || qcRatio <= 1 {
		t.Fatalf("both metrics should grow with Vdd: snm×%v qc×%v", snmRatio, qcRatio)
	}
	// Agreement within a factor of 2 on the growth rates.
	rel := snmRatio / qcRatio
	if rel < 0.5 || rel > 2 {
		t.Errorf("SNM and Qcrit diverge across Vdd: ratios %v vs %v", snmRatio, qcRatio)
	}
}

func TestSNMValidation(t *testing.T) {
	if _, err := StaticNoiseMargin(tech(), 0, VthShifts{}, HoldMode, 0); err == nil {
		t.Error("zero vdd accepted")
	}
}
