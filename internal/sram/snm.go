package sram

import (
	"fmt"
	"math"

	"finser/internal/circuit"
	"finser/internal/finfet"
)

// Static noise margin (SNM) extraction, by Seevinck's operational
// definition: the largest DC noise voltage that can be inserted in series
// with both inverter inputs, in the worst-case polarity, without
// destroying the stored state. It is the DC counterpart of the critical
// charge (both measure the same separatrix), so the two must track each
// other across supply voltage and operating mode; the flow uses SNM as an
// independent cross-check on the transient Qcrit extraction and as the
// designer-facing stability number.

// SNMResult carries the extracted noise margins.
type SNMResult struct {
	Vdd float64
	// SNM is the worst-case margin: min over the two noise polarities.
	SNM float64
	// Flip0 and Flip1 are the margins against flipping the Q=0 and Q=1
	// states respectively (equal for a symmetric cell).
	Flip0, Flip1 float64
	Mode         CellMode
}

// snmCell builds the cell with series noise sources of value vn inserted
// at both inverter inputs in the polarity that attacks the Q=0 state
// (raises the left gate's view of QB? no — lowers the right inverter's
// input headroom and lifts Q's image). attack1 mirrors the polarity to
// attack the Q=1 state instead.
func snmBistable(tech finfet.Technology, vdd float64, shifts VthShifts, mode CellMode, vn float64, attack1 bool) (bool, error) {
	c := circuit.New()
	q := c.Node("q")
	qb := c.Node("qb")
	qIn := c.Node("q_in")   // right inverter's input (Q side, after noise)
	qbIn := c.Node("qb_in") // left inverter's input (QB side, after noise)
	vddN := c.Node("vdd")
	bl := c.Node("bl")
	blb := c.Node("blb")
	wl := c.Node("wl")

	c.AddVSource("vdd", vddN, circuit.Ground, circuit.DC(vdd))
	c.AddVSource("vbl", bl, circuit.Ground, circuit.DC(vdd))
	c.AddVSource("vblb", blb, circuit.Ground, circuit.DC(vdd))
	wlV := 0.0
	if mode == ReadMode {
		wlV = vdd
	}
	c.AddVSource("vwl", wl, circuit.Ground, circuit.DC(wlV))

	// Worst-case polarity against Q=0: make the left inverter see a LOWER
	// QB (weakens its pull-down of Q... the left inverter drives Q from
	// input QB) and the right inverter see a HIGHER Q — both push toward
	// the flip. attack1 mirrors the signs.
	sign := 1.0
	if attack1 {
		sign = -1
	}
	// qb_in = qb - sign*vn ; q_in = q + sign*vn.
	c.AddVSource("vn_l", qb, qbIn, circuit.DC(sign*vn))
	c.AddVSource("vn_r", qIn, q, circuit.DC(sign*vn))

	params := func(role Role) finfet.Params {
		var p finfet.Params
		switch role {
		case PUL, PUR:
			p = finfet.ParamsFor(tech, finfet.PChannel, tech.PUFins())
		case PDL, PDR:
			p = finfet.ParamsFor(tech, finfet.NChannel, tech.PDFins())
		default:
			p = finfet.ParamsFor(tech, finfet.NChannel, tech.PGFins())
		}
		p.Vth += shifts[role]
		return p
	}
	c.AddDevice(finfet.NewTransistor("pu_l", params(PUL), q, qbIn, vddN))
	c.AddDevice(finfet.NewTransistor("pd_l", params(PDL), q, qbIn, circuit.Ground))
	c.AddDevice(finfet.NewTransistor("pu_r", params(PUR), qb, qIn, vddN))
	c.AddDevice(finfet.NewTransistor("pd_r", params(PDR), qb, qIn, circuit.Ground))
	c.AddDevice(finfet.NewTransistor("pg_l", params(PGL), bl, wl, q))
	c.AddDevice(finfet.NewTransistor("pg_r", params(PGR), blb, wl, qb))

	// Does the attacked state still exist? Converge from its basin and see
	// where Newton lands.
	var nodeset map[circuit.Node]float64
	if attack1 {
		nodeset = map[circuit.Node]float64{q: vdd, qb: 0, vddN: vdd, bl: vdd, blb: vdd}
	} else {
		nodeset = map[circuit.Node]float64{q: 0, qb: vdd, vddN: vdd, bl: vdd, blb: vdd}
	}
	sol, err := c.OperatingPoint(nodeset)
	if err != nil {
		// Non-convergence at the bifurcation point counts as state loss.
		return false, nil
	}
	if attack1 {
		return sol[q] > sol[qb], nil
	}
	return sol[qb] > sol[q], nil
}

// StaticNoiseMargin extracts the hold- or read-mode SNM by bisecting the
// series noise voltage to the bistability boundary (resolution ~0.5 mV).
// The points parameter is accepted for API stability but unused by the
// bisection method (pass 0).
func StaticNoiseMargin(tech finfet.Technology, vdd float64, shifts VthShifts, mode CellMode, points int) (SNMResult, error) {
	if vdd <= 0 {
		return SNMResult{}, fmt.Errorf("sram: SNM needs positive vdd")
	}
	_ = points
	margin := func(attack1 bool) (float64, error) {
		ok, err := snmBistable(tech, vdd, shifts, mode, 0, attack1)
		if err != nil {
			return 0, err
		}
		if !ok {
			return 0, nil // state does not exist even without noise
		}
		lo, hi := 0.0, vdd/2
		okHi, err := snmBistable(tech, vdd, shifts, mode, hi, attack1)
		if err != nil {
			return 0, err
		}
		if okHi {
			return hi, nil // margin saturates at the search ceiling
		}
		for hi-lo > 5e-4 {
			mid := (lo + hi) / 2
			ok, err := snmBistable(tech, vdd, shifts, mode, mid, attack1)
			if err != nil {
				return 0, err
			}
			if ok {
				lo = mid
			} else {
				hi = mid
			}
		}
		return (lo + hi) / 2, nil
	}
	f0, err := margin(false)
	if err != nil {
		return SNMResult{}, err
	}
	f1, err := margin(true)
	if err != nil {
		return SNMResult{}, err
	}
	return SNMResult{
		Vdd:   vdd,
		Mode:  mode,
		Flip0: f0,
		Flip1: f1,
		SNM:   math.Min(f0, f1),
	}, nil
}
