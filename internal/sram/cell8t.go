package sram

import (
	"fmt"

	"finser/internal/circuit"
	"finser/internal/finfet"
)

// The 8T read-decoupled cell: a 6T core plus a two-transistor read stack
// (read pass-gate RPG under read word line, read pull-down RPD gated by
// QB, discharging a separate read bit line). Reads never connect the
// storage nodes to a bit line, so the 8T cell has no read-disturb — and,
// for soft errors, a strike on the read stack dumps its charge into the
// read bit line path instead of a storage node. The cell trades area
// (two more fins of strike cross-section, all benign) for read stability.
type Cell8T struct {
	*Cell
	readStrike *settableWaveform
	rblNode    circuit.Node
	xNode      circuit.Node
}

// NewCell8T builds the 8T cell in hold or read mode (read mode drives the
// read word line high; the write word line stays low either way, which is
// exactly how the 8T is operated). shifts index the shared 6T roles; the
// read stack uses nominal devices.
func NewCell8T(tech finfet.Technology, vdd float64, shifts VthShifts, mode CellMode) (*Cell8T, error) {
	base, err := buildCell(tech, vdd, shifts, 0) // write WL low in both modes
	if err != nil {
		return nil, err
	}
	c := base.ckt

	rwl := c.Node("rwl")
	rbl := c.Node("rbl")
	x := c.Node("rx")
	rwlV := 0.0
	if mode == ReadMode {
		rwlV = vdd
	}
	c.AddVSource("vrwl", rwl, circuit.Ground, circuit.DC(rwlV))
	c.AddVSource("vrbl", rbl, circuit.Ground, circuit.DC(vdd)) // precharged

	pgN := finfet.ParamsFor(tech, finfet.NChannel, tech.PGFins())
	pdN := finfet.ParamsFor(tech, finfet.NChannel, tech.PDFins())
	// Read stack: RBL → RPG → X → RPD → GND, RPD gated by QB. The internal
	// node carries its junction capacitance, which is what transiently
	// absorbs a strike's charge.
	c.AddDevice(finfet.NewTransistor("rpg", pgN, rbl, rwl, x))
	c.AddDevice(finfet.NewTransistor("rpd", pdN, x, base.qb, circuit.Ground))
	c.AddCapacitor("cx", x, circuit.Ground, tech.NodeCapF/2)

	cell := &Cell8T{Cell: base, rblNode: rbl, xNode: x}
	cell.readStrike = &settableWaveform{}
	// A read-stack strike collects from the RBL junction of the off RPG
	// into the internal node X.
	c.AddISource("irp", rbl, x, cell.readStrike)

	sol, err := c.OperatingPoint(map[circuit.Node]float64{
		base.q: 0, base.qb: vdd, base.vddNode: vdd,
		base.blNode: vdd, rbl: vdd, x: 0,
	})
	if err != nil {
		return nil, fmt.Errorf("sram: 8T DC failed: %w", err)
	}
	if sol[base.q] > 0.1*vdd || sol[base.qb] < 0.9*vdd {
		return nil, fmt.Errorf("sram: 8T cell not holding: q=%.3g qb=%.3g",
			sol[base.q], sol[base.qb])
	}
	cell.init = sol
	return cell, nil
}

// SimulateReadPortStrike injects a charge into the read stack's internal
// node and reports whether the *storage* flipped — the decoupling claim is
// that it never does.
func (c *Cell8T) SimulateReadPortStrike(charge float64) (StrikeResult, error) {
	tau := c.Tech.TransitTime(c.Vdd)
	if charge > 0 {
		c.readStrike.w = circuit.RectPulse{T0: strikeStart, Width: tau, Amp: charge / tau}
	}
	defer func() { c.readStrike.w = nil }()
	res, err := c.ckt.Transient(c.init, circuit.TransientSpec{
		TStop:    simWindow,
		InitStep: tau / 8,
		MaxStep:  simWindow / 40,
	})
	if err != nil {
		return StrikeResult{}, fmt.Errorf("sram: read-port strike: %w", err)
	}
	q, qb := res.Final(c.q), res.Final(c.qb)
	return StrikeResult{Flipped: q > qb, QFinal: q, QBFinal: qb}, nil
}
