package sram

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"finser/internal/guard"
)

// GridLUT is the paper's literal POF look-up-table format: POF sampled on
// charge grids "for different supply voltages, current pulse magnitudes,
// and all possible combinations of current pulses" (§4). Single-axis
// strikes use a dense 1-D grid; two- and three-axis combinations use
// coarser 2-D/3-D grids with multi-linear interpolation in log-charge.
//
// A GridLUT is pure data: once built (from a Characterization) it can be
// serialized, shipped, and evaluated without the underlying Monte-Carlo
// samples — exactly the role the paper's LUTs play between its circuit and
// array levels. The Characterization's sample-based POF is the reference;
// BuildGridLUT's tests bound the interpolation error against it.
type GridLUT struct {
	Vdd float64 `json:"vdd"`
	// QGrid is the log-spaced charge grid (coulombs) shared by all axes.
	QGrid []float64 `json:"q_grid"`
	// Single[axis][i] = POF for charge QGrid[i] on that axis alone.
	Single [NumAxes][]float64 `json:"single"`
	// CoarseGrid is the reduced grid used by multi-axis tables.
	CoarseGrid []float64 `json:"coarse_grid"`
	// Pairs[k][i][j] = POF for (QCoarse[i] on axis a, QCoarse[j] on axis b)
	// where k indexes the axis pairs (0,1), (0,2), (1,2).
	Pairs [3][][]float64 `json:"pairs"`
	// Triple[i][j][k] = POF for charges on all three axes.
	Triple [][][]float64 `json:"triple"`
}

// pairIndex maps an axis pair to its Pairs slot.
func pairIndex(a, b Axis) int {
	switch {
	case a == AxisI1 && b == AxisI2:
		return 0
	case a == AxisI1 && b == AxisI3:
		return 1
	default:
		return 2 // (I2, I3)
	}
}

// BuildGridLUT samples the characterization's POF onto grids. nFine and
// nCoarse are the grid sizes (0 selects 48 and 10). The grid spans
// [qLo, qHi]; zeros select a span bracketing the characterization's
// critical-charge range with a ×4 margin on both sides.
func BuildGridLUT(ch *Characterization, nFine, nCoarse int, qLo, qHi float64) (*GridLUT, error) {
	if nFine <= 1 {
		nFine = 48
	}
	if nCoarse <= 1 {
		nCoarse = 14
	}
	if qLo <= 0 || qHi <= qLo {
		lo, hi := math.Inf(1), 0.0
		for a := AxisI1; a < NumAxes; a++ {
			if v := ch.QcritQuantile(a, 0.01); v < lo {
				lo = v
			}
			if v := ch.QcritQuantile(a, 0.99); v > hi && !math.IsInf(v, 1) {
				hi = v
			}
		}
		if math.IsInf(lo, 1) || hi <= 0 {
			return nil, errors.New("sram: characterization has no finite critical charges")
		}
		qLo, qHi = lo/3, hi*3
	}
	g := &GridLUT{Vdd: ch.Vdd}
	g.QGrid = logGrid(qLo, qHi, nFine)
	g.CoarseGrid = logGrid(qLo, qHi, nCoarse)

	for a := AxisI1; a < NumAxes; a++ {
		g.Single[a] = make([]float64, nFine)
		for i, q := range g.QGrid {
			g.Single[a][i] = ch.POFSingle(a, q)
		}
	}
	pairs := [3][2]Axis{{AxisI1, AxisI2}, {AxisI1, AxisI3}, {AxisI2, AxisI3}}
	for k, p := range pairs {
		tab := make([][]float64, nCoarse)
		for i := range tab {
			tab[i] = make([]float64, nCoarse)
			for j := range tab[i] {
				var q [NumAxes]float64
				q[p[0]] = g.CoarseGrid[i]
				q[p[1]] = g.CoarseGrid[j]
				tab[i][j] = ch.POF(q)
			}
		}
		g.Pairs[k] = tab
	}
	g.Triple = make([][][]float64, nCoarse)
	for i := range g.Triple {
		g.Triple[i] = make([][]float64, nCoarse)
		for j := range g.Triple[i] {
			g.Triple[i][j] = make([]float64, nCoarse)
			for k := range g.Triple[i][j] {
				q := [NumAxes]float64{g.CoarseGrid[i], g.CoarseGrid[j], g.CoarseGrid[k]}
				g.Triple[i][j][k] = ch.POF(q)
			}
		}
	}
	return g, nil
}

func logGrid(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	l0, l1 := math.Log(lo), math.Log(hi)
	for i := range out {
		out[i] = math.Exp(l0 + (l1-l0)*float64(i)/float64(n-1))
	}
	out[0], out[n-1] = lo, hi
	return out
}

// gridCoord locates q on the grid: the lower index and the log-space
// interpolation fraction, clamped to the grid ends.
func gridCoord(grid []float64, q float64) (int, float64) {
	n := len(grid)
	if q <= grid[0] {
		return 0, 0
	}
	if q >= grid[n-1] {
		return n - 2, 1
	}
	i := sort.SearchFloat64s(grid, q)
	if grid[i] == q {
		if i == n-1 {
			return n - 2, 1
		}
		return i, 0
	}
	i--
	f := math.Log(q/grid[i]) / math.Log(grid[i+1]/grid[i])
	return i, f
}

// POF evaluates the table for an arbitrary charge vector, dispatching on
// how many axes carry charge. Values below the grid floor count as zero
// charge; values above the ceiling clamp (POF there is saturated anyway).
func (g *GridLUT) POF(q [NumAxes]float64) float64 {
	// Fixed-size active set: POF sits on the Monte-Carlo hot path, so the
	// axis dispatch must not allocate.
	var active [NumAxes]Axis
	na := 0
	for a := AxisI1; a < NumAxes; a++ {
		if q[a] > 0 {
			active[na] = a
			na++
		}
	}
	switch na {
	case 0:
		return 0
	case 1:
		a := active[0]
		i, f := gridCoord(g.QGrid, q[a])
		return g.Single[a][i] + f*(g.Single[a][i+1]-g.Single[a][i])
	case 2:
		k := pairIndex(active[0], active[1])
		tab := g.Pairs[k]
		i, fi := gridCoord(g.CoarseGrid, q[active[0]])
		j, fj := gridCoord(g.CoarseGrid, q[active[1]])
		return bilerp(tab[i][j], tab[i][j+1], tab[i+1][j], tab[i+1][j+1], fi, fj)
	default:
		i, fi := gridCoord(g.CoarseGrid, q[AxisI1])
		j, fj := gridCoord(g.CoarseGrid, q[AxisI2])
		k, fk := gridCoord(g.CoarseGrid, q[AxisI3])
		c000 := g.Triple[i][j][k]
		c001 := g.Triple[i][j][k+1]
		c010 := g.Triple[i][j+1][k]
		c011 := g.Triple[i][j+1][k+1]
		c100 := g.Triple[i+1][j][k]
		c101 := g.Triple[i+1][j][k+1]
		c110 := g.Triple[i+1][j+1][k]
		c111 := g.Triple[i+1][j+1][k+1]
		lo := bilerp(c000, c001, c010, c011, fj, fk)
		hi := bilerp(c100, c101, c110, c111, fj, fk)
		return lo + fi*(hi-lo)
	}
}

func bilerp(c00, c01, c10, c11, fi, fj float64) float64 {
	a := c00 + fj*(c01-c00)
	b := c10 + fj*(c11-c10)
	return a + fi*(b-a)
}

// WriteJSON serializes the table.
func (g *GridLUT) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(g)
}

// ReadGridLUT deserializes a table and re-runs the full construction
// validation — a LUT loaded from disk earns exactly the same trust as one
// BuildGridLUT just produced, no more.
func ReadGridLUT(r io.Reader) (*GridLUT, error) {
	var g GridLUT
	if err := json.NewDecoder(r).Decode(&g); err != nil {
		return nil, fmt.Errorf("sram: decode grid LUT: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &g, nil
}

// Validate checks the structural and physical invariants every usable
// GridLUT satisfies: positive finite Vdd, strictly increasing positive
// charge grids, full table shapes, and every stored POF a probability.
// BuildGridLUT output passes by construction; ReadGridLUT enforces it on
// the JSON trust boundary.
func (g *GridLUT) Validate() error {
	if math.IsNaN(g.Vdd) || math.IsInf(g.Vdd, 0) || g.Vdd <= 0 {
		return fmt.Errorf("sram: grid LUT Vdd %g is not a positive voltage", g.Vdd)
	}
	if len(g.QGrid) < 2 || len(g.CoarseGrid) < 2 {
		return errors.New("sram: grid LUT has degenerate grids")
	}
	for _, grid := range [][]float64{g.QGrid, g.CoarseGrid} {
		for i, q := range grid {
			if math.IsNaN(q) || math.IsInf(q, 0) || q <= 0 {
				return fmt.Errorf("sram: grid charge %g at index %d is not positive finite", q, i)
			}
			if i > 0 && q <= grid[i-1] {
				return fmt.Errorf("sram: charge grid not strictly increasing at index %d", i)
			}
		}
	}
	checkPOF := func(where string, v float64) error {
		if math.IsNaN(v) || v < 0 || v > 1 {
			return fmt.Errorf("sram: grid LUT %s holds %g, not a probability", where, v)
		}
		return nil
	}
	for a := range g.Single {
		if len(g.Single[a]) != len(g.QGrid) {
			return fmt.Errorf("sram: axis %d table size mismatch", a)
		}
		for i, v := range g.Single[a] {
			if err := checkPOF(fmt.Sprintf("single[%d][%d]", a, i), v); err != nil {
				return err
			}
		}
	}
	n := len(g.CoarseGrid)
	for k := range g.Pairs {
		if len(g.Pairs[k]) != n {
			return fmt.Errorf("sram: pair table %d size mismatch", k)
		}
		for i := range g.Pairs[k] {
			if len(g.Pairs[k][i]) != n {
				return fmt.Errorf("sram: pair table %d row %d size mismatch", k, i)
			}
			for j, v := range g.Pairs[k][i] {
				if err := checkPOF(fmt.Sprintf("pairs[%d][%d][%d]", k, i, j), v); err != nil {
					return err
				}
			}
		}
	}
	if len(g.Triple) != n {
		return errors.New("sram: triple table size mismatch")
	}
	for i := range g.Triple {
		if len(g.Triple[i]) != n {
			return fmt.Errorf("sram: triple table plane %d size mismatch", i)
		}
		for j := range g.Triple[i] {
			if len(g.Triple[i][j]) != n {
				return fmt.Errorf("sram: triple table row %d,%d size mismatch", i, j)
			}
			for k, v := range g.Triple[i][j] {
				if err := checkPOF(fmt.Sprintf("triple[%d][%d][%d]", i, j, k), v); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// CheckInvariants runs the guard's physics invariants over the table: every
// stored value is a probability and each single-axis POF curve is monotone
// non-decreasing in charge (more collected charge never makes a flip less
// likely; tol absorbs Monte-Carlo sampling noise). The first violation is
// returned in strict mode; warn mode counts them all and returns nil.
func (g *GridLUT) CheckInvariants(gd *guard.Guard, stage string) error {
	if !gd.Enabled() {
		return nil
	}
	for a := range g.Single {
		for i, v := range g.Single[a] {
			if err := gd.Probability(stage, fmt.Sprintf("single[%d][%d]", a, i), v); err != nil {
				return err
			}
		}
		if err := gd.MonotoneNonDecreasing(stage, fmt.Sprintf("pof(q) axis %d", a), g.Single[a], pofMonotoneTol); err != nil {
			return err
		}
	}
	for k := range g.Pairs {
		for i := range g.Pairs[k] {
			for j, v := range g.Pairs[k][i] {
				if err := gd.Probability(stage, fmt.Sprintf("pairs[%d][%d][%d]", k, i, j), v); err != nil {
					return err
				}
			}
		}
	}
	for i := range g.Triple {
		for j := range g.Triple[i] {
			for k, v := range g.Triple[i][j] {
				if err := gd.Probability(stage, fmt.Sprintf("triple[%d][%d][%d]", i, j, k), v); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// pofMonotoneTol absorbs Monte-Carlo noise when asserting that POF curves
// rise with charge: adjacent grid points may dip by this much before the
// guard calls it a violation.
const pofMonotoneTol = 0.02

// POFProvider is the interface the array level consumes: any model that
// maps a sensitive-axis charge vector to a flip probability at a known
// supply voltage. Both the sample-based Characterization and the
// serialized GridLUT satisfy it — the latter reproduces the paper's exact
// architecture, where the array Monte Carlo runs against LUTs alone.
type POFProvider interface {
	// POF returns the flip probability for the given per-axis charges (C).
	POF(q [NumAxes]float64) float64
	// SupplyVoltage returns the Vdd the model was characterized at.
	SupplyVoltage() float64
}

// SupplyVoltage implements POFProvider.
func (ch *Characterization) SupplyVoltage() float64 { return ch.Vdd }

// SupplyVoltage implements POFProvider.
func (g *GridLUT) SupplyVoltage() float64 { return g.Vdd }

var (
	_ POFProvider = (*Characterization)(nil)
	_ POFProvider = (*GridLUT)(nil)
)
