package sram

import (
	"bytes"
	"math"
	"testing"
)

func buildTestLUT(t *testing.T) (*Characterization, *GridLUT) {
	t.Helper()
	ch, err := Characterize(CharConfig{
		Tech: tech(), Vdd: 0.8, ProcessVariation: true, Samples: 50, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildGridLUT(ch, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return ch, g
}

func TestGridLUTSingleAxisAgreement(t *testing.T) {
	ch, g := buildTestLUT(t)
	med := ch.QcritQuantile(AxisI1, 0.5)
	for _, f := range []float64{0.3, 0.7, 0.9, 1.0, 1.1, 1.5, 3} {
		q := med * f
		want := ch.POFSingle(AxisI1, q)
		got := g.POF(chargeOn(AxisI1, q))
		if math.Abs(got-want) > 0.08 {
			t.Errorf("single-axis LUT at %v×median: %v vs reference %v", f, got, want)
		}
	}
	// Exactly zero below the grid floor and saturated above the ceiling.
	if g.POF(chargeOn(AxisI1, g.QGrid[0]/10)) != g.Single[AxisI1][0] {
		t.Error("below-floor lookup should clamp")
	}
	if got := g.POF(chargeOn(AxisI1, g.QGrid[len(g.QGrid)-1]*10)); got != 1 {
		t.Errorf("far-above-ceiling POF = %v, want 1", got)
	}
}

func TestGridLUTMultiAxisAgreement(t *testing.T) {
	ch, g := buildTestLUT(t)
	med := ch.QcritQuantile(AxisI1, 0.5)
	cases := [][NumAxes]float64{
		{med * 0.6, med * 0.6, 0},
		{med * 0.4, 0, med * 0.7},
		{0, med * 0.9, med * 0.3},
		{med * 0.4, med * 0.4, med * 0.4},
		{med * 1.2, med * 0.1, med * 0.1},
	}
	for _, q := range cases {
		want := ch.POF(q)
		got := g.POF(q)
		if math.Abs(got-want) > 0.15 {
			t.Errorf("multi-axis LUT at %v: %v vs reference %v", q, got, want)
		}
	}
}

func TestGridLUTMonotone(t *testing.T) {
	_, g := buildTestLUT(t)
	// Single-axis interpolation must be monotone in charge.
	prev := -1.0
	lo, hi := g.QGrid[0], g.QGrid[len(g.QGrid)-1]
	for f := 0.0; f <= 1.0; f += 0.01 {
		q := lo * math.Pow(hi/lo, f)
		v := g.POF(chargeOn(AxisI2, q))
		if v < prev-1e-12 {
			t.Fatalf("LUT not monotone at %v", q)
		}
		prev = v
	}
}

func TestGridLUTZeroVector(t *testing.T) {
	_, g := buildTestLUT(t)
	if g.POF([NumAxes]float64{}) != 0 {
		t.Error("zero vector should give 0")
	}
}

func TestGridLUTJSONRoundTrip(t *testing.T) {
	ch, g := buildTestLUT(t)
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGridLUT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	med := ch.QcritQuantile(AxisI3, 0.5)
	for _, f := range []float64{0.5, 1, 2} {
		q := chargeOn(AxisI3, med*f)
		if got.POF(q) != g.POF(q) {
			t.Errorf("round-trip mismatch at %v×median", f)
		}
	}
}

func TestReadGridLUTRejectsGarbage(t *testing.T) {
	if _, err := ReadGridLUT(bytes.NewBufferString("{}")); err == nil {
		t.Error("empty LUT accepted")
	}
	if _, err := ReadGridLUT(bytes.NewBufferString("nope")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestBuildGridLUTNominal(t *testing.T) {
	// A nominal (binary) characterization yields a step-like LUT.
	ch, err := Characterize(CharConfig{Tech: tech(), Vdd: 0.8, ProcessVariation: false, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildGridLUT(ch, 32, 8, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	qc := ch.Axis[AxisI1][0]
	if got := g.POF(chargeOn(AxisI1, qc*0.2)); got != 0 {
		t.Errorf("well below Qcrit: %v, want 0", got)
	}
	if got := g.POF(chargeOn(AxisI1, qc*4)); got != 1 {
		t.Errorf("well above Qcrit: %v, want 1", got)
	}
}
