package sram

import (
	"fmt"

	"finser/internal/circuit"
	"finser/internal/finfet"
)

// Write-margin extraction. The third classic cell metric alongside hold
// and read SNM: how much bit-line drive headroom the cell leaves when
// being written. The operational definition used here is the word-line
// write margin (WWM): with the bit lines set for a write (BL low, BLB
// high, attacking the stored Q = 1), the word line is swept down from Vdd;
// the margin is the lowest WL voltage that still flips the cell. A large
// WWM means the cell writes easily (and, by the same token, is easier to
// disturb); WWM trades off directly against the read SNM, which is why the
// pull-down/pass-gate/pull-up strength ratios — and their aging and
// variation — matter.

// WriteMargin returns the word-line write margin in volts: Vdd minus the
// minimum WL level that flips a cell holding Q = 1 with BL = 0, BLB = Vdd.
// Zero means the cell cannot be written even at full WL (write failure).
func WriteMargin(tech finfet.Technology, vdd float64, shifts VthShifts) (float64, error) {
	if vdd <= 0 {
		return 0, fmt.Errorf("sram: write margin needs positive vdd")
	}
	flipsAt := func(wl float64) (bool, error) {
		return writeFlips(tech, vdd, shifts, wl)
	}
	full, err := flipsAt(vdd)
	if err != nil {
		return 0, err
	}
	if !full {
		return 0, nil // write failure even at full word-line drive
	}
	lo, hi := 0.0, vdd // lo: does not flip (WL off), hi: flips
	for hi-lo > 1e-3 {
		mid := (lo + hi) / 2
		ok, err := flipsAt(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	return vdd - (lo+hi)/2, nil
}

// writeFlips builds the write condition and reports whether the stored
// Q = 1 is overwritten at the given word-line level.
func writeFlips(tech finfet.Technology, vdd float64, shifts VthShifts, wlLevel float64) (bool, error) {
	c := circuit.New()
	q := c.Node("q")
	qb := c.Node("qb")
	vddN := c.Node("vdd")
	bl := c.Node("bl")
	blb := c.Node("blb")
	wl := c.Node("wl")

	c.AddVSource("vdd", vddN, circuit.Ground, circuit.DC(vdd))
	c.AddVSource("vbl", bl, circuit.Ground, circuit.DC(0)) // write 0 into Q
	c.AddVSource("vblb", blb, circuit.Ground, circuit.DC(vdd))
	c.AddVSource("vwl", wl, circuit.Ground, circuit.DC(wlLevel))

	params := func(role Role) finfet.Params {
		var p finfet.Params
		switch role {
		case PUL, PUR:
			p = finfet.ParamsFor(tech, finfet.PChannel, tech.PUFins())
		case PDL, PDR:
			p = finfet.ParamsFor(tech, finfet.NChannel, tech.PDFins())
		default:
			p = finfet.ParamsFor(tech, finfet.NChannel, tech.PGFins())
		}
		p.Vth += shifts[role]
		return p
	}
	c.AddDevice(finfet.NewTransistor("pu_l", params(PUL), q, qb, vddN))
	c.AddDevice(finfet.NewTransistor("pd_l", params(PDL), q, qb, circuit.Ground))
	c.AddDevice(finfet.NewTransistor("pu_r", params(PUR), qb, q, vddN))
	c.AddDevice(finfet.NewTransistor("pd_r", params(PDR), qb, q, circuit.Ground))
	c.AddDevice(finfet.NewTransistor("pg_l", params(PGL), bl, wl, q))
	c.AddDevice(finfet.NewTransistor("pg_r", params(PGR), blb, wl, qb))

	// Converge from the stored state Q = 1; if the write succeeds, the DC
	// solution lands at Q = 0.
	sol, err := c.OperatingPoint(map[circuit.Node]float64{
		q: vdd, qb: 0, vddN: vdd, bl: 0, blb: vdd, wl: wlLevel,
	})
	if err != nil {
		// Failure to converge at the write boundary counts as flipped
		// (the held state no longer exists).
		return true, nil
	}
	return sol[q] < sol[qb], nil
}
