package sram

import (
	"math"
	"testing"
)

func TestCell8THoldMatches6T(t *testing.T) {
	// The 8T core is the 6T cell: hold-mode critical charges must match.
	c8, err := NewCell8T(tech(), 0.8, VthShifts{}, HoldMode)
	if err != nil {
		t.Fatal(err)
	}
	c6 := mustCell(t, 0.8, VthShifts{})
	for _, axis := range []Axis{AxisI1, AxisI2} {
		q8, err := c8.CriticalCharge(axis, 1e-18, 5e-14, ShapeRect)
		if err != nil {
			t.Fatal(err)
		}
		q6, err := c6.CriticalCharge(axis, 1e-18, 5e-14, ShapeRect)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(q8-q6)/q6 > 0.05 {
			t.Errorf("axis %v: 8T Qcrit %v vs 6T %v", axis, q8, q6)
		}
	}
}

func TestCell8TNoReadDisturb(t *testing.T) {
	// The decoupling claim at DC: reading an 8T cell leaves the storage
	// nodes on their rails, unlike the 6T whose "0" node rises.
	c8, err := NewCell8T(tech(), 0.8, VthShifts{}, ReadMode)
	if err != nil {
		t.Fatal(err)
	}
	q, qb := c8.HoldVoltages()
	if q > 0.01 {
		t.Errorf("8T read mode disturbed Q to %v", q)
	}
	if qb < 0.79 {
		t.Errorf("8T read mode pulled QB to %v", qb)
	}
	// And the read-mode critical charge stays at the hold level — the 6T
	// loses ~18% when accessed, the 8T loses nothing.
	qRead, err := c8.CriticalCharge(AxisI1, 1e-18, 5e-14, ShapeRect)
	if err != nil {
		t.Fatal(err)
	}
	hold8, err := NewCell8T(tech(), 0.8, VthShifts{}, HoldMode)
	if err != nil {
		t.Fatal(err)
	}
	qHold, err := hold8.CriticalCharge(AxisI1, 1e-18, 5e-14, ShapeRect)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(qRead-qHold)/qHold > 0.03 {
		t.Errorf("8T read Qcrit %v differs from hold %v", qRead, qHold)
	}
	c6read, err := NewCellMode(tech(), 0.8, VthShifts{}, ReadMode)
	if err != nil {
		t.Fatal(err)
	}
	q6read, err := c6read.CriticalCharge(AxisI1, 1e-18, 5e-14, ShapeRect)
	if err != nil {
		t.Fatal(err)
	}
	if q6read >= qRead {
		t.Errorf("6T read Qcrit %v not below 8T read %v", q6read, qRead)
	}
}

func TestCell8TReadPortStrikesBenign(t *testing.T) {
	// A strike on the read stack must never flip the cell, at any charge a
	// real particle can deposit (sweep to 50 fC — far beyond any fin hit).
	for _, mode := range []CellMode{HoldMode, ReadMode} {
		c8, err := NewCell8T(tech(), 0.8, VthShifts{}, mode)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range []float64{1e-16, 1e-15, 1e-14, 5e-14} {
			res, err := c8.SimulateReadPortStrike(q)
			if err != nil {
				t.Fatal(err)
			}
			if res.Flipped {
				t.Fatalf("mode %v: read-port strike of %v C flipped the cell", mode, q)
			}
		}
	}
}

func TestCell8TStorageStrikesStillFlip(t *testing.T) {
	// The read port protects reads, not the storage: a big storage-node
	// strike flips the 8T exactly like the 6T.
	c8, err := NewCell8T(tech(), 0.8, VthShifts{}, HoldMode)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c8.SimulateStrike(chargeOn(AxisI1, 1e-15), ShapeRect)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Flipped {
		t.Error("1 fC storage strike did not flip the 8T cell")
	}
}
