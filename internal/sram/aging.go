package sram

import (
	"fmt"
	"math"

	"finser/internal/finfet"
)

// Bias-temperature-instability (BTI) aging and its interaction with soft
// errors. A cell that holds one value for most of its life stresses a
// *specific* pair of transistors: the ON pull-up of the "1" node suffers
// NBTI, and the ON pull-down of the "0" node suffers PBTI. Their threshold
// voltages drift upward over years, skewing the cell so that one stored
// state becomes easier to upset than the other — aging converts a
// symmetric SER into an asymmetric, data-dependent one. (Aging-aware
// reliability is the first author's companion research line; this module
// closes the loop between the two failure mechanisms.)

// BTIModel holds the power-law drift parameters ΔVth = A·(t/t0)^n with
// t0 = 10 years; A is the 10-year shift at 100% stress duty.
type BTIModel struct {
	// NBTIShift10y is the 10-year NBTI ΔVth for a PMOS stressed
	// continuously, in volts.
	NBTIShift10y float64
	// PBTIShift10y is the NMOS counterpart (typically weaker in
	// high-k/metal-gate FinFETs, but not negligible).
	PBTIShift10y float64
	// Exponent is the power-law time exponent (≈ 0.16 for BTI).
	Exponent float64
}

// DefaultBTI returns typical 14 nm-class high-k/metal-gate BTI parameters.
func DefaultBTI() BTIModel {
	return BTIModel{
		NBTIShift10y: 0.040,
		PBTIShift10y: 0.020,
		Exponent:     0.16,
	}
}

// Shift returns the ΔVth after the given years of stress at the given duty
// factor (fraction of time under stress). The duty factor enters with the
// same power law — the standard AC/DC BTI scaling.
func (m BTIModel) Shift(base10y, years, duty float64) float64 {
	if years <= 0 || duty <= 0 {
		return 0
	}
	if duty > 1 {
		duty = 1
	}
	return base10y * math.Pow(years/10, m.Exponent) * math.Pow(duty, m.Exponent)
}

// AgedShifts returns the per-transistor Vth shifts of a cell that spent
// the given fraction of `years` holding bit (duty = fraction of lifetime
// with Q = bit). Holding Q = 0 (bit=false): QB is high, so the LEFT
// pull-up (gate = QB... the PU driving Q) — work through the stress map:
//
//	Q = 0, QB = 1:
//	  PUL gate = QB = 1 → PMOS off      → no NBTI
//	  PUR gate = Q  = 0 → PMOS on       → NBTI on PUR
//	  PDL gate = QB = 1 → NMOS on       → PBTI on PDL
//	  PDR gate = Q  = 0 → NMOS off      → no PBTI
//
// The mirrored state stresses the mirrored pair for the remaining time.
func AgedShifts(m BTIModel, years float64, dutyHoldingZero float64) (VthShifts, error) {
	if years < 0 {
		return VthShifts{}, fmt.Errorf("sram: negative age %g", years)
	}
	if dutyHoldingZero < 0 || dutyHoldingZero > 1 {
		return VthShifts{}, fmt.Errorf("sram: duty %g outside [0,1]", dutyHoldingZero)
	}
	var s VthShifts
	d0 := dutyHoldingZero
	d1 := 1 - dutyHoldingZero
	// Stress accumulated while holding Q = 0.
	s[PUR] += m.Shift(m.NBTIShift10y, years, d0)
	s[PDL] += m.Shift(m.PBTIShift10y, years, d0)
	// Stress accumulated while holding Q = 1 (mirror).
	s[PUL] += m.Shift(m.NBTIShift10y, years, d1)
	s[PDR] += m.Shift(m.PBTIShift10y, years, d1)
	return s, nil
}

// AgedCell builds a cell aged for the given years at the given duty and
// operating point. The returned cell holds Q = 0, so with a high
// dutyHoldingZero the aged (weakened) transistors are the ones restoring
// the state currently held — the worst case.
func AgedCell(tech finfet.Technology, vdd float64, m BTIModel, years, dutyHoldingZero float64) (*Cell, error) {
	shifts, err := AgedShifts(m, years, dutyHoldingZero)
	if err != nil {
		return nil, err
	}
	return NewCell(tech, vdd, shifts)
}
