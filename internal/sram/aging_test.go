package sram

import (
	"math"
	"testing"
)

func TestBTIShiftScaling(t *testing.T) {
	m := DefaultBTI()
	// Definitional anchor: 10 years at full duty gives the 10-year shift.
	if got := m.Shift(m.NBTIShift10y, 10, 1); math.Abs(got-0.040) > 1e-12 {
		t.Errorf("10y shift = %v", got)
	}
	// Power law in time: doubling time scales by 2^n.
	r := m.Shift(0.04, 20, 1) / m.Shift(0.04, 10, 1)
	if math.Abs(r-math.Pow(2, m.Exponent)) > 1e-9 {
		t.Errorf("time scaling = %v", r)
	}
	// Zero age or duty → zero shift; duty clamps at 1.
	if m.Shift(0.04, 0, 1) != 0 || m.Shift(0.04, 10, 0) != 0 {
		t.Error("degenerate stress should give zero shift")
	}
	if m.Shift(0.04, 10, 2) != m.Shift(0.04, 10, 1) {
		t.Error("duty not clamped")
	}
	// Monotone in years.
	prev := 0.0
	for y := 1.0; y <= 16; y *= 2 {
		v := m.Shift(0.04, y, 1)
		if v <= prev {
			t.Fatalf("shift not monotone at %v years", y)
		}
		prev = v
	}
}

func TestAgedShiftsStressMap(t *testing.T) {
	m := DefaultBTI()
	// Pure Q=0 lifetime: only PUR (NBTI) and PDL (PBTI) age.
	s, err := AgedShifts(m, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s[PUR] != 0.040 || math.Abs(s[PDL]-0.020) > 1e-12 {
		t.Errorf("stressed pair shifts wrong: PUR=%v PDL=%v", s[PUR], s[PDL])
	}
	if s[PUL] != 0 || s[PDR] != 0 || s[PGL] != 0 || s[PGR] != 0 {
		t.Errorf("unstressed transistors aged: %+v", s)
	}
	// Balanced duty stresses both sides equally (but less than full duty).
	sb, err := AgedShifts(m, 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if sb[PUL] != sb[PUR] || sb[PDL] != sb[PDR] {
		t.Errorf("balanced duty not symmetric: %+v", sb)
	}
	if sb[PUR] >= s[PUR] {
		t.Error("half duty should age less than full duty")
	}
	// Validation.
	if _, err := AgedShifts(m, -1, 0.5); err == nil {
		t.Error("negative age accepted")
	}
	if _, err := AgedShifts(m, 1, 1.5); err == nil {
		t.Error("duty > 1 accepted")
	}
}

func TestAgingCreatesSERAsymmetry(t *testing.T) {
	// The headline result: a cell that mostly held one value becomes easier
	// to flip out of that value — aging converts symmetric SER into
	// data-dependent SER.
	m := DefaultBTI()
	fresh := mustCell(t, 0.8, VthShifts{})
	aged, err := AgedCell(tech(), 0.8, m, 10, 1) // 10 years holding Q=0
	if err != nil {
		t.Fatal(err)
	}
	qFresh, err := fresh.CriticalCharge(AxisI1, 1e-18, 5e-14, ShapeRect)
	if err != nil {
		t.Fatal(err)
	}
	// Axis I1 attacks the held Q=0 state; the aged PUR (its restoring
	// feedback inverter's pull-up) is weakened.
	qAged, err := aged.CriticalCharge(AxisI1, 1e-18, 5e-14, ShapeRect)
	if err != nil {
		t.Fatal(err)
	}
	if qAged >= qFresh {
		t.Errorf("aged Qcrit %v not below fresh %v", qAged, qFresh)
	}
	// The asymmetry: the aged cell's SNM against flipping the held state
	// drops below the margin against the opposite flip.
	shifts, _ := AgedShifts(m, 10, 1)
	snm, err := StaticNoiseMargin(tech(), 0.8, shifts, HoldMode, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(snm.Flip0-snm.Flip1) < 0.003 {
		t.Errorf("aged cell margins not asymmetric: %v vs %v", snm.Flip0, snm.Flip1)
	}
}

func TestBalancedAgingStaysSymmetric(t *testing.T) {
	m := DefaultBTI()
	shifts, err := AgedShifts(m, 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	snm, err := StaticNoiseMargin(tech(), 0.8, shifts, HoldMode, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(snm.Flip0-snm.Flip1) > 0.005 {
		t.Errorf("balanced aging produced asymmetry: %v vs %v", snm.Flip0, snm.Flip1)
	}
}

func TestCharacterizeWithBaseShifts(t *testing.T) {
	// An aged baseline under process variation: the characterization's
	// median Qcrit on the attacked axis drops relative to the fresh cell.
	m := DefaultBTI()
	aged, err := AgedShifts(m, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Characterize(CharConfig{
		Tech: tech(), Vdd: 0.8, ProcessVariation: true, Samples: 30, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	old, err := Characterize(CharConfig{
		Tech: tech(), Vdd: 0.8, ProcessVariation: true, Samples: 30, Seed: 1,
		BaseShifts: aged,
	})
	if err != nil {
		t.Fatal(err)
	}
	if old.QcritQuantile(AxisI1, 0.5) >= fresh.QcritQuantile(AxisI1, 0.5) {
		t.Errorf("aged median Qcrit %v not below fresh %v",
			old.QcritQuantile(AxisI1, 0.5), fresh.QcritQuantile(AxisI1, 0.5))
	}
}
