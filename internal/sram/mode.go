package sram

import (
	"fmt"

	"finser/internal/finfet"
)

// CellMode selects the cell's operating condition during the strike.
type CellMode int

const (
	// HoldMode is the retention state: word line low, bit lines precharged.
	// This is the paper's characterized condition (cells spend almost all
	// their time holding).
	HoldMode CellMode = iota
	// ReadMode is the accessed state: word line high, bit lines precharged
	// high. The conducting pass gate lifts the "0" storage node to the
	// read-disturb level, eroding the noise margin — the cell flips at a
	// lower critical charge.
	ReadMode
)

// String implements fmt.Stringer.
func (m CellMode) String() string {
	if m == ReadMode {
		return "read"
	}
	return "hold"
}

// NewCellMode builds the 6T cell in the given operating mode. HoldMode is
// identical to NewCell. In ReadMode the word line is driven to Vdd and the
// DC sanity window widens to admit the read-disturb voltage on the "0"
// node.
func NewCellMode(tech finfet.Technology, vdd float64, shifts VthShifts, mode CellMode) (*Cell, error) {
	if mode == HoldMode {
		return NewCell(tech, vdd, shifts)
	}
	if vdd <= 0 {
		return nil, fmt.Errorf("sram: non-positive vdd %g", vdd)
	}
	cell, err := buildCell(tech, vdd, shifts, vdd)
	if err != nil {
		return nil, err
	}
	q, qb := cell.HoldVoltages()
	// Read-disturb check: the "0" node rises but must stay well below the
	// trip point, and the "1" node must stay high; otherwise the cell is
	// read-unstable and unusable.
	if q > 0.45*vdd || qb < 0.8*vdd {
		return nil, fmt.Errorf("sram: cell read-unstable: q=%.3g qb=%.3g at vdd=%.2g",
			q, qb, vdd)
	}
	return cell, nil
}

// ReadDisturbVoltage returns the DC voltage of the "0" storage node during
// a read access — the divider level between the conducting pass gate and
// pull-down.
func (c *Cell) ReadDisturbVoltage() float64 {
	q, _ := c.HoldVoltages()
	return q
}
