package sram

import (
	"testing"
)

func TestCellModeString(t *testing.T) {
	if HoldMode.String() != "hold" || ReadMode.String() != "read" {
		t.Error("mode names wrong")
	}
}

func TestReadModeDisturbsZeroNode(t *testing.T) {
	rd, err := NewCellMode(tech(), 0.8, VthShifts{}, ReadMode)
	if err != nil {
		t.Fatal(err)
	}
	hold := mustCell(t, 0.8, VthShifts{})
	// The conducting pass gate lifts Q above the hold level but keeps it
	// below the read-stability bound.
	if rd.ReadDisturbVoltage() <= hold.ReadDisturbVoltage() {
		t.Errorf("read disturb %v not above hold level %v",
			rd.ReadDisturbVoltage(), hold.ReadDisturbVoltage())
	}
	if rd.ReadDisturbVoltage() <= 0.01 {
		t.Errorf("read disturb %v suspiciously small", rd.ReadDisturbVoltage())
	}
	// QB stays high.
	_, qb := rd.HoldVoltages()
	if qb < 0.75*0.8 {
		t.Errorf("read-mode qb = %v", qb)
	}
}

func TestNewCellModeHoldDelegates(t *testing.T) {
	a, err := NewCellMode(tech(), 0.8, VthShifts{}, HoldMode)
	if err != nil {
		t.Fatal(err)
	}
	b := mustCell(t, 0.8, VthShifts{})
	qa, _ := a.HoldVoltages()
	qb, _ := b.HoldVoltages()
	if qa != qb {
		t.Error("HoldMode should match NewCell")
	}
	if _, err := NewCellMode(tech(), 0, VthShifts{}, ReadMode); err == nil {
		t.Error("zero vdd accepted in read mode")
	}
}

func TestReadModeLowersCriticalCharge(t *testing.T) {
	// Accessed cells are the soft spot: the eroded noise margin lowers the
	// critical charge on both remaining sensitive axes.
	for _, vdd := range []float64{0.8, 1.0} {
		hold := mustCell(t, vdd, VthShifts{})
		rd, err := NewCellMode(tech(), vdd, VthShifts{}, ReadMode)
		if err != nil {
			t.Fatal(err)
		}
		for _, axis := range []Axis{AxisI1, AxisI2} {
			qh, err := hold.CriticalCharge(axis, 1e-18, 5e-14, ShapeRect)
			if err != nil {
				t.Fatal(err)
			}
			qr, err := rd.CriticalCharge(axis, 1e-18, 5e-14, ShapeRect)
			if err != nil {
				t.Fatal(err)
			}
			if qr >= qh {
				t.Errorf("vdd=%v axis %v: read Qcrit %v not below hold %v", vdd, axis, qr, qh)
			}
		}
	}
}

func TestTemperatureEffects(t *testing.T) {
	// Temperature shifts both inverters symmetrically, so the separatrix of
	// a balanced cell barely moves: the charge-dominated Qcrit is nearly
	// temperature-invariant (a genuine prediction of the SOI femtosecond-
	// pulse regime). The DC stability, however, degrades: the shallower
	// subthreshold slope at high T reduces inverter gain and with it the
	// static noise margin.
	cold := mustCell(t, 0.8, VthShifts{})
	hotTech := tech().AtTemperature(400)
	hot, err := NewCell(hotTech, 0.8, VthShifts{})
	if err != nil {
		t.Fatal(err)
	}
	qCold, err := cold.CriticalCharge(AxisI1, 1e-18, 5e-14, ShapeRect)
	if err != nil {
		t.Fatal(err)
	}
	qHot, err := hot.CriticalCharge(AxisI1, 1e-18, 5e-14, ShapeRect)
	if err != nil {
		t.Fatal(err)
	}
	if r := qHot / qCold; r < 0.95 || r > 1.05 {
		t.Errorf("Qcrit temperature drift %v, expected near-invariance", r)
	}
	sCold, err := StaticNoiseMargin(tech(), 0.8, VthShifts{}, HoldMode, 0)
	if err != nil {
		t.Fatal(err)
	}
	sHot, err := StaticNoiseMargin(hotTech, 0.8, VthShifts{}, HoldMode, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sHot.SNM >= sCold.SNM {
		t.Errorf("hot SNM %v not below cold %v", sHot.SNM, sCold.SNM)
	}
}
