package sram

import (
	"bytes"
	"math"
	"testing"

	"finser/internal/circuit"
	"finser/internal/finfet"
)

func tech() finfet.Technology { return finfet.Default14nmSOI() }

func mustCell(t *testing.T, vdd float64, shifts VthShifts) *Cell {
	t.Helper()
	c, err := NewCell(tech(), vdd, shifts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRoleAndAxisStrings(t *testing.T) {
	if PUL.String() != "pu_l" || PGR.String() != "pg_r" {
		t.Error("role names wrong")
	}
	if Role(99).String() == "" || Axis(9).String() == "" {
		t.Error("out-of-range strings empty")
	}
	if AxisI1.String() != "I1(pu)" {
		t.Error("axis name wrong")
	}
}

func TestSensitiveRoleMapping(t *testing.T) {
	// Canonical state Q=0.
	if AxisI1.SensitiveRole() != PUL || AxisI2.SensitiveRole() != PDR || AxisI3.SensitiveRole() != PGL {
		t.Error("axis→role mapping wrong")
	}
	// Role→axis for both stored bits; exactly three sensitive roles each.
	for _, bit := range []bool{false, true} {
		n := 0
		for r := Role(0); r < NumRoles; r++ {
			if _, ok := SensitiveAxisForRole(r, bit); ok {
				n++
			}
		}
		if n != 3 {
			t.Errorf("bit=%v: %d sensitive roles, want 3", bit, n)
		}
	}
	// Mirror property: the sensitive set for bit=1 is the L/R mirror.
	if a, ok := SensitiveAxisForRole(PUR, true); !ok || a != AxisI1 {
		t.Error("PUR should be I1 for bit=1")
	}
	if a, ok := SensitiveAxisForRole(PDL, true); !ok || a != AxisI2 {
		t.Error("PDL should be I2 for bit=1")
	}
	if _, ok := SensitiveAxisForRole(PUL, true); ok {
		t.Error("PUL should not be sensitive for bit=1")
	}
}

func TestCellHoldState(t *testing.T) {
	for _, vdd := range []float64{0.7, 0.9, 1.1} {
		c := mustCell(t, vdd, VthShifts{})
		q, qb := c.HoldVoltages()
		if q > 0.02*vdd {
			t.Errorf("vdd=%v: q=%v not low", vdd, q)
		}
		if qb < 0.98*vdd {
			t.Errorf("vdd=%v: qb=%v not high", vdd, qb)
		}
	}
}

func TestNewCellValidation(t *testing.T) {
	if _, err := NewCell(tech(), 0, VthShifts{}); err == nil {
		t.Error("zero vdd accepted")
	}
	if _, err := NewCell(tech(), -0.8, VthShifts{}); err == nil {
		t.Error("negative vdd accepted")
	}
}

func TestNoStrikeNoFlip(t *testing.T) {
	c := mustCell(t, 0.8, VthShifts{})
	res, err := c.SimulateStrike([NumAxes]float64{}, ShapeRect)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flipped {
		t.Error("cell flipped with no strike")
	}
	if res.QFinal > 0.05 || res.QBFinal < 0.75 {
		t.Errorf("hold state drifted: q=%v qb=%v", res.QFinal, res.QBFinal)
	}
}

func TestStrikeFlipMonotoneInCharge(t *testing.T) {
	c := mustCell(t, 0.8, VthShifts{})
	for _, axis := range []Axis{AxisI1, AxisI2, AxisI3} {
		small, err := c.SimulateStrike(chargeOn(axis, 1e-17), ShapeRect)
		if err != nil {
			t.Fatal(err)
		}
		big, err := c.SimulateStrike(chargeOn(axis, 1e-15), ShapeRect)
		if err != nil {
			t.Fatal(err)
		}
		if small.Flipped {
			t.Errorf("axis %v: 0.01 fC flipped the cell", axis)
		}
		if !big.Flipped {
			t.Errorf("axis %v: 1 fC did not flip the cell", axis)
		}
	}
}

func chargeOn(a Axis, q float64) [NumAxes]float64 {
	var out [NumAxes]float64
	out[a] = q
	return out
}

func TestCriticalChargeBisection(t *testing.T) {
	c := mustCell(t, 0.8, VthShifts{})
	qc, err := c.CriticalCharge(AxisI1, 1e-18, 2e-14, ShapeRect)
	if err != nil {
		t.Fatal(err)
	}
	if qc < 1e-17 || qc > 1e-15 {
		t.Fatalf("Qcrit = %v C, implausible", qc)
	}
	// Just below must not flip; just above must flip.
	below, _ := c.SimulateStrike(chargeOn(AxisI1, qc*0.9), ShapeRect)
	above, _ := c.SimulateStrike(chargeOn(AxisI1, qc*1.1), ShapeRect)
	if below.Flipped {
		t.Error("charge below Qcrit flipped")
	}
	if !above.Flipped {
		t.Error("charge above Qcrit did not flip")
	}
}

func TestCriticalChargeEdgeCases(t *testing.T) {
	c := mustCell(t, 0.8, VthShifts{})
	if _, err := c.CriticalCharge(AxisI1, 0, 1e-15, ShapeRect); err == nil {
		t.Error("zero lo accepted")
	}
	if _, err := c.CriticalCharge(AxisI1, 1e-15, 1e-16, ShapeRect); err == nil {
		t.Error("inverted bracket accepted")
	}
	// hi too small to flip → +Inf.
	qc, err := c.CriticalCharge(AxisI1, 1e-19, 1e-18, ShapeRect)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(qc, 1) {
		t.Errorf("unflippable bracket gave %v, want +Inf", qc)
	}
	// lo already flips → lo.
	qc, err = c.CriticalCharge(AxisI1, 1e-15, 1e-14, ShapeRect)
	if err != nil {
		t.Fatal(err)
	}
	if qc != 1e-15 {
		t.Errorf("always-flipping bracket gave %v, want lo", qc)
	}
}

func TestQcritIncreasesWithVdd(t *testing.T) {
	// Paper Fig. 8/9 mechanism: cells are more robust at higher supply.
	prev := 0.0
	for _, vdd := range []float64{0.7, 0.8, 0.9, 1.0, 1.1} {
		c := mustCell(t, vdd, VthShifts{})
		qc, err := c.CriticalCharge(AxisI1, 1e-18, 2e-14, ShapeRect)
		if err != nil {
			t.Fatal(err)
		}
		if qc <= prev {
			t.Errorf("Qcrit(%v V) = %v not increasing", vdd, qc)
		}
		prev = qc
	}
}

func TestPulseShapeEquivalence(t *testing.T) {
	// Paper §4: POF depends on deposited charge, not pulse width or shape.
	// Critical charges across rect/triangle/double-exp must agree within a
	// few percent.
	c := mustCell(t, 0.8, VthShifts{})
	var qcs []float64
	for _, shape := range []PulseShape{ShapeRect, ShapeTriangle, ShapeDoubleExp} {
		qc, err := c.CriticalCharge(AxisI2, 1e-18, 2e-14, shape)
		if err != nil {
			t.Fatal(err)
		}
		qcs = append(qcs, qc)
	}
	for i := 1; i < len(qcs); i++ {
		if r := qcs[i] / qcs[0]; r < 0.93 || r > 1.07 {
			t.Errorf("shape %d Qcrit ratio = %v, want ≈ 1 (charge equivalence)", i, r)
		}
	}
}

func TestPulseWidthInsensitivity(t *testing.T) {
	// Same charge at 1× and 4× the transit-time width: same flip outcome
	// near threshold (POF has "no sensitivity to the current pulse width").
	c := mustCell(t, 0.8, VthShifts{})
	qc, err := c.CriticalCharge(AxisI1, 1e-18, 2e-14, ShapeRect)
	if err != nil {
		t.Fatal(err)
	}
	tau := c.Tech.TransitTime(c.Vdd)
	for _, widthScale := range []float64{0.5, 2, 4} {
		// Re-arm manually with a scaled-width, equal-charge pulse.
		q := qc * 1.15
		c.strikes[AxisI1].w = buildPulseWidth(q, tau*widthScale)
		res, err := c.runArmed()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Flipped {
			t.Errorf("width ×%v: equal charge did not flip", widthScale)
		}
		c.strikes[AxisI1].w = buildPulseWidth(qc*0.85, tau*widthScale)
		res, err = c.runArmed()
		if err != nil {
			t.Fatal(err)
		}
		if res.Flipped {
			t.Errorf("width ×%v: sub-critical charge flipped", widthScale)
		}
		c.strikes[AxisI1].w = nil
	}
}

func TestVthShiftMovesQcrit(t *testing.T) {
	// Weakening the restoring pull-down (higher Vth on PDL) makes the cell
	// easier to flip via I1.
	nom := mustCell(t, 0.8, VthShifts{})
	qNom, err := nom.CriticalCharge(AxisI1, 1e-18, 2e-14, ShapeRect)
	if err != nil {
		t.Fatal(err)
	}
	var weak VthShifts
	weak[PDL] = 0.09 // +3σ
	wc := mustCell(t, 0.8, weak)
	qWeak, err := wc.CriticalCharge(AxisI1, 1e-18, 2e-14, ShapeRect)
	if err != nil {
		t.Fatal(err)
	}
	if qWeak >= qNom {
		t.Errorf("weakened cell Qcrit %v >= nominal %v", qWeak, qNom)
	}
}

func TestCharacterizeNominal(t *testing.T) {
	ch, err := Characterize(CharConfig{Tech: tech(), Vdd: 0.8, ProcessVariation: false, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ch.Samples != 1 || ch.PV {
		t.Fatalf("nominal characterization has %d samples, PV=%v", ch.Samples, ch.PV)
	}
	qc := ch.Axis[AxisI1][0]
	// Binary POF: 0 below, 1 at/above.
	if p := ch.POFSingle(AxisI1, qc*0.99); p != 0 {
		t.Errorf("POF below Qcrit = %v, want 0", p)
	}
	if p := ch.POFSingle(AxisI1, qc*1.01); p != 1 {
		t.Errorf("POF above Qcrit = %v, want 1", p)
	}
	if p := ch.POFSingle(AxisI1, -1); p != 0 {
		t.Errorf("POF of negative charge = %v", p)
	}
}

func TestCharacterizePV(t *testing.T) {
	ch, err := Characterize(CharConfig{
		Tech: tech(), Vdd: 0.8, ProcessVariation: true, Samples: 60, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ch.Samples != 60 {
		t.Fatalf("samples = %d", ch.Samples)
	}
	// POF is a smooth, monotone function of charge between 0 and 1.
	med := ch.QcritQuantile(AxisI1, 0.5)
	prev := -1.0
	sawFraction := false
	for _, f := range []float64{0.5, 0.8, 0.9, 1.0, 1.1, 1.25, 2} {
		p := ch.POFSingle(AxisI1, med*f)
		if p < prev {
			t.Errorf("POF not monotone at %v×median", f)
		}
		if p > 0 && p < 1 {
			sawFraction = true
		}
		prev = p
	}
	if !sawFraction {
		t.Error("PV characterization produced no fractional POF values")
	}
	// The variation spread must widen the distribution: some sample below
	// 0.9× median and some above 1.1× median.
	if ch.POFSingle(AxisI1, med*0.9) <= 0 && ch.POFSingle(AxisI1, med*1.1) >= 1 {
		t.Error("Qcrit distribution suspiciously narrow")
	}
}

func TestCharacterizeDeterministic(t *testing.T) {
	cfg := CharConfig{Tech: tech(), Vdd: 0.8, ProcessVariation: true, Samples: 10, Seed: 42}
	a, err := Characterize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Characterize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for ax := range a.Axis {
		for i := range a.Axis[ax] {
			if a.Axis[ax][i] != b.Axis[ax][i] {
				t.Fatalf("axis %d sample %d differs between identical runs", ax, i)
			}
		}
	}
}

func TestPOFVectorConsistency(t *testing.T) {
	ch, err := Characterize(CharConfig{
		Tech: tech(), Vdd: 0.8, ProcessVariation: true, Samples: 40, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	med := ch.QcritQuantile(AxisI2, 0.5)
	// Zero vector → 0.
	if ch.POF([NumAxes]float64{}) != 0 {
		t.Error("POF of zero vector not 0")
	}
	// Single-axis vector agrees with POFSingle.
	v := chargeOn(AxisI2, med)
	if got, want := ch.POF(v), ch.POFSingle(AxisI2, med); math.Abs(got-want) > 1e-12 {
		t.Errorf("vector POF %v != single POF %v", got, want)
	}
	// Adding charge on a second axis can only increase POF.
	v2 := v
	v2[AxisI1] = med / 2
	if ch.POF(v2) < ch.POF(v) {
		t.Error("adding charge decreased POF")
	}
	// Splitting the critical charge across two equivalent axes still flips
	// under the linear surface when the halves sum past the surface.
	var split [NumAxes]float64
	split[AxisI1] = ch.QcritQuantile(AxisI1, 0.95)
	split[AxisI2] = ch.QcritQuantile(AxisI2, 0.95)
	if p := ch.POF(split); p < 0.9 {
		t.Errorf("two near-critical charges give POF %v, want ≈ 1", p)
	}
}

func TestCharacterizationJSONRoundTrip(t *testing.T) {
	ch, err := Characterize(CharConfig{
		Tech: tech(), Vdd: 0.7, ProcessVariation: true, Samples: 12, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ch.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCharacterization(&buf)
	if err != nil {
		t.Fatal(err)
	}
	med := ch.QcritQuantile(AxisI3, 0.5)
	for _, f := range []float64{0.5, 1, 1.5} {
		if got.POFSingle(AxisI3, med*f) != ch.POFSingle(AxisI3, med*f) {
			t.Errorf("round-trip POF differs at %v×median", f)
		}
	}
}

func TestReadCharacterizationRejectsGarbage(t *testing.T) {
	if _, err := ReadCharacterization(bytes.NewBufferString("nope")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadCharacterization(bytes.NewBufferString(`{"samples":5,"axis_qcrit":[[1],[1],[1]]}`)); err == nil {
		t.Error("inconsistent sample count accepted")
	}
}

func TestValidateFlipSurface(t *testing.T) {
	cfg := CharConfig{Tech: tech(), Vdd: 0.8, ProcessVariation: true, Samples: 15, Seed: 5}
	ch, err := Characterize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	agreement, err := ch.ValidateFlipSurface(cfg, 40, 11)
	if err != nil {
		t.Fatal(err)
	}
	// The linear surface is an approximation; it must agree with direct
	// simulation on a strong majority of near-surface strikes.
	if agreement < 0.8 {
		t.Errorf("flip-surface agreement = %v, want ≥ 0.8", agreement)
	}
}

// --- helpers for the width-insensitivity test ---

func buildPulseWidth(charge, width float64) waveformAlias {
	return waveformAlias{t0: strikeStart, width: width, amp: charge / width}
}

type waveformAlias struct{ t0, width, amp float64 }

func (w waveformAlias) Value(t float64) float64 {
	if t >= w.t0 && t < w.t0+w.width {
		return w.amp
	}
	return 0
}

func (w waveformAlias) Breakpoints() []float64 { return []float64{w.t0, w.t0 + w.width} }

// runArmed runs the transient with the currently armed strike sources.
func (c *Cell) runArmed() (StrikeResult, error) {
	tau := c.Tech.TransitTime(c.Vdd)
	res, err := c.ckt.Transient(c.init, circuit.TransientSpec{
		TStop:    simWindow,
		InitStep: tau / 8,
		MaxStep:  simWindow / 40,
	})
	if err != nil {
		return StrikeResult{}, err
	}
	return StrikeResult{
		Flipped: res.Final(c.q) > res.Final(c.qb),
		QFinal:  res.Final(c.q),
		QBFinal: res.Final(c.qb),
	}, nil
}
