package sram

import (
	"testing"

	"finser/internal/finfet"
)

// BenchmarkStrikeTransient times one full strike simulation — the unit of
// work behind every characterization sample.
func BenchmarkStrikeTransient(b *testing.B) {
	cell, err := NewCell(finfet.Default14nmSOI(), 0.8, VthShifts{})
	if err != nil {
		b.Fatal(err)
	}
	var charges [NumAxes]float64
	charges[AxisI1] = 1e-16
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cell.SimulateStrike(charges, ShapeRect); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCriticalChargeBisection times one Qcrit extraction.
func BenchmarkCriticalChargeBisection(b *testing.B) {
	cell, err := NewCell(finfet.Default14nmSOI(), 0.8, VthShifts{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cell.CriticalCharge(AxisI1, 1e-18, 5e-14, ShapeRect); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPOFEvaluation times the hot array-MC path: POF lookup for a
// single-axis strike against a 1000-sample characterization.
func BenchmarkPOFEvaluation(b *testing.B) {
	ch, err := Characterize(CharConfig{
		Tech: finfet.Default14nmSOI(), Vdd: 0.8,
		ProcessVariation: true, Samples: 100, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	med := ch.QcritQuantile(AxisI1, 0.5)
	var q [NumAxes]float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q[AxisI1] = med * (0.5 + float64(i%100)/100)
		_ = ch.POF(q)
	}
}

// BenchmarkPOFMultiAxis times the linear flip-surface path.
func BenchmarkPOFMultiAxis(b *testing.B) {
	ch, err := Characterize(CharConfig{
		Tech: finfet.Default14nmSOI(), Vdd: 0.8,
		ProcessVariation: true, Samples: 100, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	med := ch.QcritQuantile(AxisI1, 0.5)
	q := [NumAxes]float64{med / 2, med / 2, med / 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ch.POF(q)
	}
}
