package sram

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"

	"finser/internal/faultinject"
	"finser/internal/finfet"
	"finser/internal/guard"
	"finser/internal/obs"
	"finser/internal/rng"
	"finser/internal/stats"
)

// CharConfig configures cell POF characterization — the paper's §4 step
// that SPICE-sweeps current magnitudes and transistor combinations, with a
// 1000-sample threshold-voltage Monte Carlo when process variation is on.
type CharConfig struct {
	Tech finfet.Technology
	Vdd  float64
	// Samples is the number of process-variation Monte-Carlo samples
	// (the paper uses 1000). Ignored when ProcessVariation is false.
	Samples int
	// ProcessVariation selects probabilistic POF ∈ [0,1] (true) or the
	// nominal-corner binary POF ∈ {0,1} (false) — the paper's Fig. 11
	// comparison.
	ProcessVariation bool
	// Seed makes the characterization deterministic.
	Seed uint64
	// Workers bounds characterization parallelism; 0 means GOMAXPROCS.
	Workers int
	// ChargeLo/ChargeHi bracket the critical-charge bisection, in coulombs.
	// Zero selects [1e-18, 5e-14].
	ChargeLo, ChargeHi float64
	// BaseShifts are deterministic per-transistor Vth shifts applied under
	// the random variation — e.g. BTI aging stress (AgedShifts) or a
	// deliberately skewed corner. Zero value means the nominal cell.
	BaseShifts VthShifts
	// Shape is the injected pulse shape (the paper's model is rectangular).
	Shape PulseShape
	// Metrics, when non-nil, receives characterization and solver counters.
	// Nil costs nothing.
	Metrics *Metrics
	// Progress, when non-nil, receives throttled done/total/ETA reports as
	// variation samples complete.
	Progress obs.ProgressFunc
	// Faults, when non-nil, injects deterministic failures at the
	// per-sample worker site — robustness-test only. Nil costs one pointer
	// check per sample.
	Faults *faultinject.Hooks
	// Guard, when non-nil, checks physics invariants (finite critical
	// charges, probability-valued POFs) at stage boundaries. Nil costs one
	// pointer check per sample.
	Guard *guard.Guard
}

func (c CharConfig) withDefaults() CharConfig {
	if c.Samples <= 0 {
		c.Samples = 1000
	}
	if !c.ProcessVariation {
		c.Samples = 1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.ChargeLo <= 0 {
		c.ChargeLo = 1e-18
	}
	if c.ChargeHi <= c.ChargeLo {
		c.ChargeHi = 5e-14
	}
	return c
}

// Characterization is the POF model for one (technology, Vdd): per-sample
// critical charges along the three sensitive axes. It plays the role of the
// paper's POF LUTs: cheap POF evaluation for arbitrary strike charge
// combinations at array-MC time.
type Characterization struct {
	Vdd     float64            `json:"vdd"`
	Samples int                `json:"samples"`
	PV      bool               `json:"process_variation"`
	Axis    [NumAxes][]float64 `json:"axis_qcrit"` // per-sample Qcrit, C (+Inf = unflippable)
	Shifts  []VthShifts        `json:"vth_shifts"` // per-sample Vth shifts (for validation)
	ecdf    [NumAxes]*stats.ECDF
	recip   [][NumAxes]float64
}

// FaultSiteSample is the characterization's per-sample fault-injection
// site.
const FaultSiteSample = "sram.sample"

// Characterize runs the process-variation Monte Carlo: for each variation
// sample it builds the cell and bisects the critical charge of each
// sensitive axis. Samples run in parallel on cfg.Workers goroutines with
// deterministic per-sample random substreams. It is CharacterizeCtx with a
// background context.
func Characterize(cfg CharConfig) (*Characterization, error) {
	return CharacterizeCtx(context.Background(), cfg)
}

// CharacterizeCtx is the resilient characterization: workers check ctx
// before every variation sample (cancellation surfaces as the context
// error wrapped with the stage identity), and a panic inside a sample —
// solver bug or injected fault — is recovered into a stack-carrying error
// that fails the characterization instead of the process.
func CharacterizeCtx(ctx context.Context, cfg CharConfig) (*Characterization, error) {
	cfg = cfg.withDefaults()
	if cfg.Vdd <= 0 {
		return nil, errors.New("sram: characterization needs positive Vdd")
	}

	// Pre-draw per-sample Vth shifts so results are independent of worker
	// scheduling.
	src := rng.New(cfg.Seed)
	shifts := make([]VthShifts, cfg.Samples)
	for i := range shifts {
		shifts[i] = cfg.BaseShifts
		if cfg.ProcessVariation {
			for r := Role(0); r < NumRoles; r++ {
				shifts[i][r] += cfg.Tech.SigmaVth * src.Normal()
			}
		}
	}

	type result struct {
		idx   int
		qcrit [NumAxes]float64
		err   error
	}
	// sample runs one variation sample with panic isolation.
	sample := func(idx int) (qc [NumAxes]float64, err error) {
		defer faultinject.Recover("sram.worker", &err)
		if fi := cfg.Faults; fi != nil {
			if err := fi.Hit(FaultSiteSample); err != nil {
				return qc, err
			}
		}
		cell, err := NewCell(cfg.Tech, cfg.Vdd, shifts[idx])
		if err != nil {
			return qc, err
		}
		cell.SetMetrics(cfg.Metrics)
		cell.SetGuard(cfg.Guard)
		for a := AxisI1; a < NumAxes; a++ {
			q, err := cell.CriticalCharge(a, cfg.ChargeLo, cfg.ChargeHi, cfg.Shape)
			if err != nil {
				return qc, err
			}
			// +Inf is the legal "unflippable at any charge" sentinel; NaN or
			// -Inf means the bisection itself went wrong.
			if !math.IsInf(q, 1) {
				if err := cfg.Guard.Finite("sram.characterize", fmt.Sprintf("qcrit axis %d", a), q); err != nil {
					return qc, err
				}
			}
			qc[a] = q
		}
		return qc, nil
	}

	jobs := make(chan int)
	results := make(chan result)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				var res result
				res.idx = idx
				if res.err = ctx.Err(); res.err == nil {
					res.qcrit, res.err = sample(idx)
				}
				results <- res
			}
		}()
	}
	go func() {
		for i := 0; i < cfg.Samples; i++ {
			select {
			case jobs <- i:
			case <-ctx.Done():
				// Stop feeding; workers drain and exit.
				i = cfg.Samples
			}
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	ch := &Characterization{Vdd: cfg.Vdd, Samples: cfg.Samples, PV: cfg.ProcessVariation, Shifts: shifts}
	for a := range ch.Axis {
		ch.Axis[a] = make([]float64, cfg.Samples)
	}
	tracker := obs.NewTracker(cfg.Progress, "characterize", int64(cfg.Samples), 0)
	var firstErr error
	for res := range results {
		if m := cfg.Metrics; m != nil {
			m.VariationSamples.Inc()
		}
		tracker.Add(1)
		if res.err != nil {
			// Keep the most informative failure: a real sample error beats
			// a bare cancellation report.
			if firstErr == nil || isCtxErr(firstErr) && !isCtxErr(res.err) {
				firstErr = fmt.Errorf("sram: sample %d: %w", res.idx, res.err)
			}
			continue
		}
		for a := AxisI1; a < NumAxes; a++ {
			ch.Axis[a][res.idx] = res.qcrit[a]
		}
	}
	tracker.Finish()
	if firstErr != nil && !isCtxErr(firstErr) {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		// Cancelled: some samples never ran, the characterization is
		// incomplete and must not be used.
		return nil, fmt.Errorf("sram: characterize: %w", err)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ch.finish(); err != nil {
		return nil, err
	}
	return ch, nil
}

// isCtxErr reports whether err is (or wraps) a context cancellation or
// deadline error.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// finish builds the derived lookup structures.
func (ch *Characterization) finish() error {
	for a := range ch.Axis {
		e, err := stats.NewECDF(ch.Axis[a])
		if err != nil {
			return fmt.Errorf("sram: axis %d: %w", a, err)
		}
		ch.ecdf[a] = e
	}
	ch.recip = make([][NumAxes]float64, ch.Samples)
	for i := range ch.recip {
		for a := 0; a < int(NumAxes); a++ {
			q := ch.Axis[a][i]
			if q > 0 && !math.IsInf(q, 1) {
				ch.recip[i][a] = 1 / q
			}
		}
	}
	return nil
}

// POFSingle returns the probability that a charge q on a single axis flips
// the cell: P(Qcrit ≤ q) over the variation samples. O(log samples).
func (ch *Characterization) POFSingle(a Axis, q float64) float64 {
	if q <= 0 {
		return 0
	}
	return ch.ecdf[a].Eval(q)
}

// POF returns the flip probability for an arbitrary charge vector using the
// linear flip-surface model per variation sample: flip ⇔ Σ qᵢ/aᵢ ≥ 1.
// Single-axis vectors take the exact ECDF fast path.
func (ch *Characterization) POF(q [NumAxes]float64) float64 {
	nz, axis := 0, Axis(0)
	for a := AxisI1; a < NumAxes; a++ {
		if q[a] > 0 {
			nz++
			axis = a
		}
	}
	switch nz {
	case 0:
		return 0
	case 1:
		return ch.POFSingle(axis, q[axis])
	}
	flips := 0
	for i := range ch.recip {
		s := 0.0
		for a := 0; a < int(NumAxes); a++ {
			s += q[a] * ch.recip[i][a]
		}
		if s >= 1 {
			flips++
		}
	}
	return float64(flips) / float64(len(ch.recip))
}

// QcritQuantile returns the q-quantile of the axis critical-charge
// distribution (0.5 = median).
func (ch *Characterization) QcritQuantile(a Axis, q float64) float64 {
	return ch.ecdf[a].Quantile(q)
}

// WriteJSON serializes the characterization (the "POF LUT" artifact).
func (ch *Characterization) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ch)
}

// ReadCharacterization deserializes a characterization, re-runs the
// validation a freshly built one satisfies by construction, and rebuilds
// its lookup structures. A characterization from disk is untrusted input:
// NaN or negative critical charges would silently poison every downstream
// POF, so they are rejected here. (+Inf stays legal — it is the
// "unflippable" sentinel.)
func ReadCharacterization(r io.Reader) (*Characterization, error) {
	var ch Characterization
	if err := json.NewDecoder(r).Decode(&ch); err != nil {
		return nil, fmt.Errorf("sram: decode characterization: %w", err)
	}
	if math.IsNaN(ch.Vdd) || math.IsInf(ch.Vdd, 0) || ch.Vdd <= 0 {
		return nil, fmt.Errorf("sram: characterization Vdd %g is not a positive voltage", ch.Vdd)
	}
	if ch.Samples <= 0 {
		return nil, fmt.Errorf("sram: characterization claims %d samples", ch.Samples)
	}
	for a := range ch.Axis {
		if len(ch.Axis[a]) != ch.Samples {
			return nil, fmt.Errorf("sram: axis %d has %d samples, want %d",
				a, len(ch.Axis[a]), ch.Samples)
		}
		for i, q := range ch.Axis[a] {
			if math.IsNaN(q) || q <= 0 || math.IsInf(q, -1) {
				return nil, fmt.Errorf("sram: axis %d sample %d has critical charge %g, want positive (or +Inf)", a, i, q)
			}
		}
	}
	if len(ch.Shifts) != 0 && len(ch.Shifts) != ch.Samples {
		return nil, fmt.Errorf("sram: %d Vth shift records for %d samples", len(ch.Shifts), ch.Samples)
	}
	if err := ch.finish(); err != nil {
		return nil, err
	}
	return &ch, nil
}

// ValidateFlipSurface checks the linear multi-strike flip-surface
// approximation against direct circuit simulation: it draws trials random
// (sample, charge-vector) points near the surface and reports the fraction
// where the surface model and the simulator agree. cfg must be the config
// the characterization was built with (it supplies technology and shape).
func (ch *Characterization) ValidateFlipSurface(cfg CharConfig, trials int, seed uint64) (agreement float64, err error) {
	cfg = cfg.withDefaults()
	src := rng.New(seed)
	agree := 0
	for t := 0; t < trials; t++ {
		idx := src.Intn(ch.Samples)
		cell, err := NewCell(cfg.Tech, ch.Vdd, ch.Shifts[idx])
		if err != nil {
			return 0, err
		}
		// Random direction in the positive octant, scaled to land the
		// surface sum in [0.5, 1.5] so trials concentrate where the model
		// could plausibly be wrong.
		var q [NumAxes]float64
		s := 0.0
		for a := 0; a < int(NumAxes); a++ {
			q[a] = src.Float64()
			s += q[a] * ch.recip[idx][a]
		}
		if s == 0 {
			continue
		}
		scale := src.Uniform(0.5, 1.5) / s
		sum := 0.0
		for a := 0; a < int(NumAxes); a++ {
			q[a] *= scale
			sum += q[a] * ch.recip[idx][a]
		}
		predicted := sum >= 1
		res, err := cell.SimulateStrike(q, cfg.Shape)
		if err != nil {
			return 0, err
		}
		if res.Flipped == predicted {
			agree++
		}
	}
	return float64(agree) / float64(trials), nil
}
