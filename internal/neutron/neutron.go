// Package neutron extends the flow to neutron-induced soft errors — the
// paper's declared future work (§7). Neutrons are uncharged: they upset
// cells through *indirect ionization*, nuclear reactions with silicon whose
// charged secondaries (Si recoils from elastic scattering, α+Mg from
// ²⁸Si(n,α)²⁵Mg, p+Al from ²⁸Si(n,p)²⁸Al) then ionize like any other ion.
//
// The package provides three pieces:
//
//   - the sea-level neutron spectrum (JEDEC-class magnitude: ≈13 n/(cm²·h)
//     above 10 MeV),
//   - energy-dependent reaction cross-sections for the three dominant
//     channels, anchored to evaluated-data magnitudes and interpolated
//     log-log,
//   - interaction sampling: given a neutron energy, draw a reaction channel
//     and its charged secondaries (species, energy, direction).
//
// Because the neutron mean free path in silicon (~10 cm) dwarfs a fin
// (~10 nm), direct Monte Carlo would waste ~10⁸ trials per interaction.
// The array engine instead uses forced-interaction weighting: every
// sampled track is forced to interact inside a fin it crosses, and the
// outcome carries the analytic interaction probability as a weight.
// InteractionProbability supplies that weight.
package neutron

import (
	"fmt"
	"math"

	"finser/internal/geom"
	"finser/internal/lut"
	"finser/internal/phys"
	"finser/internal/rng"
)

// SiliconAtomsPerNm3 is the atomic number density of silicon
// (8 atoms per 0.543³ nm³ diamond-cubic cell).
const SiliconAtomsPerNm3 = 49.94

// barnToNm2 converts a cross-section in barns to nm².
// 1 b = 1e-24 cm² = 1e-10 nm².
const barnToNm2 = 1e-10

// Channel identifies a neutron-silicon reaction channel.
type Channel int

const (
	// Elastic is elastic scattering producing a Si recoil.
	Elastic Channel = iota
	// NAlpha is ²⁸Si(n,α)²⁵Mg (Q = −2.65 MeV).
	NAlpha
	// NProton is ²⁸Si(n,p)²⁸Al (Q = −3.86 MeV).
	NProton
	// NumChannels is the number of modelled channels.
	NumChannels
)

// String implements fmt.Stringer.
func (c Channel) String() string {
	switch c {
	case Elastic:
		return "elastic"
	case NAlpha:
		return "(n,alpha)"
	case NProton:
		return "(n,p)"
	default:
		return fmt.Sprintf("Channel(%d)", int(c))
	}
}

// Q-values in MeV (energy cost of the reaction).
const (
	qAlpha  = -2.654
	qProton = -3.86
)

// Cross-section anchor tables, barns vs neutron energy in MeV. Magnitudes
// follow evaluated nuclear data for ²⁸Si (approximate anchors; resonance
// structure is smoothed out, which is adequate for flux-integrated rates).
var (
	elasticAnchors = struct{ e, s []float64 }{
		e: []float64{0.1, 1, 2, 5, 10, 14, 20, 50, 100, 500, 1000},
		s: []float64{4.5, 3.2, 2.8, 2.0, 1.4, 1.0, 0.85, 0.6, 0.5, 0.45, 0.45},
	}
	nAlphaAnchors = struct{ e, s []float64 }{
		e: []float64{3.0, 5, 8, 10, 14, 20, 50, 100, 500, 1000},
		s: []float64{0.005, 0.06, 0.11, 0.13, 0.16, 0.14, 0.10, 0.08, 0.05, 0.04},
	}
	nProtonAnchors = struct{ e, s []float64 }{
		e: []float64{4.5, 6, 8, 10, 14, 20, 50, 100, 500, 1000},
		s: []float64{0.01, 0.08, 0.15, 0.20, 0.25, 0.22, 0.16, 0.12, 0.08, 0.06},
	}
)

// Reactions evaluates the channel cross-sections.
type Reactions struct {
	tables [NumChannels]*lut.Table1D
	thresh [NumChannels]float64
}

// NewReactions builds the reaction model.
func NewReactions() *Reactions {
	mk := func(e, s []float64) *lut.Table1D {
		t, err := lut.NewTable1D(e, s, lut.Log, lut.Log)
		if err != nil {
			panic(fmt.Sprintf("neutron: bad anchors: %v", err))
		}
		return t
	}
	r := &Reactions{}
	r.tables[Elastic] = mk(elasticAnchors.e, elasticAnchors.s)
	r.tables[NAlpha] = mk(nAlphaAnchors.e, nAlphaAnchors.s)
	r.tables[NProton] = mk(nProtonAnchors.e, nProtonAnchors.s)
	r.thresh[Elastic] = 0
	r.thresh[NAlpha] = -qAlpha * (1 + 1.0/phys.SiliconA) // CM threshold
	r.thresh[NProton] = -qProton * (1 + 1.0/phys.SiliconA)
	return r
}

// CrossSection returns the channel cross-section in barns at the given
// neutron energy (MeV); zero below threshold.
func (r *Reactions) CrossSection(c Channel, energyMeV float64) float64 {
	if energyMeV <= 0 || energyMeV < r.thresh[c] {
		return 0
	}
	lo, _ := r.tables[c].Domain()
	if energyMeV < lo {
		if c == Elastic {
			return r.tables[c].Eval(energyMeV) // clamped low end is fine
		}
		return 0
	}
	return r.tables[c].Eval(energyMeV)
}

// TotalCrossSection returns the summed modelled cross-section in barns.
func (r *Reactions) TotalCrossSection(energyMeV float64) float64 {
	s := 0.0
	for c := Channel(0); c < NumChannels; c++ {
		s += r.CrossSection(c, energyMeV)
	}
	return s
}

// InteractionProbability returns the probability that a neutron of the
// given energy interacts within pathNm nanometres of silicon — the
// forced-interaction weight. It is linear because σ·n·L ≪ 1 at fin scale.
func (r *Reactions) InteractionProbability(energyMeV, pathNm float64) float64 {
	if pathNm <= 0 {
		return 0
	}
	sigmaNm2 := r.TotalCrossSection(energyMeV) * barnToNm2
	return SiliconAtomsPerNm3 * sigmaNm2 * pathNm
}

// Secondary is one charged reaction product.
type Secondary struct {
	Species   phys.Species
	EnergyMeV float64
	Dir       geom.Vec3
}

// SampleInteraction draws a reaction channel (proportional to the channel
// cross-sections at this energy) and its charged secondaries. Directions
// are sampled isotropically — adequate at fin scale, where the secondaries'
// ranges exceed the geometry and the paper-level quantities integrate over
// all track orientations anyway. Returns nil if no channel is open.
func (r *Reactions) SampleInteraction(src *rng.Source, energyMeV float64) []Secondary {
	total := r.TotalCrossSection(energyMeV)
	if total <= 0 {
		return nil
	}
	u := src.Float64() * total
	var ch Channel
	for ch = Channel(0); ch < NumChannels-1; ch++ {
		u -= r.CrossSection(ch, energyMeV)
		if u < 0 {
			break
		}
	}
	switch ch {
	case Elastic:
		return r.sampleElastic(src, energyMeV)
	case NAlpha:
		return r.sampleTwoBody(src, energyMeV, qAlpha,
			phys.Alpha, phys.MagnesiumIon)
	default:
		return r.sampleTwoBody(src, energyMeV, qProton,
			phys.Proton, phys.AluminumIon)
	}
}

// sampleElastic draws a Si recoil. The recoil energy follows the classic
// hard-sphere kinematics E_R = E_n·γ·(1−cosθ_cm)/2 with
// γ = 4·m·M/(m+M)² ≈ 0.133 for n on Si, θ_cm isotropic.
func (r *Reactions) sampleElastic(src *rng.Source, energyMeV float64) []Secondary {
	const gamma = 0.1332
	cosCM := src.Uniform(-1, 1)
	eR := energyMeV * gamma * (1 - cosCM) / 2
	if eR <= 0 {
		return nil
	}
	return []Secondary{{
		Species:   phys.SiliconIon,
		EnergyMeV: eR,
		Dir:       src.IsotropicDirection(),
	}}
}

// sampleTwoBody splits the available energy E_n + Q between the light
// ejectile and the heavy recoil with two-body CM kinematics (inverse mass
// sharing), emitting them back-to-back.
func (r *Reactions) sampleTwoBody(src *rng.Source, energyMeV, q float64, light, heavy phys.Species) []Secondary {
	avail := energyMeV + q // Q < 0
	if avail <= 0 {
		return nil
	}
	mL := light.MassMeV()
	mH := heavy.MassMeV()
	eLight := avail * mH / (mL + mH)
	eHeavy := avail - eLight
	dir := src.IsotropicDirection()
	return []Secondary{
		{Species: light, EnergyMeV: eLight, Dir: dir},
		{Species: heavy, EnergyMeV: eHeavy, Dir: dir.Scale(-1)},
	}
}

// ---------------------------------------------------------------------------
// Sea-level neutron spectrum.
// ---------------------------------------------------------------------------

// Differential sea-level neutron flux anchors, 1/(cm²·s·MeV), normalized so
// the integral above 10 MeV is ≈ 3.6e-3 /(cm²·s) (JEDEC's 13 n/(cm²·h)).
var neutronFluxAnchors = struct{ e, j []float64 }{
	e: []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000},
	j: []float64{9.0e-4, 4.5e-4, 1.7e-4, 8.0e-5, 3.8e-5, 1.4e-5, 6.5e-6,
		2.8e-6, 7.0e-7, 2.0e-7},
}

// SeaLevel is the ground-level neutron environment.
type SeaLevel struct {
	table *lut.Table1D
	scale float64
}

// NewSeaLevel builds the sea-level neutron spectrum; scale multiplies the
// nominal flux (altitude scaling: ~2× per 1000 m near sea level).
func NewSeaLevel(scale float64) (*SeaLevel, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("neutron: scale must be positive, got %g", scale)
	}
	t, err := lut.NewTable1D(neutronFluxAnchors.e, neutronFluxAnchors.j, lut.Log, lut.Log)
	if err != nil {
		return nil, fmt.Errorf("neutron: flux anchors: %w", err)
	}
	return &SeaLevel{table: t, scale: scale}, nil
}

// Species implements spectra.Spectrum. Neutrons are not a phys.Species
// (they do not ionize directly); the engine treats this spectrum through
// its own code path, so the species here is only informative. It reports
// the dominant secondary.
func (*SeaLevel) Species() phys.Species { return phys.SiliconIon }

// Domain implements spectra.Spectrum.
func (*SeaLevel) Domain() (lo, hi float64) { return 1, 1000 }

// DifferentialFlux implements spectra.Spectrum, in 1/(cm²·s·MeV).
func (s *SeaLevel) DifferentialFlux(eMeV float64) float64 {
	lo, hi := s.Domain()
	if eMeV < lo || eMeV > hi {
		return 0
	}
	return s.scale * s.table.Eval(eMeV)
}

// recoilMaxFraction is the largest fraction of the neutron energy an
// elastic Si recoil can carry.
const recoilMaxFraction = 0.1332

// MaxRecoilEnergy returns the hardest elastic Si recoil a neutron of the
// given energy can produce (MeV).
func MaxRecoilEnergy(energyMeV float64) float64 {
	return recoilMaxFraction * math.Max(0, energyMeV)
}
