package neutron

import (
	"math"
	"testing"

	"finser/internal/phys"
	"finser/internal/rng"
	"finser/internal/spectra"
)

func TestChannelString(t *testing.T) {
	if Elastic.String() != "elastic" || NAlpha.String() != "(n,alpha)" || NProton.String() != "(n,p)" {
		t.Error("channel names wrong")
	}
	if Channel(9).String() == "" {
		t.Error("unknown channel string empty")
	}
}

func TestCrossSectionsBasics(t *testing.T) {
	r := NewReactions()
	// Elastic is open at all energies; reactions have thresholds.
	if r.CrossSection(Elastic, 1) <= 0 {
		t.Error("elastic closed at 1 MeV")
	}
	if r.CrossSection(NAlpha, 1) != 0 {
		t.Error("(n,α) open below threshold")
	}
	if r.CrossSection(NProton, 2) != 0 {
		t.Error("(n,p) open below threshold")
	}
	if r.CrossSection(NAlpha, 14) <= 0 || r.CrossSection(NProton, 14) <= 0 {
		t.Error("reaction channels closed at 14 MeV")
	}
	// Magnitudes: elastic ~1 b at 14 MeV, reactions ~0.1-0.3 b.
	if e := r.CrossSection(Elastic, 14); e < 0.5 || e > 2 {
		t.Errorf("elastic σ(14 MeV) = %v b", e)
	}
	if a := r.CrossSection(NAlpha, 14); a < 0.05 || a > 0.5 {
		t.Errorf("(n,α) σ(14 MeV) = %v b", a)
	}
	// Total is the sum.
	want := r.CrossSection(Elastic, 14) + r.CrossSection(NAlpha, 14) + r.CrossSection(NProton, 14)
	if got := r.TotalCrossSection(14); math.Abs(got-want) > 1e-12 {
		t.Errorf("total σ = %v, want %v", got, want)
	}
	if r.TotalCrossSection(0) != 0 || r.TotalCrossSection(-1) != 0 {
		t.Error("non-positive energy should have zero σ")
	}
}

func TestInteractionProbability(t *testing.T) {
	r := NewReactions()
	// Mean free path check: σ_tot(10 MeV) ≈ 1.7 b ⇒ λ = 1/(nσ) ≈ 12 cm,
	// so P(interact in 30 nm) ≈ 30/12e7 ≈ 2.5e-7.
	p := r.InteractionProbability(10, 30)
	if p < 1e-8 || p > 1e-5 {
		t.Errorf("P(interact, 30 nm, 10 MeV) = %v, want ~2e-7", p)
	}
	// Linear in path.
	if r2 := r.InteractionProbability(10, 60) / p; math.Abs(r2-2) > 1e-9 {
		t.Errorf("probability not linear in path: %v", r2)
	}
	if r.InteractionProbability(10, 0) != 0 {
		t.Error("zero path should give zero probability")
	}
}

func TestSampleElasticKinematics(t *testing.T) {
	r := NewReactions()
	src := rng.New(1)
	const en = 20.0
	maxSeen := 0.0
	for i := 0; i < 5000; i++ {
		secs := r.sampleElastic(src, en)
		if len(secs) == 0 {
			continue
		}
		s := secs[0]
		if s.Species != phys.SiliconIon {
			t.Fatalf("elastic secondary is %v", s.Species)
		}
		if s.EnergyMeV <= 0 || s.EnergyMeV > MaxRecoilEnergy(en)+1e-9 {
			t.Fatalf("recoil energy %v outside (0, %v]", s.EnergyMeV, MaxRecoilEnergy(en))
		}
		if math.Abs(s.Dir.Norm()-1) > 1e-9 {
			t.Fatal("recoil direction not unit")
		}
		if s.EnergyMeV > maxSeen {
			maxSeen = s.EnergyMeV
		}
	}
	// The kinematic endpoint should be approached.
	if maxSeen < 0.8*MaxRecoilEnergy(en) {
		t.Errorf("max recoil %v never approached endpoint %v", maxSeen, MaxRecoilEnergy(en))
	}
}

func TestSampleTwoBodyKinematics(t *testing.T) {
	r := NewReactions()
	src := rng.New(2)
	secs := r.sampleTwoBody(src, 14, qAlpha, phys.Alpha, phys.MagnesiumIon)
	if len(secs) != 2 {
		t.Fatalf("two-body gave %d secondaries", len(secs))
	}
	alpha, mg := secs[0], secs[1]
	if alpha.Species != phys.Alpha || mg.Species != phys.MagnesiumIon {
		t.Fatal("species wrong")
	}
	avail := 14 + qAlpha
	if math.Abs(alpha.EnergyMeV+mg.EnergyMeV-avail) > 1e-9 {
		t.Errorf("energy not conserved: %v + %v != %v", alpha.EnergyMeV, mg.EnergyMeV, avail)
	}
	// Light particle carries the larger share (inverse mass ratio).
	if alpha.EnergyMeV <= mg.EnergyMeV {
		t.Error("alpha should carry most of the available energy")
	}
	// Back-to-back emission.
	if alpha.Dir.Dot(mg.Dir) > -0.999 {
		t.Error("ejectile and recoil not back-to-back")
	}
	// Below threshold: nothing.
	if got := r.sampleTwoBody(src, 1, qAlpha, phys.Alpha, phys.MagnesiumIon); got != nil {
		t.Error("two-body below threshold should be nil")
	}
}

func TestSampleInteractionChannels(t *testing.T) {
	r := NewReactions()
	src := rng.New(3)
	counts := map[phys.Species]int{}
	for i := 0; i < 20000; i++ {
		for _, s := range r.SampleInteraction(src, 14) {
			counts[s.Species]++
			if s.EnergyMeV <= 0 {
				t.Fatalf("non-positive secondary energy: %+v", s)
			}
		}
	}
	// All channels must appear at 14 MeV, elastic dominating.
	if counts[phys.SiliconIon] == 0 || counts[phys.Alpha] == 0 || counts[phys.Proton] == 0 {
		t.Fatalf("missing channels: %v", counts)
	}
	if counts[phys.SiliconIon] < counts[phys.Alpha] {
		t.Error("elastic should dominate (n,α) at 14 MeV")
	}
	// At 1 MeV only elastic is open.
	for i := 0; i < 1000; i++ {
		for _, s := range r.SampleInteraction(src, 1) {
			if s.Species != phys.SiliconIon {
				t.Fatalf("sub-threshold interaction produced %v", s.Species)
			}
		}
	}
	// No channel open at zero energy.
	if r.SampleInteraction(src, 0) != nil {
		t.Error("interaction at zero energy")
	}
}

func TestSeaLevelSpectrum(t *testing.T) {
	s, err := NewSeaLevel(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSeaLevel(0); err == nil {
		t.Error("zero scale accepted")
	}
	// Implements the spectra.Spectrum interface.
	var _ spectra.Spectrum = s
	// Decreasing, positive over the domain.
	prev := math.Inf(1)
	for e := 1.0; e <= 1000; e *= 2 {
		f := s.DifferentialFlux(e)
		if f <= 0 || f >= prev {
			t.Fatalf("neutron flux not positive-decreasing at %v MeV", e)
		}
		prev = f
	}
	if s.DifferentialFlux(0.5) != 0 || s.DifferentialFlux(2000) != 0 {
		t.Error("flux outside domain should be 0")
	}
	// JEDEC magnitude: integral above 10 MeV ≈ 13 n/(cm²·h) within 2×.
	perHour := spectra.IntegralFlux(s, 10, 1000) * 3600
	if perHour < 6 || perHour > 26 {
		t.Errorf("n flux >10 MeV = %v /(cm²·h), want ≈ 13", perHour)
	}
	// Scale is linear.
	s2, _ := NewSeaLevel(2)
	if r := s2.DifferentialFlux(10) / s.DifferentialFlux(10); math.Abs(r-2) > 1e-9 {
		t.Errorf("scale ratio = %v", r)
	}
}

func TestNeutronFluxDominatesProtons(t *testing.T) {
	// Ground-level neutrons outnumber protons — the reason indirect
	// ionization matters even though each neutron rarely interacts.
	n, _ := NewSeaLevel(1)
	p, _ := spectra.NewProtonSeaLevel(1)
	nFlux := spectra.IntegralFlux(n, 1, 1000)
	pFlux := spectra.IntegralFlux(p, 1, 1000)
	if nFlux < 10*pFlux {
		t.Errorf("neutron flux %v not ≫ proton flux %v", nFlux, pFlux)
	}
}
