// Package layout models the geometric side of the paper's array level: a
// parametric 6T thin-cell layout (its Fig. 5b) placing each transistor's
// fin-channel volume in 3-D, and the tiling of cells into an SRAM array
// with the standard mirror-image abutment. The array exposes the flattened
// list of fin boxes plus the fin → (cell, transistor-role) mapping the
// Monte-Carlo strike analysis needs to turn one particle track into
// per-cell strike-current combinations — including multi-cell tracks, which
// are what produce MBUs.
package layout

import (
	"fmt"

	"finser/internal/finfet"
	"finser/internal/geom"
	"finser/internal/sram"
)

// CellLayout is the in-cell placement of the six transistors' sensitive
// volumes (the fin segment under the gate), in nm, with the cell origin at
// its lower-left corner and fins standing on z = 0.
type CellLayout struct {
	WidthNm  float64
	HeightNm float64
	// FinBoxes holds each role's channel volumes in canonical (unmirrored)
	// orientation — one box per fin, so multi-fin transistors contribute
	// several strike targets.
	FinBoxes [sram.NumRoles][]geom.AABB
	// FinHeightNm is the fin (and array) height above the BOX.
	FinHeightNm float64
}

// ThinCellLayout builds the standard 6T "thin cell": four fin columns —
// shared PD/PG actives on the outer columns, the PU pair in the middle —
// with 180°-rotational symmetry (PG_L at the cell bottom, PG_R at the top).
// Dimensions derive from the technology's fin/gate pitches. Multi-fin
// transistors (Technology.FinsPD etc.) get additional fins at fin pitch,
// extending outward from their column; the cell widens to keep the pitch
// between neighbouring actives.
func ThinCellLayout(t finfet.Technology) CellLayout {
	fp := t.FinPitchNm
	gp := t.GatePitchNm
	w := t.FinWidthNm
	l := t.GateLengthNm
	h := t.FinHeightNm

	// Extra columns on each outer side carry the additional PD/PG fins
	// (they share the outer active). The PU pair stays single-fin-column
	// unless FinsPU > 1 (rare), in which case the middle widens too.
	outerExtra := maxInt(t.PDFins(), t.PGFins()) - 1
	puExtra := t.PUFins() - 1
	cols := 4 + 2*outerExtra + 2*puExtra

	lay := CellLayout{
		WidthNm:     float64(cols) * fp,
		HeightNm:    2 * gp,
		FinHeightNm: h,
	}
	// Row centres: inner (cross-coupled) row and the two pass-gate rows.
	yInner := gp
	yBottom := gp / 4
	yTop := 2*gp - gp/4

	colX := func(i int) float64 { return fp/2 + float64(i)*fp }
	box := func(cx, cy float64) geom.AABB {
		return geom.Box(
			geom.V(cx-w/2, cy-l/2, 0),
			geom.V(cx+w/2, cy+l/2, h),
		)
	}
	multi := func(startCol, n int, cy float64) []geom.AABB {
		out := make([]geom.AABB, 0, n)
		for i := 0; i < n; i++ {
			out = append(out, box(colX(startCol+i), cy))
		}
		return out
	}
	// Left outer active spans columns [0, outerExtra]; right outer active
	// mirrors it. PU columns sit in the middle.
	leftStart := 0
	puLeft := 1 + outerExtra
	puRight := puLeft + puExtra + 1
	rightStart := cols - 1 - outerExtra

	lay.FinBoxes[sram.PDL] = multi(leftStart, t.PDFins(), yInner)
	lay.FinBoxes[sram.PGL] = multi(leftStart, t.PGFins(), yBottom)
	lay.FinBoxes[sram.PUL] = multi(puLeft, t.PUFins(), yInner)
	lay.FinBoxes[sram.PUR] = multi(puRight, t.PUFins(), yInner)
	lay.FinBoxes[sram.PDR] = multi(rightStart, t.PDFins(), yInner)
	lay.FinBoxes[sram.PGR] = multi(rightStart, t.PGFins(), yTop)
	return lay
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// FinRef ties one fin box to its cell and transistor role.
type FinRef struct {
	Row, Col int
	Role     sram.Role
	Box      geom.AABB
}

// Array is a tiled rows×cols SRAM array.
type Array struct {
	Rows, Cols int
	Cell       CellLayout
	fins       []FinRef
	bounds     geom.AABB
}

// NewArray tiles the cell layout into a rows×cols array. Adjacent cells are
// mirrored across their shared boundaries (standard SRAM abutment), so
// neighbouring sensitive volumes cluster near shared edges — the geometry
// that shapes the MBU statistics.
func NewArray(lay CellLayout, rows, cols int) (*Array, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("layout: need positive array dims, got %d×%d", rows, cols)
	}
	a := &Array{Rows: rows, Cols: cols, Cell: lay}
	a.fins = make([]FinRef, 0, rows*cols*int(sram.NumRoles))
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			ox := float64(c) * lay.WidthNm
			oy := float64(r) * lay.HeightNm
			flipX := c%2 == 1
			flipY := r%2 == 1
			for role := sram.Role(0); role < sram.NumRoles; role++ {
				for _, b := range lay.FinBoxes[role] {
					if flipX {
						b = geom.Box(
							geom.V(lay.WidthNm-b.Max.X, b.Min.Y, b.Min.Z),
							geom.V(lay.WidthNm-b.Min.X, b.Max.Y, b.Max.Z),
						)
					}
					if flipY {
						b = geom.Box(
							geom.V(b.Min.X, lay.HeightNm-b.Max.Y, b.Min.Z),
							geom.V(b.Max.X, lay.HeightNm-b.Min.Y, b.Max.Z),
						)
					}
					a.fins = append(a.fins, FinRef{
						Row: r, Col: c, Role: role,
						Box: b.Translate(geom.V(ox, oy, 0)),
					})
				}
			}
		}
	}
	a.bounds = geom.Box(
		geom.V(0, 0, 0),
		geom.V(float64(cols)*lay.WidthNm, float64(rows)*lay.HeightNm, lay.FinHeightNm),
	)
	return a, nil
}

// Fins returns the flattened fin list; index i here matches the fin index
// reported by the transport layer when given Boxes().
func (a *Array) Fins() []FinRef { return a.fins }

// Boxes returns just the fin boxes, aligned with Fins() indices, for the
// transport layer.
func (a *Array) Boxes() []geom.AABB {
	out := make([]geom.AABB, len(a.fins))
	for i, f := range a.fins {
		out[i] = f.Box
	}
	return out
}

// Bounds returns the array bounding volume (cells × fin height).
func (a *Array) Bounds() geom.AABB { return a.bounds }

// CellIndex maps (row, col) to a dense cell index.
func (a *Array) CellIndex(row, col int) int { return row*a.Cols + col }

// NumCells returns rows×cols.
func (a *Array) NumCells() int { return a.Rows * a.Cols }

// DimsCm returns the array's Lx and Ly in centimetres — the paper's
// Eq. 7/8 area terms.
func (a *Array) DimsCm() (lx, ly float64) {
	s := a.bounds.Size()
	return s.X * 1e-7, s.Y * 1e-7
}
