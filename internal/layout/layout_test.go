package layout

import (
	"testing"

	"finser/internal/finfet"
	"finser/internal/geom"
	"finser/internal/sram"
)

func lay() CellLayout { return ThinCellLayout(finfet.Default14nmSOI()) }

func TestThinCellDimensions(t *testing.T) {
	l := lay()
	tech := finfet.Default14nmSOI()
	if l.WidthNm != 4*tech.FinPitchNm {
		t.Errorf("cell width = %v", l.WidthNm)
	}
	if l.HeightNm != 2*tech.GatePitchNm {
		t.Errorf("cell height = %v", l.HeightNm)
	}
	// Every fin box sits inside the cell and spans the full fin height.
	cell := geom.Box(geom.V(0, 0, 0), geom.V(l.WidthNm, l.HeightNm, l.FinHeightNm))
	for role := sram.Role(0); role < sram.NumRoles; role++ {
		if len(l.FinBoxes[role]) != 1 {
			t.Fatalf("%v: default cell should have one fin, got %d", role, len(l.FinBoxes[role]))
		}
		for _, b := range l.FinBoxes[role] {
			if !cell.Contains(b.Min) || !cell.Contains(b.Max) {
				t.Errorf("%v box %+v outside cell", role, b)
			}
			s := b.Size()
			if s.X != tech.FinWidthNm || s.Y != tech.GateLengthNm || s.Z != tech.FinHeightNm {
				t.Errorf("%v box size = %v", role, s)
			}
		}
	}
}

func TestThinCellNoOverlap(t *testing.T) {
	l := lay()
	var all []geom.AABB
	for a := sram.Role(0); a < sram.NumRoles; a++ {
		all = append(all, l.FinBoxes[a]...)
	}
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			ba, bb := all[i], all[j]
			overlapX := ba.Min.X < bb.Max.X && bb.Min.X < ba.Max.X
			overlapY := ba.Min.Y < bb.Max.Y && bb.Min.Y < ba.Max.Y
			if overlapX && overlapY {
				t.Errorf("fin boxes %d and %d overlap", i, j)
			}
		}
	}
}

func TestThinCellRotationalSymmetry(t *testing.T) {
	// PG_L at the bottom, PG_R at the top (180° symmetry of the thin cell).
	l := lay()
	if l.FinBoxes[sram.PGL][0].Center().Y >= l.FinBoxes[sram.PDL][0].Center().Y {
		t.Error("PG_L should sit below the inner row")
	}
	if l.FinBoxes[sram.PGR][0].Center().Y <= l.FinBoxes[sram.PDR][0].Center().Y {
		t.Error("PG_R should sit above the inner row")
	}
	// PU pair in the middle columns.
	if l.FinBoxes[sram.PUL][0].Center().X >= l.FinBoxes[sram.PUR][0].Center().X {
		t.Error("PU_L should be left of PU_R")
	}
	if l.FinBoxes[sram.PDL][0].Center().X >= l.FinBoxes[sram.PUL][0].Center().X {
		t.Error("PD_L should be left of PU_L")
	}
}

func TestNewArrayValidation(t *testing.T) {
	if _, err := NewArray(lay(), 0, 5); err == nil {
		t.Error("zero rows accepted")
	}
	if _, err := NewArray(lay(), 5, -1); err == nil {
		t.Error("negative cols accepted")
	}
}

func TestArrayFinCount(t *testing.T) {
	a, err := NewArray(lay(), 9, 9)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(a.Fins()); got != 9*9*6 {
		t.Errorf("fin count = %d, want 486", got)
	}
	if a.NumCells() != 81 {
		t.Errorf("NumCells = %d", a.NumCells())
	}
	if len(a.Boxes()) != len(a.Fins()) {
		t.Error("Boxes/Fins length mismatch")
	}
}

func TestArrayFinsInsideBounds(t *testing.T) {
	a, _ := NewArray(lay(), 3, 4)
	bounds := a.Bounds()
	for _, f := range a.Fins() {
		if !bounds.Contains(f.Box.Min) || !bounds.Contains(f.Box.Max) {
			t.Fatalf("fin %+v outside array bounds", f)
		}
	}
}

func TestArrayMirroring(t *testing.T) {
	a, _ := NewArray(lay(), 2, 2)
	find := func(r, c int, role sram.Role) geom.AABB {
		for _, f := range a.Fins() {
			if f.Row == r && f.Col == c && f.Role == role {
				return f.Box
			}
		}
		t.Fatalf("fin (%d,%d,%v) not found", r, c, role)
		return geom.AABB{}
	}
	w := lay().WidthNm
	// Cell (0,1) is X-mirrored: its PD_L box must be the mirror of cell
	// (0,0)'s about the shared boundary x = w.
	b00 := find(0, 0, sram.PDL)
	b01 := find(0, 1, sram.PDL)
	wantMinX := w + (w - b00.Max.X)
	if diff := b01.Min.X - wantMinX; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("X mirror wrong: got %v, want %v", b01.Min.X, wantMinX)
	}
	if b01.Min.Y != b00.Min.Y {
		t.Error("X mirror should not change Y")
	}
	// Cell (1,0) is Y-mirrored.
	h := lay().HeightNm
	b10 := find(1, 0, sram.PGL)
	wantMinY := h + (h - find(0, 0, sram.PGL).Max.Y)
	if diff := b10.Min.Y - wantMinY; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("Y mirror wrong: got %v, want %v", b10.Min.Y, wantMinY)
	}
}

func TestArrayNoCrossCellOverlap(t *testing.T) {
	a, _ := NewArray(lay(), 3, 3)
	fins := a.Fins()
	for i := 0; i < len(fins); i++ {
		for j := i + 1; j < len(fins); j++ {
			bi, bj := fins[i].Box, fins[j].Box
			if bi.Min.X < bj.Max.X && bj.Min.X < bi.Max.X &&
				bi.Min.Y < bj.Max.Y && bj.Min.Y < bi.Max.Y {
				t.Fatalf("fins %d and %d overlap: %+v vs %+v", i, j, fins[i], fins[j])
			}
		}
	}
}

func TestDimsCm(t *testing.T) {
	a, _ := NewArray(lay(), 9, 9)
	lx, ly := a.DimsCm()
	// 9 × 192 nm = 1728 nm = 1.728e-4 cm; 9 × 180 nm = 1620 nm.
	if lx < 1.7e-4 || lx > 1.8e-4 {
		t.Errorf("lx = %v cm", lx)
	}
	if ly < 1.6e-4 || ly > 1.7e-4 {
		t.Errorf("ly = %v cm", ly)
	}
}

func TestGrazingTrackCrossesManyCells(t *testing.T) {
	// The MBU mechanism: a shallow track along the array must intersect
	// sensitive volumes in more than one cell.
	a, _ := NewArray(lay(), 9, 9)
	l := lay()
	// Travel along +X at the inner-row height of row 0 cells.
	y := l.FinBoxes[sram.PDL][0].Center().Y
	ray := geom.Ray{Origin: geom.V(-10, y, 15), Dir: geom.V(1, 0, 0)}
	cells := map[int]bool{}
	for _, f := range a.Fins() {
		if _, _, ok := f.Box.Intersect(ray); ok {
			cells[a.CellIndex(f.Row, f.Col)] = true
		}
	}
	if len(cells) < 3 {
		t.Errorf("grazing track crossed only %d cells", len(cells))
	}
}

func TestMultiFinLayout(t *testing.T) {
	tech := finfet.Default14nmSOI()
	tech.FinsPD = 2
	tech.FinsPG = 2
	l := ThinCellLayout(tech)
	// Cell widens by one pitch on each side.
	if l.WidthNm != 6*tech.FinPitchNm {
		t.Errorf("2-fin cell width = %v, want %v", l.WidthNm, 6*tech.FinPitchNm)
	}
	if len(l.FinBoxes[sram.PDL]) != 2 || len(l.FinBoxes[sram.PGR]) != 2 {
		t.Fatalf("PD/PG fin counts wrong: %d, %d",
			len(l.FinBoxes[sram.PDL]), len(l.FinBoxes[sram.PGR]))
	}
	if len(l.FinBoxes[sram.PUL]) != 1 {
		t.Fatalf("PU fin count = %d", len(l.FinBoxes[sram.PUL]))
	}
	// Adjacent fins of one transistor sit at fin pitch.
	d := l.FinBoxes[sram.PDL][1].Center().X - l.FinBoxes[sram.PDL][0].Center().X
	if d != tech.FinPitchNm {
		t.Errorf("fin spacing = %v, want pitch %v", d, tech.FinPitchNm)
	}
	// Array carries the extra fins and still avoids overlap.
	a, err := NewArray(l, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(a.Fins()); got != 3*3*(2+2+1)*2 {
		t.Errorf("multi-fin array fin count = %d, want 90", got)
	}
	fins := a.Fins()
	for i := 0; i < len(fins); i++ {
		for j := i + 1; j < len(fins); j++ {
			bi, bj := fins[i].Box, fins[j].Box
			if bi.Min.X < bj.Max.X && bj.Min.X < bi.Max.X &&
				bi.Min.Y < bj.Max.Y && bj.Min.Y < bi.Max.Y {
				t.Fatalf("multi-fin fins %d and %d overlap", i, j)
			}
		}
	}
}
