// Package guard is the flow's runtime physics-invariant layer: declarative
// checks on the numbers crossing every stage boundary — probabilities stay
// in [0,1], nothing NaN or infinite escapes a solver, deposited charge is
// conserved into the circuit injection, characterized POF tables are
// monotone in charge, FIT rates are finite and non-negative.
//
// A Guard carries an enforcement mode:
//
//   - Off: every check is a single nil/enum comparison and returns nil —
//     the zero-cost production default, same idiom as internal/obs.
//   - Warn: violations are counted on the attached obs.Registry
//     (guard/violations and guard/violations/<invariant>) and logged once
//     per (invariant, stage) pair; the flow continues on the raw values.
//   - Strict: violations additionally fail the stage with a typed
//     *InvariantError naming the invariant, the stage, and the offending
//     value, so corrupt inputs are stopped before they reach the SER
//     numbers.
//
// A nil *Guard behaves like Off, so instrumented code needs no "is the
// guard on?" branches.
package guard

import (
	"fmt"
	"math"
	"sync"

	"finser/internal/obs"
)

// Mode is the enforcement level of a Guard.
type Mode int

const (
	// Off disables every check (the zero value).
	Off Mode = iota
	// Warn counts and logs violations but lets the flow continue.
	Warn
	// Strict fails the stage with a typed *InvariantError.
	Strict
)

// String renders the mode as its flag spelling.
func (m Mode) String() string {
	switch m {
	case Off:
		return "off"
	case Warn:
		return "warn"
	case Strict:
		return "strict"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode parses the -guard flag spelling.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "off", "":
		return Off, nil
	case "warn":
		return Warn, nil
	case "strict":
		return Strict, nil
	default:
		return Off, fmt.Errorf("guard: unknown mode %q (want off|warn|strict)", s)
	}
}

// InvariantError reports a physics-invariant violation in strict mode. It
// names what was violated and where, so a failed stage is diagnosable
// without rerunning: "guard: invariant pof-range violated at core.strike:
// cell POF = NaN".
type InvariantError struct {
	// Invariant is the violated invariant's name, e.g. "pof-range",
	// "finite", "charge-conservation", "pof-monotone", "nonneg-finite".
	Invariant string
	// Stage is the flow stage the violation was caught in.
	Stage string
	// Value is the offending value (NaN/Inf preserved).
	Value float64
	// Detail names the quantity and any context (index, axis, tolerance).
	Detail string
}

func (e *InvariantError) Error() string {
	return fmt.Sprintf("guard: invariant %s violated at %s: %s = %g",
		e.Invariant, e.Stage, e.Detail, e.Value)
}

// Logf is the warn-mode log sink signature (log.Printf-compatible).
type Logf func(format string, args ...any)

// Guard is a set of armed invariant checks at one enforcement mode.
// Construct with New; share one Guard across a whole flow. All methods are
// safe for concurrent use and nil-receiver no-ops.
type Guard struct {
	mode Mode
	reg  *obs.Registry
	logf Logf

	mu     sync.Mutex
	logged map[string]struct{} // (invariant|stage) pairs already logged
	notify func(Violation)     // optional live violation hook (SetNotify)
}

// Violation is the notification payload delivered to a SetNotify hook: the
// same facts an *InvariantError carries, but emitted on every violation in
// every armed mode — warn-mode violations are otherwise only visible as
// registry counters, which a live event stream cannot attribute to a
// specific invariant occurrence.
type Violation struct {
	Invariant string
	Stage     string
	Value     float64
	Detail    string
}

// SetNotify installs fn as the violation hook; every recorded violation
// (warn and strict alike) invokes it synchronously after counting and
// logging. fn runs on the violating goroutine — keep it non-blocking.
// Passing nil uninstalls the hook; no-op on a nil receiver (an Off guard
// records no violations).
func (g *Guard) SetNotify(fn func(Violation)) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.notify = fn
	g.mu.Unlock()
}

// New builds a Guard. A nil registry disables counting (checks still
// enforce); logf nil discards warn-mode logs. New returns nil for Off so
// the caller holds the cheapest possible representation.
func New(mode Mode, reg *obs.Registry, logf Logf) *Guard {
	if mode == Off {
		return nil
	}
	return &Guard{mode: mode, reg: reg, logf: logf, logged: map[string]struct{}{}}
}

// Enabled reports whether any checking is armed. The hot loops use it to
// skip assembling check inputs entirely when the guard is off.
func (g *Guard) Enabled() bool { return g != nil && g.mode != Off }

// Mode returns the enforcement mode (Off on a nil receiver).
func (g *Guard) Mode() Mode {
	if g == nil {
		return Off
	}
	return g.mode
}

// violate records one violation and returns the typed error in strict mode.
func (g *Guard) violate(invariant, stage string, value float64, detail string) error {
	g.reg.Counter("guard/violations").Inc()
	g.reg.Counter("guard/violations/" + invariant).Inc()
	g.mu.Lock()
	notify := g.notify
	g.mu.Unlock()
	if notify != nil {
		notify(Violation{Invariant: invariant, Stage: stage, Value: value, Detail: detail})
	}
	if g.logf != nil {
		key := invariant + "|" + stage
		g.mu.Lock()
		_, seen := g.logged[key]
		if !seen {
			g.logged[key] = struct{}{}
		}
		g.mu.Unlock()
		if !seen {
			g.logf("guard: invariant %s violated at %s: %s = %g (further violations counted, not logged)",
				invariant, stage, detail, value)
		}
	}
	if g.mode == Strict {
		return &InvariantError{Invariant: invariant, Stage: stage, Value: value, Detail: detail}
	}
	return nil
}

// Violations returns the total violation count seen by the attached
// registry (0 with no registry or a nil receiver) — test and ops
// introspection.
func (g *Guard) Violations() int64 {
	if g == nil {
		return 0
	}
	return g.reg.Counter("guard/violations").Value()
}

// Probability checks p ∈ [0,1] and finite — the POF-range invariant at
// every boundary where a flip probability crosses stages.
func (g *Guard) Probability(stage, name string, p float64) error {
	if !g.Enabled() {
		return nil
	}
	if math.IsNaN(p) || p < 0 || p > 1 {
		return g.violate("pof-range", stage, p, name)
	}
	return nil
}

// Finite checks v is neither NaN nor ±Inf — the solver-escape tripwire.
func (g *Guard) Finite(stage, name string, v float64) error {
	if !g.Enabled() {
		return nil
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return g.violate("finite", stage, v, name)
	}
	return nil
}

// NonNegativeFinite checks v ≥ 0 and finite — the invariant FIT rates and
// transport deposits share.
func (g *Guard) NonNegativeFinite(stage, name string, v float64) error {
	if !g.Enabled() {
		return nil
	}
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return g.violate("nonneg-finite", stage, v, name)
	}
	return nil
}

// Conserved checks got against want to the relative tolerance relTol
// (absolute below absFloor) — the charge-conservation invariant between
// transport deposits and circuit injection.
func (g *Guard) Conserved(stage, name string, got, want, relTol, absFloor float64) error {
	if !g.Enabled() {
		return nil
	}
	diff := math.Abs(got - want)
	if math.IsNaN(diff) {
		return g.violate("charge-conservation", stage, got, name+" (NaN)")
	}
	scale := math.Max(math.Abs(want), absFloor)
	if diff > relTol*scale {
		return g.violate("charge-conservation", stage, got,
			fmt.Sprintf("%s (want %g within rel %g)", name, want, relTol))
	}
	return nil
}

// MonotoneNonDecreasing checks ys is non-decreasing (within tol slack per
// step) along its index — the paper's Fig. 5 POF-vs-charge verification on
// characterized LUTs. NaN anywhere is a violation.
func (g *Guard) MonotoneNonDecreasing(stage, name string, ys []float64, tol float64) error {
	if !g.Enabled() {
		return nil
	}
	for i, y := range ys {
		if math.IsNaN(y) {
			return g.violate("pof-monotone", stage, y, fmt.Sprintf("%s[%d] (NaN)", name, i))
		}
		if i > 0 && y < ys[i-1]-tol {
			return g.violate("pof-monotone", stage, y,
				fmt.Sprintf("%s[%d] decreases from %g (tol %g)", name, i, ys[i-1], tol))
		}
	}
	return nil
}

// MonotoneNonIncreasing is the mirror check — POF versus supply voltage:
// a higher Vdd must not make the cell easier to flip (beyond tol slack).
func (g *Guard) MonotoneNonIncreasing(stage, name string, ys []float64, tol float64) error {
	if !g.Enabled() {
		return nil
	}
	for i, y := range ys {
		if math.IsNaN(y) {
			return g.violate("pof-vdd-monotone", stage, y, fmt.Sprintf("%s[%d] (NaN)", name, i))
		}
		if i > 0 && y > ys[i-1]+tol {
			return g.violate("pof-vdd-monotone", stage, y,
				fmt.Sprintf("%s[%d] increases from %g (tol %g)", name, i, ys[i-1], tol))
		}
	}
	return nil
}
