package guard

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"finser/internal/obs"
)

func TestParseMode(t *testing.T) {
	cases := []struct {
		in   string
		want Mode
		ok   bool
	}{
		{"off", Off, true},
		{"", Off, true},
		{"warn", Warn, true},
		{"strict", Strict, true},
		{"STRICT", Off, false},
		{"paranoid", Off, false},
	}
	for _, c := range cases {
		got, err := ParseMode(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseMode(%q) err = %v, want ok=%v", c.in, err, c.ok)
		}
		if err == nil && got != c.want {
			t.Errorf("ParseMode(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, m := range []Mode{Off, Warn, Strict} {
		rt, err := ParseMode(m.String())
		if err != nil || rt != m {
			t.Errorf("round trip %v: got %v, %v", m, rt, err)
		}
	}
}

func TestNilAndOffAreNoOps(t *testing.T) {
	var g *Guard
	if g.Enabled() {
		t.Fatal("nil guard reports enabled")
	}
	if g.Mode() != Off {
		t.Fatalf("nil guard mode = %v", g.Mode())
	}
	if err := g.Probability("s", "p", math.NaN()); err != nil {
		t.Fatalf("nil guard returned %v", err)
	}
	if off := New(Off, obs.NewRegistry(), nil); off != nil {
		t.Fatal("New(Off) should return nil")
	}
}

func TestStrictReturnsTypedError(t *testing.T) {
	reg := obs.NewRegistry()
	g := New(Strict, reg, nil)
	cases := []struct {
		name      string
		err       error
		invariant string
	}{
		{"nan pof", g.Probability("core.strike", "cell POF", math.NaN()), "pof-range"},
		{"pof above one", g.Probability("core.strike", "cell POF", 1.5), "pof-range"},
		{"negative pof", g.Probability("core.strike", "cell POF", -0.1), "pof-range"},
		{"inf voltage", g.Finite("circuit.transient", "node v", math.Inf(1)), "finite"},
		{"nan voltage", g.Finite("circuit.transient", "node v", math.NaN()), "finite"},
		{"negative fit", g.NonNegativeFinite("fit/alpha", "TotalFIT", -3), "nonneg-finite"},
		{"nan fit", g.NonNegativeFinite("fit/alpha", "TotalFIT", math.NaN()), "nonneg-finite"},
		{"lost charge", g.Conserved("core.strike", "injected charge", 0.5, 1.0, 1e-9, 0), "charge-conservation"},
		{"nan conserved", g.Conserved("core.strike", "injected charge", math.NaN(), 1.0, 1e-9, 0), "charge-conservation"},
		{"pof decreases", g.MonotoneNonDecreasing("characterize", "pof(q)", []float64{0, 0.5, 0.3}, 0), "pof-monotone"},
		{"pof nan mid-table", g.MonotoneNonDecreasing("characterize", "pof(q)", []float64{0, math.NaN(), 1}, 0), "pof-monotone"},
		{"pof grows with vdd", g.MonotoneNonIncreasing("sweep", "pof(vdd)", []float64{0.9, 0.95}, 0.01), "pof-vdd-monotone"},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Errorf("%s: expected violation", c.name)
			continue
		}
		var inv *InvariantError
		if !errors.As(c.err, &inv) {
			t.Errorf("%s: error %T is not *InvariantError", c.name, c.err)
			continue
		}
		if inv.Invariant != c.invariant {
			t.Errorf("%s: invariant = %q, want %q", c.name, inv.Invariant, c.invariant)
		}
		if inv.Stage == "" || !strings.Contains(c.err.Error(), inv.Stage) {
			t.Errorf("%s: error %q does not name the stage", c.name, c.err)
		}
		if !strings.Contains(c.err.Error(), inv.Invariant) {
			t.Errorf("%s: error %q does not name the invariant", c.name, c.err)
		}
	}
	if got := reg.Counter("guard/violations").Value(); got != int64(len(cases)) {
		t.Errorf("total violations = %d, want %d", got, len(cases))
	}
	if got := g.Violations(); got != int64(len(cases)) {
		t.Errorf("Violations() = %d, want %d", got, len(cases))
	}
}

func TestValidValuesPass(t *testing.T) {
	g := New(Strict, nil, nil)
	checks := []error{
		g.Probability("s", "p", 0),
		g.Probability("s", "p", 1),
		g.Probability("s", "p", 0.37),
		g.Finite("s", "v", -12.5),
		g.NonNegativeFinite("s", "fit", 0),
		g.NonNegativeFinite("s", "fit", 4.2e3),
		g.Conserved("s", "q", 1.0000000001e-15, 1e-15, 1e-9, 0),
		g.Conserved("s", "q", 0, 0, 1e-9, 1e-30),
		g.MonotoneNonDecreasing("s", "pof", []float64{0, 0, 0.2, 0.9, 1}, 0),
		g.MonotoneNonIncreasing("s", "pof", []float64{0.9, 0.5, 0.5, 0.1}, 0),
		g.MonotoneNonIncreasing("s", "pof", []float64{0.5, 0.52}, 0.05), // within tolerance
	}
	for i, err := range checks {
		if err != nil {
			t.Errorf("check %d: unexpected violation %v", i, err)
		}
	}
}

func TestWarnCountsAndContinues(t *testing.T) {
	reg := obs.NewRegistry()
	var lines []string
	g := New(Warn, reg, func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	})
	for i := 0; i < 5; i++ {
		if err := g.Probability("core.strike", "cell POF", math.NaN()); err != nil {
			t.Fatalf("warn mode returned error: %v", err)
		}
	}
	if err := g.Finite("circuit.transient", "node v", math.Inf(-1)); err != nil {
		t.Fatalf("warn mode returned error: %v", err)
	}
	if got := reg.Counter("guard/violations").Value(); got != 6 {
		t.Errorf("violations = %d, want 6", got)
	}
	if got := reg.Counter("guard/violations/pof-range").Value(); got != 5 {
		t.Errorf("pof-range violations = %d, want 5", got)
	}
	if got := reg.Counter("guard/violations/finite").Value(); got != 1 {
		t.Errorf("finite violations = %d, want 1", got)
	}
	// Log throttling: one line per (invariant, stage) pair.
	if len(lines) != 2 {
		t.Errorf("logged %d lines, want 2 (throttled): %q", len(lines), lines)
	}
}

func TestGuardConcurrentUse(t *testing.T) {
	g := New(Warn, obs.NewRegistry(), func(string, ...any) {})
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				g.Probability("s", "p", math.NaN())
				g.Finite("s", "v", 1)
			}
		}()
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	if got := g.Violations(); got != 8000 {
		t.Errorf("violations = %d, want 8000", got)
	}
}
