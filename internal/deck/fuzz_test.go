package deck

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// FuzzDeckParse drives the netlist trust boundary: arbitrary text must
// either fail with a *ParseError (or read error) or parse into a deck that
// writes back out and re-parses cleanly — never a panic, never a
// half-constructed card.
func FuzzDeckParse(f *testing.F) {
	f.Add(".title divider\nR1 in mid 1k\nR2 mid 0 1k\nV1 in 0 1.0\n.end\n")
	f.Add("Cload q 0 0.5f\nIstrike q 0 PULSE(0 1u 10p 1p 1p 5p)\n")
	f.Add("M1 q wl blt nfet nfins=2 dvth=0.01\nM2 q vdd qb pfet\n")
	f.Add("V1 in 0\n+ PULSE(0 0.8 0 1p\n+ 1p 50p)\n")
	f.Add("* only a comment\n")
	f.Add("R1 a b nank\n")
	f.Add("+ orphan continuation\n")
	f.Add("R1 a\n")
	f.Add(".end\nR1 a b 1k\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, text string) {
		d, err := Parse(strings.NewReader(text))
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) && !strings.Contains(err.Error(), "deck:") {
				t.Fatalf("untyped error %T: %v", err, err)
			}
			return
		}
		// An accepted deck must survive a write → re-parse round trip.
		var buf bytes.Buffer
		if err := d.Write(&buf); err != nil {
			t.Fatalf("write back: %v", err)
		}
		d2, err := Parse(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v\ncanonical form:\n%s", err, buf.String())
		}
		if len(d2.Cards) != len(d.Cards) {
			t.Fatalf("round trip card count %d != %d", len(d2.Cards), len(d.Cards))
		}
	})
}
