package deck

import (
	"errors"
	"strings"
	"testing"

	"finser/internal/finfet"
)

// TestParseRejectsMalformedDecks drives the netlist trust boundary with the
// corruption classes a hand-edited or truncated deck can carry. Every case
// must surface a *ParseError naming the offending line — never a zero-value
// card and never a panic.
func TestParseRejectsMalformedDecks(t *testing.T) {
	cases := []struct {
		name    string
		deck    string
		line    int    // expected ParseError.Line (0 = don't check)
		errNeed string // substring the error must contain
	}{
		{"non-finite value via suffix trim", "R1 a b nank", 1, "non-finite"},
		{"inf value via suffix trim", "C1 a b infu", 1, "non-finite"},
		{"inf via big exponent", "R1 a b 1e999", 1, "bad value"},
		{"short card", "R1 a", 1, "short card"},
		{"resistor missing value", "R1 a b", 1, "2 nodes and a value"},
		{"resistor trailing fields", "R1 a b 1k extra", 1, "2 nodes and a value"},
		{"bad pulse arity", "V1 a 0 PULSE(0 1 0)", 1, "6 arguments"},
		{"negative pulse width", "I1 a 0 PULSE(0 1u 0 1p 1p -5p)", 1, "non-negative"},
		{"unparseable pulse arg", "V1 a 0 PULSE(0 1 x 1p 1p 5p)", 1, "bad value"},
		{"finfet missing model", "M1 d g s", 1, "needs d g s and a model"},
		{"finfet unknown model", "M1 d g s cmos", 1, "unknown model"},
		{"finfet bare parameter", "M1 d g s nfet nfins", 1, "bad parameter"},
		{"finfet bad param value", "M1 d g s nfet nfins=abc", 1, "bad value"},
		{"unsupported element", "Q1 a b c", 1, "unsupported element"},
		{"continuation first", "+ 1k", 1, "continuation"},
		{"error on later line", "* comment\nR1 a b 1k\nC1 a b\n", 3, "2 nodes and a value"},
		{"error in folded card", "V1 a 0\n+ PULSE(0 1 0)", 1, "6 arguments"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(c.deck))
			if err == nil {
				t.Fatal("malformed deck accepted")
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error %T is not *ParseError: %v", err, err)
			}
			if c.line != 0 && pe.Line != c.line {
				t.Errorf("ParseError.Line = %d, want %d (%v)", pe.Line, c.line, err)
			}
			if !strings.Contains(err.Error(), c.errNeed) {
				t.Errorf("error %q does not mention %q", err, c.errNeed)
			}
		})
	}
}

func TestBuildRejectsBadParams(t *testing.T) {
	cases := []struct {
		name string
		deck string
		need string
	}{
		{"zero resistance", "R1 a b 0", "non-positive resistance"},
		{"negative capacitance", "C1 a b -1f", "non-positive capacitance"},
		{"fractional nfins", "M1 d g s nfet nfins=1.5", "positive integer"},
		{"zero nfins", "M1 d g s nfet nfins=0", "positive integer"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d, err := Parse(strings.NewReader(c.deck))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if _, _, err := d.Build(finfet.Default14nmSOI()); err == nil {
				t.Fatal("bad deck built")
			} else if !strings.Contains(err.Error(), c.need) {
				t.Errorf("error %q does not mention %q", err, c.need)
			}
		})
	}
}
