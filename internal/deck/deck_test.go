package deck

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"finser/internal/circuit"
	"finser/internal/finfet"
)

func TestParseValue(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"1k", 1e3}, {"2.5meg", 2.5e6}, {"3g", 3e9}, {"1t", 1e12},
		{"10m", 1e-2}, {"4u", 4e-6}, {"7n", 7e-9}, {"2p", 2e-12}, {"0.1f", 1e-16},
		{"42", 42}, {"-3.5k", -3500}, {"1e-12", 1e-12}, {" 5 ", 5},
	}
	for _, c := range cases {
		got, err := ParseValue(c.in)
		if err != nil {
			t.Errorf("ParseValue(%q): %v", c.in, err)
			continue
		}
		if math.Abs(got-c.want) > 1e-12*math.Abs(c.want) {
			t.Errorf("ParseValue(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "abc", "1x2", "k"} {
		if _, err := ParseValue(bad); err == nil {
			t.Errorf("ParseValue(%q) accepted", bad)
		}
	}
}

func TestFormatValueRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1e3, 2.5e6, 1e-15, 4.7e-6, 42, -3500, 8e-17} {
		s := FormatValue(v)
		got, err := ParseValue(s)
		if err != nil {
			t.Fatalf("FormatValue(%v) = %q unparseable: %v", v, s, err)
		}
		if v == 0 {
			if got != 0 {
				t.Errorf("zero round-trip = %v", got)
			}
			continue
		}
		if math.Abs(got-v)/math.Abs(v) > 1e-5 {
			t.Errorf("round trip %v → %q → %v", v, s, got)
		}
	}
}

const dividerDeck = `
* a simple divider
.title divider
V1 in 0 1
R1 in mid 1k
R2 mid 0 3k
.end
`

func TestParseAndBuildDivider(t *testing.T) {
	d, err := Parse(strings.NewReader(dividerDeck))
	if err != nil {
		t.Fatal(err)
	}
	if d.Title != "divider" {
		t.Errorf("title = %q", d.Title)
	}
	if len(d.Cards) != 3 {
		t.Fatalf("cards = %d", len(d.Cards))
	}
	c, nodes, err := d.Build(finfet.Default14nmSOI())
	if err != nil {
		t.Fatal(err)
	}
	sol, err := c.OperatingPoint(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := sol[nodes["mid"]]; math.Abs(got-0.75) > 1e-9 {
		t.Errorf("divider mid = %v, want 0.75", got)
	}
}

func TestParseContinuationAndComments(t *testing.T) {
	src := `
* leading comment
R1 a
+ b
+ 2k
`
	d, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Cards) != 1 || d.Cards[0].Value != 2000 {
		t.Fatalf("continuation parse wrong: %+v", d.Cards)
	}
	if _, err := Parse(strings.NewReader("+ orphan")); err == nil {
		t.Error("orphan continuation accepted")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"R1 a b",              // missing value
		"R1 a b 1k extra",     // extra field
		"X1 a b 1k",           // unknown element
		"M1 d g nfet",         // missing node
		"M1 d g s badmod",     // unknown model
		"M1 d g s nfet oops",  // malformed param
		"V1 a b PULSE(1 2 3)", // short pulse
		"C1 a b zz",           // bad value
	}
	for _, line := range bad {
		if _, err := Parse(strings.NewReader(line)); err == nil {
			t.Errorf("accepted %q", line)
		}
	}
}

func TestParsePulseSource(t *testing.T) {
	src := "I1 0 out PULSE(0 1m 1p 0.1p 0.1p 2p)"
	d, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	card := d.Cards[0]
	if card.Pulse == nil {
		t.Fatal("pulse not parsed")
	}
	p := card.Pulse
	if p.V2 != 1e-3 || p.Delay != 1e-12 || p.Width != 2e-12 {
		t.Fatalf("pulse = %+v", p)
	}
	w := p.Waveform()
	if w.Value(0) != 0 {
		t.Error("pulse should be at V1 before delay")
	}
	if got := w.Value(2e-12); math.Abs(got-1e-3) > 1e-12 {
		t.Errorf("pulse plateau = %v", got)
	}
	if w.Value(5e-12) != 0 {
		t.Error("pulse should fall back to V1")
	}
}

func TestBuildRejectsBadValues(t *testing.T) {
	for _, src := range []string{"R1 a b -5", "C1 a b 0"} {
		d, err := Parse(strings.NewReader(src))
		if err != nil {
			// R1 a b -5 parses; build must reject. C1 a b 0 too.
			t.Fatalf("parse of %q failed: %v", src, err)
		}
		if _, _, err := d.Build(finfet.Default14nmSOI()); err == nil {
			t.Errorf("build accepted %q", src)
		}
	}
}

func TestSixTCellDeckIsBistable(t *testing.T) {
	tech := finfet.Default14nmSOI()
	d := SixTCellDeck(tech, 0.8)
	c, nodes, err := d.Build(tech)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := c.OperatingPoint(map[circuit.Node]float64{
		nodes["q"]:   0,
		nodes["qb"]:  0.8,
		nodes["vdd"]: 0.8,
		nodes["bl"]:  0.8,
		nodes["blb"]: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sol[nodes["q"]] > 0.05 || sol[nodes["qb"]] < 0.75 {
		t.Errorf("deck-built cell not holding: q=%v qb=%v", sol[nodes["q"]], sol[nodes["qb"]])
	}
	// And the opposite state as well (bistability via nodeset).
	sol2, err := c.OperatingPoint(map[circuit.Node]float64{
		nodes["q"]:   0.8,
		nodes["qb"]:  0,
		nodes["vdd"]: 0.8,
		nodes["bl"]:  0.8,
		nodes["blb"]: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sol2[nodes["q"]] < 0.75 || sol2[nodes["qb"]] > 0.05 {
		t.Errorf("mirror state not stable: q=%v qb=%v", sol2[nodes["q"]], sol2[nodes["qb"]])
	}
}

func TestDeckWriteParseRoundTrip(t *testing.T) {
	tech := finfet.Default14nmSOI()
	d := SixTCellDeck(tech, 0.8)
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatalf("re-parse failed: %v\ndeck:\n%s", err, buf.String())
	}
	if got.Title != d.Title {
		t.Errorf("title round trip: %q vs %q", got.Title, d.Title)
	}
	if len(got.Cards) != len(d.Cards) {
		t.Fatalf("card count %d vs %d", len(got.Cards), len(d.Cards))
	}
	for i := range d.Cards {
		a, b := d.Cards[i], got.Cards[i]
		if a.Kind != b.Kind || !strings.EqualFold(a.Name, b.Name) || a.Model != b.Model {
			t.Errorf("card %d mismatch: %+v vs %+v", i, a, b)
		}
	}
	// The round-tripped deck still builds and holds state.
	c, nodes, err := got.Build(tech)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.OperatingPoint(map[circuit.Node]float64{nodes["qb"]: 0.8, nodes["vdd"]: 0.8}); err != nil {
		t.Fatal(err)
	}
}

func TestFinFETParams(t *testing.T) {
	src := "M1 d g s nfet nfins=2 dvth=30m"
	d, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	card := d.Cards[0]
	if card.Params["nfins"] != 2 {
		t.Errorf("nfins = %v", card.Params["nfins"])
	}
	if math.Abs(card.Params["dvth"]-0.03) > 1e-12 {
		t.Errorf("dvth = %v", card.Params["dvth"])
	}
	if _, _, err := d.Build(finfet.Default14nmSOI()); err != nil {
		t.Fatal(err)
	}
}
