// Package deck reads and writes a SPICE-netlist subset, bridging the
// library's circuit solver to the format cell designers actually exchange.
// A deck parsed here builds directly into a circuit.Circuit with the
// technology card supplying the FinFET model parameters — "bring your own
// cell" for the characterization flow.
//
// Supported cards (case-insensitive, '*' comments, '+' continuations):
//
//	Rname n1 n2 value            resistor
//	Cname n1 n2 value            capacitor
//	Vname n+ n- value            DC voltage source
//	Vname n+ n- PULSE(v1 v2 td tr tf pw)
//	Iname n+ n- value            DC current source (n+ → n-)
//	Iname n+ n- PULSE(i1 i2 td tr tf pw)
//	Mname d g s model [nfins=N] [dvth=V]   FinFET; model is nfet or pfet
//	.title ...   .end            structural cards (others are ignored)
//
// Values accept the usual engineering suffixes (f p n u m k meg g t).
package deck

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"finser/internal/circuit"
	"finser/internal/finfet"
)

// CardKind identifies the element type of a card.
type CardKind int

const (
	// CardResistor is an R element.
	CardResistor CardKind = iota
	// CardCapacitor is a C element.
	CardCapacitor
	// CardVSource is a V element.
	CardVSource
	// CardISource is an I element.
	CardISource
	// CardFinFET is an M element.
	CardFinFET
)

// Pulse mirrors the SPICE PULSE() source specification (period omitted:
// single-shot pulses are what strike studies need).
type Pulse struct {
	V1, V2            float64 // initial and pulsed values
	Delay, Rise, Fall float64 // seconds
	Width             float64 // seconds
}

// Card is one parsed element line.
type Card struct {
	Kind   CardKind
	Name   string
	Nodes  []string
	Value  float64 // for R/C and DC V/I
	Pulse  *Pulse  // for PULSE V/I
	Model  string  // for M: "nfet" or "pfet"
	Params map[string]float64
}

// Deck is a parsed netlist.
type Deck struct {
	Title string
	Cards []Card
}

// ParseValue parses a SPICE number with engineering suffix.
func ParseValue(s string) (float64, error) {
	ls := strings.ToLower(strings.TrimSpace(s))
	if ls == "" {
		return 0, fmt.Errorf("deck: empty value")
	}
	mult := 1.0
	switch {
	case strings.HasSuffix(ls, "meg"):
		mult, ls = 1e6, strings.TrimSuffix(ls, "meg")
	case strings.HasSuffix(ls, "t"):
		mult, ls = 1e12, strings.TrimSuffix(ls, "t")
	case strings.HasSuffix(ls, "g"):
		mult, ls = 1e9, strings.TrimSuffix(ls, "g")
	case strings.HasSuffix(ls, "k"):
		mult, ls = 1e3, strings.TrimSuffix(ls, "k")
	case strings.HasSuffix(ls, "m"):
		mult, ls = 1e-3, strings.TrimSuffix(ls, "m")
	case strings.HasSuffix(ls, "u"):
		mult, ls = 1e-6, strings.TrimSuffix(ls, "u")
	case strings.HasSuffix(ls, "n"):
		mult, ls = 1e-9, strings.TrimSuffix(ls, "n")
	case strings.HasSuffix(ls, "p"):
		mult, ls = 1e-12, strings.TrimSuffix(ls, "p")
	case strings.HasSuffix(ls, "f"):
		mult, ls = 1e-15, strings.TrimSuffix(ls, "f")
	}
	v, err := strconv.ParseFloat(ls, 64)
	if err != nil {
		return 0, fmt.Errorf("deck: bad value %q", s)
	}
	// Reject non-finite values explicitly: the suffix trim can expose "nan"
	// or "inf" to ParseFloat (e.g. "nank", "infu"), and a NaN element value
	// would sail through every downstream sign check into the solver.
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("deck: non-finite value %q", s)
	}
	return v * mult, nil
}

// FormatValue renders a value with the closest engineering suffix.
func FormatValue(v float64) string {
	abs := math.Abs(v)
	type unit struct {
		scale float64
		sfx   string
	}
	units := []unit{
		{1e12, "t"}, {1e9, "g"}, {1e6, "meg"}, {1e3, "k"},
		{1, ""}, {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"},
	}
	if abs == 0 {
		return "0"
	}
	for _, u := range units {
		if abs >= u.scale {
			return trimFloat(v/u.scale) + u.sfx
		}
	}
	// Below a femto-unit: express in femto anyway (common for charge).
	return trimFloat(v/1e-15) + "f"
}

func trimFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// ParseError reports a malformed netlist card — the typed error the deck
// trust boundary surfaces so callers can point users at the offending line.
type ParseError struct {
	// Line is the 1-based physical line the card started on.
	Line int
	// Card is the logical card text (continuations folded).
	Card string
	// Err is the underlying cause.
	Err error
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("deck: line %d (%q): %v", e.Line, e.Card, e.Err)
}

func (e *ParseError) Unwrap() error { return e.Err }

// Parse reads a deck. Continuation lines ('+') are folded; '*' comments and
// unsupported dot-cards are skipped; .end stops parsing. A malformed card
// fails with a *ParseError naming the line.
func Parse(r io.Reader) (*Deck, error) {
	sc := bufio.NewScanner(r)
	type logicalLine struct {
		text string
		line int
	}
	var logical []logicalLine
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), " \t\r")
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "*") {
			continue
		}
		if strings.HasPrefix(trimmed, "+") {
			if len(logical) == 0 {
				return nil, &ParseError{Line: lineNo, Card: trimmed,
					Err: errors.New("continuation with no previous card")}
			}
			logical[len(logical)-1].text += " " + strings.TrimPrefix(trimmed, "+")
			continue
		}
		logical = append(logical, logicalLine{text: trimmed, line: lineNo})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("deck: read: %w", err)
	}

	d := &Deck{}
	for _, ll := range logical {
		lower := strings.ToLower(ll.text)
		switch {
		case strings.HasPrefix(lower, ".title"):
			d.Title = strings.TrimSpace(ll.text[len(".title"):])
			continue
		case strings.HasPrefix(lower, ".end"):
			return d, nil
		case strings.HasPrefix(lower, "."):
			continue // other dot-cards ignored
		}
		card, err := parseCard(ll.text)
		if err != nil {
			return nil, &ParseError{Line: ll.line, Card: ll.text, Err: err}
		}
		d.Cards = append(d.Cards, card)
	}
	return d, nil
}

func parseCard(line string) (Card, error) {
	fields := tokenize(line)
	if len(fields) < 3 {
		return Card{}, fmt.Errorf("short card %q", line)
	}
	name := fields[0]
	switch strings.ToLower(name[:1]) {
	case "r", "c":
		if len(fields) != 4 {
			return Card{}, fmt.Errorf("%s needs 2 nodes and a value", name)
		}
		v, err := ParseValue(fields[3])
		if err != nil {
			return Card{}, fmt.Errorf("%s: %w", name, err)
		}
		kind := CardResistor
		if strings.EqualFold(name[:1], "c") {
			kind = CardCapacitor
		}
		return Card{Kind: kind, Name: name, Nodes: fields[1:3], Value: v}, nil
	case "v", "i":
		kind := CardVSource
		if strings.EqualFold(name[:1], "i") {
			kind = CardISource
		}
		if len(fields) < 4 {
			return Card{}, fmt.Errorf("%s needs 2 nodes and a value", name)
		}
		rest := strings.Join(fields[3:], " ")
		if strings.HasPrefix(strings.ToLower(rest), "pulse") {
			p, err := parsePulse(rest)
			if err != nil {
				return Card{}, fmt.Errorf("%s: %w", name, err)
			}
			return Card{Kind: kind, Name: name, Nodes: fields[1:3], Pulse: &p}, nil
		}
		if len(fields) != 4 {
			return Card{}, fmt.Errorf("%s has trailing fields", name)
		}
		v, err := ParseValue(fields[3])
		if err != nil {
			return Card{}, fmt.Errorf("%s: %w", name, err)
		}
		return Card{Kind: kind, Name: name, Nodes: fields[1:3], Value: v}, nil
	case "m":
		if len(fields) < 5 {
			return Card{}, fmt.Errorf("%s needs d g s and a model", name)
		}
		card := Card{Kind: CardFinFET, Name: name, Nodes: fields[1:4],
			Model: strings.ToLower(fields[4]), Params: map[string]float64{}}
		if card.Model != "nfet" && card.Model != "pfet" {
			return Card{}, fmt.Errorf("%s: unknown model %q (want nfet|pfet)", name, fields[4])
		}
		for _, f := range fields[5:] {
			k, v, ok := strings.Cut(f, "=")
			if !ok {
				return Card{}, fmt.Errorf("%s: bad parameter %q", name, f)
			}
			val, err := ParseValue(v)
			if err != nil {
				return Card{}, fmt.Errorf("%s: %w", name, err)
			}
			card.Params[strings.ToLower(k)] = val
		}
		return card, nil
	default:
		return Card{}, fmt.Errorf("unsupported element %q", name)
	}
}

// tokenize splits on whitespace but keeps PULSE(...) groups intact.
func tokenize(line string) []string {
	line = strings.ReplaceAll(line, "(", " ( ")
	line = strings.ReplaceAll(line, ")", " ) ")
	raw := strings.Fields(line)
	// Re-join pulse groups: PULSE ( a b c ) → "pulse(a b c)".
	var out []string
	for i := 0; i < len(raw); i++ {
		if i+1 < len(raw) && raw[i+1] == "(" {
			j := i + 2
			var args []string
			for j < len(raw) && raw[j] != ")" {
				args = append(args, raw[j])
				j++
			}
			out = append(out, raw[i]+"("+strings.Join(args, " ")+")")
			i = j
			continue
		}
		out = append(out, raw[i])
	}
	return out
}

func parsePulse(s string) (Pulse, error) {
	open := strings.Index(s, "(")
	close := strings.LastIndex(s, ")")
	if open < 0 || close < open {
		return Pulse{}, fmt.Errorf("malformed PULSE %q", s)
	}
	args := strings.Fields(s[open+1 : close])
	if len(args) != 6 {
		return Pulse{}, fmt.Errorf("PULSE needs 6 arguments (v1 v2 td tr tf pw), got %d", len(args))
	}
	vals := make([]float64, 6)
	for i, a := range args {
		v, err := ParseValue(a)
		if err != nil {
			return Pulse{}, err
		}
		vals[i] = v
	}
	for _, tv := range vals[2:] {
		if tv < 0 {
			return Pulse{}, fmt.Errorf("PULSE timing parameters must be non-negative, got %g", tv)
		}
	}
	return Pulse{V1: vals[0], V2: vals[1], Delay: vals[2], Rise: vals[3], Fall: vals[4], Width: vals[5]}, nil
}

// Waveform converts the pulse to a PWL source waveform.
func (p Pulse) Waveform() circuit.Waveform {
	t0 := p.Delay
	return circuit.PWL{
		Times:  []float64{t0, t0 + p.Rise, t0 + p.Rise + p.Width, t0 + p.Rise + p.Width + p.Fall},
		Values: []float64{p.V1, p.V2, p.V2, p.V1},
	}
}

// Build instantiates the deck on a fresh circuit. The technology card
// supplies FinFET model parameters; M-card params nfins and dvth override
// fin count and shift the threshold. It returns the circuit and the
// name → node mapping.
func (d *Deck) Build(tech finfet.Technology) (*circuit.Circuit, map[string]circuit.Node, error) {
	c := circuit.New()
	nodes := map[string]circuit.Node{}
	get := func(name string) circuit.Node {
		n := c.Node(strings.ToLower(name))
		nodes[strings.ToLower(name)] = n
		return n
	}
	for _, card := range d.Cards {
		switch card.Kind {
		case CardResistor:
			if card.Value <= 0 {
				return nil, nil, fmt.Errorf("deck: %s: non-positive resistance", card.Name)
			}
			c.AddResistor(card.Name, get(card.Nodes[0]), get(card.Nodes[1]), card.Value)
		case CardCapacitor:
			if card.Value <= 0 {
				return nil, nil, fmt.Errorf("deck: %s: non-positive capacitance", card.Name)
			}
			c.AddCapacitor(card.Name, get(card.Nodes[0]), get(card.Nodes[1]), card.Value)
		case CardVSource:
			w := waveformFor(card)
			c.AddVSource(card.Name, get(card.Nodes[0]), get(card.Nodes[1]), w)
		case CardISource:
			w := waveformFor(card)
			c.AddISource(card.Name, get(card.Nodes[0]), get(card.Nodes[1]), w)
		case CardFinFET:
			pol := finfet.NChannel
			if card.Model == "pfet" {
				pol = finfet.PChannel
			}
			nfins := 1
			if v, ok := card.Params["nfins"]; ok {
				if v != math.Trunc(v) || v < 1 {
					return nil, nil, fmt.Errorf("deck: %s: nfins must be a positive integer, got %g", card.Name, v)
				}
				nfins = int(v)
			}
			p := finfet.ParamsFor(tech, pol, nfins)
			if dv, ok := card.Params["dvth"]; ok {
				p.Vth += dv
			}
			c.AddDevice(finfet.NewTransistor(card.Name, p,
				get(card.Nodes[0]), get(card.Nodes[1]), get(card.Nodes[2])))
		default:
			return nil, nil, fmt.Errorf("deck: unknown card kind %d", card.Kind)
		}
	}
	return c, nodes, nil
}

func waveformFor(card Card) circuit.Waveform {
	if card.Pulse != nil {
		return card.Pulse.Waveform()
	}
	return circuit.DC(card.Value)
}

// Write serializes the deck in canonical form.
func (d *Deck) Write(w io.Writer) error {
	var sb strings.Builder
	if d.Title != "" {
		fmt.Fprintf(&sb, ".title %s\n", d.Title)
	}
	for _, card := range d.Cards {
		sb.WriteString(card.Name)
		for _, n := range card.Nodes {
			sb.WriteString(" " + n)
		}
		switch {
		case card.Kind == CardFinFET:
			sb.WriteString(" " + card.Model)
			keys := make([]string, 0, len(card.Params))
			for k := range card.Params {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&sb, " %s=%s", k, FormatValue(card.Params[k]))
			}
		case card.Pulse != nil:
			p := card.Pulse
			fmt.Fprintf(&sb, " PULSE(%s %s %s %s %s %s)",
				FormatValue(p.V1), FormatValue(p.V2), FormatValue(p.Delay),
				FormatValue(p.Rise), FormatValue(p.Fall), FormatValue(p.Width))
		default:
			sb.WriteString(" " + FormatValue(card.Value))
		}
		sb.WriteString("\n")
	}
	sb.WriteString(".end\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// SixTCellDeck emits the library's hold-mode 6T cell as a deck — the
// writer-side counterpart of Parse, and a template users can edit.
func SixTCellDeck(tech finfet.Technology, vdd float64) *Deck {
	v := FormatValue(vdd)
	return &Deck{
		Title: fmt.Sprintf("6T SRAM cell, %s, vdd=%s, hold mode", tech.Name, v),
		Cards: []Card{
			{Kind: CardVSource, Name: "VDD", Nodes: []string{"vdd", "0"}, Value: vdd},
			{Kind: CardVSource, Name: "VBL", Nodes: []string{"bl", "0"}, Value: vdd},
			{Kind: CardVSource, Name: "VBLB", Nodes: []string{"blb", "0"}, Value: vdd},
			{Kind: CardVSource, Name: "VWL", Nodes: []string{"wl", "0"}, Value: 0},
			{Kind: CardFinFET, Name: "MPUL", Nodes: []string{"q", "qb", "vdd"}, Model: "pfet", Params: map[string]float64{}},
			{Kind: CardFinFET, Name: "MPDL", Nodes: []string{"q", "qb", "0"}, Model: "nfet", Params: map[string]float64{}},
			{Kind: CardFinFET, Name: "MPUR", Nodes: []string{"qb", "q", "vdd"}, Model: "pfet", Params: map[string]float64{}},
			{Kind: CardFinFET, Name: "MPDR", Nodes: []string{"qb", "q", "0"}, Model: "nfet", Params: map[string]float64{}},
			{Kind: CardFinFET, Name: "MPGL", Nodes: []string{"bl", "wl", "q"}, Model: "nfet", Params: map[string]float64{}},
			{Kind: CardFinFET, Name: "MPGR", Nodes: []string{"blb", "wl", "qb"}, Model: "nfet", Params: map[string]float64{}},
			{Kind: CardCapacitor, Name: "CQ", Nodes: []string{"q", "0"}, Value: tech.NodeCapF},
			{Kind: CardCapacitor, Name: "CQB", Nodes: []string{"qb", "0"}, Value: tech.NodeCapF},
		},
	}
}
