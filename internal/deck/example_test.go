package deck_test

import (
	"fmt"
	"strings"

	"finser/internal/deck"
	"finser/internal/finfet"
)

func ExampleParse() {
	src := `
* inverter driving a load
.title inverter
VDD vdd 0 0.8
VIN in  0 0
MP  out in vdd pfet
MN  out in 0   nfet
CL  out 0  0.2f
.end
`
	d, err := deck.Parse(strings.NewReader(src))
	if err != nil {
		panic(err)
	}
	c, nodes, err := d.Build(finfet.Default14nmSOI())
	if err != nil {
		panic(err)
	}
	sol, err := c.OperatingPoint(nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("title: %s\n", d.Title)
	fmt.Printf("V(out) with input low: %.2f V\n", sol[nodes["out"]])
	// Output:
	// title: inverter
	// V(out) with input low: 0.80 V
}

func ExampleFormatValue() {
	fmt.Println(deck.FormatValue(1e3))
	fmt.Println(deck.FormatValue(1.2e-16))
	fmt.Println(deck.FormatValue(2.5e6))
	// Output:
	// 1k
	// 0.12f
	// 2.5meg
}
