package breaker

import (
	"context"
	"errors"
	"testing"
	"time"
)

var errBoom = errors.New("stage failure")

// clock is a hand-advanced fake time source.
type clock struct{ t time.Time }

func (c *clock) now() time.Time          { return c.t }
func (c *clock) advance(d time.Duration) { c.t = c.t.Add(d) }

// fail and ok are canned ops.
func fail(context.Context) error { return errBoom }
func ok(context.Context) error   { return nil }

// TestClosedToOpenOnThreshold checks the circuit trips after exactly
// FailureThreshold consecutive countable failures, and that a success in
// between resets the count.
func TestClosedToOpenOnThreshold(t *testing.T) {
	ck := &clock{}
	var changes []string
	b := New(Config{
		Name:             "alpha",
		FailureThreshold: 3,
		Cooldown:         time.Second,
		Now:              ck.now,
		OnStateChange: func(name string, from, to State) {
			changes = append(changes, from.String()+"→"+to.String())
		},
	})

	// Two failures, then a success: count must reset.
	for i := 0; i < 2; i++ {
		if err := b.Do(context.Background(), fail); !errors.Is(err, errBoom) {
			t.Fatalf("closed circuit mangled the error: %v", err)
		}
	}
	if err := b.Do(context.Background(), ok); err != nil {
		t.Fatalf("success errored: %v", err)
	}
	if got := b.State(); got != Closed {
		t.Fatalf("state after reset = %v, want closed", got)
	}

	// Three consecutive failures trip it.
	for i := 0; i < 3; i++ {
		if got := b.State(); got != Closed {
			t.Fatalf("tripped early at failure %d: %v", i, got)
		}
		b.Do(context.Background(), fail)
	}
	if got := b.State(); got != Open {
		t.Fatalf("state after threshold = %v, want open", got)
	}
	if b.Trips() != 1 {
		t.Errorf("Trips = %d, want 1", b.Trips())
	}
	if len(changes) != 1 || changes[0] != "closed→open" {
		t.Errorf("observed transitions %v, want [closed→open]", changes)
	}
}

// TestOpenShedsWithoutRunning checks an open circuit rejects with ErrOpen
// and does not invoke the op.
func TestOpenShedsWithoutRunning(t *testing.T) {
	ck := &clock{}
	b := New(Config{FailureThreshold: 1, Cooldown: time.Minute, Now: ck.now})
	b.Do(context.Background(), fail)
	if got := b.State(); got != Open {
		t.Fatalf("state = %v, want open", got)
	}

	calls := 0
	err := b.Do(context.Background(), func(context.Context) error { calls++; return nil })
	if !errors.Is(err, ErrOpen) {
		t.Fatalf("open circuit error = %v, want ErrOpen", err)
	}
	if calls != 0 {
		t.Errorf("open circuit ran the op %d times", calls)
	}
	if b.Shed() != 1 {
		t.Errorf("Shed = %d, want 1", b.Shed())
	}
}

// TestHalfOpenProbeAndReclose checks the full recovery arc: cooldown
// elapses → half-open probe admitted → success re-closes.
func TestHalfOpenProbeAndReclose(t *testing.T) {
	ck := &clock{}
	b := New(Config{FailureThreshold: 1, Cooldown: time.Second, Now: ck.now})
	b.Do(context.Background(), fail)

	// Before the cooldown: still shedding.
	ck.advance(999 * time.Millisecond)
	if err := b.Do(context.Background(), ok); !errors.Is(err, ErrOpen) {
		t.Fatalf("pre-cooldown call not shed: %v", err)
	}

	// After the cooldown: the probe runs and re-closes the circuit.
	ck.advance(time.Millisecond)
	if got := b.State(); got != HalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", got)
	}
	if err := b.Do(context.Background(), ok); err != nil {
		t.Fatalf("probe errored: %v", err)
	}
	if got := b.State(); got != Closed {
		t.Fatalf("state after healthy probe = %v, want closed", got)
	}
	// A single later failure must not trip a freshly closed threshold-1…
	// it does here (threshold 1), but the failure count started from zero.
	if b.Trips() != 1 {
		t.Errorf("Trips = %d, want 1", b.Trips())
	}
}

// TestHalfOpenFailureReopens checks a failed probe re-trips the circuit
// and restarts the cooldown.
func TestHalfOpenFailureReopens(t *testing.T) {
	ck := &clock{}
	b := New(Config{FailureThreshold: 1, Cooldown: time.Second, Now: ck.now})
	b.Do(context.Background(), fail)
	ck.advance(time.Second)
	if err := b.Do(context.Background(), fail); !errors.Is(err, errBoom) {
		t.Fatalf("probe error mangled: %v", err)
	}
	if got := b.State(); got != Open {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	if b.Trips() != 2 {
		t.Errorf("Trips = %d, want 2", b.Trips())
	}
	// The cooldown restarted at the failed probe.
	ck.advance(999 * time.Millisecond)
	if err := b.Do(context.Background(), ok); !errors.Is(err, ErrOpen) {
		t.Errorf("cooldown did not restart after failed probe: %v", err)
	}
}

// TestHalfOpenMultiProbeClose checks HalfOpenSuccesses > 1 requires that
// many consecutive healthy probes.
func TestHalfOpenMultiProbeClose(t *testing.T) {
	ck := &clock{}
	b := New(Config{FailureThreshold: 1, Cooldown: time.Second, HalfOpenSuccesses: 2, Now: ck.now})
	b.Do(context.Background(), fail)
	ck.advance(time.Second)

	if err := b.Do(context.Background(), ok); err != nil {
		t.Fatalf("probe 1: %v", err)
	}
	if got := b.State(); got != HalfOpen {
		t.Fatalf("state after probe 1 = %v, want half-open", got)
	}
	if err := b.Do(context.Background(), ok); err != nil {
		t.Fatalf("probe 2: %v", err)
	}
	if got := b.State(); got != Closed {
		t.Fatalf("state after probe 2 = %v, want closed", got)
	}
}

// TestHalfOpenSingleProbeSlot checks that while a probe is in flight,
// concurrent calls are shed instead of stampeding the recovering class.
func TestHalfOpenSingleProbeSlot(t *testing.T) {
	ck := &clock{}
	b := New(Config{FailureThreshold: 1, Cooldown: time.Second, Now: ck.now})
	b.Do(context.Background(), fail)
	ck.advance(time.Second)

	probeEntered := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- b.Do(context.Background(), func(context.Context) error {
			close(probeEntered)
			<-release
			return nil
		})
	}()
	<-probeEntered
	if err := b.Do(context.Background(), ok); !errors.Is(err, ErrOpen) {
		t.Errorf("second call during probe = %v, want ErrOpen", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("probe: %v", err)
	}
	if got := b.State(); got != Closed {
		t.Errorf("state after probe = %v, want closed", got)
	}
}

// TestCancellationNotCountable checks context errors pass through without
// indicting the workload class.
func TestCancellationNotCountable(t *testing.T) {
	ck := &clock{}
	b := New(Config{FailureThreshold: 1, Cooldown: time.Second, Now: ck.now})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := b.Do(ctx, func(ctx context.Context) error { return ctx.Err() })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if got := b.State(); got != Closed {
		t.Errorf("cancellation tripped the circuit: %v", got)
	}
	if b.Trips() != 0 {
		t.Errorf("Trips = %d, want 0", b.Trips())
	}
}
