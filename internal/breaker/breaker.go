// Package breaker implements a closed → open → half-open circuit breaker
// for the serving layer's per-workload-class flow stages. When a class of
// work (say, proton FIT integration) fails repeatedly, the breaker opens
// and sheds further attempts of that class immediately — a fast ErrOpen
// instead of minutes of doomed Monte-Carlo burning a worker — while other
// classes keep flowing. After a cooldown the breaker lets a single probe
// through (half-open); a healthy probe closes the circuit, a failed one
// re-opens it for another cooldown.
package breaker

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrOpen is returned (wrapped, with the breaker's name) when the circuit
// is open and the call was shed without running. Match with errors.Is.
var ErrOpen = errors.New("breaker: open")

// State is the circuit state.
type State int

const (
	// Closed passes calls through, counting consecutive failures.
	Closed State = iota
	// Open sheds every call until the cooldown elapses.
	Open
	// HalfOpen admits limited probe calls to test recovery.
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Defaults applied by New when the corresponding Config field is zero.
const (
	DefaultFailureThreshold  = 5
	DefaultCooldown          = 30 * time.Second
	DefaultHalfOpenSuccesses = 1
)

// Config tunes one breaker. The zero value is usable: 5 consecutive
// failures open the circuit for 30 s, one healthy probe re-closes it.
type Config struct {
	// Name labels the breaker in errors and state-change callbacks.
	Name string
	// FailureThreshold is the consecutive countable failures that trip
	// the circuit from closed to open.
	FailureThreshold int
	// Cooldown is how long an open circuit sheds before admitting a
	// half-open probe.
	Cooldown time.Duration
	// HalfOpenSuccesses is the consecutive probe successes required to
	// re-close.
	HalfOpenSuccesses int
	// Countable decides whether an error indicts the workload class. Nil
	// selects the default: context cancellation and deadline expiry are
	// the caller's doing, not the class's, and do not count; everything
	// else does.
	Countable func(error) bool
	// OnStateChange, when non-nil, observes every transition.
	OnStateChange func(name string, from, to State)
	// Now supplies the clock (tests inject a fake; nil selects time.Now).
	Now func() time.Time
}

// Breaker is one circuit. Construct with New; the zero value is not
// usable.
type Breaker struct {
	cfg Config

	mu       sync.Mutex
	state    State
	failures int       // consecutive countable failures while closed
	probeOK  int       // consecutive probe successes while half-open
	probing  bool      // a half-open probe is in flight
	openedAt time.Time // when the circuit last tripped
	trips    int64
	shed     int64
}

// New builds a breaker, resolving zero Config fields to the defaults.
func New(cfg Config) *Breaker {
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = DefaultFailureThreshold
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = DefaultCooldown
	}
	if cfg.HalfOpenSuccesses <= 0 {
		cfg.HalfOpenSuccesses = DefaultHalfOpenSuccesses
	}
	if cfg.Countable == nil {
		cfg.Countable = countable
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Breaker{cfg: cfg}
}

// countable is the default failure classifier (see Config.Countable).
func countable(err error) bool {
	return err != nil &&
		!errors.Is(err, context.Canceled) &&
		!errors.Is(err, context.DeadlineExceeded)
}

// State returns the current state, promoting an expired open circuit to
// half-open (so observers see the state a call would actually meet).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpenLocked()
	return b.state
}

// Trips returns how many times the circuit has transitioned to open.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// Shed returns how many calls were rejected without running.
func (b *Breaker) Shed() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.shed
}

// maybeHalfOpenLocked moves an open circuit whose cooldown has elapsed to
// half-open. Callers hold b.mu.
func (b *Breaker) maybeHalfOpenLocked() {
	if b.state == Open && b.cfg.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
		b.transitionLocked(HalfOpen)
		b.probeOK = 0
		b.probing = false
	}
}

// transitionLocked moves to the target state, firing the observer.
// Callers hold b.mu.
func (b *Breaker) transitionLocked(to State) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	if to == Open {
		b.trips++
		b.openedAt = b.cfg.Now()
	}
	if cb := b.cfg.OnStateChange; cb != nil {
		// Fired under the lock: transitions stay strictly ordered for the
		// observer, which only bumps counters/gauges.
		cb(b.cfg.Name, from, to)
	}
}

// Do runs op through the circuit. An open circuit (or a half-open one
// whose probe slot is taken) sheds the call with ErrOpen wrapped in the
// breaker's name. Countable failures advance the trip machinery; context
// cancellation passes through without indicting the class.
func (b *Breaker) Do(ctx context.Context, op func(context.Context) error) error {
	b.mu.Lock()
	b.maybeHalfOpenLocked()
	switch b.state {
	case Open:
		b.shed++
		b.mu.Unlock()
		return fmt.Errorf("breaker %q: %w", b.cfg.Name, ErrOpen)
	case HalfOpen:
		if b.probing {
			b.shed++
			b.mu.Unlock()
			return fmt.Errorf("breaker %q: probe in flight: %w", b.cfg.Name, ErrOpen)
		}
		b.probing = true
	}
	b.mu.Unlock()

	err := op(ctx)

	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case HalfOpen:
		b.probing = false
		if err == nil {
			b.probeOK++
			if b.probeOK >= b.cfg.HalfOpenSuccesses {
				b.failures = 0
				b.transitionLocked(Closed)
			}
		} else if b.cfg.Countable(err) {
			b.transitionLocked(Open)
		}
	case Closed:
		if err == nil {
			b.failures = 0
		} else if b.cfg.Countable(err) {
			b.failures++
			if b.failures >= b.cfg.FailureThreshold {
				b.transitionLocked(Open)
			}
		}
	}
	return err
}
