package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWelfordAgainstDirect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 100}
	var w Welford
	var sum float64
	for _, x := range xs {
		w.Add(x)
		sum += x
	}
	mean := sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	wantVar := ss / float64(len(xs)-1)
	if math.Abs(w.Mean()-mean) > 1e-12 {
		t.Errorf("mean = %v, want %v", w.Mean(), mean)
	}
	if math.Abs(w.Variance()-wantVar) > 1e-9 {
		t.Errorf("variance = %v, want %v", w.Variance(), wantVar)
	}
	if w.N() != int64(len(xs)) {
		t.Errorf("N = %d", w.N())
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdErr() != 0 {
		t.Error("zero-value Welford should report zeros")
	}
}

func TestWelfordMerge(t *testing.T) {
	f := func(a, b []float64) bool {
		if len(a) == 0 && len(b) == 0 {
			return true
		}
		var wa, wb, wall Welford
		for _, x := range a {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			x = math.Mod(x, 1e6)
			wa.Add(x)
			wall.Add(x)
		}
		for _, x := range b {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			x = math.Mod(x, 1e6)
			wb.Add(x)
			wall.Add(x)
		}
		wa.Merge(wb)
		return wa.N() == wall.N() &&
			math.Abs(wa.Mean()-wall.Mean()) < 1e-6*(1+math.Abs(wall.Mean())) &&
			math.Abs(wa.Variance()-wall.Variance()) < 1e-6*(1+wall.Variance())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := WilsonInterval(0, 0)
	if lo != 0 || hi != 1 {
		t.Errorf("no-data interval = [%v, %v]", lo, hi)
	}
	lo, hi = WilsonInterval(50, 100)
	if lo >= 0.5 || hi <= 0.5 {
		t.Errorf("interval [%v,%v] should contain 0.5", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Errorf("interval too wide: [%v,%v]", lo, hi)
	}
	lo, hi = WilsonInterval(0, 1000)
	if lo != 0 {
		t.Errorf("zero successes should give lo=0, got %v", lo)
	}
	if hi < 1e-4 || hi > 0.02 {
		t.Errorf("rare-event upper bound implausible: %v", hi)
	}
	// Interval is within [0,1] for arbitrary inputs.
	f := func(k, n uint16) bool {
		kk, nn := int64(k%1000), int64(n%1000)+1
		if kk > nn {
			kk = nn
		}
		lo, hi := WilsonInterval(kk, nn)
		return lo >= 0 && hi <= 1 && lo <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 9.999, 10, 55} {
		h.Add(x)
	}
	if h.Underflow != 1 || h.Overflow != 2 {
		t.Errorf("under=%d over=%d", h.Underflow, h.Overflow)
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Errorf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 1 { // 2
		t.Errorf("bin1 = %d", h.Counts[1])
	}
	if h.Counts[4] != 1 { // 9.999
		t.Errorf("bin4 = %d", h.Counts[4])
	}
	if h.Total() != 7 {
		t.Errorf("total = %d", h.Total())
	}
	if c := h.BinCenter(0); c != 1 {
		t.Errorf("BinCenter(0) = %v", c)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("expected error for zero bins")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("expected error for lo==hi")
	}
}

func TestECDF(t *testing.T) {
	e, err := NewECDF([]float64{3, 1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		x    float64
		want float64
	}{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {9, 1},
	}
	for _, c := range cases {
		if got := e.Eval(c.x); got != c.want {
			t.Errorf("Eval(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if e.Min() != 1 || e.Max() != 3 || e.N() != 4 {
		t.Errorf("min/max/n = %v/%v/%v", e.Min(), e.Max(), e.N())
	}
}

func TestECDFEmpty(t *testing.T) {
	if _, err := NewECDF(nil); err == nil {
		t.Error("expected error for empty sample set")
	}
}

func TestECDFQuantile(t *testing.T) {
	e, _ := NewECDF([]float64{10, 20, 30, 40})
	if q := e.Quantile(0); q != 10 {
		t.Errorf("Quantile(0) = %v", q)
	}
	if q := e.Quantile(1); q != 40 {
		t.Errorf("Quantile(1) = %v", q)
	}
	if q := e.Quantile(0.5); q != 30 {
		t.Errorf("Quantile(0.5) = %v", q)
	}
}

// Property: ECDF is monotone non-decreasing and bounded in [0,1].
func TestECDFMonotone(t *testing.T) {
	f := func(samples []float64, probes []float64) bool {
		clean := samples[:0]
		for _, s := range samples {
			if !math.IsNaN(s) && !math.IsInf(s, 0) {
				clean = append(clean, s)
			}
		}
		if len(clean) == 0 {
			return true
		}
		e, err := NewECDF(clean)
		if err != nil {
			return false
		}
		prev := -1.0
		// Probe at sorted positions.
		for _, p := range probes {
			if math.IsNaN(p) {
				continue
			}
			v := e.Eval(p)
			if v < 0 || v > 1 {
				return false
			}
			_ = prev
		}
		// Explicit monotonicity on a grid.
		lo, hi := e.Min()-1, e.Max()+1
		prev = 0
		for i := 0; i <= 20; i++ {
			x := lo + (hi-lo)*float64(i)/20
			v := e.Eval(x)
			if v < prev-1e-15 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
