// Package stats provides the small statistical toolkit the Monte-Carlo
// layers rely on: numerically stable running moments (Welford), binomial
// proportion confidence intervals for POF estimates, histograms for energy
// and charge distributions, and empirical CDFs for critical-charge samples.
package stats

import (
	"errors"
	"math"
	"sort"
)

// Welford accumulates a running mean and variance in a numerically stable
// way. The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean (0 with no observations).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the unbiased sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// StdErr returns the standard error of the mean.
func (w *Welford) StdErr() float64 {
	if w.n == 0 {
		return 0
	}
	return w.StdDev() / math.Sqrt(float64(w.n))
}

// WelfordFromMoments reconstructs an accumulator from externally computed
// moments: n observations with sample mean and m2 = Σ(x−mean)², i.e.
// unbiased variance × (n−1). It is the inverse of (N, Mean, Variance) and
// lets a batch summary — e.g. a POF point's (strikes, mean, stderr) — merge
// into a streaming estimator without replaying the raw observations.
// Non-positive n yields the zero accumulator; a (numerically) negative m2
// is clamped to 0.
func WelfordFromMoments(n int64, mean, m2 float64) Welford {
	if n <= 0 {
		return Welford{}
	}
	if m2 < 0 {
		m2 = 0
	}
	return Welford{n: n, mean: mean, m2: m2}
}

// Merge combines another accumulator into w (parallel reduction).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	w.n = n
}

// WilsonInterval returns the Wilson score interval for a binomial proportion
// with k successes out of n trials at ~95% confidence (z = 1.96). It is the
// recommended interval for POF estimates, which are frequently near 0.
func WilsonInterval(k, n int64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	const z = 1.959963984540054
	p := float64(k) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	half := z * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf)) / denom
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Histogram is a fixed-bin histogram over [Lo, Hi). Values outside the range
// are counted in the under/overflow tallies.
type Histogram struct {
	Lo, Hi    float64
	Counts    []int64
	Underflow int64
	Overflow  int64
	total     int64
}

// NewHistogram constructs a histogram with the given number of bins.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, errors.New("stats: histogram needs at least one bin")
	}
	if !(lo < hi) {
		return nil, errors.New("stats: histogram needs lo < hi")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, bins)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.Underflow++
	case x >= h.Hi:
		h.Overflow++
	default:
		i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i == len(h.Counts) { // guard against FP edge
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of observations, including under/overflow.
func (h *Histogram) Total() int64 { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// ECDF is an empirical cumulative distribution function built from samples.
// Evaluation is O(log n). Used for POF(charge) lookups from per-sample
// critical-charge sets.
type ECDF struct {
	sorted []float64
}

// NewECDF copies and sorts the samples. It returns an error for an empty set.
func NewECDF(samples []float64) (*ECDF, error) {
	if len(samples) == 0 {
		return nil, errors.New("stats: ECDF needs at least one sample")
	}
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &ECDF{sorted: s}, nil
}

// Eval returns P(X <= x), a step function in [0, 1].
func (e *ECDF) Eval(x float64) float64 {
	i := sort.SearchFloat64s(e.sorted, x)
	// Move past duplicates equal to x (SearchFloat64s finds the first >= x).
	for i < len(e.sorted) && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-th empirical quantile for q in [0, 1].
func (e *ECDF) Quantile(q float64) float64 {
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	i := int(q * float64(len(e.sorted)))
	if i >= len(e.sorted) {
		i = len(e.sorted) - 1
	}
	return e.sorted[i]
}

// Min returns the smallest sample.
func (e *ECDF) Min() float64 { return e.sorted[0] }

// Max returns the largest sample.
func (e *ECDF) Max() float64 { return e.sorted[len(e.sorted)-1] }

// N returns the sample count.
func (e *ECDF) N() int { return len(e.sorted) }
