// Package spectra models the particle environments of the paper's Fig. 2:
// the sea-level proton differential spectrum (atmospheric, Hagmann-style)
// and the package alpha emission spectrum (uranium/thorium decay chains)
// normalized to the paper's 0.001 α/(h·cm²) emission rate. It also provides
// the log-energy discretization and per-bin integral fluxes consumed by the
// FIT integral (paper Eq. 8).
package spectra

import (
	"errors"
	"fmt"
	"math"

	"finser/internal/lut"
	"finser/internal/phys"
)

// Spectrum describes a particle flux environment.
type Spectrum interface {
	// Species returns the particle species of this environment.
	Species() phys.Species
	// DifferentialFlux returns the omnidirectional through-plane flux
	// density at the given energy, in particles/(cm²·s·MeV).
	DifferentialFlux(eMeV float64) float64
	// Domain returns the energy range [lo, hi] in MeV over which the
	// spectrum is defined.
	Domain() (lo, hi float64)
}

// ---------------------------------------------------------------------------
// Sea-level protons.
// ---------------------------------------------------------------------------

// Anchors for the sea-level differential proton intensity in
// 1/(m²·s·sr·MeV), read off the paper's Fig. 2a (Hagmann et al. cascade
// simulations): ~1e-2 at 1 MeV falling to ~1e-14 at 1e7 MeV.
// The sub-MeV extension matters: direct ionization by low-energy protons is
// the paper's proton upset mechanism (its refs [20–22]; its Fig. 8 sweeps
// proton energy down to 0.1 MeV). The spectrum seen by the fins rolls off
// below ~1 MeV because the softest protons range out in the BEOL/package
// stack before reaching the device layer (a 0.3 MeV proton has a ~3 µm
// silicon range); the anchors below 1 MeV model that attenuated shoulder.
var protonIntensityAnchors = struct{ e, j []float64 }{
	e: []float64{0.1, 0.3, 1, 3, 10, 30, 100, 300, 1e3, 3e3, 1e4, 1e5, 1e6, 1e7},
	j: []float64{3e-3, 9e-3, 1e-2, 6e-3, 2.5e-3, 1e-3, 3e-4, 8e-5, 1.5e-5, 1.5e-6,
		8e-8, 2e-10, 1e-12, 1e-14},
}

// ProtonSeaLevel is the ground-level proton environment.
type ProtonSeaLevel struct {
	table *lut.Table1D
	scale float64
}

// NewProtonSeaLevel builds the sea-level proton spectrum. scale multiplies
// the nominal flux (1 for New York sea level); it allows altitude or
// shielding studies.
func NewProtonSeaLevel(scale float64) (*ProtonSeaLevel, error) {
	if scale <= 0 {
		return nil, errors.New("spectra: scale must be positive")
	}
	t, err := lut.NewTable1D(protonIntensityAnchors.e, protonIntensityAnchors.j, lut.Log, lut.Log)
	if err != nil {
		return nil, fmt.Errorf("spectra: proton anchors: %w", err)
	}
	return &ProtonSeaLevel{table: t, scale: scale}, nil
}

// Species implements Spectrum.
func (*ProtonSeaLevel) Species() phys.Species { return phys.Proton }

// Domain implements Spectrum. The flow cares about the directly ionizing
// low-energy part; the table extends to 1e7 MeV but the FIT integral is
// dominated far below that.
func (*ProtonSeaLevel) Domain() (lo, hi float64) { return 0.1, 1e7 }

// DifferentialFlux implements Spectrum, converting the isotropic intensity
// J [1/(m²·s·sr·MeV)] to a through-plane flux π·J [1/(m²·s·MeV)] and then
// to per-cm².
func (p *ProtonSeaLevel) DifferentialFlux(eMeV float64) float64 {
	lo, hi := p.Domain()
	if eMeV < lo || eMeV > hi {
		return 0
	}
	j := p.table.Eval(eMeV)
	return p.scale * math.Pi * j * 1e-4
}

// ---------------------------------------------------------------------------
// Package alpha emission.
// ---------------------------------------------------------------------------

// alphaLine is one decay-chain emission line.
type alphaLine struct {
	energyMeV float64
	weight    float64
	sigmaMeV  float64
}

// Dominant ²³⁸U/²³²Th chain alpha lines, broadened by emission-depth energy
// loss in the package material (Sai-Halasz-style spectrum shape).
var alphaLines = []alphaLine{
	{4.20, 1.0, 0.7},
	{4.77, 1.0, 0.7},
	{5.49, 1.2, 0.7},
	{6.00, 1.0, 0.7},
	{7.69, 0.8, 0.6},
	{8.78, 0.5, 0.5},
}

// AlphaEmission is the package-material alpha environment.
type AlphaEmission struct {
	// ratePerCm2Hour is the total emission rate in α/(cm²·h).
	ratePerCm2Hour float64
	norm           float64 // normalizes the shape integral to 1 over the domain
}

// DefaultAlphaRate is the paper's assumed emission rate in α/(cm²·h).
const DefaultAlphaRate = 0.001

// NewAlphaEmission builds the alpha spectrum for a given total emission
// rate in α/(cm²·h). Use DefaultAlphaRate for the paper's assumption.
func NewAlphaEmission(ratePerCm2Hour float64) (*AlphaEmission, error) {
	if ratePerCm2Hour <= 0 {
		return nil, errors.New("spectra: alpha rate must be positive")
	}
	a := &AlphaEmission{ratePerCm2Hour: ratePerCm2Hour, norm: 1}
	// Normalize the shape numerically so the integral over the domain is 1.
	lo, hi := a.Domain()
	const steps = 2000
	sum := 0.0
	h := (hi - lo) / steps
	for i := 0; i <= steps; i++ {
		w := 1.0
		if i == 0 || i == steps {
			w = 0.5
		}
		sum += w * a.shape(lo+float64(i)*h)
	}
	a.norm = 1 / (sum * h)
	return a, nil
}

func (a *AlphaEmission) shape(eMeV float64) float64 {
	s := 0.0
	for _, l := range alphaLines {
		d := (eMeV - l.energyMeV) / l.sigmaMeV
		s += l.weight * math.Exp(-0.5*d*d)
	}
	return s
}

// Species implements Spectrum.
func (*AlphaEmission) Species() phys.Species { return phys.Alpha }

// Domain implements Spectrum: alpha emission below 10 MeV (paper §3.1).
func (*AlphaEmission) Domain() (lo, hi float64) { return 0.5, 10 }

// DifferentialFlux implements Spectrum in particles/(cm²·s·MeV).
func (a *AlphaEmission) DifferentialFlux(eMeV float64) float64 {
	lo, hi := a.Domain()
	if eMeV < lo || eMeV > hi {
		return 0
	}
	perHour := a.ratePerCm2Hour * a.norm * a.shape(eMeV)
	return perHour / 3600
}

// ---------------------------------------------------------------------------
// Discretization for the FIT integral.
// ---------------------------------------------------------------------------

// EnergyBin is one slice of a discretized spectrum.
type EnergyBin struct {
	Lo, Hi float64 // bin edges in MeV
	Rep    float64 // representative energy (geometric mean), the paper's "E"
	// IntFlux is the integral flux over the bin in particles/(cm²·s) —
	// the paper's IntFlux(E).
	IntFlux float64
}

// IntegralFlux integrates the spectrum's differential flux over [lo, hi]
// (MeV) with a trapezoid rule on a log grid, returning particles/(cm²·s).
func IntegralFlux(s Spectrum, lo, hi float64) float64 {
	if hi <= lo || lo <= 0 {
		return 0
	}
	const steps = 200
	lnLo, lnHi := math.Log(lo), math.Log(hi)
	h := (lnHi - lnLo) / steps
	f := func(lnE float64) float64 {
		e := math.Exp(lnE)
		return e * s.DifferentialFlux(e) // dE = E dlnE
	}
	sum := 0.5 * (f(lnLo) + f(lnHi))
	for i := 1; i < steps; i++ {
		sum += f(lnLo + float64(i)*h)
	}
	return sum * h
}

// Bins discretizes the spectrum into n log-spaced energy bins over [lo, hi]
// and computes each bin's integral flux. This is the "discretize the energy
// spectrum of the particle to different ranges" step before Eq. 8.
func Bins(s Spectrum, lo, hi float64, n int) ([]EnergyBin, error) {
	if n <= 0 {
		return nil, errors.New("spectra: need at least one bin")
	}
	if lo <= 0 || hi <= lo {
		return nil, errors.New("spectra: need 0 < lo < hi")
	}
	edges := lut.LogSpace(lo, hi, n+1)
	bins := make([]EnergyBin, n)
	for i := range bins {
		b := EnergyBin{
			Lo:  edges[i],
			Hi:  edges[i+1],
			Rep: math.Sqrt(edges[i] * edges[i+1]),
		}
		b.IntFlux = IntegralFlux(s, b.Lo, b.Hi)
		bins[i] = b
	}
	return bins, nil
}

// TotalFluxPerHour returns the spectrum's integral flux over its full
// domain in particles/(cm²·h) — handy for sanity checks against the
// paper's stated emission rates.
func TotalFluxPerHour(s Spectrum) float64 {
	lo, hi := s.Domain()
	return IntegralFlux(s, lo, hi) * 3600
}

// ---------------------------------------------------------------------------
// Altitude scaling.
// ---------------------------------------------------------------------------

// AltitudeScale returns the multiplier to apply to sea-level atmospheric
// particle fluxes (neutrons, protons) at the given altitude in metres,
// using the standard exponential attenuation in atmospheric depth:
// F(A) = F(A₀)·exp((A₀−A)/L) with A₀ = 1033 g/cm² at sea level and an
// attenuation length L = 131.3 g/cm² (JEDEC JESD89-class model). The
// barometric formula supplies A(h) with an 8.4 km scale height. Sea level
// returns exactly 1; Denver (~1600 m) returns ≈ 3–4; avionics altitudes
// return a few hundred. Package-alpha emission does not scale with
// altitude.
func AltitudeScale(altitudeMeters float64) float64 {
	const (
		seaLevelDepth = 1033.0 // g/cm²
		attenuation   = 131.3  // g/cm²
		scaleHeight   = 8400.0 // m
	)
	if altitudeMeters <= 0 {
		return 1
	}
	depth := seaLevelDepth * math.Exp(-altitudeMeters/scaleHeight)
	return math.Exp((seaLevelDepth - depth) / attenuation)
}
