package spectra

import (
	"math"
	"testing"

	"finser/internal/phys"
)

func TestProtonSpectrumBasics(t *testing.T) {
	p, err := NewProtonSeaLevel(1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Species() != phys.Proton {
		t.Error("species wrong")
	}
	if _, err := NewProtonSeaLevel(0); err == nil {
		t.Error("zero scale accepted")
	}
	// Outside the domain the flux is zero.
	if p.DifferentialFlux(0.05) != 0 || p.DifferentialFlux(2e7) != 0 {
		t.Error("flux outside domain should be 0")
	}
	// Monotone decreasing above 1 MeV (Fig. 2a shape)...
	prev := math.Inf(1)
	for e := 1.0; e <= 1e7; e *= 3 {
		f := p.DifferentialFlux(e)
		if f <= 0 || f >= prev {
			t.Fatalf("proton flux not positive-decreasing at %v MeV: %v", e, f)
		}
		prev = f
	}
	// ...with an attenuated sub-MeV shoulder (BEOL/package filtering).
	if p.DifferentialFlux(0.1) >= p.DifferentialFlux(1) {
		t.Error("sub-MeV proton flux should be attenuated below the 1 MeV value")
	}
	if p.DifferentialFlux(0.1) <= 0 {
		t.Error("sub-MeV proton flux should remain positive")
	}
	// Magnitude: at 1 MeV, J = 1e-2 /(m²·s·sr·MeV) → π·1e-6 /(cm²·s·MeV).
	want := math.Pi * 1e-6
	if got := p.DifferentialFlux(1); math.Abs(got-want)/want > 1e-9 {
		t.Errorf("flux(1 MeV) = %v, want %v", got, want)
	}
}

func TestProtonScale(t *testing.T) {
	p1, _ := NewProtonSeaLevel(1)
	p3, _ := NewProtonSeaLevel(3)
	if r := p3.DifferentialFlux(10) / p1.DifferentialFlux(10); math.Abs(r-3) > 1e-9 {
		t.Errorf("scale ratio = %v, want 3", r)
	}
}

func TestAlphaSpectrumNormalization(t *testing.T) {
	a, err := NewAlphaEmission(DefaultAlphaRate)
	if err != nil {
		t.Fatal(err)
	}
	if a.Species() != phys.Alpha {
		t.Error("species wrong")
	}
	// The full-domain integral must equal the paper's emission rate.
	got := TotalFluxPerHour(a)
	if math.Abs(got-DefaultAlphaRate)/DefaultAlphaRate > 0.01 {
		t.Errorf("total alpha flux = %v /(cm²·h), want %v", got, DefaultAlphaRate)
	}
}

func TestAlphaSpectrumShape(t *testing.T) {
	a, _ := NewAlphaEmission(DefaultAlphaRate)
	if a.DifferentialFlux(0.1) != 0 || a.DifferentialFlux(11) != 0 {
		t.Error("alpha flux outside domain should be 0")
	}
	// Peaked in the 4-6 MeV region, lower at the domain edges.
	mid := a.DifferentialFlux(5)
	if mid <= a.DifferentialFlux(1) || mid <= a.DifferentialFlux(9.9) {
		t.Error("alpha spectrum should peak in the mid-MeV region")
	}
	for e := 0.6; e < 10; e += 0.2 {
		if a.DifferentialFlux(e) < 0 {
			t.Fatalf("negative flux at %v", e)
		}
	}
}

func TestAlphaRateValidation(t *testing.T) {
	if _, err := NewAlphaEmission(0); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewAlphaEmission(-1); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestAlphaRateLinear(t *testing.T) {
	a1, _ := NewAlphaEmission(0.001)
	a2, _ := NewAlphaEmission(0.002)
	if r := a2.DifferentialFlux(5) / a1.DifferentialFlux(5); math.Abs(r-2) > 1e-9 {
		t.Errorf("rate scaling = %v, want 2", r)
	}
}

func TestIntegralFluxAdditive(t *testing.T) {
	p, _ := NewProtonSeaLevel(1)
	whole := IntegralFlux(p, 1, 100)
	parts := IntegralFlux(p, 1, 10) + IntegralFlux(p, 10, 100)
	if math.Abs(whole-parts)/whole > 0.01 {
		t.Errorf("integral not additive: %v vs %v", whole, parts)
	}
	if IntegralFlux(p, 10, 10) != 0 || IntegralFlux(p, -1, 5) != 0 {
		t.Error("degenerate ranges should integrate to 0")
	}
}

func TestBins(t *testing.T) {
	a, _ := NewAlphaEmission(DefaultAlphaRate)
	bins, err := Bins(a, 0.5, 10, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 12 {
		t.Fatalf("bins = %d", len(bins))
	}
	var sum float64
	for i, b := range bins {
		if b.Lo >= b.Hi {
			t.Fatalf("bin %d not ordered", i)
		}
		if b.Rep < b.Lo || b.Rep > b.Hi {
			t.Fatalf("bin %d representative outside bin", i)
		}
		if i > 0 && math.Abs(b.Lo-bins[i-1].Hi) > 1e-12*b.Lo {
			t.Fatalf("bins %d/%d not contiguous", i-1, i)
		}
		if b.IntFlux < 0 {
			t.Fatalf("bin %d negative flux", i)
		}
		sum += b.IntFlux
	}
	// Bin fluxes sum to the domain integral.
	whole := IntegralFlux(a, 0.5, 10)
	if math.Abs(sum-whole)/whole > 0.02 {
		t.Errorf("bin flux sum %v != integral %v", sum, whole)
	}
}

func TestBinsValidation(t *testing.T) {
	p, _ := NewProtonSeaLevel(1)
	if _, err := Bins(p, 1, 10, 0); err == nil {
		t.Error("zero bins accepted")
	}
	if _, err := Bins(p, 0, 10, 4); err == nil {
		t.Error("zero lo accepted")
	}
	if _, err := Bins(p, 10, 1, 4); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestProtonFluxDominatesAlphaFlux(t *testing.T) {
	// The paper's Fig. 9 crossover argument requires the ground-level
	// proton flux (over the directly-ionizing range) to greatly exceed the
	// 0.001 α/(cm²·h) emission rate.
	p, _ := NewProtonSeaLevel(1)
	a, _ := NewAlphaEmission(DefaultAlphaRate)
	protonPerHour := IntegralFlux(p, 1, 1000) * 3600
	alphaPerHour := TotalFluxPerHour(a)
	if protonPerHour < 10*alphaPerHour {
		t.Errorf("proton flux %v /(cm²·h) not ≫ alpha %v", protonPerHour, alphaPerHour)
	}
}

func TestAltitudeScale(t *testing.T) {
	if AltitudeScale(0) != 1 || AltitudeScale(-100) != 1 {
		t.Error("sea level should scale by exactly 1")
	}
	// Denver (~1600 m): known ~3-5x neutron flux.
	denver := AltitudeScale(1600)
	if denver < 2.5 || denver > 6 {
		t.Errorf("Denver scale = %v, want ~3-5", denver)
	}
	// Avionics (~12 km): hundreds of times sea level.
	avionics := AltitudeScale(12000)
	if avionics < 100 || avionics > 2000 {
		t.Errorf("12 km scale = %v, want O(several hundred)", avionics)
	}
	// Monotone increasing.
	prev := 1.0
	for h := 500.0; h <= 15000; h += 500 {
		s := AltitudeScale(h)
		if s <= prev {
			t.Fatalf("altitude scale not increasing at %v m", h)
		}
		prev = s
	}
	// Usable as a spectrum scale.
	p, err := NewProtonSeaLevel(AltitudeScale(3000))
	if err != nil {
		t.Fatal(err)
	}
	p0, _ := NewProtonSeaLevel(1)
	if p.DifferentialFlux(10) <= p0.DifferentialFlux(10) {
		t.Error("altitude-scaled spectrum not above sea level")
	}
}
