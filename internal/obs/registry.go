package obs

import (
	"encoding/json"
	"expvar"
	"io"
	"math"
	"sort"
	"sync"
	"time"
)

// Registry is a named collection of metrics and span statistics. Metric
// accessors create on first use, so instrumented code can ask for the same
// name from many goroutines. All methods are nil-receiver no-ops, making a
// nil *Registry the "observability off" switch for an entire flow.
type Registry struct {
	mu       sync.Mutex
	start    time.Time
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    map[string]*spanStat
	spanSeq  int // first-seen order, for stable reporting
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		start:    time.Now(),
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		spans:    map[string]*spanStat{},
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// (a no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on a
// nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use (later calls ignore bounds). Returns nil on a nil
// registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// BucketCount is one histogram bucket in a snapshot. Le is the inclusive
// upper bound; the overflow bucket is reported separately.
type BucketCount struct {
	Le    float64 `json:"le"`
	Count int64   `json:"count"`
}

// HistogramSnapshot is the serializable state of one histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min,omitempty"`
	Max   float64 `json:"max,omitempty"`
	// P50/P95/P99 are bucket-interpolated quantile estimates
	// (Histogram.Quantile); omitted while the histogram is empty. They make
	// latency percentiles readable straight off the JSON snapshot instead
	// of requiring a Prometheus server to compute them.
	P50      float64       `json:"p50,omitempty"`
	P95      float64       `json:"p95,omitempty"`
	P99      float64       `json:"p99,omitempty"`
	Buckets  []BucketCount `json:"buckets"`
	Overflow int64         `json:"overflow"`
}

// SpanSnapshot is the aggregated timing of one span path. Count > 1 means
// the stage ran repeatedly (e.g. one span per energy bin under a shared
// parent).
type SpanSnapshot struct {
	Path         string  `json:"path"`
	Count        int64   `json:"count"`
	TotalSeconds float64 `json:"total_seconds"`
	MinSeconds   float64 `json:"min_seconds"`
	MaxSeconds   float64 `json:"max_seconds"`
	LastSeconds  float64 `json:"last_seconds"`
}

// Snapshot is a point-in-time JSON-serializable view of the registry.
type Snapshot struct {
	TakenAt       time.Time                    `json:"taken_at"`
	UptimeSeconds float64                      `json:"uptime_seconds"`
	Counters      map[string]int64             `json:"counters,omitempty"`
	Gauges        map[string]float64           `json:"gauges,omitempty"`
	Histograms    map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Spans         []SpanSnapshot               `json:"spans,omitempty"`
}

// Snapshot captures the current state of every metric. Safe to call while
// writers are active (values are read atomically, though not as one
// consistent cut). Returns the zero Snapshot on a nil registry.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		TakenAt:       time.Now(),
		UptimeSeconds: time.Since(r.start).Seconds(),
	}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = snapshotHistogram(h)
		}
	}
	for path, st := range r.spans {
		s.Spans = append(s.Spans, SpanSnapshot{
			Path:         path,
			Count:        st.count,
			TotalSeconds: st.total.Seconds(),
			MinSeconds:   st.min.Seconds(),
			MaxSeconds:   st.max.Seconds(),
			LastSeconds:  st.last.Seconds(),
		})
	}
	order := r.spans // capture for the closure below
	sort.Slice(s.Spans, func(i, j int) bool {
		return order[s.Spans[i].Path].seq < order[s.Spans[j].Path].seq
	})
	return s
}

func snapshotHistogram(h *Histogram) HistogramSnapshot {
	hs := HistogramSnapshot{
		Count:   h.Count(),
		Sum:     h.Sum(),
		Mean:    h.Mean(),
		Buckets: make([]BucketCount, len(h.bounds)),
	}
	for i, b := range h.bounds {
		hs.Buckets[i] = BucketCount{Le: b, Count: h.counts[i].Load()}
	}
	hs.Overflow = h.counts[len(h.bounds)].Load()
	if hs.Count > 0 {
		hs.Min = h.minValue()
		hs.Max = h.maxValue()
		// Quantile returns NaN only when empty, which Count > 0 excludes —
		// but guard anyway: a NaN here would fail the whole JSON encode.
		for _, p := range []struct {
			q   float64
			dst *float64
		}{{0.50, &hs.P50}, {0.95, &hs.P95}, {0.99, &hs.P99}} {
			if v := h.Quantile(p.q); !math.IsNaN(v) {
				*p.dst = v
			}
		}
	}
	return hs
}

func (h *Histogram) minValue() float64 {
	return floatFromBits(&h.minBits)
}

func (h *Histogram) maxValue() float64 {
	return floatFromBits(&h.maxBits)
}

// WriteJSON writes an indented JSON snapshot. No-op on a nil registry.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

var expvarPublished sync.Map // name → struct{}; expvar.Publish panics on reuse

// PublishExpvar registers the registry under the given expvar name, making
// the live snapshot available at /debug/vars on any default-mux HTTP
// listener (e.g. the one net/http/pprof installs). Idempotent per name;
// no-op on a nil registry.
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	if _, loaded := expvarPublished.LoadOrStore(name, struct{}{}); loaded {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
