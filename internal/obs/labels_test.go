package obs

import (
	"strings"
	"testing"
)

func TestLabeled(t *testing.T) {
	for _, tc := range []struct {
		name string
		kv   []string
		want string
	}{
		{"serd/jobs", nil, "serd/jobs"},
		{"serd/jobs", []string{"tenant", "acme"}, `serd/jobs{tenant="acme"}`},
		// Keys sort, so argument order never forks the registry name.
		{"m", []string{"tenant", "a", "class", "batch"}, `m{class="batch",tenant="a"}`},
		{"m", []string{"class", "batch", "tenant", "a"}, `m{class="batch",tenant="a"}`},
		// Hostile values are escaped, hostile keys sanitized.
		{"m", []string{"tenant", `ev"il` + "\n"}, `m{tenant="ev\"il\n"}`},
		{"m", []string{"bad key!", "v"}, `m{bad_key_="v"}`},
		{"m", []string{"9lead", "v"}, `m{_lead="v"}`},
		// Odd trailing key is dropped.
		{"m", []string{"only"}, "m"},
	} {
		if got := Labeled(tc.name, tc.kv...); got != tc.want {
			t.Errorf("Labeled(%q, %v) = %q, want %q", tc.name, tc.kv, got, tc.want)
		}
	}
}

func TestSplitLabels(t *testing.T) {
	for _, tc := range []struct{ in, base, labels string }{
		{"serd/jobs", "serd/jobs", ""},
		{`serd/jobs{tenant="a"}`, "serd/jobs", `{tenant="a"}`},
		{"odd{unclosed", "odd{unclosed", ""},
	} {
		base, labels := SplitLabels(tc.in)
		if base != tc.base || labels != tc.labels {
			t.Errorf("SplitLabels(%q) = (%q, %q), want (%q, %q)", tc.in, base, labels, tc.base, tc.labels)
		}
	}
}

// TestWritePrometheusLabeledFamilies: labeled variants of one base name
// must render as a single family — one HELP/TYPE, contiguous samples, and
// histogram labelsets each carrying their own cumulative le sequence — and
// the result must pass the linter. This is the shape the per-tenant serd
// metrics take.
func TestWritePrometheusLabeledFamilies(t *testing.T) {
	r := NewRegistry()
	r.Counter(Labeled("serd/tenant/jobs/submitted", "tenant", "acme")).Add(7)
	r.Counter(Labeled("serd/tenant/jobs/submitted", "tenant", "anon")).Add(2)
	// An unlabeled metric whose name sorts between the labeled variants'
	// raw names ('/' < '{') — grouping must keep the family contiguous.
	r.Counter("serd/tenant/jobs/submitted/zz").Inc()
	for _, tenant := range []string{"acme", "anon"} {
		h := r.Histogram(Labeled("serd/tenant/wait_seconds", "tenant", tenant, "class", "batch"), []float64{0.1, 1})
		h.Observe(0.05)
		h.Observe(5)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b, "finser"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if err := LintExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("labeled exposition fails lint: %v\n%s", err, out)
	}
	if got := strings.Count(out, "# TYPE finser_serd_tenant_jobs_submitted counter"); got != 1 {
		t.Errorf("want exactly 1 TYPE line for the labeled counter family, got %d\n%s", got, out)
	}
	if got := strings.Count(out, "# TYPE finser_serd_tenant_wait_seconds histogram"); got != 1 {
		t.Errorf("want exactly 1 TYPE line for the labeled histogram family, got %d\n%s", got, out)
	}
	for _, want := range []string{
		`finser_serd_tenant_jobs_submitted{tenant="acme"} 7`,
		`finser_serd_tenant_jobs_submitted{tenant="anon"} 2`,
		"finser_serd_tenant_jobs_submitted_zz 1",
		`finser_serd_tenant_wait_seconds_bucket{class="batch",tenant="acme",le="+Inf"} 2`,
		`finser_serd_tenant_wait_seconds_count{class="batch",tenant="anon"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

// TestLintExpositionLabeledHistogramResets: the per-labelset keying —
// a second labelset restarting the le sequence is legal, but a
// non-cumulative sequence WITHIN one labelset still fails.
func TestLintExpositionLabeledHistogramResets(t *testing.T) {
	clean := "# HELP h x\n# TYPE h histogram\n" +
		"h_bucket{tenant=\"a\",le=\"1\"} 5\nh_bucket{tenant=\"a\",le=\"+Inf\"} 6\n" +
		"h_sum{tenant=\"a\"} 1\nh_count{tenant=\"a\"} 6\n" +
		"h_bucket{tenant=\"b\",le=\"1\"} 2\nh_bucket{tenant=\"b\",le=\"+Inf\"} 2\n" +
		"h_sum{tenant=\"b\"} 1\nh_count{tenant=\"b\"} 2\n"
	if err := LintExposition(strings.NewReader(clean)); err != nil {
		t.Fatalf("lint rejected clean labeled histogram: %v", err)
	}
	bad := "# HELP h x\n# TYPE h histogram\n" +
		"h_bucket{tenant=\"a\",le=\"1\"} 5\nh_bucket{tenant=\"a\",le=\"2\"} 3\n" +
		"h_bucket{tenant=\"a\",le=\"+Inf\"} 5\nh_sum{tenant=\"a\"} 1\nh_count{tenant=\"a\"} 5\n"
	if err := LintExposition(strings.NewReader(bad)); err == nil {
		t.Fatal("lint accepted non-cumulative buckets within one labelset")
	}
	missingInf := "# HELP h x\n# TYPE h histogram\n" +
		"h_bucket{tenant=\"a\",le=\"1\"} 1\nh_bucket{tenant=\"a\",le=\"+Inf\"} 1\n" +
		"h_count{tenant=\"a\"} 1\n" +
		"h_bucket{tenant=\"b\",le=\"1\"} 1\nh_count{tenant=\"b\"} 1\n"
	if err := LintExposition(strings.NewReader(missingInf)); err == nil {
		t.Fatal("lint accepted a labelset with no +Inf bucket")
	}
	countMismatch := "# HELP h x\n# TYPE h histogram\n" +
		"h_bucket{tenant=\"a\",le=\"+Inf\"} 3\nh_count{tenant=\"a\"} 4\n"
	if err := LintExposition(strings.NewReader(countMismatch)); err == nil {
		t.Fatal("lint accepted +Inf/count mismatch within a labelset")
	}
}
