package obs

import (
	"io"
	"log/slog"
)

// Structured logging wiring: serving layers emit one JSON (or logfmt-style
// text) object per line through a *slog.Logger, and stamp every job-scoped
// line with the job ID and configuration fingerprint via JobLogger — the
// correlation keys that join a log line to the job's /metrics series and
// its /jobs/{id}/events stream.

// NewJSONLogger returns a logger writing one JSON object per line to w at
// the given minimum level — the machine-readable mode a log pipeline
// ingests.
func NewJSONLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level}))
}

// NewTextLogger returns a logger writing key=value lines to w at the given
// minimum level — the human-readable default for a terminal.
func NewTextLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// JobLogger derives a job-scoped logger carrying the job ID and (when
// known) the configuration fingerprint on every line. Nil-safe: a nil base
// returns nil, and callers treat a nil *slog.Logger as logging disabled.
func JobLogger(base *slog.Logger, jobID, fingerprint string) *slog.Logger {
	if base == nil {
		return nil
	}
	attrs := []any{slog.String("job", jobID)}
	if fingerprint != "" {
		attrs = append(attrs, slog.String("fingerprint", fingerprint))
	}
	return base.With(attrs...)
}

// ParseLogLevel maps the -log-level flag spellings onto slog levels.
func ParseLogLevel(s string) (slog.Level, bool) {
	switch s {
	case "debug":
		return slog.LevelDebug, true
	case "", "info":
		return slog.LevelInfo, true
	case "warn":
		return slog.LevelWarn, true
	case "error":
		return slog.LevelError, true
	default:
		return slog.LevelInfo, false
	}
}
