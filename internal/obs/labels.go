package obs

import (
	"sort"
	"strings"
)

// Labeled builds a registry metric name carrying Prometheus-style labels:
//
//	Labeled("serd/tenant/jobs/submitted", "tenant", "acme")
//	  → `serd/tenant/jobs/submitted{tenant="acme"}`
//
// The registry treats the result as an ordinary opaque name — each label
// combination is its own counter/gauge/histogram — while WritePrometheus
// recognizes the suffix and renders every labeled variant as one metric
// family (single HELP/TYPE) with per-labelset samples, which is what
// scrapers and LintExposition require.
//
// kv is alternating key/value pairs. Keys are sanitized to the Prometheus
// label charset, values are escaped, and pairs are sorted by key so the
// same label set always produces the same registry name regardless of
// argument order. An odd trailing key is dropped; no pairs returns the
// name unchanged.
func Labeled(name string, kv ...string) string {
	if len(kv) < 2 {
		return name
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		pairs = append(pairs, pair{labelKey(kv[i]), labelValue(kv[i+1])})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(p.v)
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// SplitLabels splits a registry metric name into its base name and the
// `{...}` label suffix Labeled appended (empty when unlabeled). The suffix
// includes the braces and is already valid exposition-format label syntax.
func SplitLabels(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i:]
	}
	return name, ""
}

// labelKey sanitizes a label name to [a-zA-Z_][a-zA-Z0-9_]*, collapsing
// runs of other characters to one underscore.
func labelKey(k string) string {
	var b strings.Builder
	b.Grow(len(k))
	lastUnderscore := false
	for i, c := range k {
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if ok {
			b.WriteRune(c)
			lastUnderscore = c == '_'
		} else if !lastUnderscore {
			b.WriteByte('_')
			lastUnderscore = true
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// labelValue escapes a label value per the text exposition format:
// backslash, double quote, and newline.
func labelValue(v string) string {
	var b strings.Builder
	b.Grow(len(v))
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}
