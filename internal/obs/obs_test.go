package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterConcurrent hammers one counter from many goroutines; the total
// must be exact (run under -race in CI).
func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	const workers, per = 16, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	// Same name returns the same counter.
	if r.Counter("hits") != c {
		t.Fatal("Counter not idempotent per name")
	}
}

// TestHistogramConcurrent checks bucket totals, sum, min and max under
// concurrent observation.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(LinearBuckets(1, 1, 4)) // ≤1, ≤2, ≤3, ≤4, overflow
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, v := range []float64{0.5, 1.5, 2.5, 3.5, 9} {
				h.Observe(v)
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*5 {
		t.Fatalf("count = %d, want %d", h.Count(), workers*5)
	}
	wantSum := float64(workers) * (0.5 + 1.5 + 2.5 + 3.5 + 9)
	if math.Abs(h.Sum()-wantSum) > 1e-9 {
		t.Fatalf("sum = %g, want %g", h.Sum(), wantSum)
	}
	hs := snapshotHistogram(h)
	for i, want := range []int64{workers, workers, workers, workers} {
		if hs.Buckets[i].Count != want {
			t.Fatalf("bucket %d = %d, want %d", i, hs.Buckets[i].Count, want)
		}
	}
	if hs.Overflow != workers {
		t.Fatalf("overflow = %d, want %d", hs.Overflow, workers)
	}
	if hs.Min != 0.5 || hs.Max != 9 {
		t.Fatalf("min/max = %g/%g, want 0.5/9", hs.Min, hs.Max)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("util")
	g.Set(0.5)
	g.SetMax(0.25) // lower: ignored
	if g.Value() != 0.5 {
		t.Fatalf("gauge = %g, want 0.5", g.Value())
	}
	g.SetMax(0.75)
	if g.Value() != 0.75 {
		t.Fatalf("gauge = %g, want 0.75", g.Value())
	}
}

// TestSpanNesting checks hierarchical paths and repeated-span aggregation.
func TestSpanNesting(t *testing.T) {
	r := NewRegistry()
	flow := r.StartSpan("flow")
	for i := 0; i < 3; i++ {
		bin := flow.Child("fit").Child("bin")
		time.Sleep(time.Millisecond)
		bin.End()
	}
	flow.End()
	flow.End() // second End must not double-record

	s := r.Snapshot()
	byPath := map[string]SpanSnapshot{}
	for _, sp := range s.Spans {
		byPath[sp.Path] = sp
	}
	if got := byPath["flow"].Count; got != 1 {
		t.Fatalf("flow count = %d, want 1", got)
	}
	bin, ok := byPath["flow/fit/bin"]
	if !ok {
		t.Fatalf("missing nested span path, have %v", byPath)
	}
	if bin.Count != 3 {
		t.Fatalf("bin count = %d, want 3", bin.Count)
	}
	if bin.TotalSeconds <= 0 || bin.MinSeconds <= 0 || bin.MaxSeconds < bin.MinSeconds {
		t.Fatalf("bad span stats: %+v", bin)
	}
	if byPath["flow"].TotalSeconds < bin.TotalSeconds {
		t.Fatal("parent span shorter than nested children")
	}
}

// TestNilNoOp exercises every nil-receiver path: none may panic, and all
// reads return zero values.
func TestNilNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter not zero")
	}
	g := r.Gauge("x")
	g.Set(1)
	g.SetMax(2)
	if g.Value() != 0 {
		t.Fatal("nil gauge not zero")
	}
	h := r.Histogram("x", LinearBuckets(0, 1, 3))
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Fatal("nil histogram not zero")
	}
	sp := r.StartSpan("x")
	sp.Child("y").End()
	sp.End()
	if sp.Path() != "" {
		t.Fatal("nil span has a path")
	}
	if snap := r.Snapshot(); len(snap.Counters) != 0 || len(snap.Spans) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	if err := r.WriteJSON(nil); err != nil {
		t.Fatal(err)
	}
	r.PublishExpvar("nil-registry")

	var tr *Tracker
	tr.Add(1)
	tr.Finish()
	if NewTracker(nil, "s", 10, 0) != nil {
		t.Fatal("tracker with nil fn should be nil")
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("core.particles").Add(42)
	r.Gauge("core.util").Set(0.9)
	r.Histogram("core.multiplicity", LinearBuckets(1, 1, 3)).Observe(2)
	sp := r.StartSpan("flow")
	sp.Child("characterize").End()
	sp.End()

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round Snapshot
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("snapshot not valid JSON: %v\n%s", err, buf.String())
	}
	if round.Counters["core.particles"] != 42 {
		t.Fatalf("counter lost in round trip: %+v", round.Counters)
	}
	if round.Histograms["core.multiplicity"].Count != 1 {
		t.Fatalf("histogram lost in round trip")
	}
	if len(round.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(round.Spans))
	}
	// First-seen order: parent started before child, but child *ended*
	// first; order must follow first start.
	if round.Spans[0].Path != "flow/characterize" && round.Spans[0].Path != "flow" {
		t.Fatalf("unexpected span order: %v", round.Spans)
	}
}

func TestTracker(t *testing.T) {
	var mu sync.Mutex
	var got []Progress
	fn := func(p Progress) {
		mu.Lock()
		got = append(got, p)
		mu.Unlock()
	}
	tr := NewTracker(fn, "stage", 10, time.Nanosecond)
	for i := 0; i < 10; i++ {
		tr.Add(1)
		time.Sleep(time.Microsecond)
	}
	tr.Finish() // idempotent: Add already finished at done == total
	mu.Lock()
	defer mu.Unlock()
	if len(got) == 0 {
		t.Fatal("no progress reports")
	}
	last := got[len(got)-1]
	if !last.Final || last.Done != 10 || last.Total != 10 || last.ETA != 0 {
		t.Fatalf("bad final report: %+v", last)
	}
	finals := 0
	for _, p := range got {
		if p.Final {
			finals++
		}
		if p.Stage != "stage" {
			t.Fatalf("bad stage: %+v", p)
		}
	}
	if finals != 1 {
		t.Fatalf("final reports = %d, want 1", finals)
	}
}

func TestPrinter(t *testing.T) {
	var buf bytes.Buffer
	p := Printer(&buf)
	p(Progress{Stage: "fit/alpha", Done: 5, Total: 10, Elapsed: time.Second, ETA: time.Second, Rate: 5})
	p(Progress{Stage: "fit/alpha", Done: 10, Total: 10, Elapsed: 2 * time.Second, Final: true, Rate: 5})
	out := buf.String()
	for _, want := range []string{"fit/alpha", "5/10", "50.0%", "ETA", "done in"} {
		if !strings.Contains(out, want) {
			t.Fatalf("printer output missing %q:\n%s", want, out)
		}
	}
}

// TestConcurrentRegistryAccess creates and uses metrics from many
// goroutines simultaneously while snapshotting — the -race guard for the
// registry maps.
func TestConcurrentRegistryAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("shared").Inc()
				r.Histogram("h", LinearBuckets(0, 1, 4)).Observe(float64(i % 5))
				sp := r.StartSpan("worker")
				sp.End()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			r.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if got := r.Counter("shared").Value(); got != 8*200 {
		t.Fatalf("shared counter = %d, want %d", got, 8*200)
	}
}
