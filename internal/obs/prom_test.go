package obs

import (
	"math"
	"os"
	"strings"
	"testing"
)

// TestLintExpositionFile lints an exposition scraped from a live server —
// CI's telemetry e2e job curls /metrics?format=prometheus into a file and
// points PROM_LINT_FILE at it. Skipped when the variable is unset.
func TestLintExpositionFile(t *testing.T) {
	path := os.Getenv("PROM_LINT_FILE")
	if path == "" {
		t.Skip("PROM_LINT_FILE not set")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := LintExposition(f); err != nil {
		t.Fatalf("scraped exposition fails lint: %v", err)
	}
}

func TestQuantileUniform(t *testing.T) {
	h := NewHistogram(LinearBuckets(10, 10, 10)) // 10, 20, ..., 100
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v))
	}
	for _, tc := range []struct {
		q, want, tol float64
	}{
		{0.50, 50, 5},
		{0.95, 95, 5},
		{0.99, 99, 5},
		{0, 1, 1},
		{1, 100, 0},
	} {
		got := h.Quantile(tc.q)
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("Quantile(%g) = %g, want %g ± %g", tc.q, got, tc.want, tc.tol)
		}
	}
}

func TestQuantileClampedToObserved(t *testing.T) {
	// Coarse buckets around a tight distribution: interpolation alone would
	// report values outside [min, max]; the clamp must prevent that.
	h := NewHistogram([]float64{1000})
	h.Observe(41)
	h.Observe(42)
	h.Observe(43)
	for _, q := range []float64{0.01, 0.5, 0.99} {
		got := h.Quantile(q)
		if got < 41 || got > 43 {
			t.Errorf("Quantile(%g) = %g, outside observed [41, 43]", q, got)
		}
	}
}

func TestQuantileOverflowReturnsMax(t *testing.T) {
	h := NewHistogram([]float64{10})
	h.Observe(5)
	h.Observe(500) // overflow bucket
	if got := h.Quantile(0.99); got != 500 {
		t.Errorf("Quantile(0.99) with overflow rank = %g, want the observed max 500", got)
	}
}

func TestQuantileEmptyAndNil(t *testing.T) {
	var nilH *Histogram
	if !math.IsNaN(nilH.Quantile(0.5)) {
		t.Error("nil histogram Quantile should be NaN")
	}
	if !math.IsNaN(NewHistogram([]float64{1}).Quantile(0.5)) {
		t.Error("empty histogram Quantile should be NaN")
	}
}

func TestSnapshotPercentiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", LinearBuckets(1, 1, 10))
	for v := 1; v <= 10; v++ {
		h.Observe(float64(v))
	}
	hs := r.Snapshot().Histograms["lat"]
	if hs.P50 <= 0 || hs.P95 <= 0 || hs.P99 <= 0 {
		t.Fatalf("percentiles not populated: %+v", hs)
	}
	if !(hs.P50 <= hs.P95 && hs.P95 <= hs.P99) {
		t.Fatalf("percentiles not ordered: p50=%g p95=%g p99=%g", hs.P50, hs.P95, hs.P99)
	}
	// Empty histogram: percentiles omitted (zero), never NaN.
	r.Histogram("empty", []float64{1})
	if es := r.Snapshot().Histograms["empty"]; es.P50 != 0 || es.P95 != 0 || es.P99 != 0 {
		t.Fatalf("empty histogram leaked percentiles: %+v", es)
	}
}

// TestWritePrometheusLintClean: the renderer's own output must satisfy the
// exposition linter — the same round-trip the CI telemetry gate runs
// against a live serd.
func TestWritePrometheusLintClean(t *testing.T) {
	r := NewRegistry()
	r.Counter("mc/iterations").Add(12345)
	r.Counter("jobs/shed").Inc()
	r.Gauge("queue/depth").Set(3)
	h := r.Histogram("latency/admission_to_done_seconds", ExpBuckets(0.001, 2, 12))
	for _, v := range []float64{0.002, 0.01, 0.5, 9.9} {
		h.Observe(v)
	}
	sp := r.StartSpan("flow").Child("fit").Child("alpha")
	sp.End()

	var b strings.Builder
	if err := r.WritePrometheus(&b, "finser"); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := b.String()
	if err := LintExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("rendered exposition fails lint: %v\n%s", err, out)
	}
	for _, want := range []string{
		"# TYPE finser_mc_iterations counter",
		"finser_mc_iterations 12345",
		"# TYPE finser_queue_depth gauge",
		"# TYPE finser_latency_admission_to_done_seconds histogram",
		`finser_latency_admission_to_done_seconds_bucket{le="+Inf"} 4`,
		"finser_latency_admission_to_done_seconds_count 4",
		"# TYPE finser_span_flow_fit_alpha_seconds summary",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

func TestWritePrometheusNilRegistry(t *testing.T) {
	var r *Registry
	var b strings.Builder
	if err := r.WritePrometheus(&b, "x"); err != nil || b.Len() != 0 {
		t.Fatalf("nil registry wrote %q, err %v", b.String(), err)
	}
}

func TestPromName(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"mc/iterations", "finser_mc_iterations"},
		{"latency/admission-to-done.seconds", "finser_latency_admission_to_done_seconds"},
		{"a//b", "finser_a_b"},
		{"trailing/", "finser_trailing"},
	} {
		if got := promName("finser", tc.in); got != tc.want {
			t.Errorf("promName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// Lint negative cases: each corruption the CI gate must catch.
func TestLintExpositionRejects(t *testing.T) {
	for name, payload := range map[string]string{
		"type without help": "# TYPE m counter\nm 1\n",
		"sample without type": "m 1\n",
		"duplicate type": "# HELP m x\n# TYPE m counter\n# TYPE m counter\nm 1\n",
		"non-cumulative buckets": "# HELP h x\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"le out of order": "# HELP h x\n# TYPE h histogram\n" +
			"h_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
		"missing +Inf": "# HELP h x\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"+Inf disagrees with count": "# HELP h x\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 2\n",
		"illegal name":     "# HELP 9bad x\n# TYPE 9bad counter\n9bad 1\n",
		"unparseable line": "# HELP m x\n# TYPE m counter\nm one\n",
	} {
		if err := LintExposition(strings.NewReader(payload)); err == nil {
			t.Errorf("lint accepted corrupt payload %q", name)
		}
	}
}

func TestLintExpositionAcceptsClean(t *testing.T) {
	clean := "# some free comment\n" +
		"# HELP c a counter\n# TYPE c counter\nc 42\n" +
		"# HELP h a histogram\n# TYPE h histogram\n" +
		"h_bucket{le=\"0.5\"} 1\nh_bucket{le=\"1\"} 3\nh_bucket{le=\"+Inf\"} 4\n" +
		"h_sum 2.5\nh_count 4\n"
	if err := LintExposition(strings.NewReader(clean)); err != nil {
		t.Fatalf("lint rejected clean payload: %v", err)
	}
}
