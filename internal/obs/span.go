package obs

import (
	"time"
)

// spanStat is the aggregated timing of one span path.
type spanStat struct {
	seq   int
	count int64
	total time.Duration
	min   time.Duration
	max   time.Duration
	last  time.Duration
}

// Span measures the wall time of one named pipeline stage. Spans nest:
// Child returns a span whose path is parent-path + "/" + name, so the
// snapshot reads as a tree ("flow", "flow/characterize", ...). End records
// the duration into the owning registry; repeated spans on the same path
// aggregate (count, total, min, max, last).
type Span struct {
	r     *Registry
	path  string
	start time.Time
	ended bool
}

// StartSpan begins a top-level span. Returns nil (a no-op span) on a nil
// registry.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{r: r, path: name, start: time.Now()}
}

// Child begins a nested span under s. Nil-safe: a child of a nil span is
// nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{r: s.r, path: s.path + "/" + name, start: time.Now()}
}

// Path returns the span's full path ("" on a nil span).
func (s *Span) Path() string {
	if s == nil {
		return ""
	}
	return s.path
}

// End records the elapsed wall time and returns it. Safe to call more than
// once (only the first call records); no-op on a nil span.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	if s.ended {
		return d
	}
	s.ended = true
	s.r.recordSpan(s.path, d)
	return d
}

func (r *Registry) recordSpan(path string, d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.spans[path]
	if !ok {
		st = &spanStat{seq: r.spanSeq, min: d, max: d}
		r.spanSeq++
		r.spans[path] = st
	}
	st.count++
	st.total += d
	st.last = d
	if d < st.min {
		st.min = d
	}
	if d > st.max {
		st.max = d
	}
}
