// Package obs is the flow's dependency-free observability layer: atomic
// counters, gauges and fixed-bucket histograms with a lock-free hot path,
// hierarchical named stage spans (wall time per pipeline phase), and a
// progress-callback tracker carrying done/total/ETA. Everything hangs off a
// Registry that snapshots to JSON and can publish itself through stdlib
// expvar.
//
// Every type follows the nil-receiver no-op pattern: a nil *Counter,
// *Gauge, *Histogram, *Span, *Tracker or *Registry accepts all of its
// method calls and does nothing, so instrumented code needs no "is
// observability on?" branches and pays nothing when it is off.
package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable float64 value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// SetMax stores v only if it exceeds the current value.
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the stored value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram with an entirely lock-free Observe
// path. Bucket i counts observations v ≤ Bounds[i]; values above the last
// bound land in the overflow bucket. Sum, min and max are tracked with CAS
// loops on float bits.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is overflow
	count   atomic.Int64
	sumBits atomic.Uint64
	minBits atomic.Uint64 // +Inf initially
	maxBits atomic.Uint64 // -Inf initially
}

// NewHistogram builds a histogram over the given strictly increasing upper
// bounds. Use LinearBuckets or ExpBuckets for the common layouts.
func NewHistogram(bounds []float64) *Histogram {
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// LinearBuckets returns n upper bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExpBuckets returns n upper bounds start, start·factor, start·factor², ...
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Buckets are few (≤ ~30); linear scan beats binary search overhead.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	atomicAddFloat(&h.sumBits, v)
	atomicMinFloat(&h.minBits, v)
	atomicMaxFloat(&h.maxBits, v)
}

// Quantile estimates the q-quantile (q in [0,1]) of the observed
// distribution by linear interpolation within the bucket containing the
// target rank — the same estimator Prometheus' histogram_quantile applies
// server-side, so the JSON snapshot and a scraped dashboard agree. The
// first bucket interpolates up from the observed minimum, ranks landing in
// the overflow bucket return the observed maximum, and the result is
// clamped to [min, max] so a coarse bucket layout can never report a value
// outside the data. Returns NaN when empty (or on a nil receiver); callers
// serializing to JSON must skip it.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	n := h.count.Load()
	if n == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	min := floatFromBits(&h.minBits)
	max := floatFromBits(&h.maxBits)
	rank := q * float64(n)
	cum := int64(0)
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 || float64(cum+c) < rank {
			cum += c
			continue
		}
		if i == len(h.bounds) {
			return max // overflow bucket: the best bound we have is the max
		}
		lo := min
		if i > 0 {
			lo = h.bounds[i-1]
			if lo < min {
				lo = min
			}
		}
		hi := h.bounds[i]
		v := lo
		if c > 0 {
			v = lo + (hi-lo)*(rank-float64(cum))/float64(c)
		}
		if v < min {
			v = min
		}
		if v > max {
			v = max
		}
		return v
	}
	return max
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the running sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Mean returns the mean observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

func floatFromBits(bits *atomic.Uint64) float64 {
	return math.Float64frombits(bits.Load())
}

func atomicAddFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

func atomicMinFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func atomicMaxFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}
