package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4) so a standard scraper can consume the same
// registry the JSON snapshot serves:
//
//   - counters → `# TYPE <ns>_<name> counter` with the running total,
//   - gauges → `# TYPE <ns>_<name> gauge`,
//   - histograms → cumulative `_bucket{le="..."}` series ending in
//     `le="+Inf"`, plus `_sum` and `_count`,
//   - spans → `<ns>_span_<path>_seconds` summaries (`_sum`/`_count`), the
//     aggregate wall time per pipeline stage.
//
// Metric names are sanitized to the Prometheus charset (runs of other
// characters become "_"), prefixed with namespace, and emitted in sorted
// order so scrapes diff cleanly. Registry names built with Labeled carry a
// `{k="v"}` suffix; every labeled variant of one base name renders under a
// single family — one HELP/TYPE pair, then all labelsets' samples
// contiguously, which is what scrapers require. The raw base name is
// preserved in the HELP line. Every family carries exactly one HELP and
// one TYPE line (duplicate sanitized names are skipped after the first —
// LintExposition treats duplicates as corruption). Nil-safe: a nil
// registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer, namespace string) error {
	if r == nil {
		return nil
	}
	s := r.Snapshot()
	ew := &errWriter{w: w}
	seen := map[string]bool{}
	emit := func(name string) bool {
		if seen[name] {
			return false
		}
		seen[name] = true
		return true
	}

	for _, g := range groupFamilies(sortedKeys(s.Counters), namespace) {
		if !emit(g.fam) {
			continue
		}
		base, _ := SplitLabels(g.raws[0])
		fmt.Fprintf(ew, "# HELP %s Counter %q.\n# TYPE %s counter\n", g.fam, base, g.fam)
		for _, raw := range g.raws {
			_, labels := SplitLabels(raw)
			fmt.Fprintf(ew, "%s%s %d\n", g.fam, labels, s.Counters[raw])
		}
	}
	for _, g := range groupFamilies(sortedKeys(s.Gauges), namespace) {
		if !emit(g.fam) {
			continue
		}
		base, _ := SplitLabels(g.raws[0])
		fmt.Fprintf(ew, "# HELP %s Gauge %q.\n# TYPE %s gauge\n", g.fam, base, g.fam)
		for _, raw := range g.raws {
			_, labels := SplitLabels(raw)
			fmt.Fprintf(ew, "%s%s %s\n", g.fam, labels, promFloat(s.Gauges[raw]))
		}
	}
	for _, g := range groupFamilies(sortedKeys(s.Histograms), namespace) {
		if !emit(g.fam) {
			continue
		}
		base, _ := SplitLabels(g.raws[0])
		fmt.Fprintf(ew, "# HELP %s Histogram %q.\n# TYPE %s histogram\n", g.fam, base, g.fam)
		for _, raw := range g.raws {
			_, labels := SplitLabels(raw)
			h := s.Histograms[raw]
			cum := int64(0)
			for _, b := range h.Buckets {
				cum += b.Count
				fmt.Fprintf(ew, "%s_bucket%s %d\n", g.fam, mergeLe(labels, promFloat(b.Le)), cum)
			}
			cum += h.Overflow
			fmt.Fprintf(ew, "%s_bucket%s %d\n", g.fam, mergeLe(labels, "+Inf"), cum)
			fmt.Fprintf(ew, "%s_sum%s %s\n%s_count%s %d\n", g.fam, labels, promFloat(h.Sum), g.fam, labels, h.Count)
		}
	}
	for _, sp := range s.Spans {
		m := promName(namespace, "span/"+sp.Path+"/seconds")
		if !emit(m) {
			continue
		}
		fmt.Fprintf(ew, "# HELP %s Span %q wall time.\n# TYPE %s summary\n", m, sp.Path, m)
		fmt.Fprintf(ew, "%s_sum %s\n%s_count %d\n", m, promFloat(sp.TotalSeconds), m, sp.Count)
	}
	return ew.err
}

// famGroup is one metric family: its sanitized exposition name and the raw
// registry names (unlabeled and/or labeled variants) that map onto it, in
// sorted raw order.
type famGroup struct {
	fam  string
	raws []string
}

// groupFamilies buckets sorted raw registry names by their sanitized family
// name, preserving first-appearance order. Raw sort order can interleave
// families ('/' sorts before '{'), so emission must group before writing —
// a family's HELP/TYPE and samples have to be contiguous.
func groupFamilies(names []string, namespace string) []famGroup {
	idx := map[string]int{}
	var out []famGroup
	for _, raw := range names {
		base, _ := SplitLabels(raw)
		fam := promName(namespace, base)
		i, ok := idx[fam]
		if !ok {
			i = len(out)
			idx[fam] = i
			out = append(out, famGroup{fam: fam})
		}
		out[i].raws = append(out[i].raws, raw)
	}
	return out
}

// mergeLe appends the histogram `le` bound to an existing label suffix
// (or opens a fresh one when the series is unlabeled).
func mergeLe(labels, le string) string {
	if labels == "" {
		return fmt.Sprintf("{le=%q}", le)
	}
	return labels[:len(labels)-1] + fmt.Sprintf(",le=%q}", le)
}

// promName sanitizes a registry name into the Prometheus metric charset
// [a-zA-Z0-9_:], collapsing runs of other characters into one underscore,
// and prefixes the namespace.
func promName(namespace, name string) string {
	var b strings.Builder
	b.Grow(len(namespace) + 1 + len(name))
	if namespace != "" {
		b.WriteString(namespace)
		b.WriteByte('_')
	}
	lastUnderscore := true // swallow a leading separator run
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == ':':
			b.WriteRune(c)
			lastUnderscore = false
		default:
			if !lastUnderscore {
				b.WriteByte('_')
				lastUnderscore = true
			}
		}
	}
	return strings.TrimSuffix(b.String(), "_")
}

// promFloat renders a float in the exposition format (shortest round-trip
// representation; Prometheus accepts Go's 'g' forms).
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// errWriter latches the first write error so the render loop needs no
// per-line error plumbing.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return len(p), nil
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
	}
	return n, err
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
