package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4) so a standard scraper can consume the same
// registry the JSON snapshot serves:
//
//   - counters → `# TYPE <ns>_<name> counter` with the running total,
//   - gauges → `# TYPE <ns>_<name> gauge`,
//   - histograms → cumulative `_bucket{le="..."}` series ending in
//     `le="+Inf"`, plus `_sum` and `_count`,
//   - spans → `<ns>_span_<path>_seconds` summaries (`_sum`/`_count`), the
//     aggregate wall time per pipeline stage.
//
// Metric names are sanitized to the Prometheus charset (runs of other
// characters become "_"), prefixed with namespace, and emitted in sorted
// order so scrapes diff cleanly. The raw registry name is preserved in the
// HELP line. Every series carries exactly one HELP and one TYPE line
// (duplicate sanitized names are skipped after the first — LintExposition
// treats duplicates as corruption). Nil-safe: a nil registry writes
// nothing.
func (r *Registry) WritePrometheus(w io.Writer, namespace string) error {
	if r == nil {
		return nil
	}
	s := r.Snapshot()
	ew := &errWriter{w: w}
	seen := map[string]bool{}
	emit := func(name string) bool {
		if seen[name] {
			return false
		}
		seen[name] = true
		return true
	}

	for _, name := range sortedKeys(s.Counters) {
		m := promName(namespace, name)
		if !emit(m) {
			continue
		}
		fmt.Fprintf(ew, "# HELP %s Counter %q.\n# TYPE %s counter\n%s %d\n", m, name, m, m, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		m := promName(namespace, name)
		if !emit(m) {
			continue
		}
		fmt.Fprintf(ew, "# HELP %s Gauge %q.\n# TYPE %s gauge\n%s %s\n", m, name, m, m, promFloat(s.Gauges[name]))
	}
	for _, name := range sortedKeys(s.Histograms) {
		m := promName(namespace, name)
		if !emit(m) {
			continue
		}
		h := s.Histograms[name]
		fmt.Fprintf(ew, "# HELP %s Histogram %q.\n# TYPE %s histogram\n", m, name, m)
		cum := int64(0)
		for _, b := range h.Buckets {
			cum += b.Count
			fmt.Fprintf(ew, "%s_bucket{le=%q} %d\n", m, promFloat(b.Le), cum)
		}
		cum += h.Overflow
		fmt.Fprintf(ew, "%s_bucket{le=\"+Inf\"} %d\n", m, cum)
		fmt.Fprintf(ew, "%s_sum %s\n%s_count %d\n", m, promFloat(h.Sum), m, h.Count)
	}
	for _, sp := range s.Spans {
		m := promName(namespace, "span/"+sp.Path+"/seconds")
		if !emit(m) {
			continue
		}
		fmt.Fprintf(ew, "# HELP %s Span %q wall time.\n# TYPE %s summary\n", m, sp.Path, m)
		fmt.Fprintf(ew, "%s_sum %s\n%s_count %d\n", m, promFloat(sp.TotalSeconds), m, sp.Count)
	}
	return ew.err
}

// promName sanitizes a registry name into the Prometheus metric charset
// [a-zA-Z0-9_:], collapsing runs of other characters into one underscore,
// and prefixes the namespace.
func promName(namespace, name string) string {
	var b strings.Builder
	b.Grow(len(namespace) + 1 + len(name))
	if namespace != "" {
		b.WriteString(namespace)
		b.WriteByte('_')
	}
	lastUnderscore := true // swallow a leading separator run
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == ':':
			b.WriteRune(c)
			lastUnderscore = false
		default:
			if !lastUnderscore {
				b.WriteByte('_')
				lastUnderscore = true
			}
		}
	}
	return strings.TrimSuffix(b.String(), "_")
}

// promFloat renders a float in the exposition format (shortest round-trip
// representation; Prometheus accepts Go's 'g' forms).
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// errWriter latches the first write error so the render loop needs no
// per-line error plumbing.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return len(p), nil
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
	}
	return n, err
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
