package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Progress is one progress report from a long-running stage.
type Progress struct {
	// Stage names the pipeline phase ("characterize", "fit/alpha", ...).
	Stage string
	// Done and Total count work units; Total ≤ 0 means unknown.
	Done, Total int64
	// Elapsed is the wall time since the stage started.
	Elapsed time.Duration
	// ETA is the projected remaining time at the current rate; negative
	// when unknown (no progress yet, or Total unknown).
	ETA time.Duration
	// Rate is work units per second since the stage started.
	Rate float64
	// Final marks the last report of the stage (Done == Total or the stage
	// was explicitly finished).
	Final bool
}

// ProgressFunc consumes progress reports. Implementations must be safe for
// concurrent calls; the tracker throttles, so calls are infrequent.
type ProgressFunc func(Progress)

// Tracker turns high-frequency Add calls into throttled ProgressFunc
// reports with rate and ETA attached. A nil *Tracker accepts all calls and
// does nothing, so stages can be instrumented unconditionally.
type Tracker struct {
	fn       ProgressFunc
	stage    string
	total    int64
	start    time.Time
	minGap   time.Duration
	done     atomic.Int64
	lastEmit atomic.Int64 // ns since start of last emission
	finished atomic.Bool
}

// NewTracker starts a progress tracker for one stage. fn may be nil, in
// which case the returned tracker is nil (the no-op). minGap throttles
// emissions; ≤ 0 selects 200 ms.
func NewTracker(fn ProgressFunc, stage string, total int64, minGap time.Duration) *Tracker {
	if fn == nil {
		return nil
	}
	if minGap <= 0 {
		minGap = 200 * time.Millisecond
	}
	return &Tracker{fn: fn, stage: stage, total: total, start: time.Now(), minGap: minGap}
}

// Add records n completed work units, emitting a throttled report.
// No-op on a nil tracker.
func (t *Tracker) Add(n int64) {
	if t == nil {
		return
	}
	done := t.done.Add(n)
	now := time.Since(t.start)
	if t.total > 0 && done >= t.total {
		t.Finish()
		return
	}
	last := t.lastEmit.Load()
	if now.Nanoseconds()-last < t.minGap.Nanoseconds() {
		return
	}
	if !t.lastEmit.CompareAndSwap(last, now.Nanoseconds()) {
		return // another goroutine is emitting
	}
	t.fn(t.report(done, now, false))
}

// Finish emits the final report (idempotent). No-op on a nil tracker.
func (t *Tracker) Finish() {
	if t == nil || !t.finished.CompareAndSwap(false, true) {
		return
	}
	t.fn(t.report(t.done.Load(), time.Since(t.start), true))
}

func (t *Tracker) report(done int64, elapsed time.Duration, final bool) Progress {
	p := Progress{
		Stage:   t.stage,
		Done:    done,
		Total:   t.total,
		Elapsed: elapsed,
		ETA:     -1,
		Final:   final,
	}
	if sec := elapsed.Seconds(); sec > 0 {
		p.Rate = float64(done) / sec
	}
	if final {
		p.ETA = 0
	} else if t.total > 0 && done > 0 {
		p.ETA = time.Duration(float64(elapsed) / float64(done) * float64(t.total-done))
	}
	return p
}

// Printer returns a ProgressFunc that renders reports as single lines on w
// (percentage, rate, ETA) — the live stderr view behind serflow -progress.
func Printer(w io.Writer) ProgressFunc {
	var mu sync.Mutex
	return func(p Progress) {
		mu.Lock()
		defer mu.Unlock()
		var b strings.Builder
		fmt.Fprintf(&b, "[%-18s] ", p.Stage)
		if p.Total > 0 {
			fmt.Fprintf(&b, "%d/%d (%.1f%%)", p.Done, p.Total, 100*float64(p.Done)/float64(p.Total))
		} else {
			fmt.Fprintf(&b, "%d", p.Done)
		}
		if p.Rate > 0 {
			fmt.Fprintf(&b, "  %s/s", formatRate(p.Rate))
		}
		if p.Final {
			fmt.Fprintf(&b, "  done in %s", p.Elapsed.Round(time.Millisecond))
		} else if p.ETA >= 0 {
			fmt.Fprintf(&b, "  ETA %s", p.ETA.Round(time.Second))
		}
		fmt.Fprintln(w, b.String())
	}
}

func formatRate(r float64) string {
	switch {
	case r >= 1e6:
		return fmt.Sprintf("%.1fM", r/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.1fk", r/1e3)
	default:
		return fmt.Sprintf("%.1f", r)
	}
}
