package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"strconv"
	"strings"
)

// Exposition-format line shapes accepted by LintExposition.
var (
	promNameRe   = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)$`)
	promLeRe     = regexp.MustCompile(`le="([^"]+)"`)
)

// LintExposition validates a Prometheus text-format payload the way the
// telemetry CI gate needs: every metric family has a `# HELP` and `# TYPE`
// line (HELP first) before its first sample, family names are legal and
// never redeclared, histogram `_bucket` series are cumulative (monotone
// non-decreasing in `le` order) within each labelset, end at `le="+Inf"`,
// and agree with the matching labelset's `_count`. Labeled families (one
// histogram per tenant, say) carry an independent cumulative sequence per
// labelset — the checks key on family plus the non-le labels, so a fresh
// labelset legitimately resets the le sequence. The first violation is
// returned as an error naming the line; a clean payload returns nil.
func LintExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	help := map[string]bool{}
	typ := map[string]string{}
	// Histogram state keys: family + "\x00" + non-le labels, one cumulative
	// sequence per labelset.
	lastBucket := map[string]float64{} // labelset → last cumulative bucket count
	lastLe := map[string]float64{}     // labelset → last le bound (+Inf = Inf)
	sawInf := map[string]bool{}
	counts := map[string]float64{}   // labelset → _count sample
	histSets := map[string]string{}  // labelset key → family (for final checks)
	histFams := map[string]bool{}    // family → saw any bucket sample
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) < 3 || (f[1] != "HELP" && f[1] != "TYPE") {
				continue // free-form comment
			}
			name := f[2]
			if !promNameRe.MatchString(name) {
				return fmt.Errorf("line %d: illegal metric name %q", lineNo, name)
			}
			switch f[1] {
			case "HELP":
				if help[name] {
					return fmt.Errorf("line %d: duplicate HELP for %q", lineNo, name)
				}
				help[name] = true
			case "TYPE":
				if len(f) < 4 {
					return fmt.Errorf("line %d: TYPE without a type", lineNo)
				}
				if !help[name] {
					return fmt.Errorf("line %d: TYPE %q without a preceding HELP", lineNo, name)
				}
				if _, dup := typ[name]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				typ[name] = f[3]
			}
			continue
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("line %d: unparseable sample %q", lineNo, line)
		}
		series, labels, valStr := m[1], m[2], m[3]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return fmt.Errorf("line %d: bad sample value %q: %v", lineNo, valStr, err)
		}
		family := series
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(series, suffix); base != series && typ[base] != "" {
				family = base
				break
			}
		}
		if typ[family] == "" {
			return fmt.Errorf("line %d: sample %q has no TYPE declaration", lineNo, series)
		}
		if typ[family] == "histogram" && strings.HasSuffix(series, "_bucket") {
			le := promLeRe.FindStringSubmatch(labels)
			if le == nil {
				return fmt.Errorf("line %d: histogram bucket without an le label", lineNo)
			}
			key := family + "\x00" + stripLe(labels)
			histSets[key] = family
			histFams[family] = true
			var bound float64
			if le[1] == "+Inf" {
				bound = math.Inf(1)
				sawInf[key] = true
			} else if bound, err = strconv.ParseFloat(le[1], 64); err != nil {
				return fmt.Errorf("line %d: bad le bound %q: %v", lineNo, le[1], err)
			}
			if prev, ok := lastLe[key]; ok && bound <= prev {
				return fmt.Errorf("line %d: %s buckets out of le order (%g after %g)", lineNo, family, bound, prev)
			}
			if prev, ok := lastBucket[key]; ok && val < prev {
				return fmt.Errorf("line %d: %s cumulative bucket decreases (%g after %g)", lineNo, family, val, prev)
			}
			lastLe[key] = bound
			lastBucket[key] = val
		}
		if strings.HasSuffix(series, "_count") {
			counts[family+"\x00"+stripLe(labels)] = val
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("reading exposition: %w", err)
	}
	for family, t := range typ {
		if t == "histogram" && !histFams[family] {
			return fmt.Errorf("histogram %s has no le=\"+Inf\" bucket", family)
		}
	}
	for key, family := range histSets {
		if !sawInf[key] {
			return fmt.Errorf("histogram %s has no le=\"+Inf\" bucket", family)
		}
		if c, ok := counts[key]; ok && c != lastBucket[key] {
			return fmt.Errorf("histogram %s: +Inf bucket %g != _count %g", family, lastBucket[key], c)
		}
	}
	return nil
}

// stripLe removes the `le="..."` pair from a label suffix, returning the
// canonical non-le labelset used to key per-labelset histogram state.
// Splitting on commas assumes label values carry no commas — true for the
// renderer's own output, where this linter runs.
func stripLe(labels string) string {
	if labels == "" {
		return ""
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	parts := strings.Split(inner, ",")
	keep := parts[:0]
	for _, p := range parts {
		if !strings.HasPrefix(strings.TrimSpace(p), "le=") {
			keep = append(keep, strings.TrimSpace(p))
		}
	}
	if len(keep) == 0 {
		return ""
	}
	return "{" + strings.Join(keep, ",") + "}"
}
