package finfet

import (
	"math"
	"testing"
	"testing/quick"

	"finser/internal/circuit"
)

func nparams() Params { return ParamsFor(Default14nmSOI(), NChannel, 1) }
func pparams() Params { return ParamsFor(Default14nmSOI(), PChannel, 1) }

func TestPolarityString(t *testing.T) {
	if NChannel.String() != "nfet" || PChannel.String() != "pfet" {
		t.Error("polarity names wrong")
	}
}

func TestNMOSRegions(t *testing.T) {
	p := nparams()
	// Off: Vgs = 0 → leakage only.
	off := DrainCurrent(p, 0, 0.8, 0)
	if off <= 0 || off > 1e-9 {
		t.Errorf("off-state current = %v, want small positive leakage", off)
	}
	// On: Vgs = Vds = 0.8 → tens of µA.
	on := DrainCurrent(p, 0.8, 0.8, 0)
	if on < 10e-6 || on > 200e-6 {
		t.Errorf("on current = %v A, want ~50 µA", on)
	}
	if on/off < 1e3 {
		t.Errorf("on/off ratio = %v, want > 1e3", on/off)
	}
}

func TestNMOSSubthresholdSlope(t *testing.T) {
	p := nparams()
	// In subthreshold, Id should change ~10× per n·φt·ln10 ≈ 68.5 mV.
	i1 := DrainCurrent(p, 0.10, 0.8, 0)
	i2 := DrainCurrent(p, 0.10+p.N*ThermalVoltage*math.Ln10, 0.8, 0)
	ratio := i2 / i1
	if ratio < 8 || ratio > 12 {
		t.Errorf("subthreshold decade ratio = %v, want ≈ 10", ratio)
	}
}

func TestNMOSSaturation(t *testing.T) {
	p := nparams()
	// Beyond Vdsat, current grows only via λ.
	iA := DrainCurrent(p, 0.8, 0.6, 0)
	iB := DrainCurrent(p, 0.8, 0.8, 0)
	if iB <= iA {
		t.Error("channel-length modulation should keep dId/dVds > 0")
	}
	if (iB-iA)/iA > 0.1 {
		t.Errorf("saturation slope too steep: %v", (iB-iA)/iA)
	}
	// Triode: strong Vds dependence at small Vds.
	iT1 := DrainCurrent(p, 0.8, 0.05, 0)
	iT2 := DrainCurrent(p, 0.8, 0.10, 0)
	if iT2 < 1.7*iT1 {
		t.Errorf("triode region not ~linear in Vds: %v vs %v", iT1, iT2)
	}
}

func TestIdAntisymmetry(t *testing.T) {
	// Swapping drain and source negates the current (symmetric device).
	p := nparams()
	f := func(vgRaw, vaRaw, vbRaw float64) bool {
		vg := math.Mod(math.Abs(vgRaw), 1.2)
		va := math.Mod(math.Abs(vaRaw), 1.2)
		vb := math.Mod(math.Abs(vbRaw), 1.2)
		fwd := DrainCurrent(p, vg, va, vb)
		rev := DrainCurrent(p, vg, vb, va)
		scale := math.Max(math.Abs(fwd), 1e-15)
		return math.Abs(fwd+rev)/scale < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPMOSMirrorsNMOS(t *testing.T) {
	n := nparams()
	pp := pparams()
	pp.Ispec = n.Ispec // equal strength for the mirror check
	// PMOS with all voltages negated must carry the negated NMOS current.
	for _, v := range [][3]float64{{0.8, 0.8, 0}, {0.4, 0.6, 0.1}, {0, 0.8, 0}} {
		in := DrainCurrent(n, v[0], v[1], v[2])
		ip := DrainCurrent(pp, -v[0], -v[1], -v[2])
		if math.Abs(in+ip) > 1e-12+1e-9*math.Abs(in) {
			t.Errorf("mirror broken at %v: n=%v p=%v", v, in, ip)
		}
	}
}

func TestPMOSPullUpDirection(t *testing.T) {
	// PMOS pull-up: source at Vdd, gate low, drain below Vdd → current must
	// flow INTO the drain node (negative by our convention).
	p := pparams()
	id := DrainCurrent(p, 0, 0.2, 0.8)
	if id >= 0 {
		t.Errorf("conducting PMOS drain current = %v, want negative", id)
	}
	// Off PMOS: gate at Vdd.
	idOff := DrainCurrent(p, 0.8, 0.2, 0.8)
	if math.Abs(idOff) > 1e-9 {
		t.Errorf("off PMOS current = %v", idOff)
	}
}

func TestVthShiftWeakensDevice(t *testing.T) {
	p := nparams()
	strong := DrainCurrent(p, 0.8, 0.8, 0)
	p.Vth += 0.06
	weak := DrainCurrent(p, 0.8, 0.8, 0)
	if weak >= strong {
		t.Error("raising Vth should reduce on current")
	}
}

func TestNFinsScaling(t *testing.T) {
	p1 := nparams()
	p2 := nparams()
	p2.NFins = 2
	r := DrainCurrent(p2, 0.8, 0.8, 0) / DrainCurrent(p1, 0.8, 0.8, 0)
	if math.Abs(r-2) > 1e-9 {
		t.Errorf("2-fin / 1-fin current = %v, want 2", r)
	}
	// NFins < 1 is clamped to 1.
	p0 := nparams()
	p0.NFins = 0
	if DrainCurrent(p0, 0.8, 0.8, 0) != DrainCurrent(p1, 0.8, 0.8, 0) {
		t.Error("NFins=0 should behave as 1")
	}
}

func TestInverterVTC(t *testing.T) {
	// Resistively-loaded checks are not enough: build a real CMOS inverter
	// and verify rail-to-rail transfer with a transition near mid-rail.
	tech := Default14nmSOI()
	vdd := 0.8
	build := func(vin float64) (float64, error) {
		c := circuit.New()
		in := c.Node("in")
		out := c.Node("out")
		vddN := c.Node("vdd")
		c.AddVSource("vdd", vddN, circuit.Ground, circuit.DC(vdd))
		c.AddVSource("vin", in, circuit.Ground, circuit.DC(vin))
		c.AddDevice(NewTransistor("mp", ParamsFor(tech, PChannel, 1), out, in, vddN))
		c.AddDevice(NewTransistor("mn", ParamsFor(tech, NChannel, 1), out, in, circuit.Ground))
		sol, err := c.OperatingPoint(map[circuit.Node]float64{out: vdd - vin})
		if err != nil {
			return 0, err
		}
		return sol[out], nil
	}
	lo, err := build(vdd)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := build(0)
	if err != nil {
		t.Fatal(err)
	}
	if lo > 0.05*vdd {
		t.Errorf("inverter output low = %v", lo)
	}
	if hi < 0.95*vdd {
		t.Errorf("inverter output high = %v", hi)
	}
	// Monotone decreasing VTC.
	prev := math.Inf(1)
	for vin := 0.0; vin <= vdd+1e-9; vin += 0.05 {
		v, err := build(vin)
		if err != nil {
			t.Fatalf("vin=%v: %v", vin, err)
		}
		if v > prev+1e-6 {
			t.Fatalf("VTC not monotone at vin=%v", vin)
		}
		prev = v
	}
}

func TestTechnologyDerived(t *testing.T) {
	tech := Default14nmSOI()
	// Paper §3.3: transit time > 10 fs at Vdd = 1 V for these dimensions.
	tau := tech.TransitTime(1.0)
	if math.Abs(tau-1e-14) > 2e-15 {
		t.Errorf("transit time at 1 V = %v s, want ≈ 10 fs", tau)
	}
	// τ scales as 1/Vds.
	if r := tech.TransitTime(0.5) / tau; math.Abs(r-2) > 1e-9 {
		t.Errorf("transit-time scaling = %v, want 2", r)
	}
	if tech.FinVolumeNm3() != 10*30*20 {
		t.Errorf("fin volume = %v", tech.FinVolumeNm3())
	}
	if tech.EffectiveWidthNm() != 70 {
		t.Errorf("effective width = %v", tech.EffectiveWidthNm())
	}
}

func TestTransitTimePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Vds <= 0")
		}
	}()
	Default14nmSOI().TransitTime(0)
}

func TestVthSample(t *testing.T) {
	tech := Default14nmSOI()
	if got := tech.VthSample(0.3, 1, 0); got != 0.3 {
		t.Errorf("zero-z sample = %v", got)
	}
	if got := tech.VthSample(0.3, 1, 1); math.Abs(got-(0.3+tech.SigmaVth)) > 1e-12 {
		t.Errorf("one-sigma sample = %v", got)
	}
	// Multi-fin averaging shrinks sigma by √n.
	got := tech.VthSample(0.3, 4, 1)
	if math.Abs(got-(0.3+tech.SigmaVth/2)) > 1e-12 {
		t.Errorf("4-fin sample = %v, want nominal + σ/2", got)
	}
	// nFins < 1 clamps.
	if tech.VthSample(0.3, 0, 1) != tech.VthSample(0.3, 1, 1) {
		t.Error("nFins clamp broken")
	}
}
