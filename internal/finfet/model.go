package finfet

import (
	"math"

	"finser/internal/circuit"
)

// Polarity distinguishes n- and p-channel devices.
type Polarity int

const (
	// NChannel is an NMOS FinFET.
	NChannel Polarity = iota
	// PChannel is a PMOS FinFET.
	PChannel
)

// String implements fmt.Stringer.
func (p Polarity) String() string {
	if p == NChannel {
		return "nfet"
	}
	return "pfet"
}

// Params are the compact-model parameters of one transistor instance.
// Vth carries any process-variation shift already applied.
type Params struct {
	Polarity Polarity
	Vth      float64 // threshold voltage magnitude, V
	Ispec    float64 // specific current per fin, A
	N        float64 // subthreshold slope factor
	Lambda   float64 // channel-length modulation, 1/V
	NFins    int
	// Phit is the thermal voltage kT/q; zero selects the 300 K value.
	Phit float64
}

// thermalVoltage returns the effective kT/q for the instance.
func (p Params) thermalVoltage() float64 {
	if p.Phit > 0 {
		return p.Phit
	}
	return ThermalVoltage
}

// ParamsFor builds nominal instance parameters from a technology card,
// including its junction temperature.
func ParamsFor(t Technology, pol Polarity, nFins int) Params {
	p := Params{Polarity: pol, N: t.SlopeN, Lambda: t.Lambda, NFins: nFins,
		Phit: t.ThermalVoltageAt()}
	if pol == NChannel {
		p.Vth, p.Ispec = t.VthN, t.IspecN
	} else {
		p.Vth, p.Ispec = t.VthP, t.IspecP
	}
	return p
}

// ekvF is the EKV interpolation function F(u) = ln²(1+e^(u/2)), smooth from
// weak to strong inversion.
func ekvF(u float64) float64 {
	// Guard the exponential for large |u|.
	if u > 80 {
		return u * u / 4
	}
	l := math.Log1p(math.Exp(u / 2))
	return l * l
}

// DrainCurrent returns the drain current of the device for terminal
// voltages (gate, drain, source) referenced to ground. Positive current
// flows drain→source for NMOS and source→drain for PMOS (i.e. the sign
// convention is "current into the drain terminal" for NMOS and out of it
// for PMOS).
func DrainCurrent(p Params, vg, vd, vs float64) float64 {
	sign := 1.0
	if p.Polarity == PChannel {
		// Mirror: a PMOS with voltages v behaves as an NMOS at -v.
		vg, vd, vs = -vg, -vd, -vs
		sign = -1
	}
	// Source-referenced symmetric handling: the lower terminal is the
	// effective source.
	swap := false
	if vd < vs {
		vd, vs = vs, vd
		swap = true
	}
	vgs := vg - vs
	vds := vd - vs
	nphi := p.N * p.thermalVoltage()
	uf := (vgs - p.Vth) / nphi
	ur := (vgs - p.Vth - p.N*vds) / nphi
	id := p.Ispec * float64(max(p.NFins, 1)) * (ekvF(uf) - ekvF(ur)) * (1 + p.Lambda*vds)
	if swap {
		id = -id
	}
	return sign * id
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Transistor is a three-terminal FinFET circuit device (SOI: no body
// terminal; the body floats on the BOX).
type Transistor struct {
	name    string
	D, G, S circuit.Node
	P       Params
}

// NewTransistor builds a FinFET instance for the circuit solver.
func NewTransistor(name string, p Params, d, g, s circuit.Node) *Transistor {
	return &Transistor{name: name, D: d, G: g, S: s, P: p}
}

// Name implements circuit.Device.
func (t *Transistor) Name() string { return t.name }

// Stamp implements circuit.Device: it evaluates the drain current and its
// numerical Jacobian at the current Newton iterate and stamps the
// linearized companion. Central differences on a smooth model are accurate
// to ~1e-9 and keep the stamping free of hand-derived sign errors.
func (t *Transistor) Stamp(s *circuit.Stamper) {
	vg, vd, vs := s.V(t.G), s.V(t.D), s.V(t.S)
	id := DrainCurrent(t.P, vg, vd, vs)
	const h = 1e-7
	gg := (DrainCurrent(t.P, vg+h, vd, vs) - DrainCurrent(t.P, vg-h, vd, vs)) / (2 * h)
	gd := (DrainCurrent(t.P, vg, vd+h, vs) - DrainCurrent(t.P, vg, vd-h, vs)) / (2 * h)
	gs := (DrainCurrent(t.P, vg, vd, vs+h) - DrainCurrent(t.P, vg, vd, vs-h)) / (2 * h)
	// Positive id means conventional current flows from drain terminal to
	// source terminal through the channel (for PMOS the model returns
	// negative id in conduction, which reverses the flow direction here).
	s.AddNonlinearCurrent(t.D, t.S, id,
		[]circuit.Node{t.G, t.D, t.S}, []float64{gg, gd, gs})
}
