package finfet

import (
	"math"
	"testing"
	"testing/quick"
)

// Property: Id is monotone non-decreasing in Vgs for NMOS at fixed Vds>0.
func TestIdMonotoneInVgs(t *testing.T) {
	p := nparams()
	f := func(raw1, raw2, rawD float64) bool {
		vg1 := math.Abs(math.Mod(raw1, 1.2))
		vg2 := math.Abs(math.Mod(raw2, 1.2))
		vd := 0.05 + math.Abs(math.Mod(rawD, 1.0))
		if vg1 > vg2 {
			vg1, vg2 = vg2, vg1
		}
		i1 := DrainCurrent(p, vg1, vd, 0)
		i2 := DrainCurrent(p, vg2, vd, 0)
		return i2 >= i1-1e-18
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: Id is monotone non-decreasing in Vds for NMOS at fixed Vgs.
func TestIdMonotoneInVds(t *testing.T) {
	p := nparams()
	f := func(rawG, raw1, raw2 float64) bool {
		vg := math.Abs(math.Mod(rawG, 1.2))
		vd1 := math.Abs(math.Mod(raw1, 1.2))
		vd2 := math.Abs(math.Mod(raw2, 1.2))
		if vd1 > vd2 {
			vd1, vd2 = vd2, vd1
		}
		i1 := DrainCurrent(p, vg, vd1, 0)
		i2 := DrainCurrent(p, vg, vd2, 0)
		return i2 >= i1-1e-18
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: the model is C¹-smooth enough for Newton — central-difference
// derivatives computed at two nearby scales agree (no kinks).
func TestIdSmoothness(t *testing.T) {
	p := nparams()
	f := func(rawG, rawD float64) bool {
		vg := math.Abs(math.Mod(rawG, 1.2))
		vd := math.Abs(math.Mod(rawD, 1.2))
		d := func(h float64) float64 {
			return (DrainCurrent(p, vg+h, vd, 0) - DrainCurrent(p, vg-h, vd, 0)) / (2 * h)
		}
		g1 := d(1e-6)
		g2 := d(1e-7)
		scale := math.Max(math.Abs(g1), 1e-12)
		return math.Abs(g1-g2)/scale < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: gm ≥ 0 over the full bias plane — NMOS current never falls as
// the gate rises, and PMOS conduction magnitude never falls as the gate
// drops.
func TestTransconductanceNonNegative(t *testing.T) {
	const h = 1e-6
	n := nparams()
	for vg := -0.2; vg <= 1.4; vg += 0.05 {
		for vd := 0.0; vd <= 1.2; vd += 0.1 {
			gm := (DrainCurrent(n, vg+h, vd, 0) - DrainCurrent(n, vg-h, vd, 0)) / (2 * h)
			if gm < -1e-12 {
				t.Fatalf("NMOS negative gm at vg=%v vd=%v: %v", vg, vd, gm)
			}
		}
	}
	p := pparams()
	for vg := -0.2; vg <= 1.4; vg += 0.05 {
		for vd := 0.0; vd <= 1.2; vd += 0.1 {
			// PMOS: source at 1.2 V; |Id| must not increase with rising vg.
			dmag := (math.Abs(DrainCurrent(p, vg+h, vd, 1.2)) -
				math.Abs(DrainCurrent(p, vg-h, vd, 1.2))) / (2 * h)
			if dmag > 1e-12 {
				t.Fatalf("PMOS |Id| increases with gate at vg=%v vd=%v: %v", vg, vd, dmag)
			}
		}
	}
}

// Zero-bias current must vanish: no spurious source at Vds = 0.
func TestZeroBiasZeroCurrent(t *testing.T) {
	for _, p := range []Params{nparams(), pparams()} {
		for vg := 0.0; vg <= 1.2; vg += 0.1 {
			if id := DrainCurrent(p, vg, 0.5, 0.5); math.Abs(id) > 1e-15 {
				t.Fatalf("%v: Id(Vds=0) = %v at vg=%v", p.Polarity, id, vg)
			}
		}
	}
}
