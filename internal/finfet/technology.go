// Package finfet provides the SOI FinFET compact device model and the
// 14 nm-class technology parameters the flow simulates against. The I–V
// model is EKV-style: a single smooth expression continuous from
// subthreshold through saturation, which keeps the Newton solver robust and
// reproduces the cell behaviours the paper's SPICE level needs — static
// bistability, regenerative flipping, and the Vdd dependence of the
// critical charge. Threshold-voltage process variation enters as a
// per-transistor Vth shift sampled from a normal distribution, as in the
// paper's 1000-sample Monte Carlo.
package finfet

import "math"

// ThermalVoltage is kT/q at 300 K, in volts.
const ThermalVoltage = 0.025852

// Technology bundles the 14 nm SOI FinFET parameters used across the flow.
// The values are documented approximations of the paper's references
// ([28] Wang et al. 14 nm SOI 6T-SRAM study, [29] PTM); see DESIGN.md §5.
type Technology struct {
	Name string

	// Geometry (nm).
	FinWidthNm   float64 // fin (body) thickness — the paper's wFin
	FinHeightNm  float64 // fin height above the BOX
	GateLengthNm float64 // channel length — the paper's LFin
	FinPitchNm   float64 // fin-to-fin pitch
	GatePitchNm  float64 // contacted poly pitch
	BoxDepthNm   float64 // buried-oxide thickness under the fins

	// Electrical.
	VddNominal float64 // nominal supply, V
	VthN       float64 // NMOS threshold, V
	VthP       float64 // PMOS threshold magnitude, V
	SlopeN     float64 // subthreshold slope factor n (SS = n·φt·ln10)
	Lambda     float64 // channel-length modulation, 1/V
	IspecN     float64 // NMOS specific current per fin, A
	IspecP     float64 // PMOS specific current per fin, A
	NodeCapF   float64 // lumped storage-node capacitance, F

	// Variation.
	SigmaVth float64 // per-fin threshold-voltage standard deviation, V

	// Transport.
	ElectronMobility float64 // effective µe, cm²/(V·s), for Eq. 2's transit time

	// TemperatureK is the junction temperature. Zero means 300 K.
	TemperatureK float64

	// Per-transistor fin counts for the 6T cell (0 means 1). Upsized
	// pull-downs (FinsPD = 2) are the common read-stability variant; the
	// layout places the extra fins at fin pitch and the compact model
	// scales drive accordingly, keeping the two levels consistent.
	FinsPU, FinsPD, FinsPG int
}

// PUFins returns the pull-up fin count (≥ 1).
func (t Technology) PUFins() int { return clampFins(t.FinsPU) }

// PDFins returns the pull-down fin count (≥ 1).
func (t Technology) PDFins() int { return clampFins(t.FinsPD) }

// PGFins returns the pass-gate fin count (≥ 1).
func (t Technology) PGFins() int { return clampFins(t.FinsPG) }

func clampFins(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// Temperature returns the junction temperature in kelvin (300 K default).
func (t Technology) Temperature() float64 {
	if t.TemperatureK <= 0 {
		return 300
	}
	return t.TemperatureK
}

// ThermalVoltageAt returns kT/q at the card's temperature.
func (t Technology) ThermalVoltageAt() float64 {
	return ThermalVoltage * t.Temperature() / 300
}

// AtTemperature returns a copy of the card adjusted to the given junction
// temperature with first-order silicon scaling: threshold voltages drop
// ~0.8 mV/K, and mobility (hence specific current and the Eq. 2 transit
// time) follows the phonon-limited (T/300)^-1.5 law. Hot silicon is both
// weaker and slower — and, because the thermal voltage grows, leakier.
func (t Technology) AtTemperature(tempK float64) Technology {
	if tempK <= 0 {
		tempK = 300
	}
	out := t
	out.TemperatureK = tempK
	dT := tempK - 300
	const vthTempCo = -0.0008 // V/K
	out.VthN = t.VthN + vthTempCo*dT
	out.VthP = t.VthP + vthTempCo*dT
	mobScale := math.Pow(tempK/300, -1.5)
	out.ElectronMobility = t.ElectronMobility * mobScale
	out.IspecN = t.IspecN * mobScale
	out.IspecP = t.IspecP * mobScale
	return out
}

// Default14nmSOI returns the technology card used throughout the
// reproduction.
func Default14nmSOI() Technology {
	return Technology{
		Name:             "soi-finfet-14nm",
		FinWidthNm:       10,
		FinHeightNm:      30,
		GateLengthNm:     20,
		FinPitchNm:       48,
		GatePitchNm:      90,
		BoxDepthNm:       25,
		VddNominal:       0.8,
		VthN:             0.30,
		VthP:             0.30,
		SlopeN:           1.15,
		Lambda:           0.08,
		IspecN:           6.0e-7,
		IspecP:           3.6e-7,
		NodeCapF:         1.2e-16, // 0.12 fF
		SigmaVth:         0.045,
		ElectronMobility: 400,
	}
}

// TransitTime returns the paper's Eq. 2: τ = L²fin/(µe·Vds), the average
// time for an electron to drift from source to drain, in seconds. This is
// the width of the rectangular radiation current pulse.
func (t Technology) TransitTime(vds float64) float64 {
	if vds <= 0 {
		panic("finfet: transit time needs positive Vds")
	}
	lCm := t.GateLengthNm * 1e-7
	return lCm * lCm / (t.ElectronMobility * vds)
}

// FinVolumeNm3 returns the silicon volume of a single fin body in nm³.
func (t Technology) FinVolumeNm3() float64 {
	return t.FinWidthNm * t.FinHeightNm * t.GateLengthNm
}

// EffectiveWidthNm returns the electrical width of one fin:
// two sidewalls plus the top.
func (t Technology) EffectiveWidthNm() float64 {
	return 2*t.FinHeightNm + t.FinWidthNm
}

// VthSample draws an effective threshold voltage for a transistor with
// nFins fins given a standard-normal variate z. Fins average, so the
// per-transistor sigma shrinks with √nFins.
func (t Technology) VthSample(nominal float64, nFins int, z float64) float64 {
	if nFins < 1 {
		nFins = 1
	}
	return nominal + t.SigmaVth/math.Sqrt(float64(nFins))*z
}
