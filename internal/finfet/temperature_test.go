package finfet

import (
	"math"
	"testing"
)

func TestTemperatureDefaults(t *testing.T) {
	tech := Default14nmSOI()
	if tech.Temperature() != 300 {
		t.Errorf("default temperature = %v", tech.Temperature())
	}
	if math.Abs(tech.ThermalVoltageAt()-ThermalVoltage) > 1e-12 {
		t.Errorf("default φt = %v", tech.ThermalVoltageAt())
	}
	// AtTemperature(0) clamps to 300 K and is a no-op on electricals.
	same := tech.AtTemperature(0)
	if same.VthN != tech.VthN || same.IspecN != tech.IspecN {
		t.Error("AtTemperature(0) should not change the card")
	}
}

func TestAtTemperatureScaling(t *testing.T) {
	cold := Default14nmSOI()
	hot := cold.AtTemperature(375) // +75 K
	if hot.Temperature() != 375 {
		t.Errorf("temperature = %v", hot.Temperature())
	}
	// Vth drops 0.8 mV/K.
	if want := cold.VthN - 0.06; math.Abs(hot.VthN-want) > 1e-9 {
		t.Errorf("hot VthN = %v, want %v", hot.VthN, want)
	}
	// Mobility and specific currents follow (T/300)^-1.5.
	scale := math.Pow(375.0/300, -1.5)
	if math.Abs(hot.ElectronMobility-cold.ElectronMobility*scale) > 1e-9 {
		t.Errorf("hot mobility = %v", hot.ElectronMobility)
	}
	if math.Abs(hot.IspecN-cold.IspecN*scale)/cold.IspecN > 1e-12 {
		t.Errorf("hot IspecN = %v", hot.IspecN)
	}
	// Thermal voltage grows linearly.
	if want := ThermalVoltage * 375 / 300; math.Abs(hot.ThermalVoltageAt()-want) > 1e-12 {
		t.Errorf("hot φt = %v", hot.ThermalVoltageAt())
	}
	// Slower carriers ⇒ longer transit time (wider radiation pulse).
	if hot.TransitTime(0.8) <= cold.TransitTime(0.8) {
		t.Error("hot transit time should be longer")
	}
}

func TestTemperatureDeviceBehaviour(t *testing.T) {
	cold := ParamsFor(Default14nmSOI(), NChannel, 1)
	hot := ParamsFor(Default14nmSOI().AtTemperature(400), NChannel, 1)
	// Subthreshold leakage rises steeply with temperature (lower Vth and
	// larger φt together).
	leakCold := DrainCurrent(cold, 0, 0.8, 0)
	leakHot := DrainCurrent(hot, 0, 0.8, 0)
	if leakHot < 5*leakCold {
		t.Errorf("hot leakage %v not ≫ cold %v", leakHot, leakCold)
	}
	// Strong-inversion drive drops with temperature (mobility dominates).
	onCold := DrainCurrent(cold, 0.8, 0.8, 0)
	onHot := DrainCurrent(hot, 0.8, 0.8, 0)
	if onHot >= onCold {
		t.Errorf("hot drive %v not below cold %v", onHot, onCold)
	}
}
