package transport

import (
	"math"
	"testing"

	"finser/internal/geom"
	"finser/internal/phys"
	"finser/internal/rng"
)

// testFin is a 14nm-class fin: 10 nm wide (X), 20 nm long (Y), 30 nm tall (Z).
func testFin() geom.AABB {
	return geom.BoxAt(geom.V(0, 0, 0), geom.V(10, 20, 30))
}

func detConfig() Config {
	c := DefaultConfig()
	c.Straggling = false
	c.FanoFluctuation = false
	return c
}

func TestTraceDeterministicCrossing(t *testing.T) {
	fin := testFin()
	// 1 MeV alpha across the 10 nm width.
	ray := geom.Ray{Origin: geom.V(-5, 10, 15), Dir: geom.V(1, 0, 0)}
	deps := Trace(detConfig(), phys.Alpha, 1, ray, []geom.AABB{fin}, nil)
	if len(deps) != 1 {
		t.Fatalf("deposits = %d, want 1", len(deps))
	}
	d := deps[0]
	if math.Abs(d.PathNm-10) > 1e-9 {
		t.Errorf("path = %v, want 10", d.PathNm)
	}
	// S(alpha, 1 MeV) ≈ 312 eV/nm → ≈ 3121 eV over 10 nm → ≈ 867 pairs.
	if d.EnergyEV < 2500 || d.EnergyEV > 3800 {
		t.Errorf("deposit = %v eV, want ≈ 3120", d.EnergyEV)
	}
	if math.Abs(d.Pairs-d.EnergyEV/phys.EVPerPair) > 1e-9 {
		t.Errorf("pairs inconsistent with deposit: %v vs %v", d.Pairs, d.EnergyEV/3.6)
	}
}

func TestTraceMiss(t *testing.T) {
	fin := testFin()
	ray := geom.Ray{Origin: geom.V(-5, 100, 15), Dir: geom.V(1, 0, 0)}
	if deps := Trace(detConfig(), phys.Alpha, 1, ray, []geom.AABB{fin}, nil); deps != nil {
		t.Fatalf("expected nil deposits, got %v", deps)
	}
}

func TestTraceZeroEnergy(t *testing.T) {
	fin := testFin()
	ray := geom.Ray{Origin: geom.V(-5, 10, 15), Dir: geom.V(1, 0, 0)}
	if deps := Trace(detConfig(), phys.Alpha, 0, ray, []geom.AABB{fin}, nil); deps != nil {
		t.Fatal("expected no deposits at zero energy")
	}
}

func TestTracePanicsWithoutRNG(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: straggling without rng")
		}
	}()
	cfg := detConfig()
	cfg.Straggling = true
	Trace(cfg, phys.Alpha, 1, geom.Ray{Dir: geom.V(1, 0, 0)}, []geom.AABB{testFin()}, nil)
}

func TestTraceEnergyConservation(t *testing.T) {
	// Total deposited energy never exceeds the particle's kinetic energy,
	// even across many fins with straggling on.
	fins := make([]geom.AABB, 0, 20)
	for i := 0; i < 20; i++ {
		fins = append(fins, geom.BoxAt(geom.V(float64(i)*48, 0, 0), geom.V(10, 20, 30)))
	}
	src := rng.New(1)
	cfg := DefaultConfig()
	for trial := 0; trial < 200; trial++ {
		e := 0.05 + 2*src.Float64() // MeV
		ray := geom.Ray{Origin: geom.V(-5, 10, 15), Dir: geom.V(1, 0, 0)}
		total := 0.0
		for _, d := range Trace(cfg, phys.Alpha, e, ray, fins, src) {
			if d.EnergyEV < 0 || d.Pairs < 0 {
				t.Fatalf("negative deposit %+v", d)
			}
			total += d.EnergyEV
		}
		if total > e*1e6+1e-6 {
			t.Fatalf("deposited %v eV > kinetic %v eV", total, e*1e6)
		}
	}
}

func TestTraceLowEnergyRangesOut(t *testing.T) {
	// A 10 keV alpha ranges out within ~150 nm of silicon: through a
	// full-density 500 nm gap it must not reach the far fin.
	far := geom.BoxAt(geom.V(500, 0, 0), geom.V(10, 20, 30))
	ray := geom.Ray{Origin: geom.V(0, 10, 15), Dir: geom.V(1, 0, 0)}
	cfg := detConfig()
	cfg.InterFinStoppingScale = 1
	deps := Trace(cfg, phys.Alpha, 0.01, ray, []geom.AABB{far}, nil)
	total := 0.0
	for _, d := range deps {
		total += d.EnergyEV
	}
	if total > 1 {
		t.Errorf("ranged-out particle deposited %v eV in far fin", total)
	}
}

func TestTraceGaplessVsLossyGap(t *testing.T) {
	// With lossless gaps the second fin sees a higher-energy (for alphas
	// above the Bragg peak: lower-stopping) particle than with lossy gaps.
	fins := []geom.AABB{
		geom.BoxAt(geom.V(0, 0, 0), geom.V(10, 20, 30)),
		geom.BoxAt(geom.V(2000, 0, 0), geom.V(10, 20, 30)),
	}
	ray := geom.Ray{Origin: geom.V(-1, 10, 15), Dir: geom.V(1, 0, 0)}
	lossless := detConfig()
	lossless.InterFinStoppingScale = 0
	lossy := detConfig()
	lossy.InterFinStoppingScale = 1

	dLossless := Trace(lossless, phys.Alpha, 2, ray, fins, nil)
	dLossy := Trace(lossy, phys.Alpha, 2, ray, fins, nil)
	if len(dLossless) != 2 || len(dLossy) != 2 {
		t.Fatalf("want 2 deposits each, got %d and %d", len(dLossless), len(dLossy))
	}
	// 2 MeV alpha is above the Bragg peak: losing energy in the gap
	// *increases* stopping, so the lossy second deposit is larger.
	if dLossy[1].EnergyEV <= dLossless[1].EnergyEV {
		t.Errorf("lossy gap deposit %v <= lossless %v",
			dLossy[1].EnergyEV, dLossless[1].EnergyEV)
	}
}

func TestTraceOrdering(t *testing.T) {
	fins := []geom.AABB{
		geom.BoxAt(geom.V(100, 0, 0), geom.V(10, 20, 30)),
		geom.BoxAt(geom.V(0, 0, 0), geom.V(10, 20, 30)), // hit first, listed second
	}
	ray := geom.Ray{Origin: geom.V(-1, 10, 15), Dir: geom.V(1, 0, 0)}
	deps := Trace(detConfig(), phys.Alpha, 5, ray, fins, nil)
	if len(deps) != 2 || deps[0].Fin != 1 || deps[1].Fin != 0 {
		t.Fatalf("traversal order wrong: %+v", deps)
	}
}

func TestSecantThroughBox(t *testing.T) {
	src := rng.New(7)
	b := testFin()
	var chordSum float64
	const n = 20000
	for i := 0; i < n; i++ {
		r := SecantThroughBox(src, b)
		if math.Abs(r.Dir.Norm()-1) > 1e-9 {
			t.Fatal("secant direction not unit")
		}
		tIn, tOut, ok := b.Intersect(r)
		if !ok {
			t.Fatal("secant misses its box")
		}
		if tIn > 1e-6 {
			t.Fatalf("secant does not start at entry: tIn=%v", tIn)
		}
		chordSum += tOut - tIn
	}
	// Cauchy mean chord = 4V/S. V=6000, S=2(10·20+10·30+20·30)=2200 → 10.9.
	mean := chordSum / n
	if math.Abs(mean-10.909)/10.909 > 0.05 {
		t.Errorf("mean chord = %v, want ≈ 10.9 (4V/S)", mean)
	}
}

func TestFinYieldDecreasingInEnergy(t *testing.T) {
	// Fig. 4 property: mean pairs decrease with energy above the Bragg peak.
	src := rng.New(11)
	cfg := detConfig()
	fin := testFin()
	yLow := FinYield(cfg, phys.Alpha, 1, fin, 4000, src)
	yHigh := FinYield(cfg, phys.Alpha, 10, fin, 4000, src)
	if yLow.MeanPairs <= yHigh.MeanPairs {
		t.Errorf("alpha yield not decreasing: %v at 1 MeV vs %v at 10 MeV",
			yLow.MeanPairs, yHigh.MeanPairs)
	}
	if yLow.HitFrac < 0.99 {
		t.Errorf("secants should always deposit; hit fraction %v", yLow.HitFrac)
	}
}

func TestFinYieldAlphaExceedsProton(t *testing.T) {
	src := rng.New(13)
	cfg := detConfig()
	fin := testFin()
	for _, e := range []float64{0.5, 1, 5} {
		a := FinYield(cfg, phys.Alpha, e, fin, 3000, src).MeanPairs
		p := FinYield(cfg, phys.Proton, e, fin, 3000, src).MeanPairs
		if a <= p {
			t.Errorf("at %v MeV alpha pairs %v <= proton %v", e, a, p)
		}
	}
}

func TestFinYieldStragglingWidensDistribution(t *testing.T) {
	fin := testFin()
	det := FinYield(detConfig(), phys.Alpha, 1, fin, 3000, rng.New(17))
	fl := DefaultConfig()
	stoch := FinYield(fl, phys.Alpha, 1, fin, 3000, rng.New(17))
	if stoch.StdPairs <= det.StdPairs {
		t.Errorf("straggling should widen the yield spread: %v <= %v",
			stoch.StdPairs, det.StdPairs)
	}
	// Means should agree within a few percent.
	if math.Abs(stoch.MeanPairs-det.MeanPairs)/det.MeanPairs > 0.1 {
		t.Errorf("straggling shifted the mean: %v vs %v", stoch.MeanPairs, det.MeanPairs)
	}
}

func TestBuildFinYieldLUT(t *testing.T) {
	src := rng.New(19)
	energies := []float64{0.5, 1, 2, 5, 10}
	tb, err := BuildFinYieldLUT(detConfig(), phys.Alpha, energies, testFin(), 1000, src)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := tb.Domain()
	if lo != 0.5 || hi != 10 {
		t.Errorf("domain = [%v, %v]", lo, hi)
	}
	// Interpolated value between grid points is positive and between
	// neighbours.
	v := tb.Eval(3)
	if v <= tb.Eval(5) || v >= tb.Eval(2) {
		t.Errorf("LUT not decreasing through 3 MeV: %v", v)
	}
}

func TestBuildFinYieldLUTErrors(t *testing.T) {
	src := rng.New(23)
	if _, err := BuildFinYieldLUT(detConfig(), phys.Alpha, []float64{1}, testFin(), 10, src); err == nil {
		t.Error("single energy accepted")
	}
	if _, err := BuildFinYieldLUT(detConfig(), phys.Alpha, []float64{1, 2}, testFin(), 0, src); err == nil {
		t.Error("zero iterations accepted")
	}
	if _, err := BuildFinYieldLUT(detConfig(), phys.Alpha, []float64{-1, 2}, testFin(), 10, src); err == nil {
		t.Error("negative energy accepted")
	}
}
