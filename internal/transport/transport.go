// Package transport is the library's Geant4 substitute: straight-line
// Monte-Carlo transport of directly ionizing particles (protons,
// alpha-particles) through collections of silicon fin boxes. For each fin a
// track crosses, it integrates the electronic stopping power along the
// chord in sub-steps, applies Bohr energy-loss straggling and Fano
// pair-count fluctuation, and reports the electron–hole pairs generated in
// that fin — the exact quantity the paper extracts from Geant4 and stores
// in LUTs (its Fig. 4).
package transport

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"finser/internal/geom"
	"finser/internal/guard"
	"finser/internal/lut"
	"finser/internal/obs"
	"finser/internal/phys"
	"finser/internal/rng"
	"finser/internal/stats"
)

// Config controls the transport physics fidelity.
type Config struct {
	// Stopping is the electronic stopping model. Nil selects the tabulated
	// NIST-style model.
	Stopping phys.StoppingModel
	// StepNm is the sub-step length for integrating dE/dx along a chord.
	// Zero selects 2 nm, fine enough that S(E) is constant per step for the
	// fin dimensions in play.
	StepNm float64
	// Straggling enables Bohr energy-loss fluctuation per step.
	Straggling bool
	// FanoFluctuation enables sub-Poissonian pair-count fluctuation.
	FanoFluctuation bool
	// InterFinStoppingScale scales silicon stopping for the material between
	// fins (spacer/oxide stack). 0 treats gaps as lossless; 1 as silicon.
	// The default config uses 0.5, a reasonable oxide/nitride average.
	InterFinStoppingScale float64
	// CollectionEfficiency scales generated pairs to collected pairs,
	// covering carriers lost to the BOX or recombined at interfaces.
	// Zero selects 1.0 (the paper assumes full drift collection in the fin).
	CollectionEfficiency float64
	// Metrics, when non-nil, receives transport counters (rays traced, fin
	// intersections, segments deposited). Nil costs nothing.
	Metrics *Metrics
}

// Metrics is the transport layer's observability hook.
type Metrics struct {
	// RaysTraced counts Trace calls (one particle track each).
	RaysTraced *obs.Counter
	// FinIntersections counts fin boxes the traced rays crossed.
	FinIntersections *obs.Counter
	// SegmentsDeposited counts fin chords that actually deposited energy
	// (intersections can range out before depositing).
	SegmentsDeposited *obs.Counter
}

// NewMetrics registers the transport counters on r under the "transport."
// prefix. Returns nil when r is nil, preserving the no-op path.
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		RaysTraced:        r.Counter("transport.rays_traced"),
		FinIntersections:  r.Counter("transport.fin_intersections"),
		SegmentsDeposited: r.Counter("transport.segments_deposited"),
	}
}

// defaultStopping returns the shared default stopping model: the tabulated
// NIST-style anchors behind a dense log-uniform resampling, so the per-
// sub-step evaluation in the hot loop costs one logarithm instead of three
// plus an exponential. Both layers are immutable, so one instance serves
// every Config.
var defaultStopping = sync.OnceValue(func() phys.StoppingModel {
	return phys.NewFastStopping(phys.NewTabulatedStopping())
})

// DefaultConfig returns the configuration used throughout the flow:
// tabulated stopping (dense-resampled for evaluation speed), 2 nm steps,
// straggling and Fano fluctuation on, half-silicon inter-fin losses, unity
// collection efficiency.
func DefaultConfig() Config {
	return Config{
		Stopping:              defaultStopping(),
		StepNm:                2,
		Straggling:            true,
		FanoFluctuation:       true,
		InterFinStoppingScale: 0.5,
		CollectionEfficiency:  1,
	}
}

func (c Config) withDefaults() Config {
	if c.Stopping == nil {
		c.Stopping = defaultStopping()
	}
	if c.StepNm <= 0 {
		c.StepNm = 2
	}
	if c.CollectionEfficiency <= 0 {
		c.CollectionEfficiency = 1
	}
	return c
}

// Deposit is the energy a single track left in a single fin.
type Deposit struct {
	Fin      int     // index into the fins slice passed to Trace
	EnergyEV float64 // deposited energy
	Pairs    float64 // collected electron–hole pairs
	PathNm   float64 // chord length through the fin
}

// CheckDeposits runs the guard's physics invariants over a track's deposits:
// every deposited energy and collected pair count must be finite and
// non-negative — a NaN here would propagate through charge conversion into
// the circuit injection untouched by any sign check. Strict mode returns
// the first violation; warn mode counts them all and returns nil. The happy
// path is allocation-free: violation names are only formatted for values
// that already failed the numeric predicate, so an enabled guard costs two
// float compares per deposit, not a fmt.Sprintf.
func CheckDeposits(g *guard.Guard, stage string, deps []Deposit) error {
	if !g.Enabled() {
		return nil
	}
	for i, d := range deps {
		if badNonNegFinite(d.EnergyEV) {
			if err := g.NonNegativeFinite(stage, fmt.Sprintf("deposit %d energy", i), d.EnergyEV); err != nil {
				return err
			}
		}
		if badNonNegFinite(d.Pairs) {
			if err := g.NonNegativeFinite(stage, fmt.Sprintf("deposit %d pairs", i), d.Pairs); err != nil {
				return err
			}
		}
	}
	return nil
}

// badNonNegFinite mirrors guard.NonNegativeFinite's predicate so callers
// can defer name formatting until a value actually violates it.
func badNonNegFinite(v float64) bool {
	return math.IsNaN(v) || math.IsInf(v, 0) || v < 0
}

type hit struct {
	fin       int
	tIn, tOut float64
}

// TraceScratch holds the intermediate buffers one Trace call needs. A
// caller that traces millions of tracks keeps one TraceScratch per worker
// and passes it to TraceAppend, making the steady-state path
// allocation-free. The zero value is ready to use; a TraceScratch must not
// be shared between concurrent calls.
type TraceScratch struct {
	hits []hit
}

// Trace propagates one particle along ray (Dir must be unit length) through
// the fins and returns the per-fin deposits in traversal order. The
// particle's kinetic energy is depleted as it travels; a track that ranges
// out stops depositing. src supplies the fluctuation randomness and may be
// nil when both fluctuation options are off.
//
// Trace allocates its result and scratch per call; hot loops should use
// TraceAppend with a reused TraceScratch and output buffer instead.
func Trace(cfg Config, sp phys.Species, energyMeV float64, ray geom.Ray, fins []geom.AABB, src *rng.Source) []Deposit {
	var scr TraceScratch
	out := TraceAppend(cfg, sp, energyMeV, ray, fins, src, &scr, nil)
	if len(out) == 0 {
		return nil // preserve Trace's historical nil-on-no-deposit contract
	}
	return out
}

// TraceAppend is Trace's allocation-free form: intermediate state lives in
// scr (reused across calls) and deposits are appended to out, which is
// returned. With a warm scratch and a pre-grown out buffer the call does
// not allocate. Deposit.Fin indexes fins exactly as in Trace; out's
// existing elements are preserved, so callers batching several tracks into
// one buffer must record the length before each call.
func TraceAppend(cfg Config, sp phys.Species, energyMeV float64, ray geom.Ray, fins []geom.AABB, src *rng.Source, scr *TraceScratch, out []Deposit) []Deposit {
	cfg = cfg.withDefaults()
	if energyMeV <= 0 {
		return out
	}
	if (cfg.Straggling || cfg.FanoFluctuation) && src == nil {
		panic("transport: fluctuations enabled but no rng source")
	}

	hits := scr.hits[:0]
	for i, f := range fins {
		tIn, tOut, ok := f.Intersect(ray)
		if ok && tOut > tIn {
			hits = append(hits, hit{fin: i, tIn: tIn, tOut: tOut})
		}
	}
	scr.hits = hits[:0] // keep the (possibly regrown) backing array
	if m := cfg.Metrics; m != nil {
		m.RaysTraced.Inc()
		m.FinIntersections.Add(int64(len(hits)))
	}
	if len(hits) == 0 {
		return out
	}
	// Insertion sort by entry parameter: a handful of hits per track, and
	// unlike sort.Slice it neither allocates a closure nor reorders equal
	// keys, keeping traversal order deterministic.
	for i := 1; i < len(hits); i++ {
		for j := i; j > 0 && hits[j].tIn < hits[j-1].tIn; j-- {
			hits[j], hits[j-1] = hits[j-1], hits[j]
		}
	}

	nBefore := len(out)
	energyEV := energyMeV * 1e6
	cursor := 0.0
	for _, h := range hits {
		if energyEV <= 0 {
			break
		}
		// Lossy gap between the previous exit and this fin's entry.
		if gap := h.tIn - cursor; gap > 0 && cfg.InterFinStoppingScale > 0 {
			energyEV -= cfg.InterFinStoppingScale * meanLoss(cfg, sp, energyEV, gap)
			if energyEV <= 0 {
				break
			}
		}
		dep := depositInSegment(cfg, sp, &energyEV, h.tOut-h.tIn, src)
		if dep > 0 {
			pairs := collectPairs(cfg, dep, src)
			out = append(out, Deposit{
				Fin:      h.fin,
				EnergyEV: dep,
				Pairs:    pairs,
				PathNm:   h.tOut - h.tIn,
			})
		}
		if h.tOut > cursor {
			cursor = h.tOut
		}
	}
	if m := cfg.Metrics; m != nil {
		m.SegmentsDeposited.Add(int64(len(out) - nBefore))
	}
	return out
}

// meanLoss integrates the mean total (electronic + nuclear) dE/dx over a
// path without fluctuations, used for inter-fin gaps.
func meanLoss(cfg Config, sp phys.Species, energyEV, pathNm float64) float64 {
	lost := 0.0
	remaining := pathNm
	for remaining > 0 && energyEV > lost {
		step := math.Min(cfg.StepNm, remaining)
		s := phys.CombinedStopping(cfg.Stopping, sp, (energyEV-lost)*1e-6)
		if s <= 0 {
			break
		}
		lost += s * step
		remaining -= step
	}
	return math.Min(lost, energyEV)
}

// depositInSegment walks a chord through silicon in sub-steps, depleting
// *energyEV by the total stopping and returning the *ionizing* deposit
// (electronic stopping plus the Lindhard partition of nuclear stopping for
// heavy recoils), with optional Landau straggling on the ionizing part.
func depositInSegment(cfg Config, sp phys.Species, energyEV *float64, pathNm float64, src *rng.Source) float64 {
	deposited := 0.0
	remaining := pathNm
	for remaining > 0 && *energyEV > 0 {
		step := math.Min(cfg.StepNm, remaining)
		eMeV := *energyEV * 1e-6
		// One electronic and one nuclear evaluation per sub-step; the
		// combined and ionizing rates share them (the table look-up is the
		// hot path's dominant cost).
		se := cfg.Stopping.ElectronicStopping(sp, eMeV)
		sn := phys.ZBLNuclearStopping(sp, eMeV)
		sTotal := se + sn
		sIon := se + phys.IonizationPartition*sn
		if sTotal <= 0 {
			break
		}
		deTotal := sTotal * step
		if cfg.Straggling {
			xi := phys.LandauXiEV(sp, eMeV, step)
			deTotal = phys.SampleLandauDeposit(deTotal, xi, src.Normal())
		}
		if deTotal > *energyEV {
			deTotal = *energyEV
		}
		deposited += deTotal * (sIon / sTotal)
		*energyEV -= deTotal
		remaining -= step
	}
	return deposited
}

// collectPairs converts deposited energy to collected e–h pairs with
// optional Fano fluctuation.
func collectPairs(cfg Config, energyEV float64, src *rng.Source) float64 {
	mean := phys.PairsFromEnergy(energyEV)
	if cfg.FanoFluctuation && mean > 0 {
		mean += math.Sqrt(phys.FanoFactor*mean) * src.Normal()
		if mean < 0 {
			mean = 0
		}
	}
	return mean * cfg.CollectionEfficiency
}

// SecantThroughBox samples a flux-uniform (μ-random) chord through the box:
// an isotropic direction plus a uniform impact point on the plane
// perpendicular to it, rejection-sampled to hit the box. This models a
// uniform external particle flux, so chord lengths obey Cauchy's mean-chord
// theorem E[L] = 4V/S. The returned ray has unit direction and enters the
// box at t = 0.
func SecantThroughBox(src *rng.Source, b geom.AABB) geom.Ray {
	c := b.Center()
	half := b.Size().Norm() / 2 // bounding-sphere radius
	for {
		d := src.IsotropicDirection()
		u, v := orthoBasis(d)
		// Uniform impact point on a disk-bounding square ⊥ d through the
		// centre; reject rays that miss the box.
		a := src.Uniform(-half, half)
		e := src.Uniform(-half, half)
		origin := c.Add(u.Scale(a)).Add(v.Scale(e)).Sub(d.Scale(2 * half))
		r := geom.Ray{Origin: origin, Dir: d}
		tIn, tOut, ok := b.Intersect(r)
		if !ok || tOut <= tIn {
			continue
		}
		return geom.Ray{Origin: r.At(tIn), Dir: d}
	}
}

// orthoBasis returns two unit vectors orthogonal to d and each other.
func orthoBasis(d geom.Vec3) (u, v geom.Vec3) {
	ref := geom.V(1, 0, 0)
	if math.Abs(d.X) > 0.9 {
		ref = geom.V(0, 1, 0)
	}
	u = d.Cross(ref).Unit()
	v = d.Cross(u)
	return u, v
}

// YieldStats summarizes the e–h yield distribution at one energy.
type YieldStats struct {
	EnergyMeV float64
	MeanPairs float64
	StdPairs  float64
	MaxPairs  float64
	HitFrac   float64 // fraction of sampled tracks that deposited anything
}

// FinYield runs iters random secants through a single fin at the given
// energy and returns the yield statistics. This is the paper's
// "10 million MC simulations ... for each particular energy" step.
func FinYield(cfg Config, sp phys.Species, energyMeV float64, fin geom.AABB, iters int, src *rng.Source) YieldStats {
	ys, _ := finYieldCtx(context.Background(), cfg, sp, energyMeV, fin, iters, src)
	return ys
}

// yieldCancelCheckEvery is the secant stride between context checks while
// building yield statistics — fine enough that a cancelled LUT build stops
// within a few hundred microseconds.
const yieldCancelCheckEvery = 256

// finYieldCtx is FinYield with cooperative cancellation; on cancellation it
// returns the context error and partial (unusable) statistics.
func finYieldCtx(ctx context.Context, cfg Config, sp phys.Species, energyMeV float64, fin geom.AABB, iters int, src *rng.Source) (YieldStats, error) {
	var w stats.Welford
	maxPairs := 0.0
	hits := 0
	for i := 0; i < iters; i++ {
		if i%yieldCancelCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return YieldStats{}, err
			}
		}
		ray := SecantThroughBox(src, fin)
		deps := Trace(cfg, sp, energyMeV, ray, []geom.AABB{fin}, src)
		pairs := 0.0
		for _, d := range deps {
			pairs += d.Pairs
		}
		if pairs > 0 {
			hits++
		}
		if pairs > maxPairs {
			maxPairs = pairs
		}
		w.Add(pairs)
	}
	return YieldStats{
		EnergyMeV: energyMeV,
		MeanPairs: w.Mean(),
		StdPairs:  w.StdDev(),
		MaxPairs:  maxPairs,
		HitFrac:   float64(hits) / float64(iters),
	}, nil
}

// BuildFinYieldLUT sweeps the energy grid and returns the mean-pairs LUT
// used by the array-level stage (and plotted, normalized, as Fig. 4).
func BuildFinYieldLUT(cfg Config, sp phys.Species, energiesMeV []float64, fin geom.AABB, itersPerEnergy int, src *rng.Source) (*lut.Table1D, error) {
	return BuildFinYieldLUTCtx(context.Background(), cfg, sp, energiesMeV, fin, itersPerEnergy, src)
}

// BuildFinYieldLUTCtx is BuildFinYieldLUT with cooperative cancellation:
// the sweep checks ctx between secant batches, so a cancelled run abandons
// the (potentially hundreds of ms) LUT construction promptly.
func BuildFinYieldLUTCtx(ctx context.Context, cfg Config, sp phys.Species, energiesMeV []float64, fin geom.AABB, itersPerEnergy int, src *rng.Source) (*lut.Table1D, error) {
	if len(energiesMeV) < 2 {
		return nil, errors.New("transport: need at least two energies")
	}
	if itersPerEnergy <= 0 {
		return nil, errors.New("transport: need positive iteration count")
	}
	ys := make([]float64, len(energiesMeV))
	for i, e := range energiesMeV {
		if e <= 0 {
			return nil, fmt.Errorf("transport: non-positive energy %g", e)
		}
		stat, err := finYieldCtx(ctx, cfg, sp, e, fin, itersPerEnergy, src)
		if err != nil {
			return nil, fmt.Errorf("transport: yield LUT at %g MeV: %w", e, err)
		}
		ys[i] = stat.MeanPairs
		if ys[i] <= 0 {
			// Keep the table log-interpolable even if an energy point ranged
			// out completely.
			ys[i] = 1e-9
		}
	}
	return lut.NewTable1D(energiesMeV, ys, lut.Log, lut.Log)
}
