package transport

import (
	"testing"

	"finser/internal/geom"
	"finser/internal/phys"
	"finser/internal/rng"
)

// BenchmarkTraceSingleFin times one track through one fin with full
// fluctuation physics — the inner loop of the device level.
func BenchmarkTraceSingleFin(b *testing.B) {
	cfg := DefaultConfig()
	fin := geom.BoxAt(geom.V(0, 0, 0), geom.V(10, 20, 30))
	fins := []geom.AABB{fin}
	ray := geom.Ray{Origin: geom.V(-5, 10, 15), Dir: geom.V(1, 0, 0)}
	src := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Trace(cfg, phys.Alpha, 1, ray, fins, src)
	}
}

// BenchmarkTraceArraySweep times a grazing track across 100 fins.
func BenchmarkTraceArraySweep(b *testing.B) {
	cfg := DefaultConfig()
	fins := make([]geom.AABB, 0, 100)
	for i := 0; i < 100; i++ {
		fins = append(fins, geom.BoxAt(geom.V(float64(i)*48, 0, 0), geom.V(10, 20, 30)))
	}
	ray := geom.Ray{Origin: geom.V(-5, 10, 15), Dir: geom.V(1, 0, 0)}
	src := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Trace(cfg, phys.Alpha, 8, ray, fins, src)
	}
}

// BenchmarkSecantSampling times the flux-uniform chord sampler.
func BenchmarkSecantSampling(b *testing.B) {
	fin := geom.BoxAt(geom.V(0, 0, 0), geom.V(10, 20, 30))
	src := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SecantThroughBox(src, fin)
	}
}
