package lifetime

import (
	"math"
	"testing"

	"finser/internal/scrub"
)

func TestValidate(t *testing.T) {
	good := Config{Words: 100, SEURatePerHour: 1, MaxHours: 10}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Words: 0, MaxHours: 1},
		{Words: 1, SEURatePerHour: -1, MaxHours: 1},
		{Words: 1, MBUSameWordProb: 2, MaxHours: 1},
		{Words: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if _, err := Simulate(good, 0, 1); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestNoRadiationNoFailures(t *testing.T) {
	res, err := Simulate(Config{Words: 100, MaxHours: 100}, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 0 || res.FIT != 0 {
		t.Errorf("failures without radiation: %+v", res)
	}
}

func TestMBUFloorDominatesWithFastScrub(t *testing.T) {
	// With aggressive scrubbing, failures come only from same-word MBUs, so
	// the simulated rate must approach MBURate × sameWordProb.
	cfg := Config{
		Words:              1 << 16,
		SEURatePerHour:     0.01,
		MBURatePerHour:     0.002,
		MBUSameWordProb:    0.3,
		ScrubIntervalHours: 1,
		MaxHours:           1e6,
	}
	res, err := Simulate(cfg, 400, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.MBURatePerHour * cfg.MBUSameWordProb
	if res.FailureRatePerHour < want/2 || res.FailureRatePerHour > want*2 {
		t.Errorf("rate %v, want ≈ %v", res.FailureRatePerHour, want)
	}
}

func TestScrubbingExtendsLifetime(t *testing.T) {
	base := Config{
		Words:           1 << 10,
		SEURatePerHour:  0.5,
		MBURatePerHour:  0,
		MBUSameWordProb: 0,
		MaxHours:        1e5,
	}
	noScrub := base
	noScrub.ScrubIntervalHours = 0
	scrubbed := base
	scrubbed.ScrubIntervalHours = 10
	a, err := Simulate(noScrub, 300, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(scrubbed, 300, 3)
	if err != nil {
		t.Fatal(err)
	}
	if b.FailureRatePerHour >= a.FailureRatePerHour {
		t.Errorf("scrubbing did not reduce the failure rate: %v vs %v",
			b.FailureRatePerHour, a.FailureRatePerHour)
	}
}

func TestSimulatorMatchesAnalyticModel(t *testing.T) {
	// The closed-form scrub model and the event simulator must agree on the
	// accumulation-dominated regime within Monte-Carlo noise.
	words := 1 << 12
	seuFIT := 5e10 // deliberately hot so trials fail quickly
	interval := 2.0
	sc := scrub.Config{Words: words, SEUFIT: seuFIT, MBUFIT: 0, UncorrectableShare: 0}
	analytic := sc.UncorrectableFIT(interval)

	cfg := Config{
		Words:              words,
		SEURatePerHour:     seuFIT / 1e9,
		ScrubIntervalHours: interval,
		MaxHours:           1e5,
	}
	res, err := Simulate(cfg, 600, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures < 100 {
		t.Fatalf("too few failures (%d) for the comparison", res.Failures)
	}
	ratio := res.FIT / analytic
	// The analytic model uses the expected-collisions linearization
	// (counts every pair), while the simulator stops at the first failure;
	// they agree within tens of percent in this regime.
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("simulated FIT %v vs analytic %v (ratio %v)", res.FIT, analytic, ratio)
	}
}

func TestDeterministicSeeds(t *testing.T) {
	cfg := Config{
		Words:              256,
		SEURatePerHour:     0.3,
		ScrubIntervalHours: 5,
		MaxHours:           1e4,
	}
	a, _ := Simulate(cfg, 100, 7)
	b, _ := Simulate(cfg, 100, 7)
	if a.Failures != b.Failures || math.Abs(a.MeanTTFHours-b.MeanTTFHours) > 1e-12 {
		t.Error("identical seeds gave different results")
	}
	c, _ := Simulate(cfg, 100, 8)
	if a.Failures == c.Failures && a.MeanTTFHours == c.MeanTTFHours {
		t.Error("different seeds gave identical results (suspicious)")
	}
}
