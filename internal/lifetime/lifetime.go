// Package lifetime is an event-driven Monte-Carlo simulator of an
// ECC-protected, periodically scrubbed memory operating in a radiation
// environment. It is the independent check on package scrub's closed-form
// model: upset events arrive as a Poisson process at the rates the array
// engine measured, land on words according to the measured MBU geometry,
// SEC-DED absorbs single bad bits, the scrubber clears correctable damage
// on its interval, and the simulator records the time to the first
// uncorrectable word. Where the analytic model linearizes, this simulator
// does not — agreement between the two (tested) validates both.
package lifetime

import (
	"errors"
	"math"

	"finser/internal/rng"
	"finser/internal/stats"
)

// Config describes the simulated memory and environment.
type Config struct {
	// Words is the number of logical ECC words.
	Words int
	// SEURatePerHour is the arrival rate of single-bit events over the
	// whole memory (events/hour).
	SEURatePerHour float64
	// MBURatePerHour is the arrival rate of multi-bit events.
	MBURatePerHour float64
	// MBUSameWordProb is the probability an MBU lands ≥2 bits in one word
	// (the ECC uncorrectable share).
	MBUSameWordProb float64
	// ScrubIntervalHours is the scrubbing period; 0 disables scrubbing.
	ScrubIntervalHours float64
	// MaxHours bounds each trial (a trial that survives this long records
	// a censored lifetime).
	MaxHours float64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Words <= 0 {
		return errors.New("lifetime: need positive word count")
	}
	if c.SEURatePerHour < 0 || c.MBURatePerHour < 0 {
		return errors.New("lifetime: negative rates")
	}
	if c.MBUSameWordProb < 0 || c.MBUSameWordProb > 1 {
		return errors.New("lifetime: same-word probability outside [0,1]")
	}
	if c.MaxHours <= 0 {
		return errors.New("lifetime: need positive trial bound")
	}
	return nil
}

// Result summarizes the simulated lifetimes.
type Result struct {
	Trials   int
	Failures int // trials that hit an uncorrectable word before MaxHours
	// MeanTTFHours is the mean time to failure over failing trials.
	MeanTTFHours float64
	// FailureRatePerHour is the effective rate estimated from all trials
	// (failures / total observed time), robust under censoring.
	FailureRatePerHour float64
	// FIT is the same rate in FIT units.
	FIT float64
}

// Simulate runs trials independent lifetimes and aggregates them.
func Simulate(cfg Config, trials int, seed uint64) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if trials <= 0 {
		return Result{}, errors.New("lifetime: need positive trials")
	}
	src := rng.New(seed)
	var ttf stats.Welford
	res := Result{Trials: trials}
	totalObserved := 0.0
	for i := 0; i < trials; i++ {
		t, failed := simulateOne(cfg, src.Fork())
		totalObserved += t
		if failed {
			res.Failures++
			ttf.Add(t)
		}
	}
	res.MeanTTFHours = ttf.Mean()
	if totalObserved > 0 {
		res.FailureRatePerHour = float64(res.Failures) / totalObserved
		res.FIT = res.FailureRatePerHour * 1e9
	}
	return res, nil
}

// simulateOne runs a single lifetime and returns (observed time, failed).
func simulateOne(cfg Config, src *rng.Source) (float64, bool) {
	totalRate := cfg.SEURatePerHour + cfg.MBURatePerHour
	if totalRate <= 0 {
		return cfg.MaxHours, false
	}
	// Sparse damage map: word index → bad-bit count.
	damaged := map[int]int{}
	now := 0.0
	nextScrub := math.Inf(1)
	if cfg.ScrubIntervalHours > 0 {
		nextScrub = cfg.ScrubIntervalHours
	}
	for {
		dt := src.Exponential(totalRate)
		eventTime := now + dt
		// Process any scrub passes before the event: SEC-DED corrects
		// single-bad-bit words, so scrubbing clears all damage (words with
		// ≥2 bits would already have failed).
		for nextScrub <= eventTime {
			if nextScrub >= cfg.MaxHours {
				return cfg.MaxHours, false
			}
			damaged = map[int]int{}
			nextScrub += cfg.ScrubIntervalHours
		}
		if eventTime >= cfg.MaxHours {
			return cfg.MaxHours, false
		}
		now = eventTime

		if src.Float64() < cfg.SEURatePerHour/totalRate {
			// Single-bit event on a uniformly random word.
			w := src.Intn(cfg.Words)
			damaged[w]++
			if damaged[w] >= 2 {
				return now, true
			}
		} else {
			// Multi-bit event: with the measured probability it defeats the
			// interleaving outright; otherwise its bits land in distinct
			// words, each absorbing one correctable bit.
			if src.Float64() < cfg.MBUSameWordProb {
				return now, true
			}
			for k := 0; k < 2; k++ {
				w := src.Intn(cfg.Words)
				damaged[w]++
				if damaged[w] >= 2 {
					return now, true
				}
			}
		}
	}
}
