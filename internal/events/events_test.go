package events

import (
	"sync"
	"testing"
	"time"
)

// collect drains up to n events or until the channel closes.
func collect(t *testing.T, sub *Subscription, n int) []Event {
	t.Helper()
	var out []Event
	timeout := time.After(5 * time.Second)
	for len(out) < n {
		select {
		case e, ok := <-sub.C():
			if !ok {
				return out
			}
			out = append(out, e)
		case <-timeout:
			t.Fatalf("timed out after %d/%d events", len(out), n)
		}
	}
	return out
}

func TestPublishSubscribeOrder(t *testing.T) {
	s := NewStream(16, nil)
	sub := s.Subscribe(0)
	defer sub.Cancel()
	for i := 0; i < 10; i++ {
		if seq := s.Publish(Event{Type: TypeProgress, Done: int64(i)}); seq != int64(i+1) {
			t.Fatalf("publish %d assigned seq %d", i, seq)
		}
	}
	got := collect(t, sub, 10)
	for i, e := range got {
		if e.Seq != int64(i+1) {
			t.Fatalf("event %d has seq %d, want %d", i, e.Seq, i+1)
		}
		if e.Done != int64(i) {
			t.Fatalf("event %d payload Done = %d, want %d", i, e.Done, i)
		}
		if e.TimeMs == 0 {
			t.Fatalf("event %d missing publish timestamp", i)
		}
	}
}

// TestReplayFromSequence: a reconnecting subscriber passing its last seen
// sequence receives exactly the events it missed, in order.
func TestReplayFromSequence(t *testing.T) {
	s := NewStream(32, nil)
	for i := 0; i < 10; i++ {
		s.Publish(Event{Type: TypeBin, Bin: i + 1})
	}
	sub := s.Subscribe(4)
	defer sub.Cancel()
	if sub.Missed() != 0 {
		t.Fatalf("missed = %d, want 0 (all retained)", sub.Missed())
	}
	got := collect(t, sub, 6)
	for i, e := range got {
		if want := int64(5 + i); e.Seq != want {
			t.Fatalf("replayed event %d has seq %d, want %d", i, e.Seq, want)
		}
	}
	// Live events continue seamlessly after the replayed tail.
	s.Publish(Event{Type: TypeBin, Bin: 11})
	live := collect(t, sub, 1)
	if live[0].Seq != 11 {
		t.Fatalf("live event seq = %d, want 11", live[0].Seq)
	}
}

// TestReplayGapCounted: resuming from before the ring's retention window
// reports the lost events instead of silently skipping them.
func TestReplayGapCounted(t *testing.T) {
	s := NewStream(8, nil)
	for i := 0; i < 100; i++ {
		s.Publish(Event{Type: TypeProgress})
	}
	sub := s.Subscribe(0)
	defer sub.Cancel()
	if sub.Missed() != 92 {
		t.Fatalf("missed = %d, want 92 (100 published, 8 retained)", sub.Missed())
	}
	got := collect(t, sub, 8)
	if got[0].Seq != 93 || got[7].Seq != 100 {
		t.Fatalf("replayed range [%d, %d], want [93, 100]", got[0].Seq, got[7].Seq)
	}
}

// TestStalledSubscriberDropped: a subscriber that stops consuming is
// killed — its channel closes, the drop is counted, and the publisher
// never blocks (the test would deadlock if it did).
func TestStalledSubscriberDropped(t *testing.T) {
	drops := 0
	s := NewStream(4, func() { drops++ })
	sub := s.Subscribe(0)  // never read
	live := s.Subscribe(0) // drained synchronously after every publish
	drainLive := func() {
		for {
			select {
			case <-live.C():
			default:
				return
			}
		}
	}
	// Buffer is ring+64; exceed it while never reading sub. live is kept
	// empty in lockstep so only the stalled subscriber can overflow.
	for i := 0; i < 4+64+8; i++ {
		s.Publish(Event{Type: TypeProgress})
		drainLive()
	}
	select {
	case _, ok := <-sub.C():
		_ = ok // drain one replayed event; eventually the channel closes
	default:
	}
	// The channel must be closed: drain everything and observe the close.
	closed := false
	timeout := time.After(5 * time.Second)
	for !closed {
		select {
		case _, ok := <-sub.C():
			if !ok {
				closed = true
			}
		case <-timeout:
			t.Fatal("stalled subscriber's channel never closed")
		}
	}
	if s.DroppedSubscribers() != 1 {
		t.Fatalf("dropped subscribers = %d, want 1", s.DroppedSubscribers())
	}
	if drops != 1 {
		t.Fatalf("drop hook fired %d times, want 1", drops)
	}
	if s.Subscribers() != 1 {
		t.Fatalf("live subscribers = %d, want 1 (the healthy one)", s.Subscribers())
	}
	s.Close()
}

// TestCloseTerminatesSubscribers: closing the stream ends every live
// subscription after the already-published events.
func TestCloseTerminatesSubscribers(t *testing.T) {
	s := NewStream(16, nil)
	sub := s.Subscribe(0)
	s.Publish(Event{Type: TypeState, State: "done"})
	s.Close()
	got := collect(t, sub, 2) // returns early on close
	if len(got) != 1 || got[0].State != "done" {
		t.Fatalf("got %d events (%v), want the single terminal event", len(got), got)
	}
	if seq := s.Publish(Event{Type: TypeState}); seq != 0 {
		t.Fatalf("publish after close assigned seq %d, want 0", seq)
	}
}

// TestSubscribeAfterClose: a late subscriber still replays the retained
// history and sees an immediately-closed channel — the reconnect-after-done
// path.
func TestSubscribeAfterClose(t *testing.T) {
	s := NewStream(16, nil)
	s.Publish(Event{Type: TypeBin, Bin: 1})
	s.Publish(Event{Type: TypeState, State: "done"})
	s.Close()
	sub := s.Subscribe(0)
	got := collect(t, sub, 3) // close bounds it at 2
	if len(got) != 2 {
		t.Fatalf("late subscriber got %d events, want 2", len(got))
	}
	if got[1].State != "done" {
		t.Fatalf("last replayed event = %+v, want the terminal state", got[1])
	}
	sub.Cancel() // must be safe on an already-closed subscription
}

// TestPublishZeroSubscribersNoAlloc pins the unwatched-job cost: with no
// subscribers, Publish is a mutex plus a struct copy — no heap allocation.
func TestPublishZeroSubscribersNoAlloc(t *testing.T) {
	s := NewStream(64, nil)
	e := Event{Type: TypeBin, Stage: "fit/alpha", Bin: 3, Bins: 12, EnergyMeV: 1.5, POF: 0.25, FITSoFar: 1e-3, TimeMs: 1}
	allocs := testing.AllocsPerRun(1000, func() {
		s.Publish(e)
	})
	if allocs != 0 {
		t.Errorf("Publish with zero subscribers allocates %v objects/op, want 0", allocs)
	}
}

// TestConcurrentPublishSubscribe exercises the lock discipline under the
// race detector: concurrent publishers, subscribers joining and canceling,
// and a close racing all of it.
func TestConcurrentPublishSubscribe(t *testing.T) {
	s := NewStream(32, func() {})
	var pubs, subs sync.WaitGroup
	for p := 0; p < 4; p++ {
		pubs.Add(1)
		go func(p int) {
			defer pubs.Done()
			for i := 0; i < 500; i++ {
				s.Publish(Event{Type: TypeProgress, Done: int64(i)})
			}
		}(p)
	}
	for c := 0; c < 8; c++ {
		subs.Add(1)
		go func() {
			defer subs.Done()
			sub := s.Subscribe(0)
			n := 0
			// Ranges until the stream closes or the bus drops us for
			// stalling; Cancel after 100 exercises mid-stream teardown.
			for range sub.C() {
				n++
				if n > 100 {
					sub.Cancel()
					return
				}
			}
		}()
	}
	pubs.Wait()
	s.Close() // unblocks any subscriber still waiting on a quiet channel
	subs.Wait()
	// Sequence IDs must be dense: every publish got a unique slot.
	if got := s.LastSeq(); got != 2000 {
		t.Fatalf("last seq = %d, want 2000", got)
	}
}

// TestMonotonicSeqAcrossWrap: the ring wraps but sequence IDs keep
// increasing — the ring index is derived, never reset.
func TestMonotonicSeqAcrossWrap(t *testing.T) {
	s := NewStream(4, nil)
	var last int64
	for i := 0; i < 20; i++ {
		seq := s.Publish(Event{Type: TypeProgress})
		if seq <= last {
			t.Fatalf("seq %d not monotonic after %d", seq, last)
		}
		last = seq
	}
	sub := s.Subscribe(0)
	defer sub.Cancel()
	got := collect(t, sub, 4)
	if got[0].Seq != 17 {
		t.Fatalf("oldest retained seq = %d, want 17", got[0].Seq)
	}
}
