// Package events is the flow's live telemetry bus: a bounded, non-blocking
// per-job event stream that long-running stages publish into (state
// transitions, throttled progress, per-bin FIT results as each energy bin
// converges, guard violations) and that streaming clients — the serd SSE
// endpoint, the serload generator — subscribe to.
//
// The design constraints mirror the rest of the flow's observability:
//
//   - Publishing must never block or fail the producing job. The stream is
//     a fixed ring; a subscriber that cannot keep up is dropped (its
//     channel closed, the drop counted) instead of backpressuring the
//     Monte-Carlo worker that produced the event.
//   - Publishing with zero subscribers is allocation-free — the event is a
//     flat value copied into a pre-allocated ring slot, so an unwatched job
//     pays nothing beyond a mutex and a struct copy per event (and events
//     are per-bin / throttled, never per-particle).
//   - Every event carries a monotonic per-stream sequence ID, and
//     Subscribe replays retained events from any sequence, so a
//     reconnecting client (SSE Last-Event-ID) sees only what it missed —
//     or a Missed count when the gap has already rolled out of the ring.
//
// A nil *Stream accepts Publish and Close and does nothing, following the
// nil-receiver no-op idiom of internal/obs.
package events

import (
	"sync"
	"time"
)

// Event types published by the flow and serving layers.
const (
	// TypeState marks a job lifecycle transition; State/Error are set.
	TypeState = "state"
	// TypeProgress is a throttled done/total/rate report from a stage.
	TypeProgress = "progress"
	// TypeBin reports one completed FIT energy bin (POF point + the
	// cumulative FIT integral so far).
	TypeBin = "bin"
	// TypeViolation reports a physics-invariant guard violation.
	TypeViolation = "violation"
	// TypeShard marks a distributed-shard lifecycle transition
	// (dispatched/stolen/retried/completed/duplicate/failed/resumed);
	// Shard, Worker, Attempt, and State (the transition kind) are set.
	TypeShard = "shard"
	// TypeGap is synthesized by a streaming front-end (not published into
	// the ring) when a reconnecting subscriber's resume point has aged out
	// of the buffer; Missed carries the number of lost events.
	TypeGap = "gap"
	// TypeRecovery marks a journal-replay action on a restarted server:
	// State is "requeued" (job going back on the queue to resume from its
	// checkpoint), "restored" (terminal job rebuilt with its result), or
	// "failed-validation" (journaled spec the server no longer accepts).
	TypeRecovery = "recovery"
	// TypePreempted marks a running batch job yielding its worker to an
	// interactive arrival at a checkpoint boundary; the job requeues and
	// its completed bins stay checkpointed.
	TypePreempted = "preempted"
	// TypeResumed marks a previously preempted job starting to run again;
	// it picks up from its fingerprint-keyed checkpoint bit-identically.
	TypeResumed = "resumed"
)

// Event is one telemetry datum on a job's stream. It is a flat union over
// the event types: unused fields stay zero and are omitted from JSON, so
// one pre-allocatable value type serves every producer without a heap
// allocation per publish.
type Event struct {
	// Seq is the stream-assigned monotonic sequence ID (1-based). It is
	// the SSE event ID, so Last-Event-ID reconnects resume exactly here.
	Seq int64 `json:"seq"`
	// Type is one of the Type* constants.
	Type string `json:"type"`
	// TimeMs is the publish wall time in Unix milliseconds (stamped by
	// Publish when zero).
	TimeMs int64 `json:"t_ms"`
	// Job is the owning job ID.
	Job string `json:"job,omitempty"`

	// State events.
	State string `json:"state,omitempty"`
	Error string `json:"error,omitempty"`

	// Progress and bin events share Stage ("characterize", "fit/alpha").
	Stage string `json:"stage,omitempty"`

	// Progress events.
	Done  int64   `json:"done,omitempty"`
	Total int64   `json:"total,omitempty"`
	Rate  float64 `json:"rate,omitempty"`

	// Bin events. Bin is 1-based so a bare JSON zero never masquerades as
	// the first bin.
	Bin       int     `json:"bin,omitempty"`
	Bins      int     `json:"bins,omitempty"`
	EnergyMeV float64 `json:"energy_mev,omitempty"`
	POF       float64 `json:"pof,omitempty"`
	POFStdErr float64 `json:"pof_stderr,omitempty"`
	// FITSoFar is the cumulative FIT integral through this bin — the live
	// convergence signal a watching client plots.
	FITSoFar float64 `json:"fit_so_far,omitempty"`
	// Resumed marks a bin restored from a checkpoint rather than computed
	// in this run.
	Resumed bool `json:"resumed,omitempty"`
	// Adaptive-FIT convergence fields (only set when the job runs with
	// fit_rel_err > 0): RelErr is the bin's achieved stderr/mean, Tol its
	// weight-scaled target, Converged whether it stopped inside tolerance
	// (vs hitting the per-bin cap), Batches how many fixed-size batches it
	// consumed, and StrikesSaved the flat budget minus the particles spent
	// (negative when the bin overran chasing tolerance).
	RelErr       float64 `json:"rel_err,omitempty"`
	Tol          float64 `json:"tol,omitempty"`
	Converged    bool    `json:"converged,omitempty"`
	Batches      int     `json:"batches,omitempty"`
	StrikesSaved int     `json:"strikes_saved,omitempty"`

	// Violation events.
	Invariant string  `json:"invariant,omitempty"`
	Detail    string  `json:"detail,omitempty"`
	Value     float64 `json:"value,omitempty"`

	// Shard events (distributed runs). Shard names the energy-bin range
	// ("alpha[0:2)"), Worker the worker serd URL, Attempt the 1-based
	// dispatch count; State carries the transition kind.
	Shard   string `json:"shard,omitempty"`
	Worker  string `json:"worker,omitempty"`
	Attempt int    `json:"attempt,omitempty"`

	// Gap events (front-end synthesized).
	Missed int64 `json:"missed,omitempty"`
}

// DefaultCapacity is the ring size NewStream uses for capacity <= 0 — deep
// enough that a reconnect within a few seconds of progress reports replays
// losslessly, small enough that an unwatched job costs tens of kilobytes.
const DefaultCapacity = 256

// Stream is one job's bounded event history plus its live subscribers.
// All methods are safe for concurrent use; Publish never blocks on a
// subscriber.
type Stream struct {
	mu     sync.Mutex
	ring   []Event // fixed ring; slot for seq s is ring[(s-1)%len]
	next   int64   // last assigned sequence ID (0 before the first event)
	subs   map[*Subscription]struct{}
	closed bool

	published   int64
	droppedSubs int64
	onSubDrop   func() // optional drop hook; called under mu, keep it cheap
}

// NewStream builds a stream with the given ring capacity (<= 0 selects
// DefaultCapacity). onSubDrop, when non-nil, is invoked once per stalled
// subscriber the stream kills — the serving layer's drop counter.
func NewStream(capacity int, onSubDrop func()) *Stream {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Stream{
		ring:      make([]Event, capacity),
		subs:      map[*Subscription]struct{}{},
		onSubDrop: onSubDrop,
	}
}

// Publish assigns the next sequence ID, stores the event in the ring, and
// fans it out to subscribers without blocking: a subscriber whose channel
// is full is dropped (channel closed, drop counted) rather than stalling
// the publisher. Returns the assigned sequence ID. Publishing to a closed
// or nil stream is a no-op returning 0. With zero subscribers the call is
// allocation-free.
func (s *Stream) Publish(e Event) int64 {
	if s == nil {
		return 0
	}
	if e.TimeMs == 0 {
		e.TimeMs = time.Now().UnixMilli()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0
	}
	s.next++
	e.Seq = s.next
	s.ring[(e.Seq-1)%int64(len(s.ring))] = e
	s.published++
	for sub := range s.subs {
		select {
		case sub.ch <- e:
		default:
			// Stalled subscriber: its buffer (ring capacity + slack) is
			// full, meaning it has not consumed a full ring's worth of
			// events. Kill it so the job never waits on a dead client.
			s.dropLocked(sub)
		}
	}
	return e.Seq
}

// dropLocked removes one subscriber and closes its channel; callers hold mu.
func (s *Stream) dropLocked(sub *Subscription) {
	if _, ok := s.subs[sub]; !ok {
		return
	}
	delete(s.subs, sub)
	sub.dropped = true
	close(sub.ch)
	s.droppedSubs++
	if s.onSubDrop != nil {
		s.onSubDrop()
	}
}

// Subscribe registers a subscriber and replays every retained event with
// sequence > after into its channel (after = 0 replays the full retained
// history; an SSE reconnect passes its Last-Event-ID). Events that have
// already rolled out of the ring are reported in the subscription's Missed
// count instead. Subscribing to a closed stream still replays the retained
// tail and returns a subscription whose channel is already closed, so a
// late client sees the job's final events and a clean end-of-stream.
func (s *Stream) Subscribe(after int64) *Subscription {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Replay fits by construction: at most len(ring) retained events, and
	// the channel holds a full ring plus slack for live events.
	sub := &Subscription{
		stream: s,
		ch:     make(chan Event, len(s.ring)+64),
	}
	oldest := s.next - int64(len(s.ring)) + 1 // seq of the oldest retained event
	if oldest < 1 {
		oldest = 1
	}
	start := after + 1
	if start < oldest {
		sub.missed = oldest - start
		start = oldest
	}
	for q := start; q <= s.next; q++ {
		sub.ch <- s.ring[(q-1)%int64(len(s.ring))]
	}
	if s.closed {
		sub.dropped = true
		close(sub.ch)
		return sub
	}
	s.subs[sub] = struct{}{}
	return sub
}

// Close ends the stream: every subscriber's channel is closed after the
// events already fanned out, and later Publish calls are dropped. Closing
// terminates live SSE handlers promptly (their range loop ends). Idempotent
// and nil-safe.
func (s *Stream) Close() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for sub := range s.subs {
		delete(s.subs, sub)
		sub.dropped = true
		close(sub.ch)
	}
}

// LastSeq returns the most recently assigned sequence ID (0 on a fresh or
// nil stream).
func (s *Stream) LastSeq() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next
}

// Published returns the total number of events accepted by the stream.
func (s *Stream) Published() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.published
}

// DroppedSubscribers returns how many stalled subscribers the stream has
// killed.
func (s *Stream) DroppedSubscribers() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.droppedSubs
}

// Subscribers returns the current live subscriber count.
func (s *Stream) Subscribers() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs)
}

// Subscription is one subscriber's view of a stream: a buffered channel of
// events (replayed history first, then live) that closes when the stream
// closes, the subscriber cancels, or the subscriber stalls past a full
// ring of unconsumed events.
type Subscription struct {
	stream  *Stream
	ch      chan Event
	missed  int64
	dropped bool // guarded by stream.mu after registration
}

// C returns the event channel. It is closed on stream close, Cancel, or a
// stall-drop; consumers range over it.
func (u *Subscription) C() <-chan Event { return u.ch }

// Missed returns how many events between the requested resume point and
// the oldest retained event were lost to ring wraparound — a streaming
// front-end surfaces this as a gap marker.
func (u *Subscription) Missed() int64 { return u.missed }

// Cancel unregisters the subscription and closes its channel. Safe to call
// when the stream already closed or dropped the subscriber.
func (u *Subscription) Cancel() {
	s := u.stream
	s.mu.Lock()
	defer s.mu.Unlock()
	if u.dropped {
		return
	}
	if _, ok := s.subs[u]; ok {
		delete(s.subs, u)
		u.dropped = true
		close(u.ch)
	}
}
