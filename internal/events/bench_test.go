package events

import "testing"

// BenchmarkEventPublish is the CI alloc guard for the telemetry hot path:
// publishing into a stream nobody watches must stay allocation-free, so
// wiring per-bin events through the Monte-Carlo pipeline cannot regress the
// zero-alloc budgets PR 5 pinned (bench-smoke enforces 0 allocs/op).
func BenchmarkEventPublish(b *testing.B) {
	s := NewStream(256, nil)
	e := Event{
		Type: TypeBin, Job: "job-1", Stage: "fit/alpha",
		Bin: 7, Bins: 12, EnergyMeV: 1.5, POF: 0.25, POFStdErr: 0.01,
		FITSoFar: 1.2e-3, TimeMs: 1,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Publish(e)
	}
}

// BenchmarkEventPublishOneSubscriber measures the fan-out cost with a live,
// keeping-up subscriber — the SSE steady state.
func BenchmarkEventPublishOneSubscriber(b *testing.B) {
	s := NewStream(256, nil)
	sub := s.Subscribe(0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range sub.C() {
		}
	}()
	e := Event{Type: TypeProgress, Job: "job-1", Stage: "fit/proton", Done: 1, Total: 100, TimeMs: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Publish(e)
	}
	b.StopTimer()
	s.Close()
	<-done
}
