package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

// recordingSleep returns a Sleep that records every delay and never waits.
func recordingSleep(delays *[]time.Duration) func(context.Context, time.Duration) error {
	return func(ctx context.Context, d time.Duration) error {
		*delays = append(*delays, d)
		return ctx.Err()
	}
}

// TestBackoffJitterWithinBounds checks the full-jitter invariant: every
// delay lies in [0, cap] where cap follows the exponential schedule
// truncated at MaxDelay — for extreme draws and across many random draws.
func TestBackoffJitterWithinBounds(t *testing.T) {
	p := Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: 250 * time.Millisecond, Multiplier: 2}
	caps := []time.Duration{
		100 * time.Millisecond, // attempt 1
		200 * time.Millisecond, // attempt 2
		250 * time.Millisecond, // attempt 3: 400ms truncated to the cap
		250 * time.Millisecond, // attempt 4: stays at the cap
	}
	for i, want := range caps {
		attempt := i + 1
		if got := p.Backoff(attempt, 0); got != 0 {
			t.Errorf("attempt %d, r=0: delay %v, want 0", attempt, got)
		}
		if got := p.Backoff(attempt, 1); got != want {
			t.Errorf("attempt %d, r=1: delay %v, want %v", attempt, got, want)
		}
	}

	// Random draws never escape the window.
	r := uint64(1)
	next := func() float64 { // xorshift, no global rand state in tests
		r ^= r << 13
		r ^= r >> 7
		r ^= r << 17
		return float64(r%1000) / 1000
	}
	for attempt := 1; attempt <= 6; attempt++ {
		for i := 0; i < 200; i++ {
			d := p.Backoff(attempt, next())
			if d < 0 || d > 250*time.Millisecond {
				t.Fatalf("attempt %d: delay %v outside [0, 250ms]", attempt, d)
			}
		}
	}
}

// TestDoBudgetExhaustionReturnsLastError checks that a spent budget
// surfaces the final attempt's error (via errors.Is) inside an
// *ExhaustedError carrying the attempt count.
func TestDoBudgetExhaustionReturnsLastError(t *testing.T) {
	errFirst := errors.New("transient A")
	errLast := errors.New("transient B")
	var delays []time.Duration
	calls := 0
	p := Policy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		Rand:        func() float64 { return 0.5 },
		Sleep:       recordingSleep(&delays),
	}
	err := Do(context.Background(), p, func(context.Context) error {
		calls++
		if calls < 3 {
			return errFirst
		}
		return errLast
	})
	if calls != 3 {
		t.Fatalf("op called %d times, want 3", calls)
	}
	var ee *ExhaustedError
	if !errors.As(err, &ee) {
		t.Fatalf("error is not *ExhaustedError: %v", err)
	}
	if ee.Attempts != 3 {
		t.Errorf("ExhaustedError.Attempts = %d, want 3", ee.Attempts)
	}
	if !errors.Is(err, errLast) {
		t.Errorf("exhausted error does not wrap the last error: %v", err)
	}
	if errors.Is(err, errFirst) {
		t.Errorf("exhausted error wraps an earlier attempt's error: %v", err)
	}
	if len(delays) != 2 {
		t.Errorf("slept %d times, want 2 (between 3 attempts)", len(delays))
	}
}

// TestDoSucceedsAfterTransientFailures checks the happy recovery path and
// the OnRetry observer contract.
func TestDoSucceedsAfterTransientFailures(t *testing.T) {
	var delays []time.Duration
	var retried []int
	calls := 0
	p := Policy{
		MaxAttempts: 5,
		BaseDelay:   time.Millisecond,
		Rand:        func() float64 { return 0.99 },
		Sleep:       recordingSleep(&delays),
		OnRetry:     func(attempt int, err error, d time.Duration) { retried = append(retried, attempt) },
	}
	err := Do(context.Background(), p, func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("flaky")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Errorf("op called %d times, want 3", calls)
	}
	if len(retried) != 2 || retried[0] != 1 || retried[1] != 2 {
		t.Errorf("OnRetry saw attempts %v, want [1 2]", retried)
	}
}

// TestDoPermanentFailsFast checks that a Permanent-marked error stops the
// loop on the first attempt.
func TestDoPermanentFailsFast(t *testing.T) {
	errCfg := errors.New("bad config")
	calls := 0
	err := Do(context.Background(), Policy{MaxAttempts: 5, Sleep: recordingSleep(&[]time.Duration{})},
		func(context.Context) error {
			calls++
			return Permanent(errCfg)
		})
	if calls != 1 {
		t.Errorf("permanent error retried: %d calls", calls)
	}
	if !errors.Is(err, errCfg) {
		t.Errorf("error lost the cause: %v", err)
	}
	if !IsPermanent(err) {
		t.Errorf("IsPermanent = false for returned error %v", err)
	}
	var ee *ExhaustedError
	if errors.As(err, &ee) {
		t.Errorf("fail-fast error wrapped in ExhaustedError: %v", err)
	}
}

// TestDoContextErrorsNotRetried checks the default classifier refuses to
// retry an op that surfaces its context's cancellation.
func TestDoContextErrorsNotRetried(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := Do(ctx, Policy{MaxAttempts: 5, Sleep: recordingSleep(&[]time.Duration{})},
		func(context.Context) error {
			calls++
			cancel()
			return ctx.Err()
		})
	if calls != 1 {
		t.Errorf("cancelled op retried: %d calls", calls)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error does not wrap context.Canceled: %v", err)
	}
}

// TestDoCancelledDuringBackoff checks the production Sleep loses to ctx,
// surfacing the cancellation instead of the transient error.
func TestDoCancelledDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{
		MaxAttempts: 3,
		BaseDelay:   10 * time.Second, // would stall the test if ctx lost
		Rand:        func() float64 { return 1 },
	}
	start := time.Now()
	err := Do(ctx, p, func(context.Context) error {
		cancel()
		return errors.New("transient")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not wrap context.Canceled: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("backoff ignored cancellation for %v", elapsed)
	}
}

// TestZeroPolicyDefaults checks the zero value resolves to the documented
// defaults rather than a zero-attempt no-op.
func TestZeroPolicyDefaults(t *testing.T) {
	var delays []time.Duration
	calls := 0
	err := Do(context.Background(), Policy{Sleep: recordingSleep(&delays)},
		func(context.Context) error {
			calls++
			return errors.New("always fails")
		})
	if calls != DefaultMaxAttempts {
		t.Errorf("zero policy made %d attempts, want %d", calls, DefaultMaxAttempts)
	}
	for _, d := range delays {
		if d < 0 || d > DefaultMaxDelay {
			t.Errorf("delay %v outside [0, %v]", d, DefaultMaxDelay)
		}
	}
	var ee *ExhaustedError
	if !errors.As(err, &ee) {
		t.Fatalf("error is not *ExhaustedError: %v", err)
	}
}
