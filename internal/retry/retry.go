// Package retry runs fallible operations under an attempt budget with
// exponentially growing, fully jittered backoff — the serving layer's
// answer to transient failures (checkpoint I/O hiccups, injected faults,
// briefly open circuit breakers) that a bare one-shot call would surface
// as a failed job.
//
// Full jitter (delay drawn uniformly from [0, cap]) is deliberate: a fleet
// of workers retrying a shared dependency with synchronized backoff
// re-creates the thundering herd it is trying to escape; spreading each
// delay over the whole window decorrelates them at no cost in expected
// wait.
//
// Errors that retrying cannot fix — context cancellation, configuration
// mistakes marked with Permanent — fail fast on the first attempt.
package retry

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Defaults applied by Do when the corresponding Policy field is zero.
const (
	DefaultMaxAttempts = 4
	DefaultBaseDelay   = 100 * time.Millisecond
	DefaultMaxDelay    = 5 * time.Second
	DefaultMultiplier  = 2.0
)

// Policy bounds the retry loop. The zero value is usable: 4 attempts,
// 100 ms base delay doubling to a 5 s cap, full jitter, default
// classifier.
type Policy struct {
	// MaxAttempts is the total attempt budget including the first try.
	MaxAttempts int
	// BaseDelay is the backoff cap after the first failure.
	BaseDelay time.Duration
	// MaxDelay bounds the backoff cap growth.
	MaxDelay time.Duration
	// Multiplier grows the cap per failed attempt (default 2).
	Multiplier float64
	// Retryable decides whether an error is worth another attempt. Nil
	// selects Retryable (permanent-marked and context errors fail fast,
	// everything else retries).
	Retryable func(error) bool
	// OnRetry, when non-nil, observes each scheduled retry: the attempt
	// that just failed (1-based), its error, and the chosen backoff.
	OnRetry func(attempt int, err error, delay time.Duration)
	// Rand supplies the jitter draw in [0, 1). Nil selects math/rand;
	// tests inject a deterministic source.
	Rand func() float64
	// Sleep waits out a backoff, returning early with ctx.Err() on
	// cancellation. Nil selects a timer-based wait; tests inject a
	// recorder.
	Sleep func(ctx context.Context, d time.Duration) error
}

// permanentError marks an error as not worth retrying.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent marks err as non-retryable: the default classifier (and any
// classifier that consults IsPermanent) fails fast on it. A nil err stays
// nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or anything it wraps) was marked with
// Permanent.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// Retryable is the default classifier: context cancellation and deadline
// expiry are not retryable (the caller is gone), Permanent-marked errors
// are not retryable (retrying cannot fix a config mistake), everything
// else — I/O errors, injected faults, open breakers — is transient until
// the budget says otherwise.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return !IsPermanent(err)
}

// ExhaustedError reports an attempt budget spent without success; Unwrap
// exposes the last attempt's error for errors.Is/As.
type ExhaustedError struct {
	// Attempts is the number of attempts made.
	Attempts int
	// Err is the error of the final attempt.
	Err error
}

func (e *ExhaustedError) Error() string {
	return fmt.Sprintf("retry: budget exhausted after %d attempt(s): %v", e.Attempts, e.Err)
}

func (e *ExhaustedError) Unwrap() error { return e.Err }

// withDefaults resolves the zero-value conveniences.
func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultMaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultBaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultMaxDelay
	}
	if p.Multiplier <= 1 {
		p.Multiplier = DefaultMultiplier
	}
	if p.Retryable == nil {
		p.Retryable = Retryable
	}
	if p.Rand == nil {
		p.Rand = rand.Float64
	}
	if p.Sleep == nil {
		p.Sleep = sleep
	}
	return p
}

// Backoff returns the fully jittered delay scheduled after the given
// failed attempt (1-based): uniform in [0, cap] where cap is
// min(MaxDelay, BaseDelay·Multiplier^(attempt-1)). r is the jitter draw
// in [0, 1).
func (p Policy) Backoff(attempt int, r float64) time.Duration {
	p = p.withDefaults()
	cap := float64(p.BaseDelay)
	for i := 1; i < attempt; i++ {
		cap *= p.Multiplier
		if cap >= float64(p.MaxDelay) {
			cap = float64(p.MaxDelay)
			break
		}
	}
	return time.Duration(r * cap)
}

// sleep is the production Sleep: a timer that loses to ctx.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Do runs op under the policy: on a retryable error it backs off and
// tries again until the attempt budget is spent, returning the last
// error wrapped in *ExhaustedError. Non-retryable errors and context
// cancellation (including cancellation during a backoff) return
// immediately.
func Do(ctx context.Context, p Policy, op func(context.Context) error) error {
	p = p.withDefaults()
	var err error
	for attempt := 1; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("retry: attempt %d: %w", attempt, cerr)
		}
		err = op(ctx)
		if err == nil {
			return nil
		}
		if !p.Retryable(err) {
			return err
		}
		if attempt >= p.MaxAttempts {
			return &ExhaustedError{Attempts: attempt, Err: err}
		}
		delay := p.Backoff(attempt, p.Rand())
		if p.OnRetry != nil {
			p.OnRetry(attempt, err, delay)
		}
		if serr := p.Sleep(ctx, delay); serr != nil {
			return fmt.Errorf("retry: backoff after attempt %d: %w", attempt, serr)
		}
	}
}
