package svg

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"

	"finser/internal/finfet"
	"finser/internal/geom"
	"finser/internal/layout"
)

func TestCanvasPrimitives(t *testing.T) {
	c := NewCanvas(0, 0, 100, 50, 2)
	c.Rect(10, 10, 20, 5, `fill="red"`)
	c.Line(0, 0, 100, 50, `stroke="blue"`)
	c.Circle(50, 25, 4, `fill="green"`)
	c.Text(1, 1, 10, "a<b&c")
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "<rect", "<line", "<circle", "<text", "a&lt;b&amp;c", "</svg>"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// Must be well-formed XML.
	if err := xml.Unmarshal(buf.Bytes(), new(interface{})); err != nil {
		t.Fatalf("invalid XML: %v", err)
	}
}

func TestCanvasYFlip(t *testing.T) {
	c := NewCanvas(0, 0, 100, 100, 1)
	// World y=0 should land at the BOTTOM of the SVG (larger SVG y).
	bottom := c.ty(0)
	top := c.ty(100)
	if bottom <= top {
		t.Errorf("y-flip broken: ty(0)=%v ty(100)=%v", bottom, top)
	}
}

func TestCanvasPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero dimensions")
		}
	}()
	NewCanvas(0, 0, 0, 10, 1)
}

func arrayForTest(t *testing.T) *layout.Array {
	t.Helper()
	arr, err := layout.NewArray(layout.ThinCellLayout(finfet.Default14nmSOI()), 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	return arr
}

func TestRenderArray(t *testing.T) {
	arr := arrayForTest(t)
	var buf bytes.Buffer
	if err := RenderArray(&buf, arr, func(int, int) bool { return false }); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// One rect per fin (plus none for grid, which uses lines).
	if got := strings.Count(out, "<rect"); got != 3*3*6 {
		t.Errorf("rect count = %d, want 54", got)
	}
	// Sensitive transistors highlighted: 3 per cell.
	if got := strings.Count(out, `stroke="#c00"`); got != 3*3*3 {
		t.Errorf("sensitive outlines = %d, want 27", got)
	}
	if err := xml.Unmarshal(buf.Bytes(), new(interface{})); err != nil {
		t.Fatalf("invalid XML: %v", err)
	}
}

func TestRenderStrikes(t *testing.T) {
	arr := arrayForTest(t)
	tracks := []Track{
		{Start: geom.V(0, 0, 30), End: geom.V(500, 300, 0)},                                       // miss
		{Start: geom.V(0, 90, 15), End: geom.V(570, 90, 15), StruckFins: []int{0, 6}},             // deposit
		{Start: geom.V(0, 20, 15), End: geom.V(570, 20, 15), StruckFins: []int{1}, Flipped: true}, // flip
	}
	var buf bytes.Buffer
	if err := RenderStrikes(&buf, arr, func(int, int) bool { return false }, tracks); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `stroke="#d11" stroke-width="1.6"`) {
		t.Error("flipped track style missing")
	}
	if !strings.Contains(out, `stroke="#e8962e"`) {
		t.Error("deposit track style missing")
	}
	if got := strings.Count(out, "<circle"); got != 3 {
		t.Errorf("struck-fin markers = %d, want 3", got)
	}
	if err := xml.Unmarshal(buf.Bytes(), new(interface{})); err != nil {
		t.Fatalf("invalid XML: %v", err)
	}
}
