package svg

import (
	"io"

	"finser/internal/geom"
	"finser/internal/layout"
	"finser/internal/sram"
)

// roleStyle maps each transistor role to a fill colour: pull-ups warm,
// pull-downs cool, pass-gates green.
func roleStyle(role sram.Role, sensitive bool) string {
	var fill string
	switch role {
	case sram.PUL, sram.PUR:
		fill = "#e8a87c"
	case sram.PDL, sram.PDR:
		fill = "#7ca6e8"
	default:
		fill = "#8ccb8c"
	}
	stroke := `stroke="#444" stroke-width="0.5"`
	if sensitive {
		stroke = `stroke="#c00" stroke-width="1.5"`
	}
	return `fill="` + fill + `" ` + stroke
}

// RenderArray draws the top view of the array: cell grid, fin channel
// boxes coloured by role, and red outlines on the radiation-sensitive
// transistors for the given data pattern (bit(row, col)).
func RenderArray(w io.Writer, arr *layout.Array, bit func(row, col int) bool) error {
	b := arr.Bounds()
	size := b.Size()
	scale := 600 / size.X
	c := NewCanvas(b.Min.X, b.Min.Y, size.X, size.Y, scale)

	// Cell grid.
	cellW := arr.Cell.WidthNm
	cellH := arr.Cell.HeightNm
	for col := 0; col <= arr.Cols; col++ {
		x := float64(col) * cellW
		c.Line(x, 0, x, size.Y, `stroke="#ddd" stroke-width="0.5"`)
	}
	for row := 0; row <= arr.Rows; row++ {
		y := float64(row) * cellH
		c.Line(0, y, size.X, y, `stroke="#ddd" stroke-width="0.5"`)
	}

	// Fins.
	for _, f := range arr.Fins() {
		_, sensitive := sram.SensitiveAxisForRole(f.Role, bit(f.Row, f.Col))
		c.Rect(f.Box.Min.X, f.Box.Min.Y,
			f.Box.Max.X-f.Box.Min.X, f.Box.Max.Y-f.Box.Min.Y,
			roleStyle(f.Role, sensitive))
	}
	c.Text(2, size.Y-6/scale*2, 12, "SRAM array top view — red outline = sensitive transistor")
	_, err := c.WriteTo(w)
	return err
}

// Track is a particle track to overlay: entry/exit in world (nm)
// coordinates plus the fins it deposited charge in.
type Track struct {
	Start, End geom.Vec3
	StruckFins []int // indices into arr.Fins()
	Flipped    bool  // whether the strike flipped at least one cell
}

// RenderStrikes draws the array with particle tracks overlaid (top-view
// projection): grey tracks missed, orange tracks deposited, red tracks
// flipped a cell.
func RenderStrikes(w io.Writer, arr *layout.Array, bit func(row, col int) bool, tracks []Track) error {
	b := arr.Bounds()
	size := b.Size()
	scale := 600 / size.X
	c := NewCanvas(b.Min.X, b.Min.Y, size.X, size.Y, scale)

	for _, f := range arr.Fins() {
		_, sensitive := sram.SensitiveAxisForRole(f.Role, bit(f.Row, f.Col))
		c.Rect(f.Box.Min.X, f.Box.Min.Y,
			f.Box.Max.X-f.Box.Min.X, f.Box.Max.Y-f.Box.Min.Y,
			roleStyle(f.Role, sensitive))
	}
	fins := arr.Fins()
	for _, tr := range tracks {
		style := `stroke="#bbb" stroke-width="0.8" stroke-opacity="0.6"`
		if len(tr.StruckFins) > 0 {
			style = `stroke="#e8962e" stroke-width="1.2"`
		}
		if tr.Flipped {
			style = `stroke="#d11" stroke-width="1.6"`
		}
		c.Line(tr.Start.X, tr.Start.Y, tr.End.X, tr.End.Y, style)
		for _, fi := range tr.StruckFins {
			if fi >= 0 && fi < len(fins) {
				ctr := fins[fi].Box.Center()
				c.Circle(ctr.X, ctr.Y, 3, `fill="none" stroke="#d11" stroke-width="1"`)
			}
		}
	}
	c.Text(2, size.Y-6/scale*2, 12, "particle tracks — red = flipped a cell")
	_, err := c.WriteTo(w)
	return err
}
