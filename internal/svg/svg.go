// Package svg is a minimal SVG canvas used to render SRAM array layouts
// and particle tracks for documentation and debugging. It covers exactly
// the primitives the layout visualizer needs — rectangles, lines, circles,
// text — with a y-flip so layout coordinates (origin bottom-left, nm) map
// onto SVG's top-left origin.
package svg

import (
	"fmt"
	"io"
	"strings"
)

// Canvas accumulates SVG elements over a world-coordinate viewport.
type Canvas struct {
	minX, minY    float64
	width, height float64
	scale         float64
	margin        float64
	elems         []string
}

// NewCanvas creates a canvas covering the world rectangle
// [minX, minX+width] × [minY, minY+height], rendered at the given scale
// (SVG units per world unit) with a fixed margin.
func NewCanvas(minX, minY, width, height, scale float64) *Canvas {
	if width <= 0 || height <= 0 || scale <= 0 {
		panic("svg: canvas needs positive dimensions and scale")
	}
	return &Canvas{
		minX: minX, minY: minY,
		width: width, height: height,
		scale:  scale,
		margin: 10,
	}
}

// tx transforms a world x to SVG x.
func (c *Canvas) tx(x float64) float64 { return (x-c.minX)*c.scale + c.margin }

// ty transforms a world y to SVG y (flipped).
func (c *Canvas) ty(y float64) float64 {
	return (c.height-(y-c.minY))*c.scale + c.margin
}

// Rect draws a world-coordinate rectangle with the given style attributes
// (e.g. `fill="#ccc" stroke="black"`).
func (c *Canvas) Rect(x, y, w, h float64, style string) {
	c.elems = append(c.elems, fmt.Sprintf(
		`<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" %s/>`,
		c.tx(x), c.ty(y+h), w*c.scale, h*c.scale, style))
}

// Line draws a world-coordinate line segment.
func (c *Canvas) Line(x1, y1, x2, y2 float64, style string) {
	c.elems = append(c.elems, fmt.Sprintf(
		`<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" %s/>`,
		c.tx(x1), c.ty(y1), c.tx(x2), c.ty(y2), style))
}

// Circle draws a world-coordinate circle; r is in SVG units so markers stay
// readable at any zoom.
func (c *Canvas) Circle(x, y, r float64, style string) {
	c.elems = append(c.elems, fmt.Sprintf(
		`<circle cx="%.2f" cy="%.2f" r="%.2f" %s/>`,
		c.tx(x), c.ty(y), r, style))
}

// Text places a label at a world coordinate; size is in SVG units.
func (c *Canvas) Text(x, y float64, size float64, content string) {
	c.elems = append(c.elems, fmt.Sprintf(
		`<text x="%.2f" y="%.2f" font-size="%.1f" font-family="monospace">%s</text>`,
		c.tx(x), c.ty(y), size, escape(content)))
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// WriteTo serializes the SVG document.
func (c *Canvas) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	totalW := c.width*c.scale + 2*c.margin
	totalH := c.height*c.scale + 2*c.margin
	fmt.Fprintf(&sb,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		totalW, totalH, totalW, totalH)
	for _, e := range c.elems {
		sb.WriteString("  " + e + "\n")
	}
	sb.WriteString("</svg>\n")
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}
