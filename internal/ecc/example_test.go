package ecc_test

import (
	"fmt"

	"finser/internal/core"
	"finser/internal/ecc"
)

func ExampleAnalyze() {
	// An MBU population dominated by adjacent-column pairs.
	rep := core.MBUReport{PairWeights: map[core.PairKey]float64{
		{DRow: 0, DCol: 1}: 0.70, // adjacent columns
		{DRow: 0, DCol: 2}: 0.20,
		{DRow: 0, DCol: 4}: 0.10, // reaches across a 4-way interleave
	}}
	for _, d := range []int{1, 2, 4} {
		a, err := ecc.Analyze(rep, ecc.Scheme{Interleave: d, SameRowOnly: true})
		if err != nil {
			panic(err)
		}
		fmt.Printf("interleave %d: %.0f%% of MBU pairs defeat SEC-DED\n",
			d, 100*a.UncorrectableShare)
	}
	// Output:
	// interleave 1: 100% of MBU pairs defeat SEC-DED
	// interleave 2: 30% of MBU pairs defeat SEC-DED
	// interleave 4: 10% of MBU pairs defeat SEC-DED
}
