// Package ecc evaluates how well word-level error correction survives the
// MBU statistics the array engine produces — the system-level question that
// motivates the paper's SEU/MBU split. A SEC-DED (single-error-correct,
// double-error-detect) code fixes any single bit flip per word, so SEUs and
// MBUs whose bits land in different words are benign; an MBU that puts two
// or more bits into one word defeats it. Memories therefore interleave
// adjacent physical columns across different logical words: with D-way
// interleaving, physical columns c and c' belong to the same word only if
// c ≡ c' (mod D), pushing same-word bits D columns apart — farther than
// most MBU clusters reach.
package ecc

import (
	"errors"

	"finser/internal/core"
)

// Scheme describes the word organization of the array.
type Scheme struct {
	// Interleave is the column-interleaving factor D: adjacent physical
	// columns belong to D different logical words. 1 means no interleaving.
	Interleave int
	// SameRowOnly restricts words to a single physical row (the usual
	// organization: one word line activates one row).
	SameRowOnly bool
}

// Validate checks the scheme.
func (s Scheme) Validate() error {
	if s.Interleave < 1 {
		return errors.New("ecc: interleave factor must be ≥ 1")
	}
	return nil
}

// SameWord reports whether two upset cells separated by (dRow, dCol) can
// share a logical word under the scheme.
func (s Scheme) SameWord(dRow, dCol int) bool {
	if s.SameRowOnly && dRow != 0 {
		return false
	}
	if dCol < 0 {
		dCol = -dCol
	}
	return dCol%s.Interleave == 0
}

// Analysis is the outcome of applying a scheme to an MBU report.
type Analysis struct {
	Scheme Scheme
	// TotalPairWeight is the expected same-event upset pairs per strike.
	TotalPairWeight float64
	// SameWordPairWeight is the subset landing in one logical word —
	// the SEC-DED-uncorrectable events.
	SameWordPairWeight float64
	// UncorrectableShare = SameWordPairWeight / TotalPairWeight (0 when no
	// pairs occurred).
	UncorrectableShare float64
}

// Analyze classifies an MBU report's pair statistics under the scheme.
func Analyze(rep core.MBUReport, s Scheme) (Analysis, error) {
	if err := s.Validate(); err != nil {
		return Analysis{}, err
	}
	a := Analysis{Scheme: s}
	for key, w := range rep.PairWeights {
		a.TotalPairWeight += w
		if s.SameWord(key.DRow, key.DCol) {
			a.SameWordPairWeight += w
		}
	}
	if a.TotalPairWeight > 0 {
		a.UncorrectableShare = a.SameWordPairWeight / a.TotalPairWeight
	}
	return a, nil
}

// ResidualMBUFIT estimates the post-ECC failure rate contributed by MBUs:
// the raw MBU FIT scaled by the share of upset pairs that defeat the code.
// (First-order: events with three or more same-word bits are far rarer than
// doubles and are conservatively covered by the pair accounting.)
func ResidualMBUFIT(mbuFIT float64, a Analysis) float64 {
	return mbuFIT * a.UncorrectableShare
}

// InterleaveSweep analyzes a report across interleave factors, returning
// the uncorrectable share per factor — the curve a designer uses to pick
// the cheapest interleaving that meets a FIT budget.
func InterleaveSweep(rep core.MBUReport, factors []int, sameRowOnly bool) ([]Analysis, error) {
	out := make([]Analysis, 0, len(factors))
	for _, d := range factors {
		a, err := Analyze(rep, Scheme{Interleave: d, SameRowOnly: sameRowOnly})
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}
