package ecc

import (
	"math"
	"testing"

	"finser/internal/core"
)

func report(pairs map[core.PairKey]float64) core.MBUReport {
	return core.MBUReport{PairWeights: pairs}
}

func TestSchemeValidate(t *testing.T) {
	if err := (Scheme{Interleave: 0}).Validate(); err == nil {
		t.Error("zero interleave accepted")
	}
	if err := (Scheme{Interleave: 4}).Validate(); err != nil {
		t.Errorf("valid scheme rejected: %v", err)
	}
	if _, err := Analyze(core.MBUReport{}, Scheme{Interleave: -1}); err == nil {
		t.Error("Analyze accepted bad scheme")
	}
}

func TestSameWord(t *testing.T) {
	s := Scheme{Interleave: 4, SameRowOnly: true}
	cases := []struct {
		dr, dc int
		want   bool
	}{
		{0, 0, true},  // same cell position class
		{0, 4, true},  // one word apart in interleave stride
		{0, -8, true}, // negative separations normalize
		{0, 1, false}, // adjacent columns → different words
		{0, 3, false}, //
		{1, 4, false}, // different rows excluded when SameRowOnly
		{2, 0, false}, //
	}
	for _, c := range cases {
		if got := s.SameWord(c.dr, c.dc); got != c.want {
			t.Errorf("SameWord(%d,%d) = %v, want %v", c.dr, c.dc, got, c.want)
		}
	}
	// Without the row restriction, cross-row pairs can share a word.
	s2 := Scheme{Interleave: 4}
	if !s2.SameWord(1, 4) {
		t.Error("cross-row same-word pair rejected without SameRowOnly")
	}
	// No interleaving: every same-row pair shares a word.
	s3 := Scheme{Interleave: 1, SameRowOnly: true}
	if !s3.SameWord(0, 1) || !s3.SameWord(0, 7) {
		t.Error("interleave=1 should put all same-row pairs in one word")
	}
}

func TestAnalyze(t *testing.T) {
	rep := report(map[core.PairKey]float64{
		{DRow: 0, DCol: 1}: 0.6, // adjacent-column pair (the common MBU)
		{DRow: 0, DCol: 4}: 0.1, // rare long-range pair
		{DRow: 1, DCol: 0}: 0.3, // adjacent-row pair
	})
	a, err := Analyze(rep, Scheme{Interleave: 4, SameRowOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.TotalPairWeight-1.0) > 1e-12 {
		t.Errorf("total = %v", a.TotalPairWeight)
	}
	if math.Abs(a.SameWordPairWeight-0.1) > 1e-12 {
		t.Errorf("same-word = %v", a.SameWordPairWeight)
	}
	if math.Abs(a.UncorrectableShare-0.1) > 1e-12 {
		t.Errorf("share = %v", a.UncorrectableShare)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	a, err := Analyze(report(nil), Scheme{Interleave: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.UncorrectableShare != 0 || a.TotalPairWeight != 0 {
		t.Error("empty report should yield zeros")
	}
}

func TestResidualMBUFIT(t *testing.T) {
	a := Analysis{UncorrectableShare: 0.25}
	if got := ResidualMBUFIT(8.0, a); got != 2.0 {
		t.Errorf("residual = %v", got)
	}
}

func TestInterleaveSweepMonotone(t *testing.T) {
	// MBU pairs concentrate at small column separations, so increasing the
	// interleave factor must not increase the uncorrectable share.
	rep := report(map[core.PairKey]float64{
		{DRow: 0, DCol: 1}: 0.55,
		{DRow: 0, DCol: 2}: 0.25,
		{DRow: 0, DCol: 3}: 0.10,
		{DRow: 0, DCol: 4}: 0.06,
		{DRow: 0, DCol: 6}: 0.03,
		{DRow: 0, DCol: 8}: 0.01,
	})
	factors := []int{1, 2, 4, 8}
	as, err := InterleaveSweep(rep, factors, true)
	if err != nil {
		t.Fatal(err)
	}
	if as[0].UncorrectableShare != 1 {
		t.Errorf("no interleaving should leave all pairs uncorrectable, got %v",
			as[0].UncorrectableShare)
	}
	prev := math.Inf(1)
	for i, a := range as {
		if a.UncorrectableShare > prev+1e-12 {
			t.Errorf("share not non-increasing at factor %d", factors[i])
		}
		prev = a.UncorrectableShare
	}
	if last := as[len(as)-1].UncorrectableShare; last != 0.01 {
		t.Errorf("8-way interleave share = %v, want 0.01", last)
	}
	if _, err := InterleaveSweep(rep, []int{0}, true); err == nil {
		t.Error("bad factor accepted")
	}
}
