package phys

import "math"

// Nuclear (elastic-collision) stopping of slow heavy ions in silicon, using
// the ZBL universal reduced stopping. For the Si/Mg/Al recoils produced by
// neutron reactions, nuclear stopping rivals or exceeds electronic stopping
// below ~1 MeV, and roughly half of it (the Lindhard partition) still ends
// up as ionization through the recoil cascade — charge the SER analysis
// must not drop.

// IonizationPartition is the fraction of nuclear stopping converted to
// electron–hole pairs by the displacement cascade (Lindhard partition;
// ~0.5 for Si recoils in the relevant energy range).
const IonizationPartition = 0.5

// siliconNumberDensity is atoms/nm³.
const siliconNumberDensity = 49.94

// ZBLNuclearStopping returns the nuclear stopping power of the species in
// silicon, in eV/nm. Protons and alphas have negligible nuclear stopping at
// the energies this library handles and return 0.
func ZBLNuclearStopping(sp Species, energyMeV float64) float64 {
	if energyMeV <= 0 || !sp.HeavyIon() {
		return 0
	}
	z1 := sp.ChargeNumber()
	m1 := sp.MassMeV() / 931.494 // amu
	const z2, m2 = SiliconZ, SiliconA
	eKeV := energyMeV * 1e3

	zTerm := math.Pow(z1, 0.23) + math.Pow(z2, 0.23)
	eps := 32.53 * m2 * eKeV / (z1 * z2 * (m1 + m2) * zTerm)
	var sn float64
	if eps <= 30 {
		sn = math.Log(1+1.1383*eps) /
			(2 * (eps + 0.01321*math.Pow(eps, 0.21226) + 0.19593*math.Sqrt(eps)))
	} else {
		sn = math.Log(eps) / (2 * eps)
	}
	// eV per 1e15 atoms/cm².
	sUniversal := 8.462 * z1 * z2 * m1 * sn / ((m1 + m2) * zTerm)
	// 1 nm of silicon is n·1 nm = 49.94 atoms/nm² = 4.994 × (1e15 atoms/cm²).
	return sUniversal * siliconNumberDensity / 10
}

// CombinedStopping returns electronic plus nuclear stopping (eV/nm) — the
// total energy-loss rate governing how far an ion travels.
func CombinedStopping(m StoppingModel, sp Species, energyMeV float64) float64 {
	return m.ElectronicStopping(sp, energyMeV) + ZBLNuclearStopping(sp, energyMeV)
}

// IonizingStopping returns the stopping that generates electron–hole pairs:
// all of the electronic part plus the Lindhard partition of the nuclear
// part.
func IonizingStopping(m StoppingModel, sp Species, energyMeV float64) float64 {
	return m.ElectronicStopping(sp, energyMeV) +
		IonizationPartition*ZBLNuclearStopping(sp, energyMeV)
}

// IonRange integrates 1/(Se+Sn) to the continuous-slowing-down range in nm
// (heavy ions; for p/α it coincides with CSDARange).
func IonRange(m StoppingModel, sp Species, energyMeV float64) float64 {
	const cutoff = 1e-3
	if energyMeV <= cutoff {
		return 0
	}
	const steps = 400
	lnLo, lnHi := math.Log(cutoff), math.Log(energyMeV)
	h := (lnHi - lnLo) / steps
	integrand := func(lnE float64) float64 {
		e := math.Exp(lnE)
		s := CombinedStopping(m, sp, e)
		if s <= 0 {
			return 0
		}
		return e * 1e6 / s
	}
	sum := 0.5 * (integrand(lnLo) + integrand(lnHi))
	for i := 1; i < steps; i++ {
		sum += integrand(lnLo + float64(i)*h)
	}
	return sum * h
}
