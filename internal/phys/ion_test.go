package phys

import (
	"math"
	"testing"
)

func TestHeavyIonSpecies(t *testing.T) {
	for _, sp := range []Species{MagnesiumIon, AluminumIon, SiliconIon} {
		if !sp.HeavyIon() {
			t.Errorf("%v should be a heavy ion", sp)
		}
		if sp.MassMeV() < 20000 || sp.MassMeV() > 30000 {
			t.Errorf("%v mass = %v MeV", sp, sp.MassMeV())
		}
		if sp.ChargeNumber() < 12 || sp.ChargeNumber() > 14 {
			t.Errorf("%v charge = %v", sp, sp.ChargeNumber())
		}
		if sp.String() == "" {
			t.Errorf("%v has empty name", sp)
		}
	}
	if Proton.HeavyIon() || Alpha.HeavyIon() {
		t.Error("p/α are not heavy ions")
	}
}

func TestIonStoppingPositiveAndHuge(t *testing.T) {
	// A 100 keV recoil ion is densely ionizing once the cascade (nuclear)
	// contribution is included: its ionizing stopping must exceed a
	// proton's at the same energy, in both models.
	for _, m := range []StoppingModel{NewTabulatedStopping(), BetheBlochStopping{}} {
		for _, sp := range []Species{MagnesiumIon, AluminumIon, SiliconIon} {
			s := IonizingStopping(m, sp, 0.1)
			p := IonizingStopping(m, Proton, 0.1)
			if s <= p {
				t.Errorf("%T: %v ionizing stopping %v not above proton %v at 100 keV", m, sp, s, p)
			}
			if m.ElectronicStopping(sp, 0.1) <= 0 {
				t.Errorf("%T: %v electronic stopping non-positive", m, sp)
			}
			if m.ElectronicStopping(sp, 0) != 0 {
				t.Errorf("%v stopping at zero energy should be 0", sp)
			}
		}
	}
}

func TestIonStoppingEffectiveChargeLimits(t *testing.T) {
	// At equal velocity (equal E/m), a fast Si ion approaches Z² = 196×
	// the proton stopping; a slow one carries far less effective charge.
	tab := NewTabulatedStopping()
	mRatio := SiliconIon.MassMeV() / Proton.MassMeV()
	// Fast: 5 MeV-per-nucleon-scale silicon.
	eFast := 5.0 * mRatio
	rFast := tab.ElectronicStopping(SiliconIon, eFast) / tab.ElectronicStopping(Proton, 5.0)
	if rFast < 100 || rFast > 196.1 {
		t.Errorf("fast Si/proton stopping ratio = %v, want → Z²=196", rFast)
	}
	// Slow: 100 keV silicon (same velocity as a ~3.6 keV proton).
	eSlowProton := 0.1 / mRatio
	rSlow := tab.ElectronicStopping(SiliconIon, 0.1) / tab.ElectronicStopping(Proton, eSlowProton)
	if rSlow >= rFast {
		t.Errorf("slow ion ratio %v not below fast ratio %v", rSlow, rFast)
	}
}

func TestIonRangeShort(t *testing.T) {
	// Si recoils are short-range: a 1 MeV Si ion stops within a few µm
	// (SRIM: ~1.5 µm), far shorter than a 1 MeV proton.
	r := IonRange(NewTabulatedStopping(), SiliconIon, 1)
	if r <= 100 || r > 5e3 {
		t.Errorf("1 MeV Si range = %v nm, want ~1.5 µm", r)
	}
	if rp := CSDARange(NewTabulatedStopping(), Proton, 1); r >= rp {
		t.Errorf("Si range %v not below proton range %v", r, rp)
	}
}

func TestZBLNuclearStopping(t *testing.T) {
	// Protons/alphas: negligible by construction here.
	if ZBLNuclearStopping(Proton, 1) != 0 || ZBLNuclearStopping(Alpha, 1) != 0 {
		t.Error("nuclear stopping should be 0 for p/α in this model")
	}
	if ZBLNuclearStopping(SiliconIon, 0) != 0 {
		t.Error("zero energy should give zero nuclear stopping")
	}
	// Si on Si: nuclear stopping dominates electronic at 50 keV and is
	// dominated by it at 5 MeV.
	tab := NewTabulatedStopping()
	low := ZBLNuclearStopping(SiliconIon, 0.05)
	if low <= tab.ElectronicStopping(SiliconIon, 0.05) {
		t.Errorf("nuclear %v should dominate electronic at 50 keV", low)
	}
	high := ZBLNuclearStopping(SiliconIon, 5)
	if high >= tab.ElectronicStopping(SiliconIon, 5) {
		t.Errorf("nuclear %v should be below electronic at 5 MeV", high)
	}
	// Magnitude sanity: Si on Si near the nuclear peak is O(100 eV/nm).
	peak := 0.0
	for e := 0.001; e < 10; e *= 1.2 {
		if s := ZBLNuclearStopping(SiliconIon, e); s > peak {
			peak = s
		}
	}
	if peak < 50 || peak > 2000 {
		t.Errorf("ZBL nuclear peak = %v eV/nm, implausible", peak)
	}
}

func TestIonizingVsCombined(t *testing.T) {
	tab := NewTabulatedStopping()
	for _, e := range []float64{0.05, 0.3, 2} {
		comb := CombinedStopping(tab, SiliconIon, e)
		ion := IonizingStopping(tab, SiliconIon, e)
		elec := tab.ElectronicStopping(SiliconIon, e)
		if !(ion >= elec && ion <= comb) {
			t.Errorf("at %v MeV: ionizing %v outside [electronic %v, combined %v]",
				e, ion, elec, comb)
		}
	}
	// For protons they all coincide.
	if CombinedStopping(tab, Proton, 1) != tab.ElectronicStopping(Proton, 1) {
		t.Error("proton combined != electronic")
	}
}

func TestIonDepositDominatesFin(t *testing.T) {
	// A 2 MeV Si recoil (typical elastic recoil of a 20+ MeV neutron)
	// crossing 10 nm of silicon deposits thousands of e-h pairs — enough
	// to flip any cell it starts in. This is the neutron upset mechanism.
	s := IonizingStopping(NewTabulatedStopping(), SiliconIon, 2)
	pairs := PairsFromEnergy(s * 10)
	if pairs < 1000 {
		t.Errorf("Si recoil deposits only %v pairs over 10 nm", pairs)
	}
}

func TestLandauXiHeavyIon(t *testing.T) {
	// ξ scales with z²/β²; a slow heavy ion has an enormous Landau scale.
	xiSi := LandauXiEV(SiliconIon, 1, 10)
	xiP := LandauXiEV(Proton, 1, 10)
	if xiSi <= xiP {
		t.Errorf("Si ξ %v not above proton ξ %v", xiSi, xiP)
	}
	if math.IsNaN(xiSi) || math.IsInf(xiSi, 0) {
		t.Error("non-finite ξ")
	}
}
