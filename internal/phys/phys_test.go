package phys

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSpeciesString(t *testing.T) {
	if Proton.String() != "proton" || Alpha.String() != "alpha" {
		t.Error("species names wrong")
	}
	if Species(99).String() != "Species(99)" {
		t.Error("unknown species string wrong")
	}
}

func TestSpeciesPanicsOnUnknown(t *testing.T) {
	for _, fn := range []func(){
		func() { Species(99).MassMeV() },
		func() { Species(99).ChargeNumber() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for unknown species")
				}
			}()
			fn()
		}()
	}
}

func TestBeta2(t *testing.T) {
	if Proton.Beta2(0) != 0 || Proton.Beta2(-1) != 0 {
		t.Error("beta2 should be 0 at non-positive energy")
	}
	// Non-relativistic check: T = ½mv² ⇒ β² ≈ 2T/m.
	b2 := Proton.Beta2(1)
	if want := 2.0 / 938.272; math.Abs(b2-want)/want > 0.01 {
		t.Errorf("proton β²(1 MeV) = %v, want ≈ %v", b2, want)
	}
	// Same energy ⇒ alpha slower than proton (paper: τp,proton ≈ τp,alpha/10
	// comes from speed ordering at the relevant energies).
	if Alpha.Beta2(1) >= Proton.Beta2(1) {
		t.Error("alpha should be slower than proton at equal kinetic energy")
	}
	// β² is monotone in energy and bounded by 1.
	prev := 0.0
	for e := 0.01; e < 1e5; e *= 2 {
		b := Proton.Beta2(e)
		if b <= prev || b >= 1 {
			t.Fatalf("β² not monotone/bounded at %v MeV: %v", e, b)
		}
		prev = b
	}
}

func TestSpeed(t *testing.T) {
	// 10 MeV proton: β ≈ 0.145 ⇒ v ≈ 43.5 nm/fs.
	v := Proton.SpeedNmPerFs(10)
	if v < 40 || v < 0 || v > 50 {
		t.Errorf("proton speed at 10 MeV = %v nm/fs", v)
	}
	if Alpha.SpeedNmPerFs(0) != 0 {
		t.Error("speed at zero energy should be 0")
	}
	// Paper §3.3: τp (fin crossing) is far below the ~10 fs transit time.
	// A 1 MeV alpha crosses a 10 nm fin in well under 1 fs.
	tau := 10.0 / Alpha.SpeedNmPerFs(1)
	if tau >= 1.5 {
		t.Errorf("alpha fin passage time = %v fs, want < 1.5 fs", tau)
	}
}

func TestPairStatistics(t *testing.T) {
	if PairsFromEnergy(-5) != 0 || PairsFromEnergy(0) != 0 {
		t.Error("pairs from non-positive energy should be 0")
	}
	if got := PairsFromEnergy(360); math.Abs(got-100) > 1e-9 {
		t.Errorf("PairsFromEnergy(360) = %v, want 100", got)
	}
	if got := ChargeFromPairs(1); got != ElementaryCharge {
		t.Errorf("ChargeFromPairs(1) = %v", got)
	}
	if got := ChargeFromEnergy(3.6); math.Abs(got-ElementaryCharge) > 1e-30 {
		t.Errorf("ChargeFromEnergy(3.6) = %v", got)
	}
}

func TestTabulatedStoppingBasics(t *testing.T) {
	m := NewTabulatedStopping()
	if m.ElectronicStopping(Proton, 0) != 0 || m.ElectronicStopping(Alpha, -1) != 0 {
		t.Error("stopping at non-positive energy should be 0")
	}
	// Spot values against the anchor data (within interpolation exactness).
	// Proton at 1 MeV: 180 MeV·cm²/g → 180·2.329·0.1 ≈ 41.9 eV/nm.
	got := m.ElectronicStopping(Proton, 1)
	if math.Abs(got-41.9)/41.9 > 0.02 {
		t.Errorf("proton S(1 MeV) = %v eV/nm, want ≈ 41.9", got)
	}
	// Alpha at 1 MeV: 1340 → ≈ 312 eV/nm.
	got = m.ElectronicStopping(Alpha, 1)
	if math.Abs(got-312)/312 > 0.02 {
		t.Errorf("alpha S(1 MeV) = %v eV/nm, want ≈ 312", got)
	}
}

func TestAlphaExceedsProton(t *testing.T) {
	// The paper's Fig. 4 ordering: alpha generates far more e-h pairs than
	// a proton at every energy of interest.
	for _, m := range []StoppingModel{NewTabulatedStopping(), BetheBlochStopping{}} {
		for e := 0.1; e <= 100; e *= 1.5 {
			a := m.ElectronicStopping(Alpha, e)
			p := m.ElectronicStopping(Proton, e)
			if a <= p {
				t.Errorf("%T: alpha stopping %v <= proton %v at %v MeV", m, a, p, e)
			}
		}
	}
}

func TestStoppingDecreasingAboveBraggPeak(t *testing.T) {
	// Fig. 4: yield decreases with energy in the MeV range (above the peak).
	for _, tc := range []struct {
		sp    Species
		above float64
	}{{Proton, 0.2}, {Alpha, 1.0}} {
		m := NewTabulatedStopping()
		prev := math.Inf(1)
		for e := tc.above; e <= 100; e *= 1.3 {
			s := m.ElectronicStopping(tc.sp, e)
			if s >= prev {
				t.Errorf("%v stopping not decreasing at %v MeV", tc.sp, e)
			}
			prev = s
		}
	}
}

func TestBraggPeakExists(t *testing.T) {
	// Both models must exhibit a maximum at low energy (the Bragg peak):
	// stopping rises, then falls.
	for _, m := range []StoppingModel{NewTabulatedStopping(), BetheBlochStopping{}} {
		for _, sp := range []Species{Proton, Alpha} {
			peakE, peakS := 0.0, 0.0
			for e := 0.002; e <= 100; e *= 1.1 {
				if s := m.ElectronicStopping(sp, e); s > peakS {
					peakS, peakE = s, e
				}
			}
			if peakE <= 0.002*1.1 || peakE >= 50 {
				t.Errorf("%T %v: Bragg peak at implausible %v MeV", m, sp, peakE)
			}
			if peakS <= 0 {
				t.Errorf("%T %v: zero peak stopping", m, sp)
			}
		}
	}
}

func TestAnalyticVsTabulatedWithinBand(t *testing.T) {
	// The analytic model should track the tabulated anchors within a factor
	// of ~2 over the energies that matter for the flow (0.05–100 MeV).
	tab := NewTabulatedStopping()
	ana := BetheBlochStopping{}
	for _, sp := range []Species{Proton, Alpha} {
		for e := 0.05; e <= 100; e *= 1.6 {
			ts := tab.ElectronicStopping(sp, e)
			as := ana.ElectronicStopping(sp, e)
			if as <= 0 {
				t.Fatalf("analytic stopping non-positive for %v at %v MeV", sp, e)
			}
			r := as / ts
			if r < 0.4 || r > 2.5 {
				t.Errorf("%v at %v MeV: analytic/tabulated = %v", sp, e, r)
			}
		}
	}
}

func TestStoppingPositive(t *testing.T) {
	f := func(raw float64) bool {
		e := math.Abs(math.Mod(raw, 1000))
		tab := NewTabulatedStopping()
		return tab.ElectronicStopping(Proton, e) >= 0 &&
			tab.ElectronicStopping(Alpha, e) >= 0 &&
			(BetheBlochStopping{}).ElectronicStopping(Proton, e) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCSDARange(t *testing.T) {
	m := NewTabulatedStopping()
	// 5 MeV alpha range in Si ≈ 25 µm; accept a generous band around it.
	r := CSDARange(m, Alpha, 5)
	if r < 10e3 || r > 60e3 {
		t.Errorf("alpha 5 MeV range = %v nm, want ~25e3", r)
	}
	// 10 MeV proton range in Si ≈ 700 µm.
	r = CSDARange(m, Proton, 10)
	if r < 300e3 || r > 1.5e6 {
		t.Errorf("proton 10 MeV range = %v nm, want ~700e3", r)
	}
	// Range is monotone in energy.
	prev := 0.0
	for e := 0.01; e < 100; e *= 3 {
		rr := CSDARange(m, Proton, e)
		if rr <= prev {
			t.Fatalf("range not monotone at %v MeV", e)
		}
		prev = rr
	}
	if CSDARange(m, Proton, 0) != 0 {
		t.Error("range at 0 energy should be 0")
	}
}

func TestBohrStraggling(t *testing.T) {
	if BohrStragglingSigmaEV(Proton, 0) != 0 || BohrStragglingSigmaEV(Proton, -1) != 0 {
		t.Error("straggling of non-positive path should be 0")
	}
	// Alpha over 10 nm: Ω ≈ sqrt(0.1569·4·0.4985·2.329·1e-6) MeV ≈ 854 eV.
	got := BohrStragglingSigmaEV(Alpha, 10)
	if math.Abs(got-854)/854 > 0.05 {
		t.Errorf("alpha straggling over 10 nm = %v eV, want ≈ 854", got)
	}
	// z² scaling: alpha σ = 2× proton σ at equal path.
	p := BohrStragglingSigmaEV(Proton, 10)
	if math.Abs(got/p-2) > 1e-9 {
		t.Errorf("alpha/proton straggling ratio = %v, want 2", got/p)
	}
	// √L scaling.
	if r := BohrStragglingSigmaEV(Proton, 40) / p; math.Abs(r-2) > 1e-9 {
		t.Errorf("straggling path scaling = %v, want 2", r)
	}
}

func TestEffectiveChargeLimits(t *testing.T) {
	// Fast alpha carries its full charge; slow alpha carries less.
	fast := effectiveCharge(Alpha, 100)
	if math.Abs(fast-2) > 0.01 {
		t.Errorf("fast alpha effective charge = %v", fast)
	}
	slow := effectiveCharge(Alpha, 0.01)
	if slow >= fast || slow <= 0 {
		t.Errorf("slow alpha effective charge = %v", slow)
	}
}
