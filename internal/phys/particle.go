// Package phys models the particle/matter interaction physics the paper
// obtains from Geant4: electronic stopping power of protons and
// alpha-particles in silicon, continuous-slowing-down ranges, energy-loss
// straggling, and electron–hole pair statistics (one pair per 3.6 eV).
//
// Two stopping models are provided. The default is a tabulated model with
// anchors transcribed (approximately) from the NIST PSTAR/ASTAR electronic
// stopping tables for silicon, interpolated log-log. A purely analytic
// Bethe–Bloch model with a Lindhard–Scharff low-energy limb and
// effective-charge scaling serves as an independent cross-check and covers
// energies beyond the table. Absolute accuracy of a few tens of percent is
// sufficient here: the paper's conclusions depend on the *shape* of the
// yield-vs-energy curve and on the alpha/proton ordering, both of which are
// robust properties of electronic stopping.
package phys

import "fmt"

// Species identifies a directly ionizing particle species.
type Species int

const (
	// Proton is a free proton (direct ionization, important below ~65 nm).
	Proton Species = iota
	// Alpha is a helium nucleus emitted by package radio-contaminants, or
	// produced by the ²⁸Si(n,α)²⁵Mg reaction.
	Alpha
	// MagnesiumIon is the ²⁵Mg recoil of the (n,α) reaction.
	MagnesiumIon
	// AluminumIon is the ²⁸Al recoil of the (n,p) reaction.
	AluminumIon
	// SiliconIon is the ²⁸Si recoil of elastic neutron scattering.
	SiliconIon
)

// String implements fmt.Stringer.
func (s Species) String() string {
	switch s {
	case Proton:
		return "proton"
	case Alpha:
		return "alpha"
	case MagnesiumIon:
		return "mg-ion"
	case AluminumIon:
		return "al-ion"
	case SiliconIon:
		return "si-ion"
	default:
		return fmt.Sprintf("Species(%d)", int(s))
	}
}

// MassMeV returns the particle rest mass in MeV/c².
func (s Species) MassMeV() float64 {
	switch s {
	case Proton:
		return 938.272
	case Alpha:
		return 3727.379
	case MagnesiumIon:
		return 23253.5 // ²⁵Mg ≈ 24.9858 u
	case AluminumIon:
		return 26058.3 // ²⁸Al ≈ 27.9819 u
	case SiliconIon:
		return 26053.2 // ²⁸Si ≈ 27.9769 u
	default:
		panic("phys: unknown species")
	}
}

// ChargeNumber returns the particle charge in units of the elementary
// charge.
func (s Species) ChargeNumber() float64 {
	switch s {
	case Proton:
		return 1
	case Alpha:
		return 2
	case MagnesiumIon:
		return 12
	case AluminumIon:
		return 13
	case SiliconIon:
		return 14
	default:
		panic("phys: unknown species")
	}
}

// HeavyIon reports whether the species' stopping power is obtained by
// effective-charge scaling of the proton curve rather than a dedicated
// table (the standard Ziegler scaling for slow recoil ions).
func (s Species) HeavyIon() bool {
	switch s {
	case MagnesiumIon, AluminumIon, SiliconIon:
		return true
	default:
		return false
	}
}

// Beta2 returns β² = v²/c² for the species at the given kinetic energy.
func (s Species) Beta2(energyMeV float64) float64 {
	if energyMeV <= 0 {
		return 0
	}
	gamma := 1 + energyMeV/s.MassMeV()
	return 1 - 1/(gamma*gamma)
}

// SpeedNmPerFs returns the particle speed in nm/fs (1 nm/fs = 1e6 m/s).
// Used for the particle-passage-time argument (τp ≪ τ) in the paper's
// current-pulse model.
func (s Species) SpeedNmPerFs(energyMeV float64) float64 {
	const cNmPerFs = 299.792458 // speed of light in nm/fs
	beta2 := s.Beta2(energyMeV)
	if beta2 <= 0 {
		return 0
	}
	return cNmPerFs * sqrt(beta2)
}
