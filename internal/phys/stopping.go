package phys

import (
	"fmt"
	"math"

	"finser/internal/lut"
)

// StoppingModel supplies the electronic stopping power (-dE/dx) of a
// species in silicon, in eV/nm, as a function of kinetic energy in MeV.
type StoppingModel interface {
	// ElectronicStopping returns -dE/dx in eV/nm at the given kinetic
	// energy in MeV. It returns 0 for non-positive energies.
	ElectronicStopping(sp Species, energyMeV float64) float64
}

// ---------------------------------------------------------------------------
// Tabulated model (default): NIST PSTAR/ASTAR-style anchors, log-log
// interpolated. Values are MeV·cm²/g electronic (collision) stopping in
// silicon, transcribed approximately; see DESIGN.md §2 for why approximate
// anchors suffice.
// ---------------------------------------------------------------------------

var protonAnchors = struct{ e, s []float64 }{
	e: []float64{0.001, 0.005, 0.01, 0.02, 0.05, 0.08, 0.1, 0.2, 0.3, 0.5,
		0.8, 1, 2, 3, 5, 10, 20, 50, 100, 200, 500, 1000},
	s: []float64{96, 212, 295, 400, 520, 545, 540, 455, 390, 295,
		215, 180, 108, 78, 53, 30.5, 17.6, 8.6, 5.1, 3.2, 2.05, 1.75},
}

var alphaAnchors = struct{ e, s []float64 }{
	e: []float64{0.001, 0.01, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 1, 1.5,
		2, 3, 5, 8, 10, 20, 50, 100},
	s: []float64{170, 470, 770, 905, 1110, 1230, 1360, 1400, 1340, 1190,
		1060, 870, 645, 475, 405, 248, 122, 72},
}

// TabulatedStopping interpolates NIST-style anchors log-log in both axes.
type TabulatedStopping struct {
	proton *lut.Table1D
	alpha  *lut.Table1D
}

// NewTabulatedStopping builds the default stopping model.
func NewTabulatedStopping() *TabulatedStopping {
	p, err := lut.NewTable1D(protonAnchors.e, protonAnchors.s, lut.Log, lut.Log)
	if err != nil {
		panic(fmt.Sprintf("phys: bad proton anchors: %v", err))
	}
	a, err := lut.NewTable1D(alphaAnchors.e, alphaAnchors.s, lut.Log, lut.Log)
	if err != nil {
		panic(fmt.Sprintf("phys: bad alpha anchors: %v", err))
	}
	return &TabulatedStopping{proton: p, alpha: a}
}

// ElectronicStopping implements StoppingModel. Heavy recoil ions (Si, Mg,
// Al from neutron reactions) use Ziegler effective-charge scaling of the
// proton curve: S_ion(E) = Z_eff(v)²·S_p(E·m_p/m_ion), evaluated at the
// proton energy of equal velocity.
func (t *TabulatedStopping) ElectronicStopping(sp Species, energyMeV float64) float64 {
	if energyMeV <= 0 {
		return 0
	}
	var mass float64
	switch sp {
	case Proton:
		mass = t.proton.Eval(energyMeV)
	case Alpha:
		mass = t.alpha.Eval(energyMeV)
	default:
		if !sp.HeavyIon() {
			panic("phys: unknown species")
		}
		eEquiv := energyMeV * Proton.MassMeV() / sp.MassMeV()
		z := effectiveCharge(sp, energyMeV)
		mass = z * z * t.proton.Eval(eEquiv)
	}
	return MassStoppingToEVPerNm(mass)
}

// ---------------------------------------------------------------------------
// Fast resampled model: the transport hot loop evaluates stopping once (or
// twice) per 2 nm sub-step, and the log-log anchor interpolation costs three
// logarithms, an exponential, and a binary search per call. FastStopping
// pre-samples any StoppingModel onto a dense log-uniform energy grid at
// construction, so an evaluation is one logarithm, an index computation, and
// a linear interpolation of the stored stopping values. With fastPoints
// samples per species over [fastLoMeV, fastHiMeV] the grid spacing is
// ~0.002 in ln E; the curve's |d²S/dlnE²|/S stays O(1) (the effective-charge
// knee of the heavy recoils is the worst case), so the resampling error is
// below 1e-4 relative — orders of magnitude under the anchor transcription
// accuracy the tables themselves carry.
// ---------------------------------------------------------------------------

const (
	fastPoints = 8192
	fastLoMeV  = 1e-4
	fastHiMeV  = 1e4
)

// FastStopping is a dense log-uniform resampling of a wrapped StoppingModel,
// built once per species. It is immutable after construction and safe for
// concurrent use.
type FastStopping struct {
	inner StoppingModel
	// s[sp][i] is the stopping at energy exp(lnLo + i/invStep); energies
	// outside [fastLoMeV, fastHiMeV] clamp to the end samples, matching the
	// wrapped tables' own clamping (their domains sit strictly inside).
	s       [SiliconIon + 1][]float64
	lnLo    float64
	invStep float64
}

// NewFastStopping resamples m for every species onto the dense grid.
func NewFastStopping(m StoppingModel) *FastStopping {
	f := &FastStopping{inner: m}
	f.lnLo = math.Log(fastLoMeV)
	lnHi := math.Log(fastHiMeV)
	f.invStep = float64(fastPoints-1) / (lnHi - f.lnLo)
	for sp := Proton; sp <= SiliconIon; sp++ {
		tab := make([]float64, fastPoints)
		for i := range tab {
			e := math.Exp(f.lnLo + float64(i)/f.invStep)
			tab[i] = m.ElectronicStopping(sp, e)
		}
		f.s[sp] = tab
	}
	return f
}

// ElectronicStopping implements StoppingModel with one Log and a lerp.
func (f *FastStopping) ElectronicStopping(sp Species, energyMeV float64) float64 {
	if energyMeV <= 0 {
		return 0
	}
	if sp < Proton || sp > SiliconIon {
		return f.inner.ElectronicStopping(sp, energyMeV)
	}
	tab := f.s[sp]
	pos := (math.Log(energyMeV) - f.lnLo) * f.invStep
	if pos <= 0 {
		return tab[0]
	}
	if pos >= fastPoints-1 {
		return tab[fastPoints-1]
	}
	i := int(pos)
	fr := pos - float64(i)
	return tab[i] + fr*(tab[i+1]-tab[i])
}

// ---------------------------------------------------------------------------
// Analytic model: Bethe–Bloch above a species-dependent validity energy,
// a Lindhard–Scharff √E limb below the Bragg peak, and a log-log power-law
// bridge between the two anchors. Ziegler effective charge for slow ions.
// The Bethe formula cannot be used straight through the peak — its log term
// collapses below ~2meβ²γ² ≈ e·I — so the bridge carries the curve across
// the region where neither asymptotic limb holds.
// ---------------------------------------------------------------------------

// BetheBlochStopping is the analytic stopping model. The zero value is
// ready to use.
type BetheBlochStopping struct{}

// bridgeParams returns the low anchor energy (below which Lindhard–Scharff
// √E scaling applies) and the high anchor energy (above which Bethe–Bloch is
// trusted), in MeV. The alpha values scale roughly with the mass ratio, as
// velocity — not energy — controls the physics.
func bridgeParams(sp Species) (eLo, eHi float64) {
	switch sp {
	case Proton:
		return 0.05, 0.5
	case Alpha:
		return 0.3, 2.5
	default:
		panic("phys: unknown species")
	}
}

// ElectronicStopping implements StoppingModel. Heavy recoil ions use the
// same effective-charge scaling of the proton curve as the tabulated model.
func (b BetheBlochStopping) ElectronicStopping(sp Species, energyMeV float64) float64 {
	if energyMeV <= 0 {
		return 0
	}
	if sp.HeavyIon() {
		eEquiv := energyMeV * Proton.MassMeV() / sp.MassMeV()
		z := effectiveCharge(sp, energyMeV)
		return z * z * b.ElectronicStopping(Proton, eEquiv)
	}
	eLo, eHi := bridgeParams(sp)
	var mass float64
	switch {
	case energyMeV >= eHi:
		mass = betheMassStopping(sp, energyMeV)
	case energyMeV <= eLo:
		mass = lindhardScharffMassStopping(sp, energyMeV)
	default:
		sLo := lindhardScharffMassStopping(sp, eLo)
		sHi := betheMassStopping(sp, eHi)
		if sLo <= 0 || sHi <= 0 {
			return 0
		}
		// Power-law (log-log linear) bridge between the anchors.
		f := math.Log(energyMeV/eLo) / math.Log(eHi/eLo)
		mass = math.Exp(math.Log(sLo) + f*(math.Log(sHi)-math.Log(sLo)))
	}
	if mass < 0 {
		mass = 0
	}
	return MassStoppingToEVPerNm(mass)
}

// betheMassStopping returns the Bethe–Bloch mass stopping power in
// MeV·cm²/g, or 0 where the formula is invalid (the log argument ≤ 1).
func betheMassStopping(sp Species, energyMeV float64) float64 {
	m := sp.MassMeV()
	z := effectiveCharge(sp, energyMeV)
	gamma := 1 + energyMeV/m
	beta2 := 1 - 1/(gamma*gamma)
	if beta2 <= 0 {
		return 0
	}
	me := ElectronMassMeV
	ratio := me / m
	tmax := 2 * me * beta2 * gamma * gamma / (1 + 2*gamma*ratio + ratio*ratio)
	iMeV := SiliconMeanExcitationEV * 1e-6
	arg := 2 * me * beta2 * gamma * gamma * tmax / (iMeV * iMeV)
	if arg <= 1 {
		return 0
	}
	s := BetheK * z * z * (SiliconZ / SiliconA) / beta2 * (0.5*math.Log(arg) - beta2)
	if s < 0 {
		return 0
	}
	return s
}

// lindhardScharffMassStopping returns the velocity-proportional low-energy
// electronic stopping in MeV·cm²/g: S = k·√(E/m), i.e. proportional to the
// ion velocity. The coefficients are calibrated so the limb meets the
// tabulated curve at the bridge's low anchor energy.
func lindhardScharffMassStopping(sp Species, energyMeV float64) float64 {
	if energyMeV <= 0 {
		return 0
	}
	var k float64
	switch sp {
	case Proton:
		k = 7.1e4
	case Alpha:
		k = 1.37e5
	default:
		panic("phys: unknown species")
	}
	return k * math.Sqrt(energyMeV/sp.MassMeV())
}

// effectiveCharge applies Ziegler's velocity-dependent charge-state scaling
// for slow ions; fast ions carry their full nuclear charge.
func effectiveCharge(sp Species, energyMeV float64) float64 {
	z := sp.ChargeNumber()
	beta := math.Sqrt(sp.Beta2(energyMeV))
	return z * (1 - math.Exp(-125*beta/math.Pow(z, 2.0/3)))
}

// ---------------------------------------------------------------------------
// Derived quantities.
// ---------------------------------------------------------------------------

// CSDARange integrates 1/S(E) from a low cutoff to the given energy,
// returning the continuous-slowing-down range in nm.
func CSDARange(m StoppingModel, sp Species, energyMeV float64) float64 {
	const cutoff = 1e-3 // MeV; below this the residual range is negligible here
	if energyMeV <= cutoff {
		return 0
	}
	// Integrate in log-energy with the trapezoid rule; S varies smoothly on
	// a log axis.
	const steps = 400
	lnLo, lnHi := math.Log(cutoff), math.Log(energyMeV)
	h := (lnHi - lnLo) / steps
	integrand := func(lnE float64) float64 {
		e := math.Exp(lnE)
		s := m.ElectronicStopping(sp, e)
		if s <= 0 {
			return 0
		}
		// dE/S = E dlnE / S; energies in MeV, S in eV/nm → convert MeV to eV.
		return e * 1e6 / s
	}
	sum := 0.5 * (integrand(lnLo) + integrand(lnHi))
	for i := 1; i < steps; i++ {
		sum += integrand(lnLo + float64(i)*h)
	}
	return sum * h
}

// LandauXiEV returns the Landau scale parameter ξ (eV) for a path of the
// given length (nm) in silicon: ξ = (K/2)·(Z/A)·ρ·z²/β²·Δx. For the
// nanometre-scale paths through a fin, κ = ξ/Tmax ≪ 1, so energy-loss
// fluctuations follow the Landau (thin-absorber) distribution with this
// width — strongly asymmetric: most tracks deposit slightly less than the
// mean, and a rare tail deposits several ξ more. That tail is what lets
// fast, lightly ionizing protons occasionally upset a cell.
func LandauXiEV(sp Species, energyMeV, pathNm float64) float64 {
	if pathNm <= 0 || energyMeV <= 0 {
		return 0
	}
	beta2 := sp.Beta2(energyMeV)
	if beta2 <= 0 {
		return 0
	}
	z := sp.ChargeNumber()
	pathCm := pathNm * 1e-7
	xiMeV := (BetheK / 2) * (SiliconZ / SiliconA) * SiliconDensity * z * z / beta2 * pathCm
	return xiMeV * 1e6
}

// SampleLandauDeposit draws an energy deposit (eV) for a thin path with the
// given mean, using the Moyal approximation to the Landau distribution.
// The Moyal variate λ is sampled exactly as λ = -2·ln|Z| with Z standard
// normal, and the result is shifted to preserve the requested mean
// (E[λ] = γ_E + ln 2 ≈ 1.270). z is a standard normal variate supplied by
// the caller's random stream. Deposits are clamped at 0.
func SampleLandauDeposit(meanEV, xiEV, z float64) float64 {
	if meanEV <= 0 {
		return 0
	}
	if xiEV <= 0 {
		return meanEV
	}
	const moyalMean = 1.2703628454614782 // γ_E + ln 2
	az := math.Abs(z)
	if az < 1e-300 {
		az = 1e-300
	}
	lambda := -2 * math.Log(az)
	d := meanEV + xiEV*(lambda-moyalMean)
	if d < 0 {
		return 0
	}
	return d
}

// BohrStragglingSigmaEV returns the standard deviation (eV) of the energy
// deposited over a path of the given length (nm) in silicon, using Bohr's
// straggling variance Ω² = 0.1569·z²·(Z/A)·ρ·Δx [MeV², Δx in cm].
// Charged-particle energy deposition in a 10 nm fin fluctuates by hundreds
// of eV, which feeds directly into the POF tails.
func BohrStragglingSigmaEV(sp Species, pathNm float64) float64 {
	if pathNm <= 0 {
		return 0
	}
	z := sp.ChargeNumber()
	pathCm := pathNm * 1e-7
	variance := 0.1569 * z * z * (SiliconZ / SiliconA) * SiliconDensity * pathCm // MeV²
	return math.Sqrt(variance) * 1e6                                             // eV
}
