package phys

import (
	"math"
	"testing"
)

// TestFastStoppingMatchesWrapped bounds the dense-resampling error of
// FastStopping against the model it wraps, across every species and the
// whole energy range the transport loop can reach. The grid is ~0.002 wide
// in ln E, so linear interpolation of the smooth stopping curves must stay
// within 1e-4 relative (the effective-charge knee of the heavy recoils is
// the worst case).
func TestFastStoppingMatchesWrapped(t *testing.T) {
	tab := NewTabulatedStopping()
	fast := NewFastStopping(tab)
	for sp := Proton; sp <= SiliconIon; sp++ {
		for lnE := math.Log(2e-4); lnE < math.Log(5e3); lnE += 0.0371 {
			e := math.Exp(lnE)
			want := tab.ElectronicStopping(sp, e)
			got := fast.ElectronicStopping(sp, e)
			if want == 0 {
				if got != 0 {
					t.Fatalf("%v at %g MeV: fast %g, wrapped 0", sp, e, got)
				}
				continue
			}
			if rel := math.Abs(got-want) / want; rel > 1e-4 {
				t.Errorf("%v at %g MeV: fast %g vs wrapped %g (rel %g)", sp, e, got, want, rel)
			}
		}
	}
}

// TestFastStoppingEdges: non-positive energies return 0, and energies
// outside the sampled window clamp exactly like the wrapped tables do.
func TestFastStoppingEdges(t *testing.T) {
	tab := NewTabulatedStopping()
	fast := NewFastStopping(tab)
	if fast.ElectronicStopping(Proton, 0) != 0 || fast.ElectronicStopping(Proton, -1) != 0 {
		t.Error("non-positive energy must return 0")
	}
	for _, e := range []float64{1e-6, 1e-5} {
		if got, want := fast.ElectronicStopping(Alpha, e), tab.ElectronicStopping(Alpha, e); got != want {
			t.Errorf("below-window clamp at %g: %g vs %g", e, got, want)
		}
	}
	if got, want := fast.ElectronicStopping(Proton, 1e5), tab.ElectronicStopping(Proton, 1e5); got != want {
		t.Errorf("above-window clamp: %g vs %g", got, want)
	}
}

// TestFastStoppingZeroAlloc pins the hot-path evaluation at zero
// allocations.
func TestFastStoppingZeroAlloc(t *testing.T) {
	fast := NewFastStopping(NewTabulatedStopping())
	allocs := testing.AllocsPerRun(500, func() {
		_ = fast.ElectronicStopping(Alpha, 1.7)
		_ = fast.ElectronicStopping(Proton, 42)
	})
	if allocs != 0 {
		t.Errorf("FastStopping.ElectronicStopping allocates %v objects/op, want 0", allocs)
	}
}
