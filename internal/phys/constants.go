package phys

import "math"

// Physical constants and silicon material parameters.
const (
	// ElementaryCharge is the charge of a single electron in coulombs.
	ElementaryCharge = 1.602176634e-19

	// EVPerPair is the mean energy to create one electron–hole pair in
	// silicon (the paper's 3.6 eV figure).
	EVPerPair = 3.6

	// FanoFactor is silicon's Fano factor: the pair-count variance is
	// FanoFactor times the mean, well below Poisson.
	FanoFactor = 0.115

	// ElectronMassMeV is the electron rest mass in MeV/c².
	ElectronMassMeV = 0.51099895

	// SiliconZ and SiliconA are silicon's atomic number and mass.
	SiliconZ = 14.0
	SiliconA = 28.0855

	// SiliconDensity is silicon's mass density in g/cm³.
	SiliconDensity = 2.329

	// SiliconMeanExcitationEV is silicon's mean excitation energy I in eV.
	SiliconMeanExcitationEV = 173.0

	// BetheK is the Bethe-formula prefactor K = 4π NA re² me c² in
	// MeV·cm²/mol.
	BetheK = 0.307075
)

// MeVPerCmToEVPerNm converts a stopping power from MeV/cm to eV/nm.
// 1 MeV/cm = 1e6 eV / 1e7 nm = 0.1 eV/nm.
const MeVPerCmToEVPerNm = 0.1

// MassStoppingToEVPerNm converts a mass stopping power in MeV·cm²/g for
// silicon into a linear stopping power in eV/nm.
func MassStoppingToEVPerNm(massStopping float64) float64 {
	return massStopping * SiliconDensity * MeVPerCmToEVPerNm
}

// PairsFromEnergy returns the mean number of electron–hole pairs produced
// by depositing the given energy (eV) in silicon.
func PairsFromEnergy(eV float64) float64 {
	if eV <= 0 {
		return 0
	}
	return eV / EVPerPair
}

// ChargeFromPairs converts a pair count to collected charge in coulombs
// (unit collection efficiency).
func ChargeFromPairs(pairs float64) float64 {
	return pairs * ElementaryCharge
}

// ChargeFromEnergy converts a deposited energy in eV directly to collected
// charge in coulombs.
func ChargeFromEnergy(eV float64) float64 {
	return ChargeFromPairs(PairsFromEnergy(eV))
}

func sqrt(x float64) float64 { return math.Sqrt(x) }
