package core

import (
	"math"
	"testing"

	"finser/internal/finfet"
	"finser/internal/neutron"
	"finser/internal/spectra"
	"finser/internal/transport"
)

func TestNeutronPOFBasics(t *testing.T) {
	ch, _, _ := fixtures(t)
	e := engineWith(t, ch)
	rx := neutron.NewReactions()
	pt := e.NeutronPOFAtEnergy(rx, 14, 60000, 3)
	// The weighted POF must be positive but tiny (interaction probability
	// ~1e-7 per crossing fin chord, and most tracks miss fins entirely).
	if pt.Tot <= 0 {
		t.Fatal("14 MeV neutron weighted POF is zero")
	}
	if pt.Tot > 1e-6 {
		t.Fatalf("weighted POF %v implausibly large for neutrons", pt.Tot)
	}
	if pt.SEU < 0 || pt.MBU < 0 || pt.Tot < pt.SEU {
		t.Fatalf("POF split inconsistent: %+v", pt)
	}
	// Mean interaction weight per track should be ~1e-8..1e-6 (only a
	// fraction of tracks cross any fin at all).
	if pt.InteractionWeight <= 0 || pt.InteractionWeight > 1e-5 {
		t.Errorf("interaction weight = %v", pt.InteractionWeight)
	}
}

func TestNeutronPOFDeterministic(t *testing.T) {
	ch, _, _ := fixtures(t)
	e := engineWith(t, ch)
	rx := neutron.NewReactions()
	a := e.NeutronPOFAtEnergy(rx, 14, 20000, 9)
	b := e.NeutronPOFAtEnergy(rx, 14, 20000, 9)
	if a.Tot != b.Tot || a.MBU != b.MBU {
		t.Error("neutron POF not deterministic for equal seeds")
	}
}

func TestNeutronEnergyDependence(t *testing.T) {
	// Higher-energy neutrons produce harder, longer-range secondaries, so
	// the POF *per interaction* (weighted POF over mean interaction weight)
	// must grow with energy, even though the total cross-section falls.
	ch, _, _ := fixtures(t)
	e := engineWith(t, ch)
	rx := neutron.NewReactions()
	low := e.NeutronPOFAtEnergy(rx, 1, 80000, 5)
	high := e.NeutronPOFAtEnergy(rx, 14, 80000, 5)
	if low.InteractionWeight <= 0 || high.InteractionWeight <= 0 {
		t.Fatal("zero interaction weights")
	}
	condLow := low.Tot / low.InteractionWeight
	condHigh := high.Tot / high.InteractionWeight
	if condHigh <= condLow {
		t.Errorf("per-interaction POF at 14 MeV (%v) not above 1 MeV (%v)", condHigh, condLow)
	}
}

func TestNeutronFIT(t *testing.T) {
	ch, _, _ := fixtures(t)
	e := engineWith(t, ch)
	rx := neutron.NewReactions()
	spec, err := neutron.NewSeaLevel(1)
	if err != nil {
		t.Fatal(err)
	}
	bins, err := spectra.Bins(spec, 2, 1000, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.NeutronFIT(spec, rx, bins, 30000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalFIT <= 0 {
		t.Fatal("neutron FIT is zero")
	}
	if math.Abs(res.TotalFIT-(res.SEUFIT+res.MBUFIT))/res.TotalFIT > 1e-9 {
		t.Error("neutron FIT split inconsistent")
	}
	if len(res.Points) != len(bins) {
		t.Errorf("points = %d", len(res.Points))
	}
	// Validation errors.
	if _, err := e.NeutronFIT(spec, rx, nil, 10, 1); err == nil {
		t.Error("empty bins accepted")
	}
	if _, err := e.NeutronFIT(spec, rx, bins, 0, 1); err == nil {
		t.Error("zero iterations accepted")
	}
}

func TestNeutronVsAlphaMagnitude(t *testing.T) {
	// Sea-level neutron SER of SRAM is typically the same order as (or
	// larger than) the alpha SER — sanity-check we are not off by orders of
	// magnitude in either direction (accept a wide band: two decades).
	ch, _, _ := fixtures(t)
	e := engineWith(t, ch)
	rx := neutron.NewReactions()
	nSpec, _ := neutron.NewSeaLevel(1)
	nBins, _ := spectra.Bins(nSpec, 2, 1000, 8)
	nRes, err := e.NeutronFIT(nSpec, rx, nBins, 40000, 11)
	if err != nil {
		t.Fatal(err)
	}
	aSpec, _ := spectra.NewAlphaEmission(spectra.DefaultAlphaRate)
	aBins, _ := spectra.Bins(aSpec, 0.5, 10, 8)
	aRes, err := e.FIT(aSpec, aBins, 20000, 12)
	if err != nil {
		t.Fatal(err)
	}
	ratio := nRes.TotalFIT / aRes.TotalFIT
	if ratio < 1e-2 || ratio > 1e2 {
		t.Errorf("neutron/alpha FIT ratio = %v, want within two decades", ratio)
	}
}

func TestNeutronMBUOccurs(t *testing.T) {
	// Hard recoils are densely ionizing and long enough to cross cells:
	// MBUs must appear at high neutron energy.
	tech := finfet.Default14nmSOI()
	ch, _, _ := fixtures(t)
	e, err := New(Config{
		Tech: tech, Rows: 9, Cols: 9, Char: ch,
		Transport: transport.DefaultConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rx := neutron.NewReactions()
	pt := e.NeutronPOFAtEnergy(rx, 100, 150000, 13)
	if pt.Tot <= 0 {
		t.Skip("no interactions sampled at this budget")
	}
	if pt.MBU <= 0 {
		t.Error("no neutron MBU at 100 MeV")
	}
}
