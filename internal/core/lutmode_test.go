package core

import (
	"testing"

	"finser/internal/finfet"
	"finser/internal/phys"
	"finser/internal/sram"
	"finser/internal/transport"
)

func lutEngine(t *testing.T) *Engine {
	t.Helper()
	ch, _, _ := fixtures(t)
	e, err := New(Config{
		Tech: finfet.Default14nmSOI(), Rows: 9, Cols: 9,
		Char: ch, Transport: transport.DefaultConfig(),
		Deposits: DepositLUT, LUTIters: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestLUTModeProducesPOF(t *testing.T) {
	e := lutEngine(t)
	pt := e.POFAtEnergy(phys.Alpha, 1, 10000, 3)
	if pt.Tot <= 0 {
		t.Fatal("LUT mode produced zero POF")
	}
	// Determinism holds in LUT mode too.
	again := e.POFAtEnergy(phys.Alpha, 1, 10000, 3)
	if pt.Tot != again.Tot {
		t.Error("LUT mode not deterministic")
	}
}

func TestLUTModeTracksTransportMode(t *testing.T) {
	// The paper's LUT shortcut replaces chord-resolved deposits with the
	// single-fin mean yield. The two modes must agree on the qualitative
	// orderings and stay within a small factor of each other where POF is
	// well away from threshold.
	ch, _, _ := fixtures(t)
	full := engineWith(t, ch)
	lutE := lutEngine(t)
	for _, en := range []float64{0.5, 1} {
		a := full.POFAtEnergy(phys.Alpha, en, 20000, 5)
		b := lutE.POFAtEnergy(phys.Alpha, en, 20000, 5)
		if b.Tot <= 0 {
			t.Fatalf("LUT mode zero at %v MeV", en)
		}
		if r := b.Tot / a.Tot; r < 0.3 || r > 3 {
			t.Errorf("at %v MeV LUT/transport POF ratio = %v, want within 3×", en, r)
		}
	}
	// Ordering preserved: alpha ≫ proton in both modes.
	ap := lutE.POFAtEnergy(phys.Alpha, 1, 20000, 7)
	pp := lutE.POFAtEnergy(phys.Proton, 1, 20000, 7)
	if ap.Tot <= pp.Tot {
		t.Error("LUT mode lost the alpha ≫ proton ordering")
	}
}

func TestLUTModeFasterSetupReuse(t *testing.T) {
	// The LUT is built once per species and reused; a second call must not
	// rebuild (observable as identical results with a warm engine).
	e := lutEngine(t)
	_ = e.POFAtEnergy(phys.Alpha, 1, 2000, 1)
	if len(e.yieldLUTs) != 1 {
		t.Fatalf("expected 1 cached LUT, got %d", len(e.yieldLUTs))
	}
	_ = e.POFAtEnergy(phys.Alpha, 5, 2000, 1)
	if len(e.yieldLUTs) != 1 {
		t.Fatalf("second energy rebuilt the LUT table map: %d", len(e.yieldLUTs))
	}
	_ = e.POFAtEnergy(phys.Proton, 1, 2000, 1)
	if len(e.yieldLUTs) != 2 {
		t.Fatalf("expected 2 cached LUTs after proton run, got %d", len(e.yieldLUTs))
	}
}

func TestEngineWithGridLUTProvider(t *testing.T) {
	// The paper's exact architecture: the array MC consults serialized POF
	// LUTs, not the live sample set. Results must track the sample-based
	// provider closely.
	ch, _, _ := fixtures(t)
	grid, err := sram.BuildGridLUT(ch, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(p sram.POFProvider) *Engine {
		e, err := New(Config{
			Tech: finfet.Default14nmSOI(), Rows: 9, Cols: 9,
			Char: p, Transport: transport.DefaultConfig(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	a := mk(ch).POFAtEnergy(phys.Alpha, 1, 20000, 3)
	b := mk(grid).POFAtEnergy(phys.Alpha, 1, 20000, 3)
	if b.Tot <= 0 {
		t.Fatal("grid-LUT provider produced zero POF")
	}
	if r := b.Tot / a.Tot; r < 0.9 || r > 1.1 {
		t.Errorf("grid-LUT POF %v vs sample POF %v (ratio %v)", b.Tot, a.Tot, r)
	}
	if mk(grid).cfg.Char.SupplyVoltage() != ch.Vdd {
		t.Error("provider supply voltage mismatch")
	}
}
