// Package core implements the paper's primary contribution: the cross-layer
// SER estimation engine (its Fig. 6 flow). It glues the device level
// (transport: e–h pairs per struck fin), the circuit level (sram: POF per
// strike-current combination under process variation) and the array level
// (layout: 3-D fin placement) into the Monte-Carlo procedure of §5.1:
//
//  1. generate a random particle over the array,
//  2. find the struck fins by 3-D ray analysis,
//  3. convert per-fin deposited charge on sensitive transistors into the
//     cell's strike-current combination,
//  4. look up each struck cell's POF,
//  5. combine cell POFs into POFtot/POFSEU/POFMBU (Eqs. 4–6),
//  6. average over many particles, then integrate over the energy spectrum
//     for the FIT rate (Eq. 8).
package core

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"finser/internal/finfet"
	"finser/internal/geom"
	"finser/internal/layout"
	"finser/internal/lut"
	"finser/internal/obs"
	"finser/internal/phys"
	"finser/internal/rng"
	"finser/internal/spectra"
	"finser/internal/sram"
	"finser/internal/stats"
	"finser/internal/transport"
)

// DataPattern selects the bits stored in the array. The sensitive
// transistor set of each cell depends on its stored bit, so the pattern
// shifts which fins are live targets.
type DataPattern int

const (
	// PatternZeros stores 0 in every cell (the canonical characterized state).
	PatternZeros DataPattern = iota
	// PatternOnes stores 1 in every cell.
	PatternOnes
	// PatternCheckerboard alternates bits in both directions — the usual
	// worst-case test pattern.
	PatternCheckerboard
)

// Bit returns the stored bit at (row, col).
func (p DataPattern) Bit(row, col int) bool {
	switch p {
	case PatternZeros:
		return false
	case PatternOnes:
		return true
	case PatternCheckerboard:
		return (row+col)%2 == 1
	default:
		panic("core: unknown data pattern")
	}
}

// Incidence selects the angular distribution of incoming particles.
type Incidence int

const (
	// IncidenceCosine is the cosine-law distribution of an isotropic
	// external flux crossing the die plane (atmospheric protons).
	IncidenceCosine Incidence = iota
	// IncidenceIsotropic is a downward-isotropic source (package alpha
	// emission from material directly above the die).
	IncidenceIsotropic
)

// DefaultIncidence returns the physically appropriate incidence for a
// species: cosine-law for atmospheric protons, isotropic for package
// alphas.
func DefaultIncidence(sp phys.Species) Incidence {
	if sp == phys.Alpha {
		return IncidenceIsotropic
	}
	return IncidenceCosine
}

// DepositMode selects how per-fin charge deposits are obtained during the
// array Monte Carlo.
type DepositMode int

const (
	// DepositTransport traces every particle through the fin geometry,
	// resolving actual chord lengths, energy depletion, and straggling.
	DepositTransport DepositMode = iota
	// DepositLUT reproduces the paper's tractability device: a pre-built
	// single-fin look-up table of mean e-h yield versus energy (its Geant4
	// LUT, Fig. 4) supplies the deposit for every struck fin, ignoring
	// per-strike chord detail. Faster, coarser — the ablation benchmarks
	// quantify the difference.
	DepositLUT
)

// Config assembles an Engine.
type Config struct {
	Tech       finfet.Technology
	Rows, Cols int // array dimensions (the paper uses 9×9)
	// Char is the cell POF model at the target Vdd: a sample-based
	// sram.Characterization, or a serialized sram.GridLUT for the paper's
	// LUT-only array architecture. For a symmetric cell it serves both
	// stored states (the axis mapping mirrors the roles).
	Char sram.POFProvider
	// CharOne optionally overrides the POF model for cells storing 1 —
	// needed when the cell is asymmetric (e.g. BTI-aged with a static data
	// pattern). Nil reuses Char for both states.
	CharOne sram.POFProvider
	// Transport configures the device-level physics.
	Transport transport.Config
	// Deposits selects full transport (default) or the paper's
	// mean-yield-LUT shortcut.
	Deposits DepositMode
	// LUTIters is the Monte-Carlo budget per energy grid point when
	// building yield LUTs for DepositLUT mode. Zero selects 20000.
	LUTIters int
	// Pattern is the stored data pattern.
	Pattern DataPattern
	// Incidence overrides the per-species default when non-nil.
	Incidence *Incidence
	// Workers bounds MC parallelism; 0 means GOMAXPROCS.
	Workers int
	// Metrics, when non-nil, receives engine counters (particles, hit/miss,
	// struck-cell multiplicity, worker utilization) and per-stage FIT
	// spans. Nil (the default) costs one pointer check per strike.
	Metrics *Metrics
	// Progress, when non-nil, receives throttled done/total/ETA reports
	// while FIT integrates over energy bins.
	Progress obs.ProgressFunc
	// NeutronSubstrateDepthNm is the depth of handle-wafer silicon (below
	// the BOX) modelled as a neutron interaction volume. Energetic reaction
	// secondaries born there can traverse the BOX and strike fins even
	// though the BOX blocks charge diffusion. Zero selects 3000 nm, roughly
	// the range of the hardest Si recoils.
	NeutronSubstrateDepthNm float64
}

// Engine is a ready-to-run array SER estimator for one (technology, Vdd).
type Engine struct {
	cfg      Config
	arr      *layout.Array
	boxes    []geom.AABB
	cellFins [][]int // fin indices per cell, for the grid-walk broad phase

	yieldMu   sync.Mutex
	yieldLUTs map[phys.Species]*lut.Table1D // DepositLUT mode, built lazily
}

// New builds the engine: tiles the thin-cell layout into the array and
// prepares the broad-phase structures.
func New(cfg Config) (*Engine, error) {
	if cfg.Char == nil {
		return nil, errors.New("core: config needs a cell characterization")
	}
	if cfg.Rows <= 0 || cfg.Cols <= 0 {
		return nil, fmt.Errorf("core: bad array dims %d×%d", cfg.Rows, cfg.Cols)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	arr, err := layout.NewArray(layout.ThinCellLayout(cfg.Tech), cfg.Rows, cfg.Cols)
	if err != nil {
		return nil, err
	}
	e := &Engine{cfg: cfg, arr: arr, boxes: arr.Boxes()}
	e.cellFins = make([][]int, arr.NumCells())
	for i, f := range arr.Fins() {
		ci := arr.CellIndex(f.Row, f.Col)
		e.cellFins[ci] = append(e.cellFins[ci], i)
	}
	return e, nil
}

// Array exposes the tiled array (for reporting dimensions etc.).
func (e *Engine) Array() *layout.Array { return e.arr }

// sampleRay draws a random particle: uniform position on the array top
// face, direction from the configured incidence.
func (e *Engine) sampleRay(src *rng.Source, sp phys.Species) geom.Ray {
	inc := DefaultIncidence(sp)
	if e.cfg.Incidence != nil {
		inc = *e.cfg.Incidence
	}
	origin := src.PointOnTopFace(e.arr.Bounds())
	var dir geom.Vec3
	if inc == IncidenceCosine {
		dir = src.CosineLawDirection()
	} else {
		dir = src.DownwardIsotropic()
	}
	return geom.Ray{Origin: origin, Dir: dir}
}

// strikeOutcome is the per-particle result.
type strikeOutcome struct {
	pofTot, pofSEU, pofMBU float64
	struckCells            int // cells with charge on ≥1 sensitive transistor
}

// providerFor returns the POF model for the cell at the dense index ci,
// honouring the optional per-state override for asymmetric cells.
func (e *Engine) providerFor(ci int) sram.POFProvider {
	if e.cfg.CharOne == nil {
		return e.cfg.Char
	}
	if e.cfg.Pattern.Bit(ci/e.arr.Cols, ci%e.arr.Cols) {
		return e.cfg.CharOne
	}
	return e.cfg.Char
}

// yieldLUT returns (building on first use) the single-fin mean-yield table
// for the species — the paper's Geant4 LUT.
func (e *Engine) yieldLUT(sp phys.Species) *lut.Table1D {
	e.yieldMu.Lock()
	defer e.yieldMu.Unlock()
	if e.yieldLUTs == nil {
		e.yieldLUTs = map[phys.Species]*lut.Table1D{}
	}
	if t, ok := e.yieldLUTs[sp]; ok {
		return t
	}
	iters := e.cfg.LUTIters
	if iters <= 0 {
		iters = 20000
	}
	fin := geom.BoxAt(geom.V(0, 0, 0),
		geom.V(e.cfg.Tech.FinWidthNm, e.cfg.Tech.GateLengthNm, e.cfg.Tech.FinHeightNm))
	energies := lut.LogSpace(0.05, 1000, 25)
	t, err := transport.BuildFinYieldLUT(e.cfg.Transport, sp, energies, fin, iters,
		rng.New(0xF14F+uint64(sp)))
	if err != nil {
		// Construction can only fail on programmer error (validated inputs).
		panic("core: yield LUT: " + err.Error())
	}
	e.yieldLUTs[sp] = t
	return t
}

// strike runs steps 1–5 of the paper's §5.1 for one particle.
func (e *Engine) strike(src *rng.Source, sp phys.Species, energyMeV float64) strikeOutcome {
	ray := e.sampleRay(src, sp)

	// Broad phase: only trace fins of cells whose bounds the ray crosses.
	candidate := candidateFins(e, ray)
	if len(candidate) == 0 {
		return strikeOutcome{}
	}
	var deps []transport.Deposit
	if e.cfg.Deposits == DepositLUT {
		// Paper-style: every struck fin receives the mean yield at this
		// energy, regardless of chord geometry.
		yield := e.yieldLUT(sp).Eval(energyMeV)
		for i, fi := range candidate {
			if _, _, ok := e.boxes[fi].Intersect(ray); ok {
				deps = append(deps, transport.Deposit{Fin: i, Pairs: yield})
			}
		}
	} else {
		boxes := make([]geom.AABB, len(candidate))
		for i, fi := range candidate {
			boxes[i] = e.boxes[fi]
		}
		deps = transport.Trace(e.cfg.Transport, sp, energyMeV, ray, boxes, src)
	}
	if len(deps) == 0 {
		return strikeOutcome{}
	}
	if m := e.cfg.Metrics; m != nil {
		if e.cfg.Deposits == DepositLUT {
			m.DepositsLUT.Inc()
		} else {
			m.DepositsTransport.Inc()
		}
	}

	// Accumulate per-cell sensitive-axis charges.
	fins := e.arr.Fins()
	charges := map[int]*[sram.NumAxes]float64{}
	for _, d := range deps {
		f := fins[candidate[d.Fin]]
		bit := e.cfg.Pattern.Bit(f.Row, f.Col)
		axis, sensitive := sram.SensitiveAxisForRole(f.Role, bit)
		if !sensitive {
			continue // the paper discards charge on non-sensitive transistors
		}
		ci := e.arr.CellIndex(f.Row, f.Col)
		cc, ok := charges[ci]
		if !ok {
			cc = new([sram.NumAxes]float64)
			charges[ci] = cc
		}
		cc[axis] += phys.ChargeFromPairs(d.Pairs)
	}
	if len(charges) == 0 {
		return strikeOutcome{}
	}

	// Per-cell POFs and the paper's Eqs. 4–6.
	pofs := make([]float64, 0, len(charges))
	for ci, cc := range charges {
		if p := e.providerFor(ci).POF(*cc); p > 0 {
			pofs = append(pofs, p)
		}
	}
	return combinePOFs(pofs, len(charges))
}

// candidateFins returns indices of fins in cells the ray can reach. Cells
// tile a regular XY grid, so instead of testing every cell's bounds the
// engine walks the ray's XY projection through the grid (Amanatides–Woo
// traversal) — O(cells crossed), which keeps large arrays fast. Fins are
// strictly inside their cell footprint (a layout invariant), so the walk
// is exact; TestBroadPhaseComplete cross-checks it against brute force.
func candidateFins(e *Engine, ray geom.Ray) []int {
	tIn, tOut, ok := e.arr.Bounds().Intersect(ray)
	if !ok {
		return nil
	}
	w := e.arr.Cell.WidthNm
	h := e.arr.Cell.HeightNm
	p0 := ray.At(tIn)
	p1 := ray.At(tOut)

	clampCol := func(x float64) int {
		c := int(x / w)
		if c < 0 {
			return 0
		}
		if c >= e.arr.Cols {
			return e.arr.Cols - 1
		}
		return c
	}
	clampRow := func(y float64) int {
		r := int(y / h)
		if r < 0 {
			return 0
		}
		if r >= e.arr.Rows {
			return e.arr.Rows - 1
		}
		return r
	}
	col := clampCol(p0.X)
	row := clampRow(p0.Y)
	endCol := clampCol(p1.X)
	endRow := clampRow(p1.Y)

	var out []int
	visit := func(r, c int) {
		out = append(out, e.cellFins[e.arr.CellIndex(r, c)]...)
	}
	visit(row, col)
	if col == endCol && row == endRow {
		return out
	}

	dx := p1.X - p0.X
	dy := p1.Y - p0.Y
	stepC, stepR := 0, 0
	tMaxX, tMaxY := math.Inf(1), math.Inf(1)
	tDeltaX, tDeltaY := math.Inf(1), math.Inf(1)
	if dx > 0 {
		stepC = 1
		tMaxX = (float64(col+1)*w - p0.X) / dx
		tDeltaX = w / dx
	} else if dx < 0 {
		stepC = -1
		tMaxX = (float64(col)*w - p0.X) / dx
		tDeltaX = -w / dx
	}
	if dy > 0 {
		stepR = 1
		tMaxY = (float64(row+1)*h - p0.Y) / dy
		tDeltaY = h / dy
	} else if dy < 0 {
		stepR = -1
		tMaxY = (float64(row)*h - p0.Y) / dy
		tDeltaY = -h / dy
	}

	// Walk until the segment parameter exceeds 1 (the exit point).
	for steps := 0; steps < e.arr.Rows+e.arr.Cols+2; steps++ {
		if tMaxX < tMaxY {
			if tMaxX > 1 {
				break
			}
			col += stepC
			if col < 0 || col >= e.arr.Cols {
				break
			}
			tMaxX += tDeltaX
		} else {
			if tMaxY > 1 {
				break
			}
			row += stepR
			if row < 0 || row >= e.arr.Rows {
				break
			}
			tMaxY += tDeltaY
		}
		visit(row, col)
		if col == endCol && row == endRow {
			break
		}
	}
	return out
}

// combinePOFs applies Eqs. 4–6: POFtot = 1-Π(1-pᵢ),
// POFSEU = Σᵢ pᵢ·Πⱼ≠ᵢ(1-pⱼ), POFMBU = POFtot - POFSEU.
func combinePOFs(pofs []float64, struck int) strikeOutcome {
	out := strikeOutcome{struckCells: struck}
	if len(pofs) == 0 {
		return out
	}
	prodAll := 1.0
	for _, p := range pofs {
		prodAll *= 1 - p
	}
	out.pofTot = 1 - prodAll
	for i, pi := range pofs {
		prod := pi
		for j, pj := range pofs {
			if j != i {
				prod *= 1 - pj
			}
		}
		out.pofSEU += prod
	}
	out.pofMBU = out.pofTot - out.pofSEU
	if out.pofMBU < 0 { // numerical guard
		out.pofMBU = 0
	}
	return out
}

// POFPoint is the array POF at one particle energy, averaged over strikes
// that are guaranteed to hit the array footprint (the paper's Fig. 8
// convention).
type POFPoint struct {
	EnergyMeV float64
	Tot       float64 // mean POFtot per particle
	SEU       float64
	MBU       float64
	TotStdErr float64
	Strikes   int
	// HitFrac is the fraction of particles that charged at least one
	// sensitive transistor.
	HitFrac float64
}

// POFAtEnergy runs iters Monte-Carlo particles of the species at one energy
// in parallel and returns the averaged POFs.
func (e *Engine) POFAtEnergy(sp phys.Species, energyMeV float64, iters int, seed uint64) POFPoint {
	workers := e.cfg.Workers
	if iters < workers {
		workers = 1
	}
	srcs := rng.New(seed).ForkN(workers)

	m := e.cfg.Metrics
	var wallStart time.Time
	if m != nil {
		wallStart = time.Now()
	}

	type acc struct {
		tot, seu, mbu stats.Welford
		hits          int
		busyNs        int64
	}
	results := make(chan acc, workers)
	var wg sync.WaitGroup
	per := iters / workers
	extra := iters % workers
	for w := 0; w < workers; w++ {
		n := per
		if w < extra {
			n++
		}
		wg.Add(1)
		go func(src *rng.Source, n int) {
			defer wg.Done()
			var a acc
			var busyStart time.Time
			if m != nil {
				busyStart = time.Now()
			}
			for i := 0; i < n; i++ {
				o := e.strike(src, sp, energyMeV)
				a.tot.Add(o.pofTot)
				a.seu.Add(o.pofSEU)
				a.mbu.Add(o.pofMBU)
				if o.struckCells > 0 {
					a.hits++
					if m != nil {
						m.StruckCellMultiplicity.Observe(float64(o.struckCells))
					}
				}
			}
			if m != nil {
				a.busyNs = time.Since(busyStart).Nanoseconds()
			}
			results <- a
		}(srcs[w], n)
	}
	wg.Wait()
	close(results)

	var tot, seu, mbu stats.Welford
	hits := 0
	busyNs := int64(0)
	for a := range results {
		tot.Merge(a.tot)
		seu.Merge(a.seu)
		mbu.Merge(a.mbu)
		hits += a.hits
		busyNs += a.busyNs
	}
	if m != nil {
		m.Particles.Add(int64(iters))
		m.Hits.Add(int64(hits))
		m.Misses.Add(int64(iters - hits))
		m.WorkerBusyNs.Add(busyNs)
		wallNs := time.Since(wallStart).Nanoseconds() * int64(workers)
		m.WallNs.Add(wallNs)
		if wallNs > 0 {
			m.WorkerUtilization.Set(float64(busyNs) / float64(wallNs))
		}
	}
	return POFPoint{
		EnergyMeV: energyMeV,
		Tot:       tot.Mean(),
		SEU:       seu.Mean(),
		MBU:       mbu.Mean(),
		TotStdErr: tot.StdErr(),
		Strikes:   iters,
		HitFrac:   float64(hits) / float64(iters),
	}
}

// FITResult is the spectrum-integrated failure rate of the array.
type FITResult struct {
	Species phys.Species
	Vdd     float64
	// FIT rates: failures per 10⁹ device-hours (Eq. 8 scaled to FIT).
	TotalFIT float64
	SEUFIT   float64
	MBUFIT   float64
	// TotalFITErr is the 1σ Monte-Carlo uncertainty of TotalFIT, from the
	// per-bin POF standard errors propagated through Eq. 8 (bins are
	// independent, so variances add).
	TotalFITErr float64
	// MBUToSEU is the Fig. 10 ratio (in %, MBU FIT / SEU FIT × 100).
	MBUToSEU float64
	Points   []POFPoint // per-bin POFs, aligned with Bins
	Bins     []spectra.EnergyBin
}

// fitScale converts POF·flux[/(cm²·s)]·area[cm²] into FIT
// (events/1e9 hours).
const fitScale = 3600 * 1e9

// FIT runs the full Eq. 8 integration: per energy bin, estimate the POF
// with itersPerBin Monte-Carlo particles, multiply by the bin's integral
// flux and the array area, and sum.
func (e *Engine) FIT(spec spectra.Spectrum, bins []spectra.EnergyBin, itersPerBin int, seed uint64) (FITResult, error) {
	if len(bins) == 0 {
		return FITResult{}, errors.New("core: FIT needs at least one energy bin")
	}
	if itersPerBin <= 0 {
		return FITResult{}, errors.New("core: FIT needs positive iterations per bin")
	}
	lx, ly := e.arr.DimsCm()
	area := lx * ly
	res := FITResult{
		Species: spec.Species(),
		Vdd:     e.cfg.Char.SupplyVoltage(),
		Bins:    bins,
	}
	stage := "fit/" + spec.Species().String()
	fitSpan := e.cfg.Metrics.span(stage)
	defer fitSpan.End()
	tracker := obs.NewTracker(e.cfg.Progress, stage, int64(len(bins)*itersPerBin), 0)
	defer tracker.Finish()
	src := rng.New(seed)
	for i, b := range bins {
		binSpan := fitSpan.Child(fmt.Sprintf("bin%02d@%.3gMeV", i, b.Rep))
		pt := e.POFAtEnergy(spec.Species(), b.Rep, itersPerBin, src.Uint64())
		binSpan.End()
		tracker.Add(int64(itersPerBin))
		res.Points = append(res.Points, pt)
		res.TotalFIT += pt.Tot * b.IntFlux * area * fitScale
		res.SEUFIT += pt.SEU * b.IntFlux * area * fitScale
		res.MBUFIT += pt.MBU * b.IntFlux * area * fitScale
		binErr := pt.TotStdErr * b.IntFlux * area * fitScale
		res.TotalFITErr = math.Sqrt(res.TotalFITErr*res.TotalFITErr + binErr*binErr)
	}
	if res.SEUFIT > 0 {
		res.MBUToSEU = 100 * res.MBUFIT / res.SEUFIT
	}
	return res, nil
}
