// Package core implements the paper's primary contribution: the cross-layer
// SER estimation engine (its Fig. 6 flow). It glues the device level
// (transport: e–h pairs per struck fin), the circuit level (sram: POF per
// strike-current combination under process variation) and the array level
// (layout: 3-D fin placement) into the Monte-Carlo procedure of §5.1:
//
//  1. generate a random particle over the array,
//  2. find the struck fins by 3-D ray analysis,
//  3. convert per-fin deposited charge on sensitive transistors into the
//     cell's strike-current combination,
//  4. look up each struck cell's POF,
//  5. combine cell POFs into POFtot/POFSEU/POFMBU (Eqs. 4–6),
//  6. average over many particles, then integrate over the energy spectrum
//     for the FIT rate (Eq. 8).
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"finser/internal/faultinject"
	"finser/internal/finfet"
	"finser/internal/geom"
	"finser/internal/guard"
	"finser/internal/layout"
	"finser/internal/lut"
	"finser/internal/obs"
	"finser/internal/phys"
	"finser/internal/rng"
	"finser/internal/spectra"
	"finser/internal/sram"
	"finser/internal/stats"
	"finser/internal/transport"
)

// DataPattern selects the bits stored in the array. The sensitive
// transistor set of each cell depends on its stored bit, so the pattern
// shifts which fins are live targets.
type DataPattern int

const (
	// PatternZeros stores 0 in every cell (the canonical characterized state).
	PatternZeros DataPattern = iota
	// PatternOnes stores 1 in every cell.
	PatternOnes
	// PatternCheckerboard alternates bits in both directions — the usual
	// worst-case test pattern.
	PatternCheckerboard
)

// Valid reports whether p is one of the defined patterns. New rejects
// invalid patterns up front, making the panic in Bit unreachable.
func (p DataPattern) Valid() bool {
	return p >= PatternZeros && p <= PatternCheckerboard
}

// Bit returns the stored bit at (row, col).
func (p DataPattern) Bit(row, col int) bool {
	switch p {
	case PatternZeros:
		return false
	case PatternOnes:
		return true
	case PatternCheckerboard:
		return (row+col)%2 == 1
	default:
		panic("core: unknown data pattern")
	}
}

// Incidence selects the angular distribution of incoming particles.
type Incidence int

const (
	// IncidenceCosine is the cosine-law distribution of an isotropic
	// external flux crossing the die plane (atmospheric protons).
	IncidenceCosine Incidence = iota
	// IncidenceIsotropic is a downward-isotropic source (package alpha
	// emission from material directly above the die).
	IncidenceIsotropic
)

// DefaultIncidence returns the physically appropriate incidence for a
// species: cosine-law for atmospheric protons, isotropic for package
// alphas.
func DefaultIncidence(sp phys.Species) Incidence {
	if sp == phys.Alpha {
		return IncidenceIsotropic
	}
	return IncidenceCosine
}

// DepositMode selects how per-fin charge deposits are obtained during the
// array Monte Carlo.
type DepositMode int

const (
	// DepositTransport traces every particle through the fin geometry,
	// resolving actual chord lengths, energy depletion, and straggling.
	DepositTransport DepositMode = iota
	// DepositLUT reproduces the paper's tractability device: a pre-built
	// single-fin look-up table of mean e-h yield versus energy (its Geant4
	// LUT, Fig. 4) supplies the deposit for every struck fin, ignoring
	// per-strike chord detail. Faster, coarser — the ablation benchmarks
	// quantify the difference.
	DepositLUT
)

// Config assembles an Engine.
type Config struct {
	Tech       finfet.Technology
	Rows, Cols int // array dimensions (the paper uses 9×9)
	// Char is the cell POF model at the target Vdd: a sample-based
	// sram.Characterization, or a serialized sram.GridLUT for the paper's
	// LUT-only array architecture. For a symmetric cell it serves both
	// stored states (the axis mapping mirrors the roles).
	Char sram.POFProvider
	// CharOne optionally overrides the POF model for cells storing 1 —
	// needed when the cell is asymmetric (e.g. BTI-aged with a static data
	// pattern). Nil reuses Char for both states.
	CharOne sram.POFProvider
	// Transport configures the device-level physics.
	Transport transport.Config
	// Deposits selects full transport (default) or the paper's
	// mean-yield-LUT shortcut.
	Deposits DepositMode
	// LUTIters is the Monte-Carlo budget per energy grid point when
	// building yield LUTs for DepositLUT mode. Zero selects 20000.
	LUTIters int
	// Pattern is the stored data pattern.
	Pattern DataPattern
	// Incidence overrides the per-species default when non-nil.
	Incidence *Incidence
	// Workers bounds MC parallelism; 0 means GOMAXPROCS.
	Workers int
	// FITRelErr, when > 0, switches the FIT integration to confidence-driven
	// adaptive sampling (see adaptivefit.go): each energy bin consumes its
	// particle stream in fixed batches of itersPerBin/10 and stops once its
	// POFtot confidence interval is inside this relative tolerance, scaled
	// by the bin's flux weight in the FIT integral, up to a hard cap of 4×
	// the flat budget. ItersPerBin becomes the flat reference budget the
	// batches are sized from. The tolerance is result-determining (part of
	// the flow fingerprint): a fixed config stays bit-identical across runs,
	// checkpoint resume, and the distributed shard merge. Zero (the default)
	// keeps the exact flat-budget integration.
	FITRelErr float64
	// Metrics, when non-nil, receives engine counters (particles, hit/miss,
	// struck-cell multiplicity, worker utilization) and per-stage FIT
	// spans. Nil (the default) costs one pointer check per strike.
	Metrics *Metrics
	// Progress, when non-nil, receives throttled done/total/ETA reports
	// while FIT integrates over energy bins.
	Progress obs.ProgressFunc
	// OnBinDone, when non-nil, is invoked after every completed FIT energy
	// bin — freshly computed or restored from a checkpoint — with the bin's
	// POF point and the FIT accumulated so far. It fires once per bin (not
	// per particle), on the integration goroutine; keep it non-blocking.
	OnBinDone func(BinEvent)
	// Checkpoint, when non-nil, persists each completed FIT energy bin
	// (POF point + RNG seed schedule) so an interrupted integration can
	// resume bit-identically from the last completed bin. Nil disables
	// checkpointing.
	Checkpoint CheckpointStore
	// CheckpointPrefix namespaces this engine's checkpoint stages (e.g.
	// "vdd0.8/") so one store can carry a whole sweep.
	CheckpointPrefix string
	// Faults, when non-nil, injects deterministic failures at the engine's
	// worker-loop sites — robustness-test only. Nil (the default) costs one
	// pointer check per particle.
	Faults *faultinject.Hooks
	// Guard, when non-nil, checks physics invariants on every particle
	// (finite deposits, probability-valued POFs, charge conservation from
	// transport into the cells) and on the integrated FIT numbers. Warn
	// counts violations; Strict fails the stage with a *guard.InvariantError.
	// Nil (the default) costs one pointer check per particle.
	Guard *guard.Guard
	// NeutronSubstrateDepthNm is the depth of handle-wafer silicon (below
	// the BOX) modelled as a neutron interaction volume. Energetic reaction
	// secondaries born there can traverse the BOX and strike fins even
	// though the BOX blocks charge diffusion. Zero selects 3000 nm, roughly
	// the range of the hardest Si recoils.
	NeutronSubstrateDepthNm float64
}

// Engine is a ready-to-run array SER estimator for one (technology, Vdd).
type Engine struct {
	cfg      Config
	arr      *layout.Array
	boxes    []geom.AABB
	cellFins [][]int // fin indices per cell, for the grid-walk broad phase

	// scratch pools per-worker strike state (see strikeScratch) so the
	// steady-state Monte-Carlo path is allocation-free across calls.
	scratch sync.Pool

	yieldMu   sync.Mutex
	yieldLUTs map[phys.Species]*lut.Table1D // DepositLUT mode, built lazily
}

// New builds the engine: tiles the thin-cell layout into the array and
// prepares the broad-phase structures.
func New(cfg Config) (*Engine, error) {
	if cfg.Char == nil {
		return nil, errors.New("core: config needs a cell characterization")
	}
	if cfg.Rows <= 0 || cfg.Cols <= 0 {
		return nil, fmt.Errorf("core: bad array dims %d×%d", cfg.Rows, cfg.Cols)
	}
	if !cfg.Pattern.Valid() {
		return nil, fmt.Errorf("core: unknown data pattern %d", cfg.Pattern)
	}
	if cfg.Deposits != DepositTransport && cfg.Deposits != DepositLUT {
		return nil, fmt.Errorf("core: unknown deposit mode %d", cfg.Deposits)
	}
	if cfg.Deposits == DepositLUT {
		// Validate here what the lazy yield-LUT build depends on, so the
		// build itself cannot fail on bad inputs mid-run.
		if cfg.Tech.FinWidthNm <= 0 || cfg.Tech.GateLengthNm <= 0 || cfg.Tech.FinHeightNm <= 0 {
			return nil, fmt.Errorf("core: LUT deposit mode needs positive fin dims, got %g×%g×%g",
				cfg.Tech.FinWidthNm, cfg.Tech.GateLengthNm, cfg.Tech.FinHeightNm)
		}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	arr, err := layout.NewArray(layout.ThinCellLayout(cfg.Tech), cfg.Rows, cfg.Cols)
	if err != nil {
		return nil, err
	}
	e := &Engine{cfg: cfg, arr: arr, boxes: arr.Boxes()}
	e.cellFins = make([][]int, arr.NumCells())
	for i, f := range arr.Fins() {
		ci := arr.CellIndex(f.Row, f.Col)
		e.cellFins[ci] = append(e.cellFins[ci], i)
	}
	nCells := arr.NumCells()
	e.scratch.New = func() any { return newStrikeScratch(nCells) }
	return e, nil
}

// Array exposes the tiled array (for reporting dimensions etc.).
func (e *Engine) Array() *layout.Array { return e.arr }

// sampleRay draws a random particle: uniform position on the array top
// face, direction from the configured incidence.
func (e *Engine) sampleRay(src *rng.Source, sp phys.Species) geom.Ray {
	inc := DefaultIncidence(sp)
	if e.cfg.Incidence != nil {
		inc = *e.cfg.Incidence
	}
	origin := src.PointOnTopFace(e.arr.Bounds())
	var dir geom.Vec3
	if inc == IncidenceCosine {
		dir = src.CosineLawDirection()
	} else {
		dir = src.DownwardIsotropic()
	}
	return geom.Ray{Origin: origin, Dir: dir}
}

// strikeOutcome is the per-particle result.
type strikeOutcome struct {
	pofTot, pofSEU, pofMBU float64
	struckCells            int // cells with charge on ≥1 sensitive transistor
}

// providerFor returns the POF model for the cell at the dense index ci,
// honouring the optional per-state override for asymmetric cells.
func (e *Engine) providerFor(ci int) sram.POFProvider {
	if e.cfg.CharOne == nil {
		return e.cfg.Char
	}
	if e.cfg.Pattern.Bit(ci/e.arr.Cols, ci%e.arr.Cols) {
		return e.cfg.CharOne
	}
	return e.cfg.Char
}

// ensureYieldLUT returns (building on first use) the single-fin mean-yield
// table for the species — the paper's Geant4 LUT. The build honours ctx,
// so a cancelled run does not pay for an unused table; inputs are
// validated at New, so a completed build cannot fail.
func (e *Engine) ensureYieldLUT(ctx context.Context, sp phys.Species) (*lut.Table1D, error) {
	e.yieldMu.Lock()
	defer e.yieldMu.Unlock()
	if e.yieldLUTs == nil {
		e.yieldLUTs = map[phys.Species]*lut.Table1D{}
	}
	if t, ok := e.yieldLUTs[sp]; ok {
		return t, nil
	}
	iters := e.cfg.LUTIters
	if iters <= 0 {
		iters = 20000
	}
	fin := geom.BoxAt(geom.V(0, 0, 0),
		geom.V(e.cfg.Tech.FinWidthNm, e.cfg.Tech.GateLengthNm, e.cfg.Tech.FinHeightNm))
	energies := lut.LogSpace(0.05, 1000, 25)
	t, err := transport.BuildFinYieldLUTCtx(ctx, e.cfg.Transport, sp, energies, fin, iters,
		rng.New(0xF14F+uint64(sp)))
	if err != nil {
		return nil, fmt.Errorf("core: yield LUT (%v): %w", sp, err)
	}
	e.yieldLUTs[sp] = t
	return t, nil
}

// strike runs steps 1–5 of the paper's §5.1 for one particle. yield is the
// pre-built mean-yield table in DepositLUT mode (resolved once per energy
// point, outside the hot loop) and nil in transport mode. scr holds the
// worker's reusable buffers; the steady-state path allocates nothing. The
// error is non-nil only under a strict guard, when a physics invariant
// (finite deposits, POF ∈ [0,1], charge conservation) is violated.
func (e *Engine) strike(src *rng.Source, sp phys.Species, energyMeV float64, yieldTab *lut.Table1D, scr *strikeScratch) (strikeOutcome, error) {
	ray := e.sampleRay(src, sp)

	// Broad phase: only trace fins of cells whose bounds the ray crosses.
	scr.candidate = appendCandidateFins(e, ray, scr.candidate[:0])
	candidate := scr.candidate
	if len(candidate) == 0 {
		return strikeOutcome{}, nil
	}
	deps := scr.deps[:0]
	if e.cfg.Deposits == DepositLUT {
		// Paper-style: every struck fin receives the mean yield at this
		// energy, regardless of chord geometry.
		yield := yieldTab.Eval(energyMeV)
		for i, fi := range candidate {
			if _, _, ok := e.boxes[fi].Intersect(ray); ok {
				deps = append(deps, transport.Deposit{Fin: i, Pairs: yield})
			}
		}
	} else {
		boxes := e.candidateBoxes(scr, candidate)
		deps = transport.TraceAppend(e.cfg.Transport, sp, energyMeV, ray, boxes, src, &scr.tr, deps)
	}
	scr.deps = deps
	if len(deps) == 0 {
		return strikeOutcome{}, nil
	}
	if err := transport.CheckDeposits(e.cfg.Guard, "core.strike", deps); err != nil {
		return strikeOutcome{}, err
	}
	if m := e.cfg.Metrics; m != nil {
		if e.cfg.Deposits == DepositLUT {
			m.DepositsLUT.Inc()
		} else {
			m.DepositsTransport.Inc()
		}
	}

	// Accumulate per-cell sensitive-axis charges into the dense epoch-
	// cleared accumulator, then order the struck cells by cell index: the
	// POF product/sum reductions below are float-order-sensitive, and the
	// sorted order makes them bit-identical across runs (the old per-strike
	// map iterated cells in randomized order).
	scr.beginCells()
	deposited := e.accumulateCharges(scr, candidate, deps)
	if len(scr.touched) == 0 {
		return strikeOutcome{}, nil
	}
	scr.sortTouched()
	if g := e.cfg.Guard; g.Enabled() {
		// Charge conservation: what the cells are about to see must equal
		// what transport deposited on sensitive transistors. The sums run in
		// different orders, so allow float round-off.
		injected := 0.0
		for _, ci := range scr.touched {
			for a := range scr.cellQ[ci] {
				injected += scr.cellQ[ci][a]
			}
		}
		if err := g.Conserved("core.strike", "injected charge", injected, deposited, 1e-9, 1e-30); err != nil {
			return strikeOutcome{}, err
		}
	}

	// Per-cell POFs and the paper's Eqs. 4–6, in sorted cell order.
	pofs := scr.pofs[:0]
	for _, ci := range scr.touched {
		p := e.providerFor(ci).POF(scr.cellQ[ci])
		if err := e.cfg.Guard.Probability("core.strike", "cell POF", p); err != nil {
			scr.pofs = pofs
			return strikeOutcome{}, err
		}
		if p > 0 {
			pofs = append(pofs, p)
		}
	}
	scr.pofs = pofs
	return combinePOFs(pofs, len(scr.touched)), nil
}

// candidateFins returns indices of fins in cells the ray can reach. It is
// the allocating convenience form of appendCandidateFins for cold callers.
func candidateFins(e *Engine, ray geom.Ray) []int {
	return appendCandidateFins(e, ray, nil)
}

// appendCandidateFins appends the indices of fins in cells the ray can
// reach to out and returns it. Cells tile a regular XY grid, so instead of
// testing every cell's bounds the engine walks the ray's XY projection
// through the grid (Amanatides–Woo traversal) — O(cells crossed), which
// keeps large arrays fast. Fins are strictly inside their cell footprint
// (a layout invariant), so the walk is exact; TestBroadPhaseComplete
// cross-checks it against brute force. With a pre-grown out buffer the
// walk is allocation-free.
func appendCandidateFins(e *Engine, ray geom.Ray, out []int) []int {
	tIn, tOut, ok := e.arr.Bounds().Intersect(ray)
	if !ok {
		return out
	}
	w := e.arr.Cell.WidthNm
	h := e.arr.Cell.HeightNm
	p0 := ray.At(tIn)
	p1 := ray.At(tOut)

	clampCol := func(x float64) int {
		c := int(x / w)
		if c < 0 {
			return 0
		}
		if c >= e.arr.Cols {
			return e.arr.Cols - 1
		}
		return c
	}
	clampRow := func(y float64) int {
		r := int(y / h)
		if r < 0 {
			return 0
		}
		if r >= e.arr.Rows {
			return e.arr.Rows - 1
		}
		return r
	}
	col := clampCol(p0.X)
	row := clampRow(p0.Y)
	endCol := clampCol(p1.X)
	endRow := clampRow(p1.Y)

	out = append(out, e.cellFins[e.arr.CellIndex(row, col)]...)
	if col == endCol && row == endRow {
		return out
	}

	dx := p1.X - p0.X
	dy := p1.Y - p0.Y
	stepC, stepR := 0, 0
	tMaxX, tMaxY := math.Inf(1), math.Inf(1)
	tDeltaX, tDeltaY := math.Inf(1), math.Inf(1)
	if dx > 0 {
		stepC = 1
		tMaxX = (float64(col+1)*w - p0.X) / dx
		tDeltaX = w / dx
	} else if dx < 0 {
		stepC = -1
		tMaxX = (float64(col)*w - p0.X) / dx
		tDeltaX = -w / dx
	}
	if dy > 0 {
		stepR = 1
		tMaxY = (float64(row+1)*h - p0.Y) / dy
		tDeltaY = h / dy
	} else if dy < 0 {
		stepR = -1
		tMaxY = (float64(row)*h - p0.Y) / dy
		tDeltaY = -h / dy
	}

	// Walk until the segment parameter exceeds 1 (the exit point).
	for steps := 0; steps < e.arr.Rows+e.arr.Cols+2; steps++ {
		if tMaxX < tMaxY {
			if tMaxX > 1 {
				break
			}
			col += stepC
			if col < 0 || col >= e.arr.Cols {
				break
			}
			tMaxX += tDeltaX
		} else {
			if tMaxY > 1 {
				break
			}
			row += stepR
			if row < 0 || row >= e.arr.Rows {
				break
			}
			tMaxY += tDeltaY
		}
		out = append(out, e.cellFins[e.arr.CellIndex(row, col)]...)
		if col == endCol && row == endRow {
			break
		}
	}
	return out
}

// combinePOFs applies Eqs. 4–6: POFtot = 1-Π(1-pᵢ),
// POFSEU = Σᵢ pᵢ·Πⱼ≠ᵢ(1-pⱼ), POFMBU = POFtot - POFSEU.
func combinePOFs(pofs []float64, struck int) strikeOutcome {
	out := strikeOutcome{struckCells: struck}
	if len(pofs) == 0 {
		return out
	}
	prodAll := 1.0
	for _, p := range pofs {
		prodAll *= 1 - p
	}
	out.pofTot = 1 - prodAll
	for i, pi := range pofs {
		prod := pi
		for j, pj := range pofs {
			if j != i {
				prod *= 1 - pj
			}
		}
		out.pofSEU += prod
	}
	out.pofMBU = out.pofTot - out.pofSEU
	if out.pofMBU < 0 { // numerical guard
		out.pofMBU = 0
	}
	return out
}

// POFPoint is the array POF at one particle energy, averaged over strikes
// that are guaranteed to hit the array footprint (the paper's Fig. 8
// convention).
type POFPoint struct {
	EnergyMeV float64
	Tot       float64 // mean POFtot per particle
	SEU       float64
	MBU       float64
	TotStdErr float64
	Strikes   int
	// HitFrac is the fraction of particles that charged at least one
	// sensitive transistor.
	HitFrac float64
}

// POFAtEnergy runs iters Monte-Carlo particles of the species at one energy
// in parallel and returns the averaged POFs. It is the legacy non-
// cancellable surface over POFAtEnergyCtx: with a background context and no
// fault hooks the only possible failures are worker panics, which are
// re-raised to preserve the historical crash behaviour. New code should
// prefer POFAtEnergyCtx.
func (e *Engine) POFAtEnergy(sp phys.Species, energyMeV float64, iters int, seed uint64) POFPoint {
	pt, err := e.POFAtEnergyCtx(context.Background(), sp, energyMeV, iters, seed)
	if err != nil {
		panic(err)
	}
	return pt
}

// cancelCheckEvery is the worker-loop particle stride between context
// checks. Strikes cost microseconds, so this bounds cancellation latency
// well under a millisecond per worker.
const cancelCheckEvery = 64

// FaultSiteParticle is the engine's per-particle fault-injection site.
const FaultSiteParticle = "core.particle"

// POFAtEnergyCtx is POFAtEnergy with cooperative cancellation and panic
// isolation: workers check ctx every cancelCheckEvery particles, a panic in
// any worker is recovered into a stack-carrying *faultinject.PanicError
// that fails this energy point instead of the process, and the returned
// error wraps ctx.Err() (with stage identity) when the run was cancelled.
// Worker partials are merged in worker order, so the result is bit-
// deterministic for a fixed (seed, worker count).
func (e *Engine) POFAtEnergyCtx(ctx context.Context, sp phys.Species, energyMeV float64, iters int, seed uint64) (POFPoint, error) {
	var yieldTab *lut.Table1D
	if e.cfg.Deposits == DepositLUT {
		t, err := e.ensureYieldLUT(ctx, sp)
		if err != nil {
			return POFPoint{}, err
		}
		yieldTab = t
	}
	workers := e.cfg.Workers
	if iters < workers {
		workers = 1
	}
	srcs := rng.New(seed).ForkN(workers)

	m := e.cfg.Metrics
	var wallStart time.Time
	if m != nil {
		wallStart = time.Now()
	}

	type acc struct {
		tot, seu, mbu stats.Welford
		hits          int
		busyNs        int64
	}
	accs := make([]acc, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	per := iters / workers
	extra := iters % workers
	for w := 0; w < workers; w++ {
		n := per
		if w < extra {
			n++
		}
		wg.Add(1)
		go func(w int, src *rng.Source, n int) {
			defer wg.Done()
			defer faultinject.Recover("core.worker", &errs[w])
			scr := e.getScratch()
			defer e.putScratch(scr)
			a := &accs[w]
			var busyStart time.Time
			if m != nil {
				busyStart = time.Now()
			}
			for i := 0; i < n; i++ {
				if i%cancelCheckEvery == 0 {
					if err := ctx.Err(); err != nil {
						errs[w] = err
						break
					}
				}
				if fi := e.cfg.Faults; fi != nil {
					if err := fi.Hit(FaultSiteParticle); err != nil {
						errs[w] = err
						break
					}
				}
				o, err := e.strike(src, sp, energyMeV, yieldTab, scr)
				if err != nil {
					errs[w] = err
					break
				}
				a.tot.Add(o.pofTot)
				a.seu.Add(o.pofSEU)
				a.mbu.Add(o.pofMBU)
				if o.struckCells > 0 {
					a.hits++
					if m != nil {
						m.StruckCellMultiplicity.Observe(float64(o.struckCells))
					}
				}
			}
			if m != nil {
				a.busyNs = time.Since(busyStart).Nanoseconds()
			}
		}(w, srcs[w], n)
	}
	wg.Wait()

	// Surface the most informative failure: a real fault (panic, injected
	// error) over a bare cancellation, then by worker index for
	// determinism.
	var ctxErr, hardErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if ctxErr == nil {
				ctxErr = err
			}
		} else if hardErr == nil {
			hardErr = err
		}
	}
	if err := hardErr; err != nil || ctxErr != nil {
		if err == nil {
			err = ctxErr
		}
		return POFPoint{}, fmt.Errorf("core: POF %v @%g MeV: %w", sp, energyMeV, err)
	}

	var tot, seu, mbu stats.Welford
	hits := 0
	busyNs := int64(0)
	for i := range accs {
		tot.Merge(accs[i].tot)
		seu.Merge(accs[i].seu)
		mbu.Merge(accs[i].mbu)
		hits += accs[i].hits
		busyNs += accs[i].busyNs
	}
	if m != nil {
		m.Particles.Add(int64(iters))
		m.Hits.Add(int64(hits))
		m.Misses.Add(int64(iters - hits))
		m.WorkerBusyNs.Add(busyNs)
		wallNs := time.Since(wallStart).Nanoseconds() * int64(workers)
		m.WallNs.Add(wallNs)
		if wallNs > 0 {
			m.WorkerUtilization.Set(float64(busyNs) / float64(wallNs))
		}
	}
	pt := POFPoint{
		EnergyMeV: energyMeV,
		Tot:       tot.Mean(),
		SEU:       seu.Mean(),
		MBU:       mbu.Mean(),
		TotStdErr: tot.StdErr(),
		Strikes:   iters,
		HitFrac:   float64(hits) / float64(iters),
	}
	if err := checkPOFPoint(e.cfg.Guard, "core.pof", pt); err != nil {
		return POFPoint{}, err
	}
	return pt, nil
}

// checkPOFPoint runs the guard's probability invariants over one energy
// point — used both on freshly computed points and on points restored from
// a checkpoint file, which is a disk trust boundary.
func checkPOFPoint(g *guard.Guard, stage string, pt POFPoint) error {
	if !g.Enabled() {
		return nil
	}
	name := fmt.Sprintf("POF @%g MeV", pt.EnergyMeV)
	if err := g.Probability(stage, name+" (tot)", pt.Tot); err != nil {
		return err
	}
	if err := g.Probability(stage, name+" (seu)", pt.SEU); err != nil {
		return err
	}
	if err := g.Probability(stage, name+" (mbu)", pt.MBU); err != nil {
		return err
	}
	return g.NonNegativeFinite(stage, name+" (stderr)", pt.TotStdErr)
}

// FITResult is the spectrum-integrated failure rate of the array.
type FITResult struct {
	Species phys.Species
	Vdd     float64
	// FIT rates: failures per 10⁹ device-hours (Eq. 8 scaled to FIT).
	TotalFIT float64
	SEUFIT   float64
	MBUFIT   float64
	// TotalFITErr is the 1σ Monte-Carlo uncertainty of TotalFIT, from the
	// per-bin POF standard errors propagated through Eq. 8 (bins are
	// independent, so variances add).
	TotalFITErr float64
	// MBUToSEU is the Fig. 10 ratio (in %, MBU FIT / SEU FIT × 100).
	MBUToSEU float64
	Points   []POFPoint // per-bin POFs, aligned with Bins
	Bins     []spectra.EnergyBin
	// Conv carries per-bin convergence records, aligned with Points, when
	// the integration ran in adaptive mode (Config.FITRelErr > 0); nil under
	// the flat budget.
	Conv []BinConv
}

// fitScale converts POF·flux[/(cm²·s)]·area[cm²] into FIT
// (events/1e9 hours).
const fitScale = 3600 * 1e9

// CheckpointStore persists per-stage state across interrupted runs.
// *checkpoint.Store implements it; the indirection keeps core free of any
// on-disk format knowledge.
type CheckpointStore interface {
	// Load unmarshals the named stage into v, reporting presence.
	Load(stage string, v any) (bool, error)
	// Save replaces the named stage's state.
	Save(stage string, v any) error
}

// BinEvent reports one completed FIT energy bin to Config.OnBinDone. Bin is
// 1-based; FITSoFar is the Eq. 8 partial sum over the bins completed so far
// (total FIT, same area and flux weighting as the final result), so a live
// consumer can watch the integral converge.
type BinEvent struct {
	Stage     string
	Bin, Bins int
	Point     POFPoint
	FITSoFar  float64
	// Resumed marks bins restored from a checkpoint rather than computed in
	// this call.
	Resumed bool
	// Adaptive marks events from an adaptive integration (Config.FITRelErr
	// > 0); Conv then carries the bin's convergence record.
	Adaptive bool
	Conv     BinConv
}

// fitState is the per-stage checkpoint payload: the full pre-drawn per-bin
// seed schedule plus the POF points of the bins completed so far, in bin
// order. The seed schedule doubles as a consistency check on resume — a
// checkpoint taken under a different seed or binning is rejected.
type fitState struct {
	ItersPerBin int        `json:"iters_per_bin"`
	Seeds       []uint64   `json:"seeds"`
	Points      []POFPoint `json:"points"`
	// RelErr records the adaptive tolerance the run was taken under (0 for
	// the flat budget); resuming under a different tolerance is rejected.
	RelErr float64 `json:"rel_err,omitempty"`
	// Conv records per-bin consumed-batch counts and convergence state in
	// adaptive mode, aligned with Points — what makes a resumed adaptive
	// integration replay the interrupted one bit-identically.
	Conv []BinConv `json:"conv,omitempty"`
}

// FIT runs the full Eq. 8 integration: per energy bin, estimate the POF
// with itersPerBin Monte-Carlo particles, multiply by the bin's integral
// flux and the array area, and sum. It is FITCtx with a background
// context.
func (e *Engine) FIT(spec spectra.Spectrum, bins []spectra.EnergyBin, itersPerBin int, seed uint64) (FITResult, error) {
	return e.FITCtx(context.Background(), spec, bins, itersPerBin, seed)
}

// FITCtx is the resilient FIT integration. Cancellation: ctx is checked
// before every bin and every cancelCheckEvery particles inside the bin;
// on cancellation the error wraps ctx.Err() with the stage identity.
// Checkpointing: when Config.Checkpoint is set, every completed bin is
// persisted, and a later call with the same configuration resumes from the
// last completed bin, reproducing the uninterrupted result bit-identically
// (per-bin seeds are pre-drawn from seed, so bin k's substream does not
// depend on how many bins ran in this process).
func (e *Engine) FITCtx(ctx context.Context, spec spectra.Spectrum, bins []spectra.EnergyBin, itersPerBin int, seed uint64) (FITResult, error) {
	if len(bins) == 0 {
		return FITResult{}, errors.New("core: FIT needs at least one energy bin")
	}
	if itersPerBin <= 0 {
		return FITResult{}, errors.New("core: FIT needs positive iterations per bin")
	}
	res := FITResult{
		Species: spec.Species(),
		Vdd:     e.cfg.Char.SupplyVoltage(),
		Bins:    bins,
	}
	stage := "fit/" + spec.Species().String()
	fitSpan := e.cfg.Metrics.span(stage)
	defer fitSpan.End()

	// Pre-draw the per-bin seed schedule. Drawing all seeds up front (in
	// bin order, exactly as the sequential code consumed them) is what
	// makes a resumed run bit-identical: bin k's substream is a pure
	// function of (seed, k).
	seeds := FITSeedSchedule(seed, len(bins))

	adaptive := e.cfg.FITRelErr > 0
	var tols []float64
	if adaptive {
		tols = adaptiveTols(bins, e.cfg.FITRelErr)
	}

	state := fitState{ItersPerBin: itersPerBin, Seeds: seeds, RelErr: e.cfg.FITRelErr}
	ckStage := e.cfg.CheckpointPrefix + stage
	if e.cfg.Checkpoint != nil {
		var prev fitState
		ok, err := e.cfg.Checkpoint.Load(ckStage, &prev)
		if err != nil {
			return FITResult{}, fmt.Errorf("core: %s: checkpoint: %w", ckStage, err)
		}
		if ok {
			if err := compatibleFITState(prev, state, len(bins)); err != nil {
				return FITResult{}, fmt.Errorf("core: %s: checkpoint: %w", ckStage, err)
			}
			// Restored points crossed a disk boundary: re-check them as if
			// they were freshly computed.
			for i, pt := range prev.Points {
				if err := checkPOFPoint(e.cfg.Guard, stage+" (resumed)", pt); err != nil {
					return FITResult{}, err
				}
				if adaptive {
					if err := CheckBinConv(prev.Conv[i], pt); err != nil {
						return FITResult{}, fmt.Errorf("core: %s: checkpoint: %w", ckStage, err)
					}
				}
			}
			state.Points = prev.Points
			state.Conv = prev.Conv
		}
	}

	tracker := obs.NewTracker(e.cfg.Progress, stage, int64(len(bins)*itersPerBin), 0)
	defer tracker.Finish()
	for _, pt := range state.Points { // bins restored from checkpoint
		tracker.Add(int64(pt.Strikes))
	}

	lx, ly := e.arr.DimsCm()
	area := lx * ly
	emitBin := e.cfg.OnBinDone
	fitSoFar := 0.0
	if emitBin != nil {
		// Replay restored bins through the callback so a consumer joining a
		// resumed run still sees the full bin sequence and a correct partial
		// sum.
		for i, pt := range state.Points {
			fitSoFar += pt.Tot * bins[i].IntFlux * area * fitScale
			ev := BinEvent{Stage: stage, Bin: i + 1, Bins: len(bins), Point: pt, FITSoFar: fitSoFar, Resumed: true}
			if adaptive {
				ev.Adaptive, ev.Conv = true, state.Conv[i]
			}
			emitBin(ev)
		}
	}

	for i := len(state.Points); i < len(bins); i++ {
		if err := ctx.Err(); err != nil {
			return FITResult{}, fmt.Errorf("core: %s bin %d: %w", stage, i, err)
		}
		b := bins[i]
		binSpan := fitSpan.Child(fmt.Sprintf("bin%02d@%.3gMeV", i, b.Rep))
		var pt POFPoint
		var conv BinConv
		var err error
		if adaptive {
			pt, conv, err = e.adaptivePOFBin(ctx, spec.Species(), b.Rep, itersPerBin, seeds[i], tols[i])
		} else {
			pt, err = e.POFAtEnergyCtx(ctx, spec.Species(), b.Rep, itersPerBin, seeds[i])
		}
		binSpan.End()
		if err != nil {
			return FITResult{}, fmt.Errorf("core: %s bin %d: %w", stage, i, err)
		}
		tracker.Add(int64(pt.Strikes))
		state.Points = append(state.Points, pt)
		if adaptive {
			state.Conv = append(state.Conv, conv)
		}
		if emitBin != nil {
			fitSoFar += pt.Tot * b.IntFlux * area * fitScale
			emitBin(BinEvent{Stage: stage, Bin: i + 1, Bins: len(bins), Point: pt, FITSoFar: fitSoFar, Adaptive: adaptive, Conv: conv})
		}
		if e.cfg.Checkpoint != nil {
			if err := e.cfg.Checkpoint.Save(ckStage, state); err != nil {
				return FITResult{}, fmt.Errorf("core: %s bin %d: checkpoint: %w", ckStage, i, err)
			}
		}
	}

	// Accumulate from the ordered points — the same float operations in
	// the same order whether the points were computed here, restored from a
	// checkpoint, or (via AssembleFIT's other callers) merged from
	// distributed shards.
	res = AssembleFIT(spec.Species(), res.Vdd, bins, state.Points, area)
	res.Conv = state.Conv
	if g := e.cfg.Guard; g.Enabled() {
		for _, c := range []struct {
			name string
			v    float64
		}{
			{"TotalFIT", res.TotalFIT}, {"SEUFIT", res.SEUFIT},
			{"MBUFIT", res.MBUFIT}, {"TotalFITErr", res.TotalFITErr},
		} {
			if err := g.NonNegativeFinite(stage, c.name, c.v); err != nil {
				return FITResult{}, err
			}
		}
	}
	return res, nil
}

// FITSeedSchedule returns the per-bin seed schedule FITCtx pre-draws from
// seed: bin k's Monte-Carlo substream is a pure function of (seed, k),
// independent of which process — or which machine — computes it. The
// distributed coordinator and its worker serds both derive the schedule
// from the job seed, which is what makes energy-bin shards relocatable
// without losing bit-identity with the single-node run.
func FITSeedSchedule(seed uint64, nBins int) []uint64 {
	src := rng.New(seed)
	seeds := make([]uint64, nBins)
	for i := range seeds {
		seeds[i] = src.Uint64()
	}
	return seeds
}

// POFBinsCtx is the shard-scoped FIT entry: it estimates the POF points of
// bins[from:to) using the given pre-drawn seed schedule (aligned with bins,
// typically FITSeedSchedule output), exactly as FITCtx would for those
// bins. A worker computing bins [from,to) with the job's seed schedule
// produces points bit-identical to the single-node integration, so a
// coordinator can merge shards from many machines with AssembleFIT and land
// on the same FITResult to the last bit. It is POFBinsConvCtx minus the
// convergence records.
func (e *Engine) POFBinsCtx(ctx context.Context, sp phys.Species, bins []spectra.EnergyBin, itersPerBin int, seeds []uint64, from, to int) ([]POFPoint, error) {
	pts, _, err := e.POFBinsConvCtx(ctx, sp, bins, itersPerBin, seeds, from, to)
	return pts, err
}

// POFBinsConvCtx is POFBinsCtx returning per-bin convergence records
// alongside the points when the engine runs in adaptive mode
// (Config.FITRelErr > 0); conv is nil under the flat budget. The adaptive
// stopping rule depends only on each bin's own batch stream plus the flux
// weights of the full bin plan — both pure functions of the job config — so
// a shard worker reaches exactly the decisions the single-node adaptive
// FITCtx loop reaches, and the merge stays bit-identical.
func (e *Engine) POFBinsConvCtx(ctx context.Context, sp phys.Species, bins []spectra.EnergyBin, itersPerBin int, seeds []uint64, from, to int) ([]POFPoint, []BinConv, error) {
	if len(seeds) != len(bins) {
		return nil, nil, fmt.Errorf("core: POF bins: %d seeds for %d bins", len(seeds), len(bins))
	}
	if from < 0 || to > len(bins) || from >= to {
		return nil, nil, fmt.Errorf("core: POF bins: bad shard range [%d,%d) over %d bins", from, to, len(bins))
	}
	if itersPerBin <= 0 {
		return nil, nil, errors.New("core: POF bins needs positive iterations per bin")
	}
	adaptive := e.cfg.FITRelErr > 0
	var tols []float64
	if adaptive {
		tols = adaptiveTols(bins, e.cfg.FITRelErr)
	}
	stage := "fit/" + sp.String()
	out := make([]POFPoint, 0, to-from)
	var convs []BinConv
	if adaptive {
		convs = make([]BinConv, 0, to-from)
	}
	for i := from; i < to; i++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, fmt.Errorf("core: %s bin %d: %w", stage, i, err)
		}
		var pt POFPoint
		var err error
		if adaptive {
			var conv BinConv
			pt, conv, err = e.adaptivePOFBin(ctx, sp, bins[i].Rep, itersPerBin, seeds[i], tols[i])
			if err == nil {
				convs = append(convs, conv)
			}
		} else {
			pt, err = e.POFAtEnergyCtx(ctx, sp, bins[i].Rep, itersPerBin, seeds[i])
		}
		if err != nil {
			return nil, nil, fmt.Errorf("core: %s bin %d: %w", stage, i, err)
		}
		out = append(out, pt)
	}
	return out, convs, nil
}

// AssembleFIT folds per-bin POF points into the Eq. 8 FIT integral —
// exactly the accumulation FITCtx performs, factored out so a distributed
// merge runs the same float operations in the same (bin) order and is
// therefore bit-identical to the single-node result. points must align
// with bins; passing a completed subset of (bins, points) pairs yields the
// partial FIT sum over just those bins.
func AssembleFIT(sp phys.Species, vdd float64, bins []spectra.EnergyBin, points []POFPoint, areaCm2 float64) FITResult {
	res := FITResult{Species: sp, Vdd: vdd, Bins: bins, Points: points}
	for i, b := range bins {
		pt := points[i]
		res.TotalFIT += pt.Tot * b.IntFlux * areaCm2 * fitScale
		res.SEUFIT += pt.SEU * b.IntFlux * areaCm2 * fitScale
		res.MBUFIT += pt.MBU * b.IntFlux * areaCm2 * fitScale
		binErr := pt.TotStdErr * b.IntFlux * areaCm2 * fitScale
		res.TotalFITErr = math.Sqrt(res.TotalFITErr*res.TotalFITErr + binErr*binErr)
	}
	if res.SEUFIT > 0 {
		res.MBUToSEU = 100 * res.MBUFIT / res.SEUFIT
	}
	return res
}

// ArrayAreaCm2 returns the die area of the tiled array in cm² — the Eq. 8
// area factor — without building a full engine, so a coordinator that never
// touches a characterization can still run the FIT merge.
func ArrayAreaCm2(tech finfet.Technology, rows, cols int) (float64, error) {
	arr, err := layout.NewArray(layout.ThinCellLayout(tech), rows, cols)
	if err != nil {
		return 0, err
	}
	lx, ly := arr.DimsCm()
	return lx * ly, nil
}

// compatibleFITState verifies a restored checkpoint stage matches this
// run's integration plan: same particle budget, same seed schedule, and no
// more completed bins than the plan has.
func compatibleFITState(prev, cur fitState, nBins int) error {
	if prev.ItersPerBin != cur.ItersPerBin {
		return fmt.Errorf("iters per bin changed: checkpoint %d, run %d", prev.ItersPerBin, cur.ItersPerBin)
	}
	if prev.RelErr != cur.RelErr {
		// The adaptive tolerance is result-determining: a flat checkpoint
		// cannot seed an adaptive run or vice versa, and two tolerances
		// consume different batch streams.
		return fmt.Errorf("FIT tolerance changed: checkpoint %g, run %g", prev.RelErr, cur.RelErr)
	}
	if cur.RelErr > 0 && len(prev.Conv) != len(prev.Points) {
		return fmt.Errorf("checkpoint has %d convergence records for %d completed bins", len(prev.Conv), len(prev.Points))
	}
	if len(prev.Seeds) != len(cur.Seeds) {
		return fmt.Errorf("bin count changed: checkpoint %d, run %d", len(prev.Seeds), len(cur.Seeds))
	}
	for i := range prev.Seeds {
		if prev.Seeds[i] != cur.Seeds[i] {
			return fmt.Errorf("seed schedule diverges at bin %d", i)
		}
	}
	if len(prev.Points) > nBins {
		return fmt.Errorf("checkpoint has %d completed bins for a %d-bin plan", len(prev.Points), nBins)
	}
	return nil
}
