package core

import (
	"testing"

	"finser/internal/phys"
)

func TestAdaptivePOFConverges(t *testing.T) {
	ch, _, _ := fixtures(t)
	e := engineWith(t, ch)
	res, err := e.POFAtEnergyAdaptive(phys.Alpha, 1, AdaptiveSpec{
		TargetRelErr: 0.05, BatchSize: 5000, MaxStrikes: 400000,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("alpha at 1 MeV failed to converge in %d strikes", res.Strikes)
	}
	if res.RelErr > 0.05 {
		t.Errorf("relative error %v above target", res.RelErr)
	}
	// The converged estimate agrees with a big fixed-budget run.
	ref := e.POFAtEnergy(phys.Alpha, 1, 100000, 17)
	diff := res.Tot - ref.Tot
	if diff < 0 {
		diff = -diff
	}
	if diff > 5*(res.TotStdErr+ref.TotStdErr) {
		t.Errorf("adaptive %v vs fixed %v beyond noise", res.Tot, ref.Tot)
	}
}

func TestAdaptivePOFBudgetExhaustion(t *testing.T) {
	// An extremely rare event cannot converge in a tiny budget; the result
	// must come back flagged rather than looping.
	ch, _, _ := fixtures(t)
	e := engineWith(t, ch)
	res, err := e.POFAtEnergyAdaptive(phys.Proton, 50, AdaptiveSpec{
		TargetRelErr: 0.01, BatchSize: 2000, MaxStrikes: 8000,
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("impossible precision reported as converged")
	}
	if res.Strikes != 8000 {
		t.Errorf("strikes = %d, want the full budget", res.Strikes)
	}
}

func TestAdaptivePOFRareEventNeedsMoreStrikes(t *testing.T) {
	// The whole point: a rare-event point must consume more strikes than a
	// saturated point at the same target precision.
	ch, _, _ := fixtures(t)
	e := engineWith(t, ch)
	spec := AdaptiveSpec{TargetRelErr: 0.15, BatchSize: 4000, MaxStrikes: 2_000_000}
	common, err := e.POFAtEnergyAdaptive(phys.Alpha, 1, spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	rare, err := e.POFAtEnergyAdaptive(phys.Proton, 0.5, spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !common.Converged || !rare.Converged {
		t.Skipf("convergence not reached (common=%v rare=%v)", common.Converged, rare.Converged)
	}
	if rare.Strikes <= common.Strikes {
		t.Errorf("rare event used %d strikes, saturated used %d", rare.Strikes, common.Strikes)
	}
}

func TestAdaptivePOFValidation(t *testing.T) {
	ch, _, _ := fixtures(t)
	e := engineWith(t, ch)
	if _, err := e.POFAtEnergyAdaptive(phys.Alpha, 0, AdaptiveSpec{}, 1); err == nil {
		t.Error("zero energy accepted")
	}
}
