package core

import (
	"testing"

	"finser/internal/finfet"
	"finser/internal/obs"
	"finser/internal/phys"
	"finser/internal/transport"
)

// TestMetricsConservation checks the engine's particle accounting on a seeded
// run: every generated particle is counted exactly once, and every particle
// is classified as either a hit or a miss.
func TestMetricsConservation(t *testing.T) {
	ch, _, _ := fixtures(t)
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	e, err := New(Config{
		Tech: finfet.Default14nmSOI(), Rows: 9, Cols: 9,
		Char: ch, Transport: transport.DefaultConfig(),
		Metrics: m,
	})
	if err != nil {
		t.Fatal(err)
	}

	const iters = 20000
	e.POFAtEnergy(phys.Alpha, 1, iters, 42)

	if got := m.Particles.Value(); got != iters {
		t.Errorf("particles generated = %d, want %d", got, iters)
	}
	hits, misses := m.Hits.Value(), m.Misses.Value()
	if hits+misses != iters {
		t.Errorf("hits (%d) + misses (%d) = %d, want %d", hits, misses, hits+misses, iters)
	}
	if hits == 0 {
		t.Error("expected some hits at 1 MeV alpha")
	}
	// Every hitting particle contributes exactly one multiplicity observation.
	if got := m.StruckCellMultiplicity.Count(); got != hits {
		t.Errorf("multiplicity observations = %d, want hits = %d", got, hits)
	}
	if rate := m.HitRate(); rate <= 0 || rate >= 1 {
		t.Errorf("hit rate %g outside (0,1)", rate)
	}
	// Deposits are resolved (by transport or LUT) for at least every hit.
	if dep := m.DepositsTransport.Value() + m.DepositsLUT.Value(); dep < hits {
		t.Errorf("deposit resolutions (%d) < hits (%d)", dep, hits)
	}
}

// TestMetricsDoNotPerturbResults checks the instrumented engine produces
// bit-identical POF estimates to the uninstrumented one on the same seed.
func TestMetricsDoNotPerturbResults(t *testing.T) {
	ch, _, _ := fixtures(t)
	plain := engineWith(t, ch)
	reg := obs.NewRegistry()
	inst, err := New(Config{
		Tech: finfet.Default14nmSOI(), Rows: 9, Cols: 9,
		Char: ch, Transport: transport.DefaultConfig(),
		Metrics: NewMetrics(reg),
	})
	if err != nil {
		t.Fatal(err)
	}
	a := plain.POFAtEnergy(phys.Alpha, 2, 10000, 7)
	b := inst.POFAtEnergy(phys.Alpha, 2, 10000, 7)
	if a != b {
		t.Errorf("metrics perturbed results: %+v vs %+v", a, b)
	}
}
