package core

import (
	"math"
	"testing"

	"finser/internal/phys"
)

func TestMBUStatsBasics(t *testing.T) {
	ch, _, _ := fixtures(t)
	e := engineWith(t, ch)
	rep := e.MBUStatsAtEnergy(phys.Alpha, 1, 40000, 6, 3)
	if rep.Species != phys.Alpha || rep.EnergyMeV != 1 || rep.Strikes != 40000 {
		t.Fatalf("metadata wrong: %+v", rep)
	}
	// PMF is a distribution.
	sum := 0.0
	for _, p := range rep.MultiplicityPMF {
		if p < 0 {
			t.Fatal("negative PMF entry")
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("PMF sums to %v", sum)
	}
	// Most strikes flip nothing; some flip one; a few flip two or more.
	if rep.MultiplicityPMF[0] < 0.5 {
		t.Errorf("P(0 flips) = %v, expected dominant", rep.MultiplicityPMF[0])
	}
	if rep.MultiplicityPMF[1] <= 0 {
		t.Error("no single-bit upsets recorded")
	}
	if rep.MultiplicityPMF[2] <= 0 {
		t.Error("no double-bit upsets recorded for 1 MeV alphas")
	}
	// Mean flips consistent with the PMF mean (overflow bucket aside).
	pmfMean := 0.0
	for k, p := range rep.MultiplicityPMF {
		pmfMean += float64(k) * p
	}
	if rep.MeanFlips <= 0 || math.Abs(pmfMean-rep.MeanFlips)/rep.MeanFlips > 0.05 {
		t.Errorf("mean flips %v inconsistent with PMF mean %v", rep.MeanFlips, pmfMean)
	}
}

func TestMBUPairsAreLocal(t *testing.T) {
	// MBU pairs should concentrate at small separations: a single track
	// only reaches adjacent cells.
	ch, _, _ := fixtures(t)
	e := engineWith(t, ch)
	rep := e.MBUStatsAtEnergy(phys.Alpha, 1, 40000, 6, 5)
	if len(rep.PairWeights) == 0 {
		t.Fatal("no pairs recorded")
	}
	total := rep.TotalPairWeight()
	local := 0.0
	for key, w := range rep.PairWeights {
		if key.DRow <= 1 && key.DCol >= -2 && key.DCol <= 2 {
			local += w
		}
	}
	if local/total < 0.6 {
		t.Errorf("only %v of pair weight within 2 cells; MBUs should be local", local/total)
	}
	// Keys are canonical.
	for key := range rep.PairWeights {
		if key.DRow < 0 || (key.DRow == 0 && key.DCol < 0) {
			t.Fatalf("non-canonical pair key %+v", key)
		}
	}
	// Sorted keys lead with the heaviest.
	keys := rep.SortedPairKeys()
	if len(keys) > 1 && rep.PairWeights[keys[0]] < rep.PairWeights[keys[1]] {
		t.Error("SortedPairKeys not weight-descending")
	}
}

func TestMBUStatsMatchPOFAtEnergy(t *testing.T) {
	// The marginal quantities must agree with the primary estimator:
	// P(≥1 flip) from the PMF ≈ POFtot, and the pair-derived MBU ≈ POFMBU.
	ch, _, _ := fixtures(t)
	e := engineWith(t, ch)
	rep := e.MBUStatsAtEnergy(phys.Alpha, 1, 60000, 6, 7)
	pt := e.POFAtEnergy(phys.Alpha, 1, 60000, 7)
	pGe1 := 1 - rep.MultiplicityPMF[0]
	if pt.Tot == 0 {
		t.Fatal("zero POF in cross-check")
	}
	if r := pGe1 / pt.Tot; r < 0.9 || r > 1.1 {
		t.Errorf("PMF P(≥1) / POFtot = %v, want ≈ 1", r)
	}
	pGe2 := pGe1 - rep.MultiplicityPMF[1]
	if r := pGe2 / pt.MBU; r < 0.8 || r > 1.25 {
		t.Errorf("PMF P(≥2) / POFMBU = %v, want ≈ 1", r)
	}
}

func TestMBUMaxKClamp(t *testing.T) {
	ch, _, _ := fixtures(t)
	e := engineWith(t, ch)
	rep := e.MBUStatsAtEnergy(phys.Alpha, 1, 2000, 1, 11) // maxK below minimum
	if len(rep.MultiplicityPMF) != 3 {                    // clamped to 2 → entries 0,1,2
		t.Errorf("PMF length = %d, want 3", len(rep.MultiplicityPMF))
	}
}
