package core

import (
	"sort"
	"sync"

	"finser/internal/geom"
	"finser/internal/phys"
	"finser/internal/rng"
	"finser/internal/sram"
	"finser/internal/transport"
)

// MBU spatial statistics. Beyond the paper's scalar MBU/SEU ratio, system
// designers need the *shape* of multi-bit upsets — how many bits flip per
// event and how far apart they sit — because error-correcting codes with
// column interleaving only survive MBUs whose flipped bits land in
// different logical words. This file extracts those statistics from the
// same strike Monte Carlo.

// PairKey is the row/column separation of a pair of upset cells
// (canonicalized: DRow ≥ 0, and DCol ≥ 0 when DRow == 0).
type PairKey struct {
	DRow, DCol int
}

// MBUReport summarizes upset multiplicity and geometry at one energy.
type MBUReport struct {
	Species   phys.Species
	EnergyMeV float64
	Strikes   int
	// MultiplicityPMF[k] is the per-strike probability of exactly k cells
	// flipping (k = 0 .. len-1; the last entry aggregates ≥ len-1).
	MultiplicityPMF []float64
	// PairWeights[key] is the expected number of flipped pairs per strike
	// with the given separation: Σ pᵢ·pⱼ over cell pairs, averaged over
	// strikes. It is the input to ECC interleaving analysis.
	PairWeights map[PairKey]float64
	// MeanFlips is the expected flips per strike (Σ pᵢ averaged).
	MeanFlips float64
}

// MBUStatsAtEnergy runs iters strikes at one energy and gathers multiplicity
// and pair-separation statistics. maxK bounds the multiplicity PMF length
// (use 5-8; events beyond that are vanishingly rare).
func (e *Engine) MBUStatsAtEnergy(sp phys.Species, energyMeV float64, iters, maxK int, seed uint64) MBUReport {
	if maxK < 2 {
		maxK = 2
	}
	workers := e.cfg.Workers
	if iters < workers {
		workers = 1
	}
	srcs := rng.New(seed).ForkN(workers)
	results := make(chan MBUReport, workers)
	var wg sync.WaitGroup
	per := iters / workers
	extra := iters % workers
	for w := 0; w < workers; w++ {
		n := per
		if w < extra {
			n++
		}
		wg.Add(1)
		go func(src *rng.Source, n int) {
			defer wg.Done()
			results <- e.mbuStatsWorker(src, sp, energyMeV, n, maxK)
		}(srcs[w], n)
	}
	wg.Wait()
	close(results)

	rep := MBUReport{
		Species:         sp,
		EnergyMeV:       energyMeV,
		Strikes:         iters,
		MultiplicityPMF: make([]float64, maxK+1),
		PairWeights:     map[PairKey]float64{},
	}
	for part := range results {
		for k, v := range part.MultiplicityPMF {
			rep.MultiplicityPMF[k] += v
		}
		for key, wgt := range part.PairWeights {
			rep.PairWeights[key] += wgt
		}
		rep.MeanFlips += part.MeanFlips
	}
	inv := 1 / float64(iters)
	for k := range rep.MultiplicityPMF {
		rep.MultiplicityPMF[k] *= inv
	}
	rep.MeanFlips *= inv
	for k := range rep.PairWeights {
		rep.PairWeights[k] *= inv
	}
	return rep
}

// mbuStatsWorker accumulates UNNORMALIZED sums over n strikes.
func (e *Engine) mbuStatsWorker(src *rng.Source, sp phys.Species, energyMeV float64, n, maxK int) MBUReport {
	rep := MBUReport{
		MultiplicityPMF: make([]float64, maxK+1),
		PairWeights:     map[PairKey]float64{},
	}
	pmf := make([]float64, maxK+1)
	next := make([]float64, maxK+1)
	type upset struct {
		row, col int
		p        float64
	}
	var ups []upset
	scr := e.getScratch()
	defer e.putScratch(scr)

	for it := 0; it < n; it++ {
		ups = ups[:0]
		// Re-run the strike but keep per-cell identities.
		ray := e.sampleRay(src, sp)
		scr.candidate = appendCandidateFins(e, ray, scr.candidate[:0])
		scr.beginCells()
		if len(scr.candidate) > 0 {
			boxes := e.candidateBoxes(scr, scr.candidate)
			scr.deps = transport.TraceAppend(e.cfg.Transport, sp, energyMeV, ray, boxes, src, &scr.tr, scr.deps[:0])
			e.accumulateCharges(scr, scr.candidate, scr.deps)
			scr.sortTouched()
			for _, ci := range scr.touched {
				if p := e.providerFor(ci).POF(scr.cellQ[ci]); p > 0 {
					ups = append(ups, upset{row: ci / e.arr.Cols, col: ci % e.arr.Cols, p: p})
				}
			}
		}

		// Poisson-binomial multiplicity PMF for this strike.
		for i := range pmf {
			pmf[i] = 0
		}
		pmf[0] = 1
		for _, u := range ups {
			for i := range next {
				next[i] = 0
			}
			for k := 0; k <= maxK; k++ {
				if pmf[k] == 0 {
					continue
				}
				next[k] += pmf[k] * (1 - u.p)
				if k+1 <= maxK {
					next[k+1] += pmf[k] * u.p
				} else {
					next[maxK] += pmf[k] * u.p // aggregate overflow
				}
			}
			copy(pmf, next)
		}
		for k := range pmf {
			rep.MultiplicityPMF[k] += pmf[k]
		}
		for _, u := range ups {
			rep.MeanFlips += u.p
		}
		// Pairwise separations weighted by joint flip probability.
		for i := 0; i < len(ups); i++ {
			for j := i + 1; j < len(ups); j++ {
				rep.PairWeights[pairKey(ups[i].row, ups[i].col, ups[j].row, ups[j].col)] +=
					ups[i].p * ups[j].p
			}
		}
	}
	return rep
}

func pairKey(r1, c1, r2, c2 int) PairKey {
	dr, dc := r2-r1, c2-c1
	if dr < 0 || (dr == 0 && dc < 0) {
		dr, dc = -dr, -dc
	}
	return PairKey{DRow: dr, DCol: dc}
}

// SortedPairKeys returns the report's pair separations ordered by weight,
// heaviest first — handy for reporting.
func (r MBUReport) SortedPairKeys() []PairKey {
	keys := make([]PairKey, 0, len(r.PairWeights))
	for k := range r.PairWeights {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		wi, wj := r.PairWeights[keys[i]], r.PairWeights[keys[j]]
		if wi != wj {
			return wi > wj
		}
		if keys[i].DRow != keys[j].DRow {
			return keys[i].DRow < keys[j].DRow
		}
		return keys[i].DCol < keys[j].DCol
	})
	return keys
}

// TotalPairWeight sums all pair weights (expected same-event pairs per
// strike).
func (r MBUReport) TotalPairWeight() float64 {
	s := 0.0
	for _, w := range r.PairWeights {
		s += w
	}
	return s
}

// TrackInfo is the per-particle detail used by visualization: the track's
// chord through the array bounds and the sensitive fins it charged.
type TrackInfo struct {
	Entry, Exit geom.Vec3
	StruckFins  []int // global fin indices (into Array().Fins())
	POF         float64
}

// SampleTracks runs n strikes at one energy and returns their geometric
// detail — the input for the SVG strike overlay.
func (e *Engine) SampleTracks(sp phys.Species, energyMeV float64, n int, seed uint64) []TrackInfo {
	src := rng.New(seed)
	out := make([]TrackInfo, 0, n)
	fins := e.arr.Fins()
	bounds := e.arr.Bounds()
	scr := e.getScratch()
	defer e.putScratch(scr)
	for i := 0; i < n; i++ {
		ray := e.sampleRay(src, sp)
		info := TrackInfo{Entry: ray.Origin}
		if tIn, tOut, ok := bounds.Intersect(ray); ok {
			info.Entry = ray.At(tIn)
			info.Exit = ray.At(tOut)
		} else {
			info.Exit = ray.Origin
		}
		scr.candidate = appendCandidateFins(e, ray, scr.candidate[:0])
		scr.beginCells()
		if candidate := scr.candidate; len(candidate) > 0 {
			boxes := e.candidateBoxes(scr, candidate)
			scr.deps = transport.TraceAppend(e.cfg.Transport, sp, energyMeV, ray, boxes, src, &scr.tr, scr.deps[:0])
			for _, d := range scr.deps {
				f := fins[candidate[d.Fin]]
				if _, sensitive := sram.SensitiveAxisForRole(f.Role, e.cfg.Pattern.Bit(f.Row, f.Col)); sensitive {
					info.StruckFins = append(info.StruckFins, candidate[d.Fin])
				}
			}
			e.accumulateCharges(scr, candidate, scr.deps)
			scr.sortTouched()
			pofs := scr.pofs[:0]
			for _, ci := range scr.touched {
				if p := e.providerFor(ci).POF(scr.cellQ[ci]); p > 0 {
					pofs = append(pofs, p)
				}
			}
			scr.pofs = pofs
			info.POF = combinePOFs(pofs, len(scr.touched)).pofTot
		}
		out = append(out, info)
	}
	return out
}
