package core

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"finser/internal/finfet"
	"finser/internal/phys"
	"finser/internal/spectra"
	"finser/internal/sram"
	"finser/internal/transport"
)

// Shared fixtures: characterizations are the expensive part, so build them
// once per test binary.
var (
	fixOnce  sync.Once
	char07   *sram.Characterization
	char11   *sram.Characterization
	charNom  *sram.Characterization // nominal (no PV) at 0.7 V
	fixError error
)

func fixtures(t *testing.T) (*sram.Characterization, *sram.Characterization, *sram.Characterization) {
	t.Helper()
	fixOnce.Do(func() {
		tech := finfet.Default14nmSOI()
		char07, fixError = sram.Characterize(sram.CharConfig{
			Tech: tech, Vdd: 0.7, ProcessVariation: true, Samples: 50, Seed: 1,
		})
		if fixError != nil {
			return
		}
		char11, fixError = sram.Characterize(sram.CharConfig{
			Tech: tech, Vdd: 1.1, ProcessVariation: true, Samples: 50, Seed: 1,
		})
		if fixError != nil {
			return
		}
		charNom, fixError = sram.Characterize(sram.CharConfig{
			Tech: tech, Vdd: 0.7, ProcessVariation: false, Seed: 1,
		})
	})
	if fixError != nil {
		t.Fatal(fixError)
	}
	return char07, char11, charNom
}

func engineWith(t *testing.T, ch *sram.Characterization) *Engine {
	t.Helper()
	e, err := New(Config{
		Tech: finfet.Default14nmSOI(), Rows: 9, Cols: 9,
		Char: ch, Transport: transport.DefaultConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidation(t *testing.T) {
	ch, _, _ := fixtures(t)
	if _, err := New(Config{Tech: finfet.Default14nmSOI(), Rows: 9, Cols: 9}); err == nil {
		t.Error("nil characterization accepted")
	}
	if _, err := New(Config{Tech: finfet.Default14nmSOI(), Rows: 0, Cols: 9, Char: ch}); err == nil {
		t.Error("zero rows accepted")
	}
}

func TestDataPattern(t *testing.T) {
	if PatternZeros.Bit(3, 4) || !PatternOnes.Bit(0, 0) {
		t.Error("uniform patterns wrong")
	}
	if PatternCheckerboard.Bit(0, 0) || !PatternCheckerboard.Bit(0, 1) || !PatternCheckerboard.Bit(1, 0) || PatternCheckerboard.Bit(1, 1) {
		t.Error("checkerboard wrong")
	}
}

func TestDefaultIncidence(t *testing.T) {
	if DefaultIncidence(phys.Proton) != IncidenceCosine {
		t.Error("protons should default to cosine-law incidence")
	}
	if DefaultIncidence(phys.Alpha) != IncidenceIsotropic {
		t.Error("alphas should default to isotropic incidence")
	}
}

func TestCombinePOFsExactCases(t *testing.T) {
	cases := []struct {
		pofs          []float64
		tot, seu, mbu float64
	}{
		{nil, 0, 0, 0},
		{[]float64{0.5}, 0.5, 0.5, 0},
		{[]float64{1}, 1, 1, 0},
		{[]float64{0.5, 0.5}, 0.75, 0.5, 0.25},
		{[]float64{1, 1}, 1, 0, 1},
		{[]float64{0.2, 0.3}, 1 - 0.8*0.7, 0.2*0.7 + 0.3*0.8, 1 - 0.56 - 0.38},
	}
	for i, c := range cases {
		o := combinePOFs(c.pofs, len(c.pofs))
		if math.Abs(o.pofTot-c.tot) > 1e-12 ||
			math.Abs(o.pofSEU-c.seu) > 1e-12 ||
			math.Abs(o.pofMBU-c.mbu) > 1e-12 {
			t.Errorf("case %d: got (%v,%v,%v), want (%v,%v,%v)",
				i, o.pofTot, o.pofSEU, o.pofMBU, c.tot, c.seu, c.mbu)
		}
	}
}

// Property: Eqs. 4–6 identities for arbitrary POF vectors.
func TestCombinePOFsProperties(t *testing.T) {
	f := func(raw []float64) bool {
		pofs := make([]float64, 0, len(raw))
		for _, r := range raw {
			if math.IsNaN(r) || math.IsInf(r, 0) {
				return true
			}
			p := math.Abs(math.Mod(r, 1))
			pofs = append(pofs, p)
		}
		if len(pofs) > 12 {
			pofs = pofs[:12]
		}
		o := combinePOFs(pofs, len(pofs))
		if o.pofTot < -1e-12 || o.pofTot > 1+1e-12 {
			return false
		}
		if o.pofSEU < -1e-12 || o.pofMBU < 0 {
			return false
		}
		// POFtot = POFSEU + POFMBU by construction; POFtot ≥ max(pᵢ).
		for _, p := range pofs {
			if o.pofTot < p-1e-9 {
				return false
			}
		}
		return math.Abs(o.pofTot-(o.pofSEU+o.pofMBU)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPOFDeterministicAcrossRuns(t *testing.T) {
	ch, _, _ := fixtures(t)
	e := engineWith(t, ch)
	a := e.POFAtEnergy(phys.Alpha, 1, 5000, 99)
	b := e.POFAtEnergy(phys.Alpha, 1, 5000, 99)
	if a.Tot != b.Tot || a.SEU != b.SEU || a.MBU != b.MBU {
		t.Error("same seed gave different POFs")
	}
	c := e.POFAtEnergy(phys.Alpha, 1, 5000, 100)
	if a.Tot == c.Tot {
		t.Error("different seeds gave identical POFs (suspicious)")
	}
}

func TestPOFAlphaExceedsProton(t *testing.T) {
	// Fig. 8: alpha POF ≫ proton POF at the same energy.
	ch, _, _ := fixtures(t)
	e := engineWith(t, ch)
	for _, en := range []float64{0.5, 1, 5} {
		a := e.POFAtEnergy(phys.Alpha, en, 15000, 7)
		p := e.POFAtEnergy(phys.Proton, en, 15000, 8)
		if a.Tot <= 3*p.Tot {
			t.Errorf("at %v MeV alpha POF %v not ≫ proton %v", en, a.Tot, p.Tot)
		}
	}
}

func TestPOFDecreasesWithEnergy(t *testing.T) {
	// Fig. 8: POF decreases at higher particle energies (above the Bragg
	// peak, fewer e-h pairs are generated).
	ch, _, _ := fixtures(t)
	e := engineWith(t, ch)
	low := e.POFAtEnergy(phys.Alpha, 2, 15000, 3)
	high := e.POFAtEnergy(phys.Alpha, 10, 15000, 3)
	if low.Tot <= high.Tot {
		t.Errorf("alpha POF not decreasing: %v at 2 MeV vs %v at 10 MeV", low.Tot, high.Tot)
	}
}

func TestPOFIncreasesAtLowerVdd(t *testing.T) {
	// Fig. 8: lower supply ⇒ higher POF.
	ch07, ch11, _ := fixtures(t)
	e07 := engineWith(t, ch07)
	e11 := engineWith(t, ch11)
	p07 := e07.POFAtEnergy(phys.Alpha, 5, 15000, 4)
	p11 := e11.POFAtEnergy(phys.Alpha, 5, 15000, 4)
	if p07.Tot <= p11.Tot {
		t.Errorf("POF(0.7V)=%v not above POF(1.1V)=%v", p07.Tot, p11.Tot)
	}
}

func TestAlphaMBUExceedsProtonMBU(t *testing.T) {
	// Fig. 10 mechanism: MBU/SEU ratio much higher for alphas.
	ch, _, _ := fixtures(t)
	e := engineWith(t, ch)
	a := e.POFAtEnergy(phys.Alpha, 1, 40000, 5)
	p := e.POFAtEnergy(phys.Proton, 0.3, 40000, 6)
	aRatio := a.MBU / a.SEU
	var pRatio float64
	if p.SEU > 0 {
		pRatio = p.MBU / p.SEU
	}
	if aRatio <= pRatio {
		t.Errorf("alpha MBU/SEU %v not above proton %v", aRatio, pRatio)
	}
	if aRatio < 0.02 {
		t.Errorf("alpha MBU/SEU = %v, implausibly low", aRatio)
	}
}

func TestProcessVariationRaisesPOF(t *testing.T) {
	// Fig. 11: neglecting process variation underestimates SER. At an
	// energy where typical deposits sit near the nominal critical charge,
	// the variation tail flips cells the nominal corner would not.
	chPV, _, chNom := fixtures(t)
	ePV := engineWith(t, chPV)
	eNom := engineWith(t, chNom)
	// 10 MeV alphas deposit near threshold (lower stopping power).
	pv := ePV.POFAtEnergy(phys.Alpha, 10, 40000, 9)
	nom := eNom.POFAtEnergy(phys.Alpha, 10, 40000, 9)
	if pv.Tot <= nom.Tot {
		t.Errorf("PV POF %v not above nominal %v", pv.Tot, nom.Tot)
	}
}

func TestFITValidation(t *testing.T) {
	ch, _, _ := fixtures(t)
	e := engineWith(t, ch)
	spec, _ := spectra.NewAlphaEmission(spectra.DefaultAlphaRate)
	if _, err := e.FIT(spec, nil, 100, 1); err == nil {
		t.Error("empty bins accepted")
	}
	bins, _ := spectra.Bins(spec, 0.5, 10, 4)
	if _, err := e.FIT(spec, bins, 0, 1); err == nil {
		t.Error("zero iterations accepted")
	}
}

func TestFITConsistency(t *testing.T) {
	ch, _, _ := fixtures(t)
	e := engineWith(t, ch)
	spec, _ := spectra.NewAlphaEmission(spectra.DefaultAlphaRate)
	bins, _ := spectra.Bins(spec, 0.5, 10, 6)
	res, err := e.FIT(spec, bins, 8000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalFIT <= 0 {
		t.Fatal("zero total FIT for alpha at 0.7 V")
	}
	if math.Abs(res.TotalFIT-(res.SEUFIT+res.MBUFIT))/res.TotalFIT > 1e-9 {
		t.Errorf("FIT split inconsistent: %v != %v + %v", res.TotalFIT, res.SEUFIT, res.MBUFIT)
	}
	if res.Species != phys.Alpha || res.Vdd != 0.7 {
		t.Errorf("metadata wrong: %v %v", res.Species, res.Vdd)
	}
	if len(res.Points) != len(bins) {
		t.Errorf("points = %d, want %d", len(res.Points), len(bins))
	}
}

func TestFITLinearInFlux(t *testing.T) {
	// Doubling the emission rate doubles the FIT (Eq. 8 linearity).
	ch, _, _ := fixtures(t)
	e := engineWith(t, ch)
	s1, _ := spectra.NewAlphaEmission(0.001)
	s2, _ := spectra.NewAlphaEmission(0.002)
	b1, _ := spectra.Bins(s1, 0.5, 10, 4)
	b2, _ := spectra.Bins(s2, 0.5, 10, 4)
	r1, err := e.FIT(s1, b1, 6000, 13)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.FIT(s2, b2, 6000, 13)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := r2.TotalFIT / r1.TotalFIT; math.Abs(ratio-2) > 1e-6 {
		t.Errorf("FIT flux scaling = %v, want 2 (same seed, same strikes)", ratio)
	}
}

func TestPatternSymmetry(t *testing.T) {
	// All-zeros and all-ones patterns are mirror images; their POFs must
	// agree within Monte-Carlo noise.
	ch, _, _ := fixtures(t)
	mk := func(p DataPattern) *Engine {
		e, err := New(Config{
			Tech: finfet.Default14nmSOI(), Rows: 9, Cols: 9,
			Char: ch, Transport: transport.DefaultConfig(), Pattern: p,
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	z := mk(PatternZeros).POFAtEnergy(phys.Alpha, 1, 30000, 17)
	o := mk(PatternOnes).POFAtEnergy(phys.Alpha, 1, 30000, 18)
	if z.Tot == 0 || o.Tot == 0 {
		t.Fatal("zero POF in symmetry test")
	}
	if r := z.Tot / o.Tot; r < 0.8 || r > 1.25 {
		t.Errorf("pattern asymmetry: zeros/ones POF ratio = %v", r)
	}
}

func TestIncidenceOverride(t *testing.T) {
	ch, _, _ := fixtures(t)
	iso := IncidenceIsotropic
	e, err := New(Config{
		Tech: finfet.Default14nmSOI(), Rows: 9, Cols: 9,
		Char: ch, Transport: transport.DefaultConfig(), Incidence: &iso,
	})
	if err != nil {
		t.Fatal(err)
	}
	cos := IncidenceCosine
	e2, err := New(Config{
		Tech: finfet.Default14nmSOI(), Rows: 9, Cols: 9,
		Char: ch, Transport: transport.DefaultConfig(), Incidence: &cos,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Isotropic incidence has more grazing tracks → more multi-fin strikes
	// → at minimum, a different POF than cosine-law.
	pi := e.POFAtEnergy(phys.Proton, 0.3, 30000, 21)
	pc := e2.POFAtEnergy(phys.Proton, 0.3, 30000, 21)
	if pi.Tot == pc.Tot {
		t.Error("incidence override had no effect")
	}
}

func TestArrayAccessor(t *testing.T) {
	ch, _, _ := fixtures(t)
	e := engineWith(t, ch)
	if e.Array().NumCells() != 81 {
		t.Errorf("array cells = %d", e.Array().NumCells())
	}
}

func TestFITErrorPropagation(t *testing.T) {
	ch, _, _ := fixtures(t)
	e := engineWith(t, ch)
	spec, _ := spectra.NewAlphaEmission(spectra.DefaultAlphaRate)
	bins, _ := spectra.Bins(spec, 0.5, 10, 6)
	small, err := e.FIT(spec, bins, 4000, 21)
	if err != nil {
		t.Fatal(err)
	}
	big, err := e.FIT(spec, bins, 32000, 21)
	if err != nil {
		t.Fatal(err)
	}
	if small.TotalFITErr <= 0 || big.TotalFITErr <= 0 {
		t.Fatal("zero FIT error bars")
	}
	// 8× the strikes shrinks the error roughly √8 ≈ 2.8×.
	r := small.TotalFITErr / big.TotalFITErr
	if r < 1.8 || r > 4.5 {
		t.Errorf("error scaling with strikes = %v, want ≈ 2.8", r)
	}
	// The estimates must agree within their combined error bars (5σ).
	diff := math.Abs(small.TotalFIT - big.TotalFIT)
	if diff > 5*(small.TotalFITErr+big.TotalFITErr) {
		t.Errorf("FIT estimates disagree beyond error bars: %v vs %v", small.TotalFIT, big.TotalFIT)
	}
}
