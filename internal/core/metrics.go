package core

import "finser/internal/obs"

// Metrics is the array engine's observability hook: per-particle statistics
// (hit/miss, struck-cell multiplicity, deposit mode), per-worker busy time,
// and — through the owning registry — per-stage spans for the FIT
// integration. Leave Config.Metrics nil (the default) for the zero-cost
// uninstrumented engine; the hot strike loop performs a single nil check.
type Metrics struct {
	// Particles counts Monte-Carlo particles generated.
	Particles *obs.Counter
	// Hits counts particles that charged ≥ 1 sensitive transistor; Misses
	// counts the rest. Hits + Misses == Particles on a completed run.
	Hits   *obs.Counter
	Misses *obs.Counter
	// StruckCellMultiplicity is the histogram of cells charged per hitting
	// particle (buckets 1..8, overflow beyond) — Gomi-style event-wise
	// multiplicity statistics.
	StruckCellMultiplicity *obs.Histogram
	// DepositsTransport / DepositsLUT count particles whose fin deposits
	// were resolved by full transport vs the paper's mean-yield LUT.
	DepositsTransport *obs.Counter
	DepositsLUT       *obs.Counter
	// WorkerBusyNs accumulates per-worker busy wall time; WallNs
	// accumulates (wall time × workers) per parallel region. Their ratio
	// is the fleet utilization, published in WorkerUtilization after every
	// POFAtEnergy call.
	WorkerBusyNs      *obs.Counter
	WallNs            *obs.Counter
	WorkerUtilization *obs.Gauge
	// AdaptiveEarlyStops counts FIT bins the adaptive mode (Config.FITRelErr)
	// terminated before consuming their flat budget; AdaptiveStrikesSaved and
	// AdaptiveStrikesOverrun accumulate the particles saved under — and spent
	// beyond — the flat per-bin budget, so saved − overrun is the net win
	// versus a flat run.
	AdaptiveEarlyStops     *obs.Counter
	AdaptiveStrikesSaved   *obs.Counter
	AdaptiveStrikesOverrun *obs.Counter

	reg *obs.Registry // for FIT stage spans; nil disables them
}

// NewMetrics registers the engine counters on r under the "core." prefix.
// Returns nil when r is nil, preserving the no-op path.
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		Particles:              r.Counter("core.particles_generated"),
		Hits:                   r.Counter("core.hits"),
		Misses:                 r.Counter("core.misses"),
		StruckCellMultiplicity: r.Histogram("core.struck_cell_multiplicity", obs.LinearBuckets(1, 1, 8)),
		DepositsTransport:      r.Counter("core.deposits_transport"),
		DepositsLUT:            r.Counter("core.deposits_lut"),
		WorkerBusyNs:           r.Counter("core.worker_busy_ns"),
		WallNs:                 r.Counter("core.wall_ns"),
		WorkerUtilization:      r.Gauge("core.worker_utilization"),
		AdaptiveEarlyStops:     r.Counter("core/adaptive/early_stops"),
		AdaptiveStrikesSaved:   r.Counter("core/adaptive/strikes_saved"),
		AdaptiveStrikesOverrun: r.Counter("core/adaptive/strikes_overrun"),
		reg:                    r,
	}
}

// HitRate returns hits/(hits+misses) — the MC hit rate so far (0 when no
// particles have run). Nil-safe.
func (m *Metrics) HitRate() float64 {
	if m == nil {
		return 0
	}
	h := m.Hits.Value()
	n := h + m.Misses.Value()
	if n == 0 {
		return 0
	}
	return float64(h) / float64(n)
}

// span starts a named stage span on the owning registry (nil-safe).
func (m *Metrics) span(name string) *obs.Span {
	if m == nil {
		return nil
	}
	return m.reg.StartSpan(name)
}
