package core

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"finser/internal/finfet"
	"finser/internal/phys"
	"finser/internal/spectra"
	"finser/internal/transport"
)

// memStore is a minimal in-memory CheckpointStore for resume tests.
type memStore struct{ m map[string]json.RawMessage }

func newMemStore() *memStore { return &memStore{m: map[string]json.RawMessage{}} }

func (s *memStore) Load(stage string, v any) (bool, error) {
	raw, ok := s.m[stage]
	if !ok {
		return false, nil
	}
	return true, json.Unmarshal(raw, v)
}

func (s *memStore) Save(stage string, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	s.m[stage] = b
	return nil
}

func adaptiveEngine(t *testing.T, relErr float64, ck CheckpointStore) *Engine {
	t.Helper()
	ch, _, _ := fixtures(t)
	e, err := New(Config{
		Tech: finfet.Default14nmSOI(), Rows: 9, Cols: 9,
		Char: ch, Transport: transport.DefaultConfig(),
		Workers: 2, FITRelErr: relErr, Checkpoint: ck,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func alphaEnv(t *testing.T, nBins int) (spectra.Spectrum, []spectra.EnergyBin) {
	t.Helper()
	spec, err := spectra.NewAlphaEmission(spectra.DefaultAlphaRate)
	if err != nil {
		t.Fatal(err)
	}
	bins, err := spectra.Bins(spec, 0.5, 10, nBins)
	if err != nil {
		t.Fatal(err)
	}
	return spec, bins
}

// Adaptive FIT must be a pure function of the configuration: re-running the
// identical config reproduces every point and convergence record bit for
// bit, and any shard partitioning of the bin range concatenates to the
// exact single-call result (what the distributed merge relies on).
func TestAdaptiveFITDeterministicAndShardEquivalent(t *testing.T) {
	spec, bins := alphaEnv(t, 6)
	e := adaptiveEngine(t, 0.05, nil)

	r1, err := e.FIT(spec, bins, 3000, 42)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.FIT(spec, bins, 3000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Points, r2.Points) || !reflect.DeepEqual(r1.Conv, r2.Conv) || r1.TotalFIT != r2.TotalFIT {
		t.Fatal("adaptive FIT not deterministic across re-runs")
	}

	ctx := context.Background()
	seeds := FITSeedSchedule(42, len(bins))
	fullPts, fullConv, err := e.POFBinsConvCtx(ctx, phys.Alpha, bins, 3000, seeds, 0, len(bins))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fullPts, r1.Points) || !reflect.DeepEqual(fullConv, r1.Conv) {
		t.Fatal("POFBinsConvCtx disagrees with FITCtx")
	}
	for _, cut := range []int{1, 2, 4} {
		aPts, aConv, err := e.POFBinsConvCtx(ctx, phys.Alpha, bins, 3000, seeds, 0, cut)
		if err != nil {
			t.Fatal(err)
		}
		bPts, bConv, err := e.POFBinsConvCtx(ctx, phys.Alpha, bins, 3000, seeds, cut, len(bins))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(append(aPts, bPts...), fullPts) {
			t.Fatalf("shard split at %d changes points", cut)
		}
		if !reflect.DeepEqual(append(aConv, bConv...), fullConv) {
			t.Fatalf("shard split at %d changes convergence records", cut)
		}
	}
}

// Every adaptive bin must carry a self-consistent convergence record, the
// targets must match the statically derived tolerances, and a flat run must
// carry none.
func TestAdaptiveFITConvRecords(t *testing.T) {
	spec, bins := alphaEnv(t, 6)
	itersPerBin := 3000
	e := adaptiveEngine(t, 0.1, nil)
	r, err := e.FIT(spec, bins, itersPerBin, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Conv) != len(bins) {
		t.Fatalf("conv records = %d, want %d", len(r.Conv), len(bins))
	}
	tols := adaptiveTols(bins, 0.1)
	saved := 0
	for i, c := range r.Conv {
		if err := CheckBinConv(c, r.Points[i]); err != nil {
			t.Errorf("bin %d: %v", i, err)
		}
		if c.Tol != tols[i] {
			t.Errorf("bin %d: tol %g, want %g", i, c.Tol, tols[i])
		}
		if c.Converged && r.Points[i].Tot > 0 && c.RelErr > c.Tol {
			t.Errorf("bin %d: converged with rel err %g > tol %g", i, c.RelErr, c.Tol)
		}
		if want := itersPerBin - r.Points[i].Strikes; c.StrikesSaved != want {
			t.Errorf("bin %d: strikes saved %d, want %d", i, c.StrikesSaved, want)
		}
		saved += c.StrikesSaved
	}
	// Alpha bins at 0.7 V are saturated and cheap: the sampler must free a
	// real fraction of the flat budget (that is the whole point).
	if saved <= 0 {
		t.Errorf("adaptive run saved %d strikes on an easy spectrum", saved)
	}

	flat, err := adaptiveEngine(t, 0, nil).FIT(spec, bins, itersPerBin, 42)
	if err != nil {
		t.Fatal(err)
	}
	if flat.Conv != nil {
		t.Error("flat run carries convergence records")
	}
}

// The adaptive estimate must agree statistically with the flat-budget
// reference on the same spectrum — early stopping trades precision for
// wall-clock, never bias.
func TestAdaptiveFITMatchesFlatWithinError(t *testing.T) {
	spec, bins := alphaEnv(t, 6)
	ad, err := adaptiveEngine(t, 0.05, nil).FIT(spec, bins, 3000, 42)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := adaptiveEngine(t, 0, nil).FIT(spec, bins, 3000, 42)
	if err != nil {
		t.Fatal(err)
	}
	diff := ad.TotalFIT - flat.TotalFIT
	if diff < 0 {
		diff = -diff
	}
	if band := 5 * (ad.TotalFITErr + flat.TotalFITErr); diff > band {
		t.Errorf("adaptive %g vs flat %g differ beyond noise (band %g)", ad.TotalFIT, flat.TotalFIT, band)
	}
}

// A checkpointed adaptive run interrupted after k bins must resume to the
// bit-identical uninterrupted result, and checkpoints taken under a
// different tolerance must be rejected, not silently reinterpreted.
func TestAdaptiveFITCheckpointResume(t *testing.T) {
	spec, bins := alphaEnv(t, 6)
	e := adaptiveEngine(t, 0.05, nil)
	want, err := e.FIT(spec, bins, 3000, 42)
	if err != nil {
		t.Fatal(err)
	}

	store := newMemStore()
	if _, err := adaptiveEngine(t, 0.05, store).FIT(spec, bins, 3000, 42); err != nil {
		t.Fatal(err)
	}
	// Truncate the persisted state to the first two bins — the on-disk
	// shape of a run killed mid-flight — then resume.
	const stage = "fit/alpha"
	var st fitState
	if ok, err := store.Load(stage, &st); err != nil || !ok {
		t.Fatalf("checkpoint missing: ok=%v err=%v", ok, err)
	}
	st.Points = st.Points[:2]
	st.Conv = st.Conv[:2]
	if err := store.Save(stage, st); err != nil {
		t.Fatal(err)
	}
	got, err := adaptiveEngine(t, 0.05, store).FIT(spec, bins, 3000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Points, want.Points) || !reflect.DeepEqual(got.Conv, want.Conv) || got.TotalFIT != want.TotalFIT {
		t.Fatal("resumed adaptive FIT differs from uninterrupted run")
	}

	// Tolerance is result-determining: a flat resume over an adaptive
	// checkpoint (and vice versa) must fail loudly.
	if _, err := adaptiveEngine(t, 0, store).FIT(spec, bins, 3000, 42); err == nil || !strings.Contains(err.Error(), "tolerance") {
		t.Errorf("flat resume over adaptive checkpoint: err = %v", err)
	}
	// A checkpoint with conv records stripped is corrupt, not flat.
	st.Conv = nil
	if err := store.Save(stage, st); err != nil {
		t.Fatal(err)
	}
	if _, err := adaptiveEngine(t, 0.05, store).FIT(spec, bins, 3000, 42); err == nil {
		t.Error("adaptive resume accepted checkpoint without convergence records")
	}
}

func TestAdaptiveTols(t *testing.T) {
	relErr := 0.02
	uniform := []spectra.EnergyBin{{IntFlux: 1}, {IntFlux: 1}, {IntFlux: 1}, {IntFlux: 1}}
	for i, tol := range adaptiveTols(uniform, relErr) {
		if diff := tol - relErr; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("uniform bin %d: tol %g, want %g", i, tol, relErr)
		}
	}
	skewed := []spectra.EnergyBin{{IntFlux: 1e6}, {IntFlux: 1e-9}, {IntFlux: 0}}
	tols := adaptiveTols(skewed, relErr)
	if tols[0] != relErr {
		t.Errorf("dominant bin: tol %g, want clamp at %g", tols[0], relErr)
	}
	if tols[1] != 10*relErr {
		t.Errorf("negligible bin: tol %g, want clamp at %g", tols[1], 10*relErr)
	}
	if tols[2] != 10*relErr {
		t.Errorf("zero-flux bin: tol %g, want %g", tols[2], 10*relErr)
	}
	for _, tol := range tols {
		if tol < relErr || tol > 10*relErr {
			t.Errorf("tol %g outside [relErr, 10 relErr]", tol)
		}
	}
}

func TestCheckBinConv(t *testing.T) {
	good := BinConv{RelErr: 0.03, Tol: 0.05, Converged: true, Batches: 4, StrikesSaved: 1800}
	pt := POFPoint{Strikes: 1200}
	if err := CheckBinConv(good, pt); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	cases := []struct {
		name string
		c    BinConv
		pt   POFPoint
	}{
		{"negative rel err", BinConv{RelErr: -1, Tol: 0.05, Batches: 4}, pt},
		{"nan rel err", BinConv{RelErr: nan(), Tol: 0.05, Batches: 4}, pt},
		{"zero tol", BinConv{RelErr: 0.03, Tol: 0, Batches: 4}, pt},
		{"zero batches", BinConv{RelErr: 0.03, Tol: 0.05, Batches: 0}, pt},
		{"batches over cap", BinConv{RelErr: 0.03, Tol: 0.05, Batches: adaptiveCapBatches + 1}, pt},
		{"strikes not divisible", BinConv{RelErr: 0.03, Tol: 0.05, Batches: 7}, pt},
		{"zero strikes", good, POFPoint{}},
	}
	for _, tc := range cases {
		if err := CheckBinConv(tc.c, tc.pt); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func nan() float64 {
	zero := 0.0
	return zero / zero
}
