package core

import (
	"context"
	"errors"
	"math"

	"finser/internal/phys"
	"finser/internal/rng"
)

// Adaptive Monte-Carlo: instead of a fixed particle budget, run batches
// until the POF estimate reaches a requested relative precision. Rare-event
// points (high Vdd, high energy, protons) need orders of magnitude more
// particles than saturated points; fixed budgets either waste work or
// under-resolve. The paper side-steps this with a flat 10 M iterations —
// this estimator gets equal precision for a fraction of the strikes.

// AdaptiveSpec controls the stopping rule.
type AdaptiveSpec struct {
	// TargetRelErr stops when stderr/mean of POFtot falls below this
	// (default 0.05).
	TargetRelErr float64
	// BatchSize is the number of particles per convergence check
	// (default 20000).
	BatchSize int
	// MaxStrikes bounds the total work (default 5e6). If the target
	// precision is not reached by then, the estimate is returned with
	// Converged=false.
	MaxStrikes int
	// MinStrikes guards against lucky early stops (default 2×BatchSize).
	MinStrikes int
}

func (s AdaptiveSpec) withDefaults() AdaptiveSpec {
	if s.TargetRelErr <= 0 {
		s.TargetRelErr = 0.05
	}
	if s.BatchSize <= 0 {
		s.BatchSize = 20000
	}
	if s.MaxStrikes <= 0 {
		s.MaxStrikes = 5_000_000
	}
	if s.MinStrikes <= 0 {
		s.MinStrikes = 2 * s.BatchSize
	}
	return s
}

// AdaptivePOF is a POFPoint with convergence metadata.
type AdaptivePOF struct {
	POFPoint
	Converged bool
	RelErr    float64
}

// POFAtEnergyAdaptive estimates the POF at one energy to the requested
// relative precision, batching until converged or the strike budget is
// exhausted.
func (e *Engine) POFAtEnergyAdaptive(sp phys.Species, energyMeV float64, spec AdaptiveSpec, seed uint64) (AdaptivePOF, error) {
	return e.POFAtEnergyAdaptiveCtx(context.Background(), sp, energyMeV, spec, seed)
}

// POFAtEnergyAdaptiveCtx is POFAtEnergyAdaptive with cooperative
// cancellation between (and inside) batches; worker panics surface as
// stack-carrying errors instead of crashing the process.
func (e *Engine) POFAtEnergyAdaptiveCtx(ctx context.Context, sp phys.Species, energyMeV float64, spec AdaptiveSpec, seed uint64) (AdaptivePOF, error) {
	spec = spec.withDefaults()
	if energyMeV <= 0 {
		return AdaptivePOF{}, errors.New("core: adaptive POF needs positive energy")
	}
	src := rng.New(seed)
	var agg POFPoint
	total := 0
	// Welford-style aggregation across batches via weighted means; batch
	// estimates are independent, so standard errors combine as
	// se² → se²·(n_batch/n_total) when means are pooled.
	var sumTot, sumSEU, sumMBU, sumHits float64
	var sumSqTot float64
	for total < spec.MaxStrikes {
		pt, err := e.POFAtEnergyCtx(ctx, sp, energyMeV, spec.BatchSize, src.Uint64())
		if err != nil {
			return AdaptivePOF{}, err
		}
		n := float64(spec.BatchSize)
		sumTot += pt.Tot * n
		sumSEU += pt.SEU * n
		sumMBU += pt.MBU * n
		sumHits += pt.HitFrac * n
		// Accumulate the per-strike second moment from the batch stderr:
		// Var ≈ n·se² + mean² (per-strike), so Σx² ≈ n·(n·se² + mean²).
		sumSqTot += n * (n*pt.TotStdErr*pt.TotStdErr + pt.Tot*pt.Tot)
		total += spec.BatchSize

		mean := sumTot / float64(total)
		variance := sumSqTot/float64(total) - mean*mean
		if variance < 0 {
			variance = 0
		}
		se := 0.0
		if total > 1 {
			se = sqrt(variance / float64(total))
		}
		agg = POFPoint{
			EnergyMeV: energyMeV,
			Tot:       mean,
			SEU:       sumSEU / float64(total),
			MBU:       sumMBU / float64(total),
			TotStdErr: se,
			Strikes:   total,
			HitFrac:   sumHits / float64(total),
		}
		if total >= spec.MinStrikes && mean > 0 && se/mean <= spec.TargetRelErr {
			return AdaptivePOF{POFPoint: agg, Converged: true, RelErr: se / mean}, nil
		}
	}
	rel := 0.0
	if agg.Tot > 0 {
		rel = agg.TotStdErr / agg.Tot
	}
	return AdaptivePOF{POFPoint: agg, Converged: false, RelErr: rel}, nil
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
